package planaria_test

import (
	"fmt"
	"log"

	"planaria"
)

// Example demonstrates the core flow: deploy a model and estimate an
// isolated inference.
func Example() {
	acc, err := planaria.NewAccelerator(planaria.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	if err := acc.Deploy(planaria.MustModel("MobileNet-v1")); err != nil {
		log.Fatal(err)
	}
	st, err := acc.EstimateInference("MobileNet-v1")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MobileNet-v1 isolated latency: %.3f ms\n", st.LatencySeconds*1e3)
	// Output:
	// MobileNet-v1 isolated latency: 0.329 ms
}

// ExampleAccelerator_Serve simulates a small multi-tenant burst under the
// spatial scheduler.
func ExampleAccelerator_Serve() {
	acc, err := planaria.NewAccelerator(planaria.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	for _, m := range []string{"MobileNet-v1", "GoogLeNet"} {
		if err := acc.Deploy(planaria.MustModel(m)); err != nil {
			log.Fatal(err)
		}
	}
	sc := planaria.Scenario{Name: "demo", Models: []string{"MobileNet-v1", "GoogLeNet"}}
	reqs, err := planaria.GenerateWorkload(sc, planaria.QoSSoft, 1000, 8, 1)
	if err != nil {
		log.Fatal(err)
	}
	out, err := acc.Serve(reqs)
	if err != nil {
		log.Fatal(err)
	}
	done := 0
	for i, f := range out.Finishes {
		if f >= 0 && f <= reqs[i].Deadline {
			done++
		}
	}
	fmt.Printf("%d/%d requests met their deadline\n", done, len(reqs))
	// Output:
	// 8/8 requests met their deadline
}

// ExampleFissionShapes lists the full-chip fission configurations
// (Table II's shape space).
func ExampleFissionShapes() {
	full := 0
	for _, sh := range planaria.FissionShapes(planaria.DefaultConfig(), 16) {
		if sh.Subarrays() == 16 {
			full++
		}
	}
	fmt.Printf("full-chip configurations: %d\n", full)
	// Output:
	// full-chip configurations: 15
}

// ExampleBestLayerShape shows the compiler's per-layer configuration
// choice for a depthwise convolution.
func ExampleBestLayerShape() {
	l := &planaria.Layer{
		Kind: planaria.DWConv, InH: 56, InW: 56, InC: 128, OutC: 128,
		OutH: 56, OutW: 56, KH: 3, KW: 3, Stride: 1, Pad: 1,
	}
	ev := planaria.BestLayerShape(l, planaria.DefaultConfig(), 16)
	fmt.Printf("depthwise layer compiles to %s\n", ev.Shape.String())
	// Output:
	// depthwise layer compiles to (32x32)-16
}
