// Autoscale: replay a compressed planet-day trace (trace.json, the same
// JSON spec cmd/planaria's -trace-file flag reads) — a diurnal rate
// curve with a lunchtime flash crowd over a heavy model mix — against
// static fleets of 1–3 chips and an autoscaled fleet allowed up to 6.
// The autoscaler rides the overnight valley at one chip, books spares
// when the crowd hits, and drains them gracefully afterward; the table
// shows it beating every static row's deadline attainment while billing
// fewer chip-hours than the cheapest SLA-competitive static fleet.
package main

import (
	_ "embed"
	"fmt"
	"log"

	"planaria/internal/cluster"
	"planaria/internal/experiments"
	"planaria/internal/workload/trace"
)

//go:embed trace.json
var specJSON []byte

func main() {
	spec, err := trace.ParseJSON(specJSON)
	if err != nil {
		log.Fatal(err)
	}
	reqs, err := spec.Generate()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trace: %q — %d requests over %.0f s (peak ≈ %.0f QPS)\n\n",
		spec.Name, len(reqs), spec.HorizonS, spec.BaseQPS*12*1.5)

	suite, err := experiments.NewSuite()
	if err != nil {
		log.Fatal(err)
	}
	o := experiments.DefaultAutoscaleOptions()
	o.Trace = spec
	// The control loop shrinks with the ~48x-compressed timescale.
	o.Scale = cluster.Autoscale{
		Min:       1,
		Initial:   1,
		BootS:     10,
		IntervalS: 5,
		Controller: &cluster.Hysteresis{
			TargetS:   0.03,
			HoldTicks: 8,
		},
	}
	rows, err := suite.AutoscaleSweep(o)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(experiments.FormatAutoscale(o, rows))

	auto := rows[len(rows)-1]
	fmt.Printf("autoscaled fleet: peak %d chips, %d scale-ups, %d graceful drains, %d requests migrated\n",
		auto.PeakActive, auto.ScaleUps, auto.ScaleDowns, auto.Migrated)
}
