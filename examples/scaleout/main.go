// Scaleout: size a Planaria cluster — find the minimum number of nodes
// that keeps the MLPerf server SLA at growing arrival rates (the paper's
// Fig 16 methodology), and show a traced single-node timeline at the
// point where one node starts missing deadlines.
package main

import (
	"fmt"
	"log"

	"planaria"
)

func main() {
	acc, err := planaria.NewAccelerator(planaria.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	for _, m := range planaria.ModelNames() {
		if err := acc.Deploy(planaria.MustModel(m)); err != nil {
			log.Fatal(err)
		}
	}
	opt := planaria.EvalOptions{Requests: 200, Instances: 2, Seed: 9}
	sc := planaria.Scenarios()[2] // Workload-C

	fmt.Printf("Minimum Planaria nodes for the %s SLA:\n", sc.Name)
	fmt.Printf("%10s %8s %8s %8s\n", "rate(qps)", "QoS-S", "QoS-M", "QoS-H")
	for _, rate := range []float64{50, 100, 200, 400} {
		fmt.Printf("%10.0f", rate)
		for _, lvl := range []planaria.QoSLevel{planaria.QoSSoft, planaria.QoSMedium, planaria.QoSHard} {
			n, err := acc.MinNodes(sc, lvl, rate, 12, opt)
			if err != nil {
				log.Fatal(err)
			}
			if n > 12 {
				fmt.Printf("%8s", ">12")
			} else {
				fmt.Printf("%8d", n)
			}
		}
		fmt.Println()
	}

	// Zoom into one overloaded single-node run: the scheduler's
	// allocation decisions over time.
	reqs, err := planaria.GenerateWorkload(sc, planaria.QoSHard, 300, 12, 4)
	if err != nil {
		log.Fatal(err)
	}
	_, tr, err := acc.ServeTraced(reqs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nSingle-node timeline under load (12 requests at 300 QPS, QoS-H):")
	fmt.Print(tr.String())
}
