// Functional: compile a small CNN to the Planaria macro-instruction
// binary and execute it with real int8 data through the cycle-level
// omni-directional systolic grid, verifying bit-exactness against a host
// reference — the end-to-end path that stands in for the paper's RTL
// validation.
package main

import (
	"fmt"
	"log"

	"planaria"
)

func main() {
	// A small feed-forward CNN (MNIST-sized) so the grid simulation,
	// which moves every byte through PEs cycle by cycle, stays quick.
	b := planaria.NewBuilder("demo-cnn", "classification", 12, 12, 3)
	b.Conv("conv1", 8, 3, 1)
	b.Pool("pool1", 2, 2)
	b.DWConv("dw", 3, 1)
	b.Conv("pw", 16, 1, 1)
	b.Activation("relu")
	b.GlobalPool("gap")
	b.FC("logits", 10)
	net, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(net.FormatLayers())

	// A scaled-down chip (16×16 PEs, 4×4 subarrays) keeps the functional
	// run fast while exercising the same fission machinery.
	cfg := planaria.DefaultConfig()
	cfg.ArrayRows, cfg.ArrayCols = 16, 16
	cfg.SubRows, cfg.SubCols = 4, 4
	cfg.Pods = 4

	res, err := planaria.RunFunctional(net, cfg, 2024)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("instructions retired: %d\n", res.InstructionsRetired)
	fmt.Printf("systolic tiles run:   %d\n", res.TilesRun)
	fmt.Printf("systolic cycles:      %d\n", res.SystolicCycles)
	fmt.Printf("logits (int8):        %v\n", res.Output)
	if res.MatchesReference {
		fmt.Println("result is bit-exact against the host reference ✓")
	} else {
		log.Fatal("MISMATCH against the host reference")
	}
}
