// Quickstart: deploy two benchmark models on a Planaria accelerator,
// estimate their isolated latency/energy, and serve a small multi-tenant
// burst, comparing against the PREMA-style monolithic baseline.
package main

import (
	"fmt"
	"log"

	"planaria"
)

func main() {
	// A Planaria node: 128×128 PEs fissionable into 16 subarrays.
	acc, err := planaria.NewAccelerator(planaria.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	// The PREMA-style baseline: same resources, monolithic, temporal
	// multi-tenancy.
	base, err := planaria.NewBaselineAccelerator(planaria.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	models := []string{"ResNet-50", "MobileNet-v1"}
	for _, m := range models {
		if err := acc.Deploy(planaria.MustModel(m)); err != nil {
			log.Fatal(err)
		}
		if err := base.Deploy(planaria.MustModel(m)); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Println("Isolated single-inference estimates:")
	fmt.Printf("%-14s %16s %16s %10s\n", "model", "planaria", "monolithic", "speedup")
	for _, m := range models {
		p, err := acc.EstimateInference(m)
		if err != nil {
			log.Fatal(err)
		}
		b, err := base.EstimateInference(m)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s %13.3f ms %13.3f ms %9.2fx\n",
			m, p.LatencySeconds*1e3, b.LatencySeconds*1e3,
			b.LatencySeconds/p.LatencySeconds)
	}

	// Serve a bursty multi-tenant workload on both systems.
	sc := planaria.Scenario{Name: "demo", Models: models}
	reqs, err := planaria.GenerateWorkload(sc, planaria.QoSMedium, 500, 40, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nServing %d requests at 500 QPS (QoS-M):\n", len(reqs))
	for _, node := range []struct {
		name string
		acc  *planaria.Accelerator
	}{{"Planaria (spatial)", acc}, {"Monolithic (temporal)", base}} {
		out, err := node.acc.Serve(reqs)
		if err != nil {
			log.Fatal(err)
		}
		onTime := 0
		for i, f := range out.Finishes {
			if f >= 0 && f <= reqs[i].Deadline {
				onTime++
			}
		}
		fmt.Printf("  %-22s on-time %2d/%d  fairness %.3f  energy %.3f J  makespan %.1f ms\n",
			node.name, onTime, len(reqs), out.Fairness, out.EnergyJ, out.Makespan*1e3)
	}
}
