// Fission: explore the fission configuration space for two contrasting
// layers — a dense ResNet convolution and a MobileNet depthwise
// convolution — showing why one compiles to a chained omni-directional
// shape and the other to 16 independent clusters (the paper's Fig 3 and
// Table II intuition).
package main

import (
	"fmt"
	"log"

	"planaria"
)

func main() {
	cfg := planaria.DefaultConfig()

	dense := &planaria.Layer{
		Name: "resnet_conv4", Kind: planaria.Conv,
		InH: 14, InW: 14, InC: 1024, OutC: 256,
		OutH: 14, OutW: 14, KH: 1, KW: 1, Stride: 1,
	}
	dw := &planaria.Layer{
		Name: "mobilenet_dw", Kind: planaria.DWConv,
		InH: 56, InW: 56, InC: 128, OutC: 128,
		OutH: 56, OutW: 56, KH: 3, KW: 3, Stride: 1, Pad: 1,
	}

	for _, l := range []*planaria.Layer{dense, dw} {
		fmt.Printf("layer %s (%s)\n", l.Name, l.Kind)
		fmt.Printf("%-14s %10s %8s %8s %6s\n", "shape", "cycles", "util", "energy", "omni")
		best := planaria.BestLayerShape(l, cfg, 16)
		// Show the full-chip shapes (Table II's 15 configurations).
		for _, sh := range planaria.FissionShapes(cfg, 16) {
			if sh.Subarrays() != 16 {
				continue
			}
			ev := planaria.EvaluateLayer(l, sh, cfg, 16)
			mark := "  "
			if ev.Shape == best.Shape {
				mark = "<-- compiler's choice"
			}
			omni := ""
			if ev.OmniDirectional {
				omni = "yes"
			}
			fmt.Printf("%-14s %10d %7.1f%% %7.2fuJ %6s %s\n",
				sh.String(), ev.Cycles, ev.Util*100, ev.EnergyJ*1e6, omni, mark)
		}
		if bestIsNonCanonical(cfg, best) {
			ev := best
			fmt.Printf("%-14s %10d %7.1f%% %7.2fuJ %6s %s\n",
				ev.Shape.String(), ev.Cycles, ev.Util*100, ev.EnergyJ*1e6, "", "<-- compiler's choice (partial occupancy)")
		}
		fmt.Println()
	}

	// Demonstrate the end of the story: a whole MobileNet-v1 on Planaria
	// vs the monolithic design.
	acc, err := planaria.NewAccelerator(cfg)
	if err != nil {
		log.Fatal(err)
	}
	base, err := planaria.NewBaselineAccelerator(cfg)
	if err != nil {
		log.Fatal(err)
	}
	net := planaria.MustModel("MobileNet-v1")
	if err := acc.Deploy(net); err != nil {
		log.Fatal(err)
	}
	if err := base.Deploy(net); err != nil {
		log.Fatal(err)
	}
	p, _ := acc.EstimateInference("MobileNet-v1")
	m, _ := base.EstimateInference("MobileNet-v1")
	fmt.Printf("MobileNet-v1 end to end: %.3f ms fissioned vs %.3f ms monolithic (%.1fx)\n",
		p.LatencySeconds*1e3, m.LatencySeconds*1e3, m.LatencySeconds/p.LatencySeconds)
}

// bestIsNonCanonical reports whether the compiler chose a shape outside
// the 15 full-occupancy configurations (fewer clusters can win on energy
// when a layer lacks parallelism to fill the chip).
func bestIsNonCanonical(cfg planaria.Config, ev planaria.LayerEval) bool {
	return ev.Shape.Subarrays() != cfg.NumSubarrays()
}
