// Chaos: replay a hand-written fault schedule (faults.json, the same DSL
// cmd/planaria's -faults flag reads) against both systems and print how
// much SLA each retains. Planaria masks the faulty subarrays out of the
// fission space and sheds doomed requests; PREMA's monolithic array
// derates and loses whatever was running when a fault lands.
package main

import (
	_ "embed"
	"fmt"
	"log"

	"planaria/internal/experiments"
	"planaria/internal/fault"
	"planaria/internal/metrics"
	"planaria/internal/sim"
	"planaria/internal/workload"
)

//go:embed faults.json
var scheduleJSON []byte

func main() {
	sched, err := fault.ParseJSON(scheduleJSON)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("schedule: %d events over %d subarrays / %d pods\n\n",
		len(sched.Events), sched.Units, sched.Pods)

	suite, err := experiments.NewSuite()
	if err != nil {
		log.Fatal(err)
	}
	o := experiments.DefaultChaosOptions()
	o.Scenario = workload.ScenarioA()
	o.Schedule = sched
	o.Shed = sim.ShedDoomed
	o.Opt = metrics.Options{Requests: 60, Instances: 2, Seed: 11}
	rows, err := suite.ChaosSweep(o)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(experiments.FormatChaos(o, rows))
}
