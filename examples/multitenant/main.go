// Multitenant: drive the mixed Workload-C scenario through both the
// Planaria spatial scheduler and the PREMA temporal baseline at the same
// arrival rate, and print the per-request outcome side by side — the
// workload the paper's serving evaluation (Fig 12–15) is built on.
package main

import (
	"fmt"
	"log"

	"planaria"
)

func main() {
	cfg := planaria.DefaultConfig()
	fmt.Println("hardware:", cfg.String())

	spatial, err := planaria.NewAccelerator(cfg)
	if err != nil {
		log.Fatal(err)
	}
	temporal, err := planaria.NewBaselineAccelerator(cfg)
	if err != nil {
		log.Fatal(err)
	}
	for _, m := range planaria.ModelNames() {
		if err := spatial.Deploy(planaria.MustModel(m)); err != nil {
			log.Fatal(err)
		}
		if err := temporal.Deploy(planaria.MustModel(m)); err != nil {
			log.Fatal(err)
		}
	}

	sc := planaria.Scenarios()[2] // Workload-C: all nine models
	const qps = 60
	reqs, err := planaria.GenerateWorkload(sc, planaria.QoSMedium, qps, 24, 3)
	if err != nil {
		log.Fatal(err)
	}

	outS, err := spatial.Serve(reqs)
	if err != nil {
		log.Fatal(err)
	}
	outT, err := temporal.Serve(reqs)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%s at %d QPS, QoS-M — per-request latency (ms):\n", sc.Name, qps)
	fmt.Printf("%3s %-16s %4s %9s %10s %10s %6s %6s\n",
		"id", "model", "prio", "bound", "planaria", "prema", "ok-P", "ok-T")
	for i, r := range reqs {
		ls := outS.Latency[i] * 1e3
		lt := outT.Latency[i] * 1e3
		okS, okT := " ok", " ok"
		if outS.Finishes[i] > r.Deadline {
			okS = "MISS"
		}
		if outT.Finishes[i] > r.Deadline {
			okT = "MISS"
		}
		fmt.Printf("%3d %-16s %4d %8.1f %10.2f %10.2f %6s %6s\n",
			r.ID, r.Model, r.Priority, r.QoS*1e3, ls, lt, okS, okT)
	}
	fmt.Printf("\nsummary: fairness %.3f vs %.3f | energy %.2f J vs %.2f J | preemptions %d vs %d\n",
		outS.Fairness, outT.Fairness, outS.EnergyJ, outT.EnergyJ,
		outS.Preemptions, outT.Preemptions)

	stats, err := planaria.LatencyBreakdown(reqs, outS)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nPlanaria per-model latency breakdown:")
	fmt.Print(planaria.FormatLatencyBreakdown(stats))
}
