// Command planaria-bench runs the repository's benchmark harness and
// writes a machine-readable report.
//
// Usage:
//
//	planaria-bench [-bench regexp] [-pkg pattern] [-benchtime 1x] [-out BENCH_serving.json]
//	               [-baseline BENCH_serving.json] [-regress 20]
//
// It shells out to `go test -run=^$ -bench=... -benchmem`, relays the
// textual output, parses the result lines (including every custom
// b.ReportMetric quantity the serving benchmarks emit), and encodes them
// as deterministic JSON sorted by benchmark name. CI's bench-smoke step
// runs it at -benchtime=1x and uploads the artifact.
//
// With -baseline, the fresh results are additionally compared against a
// committed report: any benchmark present in both whose ns/op or
// allocs/op grew by more than -regress percent fails the run. This is
// the regression gate the event-engine work installed — allocs/op is
// deterministic, so alloc regressions are caught exactly; ns/op gets
// the percentage headroom to absorb machine noise.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"

	"planaria/internal/obs"
)

func main() {
	bench := flag.String("bench", "Benchmark(Fig|Table|Serve|Cluster)", "benchmark name regexp passed to go test -bench")
	pkg := flag.String("pkg", ".", "package pattern to benchmark")
	benchtime := flag.String("benchtime", "1x", "go test -benchtime value")
	out := flag.String("out", "BENCH_serving.json", "output JSON path")
	timeout := flag.String("timeout", "20m", "go test -timeout value")
	baseline := flag.String("baseline", "", "committed report to gate against (empty: no gate)")
	regress := flag.Float64("regress", 20, "percent growth in ns/op or allocs/op that fails the -baseline gate")
	flag.Parse()

	if err := run(*bench, *pkg, *benchtime, *timeout, *out, *baseline, *regress); err != nil {
		fmt.Fprintln(os.Stderr, "planaria-bench:", err)
		os.Exit(1)
	}
}

func run(bench, pkg, benchtime, timeout, out, baseline string, regress float64) error {
	args := []string{"test", "-run=^$", "-bench=" + bench,
		"-benchtime=" + benchtime, "-benchmem", "-timeout=" + timeout, pkg}
	cmd := exec.Command("go", args...)
	var buf bytes.Buffer
	// Relay the harness output live while keeping a copy to parse.
	cmd.Stdout = io.MultiWriter(os.Stdout, &buf)
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		return fmt.Errorf("go %v: %w", args, err)
	}
	rep, err := obs.ParseBench(&buf)
	if err != nil {
		return err
	}
	if len(rep.Results) == 0 {
		return fmt.Errorf("no benchmark results matched -bench=%s in %s", bench, pkg)
	}
	rep.BenchTime = benchtime
	data, err := rep.JSON()
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d results)\n", out, len(rep.Results))

	if baseline == "" {
		return nil
	}
	base, err := os.ReadFile(baseline)
	if err != nil {
		return err
	}
	baseRep, err := obs.LoadBenchReport(base)
	if err != nil {
		return err
	}
	if regs := obs.CompareBench(baseRep, rep, regress); len(regs) > 0 {
		for _, r := range regs {
			fmt.Fprintln(os.Stderr, "regression:", r)
		}
		return fmt.Errorf("%d benchmark(s) regressed more than %g%% vs %s", len(regs), regress, baseline)
	}
	fmt.Printf("baseline gate passed: no benchmark regressed more than %g%% vs %s\n", regress, baseline)
	return nil
}
