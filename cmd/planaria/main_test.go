package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"planaria/internal/fault"
)

func TestParseRates(t *testing.T) {
	got, err := parseRates("0, 10,40")
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 10, 40}
	if len(got) != len(want) {
		t.Fatalf("parseRates = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("parseRates = %v, want %v", got, want)
		}
	}
	for _, bad := range []string{"", "x", "-3", "1;2"} {
		if _, err := parseRates(bad); err == nil {
			t.Errorf("parseRates(%q) accepted", bad)
		}
	}
}

func TestParseChips(t *testing.T) {
	got, err := parseChips("1, 2,4")
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 4}
	if len(got) != len(want) {
		t.Fatalf("parseChips = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("parseChips = %v, want %v", got, want)
		}
	}
	for _, bad := range []string{"", "x", "0", "-2", "1;2"} {
		if _, err := parseChips(bad); err == nil {
			t.Errorf("parseChips(%q) accepted", bad)
		}
	}
}

func TestParsePolicies(t *testing.T) {
	all, err := parsePolicies("all")
	if err != nil || len(all) != 3 {
		t.Fatalf("parsePolicies(all) = %v, %v", all, err)
	}
	// Aliases canonicalize.
	got, err := parsePolicies("rr, jsq")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != "round-robin" || got[1] != "least-work" {
		t.Fatalf("parsePolicies(rr, jsq) = %v", got)
	}
	for _, bad := range []string{"", "bogus", "round-robin,bogus"} {
		if _, err := parsePolicies(bad); err == nil {
			t.Errorf("parsePolicies(%q) accepted", bad)
		}
	}
}

// TestFaultsFlagParseError: a malformed -faults file must surface a
// parse error naming the offending construct, not a silent permanent
// fault (the schedule DSL rejects unknown fields for exactly this
// reason).
func TestFaultsFlagParseError(t *testing.T) {
	bad := filepath.Join(t.TempDir(), "bad.json")
	// "dur_ms" is the canonical typo for "for_ms".
	if err := os.WriteFile(bad, []byte(`{"units":16,"pods":4,"events":[{"at_ms":5,"kind":"subarray","unit":3,"dur_ms":4}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(bad)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fault.ParseJSON(data); err == nil || !strings.Contains(err.Error(), "dur_ms") {
		t.Fatalf("bad schedule parsed without naming the typo: %v", err)
	}
	// The example schedule shipped in examples/ must stay valid.
	good, err := os.ReadFile("../../examples/chaos/faults.json")
	if err != nil {
		t.Fatal(err)
	}
	s, err := fault.ParseJSON(good)
	if err != nil {
		t.Fatalf("examples/chaos/faults.json: %v", err)
	}
	if len(s.Events) == 0 {
		t.Fatal("example schedule is empty")
	}
}
