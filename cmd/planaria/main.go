// Command planaria regenerates the paper's evaluation artifacts.
//
// Usage:
//
//	planaria [flags] <experiment>...
//
// Experiments: table1, table2, fig12, fig13, fig14, fig15, fig16, fig17,
// fig18, fig19, ablation, models, all.
//
// Flags tune simulation fidelity; the defaults match EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"planaria/internal/dnn"
	"planaria/internal/experiments"
	"planaria/internal/metrics"
	"planaria/internal/workload"
)

func main() {
	requests := flag.Int("requests", 400, "requests per workload instance")
	instances := flag.Int("instances", 3, "workload instances (seeds) per evaluation point")
	seed := flag.Int64("seed", 1, "base random seed")
	rate := flag.Float64("rate", 100, "fixed arrival rate (QPS) for fig16")
	profile := flag.String("profile", "", "print the per-layer compiled profile of a model (e.g. -profile ResNet-50)")
	profAlloc := flag.Int("alloc", 16, "subarray allocation for -profile")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: planaria [flags] <experiment>...\n")
		fmt.Fprintf(os.Stderr, "experiments: table1 table2 fig12 fig13 fig14 fig15 fig16 fig17 fig18 fig19 ablation models all\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *profile != "" {
		rows, err := experiments.Profile(*profile, *profAlloc)
		if err != nil {
			fatal(err)
		}
		fmt.Println(experiments.FormatProfile(*profile, *profAlloc, rows))
		return
	}
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}

	want := map[string]bool{}
	for _, a := range flag.Args() {
		a = strings.ToLower(a)
		if a == "all" {
			for _, e := range []string{"models", "table1", "table2", "fig12", "fig13",
				"fig14", "fig15", "fig16", "fig17", "fig18", "fig19", "ablation"} {
				want[e] = true
			}
			continue
		}
		want[a] = true
	}

	start := time.Now()
	suite, err := experiments.NewSuite()
	if err != nil {
		fatal(err)
	}
	suite.Opt = metrics.Options{Requests: *requests, Instances: *instances, Seed: *seed}

	if want["models"] {
		fmt.Println("Benchmark models")
		for _, n := range dnn.All() {
			fmt.Println("  " + n.Summary())
		}
		fmt.Println()
	}
	if want["table1"] {
		fmt.Println(experiments.FormatTable1())
	}
	if want["table2"] {
		cells, err := suite.Table2Sensitivity()
		if err != nil {
			fatal(err)
		}
		fmt.Println(experiments.FormatTable2(cells))
	}

	needServing := want["fig12"] || want["fig13"] || want["fig14"] || want["fig15"]
	if needServing {
		rows, err := suite.ServingComparison()
		if err != nil {
			fatal(err)
		}
		if want["fig12"] {
			fmt.Println(experiments.FormatFig12(rows))
		}
		if want["fig13"] {
			fmt.Println(experiments.FormatFig13(rows))
		}
		if want["fig14"] {
			fmt.Println(experiments.FormatFig14(rows))
		}
		if want["fig15"] {
			fmt.Println(experiments.FormatFig15(rows))
		}
	}
	if want["fig16"] {
		rows, err := suite.Fig16ScaleOut(*rate)
		if err != nil {
			fatal(err)
		}
		fmt.Println(experiments.FormatFig16(rows))
	}
	if want["fig17"] {
		rows, err := suite.Fig17Isolated()
		if err != nil {
			fatal(err)
		}
		fmt.Println(experiments.FormatFig17(rows))
	}
	if want["fig18"] {
		rows, err := suite.Fig18Granularity()
		if err != nil {
			fatal(err)
		}
		fmt.Println(experiments.FormatFig18(rows))
	}
	if want["fig19"] {
		fmt.Println(experiments.FormatFig19())
	}
	if want["ablation"] {
		for _, sc := range workload.Scenarios() {
			rows, err := suite.SchedulerAblation(sc)
			if err != nil {
				fatal(err)
			}
			fmt.Println(experiments.FormatSchedulerAblation(rows))
		}
		orows, err := experiments.OmniAblation()
		if err != nil {
			fatal(err)
		}
		fmt.Println(experiments.FormatOmniAblation(orows))
		grows, err := suite.ExtendedGranularity()
		if err != nil {
			fatal(err)
		}
		fmt.Println("Extended granularity sweep (8/16/32/64):")
		fmt.Println(experiments.FormatFig18(grows))
		prows, err := suite.PenaltySensitivity(workload.ScenarioC(), workload.QoSMedium)
		if err != nil {
			fatal(err)
		}
		fmt.Println(experiments.FormatPenaltySensitivity(workload.ScenarioC(), workload.QoSMedium, prows))
	}
	fmt.Printf("done in %.1fs\n", time.Since(start).Seconds())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "planaria:", err)
	os.Exit(1)
}
