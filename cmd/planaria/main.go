// Command planaria regenerates the paper's evaluation artifacts.
//
// Usage:
//
//	planaria [flags] <experiment>...
//
// Experiments: table1, table2, fig12, fig13, fig14, fig15, fig16, fig17,
// fig18, fig19, ablation, models, trace, chaos, cluster, attrib,
// autoscale, all.
//
// The trace experiment runs one instrumented co-location instance on both
// systems and writes a Perfetto-loadable timeline (-trace-out) and a
// metrics snapshot (-metrics-out); open the timeline at ui.perfetto.dev.
//
// The chaos experiment sweeps fault-injection rates (-fault-rates) or
// replays a JSON fault schedule (-faults, see examples/chaos/faults.json)
// and compares SLA retention under Planaria's fission masking + load
// shedding (-shed) against PREMA's monolithic derate. -chaos-out writes
// the deterministic BENCH_chaos.json artifact.
//
// The cluster experiment sweeps multi-chip serving: cluster sizes
// (-chips), balancing policies (-policy), and optional dynamic batching
// (-batch-window); each cell reports its bisected maximum SLA-meeting
// QPS for both systems. -cluster-out writes the deterministic
// BENCH_cluster.json artifact.
//
// The attrib experiment answers "why did my request miss its SLA?": it
// runs a mixed-QoS stream through the cluster with the attribution
// ledger on and prints, per model × QoS level, where each request's
// latency went (admit-wait, batch-wait, queue-wait, compute,
// preempt-stall, retry-backoff, fault-stall), the dominant cause of
// each SLA violation, and the per-chip/fleet utilization breakdown
// (busy/idle/faulted/reconfig cycles). -attrib-out writes the
// deterministic BENCH_attrib.json artifact.
//
// The autoscale experiment replays a planet-scale workload trace — a
// 24 h diurnal rate curve with flash crowds (-trace-file for a custom
// JSON spec) — against a grid of static fleet sizes (-statics) and one
// autoscaled fleet (-ceiling slots), comparing SLA attainment against
// chip-hours billed. -autoscale-out writes the deterministic
// BENCH_autoscale.json artifact.
//
// Flags tune simulation fidelity; the defaults match EXPERIMENTS.md.
// Profiling flags (-cpuprofile, -memprofile, -phasestats) live here in
// the CLI: the simulation packages never read the wall clock (enforced by
// planaria-vet), so all wall-time accounting stays in this layer.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"planaria/internal/cluster"
	"planaria/internal/dnn"
	"planaria/internal/experiments"
	"planaria/internal/fault"
	"planaria/internal/metrics"
	"planaria/internal/sim"
	"planaria/internal/workload"
	"planaria/internal/workload/trace"
)

// phaseClock reports wall-clock and heap-allocation deltas per CLI phase
// on stderr when -phasestats is set.
type phaseClock struct {
	enabled    bool
	start      time.Time
	last       time.Time
	lastBytes  uint64
	lastObjs   uint64
}

func newPhaseClock(enabled bool) *phaseClock {
	p := &phaseClock{enabled: enabled, start: time.Now()}
	p.last = p.start
	if enabled {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		p.lastBytes, p.lastObjs = ms.TotalAlloc, ms.Mallocs
	}
	return p
}

// mark closes the current phase under the given name.
func (p *phaseClock) mark(name string) {
	if !p.enabled {
		return
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	fmt.Fprintf(os.Stderr, "phase %-12s %8.2fs  %10.1f MB  %12d allocs\n",
		name, time.Since(p.last).Seconds(),
		float64(ms.TotalAlloc-p.lastBytes)/1e6, ms.Mallocs-p.lastObjs)
	p.last = time.Now()
	p.lastBytes, p.lastObjs = ms.TotalAlloc, ms.Mallocs
}

func scenarioByName(name string) (workload.Scenario, error) {
	for _, sc := range workload.Scenarios() {
		if strings.EqualFold(sc.Name, name) || strings.EqualFold(sc.Name, "Workload-"+name) {
			return sc, nil
		}
	}
	return workload.Scenario{}, fmt.Errorf("unknown scenario %q (want A, B, or C)", name)
}

func qosByName(name string) (workload.QoSLevel, error) {
	for _, lvl := range workload.Levels {
		if strings.EqualFold(lvl.Name, name) || strings.EqualFold(lvl.Name, "QoS-"+name) {
			return lvl, nil
		}
	}
	return workload.QoSLevel{}, fmt.Errorf("unknown QoS level %q (want S, M, or H)", name)
}

func main() {
	os.Exit(run())
}

func run() int {
	requests := flag.Int("requests", 400, "requests per workload instance")
	instances := flag.Int("instances", 3, "workload instances (seeds) per evaluation point")
	seed := flag.Int64("seed", 1, "base random seed")
	rate := flag.Float64("rate", 100, "fixed arrival rate (QPS) for fig16 and trace")
	profile := flag.String("profile", "", "print the per-layer compiled profile of a model (e.g. -profile ResNet-50)")
	profAlloc := flag.Int("alloc", 16, "subarray allocation for -profile")
	scenario := flag.String("scenario", "A", "workload scenario for trace (A, B, or C)")
	qosName := flag.String("qos", "M", "QoS level for trace (S, M, or H)")
	traceOut := flag.String("trace-out", "", "write the trace experiment's Perfetto timeline JSON to this file")
	metricsOut := flag.String("metrics-out", "", "write the trace experiment's metrics snapshot JSON to this file")
	faultsFile := flag.String("faults", "", "JSON fault schedule to replay in the chaos experiment (overrides -fault-rates)")
	faultRates := flag.String("fault-rates", "", "comma-separated fault rates (faults/s) for the chaos sweep (default 0,10,40,160)")
	shedName := flag.String("shed", "doomed", "Planaria admission-control policy for chaos (none, doomed, or priority)")
	chaosOut := flag.String("chaos-out", "", "write the chaos experiment's BENCH_chaos.json artifact to this file")
	chipsSpec := flag.String("chips", "", "comma-separated cluster sizes for the cluster experiment (default 1,2,4)")
	policySpec := flag.String("policy", "all", "comma-separated balancing policies for the cluster experiment (round-robin, least-work, affinity, or all)")
	batchWindow := flag.Float64("batch-window", 0, "cluster dynamic-batching window in seconds (0 disables batching)")
	maxBatch := flag.Int("max-batch", 8, "cluster batch size cap (with -batch-window > 0)")
	clusterOut := flag.String("cluster-out", "", "write the cluster experiment's BENCH_cluster.json artifact to this file")
	attribOut := flag.String("attrib-out", "", "write the attrib experiment's BENCH_attrib.json artifact to this file")
	traceFile := flag.String("trace-file", "", "JSON trace spec for the autoscale experiment (default: the built-in 24 h planet-day trace)")
	staticsSpec := flag.String("statics", "", "comma-separated static fleet sizes for the autoscale experiment (default 1,2,3)")
	ceiling := flag.Int("ceiling", 0, "autoscaled fleet slot ceiling for the autoscale experiment (default 6)")
	autoscaleOut := flag.String("autoscale-out", "", "write the autoscale experiment's BENCH_autoscale.json artifact to this file")
	elastic := flag.Bool("elastic", false, "add the elastic re-fission system as an extra axis in the cluster, autoscale, and ablation experiments")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	phasestats := flag.Bool("phasestats", false, "report per-phase wall-clock and allocations on stderr")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: planaria [flags] <experiment>...\n")
		fmt.Fprintf(os.Stderr, "experiments: table1 table2 fig12 fig13 fig14 fig15 fig16 fig17 fig18 fig19 ablation models trace chaos cluster attrib autoscale all\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return fail(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fail(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "planaria:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows live objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "planaria:", err)
			}
		}()
	}
	phases := newPhaseClock(*phasestats)

	if *profile != "" {
		rows, err := experiments.Profile(*profile, *profAlloc)
		if err != nil {
			return fail(err)
		}
		fmt.Println(experiments.FormatProfile(*profile, *profAlloc, rows))
		phases.mark("profile")
		return 0
	}
	if flag.NArg() == 0 {
		flag.Usage()
		return 2
	}

	want := map[string]bool{}
	for _, a := range flag.Args() {
		a = strings.ToLower(a)
		if a == "all" {
			for _, e := range []string{"models", "table1", "table2", "fig12", "fig13",
				"fig14", "fig15", "fig16", "fig17", "fig18", "fig19", "ablation"} {
				want[e] = true
			}
			continue
		}
		want[a] = true
	}

	start := time.Now()
	suite, err := experiments.NewSuite()
	if err != nil {
		return fail(err)
	}
	suite.Opt = metrics.Options{Requests: *requests, Instances: *instances, Seed: *seed}
	phases.mark("compile")

	if want["models"] {
		fmt.Println("Benchmark models")
		for _, n := range dnn.All() {
			fmt.Println("  " + n.Summary())
		}
		fmt.Println()
	}
	if want["table1"] {
		fmt.Println(experiments.FormatTable1())
	}
	if want["table2"] {
		cells, err := suite.Table2Sensitivity()
		if err != nil {
			return fail(err)
		}
		fmt.Println(experiments.FormatTable2(cells))
		phases.mark("table2")
	}

	needServing := want["fig12"] || want["fig13"] || want["fig14"] || want["fig15"]
	if needServing {
		rows, err := suite.ServingComparison()
		if err != nil {
			return fail(err)
		}
		phases.mark("serving")
		if want["fig12"] {
			fmt.Println(experiments.FormatFig12(rows))
		}
		if want["fig13"] {
			fmt.Println(experiments.FormatFig13(rows))
		}
		if want["fig14"] {
			fmt.Println(experiments.FormatFig14(rows))
		}
		if want["fig15"] {
			fmt.Println(experiments.FormatFig15(rows))
		}
	}
	if want["fig16"] {
		rows, err := suite.Fig16ScaleOut(*rate)
		if err != nil {
			return fail(err)
		}
		fmt.Println(experiments.FormatFig16(rows))
		phases.mark("fig16")
	}
	if want["fig17"] {
		rows, err := suite.Fig17Isolated()
		if err != nil {
			return fail(err)
		}
		fmt.Println(experiments.FormatFig17(rows))
		phases.mark("fig17")
	}
	if want["fig18"] {
		rows, err := suite.Fig18Granularity()
		if err != nil {
			return fail(err)
		}
		fmt.Println(experiments.FormatFig18(rows))
		phases.mark("fig18")
	}
	if want["fig19"] {
		fmt.Println(experiments.FormatFig19())
	}
	if want["ablation"] {
		for _, sc := range workload.Scenarios() {
			rows, err := suite.SchedulerAblation(sc)
			if err != nil {
				return fail(err)
			}
			fmt.Println(experiments.FormatSchedulerAblation(rows))
		}
		orows, err := experiments.OmniAblation()
		if err != nil {
			return fail(err)
		}
		fmt.Println(experiments.FormatOmniAblation(orows))
		grows, err := suite.ExtendedGranularity()
		if err != nil {
			return fail(err)
		}
		fmt.Println("Extended granularity sweep (8/16/32/64):")
		fmt.Println(experiments.FormatFig18(grows))
		prows, err := suite.PenaltySensitivity(workload.ScenarioC(), workload.QoSMedium)
		if err != nil {
			return fail(err)
		}
		fmt.Println(experiments.FormatPenaltySensitivity(workload.ScenarioC(), workload.QoSMedium, prows))
		if *elastic {
			erows, err := suite.ElasticAblation(workload.ScenarioB(), workload.QoSHard, nil)
			if err != nil {
				return fail(err)
			}
			fmt.Println(experiments.FormatElasticAblation(erows))
		}
		phases.mark("ablation")
	}
	if want["trace"] {
		if err := runTrace(suite, *scenario, *qosName, *rate, *requests, *seed, *traceOut, *metricsOut); err != nil {
			return fail(err)
		}
		phases.mark("trace")
	}
	if want["chaos"] {
		if err := runChaos(suite, *scenario, *qosName, *faultsFile, *faultRates, *shedName, *chaosOut, *requests, *instances, *seed); err != nil {
			return fail(err)
		}
		phases.mark("chaos")
	}
	if want["cluster"] {
		if err := runCluster(suite, *scenario, *qosName, *chipsSpec, *policySpec,
			*batchWindow, *maxBatch, *clusterOut, *requests, *instances, *seed, *elastic); err != nil {
			return fail(err)
		}
		phases.mark("cluster")
	}
	if want["attrib"] {
		if err := runAttrib(suite, *scenario, *rate, *batchWindow, *maxBatch,
			*attribOut, *requests, *seed); err != nil {
			return fail(err)
		}
		phases.mark("attrib")
	}
	if want["autoscale"] {
		if err := runAutoscale(suite, *traceFile, *staticsSpec, *ceiling, *autoscaleOut, *elastic); err != nil {
			return fail(err)
		}
		phases.mark("autoscale")
	}
	fmt.Printf("done in %.1fs\n", time.Since(start).Seconds())
	return 0
}

// runTrace executes the instrumented co-location run and writes its
// artifacts. Output filenames default next to the working directory.
func runTrace(suite *experiments.Suite, scenario, qosName string, rate float64, requests int, seed int64, traceOut, metricsOut string) error {
	sc, err := scenarioByName(scenario)
	if err != nil {
		return err
	}
	lvl, err := qosByName(qosName)
	if err != nil {
		return err
	}
	res, err := suite.TracedRun(sc, lvl, rate, requests, seed)
	if err != nil {
		return err
	}
	if traceOut == "" {
		traceOut = "trace.json"
	}
	if err := os.WriteFile(traceOut, res.TraceJSON, 0o644); err != nil {
		return err
	}
	fmt.Printf("trace: %s (%d bytes) — open at https://ui.perfetto.dev\n", traceOut, len(res.TraceJSON))
	if metricsOut != "" {
		if err := os.WriteFile(metricsOut, append(res.MetricsJSON, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("metrics: %s (%d bytes)\n", metricsOut, len(res.MetricsJSON))
	}
	fmt.Println()
	fmt.Println(res.MetricsText)
	return nil
}

// parseRates decodes a -fault-rates list ("0,10,40").
func parseRates(spec string) ([]float64, error) {
	var rates []float64
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		r, err := strconv.ParseFloat(part, 64)
		if err != nil || r < 0 {
			return nil, fmt.Errorf("bad fault rate %q (want a non-negative number)", part)
		}
		rates = append(rates, r)
	}
	if len(rates) == 0 {
		return nil, fmt.Errorf("-fault-rates %q names no rates", spec)
	}
	return rates, nil
}

// runChaos executes the fault-injection sweep (or a single replayed
// schedule) and prints the comparison table.
func runChaos(suite *experiments.Suite, scenario, qosName, faultsFile, rateSpec, shedName, chaosOut string, requests, instances int, seed int64) error {
	sc, err := scenarioByName(scenario)
	if err != nil {
		return err
	}
	lvl, err := qosByName(qosName)
	if err != nil {
		return err
	}
	o := experiments.DefaultChaosOptions()
	o.Scenario, o.Level = sc, lvl
	o.Opt = metrics.Options{Requests: requests, Instances: instances, Seed: seed}
	if o.Shed, err = sim.ParseShedPolicy(shedName); err != nil {
		return err
	}
	if rateSpec != "" {
		if o.Rates, err = parseRates(rateSpec); err != nil {
			return err
		}
	}
	if faultsFile != "" {
		data, err := os.ReadFile(faultsFile)
		if err != nil {
			return err
		}
		if o.Schedule, err = fault.ParseJSON(data); err != nil {
			return fmt.Errorf("%s: %w", faultsFile, err)
		}
	}
	rows, err := suite.ChaosSweep(o)
	if err != nil {
		return err
	}
	fmt.Println(experiments.FormatChaos(o, rows))
	if chaosOut != "" {
		j, err := experiments.ChaosJSON(o, rows)
		if err != nil {
			return err
		}
		if err := os.WriteFile(chaosOut, j, 0o644); err != nil {
			return err
		}
		fmt.Printf("chaos: %s (%d bytes)\n", chaosOut, len(j))
	}
	return nil
}

// parseChips decodes a -chips list ("1,2,4").
func parseChips(spec string) ([]int, error) {
	var chips []int
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad cluster size %q (want a positive integer)", part)
		}
		chips = append(chips, n)
	}
	if len(chips) == 0 {
		return nil, fmt.Errorf("-chips %q names no cluster sizes", spec)
	}
	return chips, nil
}

// parsePolicies decodes a -policy list; "all" selects every built-in.
func parsePolicies(spec string) ([]string, error) {
	if strings.EqualFold(strings.TrimSpace(spec), "all") {
		return cluster.Policies(), nil
	}
	var pols []string
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		b, err := cluster.NewBalancer(part)
		if err != nil {
			return nil, err
		}
		pols = append(pols, b.Name())
	}
	if len(pols) == 0 {
		return nil, fmt.Errorf("-policy %q names no policies", spec)
	}
	return pols, nil
}

// runCluster executes the multi-chip serving sweep and prints the
// scale-out table.
func runCluster(suite *experiments.Suite, scenario, qosName, chipsSpec, policySpec string,
	batchWindow float64, maxBatch int, clusterOut string, requests, instances int, seed int64, elastic bool) error {
	sc, err := scenarioByName(scenario)
	if err != nil {
		return err
	}
	lvl, err := qosByName(qosName)
	if err != nil {
		return err
	}
	o := experiments.DefaultClusterOptions()
	o.Scenario, o.Level = sc, lvl
	o.Opt = metrics.Options{Requests: requests, Instances: instances, Seed: seed}
	o.BatchWindow, o.MaxBatch = batchWindow, maxBatch
	o.Elastic = elastic
	if chipsSpec != "" {
		if o.Chips, err = parseChips(chipsSpec); err != nil {
			return err
		}
	}
	if o.Policies, err = parsePolicies(policySpec); err != nil {
		return err
	}
	rows, err := suite.ClusterSweep(o)
	if err != nil {
		return err
	}
	fmt.Println(experiments.FormatCluster(o, rows))
	if clusterOut != "" {
		j, err := experiments.ClusterJSON(o, rows)
		if err != nil {
			return err
		}
		if err := os.WriteFile(clusterOut, j, 0o644); err != nil {
			return err
		}
		fmt.Printf("cluster: %s (%d bytes)\n", clusterOut, len(j))
	}
	return nil
}

// runAttrib executes the SLA attribution run and prints the root-cause
// breakdown plus utilization tables.
func runAttrib(suite *experiments.Suite, scenario string, rate, batchWindow float64,
	maxBatch int, attribOut string, requests int, seed int64) error {
	sc, err := scenarioByName(scenario)
	if err != nil {
		return err
	}
	o := experiments.DefaultAttribOptions()
	o.Scenario = sc
	o.Opt.Requests, o.Opt.Seed = requests, seed
	if rate > 0 {
		o.QPS = rate
	}
	if batchWindow > 0 {
		o.BatchWindow, o.MaxBatch = batchWindow, maxBatch
	}
	rows, err := suite.AttribRun(o)
	if err != nil {
		return err
	}
	fmt.Println(experiments.FormatAttrib(o, rows))
	if attribOut != "" {
		j, err := experiments.AttribJSON(o, rows)
		if err != nil {
			return err
		}
		if err := os.WriteFile(attribOut, j, 0o644); err != nil {
			return err
		}
		fmt.Printf("attrib: %s (%d bytes)\n", attribOut, len(j))
	}
	return nil
}

// runAutoscale replays the planet-scale trace against static fleets and
// the autoscaled one, printing the SLA-versus-chip-hours table.
func runAutoscale(suite *experiments.Suite, traceFile, staticsSpec string,
	ceiling int, autoscaleOut string, elastic bool) error {
	o := experiments.DefaultAutoscaleOptions()
	o.Elastic = elastic
	if traceFile != "" {
		data, err := os.ReadFile(traceFile)
		if err != nil {
			return err
		}
		if o.Trace, err = trace.ParseJSON(data); err != nil {
			return err
		}
	}
	if staticsSpec != "" {
		var err error
		if o.Statics, err = parseChips(staticsSpec); err != nil {
			return err
		}
	}
	if ceiling > 0 {
		o.Chips = ceiling
	}
	rows, err := suite.AutoscaleSweep(o)
	if err != nil {
		return err
	}
	fmt.Println(experiments.FormatAutoscale(o, rows))
	if autoscaleOut != "" {
		j, err := experiments.AutoscaleJSON(o, rows)
		if err != nil {
			return err
		}
		if err := os.WriteFile(autoscaleOut, j, 0o644); err != nil {
			return err
		}
		fmt.Printf("autoscale: %s (%d bytes)\n", autoscaleOut, len(j))
	}
	return nil
}

func fail(err error) int {
	fmt.Fprintln(os.Stderr, "planaria:", err)
	return 1
}
