// Command planaria-vet runs the repository's determinism and
// performance analyzers (internal/analysis) over the named package
// patterns and reports every violation of the determinism contract
// (DESIGN.md §8) or the performance contract (DESIGN.md §13). It exits
// non-zero when any finding remains, so CI can gate merges on a clean
// tree:
//
//	go run ./cmd/planaria-vet ./...
//
// Patterns follow the go tool: a directory, or a directory followed by
// /... to walk its subtree. With no arguments, ./... is assumed.
// Non-test files of each package are analyzed; testdata trees are
// skipped.
//
// All matched packages are loaded before any analyzer runs so the
// //perf:hot closure propagates across package boundaries (sim.Node.Run
// reaches into sched, obs, fault, ...).
//
// With -json FILE, the diagnostics are additionally written to FILE as
// a JSON array of {file, line, col, analyzer, message} objects — CI
// uploads this as a build artifact. The file is written (possibly as an
// empty array) whether or not findings exist.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"planaria/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	jsonOut := flag.String("json", "", "write diagnostics to `file` as JSON")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: planaria-vet [-list] [-json file] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-11s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	findings, err := vet(patterns, *jsonOut)
	if err != nil {
		fmt.Fprintf(os.Stderr, "planaria-vet: %v\n", err)
		os.Exit(2)
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "planaria-vet: %d finding(s)\n", findings)
		os.Exit(1)
	}
}

// jsonDiagnostic is one finding in the -json artifact.
type jsonDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func vet(patterns []string, jsonOut string) (int, error) {
	cwd, err := os.Getwd()
	if err != nil {
		return 0, err
	}
	loader, err := analysis.NewLoader(cwd)
	if err != nil {
		return 0, err
	}
	dirs, err := analysis.PackageDirs(cwd, patterns)
	if err != nil {
		return 0, err
	}
	if len(dirs) == 0 {
		return 0, fmt.Errorf("no packages match %v", patterns)
	}

	// Load everything first: the //perf:hot closure must see every
	// package so hotness propagates across import edges.
	pkgs := make([]*analysis.Package, 0, len(dirs))
	for _, dir := range dirs {
		pkg, err := loader.LoadDir(dir)
		if err != nil {
			return 0, err
		}
		pkgs = append(pkgs, pkg)
	}
	hot := analysis.ComputeHot(pkgs)

	diags := []jsonDiagnostic{}
	for _, pkg := range pkgs {
		for _, a := range analysis.All() {
			found, err := analysis.RunWithHot(a, pkg, hot)
			if err != nil {
				return 0, fmt.Errorf("%s on %s: %v", a.Name, pkg.Path, err)
			}
			for _, d := range found {
				pos := pkg.Fset.Position(d.Pos)
				rel, rerr := filepath.Rel(cwd, pos.Filename)
				if rerr != nil {
					rel = pos.Filename
				}
				fmt.Printf("%s:%d:%d: %s (%s)\n", rel, pos.Line, pos.Column, d.Message, d.Analyzer)
				diags = append(diags, jsonDiagnostic{
					File:     filepath.ToSlash(rel),
					Line:     pos.Line,
					Col:      pos.Column,
					Analyzer: d.Analyzer,
					Message:  d.Message,
				})
			}
		}
	}

	if jsonOut != "" {
		data, err := json.MarshalIndent(diags, "", "  ")
		if err != nil {
			return 0, err
		}
		data = append(data, '\n')
		if err := os.WriteFile(jsonOut, data, 0o644); err != nil {
			return 0, err
		}
	}
	return len(diags), nil
}
