// Command planaria-vet runs the repository's determinism analyzers
// (internal/analysis) over the named package patterns and reports every
// violation of the determinism contract (DESIGN.md §8). It exits
// non-zero when any finding remains, so CI can gate merges on a clean
// tree:
//
//	go run ./cmd/planaria-vet ./...
//
// Patterns follow the go tool: a directory, or a directory followed by
// /... to walk its subtree. With no arguments, ./... is assumed.
// Non-test files of each package are analyzed; testdata trees are
// skipped.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"planaria/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: planaria-vet [-list] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-11s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	findings, err := vet(patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "planaria-vet: %v\n", err)
		os.Exit(2)
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "planaria-vet: %d finding(s)\n", findings)
		os.Exit(1)
	}
}

func vet(patterns []string) (int, error) {
	cwd, err := os.Getwd()
	if err != nil {
		return 0, err
	}
	loader, err := analysis.NewLoader(cwd)
	if err != nil {
		return 0, err
	}
	dirs, err := analysis.PackageDirs(cwd, patterns)
	if err != nil {
		return 0, err
	}
	if len(dirs) == 0 {
		return 0, fmt.Errorf("no packages match %v", patterns)
	}
	findings := 0
	for _, dir := range dirs {
		pkg, err := loader.LoadDir(dir)
		if err != nil {
			return 0, err
		}
		for _, a := range analysis.All() {
			diags, err := analysis.Run(a, pkg)
			if err != nil {
				return 0, fmt.Errorf("%s on %s: %v", a.Name, pkg.Path, err)
			}
			for _, d := range diags {
				pos := pkg.Fset.Position(d.Pos)
				rel, rerr := filepath.Rel(cwd, pos.Filename)
				if rerr != nil {
					rel = pos.Filename
				}
				fmt.Printf("%s:%d:%d: %s (%s)\n", rel, pos.Line, pos.Column, d.Message, d.Analyzer)
				findings++
			}
		}
	}
	return findings, nil
}
