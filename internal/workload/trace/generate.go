package trace

import (
	"fmt"
	"math"
	"math/rand"

	"planaria/internal/workload"
)

// userZipfS is the fixed Zipf exponent for the per-user request-volume
// distribution: heavy enough that a handful of users dominates, which is
// what makes UserBias produce visible per-user model-mix skew.
const userZipfS = 1.2

// zipfCDF precomputes the cumulative weights of a finite Zipf(s)
// distribution over n ranks so sampling is one uniform draw + one binary
// search. s == 0 degenerates to uniform.
type zipfCDF struct {
	cum []float64 // cum[i] = P(rank <= i); cum[n-1] == 1 exactly
}

func newZipfCDF(n int, s float64) zipfCDF {
	cum := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		total += math.Pow(float64(i+1), -s)
		cum[i] = total
	}
	for i := range cum {
		cum[i] /= total
	}
	cum[n-1] = 1 // close the last bucket against rounding
	return zipfCDF{cum: cum}
}

// sample draws a rank in [0, n) from one uniform variate.
func (z zipfCDF) sample(u float64) int {
	// Binary search for the first cum[i] > u.
	lo, hi := 0, len(z.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cum[mid] > u {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// favoriteOf maps a user rank to that user's favorite model index — a
// deterministic hash (splitmix-style mix) so the assignment is stable
// across runs and roughly uniform across models, independent of the
// user's popularity rank.
func favoriteOf(user, nModels int) int {
	x := uint64(user) + 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int(x % uint64(nModels))
}

// Generate materializes the spec's request stream deterministically from
// its seed. Arrivals follow the non-stationary Poisson process λ(t) via
// Lewis–Shedler thinning against the dominating rate peakRate(); each
// accepted arrival then draws its model (Zipf popularity, optionally
// overridden by the requesting user's favorite) and priority, and is
// emitted through workload.NewRequest — the same path the stationary
// generator uses, so deadline/QoS semantics are identical.
func (s *Spec) Generate() ([]workload.Request, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	level, _ := qosByName(s.QoS)
	rng := rand.New(rand.NewSource(s.Seed))
	models := newZipfCDF(len(s.Models), s.ZipfS)
	var users zipfCDF
	if s.Users > 0 {
		users = newZipfCDF(s.Users, userZipfS)
	}
	lambdaMax := s.peakRate()
	// Pre-size from the expected count: horizon × a coarse mean rate.
	expect := int(s.HorizonS * s.BaseQPS)
	if s.MaxRequests > 0 && expect > s.MaxRequests {
		expect = s.MaxRequests
	}
	reqs := make([]workload.Request, 0, expect+expect/8+16)
	t := 0.0
	for {
		// Candidate from the homogeneous dominating process...
		t += rng.ExpFloat64() / lambdaMax
		if t >= s.HorizonS {
			break
		}
		// ...thinned by the instantaneous rate ratio. The uniform draw
		// happens unconditionally so the consumed-variate count per
		// candidate is fixed — editing a crowd perturbs acceptance, not
		// the stream's alignment.
		keep := rng.Float64() < s.rateAt(t)/lambdaMax
		if !keep {
			continue
		}
		model := s.Models[models.sample(rng.Float64())]
		if s.Users > 0 {
			user := users.sample(rng.Float64())
			if s.UserBias > 0 && rng.Float64() < s.UserBias {
				model = s.Models[favoriteOf(user, len(s.Models))]
			}
		}
		r, err := workload.NewRequest(len(reqs), t, model, rng.Intn(11)+1, level)
		if err != nil {
			return nil, err
		}
		reqs = append(reqs, r)
		if s.MaxRequests > 0 && len(reqs) >= s.MaxRequests {
			break
		}
	}
	if len(reqs) == 0 {
		return nil, fmt.Errorf("trace: spec %q generated an empty stream (horizon %.3gs at %.3g qps)", s.Name, s.HorizonS, s.BaseQPS)
	}
	return reqs, nil
}

// Stationary builds the degenerate spec for a flat Poisson stream over
// the scenario's model mix — the trace-format expression of
// workload.Generate's setting (the draw sequences differ, but the
// distribution is the same).
func Stationary(sc workload.Scenario, level workload.QoSLevel, qps float64, n int, seed int64) *Spec {
	return &Spec{
		Version:     FormatVersion,
		Name:        sc.Name + "-stationary",
		Models:      sc.Models,
		QoS:         level.Name,
		Seed:        seed,
		HorizonS:    float64(n)/qps*4 + 1, // generous horizon; MaxRequests ends the stream
		BaseQPS:     qps,
		MaxRequests: n,
	}
}
