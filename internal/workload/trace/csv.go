package trace

import (
	"bytes"
	"fmt"
	"strconv"
	"strings"

	"planaria/internal/workload"
)

// The CSV stream form materializes an arrival list. Line 1 is a pragma
// carrying the format version and the QoS level the stream was generated
// under; line 2 is the column header; each following row is one request.
// Floats are rendered with strconv 'g'/-1 (shortest exact round-trip),
// so parse → encode is byte-stable.
//
//	#planaria-trace v1 qos=QoS-M
//	id,at_s,model,priority
//	0,0.0517181105715,ResNet-50,7
const csvHeader = "id,at_s,model,priority"

// EncodeCSV renders a request stream in the CSV form. The stream must be
// homogeneous in QoS level (one pragma covers the file); IDs and arrival
// instants are written as generated.
func EncodeCSV(reqs []workload.Request) ([]byte, error) {
	if len(reqs) == 0 {
		return nil, fmt.Errorf("trace: refusing to encode an empty stream")
	}
	level := reqs[0].Level
	var buf bytes.Buffer
	buf.Grow(len(reqs) * 40)
	fmt.Fprintf(&buf, "#planaria-trace v%d qos=%s\n%s\n", FormatVersion, level, csvHeader)
	for i := range reqs {
		r := &reqs[i]
		if r.Level != level {
			return nil, fmt.Errorf("trace: mixed QoS levels in stream (%q then %q at row %d)", level, r.Level, i)
		}
		if strings.ContainsAny(r.Model, ",\n") {
			return nil, fmt.Errorf("trace: model name %q not CSV-safe", r.Model)
		}
		buf.WriteString(strconv.Itoa(r.ID))
		buf.WriteByte(',')
		buf.WriteString(strconv.FormatFloat(r.Arrival, 'g', -1, 64))
		buf.WriteByte(',')
		buf.WriteString(r.Model)
		buf.WriteByte(',')
		buf.WriteString(strconv.Itoa(r.Priority))
		buf.WriteByte('\n')
	}
	return buf.Bytes(), nil
}

// ParseCSV replays a CSV stream back into requests. Every row goes
// through workload.NewRequest, so the replayed requests carry exactly
// the deadline/QoS semantics the generator would have assigned —
// externally captured traces cannot smuggle in their own deadlines.
func ParseCSV(data []byte) ([]workload.Request, error) {
	lines := strings.Split(string(data), "\n")
	if len(lines) < 3 {
		return nil, fmt.Errorf("trace: CSV stream too short")
	}
	var version int
	var qosName string
	if _, err := fmt.Sscanf(lines[0], "#planaria-trace v%d qos=%s", &version, &qosName); err != nil {
		return nil, fmt.Errorf("trace: bad CSV pragma %q: %w", lines[0], err)
	}
	if version != FormatVersion {
		return nil, fmt.Errorf("trace: unsupported CSV version %d (want %d)", version, FormatVersion)
	}
	level, ok := qosByName(qosName)
	if !ok {
		return nil, fmt.Errorf("trace: unknown QoS level %q in CSV pragma", qosName)
	}
	if lines[1] != csvHeader {
		return nil, fmt.Errorf("trace: bad CSV header %q (want %q)", lines[1], csvHeader)
	}
	reqs := make([]workload.Request, 0, len(lines)-2)
	prevAt := 0.0
	for ln, line := range lines[2:] {
		if line == "" {
			continue // trailing newline / blank lines
		}
		row := ln + 3 // 1-based file line for messages
		f := strings.Split(line, ",")
		if len(f) != 4 {
			return nil, fmt.Errorf("trace: CSV line %d has %d fields (want 4)", row, len(f))
		}
		id, err := strconv.Atoi(f[0])
		if err != nil {
			return nil, fmt.Errorf("trace: CSV line %d id: %w", row, err)
		}
		at, err := strconv.ParseFloat(f[1], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: CSV line %d arrival: %w", row, err)
		}
		if at < prevAt || at < 0 {
			return nil, fmt.Errorf("trace: CSV line %d arrival %v out of order", row, at)
		}
		prio, err := strconv.Atoi(f[3])
		if err != nil {
			return nil, fmt.Errorf("trace: CSV line %d priority: %w", row, err)
		}
		if prio < 1 || prio > 11 {
			return nil, fmt.Errorf("trace: CSV line %d priority %d outside 1..11", row, prio)
		}
		if id != len(reqs) {
			return nil, fmt.Errorf("trace: CSV line %d id %d (want %d — IDs are dense)", row, id, len(reqs))
		}
		r, err := workload.NewRequest(id, at, f[2], prio, level)
		if err != nil {
			return nil, fmt.Errorf("trace: CSV line %d: %w", row, err)
		}
		reqs = append(reqs, r)
		prevAt = at
	}
	if len(reqs) == 0 {
		return nil, fmt.Errorf("trace: CSV stream has no rows")
	}
	return reqs, nil
}
