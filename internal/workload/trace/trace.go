// Package trace is the planet-scale workload layer: a compact, versioned
// trace format plus a deterministic generator for the non-stationary
// arrival processes cloud serving actually sees — diurnal rate curves,
// multiplicative flash crowds with ramp/decay, Zipf model-popularity
// skew, and heavy-tailed per-user request mixes (the INFaaS-style
// consolidation setting PREMA motivates). A trace replays into the same
// workload.Request stream the stationary Poisson generator emits, through
// the same workload.NewRequest emission path, so every serving layer
// (sim.Node, cluster.Run) consumes it unchanged.
//
// Two on-disk forms exist:
//
//   - the JSON *spec* (ParseJSON/EncodeJSON): the generative description
//     — rate curve, crowds, skew — replayed deterministically from its
//     seed. Specs are small, hand-editable, and canonical: parse → encode
//     is a fixed point (FuzzTraceJSON pins it), so artifacts embedding a
//     spec are byte-comparable.
//   - the CSV *stream* (ParseCSV/EncodeCSV): a materialized arrival list
//     (id, arrival, model, priority), for replaying externally captured
//     traces or freezing a generated stream.
//
// Everything is simulated-time only and seeded (the package is in
// planaria-vet's deterministic set): the same spec yields the same
// request stream, byte-for-byte, on every run.
package trace

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"sort"

	"planaria/internal/workload"
)

// FormatVersion is the trace spec version this package reads and writes.
const FormatVersion = 1

// RatePoint is one control point of the piecewise-linear diurnal rate
// curve: at AtS seconds into the trace the rate multiplier is Mult.
// Between points the multiplier interpolates linearly; before the first
// point it holds the first Mult, after the last it holds the last.
type RatePoint struct {
	AtS  float64 `json:"at_s"`
	Mult float64 `json:"mult"`
}

// Crowd is one flash crowd: starting at AtS the arrival rate ramps
// linearly over RampS seconds to Mult× its base value, then decays
// exponentially back toward 1× with time constant DecayS. Overlapping
// crowds multiply.
type Crowd struct {
	AtS    float64 `json:"at_s"`
	Mult   float64 `json:"mult"`
	RampS  float64 `json:"ramp_s"`
	DecayS float64 `json:"decay_s"`
}

// Spec is the versioned trace description. The zero values of the
// optional fields (Diurnal, Crowds, ZipfS, Users, UserBias) make the
// spec a plain stationary Poisson stream — the degenerate trace that
// subsumes workload.Generate's setting.
type Spec struct {
	Version int    `json:"version"`
	Name    string `json:"name"`
	// Models is the served mix, in popularity-rank order (rank 0 is the
	// most popular under Zipf skew).
	Models []string `json:"models"`
	// QoS names the workload QoS level ("QoS-S", "QoS-M", "QoS-H").
	QoS  string `json:"qos"`
	Seed int64  `json:"seed"`
	// HorizonS is the trace duration in simulated seconds.
	HorizonS float64 `json:"horizon_s"`
	// BaseQPS is the 1×-multiplier arrival rate.
	BaseQPS float64 `json:"base_qps"`
	// Diurnal is the piecewise-linear rate-multiplier curve (empty = flat 1×).
	Diurnal []RatePoint `json:"diurnal,omitempty"`
	// Crowds lists the flash crowds (empty = none).
	Crowds []Crowd `json:"crowds,omitempty"`
	// ZipfS is the model-popularity Zipf exponent: model rank r draws
	// with weight (r+1)^-ZipfS. 0 means uniform.
	ZipfS float64 `json:"zipf_s,omitempty"`
	// Users is the simulated user population for heavy-tailed per-user
	// request mixes; 0 disables user modeling. Users are drawn Zipf(1.2)
	// by rank, so a few heavy users dominate the stream.
	Users int `json:"users,omitempty"`
	// UserBias is the probability that a request from a user asks for
	// that user's favorite model (a deterministic function of the user
	// ID) instead of the popularity draw; 0 disables the bias.
	UserBias float64 `json:"user_bias,omitempty"`
	// MaxRequests caps the generated stream length (0 = unbounded: the
	// horizon alone ends the trace).
	MaxRequests int `json:"max_requests,omitempty"`
}

// qosByName resolves a QoS level name.
func qosByName(name string) (workload.QoSLevel, bool) {
	for _, lvl := range workload.Levels {
		if lvl.Name == name {
			return lvl, true
		}
	}
	return workload.QoSLevel{}, false
}

// Validate checks the spec's internal consistency. Parsed and
// hand-constructed specs both go through it before generation.
func (s *Spec) Validate() error {
	if s.Version != FormatVersion {
		return fmt.Errorf("trace: unsupported spec version %d (want %d)", s.Version, FormatVersion)
	}
	if len(s.Models) == 0 {
		return fmt.Errorf("trace: spec %q names no models", s.Name)
	}
	seen := make([]string, 0, len(s.Models))
	for _, m := range s.Models {
		if _, ok := workload.BaseQoSSeconds[m]; !ok {
			return fmt.Errorf("trace: no QoS bound for model %q", m)
		}
		for _, p := range seen {
			if p == m {
				return fmt.Errorf("trace: duplicate model %q", m)
			}
		}
		seen = append(seen, m)
	}
	if _, ok := qosByName(s.QoS); !ok {
		return fmt.Errorf("trace: unknown QoS level %q (want QoS-S, QoS-M, or QoS-H)", s.QoS)
	}
	if !(s.HorizonS > 0) || math.IsInf(s.HorizonS, 0) {
		return fmt.Errorf("trace: need a positive finite horizon, got %v", s.HorizonS)
	}
	if !(s.BaseQPS > 0) || math.IsInf(s.BaseQPS, 0) {
		return fmt.Errorf("trace: need a positive finite base QPS, got %v", s.BaseQPS)
	}
	for i, p := range s.Diurnal {
		if math.IsNaN(p.AtS) || math.IsInf(p.AtS, 0) || p.AtS < 0 {
			return fmt.Errorf("trace: diurnal point %d at %v", i, p.AtS)
		}
		if !(p.Mult >= 0) || math.IsInf(p.Mult, 0) {
			return fmt.Errorf("trace: diurnal point %d has multiplier %v", i, p.Mult)
		}
		if i > 0 && p.AtS <= s.Diurnal[i-1].AtS {
			return fmt.Errorf("trace: diurnal points must be strictly increasing in time (point %d)", i)
		}
	}
	for i, c := range s.Crowds {
		if math.IsNaN(c.AtS) || math.IsInf(c.AtS, 0) || c.AtS < 0 {
			return fmt.Errorf("trace: crowd %d at %v", i, c.AtS)
		}
		if !(c.Mult >= 1) || math.IsInf(c.Mult, 0) {
			return fmt.Errorf("trace: crowd %d needs multiplier >= 1, got %v", i, c.Mult)
		}
		if !(c.RampS > 0) || math.IsInf(c.RampS, 0) {
			return fmt.Errorf("trace: crowd %d needs a positive ramp, got %v", i, c.RampS)
		}
		if !(c.DecayS > 0) || math.IsInf(c.DecayS, 0) {
			return fmt.Errorf("trace: crowd %d needs a positive decay, got %v", i, c.DecayS)
		}
		if i > 0 && c.AtS < s.Crowds[i-1].AtS {
			return fmt.Errorf("trace: crowds must be sorted by onset (crowd %d)", i)
		}
	}
	if math.IsNaN(s.ZipfS) || math.IsInf(s.ZipfS, 0) || s.ZipfS < 0 {
		return fmt.Errorf("trace: Zipf exponent %v", s.ZipfS)
	}
	if s.Users < 0 {
		return fmt.Errorf("trace: negative user population %d", s.Users)
	}
	if math.IsNaN(s.UserBias) || s.UserBias < 0 || s.UserBias > 1 {
		return fmt.Errorf("trace: user bias %v outside [0, 1]", s.UserBias)
	}
	if s.UserBias > 0 && s.Users == 0 {
		return fmt.Errorf("trace: user bias %v needs a user population", s.UserBias)
	}
	if s.MaxRequests < 0 {
		return fmt.Errorf("trace: negative request cap %d", s.MaxRequests)
	}
	return nil
}

// ParseJSON decodes and validates a trace spec. Unknown fields are
// rejected so a typo ("zipf" for "zipf_s") cannot silently change the
// workload.
func ParseJSON(data []byte) (*Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("trace: parse spec: %w", err)
	}
	// Exactly one JSON value: trailing garbage is a malformed file.
	if dec.More() {
		return nil, fmt.Errorf("trace: trailing data after spec")
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// EncodeJSON renders the spec canonically: fixed field order, two-space
// indent, trailing newline. Parse → encode is a fixed point (the fuzz
// harness pins encode(parse(x)) == encode(parse(encode(parse(x))))
// byte-for-byte), so specs embedded in artifacts diff cleanly.
func (s *Spec) EncodeJSON() ([]byte, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(s); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// rateAt evaluates the arrival rate λ(t) = BaseQPS × diurnal(t) × Π
// crowd_i(t) at trace time t.
func (s *Spec) rateAt(t float64) float64 {
	return s.BaseQPS * s.diurnalAt(t) * s.crowdsAt(t)
}

// diurnalAt interpolates the rate-multiplier curve at t.
func (s *Spec) diurnalAt(t float64) float64 {
	pts := s.Diurnal
	if len(pts) == 0 {
		return 1
	}
	// First control point at or after t.
	idx := sort.Search(len(pts), func(i int) bool { return pts[i].AtS >= t })
	switch {
	case idx == 0:
		return pts[0].Mult
	case idx == len(pts):
		return pts[len(pts)-1].Mult
	}
	a, b := pts[idx-1], pts[idx]
	frac := (t - a.AtS) / (b.AtS - a.AtS)
	return a.Mult + frac*(b.Mult-a.Mult)
}

// crowdsAt multiplies the active flash-crowd factors at t.
func (s *Spec) crowdsAt(t float64) float64 {
	f := 1.0
	for i := range s.Crowds {
		c := &s.Crowds[i]
		if t < c.AtS {
			break // crowds are sorted by onset; later ones have not started
		}
		boost := c.Mult - 1
		if dt := t - c.AtS; dt < c.RampS {
			f *= 1 + boost*dt/c.RampS
		} else {
			f *= 1 + boost*math.Exp(-(dt-c.RampS)/c.DecayS)
		}
	}
	return f
}

// peakRate upper-bounds λ(t) over the horizon: the diurnal maximum times
// the product of every crowd's peak. The thinning generator uses it as
// its dominating rate, so it must only never under-estimate.
func (s *Spec) peakRate() float64 {
	peak := 1.0
	if len(s.Diurnal) > 0 {
		peak = 0
		for _, p := range s.Diurnal {
			if p.Mult > peak {
				peak = p.Mult
			}
		}
		if peak == 0 {
			peak = 1e-9 // all-zero curve: keep the dominating rate positive
		}
	}
	for _, c := range s.Crowds {
		peak *= c.Mult
	}
	return s.BaseQPS * peak
}
