package trace

import (
	"bytes"
	"math"
	"testing"

	"planaria/internal/workload"
)

// testSpec is a small but fully-featured spec: diurnal curve, one flash
// crowd, Zipf skew, and a heavy-tailed user population.
func testSpec() *Spec {
	return &Spec{
		Version:  FormatVersion,
		Name:     "test-diurnal",
		Models:   []string{"ResNet-50", "GoogLeNet", "Tiny YOLO"},
		QoS:      "QoS-M",
		Seed:     42,
		HorizonS: 600,
		BaseQPS:  40,
		Diurnal: []RatePoint{
			{AtS: 0, Mult: 0.4},
			{AtS: 200, Mult: 1.0},
			{AtS: 400, Mult: 0.6},
		},
		Crowds:   []Crowd{{AtS: 250, Mult: 3, RampS: 20, DecayS: 40}},
		ZipfS:    0.9,
		Users:    500,
		UserBias: 0.5,
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := testSpec().Generate()
	if err != nil {
		t.Fatal(err)
	}
	b, err := testSpec().Generate()
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("request %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	if len(a) < 1000 {
		t.Fatalf("suspiciously short stream: %d requests", len(a))
	}
}

func TestGenerateStreamInvariants(t *testing.T) {
	s := testSpec()
	reqs, err := s.Generate()
	if err != nil {
		t.Fatal(err)
	}
	prev := 0.0
	for i := range reqs {
		r := &reqs[i]
		if r.ID != i {
			t.Fatalf("request %d has ID %d (IDs must be dense)", i, r.ID)
		}
		if r.Arrival < prev {
			t.Fatalf("request %d arrives at %v before predecessor %v", i, r.Arrival, prev)
		}
		if r.Arrival >= s.HorizonS {
			t.Fatalf("request %d arrives at %v past horizon %v", i, r.Arrival, s.HorizonS)
		}
		if r.Priority < 1 || r.Priority > 11 {
			t.Fatalf("request %d priority %d outside 1..11", i, r.Priority)
		}
		base := workload.BaseQoSSeconds[r.Model]
		if base == 0 {
			t.Fatalf("request %d has unknown model %q", i, r.Model)
		}
		want := base * workload.QoSMedium.Scale
		if r.QoS != want || r.Deadline != r.Arrival+want {
			t.Fatalf("request %d deadline math off: qos %v want %v", i, r.QoS, want)
		}
		prev = r.Arrival
	}
}

// The non-stationary machinery must actually shape the stream: the flash
// crowd window should see a clearly higher arrival rate than the diurnal
// valley, and Zipf skew should make rank-0 strictly more popular than the
// last rank.
func TestGenerateShapesRate(t *testing.T) {
	reqs, err := testSpec().Generate()
	if err != nil {
		t.Fatal(err)
	}
	inWindow := func(lo, hi float64) int {
		n := 0
		for i := range reqs {
			if reqs[i].Arrival >= lo && reqs[i].Arrival < hi {
				n++
			}
		}
		return n
	}
	valley := inWindow(0, 100)  // diurnal 0.4–0.7×, no crowd
	crowd := inWindow(260, 300) // diurnal ≈1×, crowd ≈3× → ~40/s vs ~20/s
	valleyRate := float64(valley) / 100
	crowdRate := float64(crowd) / 40
	if crowdRate < 2*valleyRate {
		t.Fatalf("flash crowd not visible: valley %.1f qps, crowd %.1f qps", valleyRate, crowdRate)
	}
	counts := map[string]int{}
	for i := range reqs {
		counts[reqs[i].Model]++
	}
	if counts["ResNet-50"] <= counts["Tiny YOLO"] {
		t.Fatalf("Zipf skew not visible: rank0 %d, rank2 %d", counts["ResNet-50"], counts["Tiny YOLO"])
	}
}

func TestJSONRoundTripCanonical(t *testing.T) {
	enc1, err := testSpec().EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := ParseJSON(enc1)
	if err != nil {
		t.Fatalf("canonical encoding rejected: %v\n%s", err, enc1)
	}
	enc2, err := s2.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc1, enc2) {
		t.Fatalf("encode not a fixed point:\n%s\nvs\n%s", enc1, enc2)
	}
	a, err := testSpec().Generate()
	if err != nil {
		t.Fatal(err)
	}
	b, err := s2.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) || a[0] != b[0] || a[len(a)-1] != b[len(b)-1] {
		t.Fatal("round-tripped spec generates a different stream")
	}
}

func TestParseJSONRejects(t *testing.T) {
	cases := map[string]string{
		"unknown field":  `{"version":1,"name":"x","models":["ResNet-50"],"qos":"QoS-S","horizon_s":1,"base_qps":1,"zipf":2}`,
		"bad version":    `{"version":9,"name":"x","models":["ResNet-50"],"qos":"QoS-S","horizon_s":1,"base_qps":1}`,
		"no models":      `{"version":1,"name":"x","models":[],"qos":"QoS-S","horizon_s":1,"base_qps":1}`,
		"unknown model":  `{"version":1,"name":"x","models":["NoSuchNet"],"qos":"QoS-S","horizon_s":1,"base_qps":1}`,
		"dup model":      `{"version":1,"name":"x","models":["ResNet-50","ResNet-50"],"qos":"QoS-S","horizon_s":1,"base_qps":1}`,
		"bad qos":        `{"version":1,"name":"x","models":["ResNet-50"],"qos":"QoS-X","horizon_s":1,"base_qps":1}`,
		"zero horizon":   `{"version":1,"name":"x","models":["ResNet-50"],"qos":"QoS-S","horizon_s":0,"base_qps":1}`,
		"zero qps":       `{"version":1,"name":"x","models":["ResNet-50"],"qos":"QoS-S","horizon_s":1,"base_qps":0}`,
		"diurnal order":  `{"version":1,"name":"x","models":["ResNet-50"],"qos":"QoS-S","horizon_s":1,"base_qps":1,"diurnal":[{"at_s":5,"mult":1},{"at_s":2,"mult":1}]}`,
		"crowd sub-1":    `{"version":1,"name":"x","models":["ResNet-50"],"qos":"QoS-S","horizon_s":1,"base_qps":1,"crowds":[{"at_s":0,"mult":0.5,"ramp_s":1,"decay_s":1}]}`,
		"crowd no ramp":  `{"version":1,"name":"x","models":["ResNet-50"],"qos":"QoS-S","horizon_s":1,"base_qps":1,"crowds":[{"at_s":0,"mult":2,"ramp_s":0,"decay_s":1}]}`,
		"bias no users":  `{"version":1,"name":"x","models":["ResNet-50"],"qos":"QoS-S","horizon_s":1,"base_qps":1,"user_bias":0.5}`,
		"trailing data":  `{"version":1,"name":"x","models":["ResNet-50"],"qos":"QoS-S","horizon_s":1,"base_qps":1}{}`,
		"negative zipf":  `{"version":1,"name":"x","models":["ResNet-50"],"qos":"QoS-S","horizon_s":1,"base_qps":1,"zipf_s":-1}`,
		"negative users": `{"version":1,"name":"x","models":["ResNet-50"],"qos":"QoS-S","horizon_s":1,"base_qps":1,"users":-3}`,
	}
	for name, in := range cases {
		if _, err := ParseJSON([]byte(in)); err == nil {
			t.Errorf("%s: accepted %s", name, in)
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	s := testSpec()
	s.MaxRequests = 500
	reqs, err := s.Generate()
	if err != nil {
		t.Fatal(err)
	}
	enc, err := EncodeCSV(reqs)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseCSV(enc)
	if err != nil {
		t.Fatalf("own encoding rejected: %v", err)
	}
	if len(back) != len(reqs) {
		t.Fatalf("row count changed: %d -> %d", len(reqs), len(back))
	}
	for i := range reqs {
		if back[i] != reqs[i] {
			t.Fatalf("request %d changed through CSV: %+v -> %+v", i, reqs[i], back[i])
		}
	}
	enc2, err := EncodeCSV(back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc, enc2) {
		t.Fatal("CSV encode not byte-stable through a round trip")
	}
}

func TestCSVRejects(t *testing.T) {
	cases := map[string]string{
		"empty":        "",
		"bad pragma":   "#other v1 qos=QoS-S\nid,at_s,model,priority\n0,0,ResNet-50,1\n",
		"bad version":  "#planaria-trace v7 qos=QoS-S\nid,at_s,model,priority\n0,0,ResNet-50,1\n",
		"bad qos":      "#planaria-trace v1 qos=QoS-Z\nid,at_s,model,priority\n0,0,ResNet-50,1\n",
		"bad header":   "#planaria-trace v1 qos=QoS-S\nid,time,model,priority\n0,0,ResNet-50,1\n",
		"bad model":    "#planaria-trace v1 qos=QoS-S\nid,at_s,model,priority\n0,0,NoSuchNet,1\n",
		"bad priority": "#planaria-trace v1 qos=QoS-S\nid,at_s,model,priority\n0,0,ResNet-50,12\n",
		"sparse ids":   "#planaria-trace v1 qos=QoS-S\nid,at_s,model,priority\n5,0,ResNet-50,1\n",
		"out of order": "#planaria-trace v1 qos=QoS-S\nid,at_s,model,priority\n0,2,ResNet-50,1\n1,1,ResNet-50,1\n",
		"no rows":      "#planaria-trace v1 qos=QoS-S\nid,at_s,model,priority\n",
	}
	for name, in := range cases {
		if _, err := ParseCSV([]byte(in)); err == nil {
			t.Errorf("%s: accepted %q", name, in)
		}
	}
}

func TestStationarySpec(t *testing.T) {
	s := Stationary(workload.ScenarioB(), workload.QoSSoft, 100, 2000, 7)
	reqs, err := s.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 2000 {
		t.Fatalf("MaxRequests cap missed: got %d", len(reqs))
	}
	// Mean interarrival should be near 1/qps for a flat spec.
	mean := reqs[len(reqs)-1].Arrival / float64(len(reqs)-1)
	if mean < 0.008 || mean > 0.012 {
		t.Fatalf("stationary mean interarrival %v, want ≈0.01", mean)
	}
}

func TestRateAt(t *testing.T) {
	s := testSpec()
	if got := s.diurnalAt(-5); got != 0.4 {
		t.Fatalf("before first point: %v", got)
	}
	if got := s.diurnalAt(100); got != 0.7 {
		t.Fatalf("midpoint interpolation: %v", got)
	}
	if got := s.diurnalAt(1000); got != 0.6 {
		t.Fatalf("after last point: %v", got)
	}
	if got := s.crowdsAt(100); got != 1 {
		t.Fatalf("crowd before onset: %v", got)
	}
	if got := s.crowdsAt(270); got != 3 {
		t.Fatalf("crowd at peak: %v", got)
	}
	after := s.crowdsAt(310) // 40s into decay, one time constant
	want := 1 + 2*math.Exp(-1)
	if math.Abs(after-want) > 1e-12 {
		t.Fatalf("crowd decay: %v want %v", after, want)
	}
	// Dominating rate must bound the evaluated rate everywhere.
	peak := s.peakRate()
	for _, at := range []float64{0, 100, 250, 265, 270, 280, 400, 599} {
		if r := s.rateAt(at); r > peak {
			t.Fatalf("rateAt(%v)=%v exceeds peakRate %v", at, r, peak)
		}
	}
}

func TestZipfCDF(t *testing.T) {
	z := newZipfCDF(4, 0)
	for i, want := range []float64{0.25, 0.5, 0.75, 1} {
		if math.Abs(z.cum[i]-want) > 1e-12 {
			t.Fatalf("uniform cdf[%d]=%v", i, z.cum[i])
		}
	}
	if z.sample(0) != 0 || z.sample(0.99) != 3 {
		t.Fatal("sample edges wrong")
	}
	zs := newZipfCDF(3, 1)
	// Weights 1, 1/2, 1/3 → cum 6/11, 9/11, 1.
	if math.Abs(zs.cum[0]-6.0/11) > 1e-12 || math.Abs(zs.cum[1]-9.0/11) > 1e-12 || zs.cum[2] != 1 {
		t.Fatalf("zipf cdf %v", zs.cum)
	}
}
