package trace

import (
	"bytes"
	"testing"
)

// FuzzTraceJSON round-trips the spec format: any input the parser
// accepts must re-encode canonically, and the canonical form must be a
// fixed point — encode(parse(x)) == encode(parse(encode(parse(x))))
// byte-for-byte. Inputs the parser rejects must be rejected without
// panicking; the CLI feeds user-authored trace files straight into
// ParseJSON.
func FuzzTraceJSON(f *testing.F) {
	if seed, err := testSpec().EncodeJSON(); err == nil {
		f.Add(seed)
	}
	f.Add([]byte(`{"version":1,"name":"flat","models":["ResNet-50"],"qos":"QoS-S","seed":1,"horizon_s":10,"base_qps":5}`))
	f.Add([]byte(`{"version":1,"name":"skew","models":["GNMT","SSD-R"],"qos":"QoS-H","seed":-3,"horizon_s":86400,"base_qps":12.5,"zipf_s":1.1,"max_requests":1000000}`))
	f.Add([]byte(`{"version":1,"name":"crowd","models":["Tiny YOLO"],"qos":"QoS-M","seed":0,"horizon_s":100,"base_qps":2,"crowds":[{"at_s":10,"mult":8,"ramp_s":5,"decay_s":20}]}`))
	f.Add([]byte(`{"version":2}`))
	f.Add([]byte(`not json`))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := ParseJSON(data)
		if err != nil {
			return // rejection without panic is the contract
		}
		enc, err := s.EncodeJSON()
		if err != nil {
			t.Fatalf("accepted spec failed to encode: %v", err)
		}
		s2, err := ParseJSON(enc)
		if err != nil {
			t.Fatalf("canonical encoding rejected: %v\n%s", err, enc)
		}
		enc2, err := s2.EncodeJSON()
		if err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("canonical encoding not a fixed point:\n%s\nvs\n%s", enc, enc2)
		}
	})
}
