package workload

import (
	"math"
	"testing"

	"planaria/internal/dnn"
)

func TestScenarioModelsExist(t *testing.T) {
	for _, sc := range Scenarios() {
		for _, m := range sc.Models {
			if _, err := dnn.ByName(m); err != nil {
				t.Errorf("%s references unknown model %s", sc.Name, m)
			}
			if _, ok := BaseQoSSeconds[m]; !ok {
				t.Errorf("%s model %s has no QoS bound", sc.Name, m)
			}
		}
	}
}

func TestScenarioComposition(t *testing.T) {
	a, b, c := ScenarioA(), ScenarioB(), ScenarioC()
	if len(a.Models) != 5 || len(b.Models) != 4 || len(c.Models) != 9 {
		t.Fatalf("scenario sizes %d/%d/%d, want 5/4/9 (Table I)", len(a.Models), len(b.Models), len(c.Models))
	}
	for _, m := range b.Models {
		net := dnn.MustByName(m)
		if m != "Tiny YOLO" && !net.HasDepthwise() {
			t.Errorf("Workload-B model %s lacks depthwise convolutions", m)
		}
	}
	for _, m := range a.Models {
		if dnn.MustByName(m).HasDepthwise() {
			t.Errorf("Workload-A model %s has depthwise convolutions (paper excludes them)", m)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	r1, err := Generate(ScenarioC(), QoSMedium, 100, 50, 7)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Generate(ScenarioC(), QoSMedium, 100, 50, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatalf("request %d differs across same-seed generations", i)
		}
	}
}

func TestGenerateProperties(t *testing.T) {
	reqs, err := Generate(ScenarioA(), QoSHard, 200, 300, 99)
	if err != nil {
		t.Fatal(err)
	}
	prev := 0.0
	for _, r := range reqs {
		if r.Arrival < prev {
			t.Fatal("arrivals not monotone")
		}
		prev = r.Arrival
		if r.Priority < 1 || r.Priority > 11 {
			t.Fatalf("priority %d outside 1..11", r.Priority)
		}
		base := BaseQoSSeconds[r.Model]
		if math.Abs(r.QoS-base/16) > 1e-12 {
			t.Fatalf("QoS-H bound %g, want %g", r.QoS, base/16)
		}
		if math.Abs(r.Deadline-(r.Arrival+r.QoS)) > 1e-12 {
			t.Fatal("deadline != arrival + QoS")
		}
	}
	// Mean interarrival ≈ 1/qps.
	mean := reqs[len(reqs)-1].Arrival / float64(len(reqs))
	if mean < 0.5/200 || mean > 2.0/200 {
		t.Errorf("mean interarrival %g far from %g", mean, 1.0/200)
	}
}

func TestGenerateRejectsBadArgs(t *testing.T) {
	if _, err := Generate(Scenario{Name: "empty"}, QoSSoft, 10, 10, 1); err == nil {
		t.Error("empty scenario accepted")
	}
	if _, err := Generate(ScenarioA(), QoSSoft, 0, 10, 1); err == nil {
		t.Error("zero qps accepted")
	}
	if _, err := Generate(ScenarioA(), QoSSoft, 10, 0, 1); err == nil {
		t.Error("zero count accepted")
	}
	bad := Scenario{Name: "x", Models: []string{"NoSuchModel"}}
	if _, err := Generate(bad, QoSSoft, 10, 10, 1); err == nil {
		t.Error("unknown model accepted")
	}
}

func TestMeetsSLA(t *testing.T) {
	mk := func(dom string, n int) []Request {
		rs := make([]Request, n)
		for i := range rs {
			rs[i] = Request{ID: i, Domain: dom, Deadline: 1}
		}
		return rs
	}
	// 100 vision requests: 99 on-time passes, 98 fails.
	reqs := mk("classification", 100)
	fin := make([]float64, 100)
	for i := range fin {
		fin[i] = 0.5
	}
	fin[0] = 2.0
	if !MeetsSLA(reqs, fin) {
		t.Error("99/100 classification should meet the 99% SLA")
	}
	fin[1] = 2.0
	if MeetsSLA(reqs, fin) {
		t.Error("98/100 classification should fail the 99% SLA")
	}
	// Translation tolerates 97%.
	reqs = mk("translation", 100)
	fin = make([]float64, 100)
	for i := range fin {
		fin[i] = 0.5
	}
	fin[0], fin[1], fin[2] = 2, 2, 2
	if !MeetsSLA(reqs, fin) {
		t.Error("97/100 translation should meet the 97% SLA")
	}
	fin[3] = 2
	if MeetsSLA(reqs, fin) {
		t.Error("96/100 translation should fail")
	}
	// Unfinished requests never comply.
	fin[3] = -1
	if MeetsSLA(reqs, fin) {
		t.Error("unfinished request counted as compliant")
	}
}

func TestTailLatencySlack(t *testing.T) {
	reqs := []Request{
		{ID: 0, Domain: "classification", Deadline: 1},
		{ID: 1, Domain: "classification", Deadline: 1},
	}
	s := TailLatencySlack(reqs, []float64{0.5, 0.5})
	if math.Abs(s-0.01) > 1e-9 {
		t.Errorf("slack = %g, want 0.01", s)
	}
	s = TailLatencySlack(reqs, []float64{0.5, 2.0})
	if s >= 0 {
		t.Errorf("violating instance slack = %g, want negative", s)
	}
}

func TestQoSLevels(t *testing.T) {
	if QoSSoft.Scale != 1 || QoSMedium.Scale != 0.25 || QoSHard.Scale != 1.0/16 {
		t.Fatalf("QoS scales %v %v %v", QoSSoft.Scale, QoSMedium.Scale, QoSHard.Scale)
	}
	if len(Levels) != 3 {
		t.Fatal("want 3 QoS levels")
	}
}
