// Package workload generates the multi-tenant INFaaS workloads of the
// paper's evaluation (§VI-A): inference requests to the Table I benchmark
// DNNs with Poisson arrivals, uniform priorities in 1..11, and MLPerf
// server-scenario QoS latency bounds scaled by the QoS level
// (QoS-S = 1×, QoS-M = 1/4×, QoS-H = 1/16×).
package workload

import (
	"fmt"
	"math"
	"math/rand"
)

// QoSLevel is one of the paper's three QoS tightness levels.
type QoSLevel struct {
	Name  string
	Scale float64 // multiplier on the MLPerf latency bound
}

// The three levels evaluated in the paper.
var (
	QoSSoft   = QoSLevel{Name: "QoS-S", Scale: 1.0}
	QoSMedium = QoSLevel{Name: "QoS-M", Scale: 0.25}
	QoSHard   = QoSLevel{Name: "QoS-H", Scale: 1.0 / 16.0}
)

// Levels lists the QoS levels in paper order.
var Levels = []QoSLevel{QoSSoft, QoSMedium, QoSHard}

// BaseQoSSeconds holds the 1× (QoS-S) latency bounds. MLPerf's published
// numbers target the authors' hardware; following the paper's
// construction — bounds that are comfortable at QoS-S and stressful but
// attainable at QoS-H — these are scaled to this repository's simulated
// substrate so that QoS-H (bound/16) sits at ≈1.5–1.7× each model's
// isolated latency on the monolithic baseline (see DESIGN.md §3).
var BaseQoSSeconds = map[string]float64{
	"ResNet-50":       0.030,
	"GoogLeNet":       0.015,
	"MobileNet-v1":    0.075,
	"EfficientNet-B0": 0.100,
	"SSD-M":           0.140,
	"Tiny YOLO":       0.025,
	"YOLOv3":          0.125,
	"SSD-R":           0.350,
	"GNMT":            1.200,
}

// SLATarget returns the within-deadline fraction MLPerf requires for a
// domain: 99% for vision tasks, 97% for translation.
func SLATarget(domain string) float64 {
	if domain == "translation" {
		return 0.97
	}
	return 0.99
}

// Scenario is one of the paper's three workload mixes (Table I).
type Scenario struct {
	Name   string
	Models []string
}

// ScenarioA is the heavier mix (no depthwise convolutions).
func ScenarioA() Scenario {
	return Scenario{Name: "Workload-A", Models: []string{
		"ResNet-50", "GoogLeNet", "YOLOv3", "SSD-R", "GNMT",
	}}
}

// ScenarioB is the lighter mix (depthwise-heavy models).
func ScenarioB() Scenario {
	return Scenario{Name: "Workload-B", Models: []string{
		"EfficientNet-B0", "MobileNet-v1", "SSD-M", "Tiny YOLO",
	}}
}

// ScenarioC is the mixed workload over all nine models.
func ScenarioC() Scenario {
	return Scenario{Name: "Workload-C", Models: []string{
		"ResNet-50", "GoogLeNet", "YOLOv3", "SSD-R", "GNMT",
		"EfficientNet-B0", "MobileNet-v1", "SSD-M", "Tiny YOLO",
	}}
}

// Scenarios lists the three workloads in paper order.
func Scenarios() []Scenario {
	return []Scenario{ScenarioA(), ScenarioB(), ScenarioC()}
}

// Request is one dispatched inference task.
type Request struct {
	ID       int
	Model    string
	Domain   string
	Arrival  float64 // seconds
	Priority int     // 1..11, higher is more important
	QoS      float64 // latency bound in seconds
	Deadline float64 // Arrival + QoS
	// Level names the QoS level the request was generated under
	// ("QoS-S", "QoS-M", "QoS-H"). The cluster admission controller keys
	// its token buckets on it; empty means unclassified.
	Level string
	// Work multiplies the request's compiled-program cycle counts (and
	// dynamic energy). The cluster batching stage uses it to model a
	// fused batch: k inferences sharing one allocation cost
	// 1 + α·(k−1) single-inference runs, not k. Zero means 1.
	Work float64
}

// NewRequest is the single arrival-emission path shared by the
// stationary generator below and the trace replayer
// (internal/workload/trace): given an arrival instant, model, and
// priority, it assigns the QoS bound, domain, and deadline exactly one
// way. Every request that enters a serving layer is built here, so the
// deadline/priority semantics cannot drift between workload sources.
func NewRequest(id int, t float64, model string, prio int, level QoSLevel) (Request, error) {
	base, ok := BaseQoSSeconds[model]
	if !ok {
		return Request{}, fmt.Errorf("workload: no QoS bound for model %q", model)
	}
	qos := base * level.Scale
	return Request{
		ID:       id,
		Model:    model,
		Domain:   domainOf(model),
		Arrival:  t,
		Priority: prio,
		QoS:      qos,
		Deadline: t + qos,
		Level:    level.Name,
	}, nil
}

// Generate draws n requests from the scenario at mean rate qps under the
// QoS level, deterministically from seed. Arrivals are Poisson
// (exponential interarrivals), models uniform over the scenario mix,
// priorities uniform in 1..11 (following the Google-trace analysis the
// paper cites). A stationary Poisson stream is the degenerate case of
// the trace format (flat rate curve, no crowds, no skew); this helper
// keeps the historical draw order so existing seeds reproduce.
func Generate(sc Scenario, level QoSLevel, qps float64, n int, seed int64) ([]Request, error) {
	if len(sc.Models) == 0 {
		return nil, fmt.Errorf("workload: scenario %q has no models", sc.Name)
	}
	if qps <= 0 || n <= 0 {
		return nil, fmt.Errorf("workload: need positive qps (%g) and n (%d)", qps, n)
	}
	rng := rand.New(rand.NewSource(seed))
	reqs := make([]Request, 0, n)
	t := 0.0
	for i := 0; i < n; i++ {
		t += rng.ExpFloat64() / qps
		model := sc.Models[rng.Intn(len(sc.Models))]
		r, err := NewRequest(i, t, model, rng.Intn(11)+1, level)
		if err != nil {
			return nil, err
		}
		reqs = append(reqs, r)
	}
	return reqs, nil
}

func domainOf(model string) string {
	switch model {
	case "GNMT":
		return "translation"
	case "YOLOv3", "SSD-R", "SSD-M", "Tiny YOLO":
		return "detection"
	default:
		return "classification"
	}
}

// MeetsSLA reports whether a completed workload instance satisfies the
// MLPerf server SLA: per domain, the within-deadline fraction must reach
// SLATarget. finishes[i] < 0 marks an unfinished request (never
// compliant).
func MeetsSLA(reqs []Request, finishes []float64) bool {
	if len(reqs) != len(finishes) {
		return false
	}
	per := make([]domCount, 0, 8)
	var c *domCount
	for i := range reqs {
		r := &reqs[i]
		per, c = domSlot(per, r.Domain)
		c.total++
		if finishes[i] >= 0 && finishes[i] <= r.Deadline+1e-12 {
			c.ok++
		}
	}
	for i := range per {
		if float64(per[i].ok) < SLATarget(per[i].dom)*float64(per[i].total)-1e-9 {
			return false
		}
	}
	return true
}

// SLAOutcome computes MeetsSLA and DeadlineFraction together in a
// single pass over the stream — the two results the serving layers
// always want as a pair. It returns exactly what the separate calls
// would: (false, 0) on a length mismatch, and identical per-domain and
// overall tallies otherwise.
func SLAOutcome(reqs []Request, finishes []float64) (bool, float64) {
	if len(reqs) != len(finishes) {
		return false, 0
	}
	if len(reqs) == 0 {
		return true, 0 // matches MeetsSLA (vacuous) and DeadlineFraction
	}
	per := make([]domCount, 0, 8)
	var c *domCount
	ok := 0
	for i := range reqs {
		r := &reqs[i]
		per, c = domSlot(per, r.Domain)
		c.total++
		if finishes[i] >= 0 && finishes[i] <= r.Deadline+1e-12 {
			c.ok++
			ok++
		}
	}
	meets := true
	for i := range per {
		if float64(per[i].ok) < SLATarget(per[i].dom)*float64(per[i].total)-1e-9 {
			meets = false
			break
		}
	}
	return meets, float64(ok) / float64(len(reqs))
}

// SLAOutcomeFlat is SLAOutcome over pre-flattened columns: domIDs[i]
// indexes domNames (interned in first-sight order), deadlines[i] is the
// request's deadline. Serving layers that already stream the request
// array once can build these columns in that pass and keep the SLA
// tally off the 96-byte-stride records entirely. Results are identical
// to SLAOutcome on the originating requests.
func SLAOutcomeFlat(domIDs []uint8, domNames []string, deadlines, finishes []float64) (bool, float64) {
	n := len(deadlines)
	if len(domIDs) != n || len(finishes) != n {
		return false, 0
	}
	if n == 0 {
		return true, 0
	}
	okPer := make([]int, len(domNames))
	totPer := make([]int, len(domNames))
	ok := 0
	for i := 0; i < n; i++ {
		d := domIDs[i]
		totPer[d]++
		if finishes[i] >= 0 && finishes[i] <= deadlines[i]+1e-12 {
			okPer[d]++
			ok++
		}
	}
	meets := true
	for d, name := range domNames {
		if totPer[d] == 0 {
			continue
		}
		if float64(okPer[d]) < SLATarget(name)*float64(totPer[d])-1e-9 {
			meets = false
			break
		}
	}
	return meets, float64(ok) / float64(n)
}

// domCount tallies one domain's within-deadline results. The handful of
// domains lives in a small slice: a linear scan with string equality's
// pointer fast path (domain strings are shared, not rebuilt per request)
// beats hashing every request's domain, and the aggregate is identical —
// per-domain counts don't depend on bucket order.
type domCount struct {
	dom       string
	ok, total int
}

// domSlot returns the tally slot for dom, appending one on first sight.
func domSlot(per []domCount, dom string) ([]domCount, *domCount) {
	for i := range per {
		if per[i].dom == dom {
			return per, &per[i]
		}
	}
	per = append(per, domCount{dom: dom})
	return per, &per[len(per)-1]
}

// DeadlineFraction returns the fraction of requests whose finish meets
// the deadline. Unfinished requests (finishes[i] < 0 — shed, rejected,
// or dropped) count as misses; the chaos experiments use this as the
// SLA-retention metric under fault injection.
func DeadlineFraction(reqs []Request, finishes []float64) float64 {
	if len(reqs) == 0 || len(reqs) != len(finishes) {
		return 0
	}
	ok := 0
	for i := range reqs {
		if finishes[i] >= 0 && finishes[i] <= reqs[i].Deadline+1e-12 {
			ok++
		}
	}
	return float64(ok) / float64(len(reqs))
}

// TailLatencySlack returns the minimum over domains of
// (achieved within-deadline fraction − required fraction); positive means
// the SLA holds with margin. Useful for diagnostics and tests.
func TailLatencySlack(reqs []Request, finishes []float64) float64 {
	per := make([]domCount, 0, 8)
	var c *domCount
	for i := range reqs {
		r := &reqs[i]
		per, c = domSlot(per, r.Domain)
		c.total++
		if i < len(finishes) && finishes[i] >= 0 && finishes[i] <= r.Deadline+1e-12 {
			c.ok++
		}
	}
	slack := math.Inf(1)
	for i := range per {
		s := float64(per[i].ok)/float64(per[i].total) - SLATarget(per[i].dom)
		if s < slack {
			slack = s
		}
	}
	return slack
}
