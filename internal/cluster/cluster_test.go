package cluster

import (
	"math"
	"math/rand"
	"testing"

	"planaria/internal/arch"
	"planaria/internal/compiler"
	"planaria/internal/dnn"
	"planaria/internal/energy"
	"planaria/internal/fault"
	"planaria/internal/metrics"
	"planaria/internal/prema"
	"planaria/internal/sched"
	"planaria/internal/sim"
	"planaria/internal/workload"
)

// toyNet builds a small network; channel width differentiates models so
// their isolated latencies differ.
func toyNet(t testing.TB, name string, ch int) *dnn.Network {
	t.Helper()
	b := dnn.NewBuilder(name, "classification", 32, 32, 8)
	b.Conv("c1", ch, 3, 1)
	b.Conv("c2", ch, 3, 1)
	b.GlobalPool("gp")
	b.FC("fc", 10)
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// toyModels are the model names every test system serves.
var toyModels = []string{"toy-a", "toy-b"}

// compilePrograms compiles the toy models for a config.
func compilePrograms(t testing.TB, cfg arch.Config) map[string]*compiler.Program {
	t.Helper()
	progs := map[string]*compiler.Program{}
	for i, name := range toyModels {
		p, err := compiler.CompileProgram(toyNet(t, name, 32+16*i), cfg, true)
		if err != nil {
			t.Fatal(err)
		}
		progs[name] = p
	}
	return progs
}

// spatialSystem is a toy Planaria chip (spatial fission scheduler).
func spatialSystem(t testing.TB) metrics.System {
	t.Helper()
	cfg := arch.Planaria()
	return metrics.System{
		Name: "Planaria", Cfg: cfg, Programs: compilePrograms(t, cfg),
		Params:    energy.Default(),
		NewPolicy: func() sim.Policy { return sched.NewSpatial(cfg) },
	}
}

// premaSystem is a toy monolithic chip (PREMA token scheduler).
func premaSystem(t testing.TB) metrics.System {
	t.Helper()
	cfg := arch.Monolithic()
	return metrics.System{
		Name: "PREMA", Cfg: cfg, Programs: compilePrograms(t, cfg),
		Params:    energy.Default(),
		NewPolicy: func() sim.Policy { return prema.NewToken(cfg) },
	}
}

// genReqs draws a seeded Poisson stream over the toy models. QoS bounds
// are generous by default so completion dominates; tests that want
// pressure pass a small qos.
func genReqs(n int, qps, qos float64, seed int64) []workload.Request {
	rng := rand.New(rand.NewSource(seed))
	reqs := make([]workload.Request, 0, n)
	levels := []string{"QoS-S", "QoS-M", "QoS-H"}
	t := 0.0
	for i := 0; i < n; i++ {
		t += rng.ExpFloat64() / qps
		model := toyModels[rng.Intn(len(toyModels))]
		reqs = append(reqs, workload.Request{
			ID: i, Model: model, Domain: "classification",
			Arrival: t, Priority: rng.Intn(11) + 1,
			QoS: qos, Deadline: t + qos,
			Level: levels[rng.Intn(len(levels))],
		})
	}
	return reqs
}

// checkConservation asserts the terminal-state invariant and that no
// request ID reached more than one chip.
func checkConservation(t *testing.T, cfg Config, reqs []workload.Request, out *Outcome) {
	t.Helper()
	total := out.Completed + out.ShedFront + out.ShedChips + out.Rejected + out.ShedDrain
	if total != len(reqs) {
		t.Errorf("conservation violated: completed %d + shedFront %d + shedChips %d + rejected %d + shedDrain %d = %d, want %d",
			out.Completed, out.ShedFront, out.ShedChips, out.Rejected, out.ShedDrain, total, len(reqs))
	}
	completed := 0
	for i, fin := range out.Finishes {
		if fin >= 0 {
			completed++
			if out.Latency[i] < 0 {
				t.Errorf("request %d: negative latency %g", i, out.Latency[i])
			}
			if fin < reqs[i].Arrival {
				t.Errorf("request %d finished at %g before its arrival %g", i, fin, reqs[i].Arrival)
			}
		}
	}
	if completed != out.Completed {
		t.Errorf("Completed = %d but %d finishes are non-negative", out.Completed, completed)
	}
	seen := map[int]int{}
	groups := 0
	for c, cr := range out.PerChip {
		groups += len(cr.Requests)
		for _, r := range cr.Requests {
			if prev, dup := seen[r.ID]; dup {
				t.Errorf("request ID %d dispatched to chip %d and chip %d", r.ID, prev, c)
			}
			seen[r.ID] = c
		}
		if len(cr.Requests) != out.Dispatched[c] {
			t.Errorf("chip %d: %d requests vs Dispatched %d", c, len(cr.Requests), out.Dispatched[c])
		}
	}
	if groups != out.Batches {
		t.Errorf("Batches = %d but chips hold %d dispatch groups", out.Batches, groups)
	}
	if cfg.Trace != nil {
		if err := cfg.Trace.Validate(); err != nil {
			t.Errorf("front-door trace invalid: %v", err)
		}
	}
	if out.Fleet != nil {
		if err := out.Fleet.Validate(); err != nil {
			t.Errorf("fleet lifecycle log invalid: %v", err)
		}
	}
}

func TestConservationTable(t *testing.T) {
	spatial := spatialSystem(t)
	monolithic := premaSystem(t)
	faults16 := func(chips int, seed int64) []*fault.Schedule {
		out := make([]*fault.Schedule, chips)
		for i := range out {
			s, err := fault.Generate(16, 4, 40, 0.5, 0.05, seed+int64(i))
			if err != nil {
				t.Fatal(err)
			}
			out[i] = s
		}
		return out
	}
	cases := []struct {
		name string
		cfg  Config
		reqs []workload.Request
	}{
		{
			name: "single-chip-passthrough",
			cfg:  Config{System: spatial, Chips: 1},
			reqs: genReqs(60, 400, 1, 1),
		},
		{
			name: "round-robin-4",
			cfg:  Config{System: spatial, Chips: 4, Policy: "round-robin"},
			reqs: genReqs(120, 800, 1, 2),
		},
		{
			name: "least-work-batching",
			cfg: Config{System: spatial, Chips: 3, Policy: "least-work",
				BatchWindow: 2e-3, MaxBatch: 4},
			reqs: genReqs(120, 1500, 1, 3),
		},
		{
			name: "affinity-admission",
			cfg: Config{System: spatial, Chips: 2, Policy: "affinity",
				Admission: map[string]TokenBucket{
					"QoS-H": {Rate: 200, Burst: 4, MaxQueue: 2},
					"":      {Rate: 2000, Burst: 32, MaxQueue: 16},
				}},
			reqs: genReqs(150, 2000, 1, 4),
		},
		{
			name: "faulted-fission-shedding",
			cfg: Config{System: spatial, Chips: 3, Policy: "least-work",
				Faults: faults16(3, 7), FaultMode: sim.FaultFission,
				Shed: sim.ShedDoomed},
			reqs: genReqs(100, 600, 0.02, 5),
		},
		{
			name: "prema-derate-batched",
			cfg: Config{System: monolithic, Chips: 2, Policy: "round-robin",
				BatchWindow: 1e-3,
				Faults:      faults16(2, 11), FaultMode: sim.FaultDerate},
			reqs: genReqs(80, 500, 1, 6),
		},
		{
			name: "unknown-model-rejected",
			cfg:  Config{System: spatial, Chips: 2, Policy: "least-work"},
			reqs: append(genReqs(40, 400, 1, 8),
				workload.Request{ID: 900, Model: "no-such-model", Domain: "classification",
					Arrival: 0.01, Priority: 5, QoS: 1, Deadline: 1.01}),
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			cfg := tc.cfg
			cfg.Trace = &sim.Trace{}
			out, err := Run(cfg, tc.reqs)
			if err != nil {
				t.Fatal(err)
			}
			checkConservation(t, cfg, tc.reqs, out)
			if tc.name == "unknown-model-rejected" && out.Rejected != 1 {
				t.Errorf("Rejected = %d, want exactly the unknown-model request", out.Rejected)
			}
		})
	}
}

// TestConservationRandomized is the quick-style sweep: random cluster
// shapes, policies, batching, admission, and faults, all seeded, must
// preserve the terminal-state invariant.
func TestConservationRandomized(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized conservation sweep is not short")
	}
	spatial := spatialSystem(t)
	policies := Policies()
	for trial := 0; trial < 12; trial++ {
		trial := trial
		rng := rand.New(rand.NewSource(int64(1000 + trial)))
		cfg := Config{
			System: spatial,
			Chips:  1 + rng.Intn(5),
			Policy: policies[rng.Intn(len(policies))],
		}
		if rng.Intn(2) == 1 {
			cfg.BatchWindow = 1e-4 * float64(1+rng.Intn(50))
			cfg.MaxBatch = 1 + rng.Intn(8)
		}
		if rng.Intn(2) == 1 {
			cfg.Admission = map[string]TokenBucket{
				"QoS-H": {Rate: 50 + 400*rng.Float64(), Burst: 1 + float64(rng.Intn(8)), MaxQueue: rng.Intn(4)},
				"QoS-M": {Rate: 100 + 900*rng.Float64(), Burst: 1 + float64(rng.Intn(16)), MaxQueue: rng.Intn(8)},
			}
		}
		if rng.Intn(2) == 1 {
			cfg.FaultMode = sim.FaultFission
			cfg.Shed = sim.ShedPolicy(rng.Intn(3))
			cfg.Faults = make([]*fault.Schedule, cfg.Chips)
			for i := range cfg.Faults {
				s, err := fault.Generate(16, 4, 20+80*rng.Float64(), 0.4, 0.03, int64(trial*10+i))
				if err != nil {
					t.Fatal(err)
				}
				cfg.Faults[i] = s
			}
		}
		qos := []float64{0.01, 0.05, 1}[rng.Intn(3)]
		reqs := genReqs(40+rng.Intn(80), 200+2000*rng.Float64(), qos, int64(trial))
		t.Run("", func(t *testing.T) {
			t.Parallel()
			cfg := cfg
			cfg.Trace = &sim.Trace{}
			out, err := Run(cfg, reqs)
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			checkConservation(t, cfg, reqs, out)
		})
	}
}

func TestBatchingGroupsWithinWindow(t *testing.T) {
	sys := spatialSystem(t)
	mk := func(id int, at float64, model string) workload.Request {
		return workload.Request{ID: id, Model: model, Domain: "classification",
			Arrival: at, Priority: 5, QoS: 1, Deadline: at + 1}
	}
	reqs := []workload.Request{
		mk(0, 0.0000, "toy-a"),
		mk(1, 0.0004, "toy-a"), // inside 0's window
		mk(2, 0.0006, "toy-b"), // different model: own batch
		mk(3, 0.0030, "toy-a"), // after 0's window closed
	}
	tr := &sim.Trace{}
	out, err := Run(Config{System: sys, Chips: 1, BatchWindow: 1e-3, Trace: tr}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if out.Batches != 3 {
		t.Fatalf("Batches = %d, want 3 (a+a fused, b alone, late a alone)", out.Batches)
	}
	if out.BatchedReqs != 2 {
		t.Errorf("BatchedReqs = %d, want 2", out.BatchedReqs)
	}
	if want := 4.0 / 3.0; math.Abs(out.MeanBatchSize-want) > 1e-12 {
		t.Errorf("MeanBatchSize = %g, want %g", out.MeanBatchSize, want)
	}
	chip := out.PerChip[0]
	if len(chip.Requests) != 3 {
		t.Fatalf("chip got %d dispatch groups, want 3", len(chip.Requests))
	}
	lead := chip.Requests[0]
	if lead.ID != 0 || lead.Work != 1+DefaultBatchAlpha {
		t.Errorf("fused leader = ID %d Work %g, want ID 0 Work %g", lead.ID, lead.Work, 1+DefaultBatchAlpha)
	}
	if lead.Arrival != 1e-3 {
		t.Errorf("fused batch dispatched at %g, want window close 1e-3", lead.Arrival)
	}
	// Both members share the batch finish; latency runs from own arrival.
	if out.Finishes[0] != out.Finishes[1] {
		t.Errorf("batch members finished at %g and %g, want shared completion", out.Finishes[0], out.Finishes[1])
	}
	if out.Latency[0] <= out.Latency[1] {
		t.Errorf("leader latency %g should exceed later member's %g", out.Latency[0], out.Latency[1])
	}
	batchEvents := 0
	for _, e := range tr.Events {
		if e.Kind == sim.EvBatch {
			batchEvents++
			if e.Task == 0 && e.Alloc != 2 {
				t.Errorf("fused batch event size %d, want 2", e.Alloc)
			}
		}
	}
	if batchEvents != 3 {
		t.Errorf("trace has %d batch events, want 3", batchEvents)
	}
}

func TestBatchingMaxBatchClosesEarly(t *testing.T) {
	sys := spatialSystem(t)
	var reqs []workload.Request
	for i := 0; i < 4; i++ {
		at := float64(i) * 1e-5
		reqs = append(reqs, workload.Request{ID: i, Model: "toy-a", Domain: "classification",
			Arrival: at, Priority: 5, QoS: 1, Deadline: at + 1})
	}
	out, err := Run(Config{System: sys, Chips: 1, BatchWindow: 1e-2, MaxBatch: 2}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if out.Batches != 2 || out.BatchedReqs != 4 {
		t.Fatalf("Batches = %d BatchedReqs = %d, want 2 full pairs", out.Batches, out.BatchedReqs)
	}
	// A full batch closes at its filling arrival, not the window end.
	if got := out.PerChip[0].Requests[0].Arrival; got != 1e-5 {
		t.Errorf("first pair dispatched at %g, want 1e-5 (second member's arrival)", got)
	}
}

func TestAdmissionBucketShedsOverflow(t *testing.T) {
	sys := spatialSystem(t)
	var reqs []workload.Request
	for i := 0; i < 5; i++ {
		reqs = append(reqs, workload.Request{ID: i, Model: "toy-a", Domain: "classification",
			Arrival: float64(i) * 1e-6, Priority: 5, QoS: 10, Deadline: 10, Level: "QoS-H"})
	}
	out, err := Run(Config{
		System: sys, Chips: 1,
		Admission: map[string]TokenBucket{"QoS-H": {Rate: 10, Burst: 1, MaxQueue: 2}},
	}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	// Burst admits one instantly, two wait for tokens, two overflow.
	if out.ShedFront != 2 {
		t.Fatalf("ShedFront = %d, want 2 (queue bound 2)", out.ShedFront)
	}
	if out.Completed != 3 {
		t.Errorf("Completed = %d, want 3", out.Completed)
	}
	// The queued admits are paced at the refill rate.
	dispatchTimes := make([]float64, 0, 3)
	for _, r := range out.PerChip[0].Requests {
		dispatchTimes = append(dispatchTimes, r.Arrival)
	}
	if len(dispatchTimes) != 3 {
		t.Fatalf("chip got %d requests, want 3", len(dispatchTimes))
	}
	if math.Abs(dispatchTimes[1]-0.1) > 1e-9 || math.Abs(dispatchTimes[2]-0.2) > 1e-9 {
		t.Errorf("queued admits at %g and %g, want 0.1 and 0.2 (rate 10/s)", dispatchTimes[1], dispatchTimes[2])
	}
}

func TestAdmissionUnmatchedLevelFallsBack(t *testing.T) {
	sys := spatialSystem(t)
	reqs := []workload.Request{
		{ID: 0, Model: "toy-a", Domain: "classification", Arrival: 0, Priority: 5, QoS: 1, Deadline: 1, Level: "QoS-S"},
		{ID: 1, Model: "toy-a", Domain: "classification", Arrival: 1e-6, Priority: 5, QoS: 1, Deadline: 1, Level: "QoS-S"},
	}
	// No "QoS-S" bucket and no "" fallback: admit freely.
	out, err := Run(Config{System: sys, Chips: 1,
		Admission: map[string]TokenBucket{"QoS-H": {Rate: 1, Burst: 1}}}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if out.ShedFront != 0 || out.Completed != 2 {
		t.Fatalf("unmatched level: shed %d completed %d, want 0/2", out.ShedFront, out.Completed)
	}
	// With a "" fallback of burst 1 and no queue, the second request sheds.
	out, err = Run(Config{System: sys, Chips: 1,
		Admission: map[string]TokenBucket{"": {Rate: 1, Burst: 1}}}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if out.ShedFront != 1 || out.Completed != 1 {
		t.Fatalf("fallback bucket: shed %d completed %d, want 1/1", out.ShedFront, out.Completed)
	}
}

func TestDeadChipsRoutedAround(t *testing.T) {
	sys := spatialSystem(t)
	// Chip 0 permanently loses every subarray before any arrival.
	dead := &fault.Schedule{Units: 16, Pods: 4}
	for u := 0; u < 16; u++ {
		dead.Events = append(dead.Events, fault.Event{Time: 1e-4, Kind: fault.KindSubarray, Unit: u})
	}
	reqs := genReqs(40, 300, 1, 9)
	for i := range reqs {
		reqs[i].Arrival += 1e-3 // all arrive after the chip dies
		reqs[i].Deadline = reqs[i].Arrival + reqs[i].QoS
	}
	for _, pol := range Policies() {
		out, err := Run(Config{
			System: sys, Chips: 2, Policy: pol,
			Faults:    []*fault.Schedule{dead, nil},
			FaultMode: sim.FaultFission,
		}, reqs)
		if err != nil {
			t.Fatalf("%s: %v", pol, err)
		}
		if out.Dispatched[0] != 0 {
			t.Errorf("%s: dead chip 0 received %d dispatches", pol, out.Dispatched[0])
		}
		if out.Dispatched[1] != len(reqs) {
			t.Errorf("%s: healthy chip got %d of %d dispatches", pol, out.Dispatched[1], len(reqs))
		}
	}
}

func TestAllChipsDeadShedsEverything(t *testing.T) {
	sys := spatialSystem(t)
	dead := &fault.Schedule{Units: 16, Pods: 4}
	for u := 0; u < 16; u++ {
		dead.Events = append(dead.Events, fault.Event{Time: 0, Kind: fault.KindSubarray, Unit: u})
	}
	reqs := genReqs(10, 300, 1, 10)
	tr := &sim.Trace{}
	out, err := Run(Config{
		System: sys, Chips: 1,
		Faults:    []*fault.Schedule{dead},
		FaultMode: sim.FaultFission,
		Trace:     tr,
	}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if out.ShedFront != len(reqs) || out.Completed != 0 {
		t.Fatalf("dead cluster: shed %d completed %d, want %d/0", out.ShedFront, out.Completed, len(reqs))
	}
	checkConservation(t, Config{Trace: tr}, reqs, out)
}

func TestRunRejectsBadConfigs(t *testing.T) {
	sys := spatialSystem(t)
	reqs := genReqs(4, 100, 1, 1)
	cases := []struct {
		name string
		cfg  Config
		rs   []workload.Request
	}{
		{"zero chips", Config{System: sys, Chips: 0}, reqs},
		{"no requests", Config{System: sys, Chips: 1}, nil},
		{"unknown policy", Config{System: sys, Chips: 1, Policy: "bogus"}, reqs},
		{"fault arity", Config{System: sys, Chips: 2, Faults: []*fault.Schedule{nil}}, reqs},
		{"bad bucket", Config{System: sys, Chips: 1,
			Admission: map[string]TokenBucket{"QoS-H": {Rate: -1, Burst: 1}}}, reqs},
		{"duplicate IDs", Config{System: sys, Chips: 1},
			[]workload.Request{reqs[0], reqs[0]}},
		{"fission units mismatch", Config{System: sys, Chips: 1,
			Faults:    []*fault.Schedule{{Units: 4, Pods: 4, Events: []fault.Event{{Kind: fault.KindSubarray}}}},
			FaultMode: sim.FaultFission}, reqs},
	}
	for _, tc := range cases {
		if _, err := Run(tc.cfg, tc.rs); err == nil {
			t.Errorf("%s: Run accepted a bad config", tc.name)
		}
	}
}

// TestClusterRunDeterministic pins byte-level reproducibility of a full
// cluster run (batching + admission + faults + all policies).
func TestClusterRunDeterministic(t *testing.T) {
	sys := spatialSystem(t)
	reqs := genReqs(80, 1200, 0.05, 14)
	faults := make([]*fault.Schedule, 3)
	for i := range faults {
		s, err := fault.Generate(16, 4, 30, 0.3, 0.02, int64(20+i))
		if err != nil {
			t.Fatal(err)
		}
		faults[i] = s
	}
	for _, pol := range Policies() {
		run := func() string {
			tr := &sim.Trace{}
			out, err := Run(Config{
				System: sys, Chips: 3, Policy: pol,
				BatchWindow: 5e-4, MaxBatch: 4,
				Admission: map[string]TokenBucket{"QoS-H": {Rate: 400, Burst: 8, MaxQueue: 4}},
				Faults:    faults, FaultMode: sim.FaultFission, Shed: sim.ShedDoomed,
				Trace: tr,
			}, reqs)
			if err != nil {
				t.Fatal(err)
			}
			return renderOutcome(out) + tr.String()
		}
		if a, b := run(), run(); a != b {
			t.Errorf("%s: cluster run not deterministic", pol)
		}
	}
}
