package cluster

import (
	"math/big"
	"testing"

	"planaria/internal/arch"
	"planaria/internal/energy"
	"planaria/internal/metrics"
	"planaria/internal/obs"
	"planaria/internal/sched"
	"planaria/internal/sim"
	"planaria/internal/workload"
)

// elasticSystem is the toy Planaria chip under the elastic re-fission
// scheduler. The wakeup floor scales with the toy models' microsecond
// run times (the production default targets millisecond serving
// models), so re-fission windows actually open inside a test stream.
func elasticSystem(t testing.TB, disabled bool) metrics.System {
	t.Helper()
	cfg := arch.Planaria()
	progs := compilePrograms(t, cfg)
	minIso := 0.0
	for _, name := range toyModels {
		iso := cfg.Seconds(progs[name].Table(cfg.NumSubarrays()).TotalCycles)
		if minIso == 0 || iso < minIso {
			minIso = iso
		}
	}
	interval := minIso * 0.02
	return metrics.System{
		Name: "Planaria-Elastic", Cfg: cfg, Programs: progs,
		Params: energy.Default(),
		NewPolicy: func() sim.Policy {
			el := sched.NewElastic(cfg)
			el.Disabled = disabled
			el.MinIntervalS = interval
			return el
		},
	}
}

// elasticReqs draws a stream under genuine contention — inter-arrivals
// comparable to the toy isolated run time and deadlines only a few
// multiples of it — so queues build, tasks stall, and the elastic
// policy has starvation to resolve.
func elasticReqs(t testing.TB, sys metrics.System, n int, seed int64) []workload.Request {
	t.Helper()
	iso := sys.Cfg.Seconds(sys.Programs[toyModels[0]].Table(sys.Cfg.NumSubarrays()).TotalCycles)
	return genReqs(n, 2/iso, 12*iso, seed)
}

// TestElasticDisabledClusterConformance pins the cluster-level half of
// the conformance contract: a disabled elastic system produces byte-
// identical chip artifacts (outcome, trace, metrics, timeline) and
// attribution reports to the plain spatial system it wraps.
func TestElasticDisabledClusterConformance(t *testing.T) {
	spatial := spatialSystem(t)
	elastic := elasticSystem(t, true)
	reqs := elasticReqs(t, spatial, 60, 42)

	gotS, outS := clusterArtifacts(t, spatial, "least-work", sim.ShedNone, reqs)
	gotE, outE := clusterArtifacts(t, elastic, "least-work", sim.ShedNone, reqs)
	if gotS != gotE {
		t.Fatalf("disabled elastic chip artifacts differ from spatial\n--- spatial\n%.2000s\n--- elastic\n%.2000s", gotS, gotE)
	}
	if outE.PerChip[0].Outcome.Refissions != 0 {
		t.Fatalf("disabled elastic recorded %d refissions", outE.PerChip[0].Outcome.Refissions)
	}
	for i := range reqs {
		if outS.Finishes[i] != outE.Finishes[i] {
			t.Fatalf("finish[%d]: spatial %x, disabled elastic %x", i, outS.Finishes[i], outE.Finishes[i])
		}
	}

	// Attribution half: the ledgers must agree span for span.
	report := func(sys metrics.System) string {
		out, err := Run(Config{System: sys, Chips: 2, Policy: "least-work", Attrib: true}, reqs)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := out.AttribReport(reqs)
		if err != nil {
			t.Fatal(err)
		}
		j, err := rep.JSON()
		if err != nil {
			t.Fatal(err)
		}
		return string(j)
	}
	if a, b := report(spatial), report(elastic); a != b {
		t.Fatalf("disabled elastic attribution report diverged:\n%s\n---\n%s", a, b)
	}
}

// TestElasticClusterConservation runs the elastic policy hot through the
// full cluster stack and checks every conservation identity survives
// re-fission: terminal-state partition, per-request ledger telescoping
// (Σ spans == end − start, bit-exact), and the integer occupancy
// partition busy+idle+faulted+reconfig == units × horizon.
func TestElasticClusterConservation(t *testing.T) {
	sys := elasticSystem(t, false)
	reqs := elasticReqs(t, sys, 120, 9)
	cfg := Config{System: sys, Chips: 2, Policy: "least-work", Attrib: true}
	out, err := Run(cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	checkConservation(t, cfg, reqs, out)

	refissions := 0
	for _, cr := range out.PerChip {
		refissions += cr.Outcome.Refissions
	}
	if refissions == 0 {
		t.Fatal("contended elastic cluster run triggered no re-fissions — the invariants below would be vacuous")
	}

	a := out.Attrib
	if a == nil {
		t.Fatal("no attribution state")
	}
	for i := range reqs {
		spans := a.Front.Spans(i, nil)
		if len(spans) == 0 {
			t.Fatalf("request %d has no spans", i)
		}
		if a.Front.Cause(i) == obs.CauseDispatched {
			led, pos, ok := a.ChipLedger(out, i)
			if !ok {
				t.Fatalf("request %d dispatched but has no chip ledger", i)
			}
			chipSpans := led.Spans(pos, nil)
			if len(chipSpans) == 0 || spans[len(spans)-1].To != chipSpans[0].From {
				t.Fatalf("request %d: front/chip handoff not seamless", i)
			}
			spans = append(spans, chipSpans...)
		}
		endStart := new(big.Float).SetPrec(200).Sub(
			big.NewFloat(spans[len(spans)-1].To), big.NewFloat(spans[0].From))
		if s := bigSum(spans); s.Cmp(endStart) != 0 {
			t.Fatalf("request %d: Σ spans %s != end−start %s under re-fission",
				i, s.Text('g', 25), endStart.Text('g', 25))
		}
	}

	for c, cr := range out.PerChip {
		if cr.Occ == nil {
			t.Fatalf("chip %d has no occupancy accountant", c)
		}
		o := cr.Occ
		if got := o.Busy + o.Idle + o.Faulted + o.Reconfig; got != o.Units*o.Horizon {
			t.Errorf("chip %d occupancy partition under re-fission: %d != %d (%+v)",
				c, got, o.Units*o.Horizon, o)
		}
		if o.Reconfig == 0 && cr.Outcome.Refissions > 0 {
			t.Errorf("chip %d re-fissioned %d times but accounted no reconfiguration cycles",
				c, cr.Outcome.Refissions)
		}
	}
}

// TestElasticClusterDeterministic pins two-run byte-identity of the full
// elastic-on artifact set — including the EvRefission trace timeline the
// CI smoke job diffs.
func TestElasticClusterDeterministic(t *testing.T) {
	sys := elasticSystem(t, false)
	reqs := elasticReqs(t, sys, 80, 23)
	got1, out1 := clusterArtifacts(t, sys, "least-work", sim.ShedNone, reqs)
	got2, _ := clusterArtifacts(t, sys, "least-work", sim.ShedNone, reqs)
	if got1 != got2 {
		t.Fatal("elastic-on cluster artifacts are not reproducible")
	}
	if out1.PerChip[0].Outcome.Refissions == 0 {
		t.Fatal("single-chip contended run triggered no re-fissions")
	}
	saw := false
	for _, e := range out1.PerChip[0].Trace.Events {
		if e.Kind == sim.EvRefission {
			saw = true
			break
		}
	}
	if !saw {
		t.Fatal("no EvRefission events in the chip trace")
	}
}
