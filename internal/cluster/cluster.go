// Package cluster is the deterministic multi-chip serving front end: it
// dispatches one Poisson request stream across N independent accelerator
// chips — each chip a sim.Node running either the Planaria spatial
// scheduler or the PREMA baseline — through three stages:
//
//  1. Admission: per-QoS-level token buckets (simulated-time refill) with
//     a bounded wait queue; overflow sheds deterministically and reuses
//     the EvShed trace vocabulary.
//  2. Dynamic batching: per-model batch windows fuse requests that arrive
//     within BatchWindow (capped at MaxBatch) into one chip request that
//     shares a single allocation; completions fan back out to every
//     member. A fused batch of k costs 1 + α·(k−1) single inferences
//     (weight reuse amortizes the re-fetch, compute still scales).
//  3. Load balancing: a pluggable Balancer (round-robin,
//     least-outstanding-work, model-affinity rendezvous hashing) picks a
//     healthy chip per dispatch; per-chip fault schedules mask dead chips
//     out of the routable set, so the balancer routes around failures.
//
// Everything advances on simulated time only and every tie is broken
// explicitly, so a cluster run at a fixed seed is byte-reproducible
// (the package is in planaria-vet's deterministic set). A 1-chip cluster
// with admission and batching disabled is a bit-exact pass-through to
// sim.Node.Run — the conformance tests pin that identity.
package cluster

import (
	"fmt"
	"math"
	"sort"

	"planaria/internal/fault"
	"planaria/internal/metrics"
	"planaria/internal/obs"
	"planaria/internal/par"
	"planaria/internal/sim"
	"planaria/internal/workload"
)

// DefaultBatchAlpha is the marginal cost of each extra fused inference:
// batch k costs 1 + α·(k−1) single runs.
const DefaultBatchAlpha = 0.35

// Config describes one cluster serving run.
type Config struct {
	// System is the chip template (architecture, compiled programs,
	// energy constants, and the per-chip scheduling policy constructor).
	System metrics.System
	// Chips is the cluster size (>= 1).
	Chips int
	// Policy names the load-balancing policy (see NewBalancer); empty
	// means "least-work".
	Policy string

	// BatchWindow is the per-model batching window in simulated seconds.
	// <= 0 disables the batching stage entirely (every request dispatches
	// at its admit instant, untouched).
	BatchWindow float64
	// MaxBatch caps a batch's size; reaching it closes the window early.
	// <= 0 means unbounded.
	MaxBatch int
	// BatchAlpha is the marginal batched-inference cost; 0 means
	// DefaultBatchAlpha, negative means free batching (cost 1).
	BatchAlpha float64

	// Admission maps QoS level name → token bucket. Nil or empty
	// disables admission control. Levels without a bucket fall back to
	// the "" bucket when present and admit freely otherwise.
	Admission map[string]TokenBucket

	// Faults holds one fault schedule per chip (nil entries = healthy
	// chip). Nil disables fault injection cluster-wide.
	Faults []*fault.Schedule
	// FaultMode selects each chip's degradation mode (fission for
	// Planaria, derate for the PREMA baseline).
	FaultMode sim.FaultMode
	// Shed is each chip's local admission-control policy.
	Shed sim.ShedPolicy

	// Obs, when non-nil, receives the front-door metrics and timeline
	// (dispatch counters, batch-size histogram, cluster latency
	// histograms, batch spans).
	Obs *obs.Observer
	// Trace, when non-nil, records the front-door timeline: arrivals,
	// admission sheds, batch closes, dispatches.
	Trace *sim.Trace
	// Observe attaches a fresh obs.Observer to every chip node (exposed
	// on ChipResult.Obs for artifact comparison).
	Observe bool
	// ChipTraces attaches a sim.Trace to every chip node (exposed on
	// ChipResult.Trace).
	ChipTraces bool
}

// validate checks the configuration against the request stream.
func (c *Config) validate() error {
	if c.Chips < 1 {
		return fmt.Errorf("cluster: need at least 1 chip, got %d", c.Chips)
	}
	if c.System.NewPolicy == nil {
		return fmt.Errorf("cluster: system %q has no policy constructor", c.System.Name)
	}
	if c.Faults != nil && len(c.Faults) != c.Chips {
		return fmt.Errorf("cluster: %d fault schedules for %d chips", len(c.Faults), c.Chips)
	}
	if c.FaultMode == sim.FaultFission {
		units := c.System.Cfg.NumSubarrays()
		for i, s := range c.Faults {
			if s != nil && s.Units != units {
				return fmt.Errorf("cluster: chip %d fault schedule has %d units, config has %d subarrays",
					i, s.Units, units)
			}
		}
	}
	return nil
}

// ChipResult is one chip's share of a cluster run.
type ChipResult struct {
	// Requests is the dispatch stream the chip served (merged batch
	// leaders, in dispatch order).
	Requests []workload.Request
	// Outcome is the chip's simulation outcome, nil when the chip
	// received no requests.
	Outcome *sim.Outcome
	// Trace is the chip's serving timeline (nil unless Config.ChipTraces).
	Trace *sim.Trace
	// Obs is the chip's private observer (nil unless Config.Observe).
	Obs *obs.Observer
}

// Outcome aggregates one cluster run over the original request stream.
type Outcome struct {
	// Finishes[i] / Latency[i] are indexed like the input slice;
	// Finishes[i] = −1 marks a request that never completed. A batched
	// request's latency runs from its own arrival to the shared batch
	// completion.
	Finishes []float64
	Latency  []float64

	// Terminal-state conservation: every request lands in exactly one of
	// these four tallies, so
	// Completed + ShedFront + ShedChips + Rejected == len(reqs).
	Completed int
	// ShedFront counts front-door declines: admission-bucket overflow
	// plus dispatches with no healthy chip left.
	ShedFront int
	// ShedChips counts requests (expanded to batch members) whose chip
	// shed them locally — doomed-deadline declines, retry-budget
	// exhaustion, and dead-chip drains.
	ShedChips int
	// Rejected counts requests for models no chip has a program for.
	Rejected int

	// Killed/Retries/FaultEvents total the chips' fault tallies.
	Killed      int
	Retries     int
	FaultEvents int

	// Batches counts dispatch groups; BatchedReqs counts requests that
	// shared a batch of size >= 2; MeanBatchSize is members per dispatch.
	Batches       int
	BatchedReqs   int
	MeanBatchSize float64

	// Dispatched[c] counts dispatch groups routed to chip c.
	Dispatched []int

	// EnergyJ totals chip energy; Makespan spans first arrival to last
	// completion; MeetsSLA / DeadlineFrac apply the MLPerf server
	// criterion over the original stream.
	EnergyJ      float64
	Makespan     float64
	MeetsSLA     bool
	DeadlineFrac float64

	// PerChip holds each chip's share.
	PerChip []*ChipResult
}

// workOf returns a request's work multiplier (0 means 1).
func workOf(r workload.Request) float64 {
	if r.Work > 0 {
		return r.Work
	}
	return 1
}

// healthSteps is a chip's precomputed alive-subarray step function,
// replayed once from its fault schedule so the balancer can consult chip
// health at any dispatch instant without running the chip first.
type healthSteps struct {
	times []float64
	alive []int
}

// healthStepsOf replays a schedule into its step function. Nil (or
// empty) schedules yield nil: the chip is always fully alive.
func healthStepsOf(s *fault.Schedule) (*healthSteps, error) {
	if s.Empty() {
		return nil, nil
	}
	in, err := fault.NewInjector(s)
	if err != nil {
		return nil, err
	}
	h := &healthSteps{}
	at := -1.0
	for in.Pending() {
		next := in.NextChange(at)
		if math.IsInf(next, 1) {
			break
		}
		in.AdvanceTo(next)
		h.times = append(h.times, next)
		h.alive = append(h.alive, in.Health().Alive())
		at = next
	}
	return h, nil
}

// aliveAt returns the chip's usable subarray count at time t.
func (h *healthSteps) aliveAt(t float64, total int) int {
	if h == nil {
		return total
	}
	// Last step at or before t.
	idx := sort.Search(len(h.times), func(i int) bool { return h.times[i] > t+1e-12 })
	if idx == 0 {
		return total
	}
	return h.alive[idx-1]
}

// dispatchRec is one routed dispatch group: the merged request given to
// the chip and the input indices whose completions fan out from it.
type dispatchRec struct {
	time    float64
	chip    int
	pos     int // position within the chip's request slice
	members []int
	req     workload.Request
}

// openBatch is one in-flight batching window.
type openBatch struct {
	model   string
	closeAt float64
	members []int
	closed  bool
}

// Run serves the request stream through the cluster front end and the N
// chip simulations, then merges per-chip outcomes back onto the original
// stream. Requests must have unique IDs; each is dispatched to at most
// one chip.
func Run(cfg Config, reqs []workload.Request) (*Outcome, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if len(reqs) == 0 {
		return nil, fmt.Errorf("cluster: no requests")
	}
	policy := cfg.Policy
	if policy == "" {
		policy = "least-work"
	}
	balancer, err := NewBalancer(policy)
	if err != nil {
		return nil, err
	}
	admission, err := newAdmissionState(cfg.Admission)
	if err != nil {
		return nil, err
	}
	seen := make(map[int]bool, len(reqs))
	for _, r := range reqs {
		if seen[r.ID] {
			return nil, fmt.Errorf("cluster: duplicate request ID %d", r.ID)
		}
		seen[r.ID] = true
	}

	// Per-chip health timelines for routing.
	health := make([]*healthSteps, cfg.Chips)
	for i := range health {
		if cfg.Faults != nil {
			if health[i], err = healthStepsOf(cfg.Faults[i]); err != nil {
				return nil, err
			}
		}
	}
	totalSub := cfg.System.Cfg.NumSubarrays()

	// Isolated full-chip execution time per model, the balancer's
	// backlog estimate unit (same estimate metrics.MinNodes uses).
	iso := make(map[string]float64, len(cfg.System.Programs))
	//det:mapiter-ok independent per-key writes into another map
	for name, p := range cfg.System.Programs {
		iso[name] = cfg.System.Cfg.Seconds(p.Table(totalSub).TotalCycles)
	}

	// Observability handles (nil-safe no-ops when off).
	reg := cfg.Obs.Registry()
	tracer := cfg.Obs.Tracer()
	cRequests := reg.Counter("cluster_requests_total")
	cAdmShed := reg.Counter("cluster_admission_shed_total")
	cUnroutable := reg.Counter("cluster_unroutable_shed_total")
	cBatches := reg.Counter("cluster_batches_total")
	hBatch := reg.Histogram("cluster_batch_size", []float64{1, 2, 4, 8, 16, 32})
	cDispatch := make([]*obs.Counter, cfg.Chips)
	for i := range cDispatch {
		cDispatch[i] = reg.Counter("cluster_dispatch_total", obs.L("chip", fmt.Sprintf("%02d", i)))
	}

	// Front-door events buffer; stable-sorted by time before export so
	// dispatch instants interleave correctly with later arrivals.
	var front []sim.Event
	record := func(e sim.Event) {
		if cfg.Trace != nil {
			front = append(front, e)
		}
	}

	out := &Outcome{
		Finishes:   make([]float64, len(reqs)),
		Latency:    make([]float64, len(reqs)),
		Dispatched: make([]int, cfg.Chips),
		PerChip:    make([]*ChipResult, cfg.Chips),
	}
	for i := range out.Finishes {
		out.Finishes[i] = -1
	}

	// Stage 1: admission, in arrival order (ties by input index).
	order := make([]int, len(reqs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return reqs[order[a]].Arrival < reqs[order[b]].Arrival
	})
	type admitted struct {
		idx int
		at  float64
	}
	var admits []admitted
	for _, idx := range order {
		r := reqs[idx]
		record(sim.Event{Time: r.Arrival, Kind: sim.EvArrival, Task: r.ID, Model: r.Model})
		cRequests.Inc()
		at, ok := admission.admit(r.Level, r.Arrival)
		if !ok {
			record(sim.Event{Time: r.Arrival, Kind: sim.EvShed, Task: r.ID, Model: r.Model})
			cAdmShed.Inc()
			out.ShedFront++
			continue
		}
		admits = append(admits, admitted{idx: idx, at: at})
	}
	sort.SliceStable(admits, func(a, b int) bool { return admits[a].at < admits[b].at })

	// Stage 2+3: batching windows and balanced dispatch, one
	// chronological walk. Windows open in admit order, so the open-batch
	// queue is already sorted by close time.
	batching := cfg.BatchWindow > 0
	maxBatch := cfg.MaxBatch
	if maxBatch <= 0 {
		maxBatch = int(math.MaxInt32)
	}
	alpha := cfg.BatchAlpha
	switch {
	case alpha == 0:
		alpha = DefaultBatchAlpha
	case alpha < 0:
		alpha = 0
	}

	perChip := make([][]workload.Request, cfg.Chips)
	var dispatches []dispatchRec
	busyUntil := make([]float64, cfg.Chips)
	membersTotal := 0

	dispatch := func(tD float64, members []int) {
		leader := reqs[members[0]]
		merged := leader
		k := len(members)
		if k > 1 || tD != leader.Arrival {
			merged.Arrival = tD
			deadline := leader.Deadline
			prio := leader.Priority
			for _, m := range members[1:] {
				if d := reqs[m].Deadline; d < deadline {
					deadline = d
				}
				if p := reqs[m].Priority; p > prio {
					prio = p
				}
			}
			merged.Deadline = deadline
			merged.QoS = deadline - tD
			merged.Priority = prio
			if k > 1 {
				merged.Work = workOf(leader) * (1 + alpha*float64(k-1))
			}
		}
		if batching {
			record(sim.Event{Time: tD, Kind: sim.EvBatch, Task: merged.ID, Model: merged.Model, Alloc: k})
			cBatches.Inc()
			hBatch.Observe(float64(k))
			if tracer != nil && k > 1 {
				tracer.Span("cluster/batches", fmt.Sprintf("%s x%d", merged.Model, k),
					reqs[members[0]].Arrival, tD,
					obs.Str("model", merged.Model), obs.Num("size", float64(k)))
			}
		}
		views := make([]ChipView, cfg.Chips)
		for i := range views {
			outst := busyUntil[i] - tD
			if outst < 0 {
				outst = 0
			}
			views[i] = ChipView{
				Index:       i,
				Healthy:     health[i].aliveAt(tD, totalSub) > 0,
				Outstanding: outst,
				Dispatched:  out.Dispatched[i],
			}
		}
		chip := balancer.Pick(merged, tD, views)
		if chip < 0 {
			for _, m := range members {
				record(sim.Event{Time: tD, Kind: sim.EvShed, Task: reqs[m].ID, Model: reqs[m].Model})
				cUnroutable.Inc()
				out.ShedFront++
			}
			return
		}
		record(sim.Event{Time: tD, Kind: sim.EvDispatch, Task: merged.ID, Model: merged.Model, Unit: chip})
		cDispatch[chip].Inc()
		busyUntil[chip] = math.Max(busyUntil[chip], tD) + iso[merged.Model]*workOf(merged)
		if tracer != nil {
			tracer.Counter("cluster/backlog", fmt.Sprintf("chip %02d", chip), tD, busyUntil[chip]-tD)
		}
		out.Dispatched[chip]++
		out.Batches++
		membersTotal += k
		if k > 1 {
			out.BatchedReqs += k
		}
		dispatches = append(dispatches, dispatchRec{
			time: tD, chip: chip, pos: len(perChip[chip]),
			members: members, req: merged,
		})
		perChip[chip] = append(perChip[chip], merged)
	}

	open := map[string]*openBatch{}
	var queue []*openBatch
	flush := func(until float64) {
		for len(queue) > 0 {
			b := queue[0]
			if b.closed {
				queue = queue[1:]
				continue
			}
			if b.closeAt > until+1e-12 {
				return
			}
			queue = queue[1:]
			delete(open, b.model)
			dispatch(b.closeAt, b.members)
		}
	}
	for _, a := range admits {
		r := reqs[a.idx]
		if !batching {
			dispatch(a.at, []int{a.idx})
			continue
		}
		flush(a.at)
		b := open[r.Model]
		if b == nil {
			b = &openBatch{model: r.Model, closeAt: a.at + cfg.BatchWindow}
			open[r.Model] = b
			queue = append(queue, b)
		}
		b.members = append(b.members, a.idx)
		if len(b.members) >= maxBatch {
			b.closed = true
			delete(open, r.Model)
			dispatch(a.at, b.members)
		}
	}
	flush(math.Inf(1))

	if out.Batches > 0 {
		out.MeanBatchSize = float64(membersTotal) / float64(out.Batches)
	}

	// Stage 4: run the chips. Each is an independent simulation; fan out
	// across the worker pool and aggregate in index order.
	results := make([]*ChipResult, cfg.Chips)
	errs := make([]error, cfg.Chips)
	par.ForEach(cfg.Chips, func(i int) {
		cr := &ChipResult{Requests: perChip[i]}
		results[i] = cr
		if cfg.ChipTraces {
			cr.Trace = &sim.Trace{}
		}
		if cfg.Observe {
			cr.Obs = obs.New()
		}
		if len(perChip[i]) == 0 {
			return
		}
		pol := cfg.System.NewPolicy()
		if ob, ok := pol.(obs.Observable); ok && cr.Obs != nil {
			ob.SetObserver(cr.Obs)
		}
		node := &sim.Node{
			Cfg:       cfg.System.Cfg,
			Policy:    pol,
			Programs:  cfg.System.Programs,
			Params:    cfg.System.Params,
			Trace:     cr.Trace,
			Obs:       cr.Obs,
			FaultMode: cfg.FaultMode,
			Shed:      cfg.Shed,
		}
		if cfg.Faults != nil && cfg.Faults[i] != nil {
			node.Faults, errs[i] = fault.NewInjector(cfg.Faults[i])
			if errs[i] != nil {
				return
			}
		}
		cr.Outcome, errs[i] = node.Run(perChip[i])
	})
	if err := par.FirstError(errs); err != nil {
		return nil, err
	}
	out.PerChip = results

	// Stage 5: merge chip outcomes back onto the original stream.
	for _, d := range dispatches {
		chipOut := results[d.chip].Outcome
		fin := chipOut.Finishes[d.pos]
		for _, m := range d.members {
			if fin >= 0 {
				out.Finishes[m] = fin
				out.Latency[m] = fin - reqs[m].Arrival
				out.Completed++
				if reg != nil {
					reg.Histogram("cluster_latency_seconds", obs.DurationBuckets(),
						obs.L("model", reqs[m].Model)).Observe(out.Latency[m])
				}
			} else if _, ok := cfg.System.Programs[reqs[m].Model]; !ok {
				out.Rejected++
			} else {
				out.ShedChips++
			}
		}
	}
	firstArrival, lastFinish := math.Inf(1), math.Inf(-1)
	for i, r := range reqs {
		if r.Arrival < firstArrival {
			firstArrival = r.Arrival
		}
		if out.Finishes[i] > lastFinish {
			lastFinish = out.Finishes[i]
		}
	}
	if lastFinish > firstArrival {
		out.Makespan = lastFinish - firstArrival
	}
	for _, cr := range results {
		if cr.Outcome == nil {
			continue
		}
		out.EnergyJ += cr.Outcome.EnergyJ
		out.Killed += cr.Outcome.Killed
		out.Retries += cr.Outcome.Retries
		out.FaultEvents += cr.Outcome.FaultEvents
	}
	out.MeetsSLA = workload.MeetsSLA(reqs, out.Finishes)
	out.DeadlineFrac = workload.DeadlineFraction(reqs, out.Finishes)

	if cfg.Trace != nil {
		sort.SliceStable(front, func(a, b int) bool { return front[a].Time < front[b].Time })
		cfg.Trace.Events = append(cfg.Trace.Events, front...)
	}
	return out, nil
}
