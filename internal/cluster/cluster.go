// Package cluster is the deterministic multi-chip serving front end: it
// dispatches one Poisson request stream across N independent accelerator
// chips — each chip a sim.Node running either the Planaria spatial
// scheduler or the PREMA baseline — through three stages:
//
//  1. Admission: per-QoS-level token buckets (simulated-time refill) with
//     a bounded wait queue; overflow sheds deterministically and reuses
//     the EvShed trace vocabulary.
//  2. Dynamic batching: per-model batch windows fuse requests that arrive
//     within BatchWindow (capped at MaxBatch) into one chip request that
//     shares a single allocation; completions fan back out to every
//     member. A fused batch of k costs 1 + α·(k−1) single inferences
//     (weight reuse amortizes the re-fetch, compute still scales).
//  3. Load balancing: a pluggable Balancer (round-robin,
//     least-outstanding-work, model-affinity rendezvous hashing) picks a
//     healthy chip per dispatch; per-chip fault schedules mask dead chips
//     out of the routable set, so the balancer routes around failures.
//
// Everything advances on simulated time only and every tie is broken
// explicitly, so a cluster run at a fixed seed is byte-reproducible
// (the package is in planaria-vet's deterministic set). A 1-chip cluster
// with admission and batching disabled is a bit-exact pass-through to
// sim.Node.Run — the conformance tests pin that identity.
package cluster

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"planaria/internal/fault"
	"planaria/internal/metrics"
	"planaria/internal/obs"
	"planaria/internal/par"
	"planaria/internal/sim"
	"planaria/internal/simtime"
	"planaria/internal/workload"
)

// DefaultBatchAlpha is the marginal cost of each extra fused inference:
// batch k costs 1 + α·(k−1) single runs.
const DefaultBatchAlpha = 0.35

// Config describes one cluster serving run.
type Config struct {
	// System is the chip template (architecture, compiled programs,
	// energy constants, and the per-chip scheduling policy constructor).
	System metrics.System
	// Chips is the cluster size (>= 1).
	Chips int
	// Policy names the load-balancing policy (see NewBalancer); empty
	// means "least-work".
	Policy string

	// BatchWindow is the per-model batching window in simulated seconds.
	// <= 0 disables the batching stage entirely (every request dispatches
	// at its admit instant, untouched).
	BatchWindow float64
	// MaxBatch caps a batch's size; reaching it closes the window early.
	// <= 0 means unbounded.
	MaxBatch int
	// BatchAlpha is the marginal batched-inference cost; 0 means
	// DefaultBatchAlpha, negative means free batching (cost 1).
	BatchAlpha float64

	// Admission maps QoS level name → token bucket. Nil or empty
	// disables admission control. Levels without a bucket fall back to
	// the "" bucket when present and admit freely otherwise.
	Admission map[string]TokenBucket

	// Scale, when non-nil, turns the fixed fleet into an autoscaled one:
	// Chips becomes the slot ceiling and a ScaleController moves the
	// active count between Scale.Min and Chips, with simulated boot
	// latency on the way up and graceful drain (migrate queued work,
	// finish in-flight, retire) on the way down. Nil keeps the exact
	// static-fleet behavior. See autoscale.go / DESIGN.md §15.
	Scale *Autoscale

	// Faults holds one fault schedule per chip (nil entries = healthy
	// chip). Nil disables fault injection cluster-wide.
	Faults []*fault.Schedule
	// FaultMode selects each chip's degradation mode (fission for
	// Planaria, derate for the PREMA baseline).
	FaultMode sim.FaultMode
	// Shed is each chip's local admission-control policy.
	Shed sim.ShedPolicy

	// Obs, when non-nil, receives the front-door metrics and timeline
	// (dispatch counters, batch-size histogram, cluster latency
	// histograms, batch spans).
	Obs *obs.Observer
	// Trace, when non-nil, records the front-door timeline: arrivals,
	// admission sheds, batch closes, dispatches.
	Trace *sim.Trace
	// Observe attaches a fresh obs.Observer to every chip node (exposed
	// on ChipResult.Obs for artifact comparison).
	Observe bool
	// ChipTraces attaches a sim.Trace to every chip node (exposed on
	// ChipResult.Trace).
	ChipTraces bool
	// Attrib enables SLA root-cause attribution (DESIGN.md §14): a
	// front-door phase ledger over the input stream, a per-chip ledger
	// and occupancy accountant on every node, and the chip/position
	// links joining them, exposed on Outcome.Attrib. Off by default;
	// the stamp sites cost only untaken branches when disabled.
	Attrib bool
}

// validate checks the configuration against the request stream.
func (c *Config) validate() error {
	if c.Chips < 1 {
		return fmt.Errorf("cluster: need at least 1 chip, got %d", c.Chips)
	}
	if c.System.NewPolicy == nil {
		return fmt.Errorf("cluster: system %q has no policy constructor", c.System.Name)
	}
	if c.Faults != nil && len(c.Faults) != c.Chips {
		return fmt.Errorf("cluster: %d fault schedules for %d chips", len(c.Faults), c.Chips)
	}
	if c.Scale != nil {
		if err := c.Scale.validate(c.Chips); err != nil {
			return err
		}
	}
	if c.FaultMode == sim.FaultFission {
		units := c.System.Cfg.NumSubarrays()
		for i, s := range c.Faults {
			if s != nil && s.Units != units {
				return fmt.Errorf("cluster: chip %d fault schedule has %d units, config has %d subarrays",
					i, s.Units, units)
			}
		}
	}
	return nil
}

// ChipResult is one chip's share of a cluster run.
type ChipResult struct {
	// Requests is the dispatch stream the chip served (merged batch
	// leaders, in dispatch order).
	Requests []workload.Request
	// Outcome is the chip's simulation outcome, nil when the chip
	// received no requests.
	Outcome *sim.Outcome
	// Trace is the chip's serving timeline (nil unless Config.ChipTraces).
	Trace *sim.Trace
	// Obs is the chip's private observer (nil unless Config.Observe).
	Obs *obs.Observer
	// Attrib is the chip's phase ledger, indexed like Requests (nil
	// unless Config.Attrib).
	Attrib *obs.Ledger
	// Occ is the chip's subarray-cycle occupancy accountant (nil unless
	// Config.Attrib).
	Occ *obs.Occupancy
}

// Outcome aggregates one cluster run over the original request stream.
type Outcome struct {
	// Finishes[i] / Latency[i] are indexed like the input slice;
	// Finishes[i] = −1 marks a request that never completed. A batched
	// request's latency runs from its own arrival to the shared batch
	// completion.
	Finishes []float64
	Latency  []float64

	// Terminal-state conservation: every request lands in exactly one of
	// these five tallies, so
	// Completed + ShedFront + ShedChips + Rejected + ShedDrain == len(reqs)
	// (ShedDrain is zero on static fleets).
	Completed int
	// ShedFront counts front-door declines: admission-bucket overflow
	// plus dispatches with no healthy chip left.
	ShedFront int
	// ShedChips counts requests (expanded to batch members) whose chip
	// shed them locally — doomed-deadline declines, retry-budget
	// exhaustion, and dead-chip drains.
	ShedChips int
	// Rejected counts requests for models no chip has a program for.
	Rejected int
	// ShedDrain counts requests queued on a draining chip with no
	// routable chip left to migrate to (autoscaled runs only).
	ShedDrain int
	// Migrated counts requests pulled off a draining chip and re-routed.
	// Informational, not part of the conservation partition: a migrated
	// request still terminates in one of the five tallies above.
	Migrated int

	// Killed/Retries/FaultEvents total the chips' fault tallies.
	Killed      int
	Retries     int
	FaultEvents int

	// Batches counts dispatch groups; BatchedReqs counts requests that
	// shared a batch of size >= 2; MeanBatchSize is members per dispatch.
	Batches       int
	BatchedReqs   int
	MeanBatchSize float64

	// Dispatched[c] counts dispatch groups routed to chip c.
	Dispatched []int

	// EnergyJ totals chip energy; Makespan spans first arrival to last
	// completion; MeetsSLA / DeadlineFrac apply the MLPerf server
	// criterion over the original stream.
	EnergyJ      float64
	Makespan     float64
	MeetsSLA     bool
	DeadlineFrac float64

	// PerChip holds each chip's share.
	PerChip []*ChipResult

	// Fleet is the autoscaled run's chip-lifecycle log (nil on static
	// fleets); Fleet.ChipSeconds costs the run in chip-time.
	Fleet *obs.Fleet

	// Attrib joins the front-door ledger with the per-chip ledgers (nil
	// unless Config.Attrib). See Outcome.AttribReport.
	Attrib *Attribution
}

// workOf returns a request's work multiplier (0 means 1).
func workOf(r workload.Request) float64 {
	if r.Work > 0 {
		return r.Work
	}
	return 1
}

// healthSteps is a chip's precomputed alive-subarray step function,
// replayed once from its fault schedule so the balancer can consult chip
// health at any dispatch instant without running the chip first.
type healthSteps struct {
	times []float64
	alive []int
}

// healthStepsOf replays a schedule into its step function. Nil (or
// empty) schedules yield nil: the chip is always fully alive.
//
//perf:cold per-run setup: health timelines build once before the serving loop
func healthStepsOf(s *fault.Schedule) (*healthSteps, error) {
	if s.Empty() {
		return nil, nil
	}
	in, err := fault.NewInjector(s)
	if err != nil {
		return nil, err
	}
	h := &healthSteps{}
	at := -1.0
	for in.Pending() {
		next := in.NextChange(at)
		if math.IsInf(next, 1) {
			break
		}
		in.AdvanceTo(next)
		h.times = append(h.times, next)
		h.alive = append(h.alive, in.Health().Alive())
		at = next
	}
	return h, nil
}

// aliveAt returns the chip's usable subarray count at time t.
func (h *healthSteps) aliveAt(t float64, total int) int {
	if h == nil {
		return total
	}
	// Last step at or before t.
	idx := sort.Search(len(h.times), func(i int) bool { return simtime.After(h.times[i], t) })
	if idx == 0 {
		return total
	}
	return h.alive[idx-1]
}

// dispatchRec is one routed dispatch group: the chip it went to, its
// position within the chip's request slice, and the input indices whose
// completions fan out from it. The merged request's adjusted fields are
// captured as scalars at routing time so the layout phase can rebuild
// it straight into the escaping backing array — a leader copy plus five
// scalar writes — with no intermediate merged-request buffer to pool,
// copy out of, and GC-scan.
// On autoscaled runs chip can also be a tombstone: -1 marks a group shed
// during a drain (ShedDrain), -2 a group migrated away (a later record
// serves its members); both are skipped by the layout and merge phases.
type dispatchRec struct {
	chip     int
	pos      int     // position within the chip's request slice
	cost     float64 // estimated service seconds added to the chip's backlog
	members  []int
	at       float64 // merged Arrival (dispatch time)
	deadline float64 // merged Deadline (tightest member)
	qos      float64 // deadline - at
	prio     int     // merged Priority (highest member)
	work     float64 // merged Work (fused batch cost multiplier)
}

// openBatch is one in-flight batching window.
type openBatch struct {
	model   int // interned model ID (see admitted.model)
	closeAt float64
	members []int
	closed  bool
}

// admitted is one stage-1 grant: the input index and its admit instant.
// admitted is one admitted request: its input position, admission
// instant, and interned model ID (position in the run's first-seen model
// list, captured while the request's cache line is hot so the batching
// stage never re-gathers through the 96-byte-stride request array).
// int32 positions keep the record at 16 pointer-free bytes — the admits
// buffer is the largest piece of pooled scratch, and at serving scale
// its footprint is pure memory traffic.
type admitted struct {
	at    float64
	idx   int32
	model int32
}

// runScratch holds Run's large working buffers that never escape the
// call, recycled through a sync.Pool so back-to-back runs (sweeps,
// benchmarks) stop paying a large-allocation zeroing tax per run. Every
// buffer is append-from-empty or fully rewritten before reads, so stale
// contents can never influence a run; retained memory is bounded by the
// largest run's high-water mark (and dropped wholesale at GC, as for
// any sync.Pool).
type runScratch struct {
	admits      []admitted
	works       []float64
	arrs        []float64
	dls         []float64
	prios       []int32
	doms        []uint8
	dispatches  []dispatchRec
	ends        []float64 // autoscaled runs: estimated completion per dispatch record
	memberArena []int
	frontA      []sim.Event
	frontB      []sim.Event
	batchPool   []*openBatch // free list of recycled batch windows
	queue       []*openBatch // FIFO of open windows, reused run to run
}

var scratchPool = sync.Pool{New: func() any { return new(runScratch) }}

// grow returns buf emptied with capacity for at least n elements.
func grow[T any](buf []T, n int) []T {
	if cap(buf) < n {
		return make([]T, 0, n)
	}
	return buf[:0]
}

// Run serves the request stream through the cluster front end and the N
// chip simulations, then merges per-chip outcomes back onto the original
// stream. Requests must have unique IDs; each is dispatched to at most
// one chip.
//
//perf:hot cluster front-end steady state: admit/batch/dispatch per request without allocating (DESIGN.md §13)
func Run(cfg Config, reqs []workload.Request) (*Outcome, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if len(reqs) == 0 {
		return nil, fmt.Errorf("cluster: no requests")
	}
	policy := cfg.Policy
	if policy == "" {
		policy = "least-work"
	}
	balancer, err := NewBalancer(policy)
	if err != nil {
		return nil, err
	}
	admission, err := newAdmissionState(cfg.Admission)
	if err != nil {
		return nil, err
	}
	// Per-chip health timelines for routing.
	health := make([]*healthSteps, cfg.Chips)
	for i := range health {
		if cfg.Faults != nil {
			if health[i], err = healthStepsOf(cfg.Faults[i]); err != nil {
				return nil, err
			}
		}
	}
	totalSub := cfg.System.Cfg.NumSubarrays()

	// Isolated full-chip execution time per model, the balancer's
	// backlog estimate unit (same estimate metrics.MinNodes uses).
	iso := make(map[string]float64, len(cfg.System.Programs))
	//det:mapiter-ok independent per-key writes into another map
	for name, p := range cfg.System.Programs {
		iso[name] = cfg.System.Cfg.Seconds(p.Table(totalSub).TotalCycles)
	}

	// Observability handles (nil-safe no-ops when off).
	reg := cfg.Obs.Registry()
	tracer := cfg.Obs.Tracer()
	cRequests := reg.Counter("cluster_requests_total")
	cAdmShed := reg.Counter("cluster_admission_shed_total")
	cUnroutable := reg.Counter("cluster_unroutable_shed_total")
	cBatches := reg.Counter("cluster_batches_total")
	//perf:alloc-ok once-per-run metric registration, off the per-request path
	hBatch := reg.Histogram("cluster_batch_size", []float64{1, 2, 4, 8, 16, 32})
	cDispatch := make([]*obs.Counter, cfg.Chips)
	for i := range cDispatch {
		//perf:alloc-ok per-chip handle interning at run start, not per dispatch
		cDispatch[i] = reg.Counter("cluster_dispatch_total", obs.L("chip", fmt.Sprintf("%02d", i)))
	}
	// Per-chip backlog counter track names, rendered once instead of per
	// dispatch.
	var chipNames []string
	if tracer != nil {
		chipNames = make([]string, cfg.Chips)
		for i := range chipNames {
			chipNames[i] = fmt.Sprintf("chip %02d", i)
		}
	}

	// Autoscaled fleet state (nil on static runs: every asc-guarded site
	// below then costs one untaken branch, keeping the static path's
	// per-request allocation profile unchanged).
	var asc *autoscaler
	if cfg.Scale != nil {
		asc = newAutoscaler(cfg.Scale, cfg.Chips, reg)
	}

	// Front-door events accumulate in two runs, each appended in
	// non-decreasing time order: frontA holds the stage-1 arrival/shed
	// events, frontB the dispatch-time events. Export merges them stably
	// (A first on ties) — byte-identical to stable-sorting one combined
	// buffer, without the O(n log n) re-sort (see exportFront).
	// Large non-escaping buffers come from the run-scratch pool; see
	// runScratch for the reuse contract.
	batching := cfg.BatchWindow > 0
	sc := scratchPool.Get().(*runScratch)
	admits := grow(sc.admits, len(reqs))
	works := grow(sc.works, len(reqs))[:len(reqs)]
	arrs := grow(sc.arrs, len(reqs))[:len(reqs)]
	dls := grow(sc.dls, len(reqs))[:len(reqs)]
	prios := grow(sc.prios, len(reqs))[:len(reqs)]
	doms := grow(sc.doms, len(reqs))[:len(reqs)]
	dispCap := 0
	if !batching {
		dispCap = len(reqs)
	}
	dispatches := grow(sc.dispatches, dispCap)
	memberArena := grow(sc.memberArena, len(reqs))
	ends := sc.ends[:0]
	if asc != nil {
		ends = grow(sc.ends, dispCap)
	}
	// frontC collects the future-dated EvScaleDown retire events an
	// autoscaled traced run emits out of order; export sorts and merges it.
	var frontC []sim.Event
	frontA, frontB := sc.frontA[:0], sc.frontB[:0]
	if cfg.Trace != nil {
		frontA = grow(sc.frontA, 2*len(reqs))
		frontB = grow(sc.frontB, 2*len(reqs))
	}
	batchPool := sc.batchPool
	queue := sc.queue[:0]
	defer func() {
		sc.admits, sc.works, sc.dispatches = admits[:0], works[:0], dispatches[:0]
		sc.arrs, sc.dls, sc.prios, sc.doms = arrs[:0], dls[:0], prios[:0], doms[:0]
		sc.memberArena, sc.ends = memberArena[:0], ends[:0]
		sc.frontA, sc.frontB = frontA[:0], frontB[:0]
		sc.batchPool, sc.queue = batchPool, queue[:0]
		scratchPool.Put(sc)
	}()
	// Call sites guard on tracing before building an event: constructing
	// the sim.Event argument costs real time per request even when the
	// closure would just drop it.
	tracing := cfg.Trace != nil
	record := func(e sim.Event) {
		if tracing {
			frontA = append(frontA, e)
		}
	}
	recordB := func(e sim.Event) {
		if tracing {
			frontB = append(frontB, e)
		}
	}

	//perf:alloc-ok single result object per run
	out := &Outcome{
		Finishes:   make([]float64, len(reqs)),
		Latency:    make([]float64, len(reqs)),
		Dispatched: make([]int, cfg.Chips),
		PerChip:    make([]*ChipResult, cfg.Chips),
	}
	if asc != nil {
		out.Fleet = asc.fleet
	}
	// Attribution wiring (DESIGN.md §14): a front-door ledger indexed
	// like the input plus the chip/position links resolved at dispatch.
	// All stamp sites below guard on the obs-typed frontLed, so the
	// default (Attrib off) path pays only untaken branches.
	var frontLed *obs.Ledger
	var linkChip, linkPos []int32
	if cfg.Attrib {
		frontLed = obs.NewLedger(len(reqs))
		linkChip = make([]int32, len(reqs))
		linkPos = make([]int32, len(reqs))
		for i := range linkChip {
			linkChip[i] = -1
			linkPos[i] = -1
		}
	}
	// One pass over the input stream extracts everything the later stages
	// need from it: the identity-ID fast path (ID == input index, what
	// workload.Generate emits, is trivially unique and skips the map),
	// arrival monotonicity, the memoized work multipliers, a flat copy of
	// the arrival times (the completion merge then touches 8 bytes per
	// request instead of the whole record), the earliest arrival, and the
	// not-yet-completed marker fill.
	identityIDs := true
	arrivalsSorted := true
	firstArrival := math.Inf(1)
	prevArr := math.Inf(-1)
	// Domains intern in first-sight order (the order SLAOutcome would
	// tally them); the ID column feeds the flat SLA pass at the end.
	// More than 255 distinct domains overflows the uint8 column and
	// falls back to the record-walking SLA path.
	// Domain intern table: a serving mix has a handful of domains, so a
	// small preallocation absorbs the interning appends.
	domNames := make([]string, 0, 8)
	domOverflow := false
	for i := range reqs {
		r := &reqs[i]
		if r.ID != i {
			identityIDs = false
		}
		if r.Arrival < prevArr {
			arrivalsSorted = false
		}
		prevArr = r.Arrival
		arrs[i] = r.Arrival
		if r.Arrival < firstArrival {
			firstArrival = r.Arrival
		}
		if r.Work > 0 {
			works[i] = r.Work
		} else {
			works[i] = 1
		}
		dls[i] = r.Deadline
		prios[i] = int32(r.Priority)
		domID := -1
		for j, d := range domNames {
			if d == r.Domain {
				domID = j
				break
			}
		}
		if domID < 0 {
			if len(domNames) >= 256 {
				domOverflow = true
				domID = 0
			} else {
				domID = len(domNames)
				domNames = append(domNames, r.Domain)
			}
		}
		doms[i] = uint8(domID)
		out.Finishes[i] = -1
	}
	if !identityIDs {
		seen := make(map[int]bool, len(reqs))
		for i := range reqs {
			if seen[reqs[i].ID] {
				return nil, fmt.Errorf("cluster: duplicate request ID %d", reqs[i].ID)
			}
			seen[reqs[i].ID] = true
		}
	}

	// Stage 1: admission, in arrival order (ties by input index). A
	// pre-sorted stream — the generator's natural order — needs no index
	// permutation: the stable sort would be the identity.
	var order []int
	if !arrivalsSorted {
		order = make([]int, len(reqs))
		for i := range order {
			order[i] = i
		}
		//perf:alloc-ok unsorted-arrival fallback; sorted streams never enter
		sort.SliceStable(order, func(a, b int) bool {
			return reqs[order[a]].Arrival < reqs[order[b]].Arrival
		})
	}
	// Model IDs intern on first sight; the handful of models makes a
	// linear scan with string equality's pointer fast path cheaper than
	// hashing, exactly like the open-window list below. Each interned ID
	// also caches the model's isolated-seconds estimate so the dispatch
	// loop indexes a flat slice instead of hashing the model name.
	var modelNames []string
	var isoByID []float64
	internModel := func(name string) int {
		for i, m := range modelNames {
			if m == name {
				return i
			}
		}
		modelNames = append(modelNames, name)
		isoByID = append(isoByID, iso[name])
		return len(modelNames) - 1
	}
	admitOne := func(idx int) {
		r := &reqs[idx]
		if tracing {
			record(sim.Event{Time: r.Arrival, Kind: sim.EvArrival, Task: r.ID, Model: r.Model})
		}
		cRequests.Inc()
		if frontLed != nil {
			frontLed.Open(idx, r.Arrival, obs.PhaseAdmitWait)
		}
		// With no admission control configured (admission == nil) the
		// answer is always (arrival, true); hoisting the nil check here
		// saves a non-inlined method call per request.
		at, ok := r.Arrival, true
		if admission != nil {
			at, ok = admission.admit(r.Level, r.Arrival)
		}
		if !ok {
			if tracing {
				record(sim.Event{Time: r.Arrival, Kind: sim.EvShed, Task: r.ID, Model: r.Model})
			}
			cAdmShed.Inc()
			out.ShedFront++
			if frontLed != nil {
				frontLed.Close(idx, r.Arrival, obs.CauseShedAdmission)
			}
			return
		}
		if frontLed != nil {
			// Admission grant: [arrival, at] was admit-wait, [at, dispatch]
			// is batch-wait (zero-length when batching is off).
			frontLed.Mark(idx, at, obs.PhaseBatchWait)
		}
		admits = append(admits, admitted{at: at, idx: int32(idx), model: int32(internModel(r.Model))})
	}
	if arrivalsSorted {
		for idx := range reqs {
			admitOne(idx)
		}
	} else {
		for _, idx := range order {
			admitOne(idx)
		}
	}
	// Admission delays can reorder admits only when buckets queue; the
	// common no-queue run is already sorted and skips the re-sort too.
	admitsSorted := true
	for i := 1; i < len(admits); i++ {
		if admits[i].at < admits[i-1].at {
			admitsSorted = false
			break
		}
	}
	if !admitsSorted {
		//perf:alloc-ok resort runs only when admission queueing reordered admits
		sort.SliceStable(admits, func(a, b int) bool { return admits[a].at < admits[b].at })
	}

	// Stage 2+3: batching windows and balanced dispatch, one
	// chronological walk. Windows open in admit order, so the open-batch
	// queue is already sorted by close time.
	maxBatch := cfg.MaxBatch
	if maxBatch <= 0 {
		maxBatch = int(math.MaxInt32)
	}
	alpha := cfg.BatchAlpha
	switch {
	case alpha == 0:
		alpha = DefaultBatchAlpha
	case alpha < 0:
		alpha = 0
	}

	// Dispatch groups accumulate as routing records in dispatches; the
	// escaping per-chip request slices are carved out of one exactly-sized
	// backing array after the dispatch loop — two phases instead of
	// ragged per-chip append growth.
	chipCounts := make([]int, cfg.Chips)
	busyUntil := make([]float64, cfg.Chips)
	membersTotal := 0
	// One reusable balancer-view buffer: every field of every entry is
	// rewritten per dispatch and no built-in balancer retains the slice.
	views := make([]ChipView, cfg.Chips)
	// least-work consults only health and the clamped backlog, both of
	// which the dispatch loop already has in hand — picking directly
	// skips materializing a ChipView per chip per dispatch. The pick is
	// the same argmin with the same lowest-index tie-break.
	_, lwFast := balancer.(leastWork)

	dispatch := func(tD float64, members []int, model int) {
		m0 := members[0]
		leader := &reqs[m0]
		k := len(members)
		mw := works[m0]
		// The merged request exists only as scalars here: phase two
		// rebuilds the dispatched Request from the leader plus these
		// values, so materializing a 96-byte Request per dispatch would
		// be pure copy traffic. Only the pluggable-balancer path below
		// still builds one (Pick takes a Request by value).
		at, deadline, qos := leader.Arrival, leader.Deadline, leader.QoS
		prio, work := leader.Priority, leader.Work
		if k > 1 || tD != leader.Arrival {
			at = tD
			for _, m := range members[1:] {
				if d := dls[m]; d < deadline {
					deadline = d
				}
				if p := int(prios[m]); p > prio {
					prio = p
				}
			}
			qos = deadline - tD
			if k > 1 {
				mw *= 1 + alpha*float64(k-1)
				work = mw
			}
		}
		if batching {
			if tracing {
				recordB(sim.Event{Time: tD, Kind: sim.EvBatch, Task: leader.ID, Model: leader.Model, Alloc: k})
			}
			cBatches.Inc()
			hBatch.Observe(float64(k))
			if tracer != nil && k > 1 {
				tracer.Span("cluster/batches", fmt.Sprintf("%s x%d", leader.Model, k),
					reqs[members[0]].Arrival, tD,
					obs.Str("model", leader.Model), obs.Num("size", float64(k)))
			}
		}
		var chip int
		if lwFast {
			chip = -1
			var bestOut float64
			for i := range busyUntil {
				if health[i].aliveAt(tD, totalSub) <= 0 {
					continue
				}
				if asc != nil && !asc.routable(i, tD) {
					continue
				}
				outst := busyUntil[i] - tD
				if outst < 0 {
					outst = 0
				}
				if chip < 0 || outst < bestOut {
					chip, bestOut = i, outst
				}
			}
		} else {
			for i := range views {
				outst := busyUntil[i] - tD
				if outst < 0 {
					outst = 0
				}
				healthy := health[i].aliveAt(tD, totalSub) > 0
				if asc != nil && !asc.routable(i, tD) {
					healthy = false
				}
				views[i] = ChipView{
					Index:       i,
					Healthy:     healthy,
					Outstanding: outst,
					Dispatched:  out.Dispatched[i],
				}
			}
			merged := *leader
			merged.Arrival, merged.Deadline, merged.QoS = at, deadline, qos
			merged.Priority, merged.Work = prio, work
			chip = balancer.Pick(merged, tD, views)
		}
		if chip < 0 {
			for _, m := range members {
				if tracing {
					recordB(sim.Event{Time: tD, Kind: sim.EvShed, Task: reqs[m].ID, Model: reqs[m].Model})
				}
				cUnroutable.Inc()
				out.ShedFront++
				if frontLed != nil {
					frontLed.Close(m, tD, obs.CauseShedUnroutable)
				}
			}
			return
		}
		if tracing {
			recordB(sim.Event{Time: tD, Kind: sim.EvDispatch, Task: leader.ID, Model: leader.Model, Unit: chip})
		}
		cDispatch[chip].Inc()
		cost := isoByID[model] * mw
		busyUntil[chip] = math.Max(busyUntil[chip], tD) + cost
		if tracer != nil {
			tracer.Counter("cluster/backlog", chipNames[chip], tD, busyUntil[chip]-tD)
		}
		out.Dispatched[chip]++
		out.Batches++
		membersTotal += k
		if k > 1 {
			out.BatchedReqs += k
		}
		if frontLed != nil {
			// Hand-off: each member's front record closes at the merged
			// arrival `at` (== the chip record's Open instant, bit-exact),
			// and the links remember which chip record continues it.
			for _, m := range members {
				frontLed.Close(m, at, obs.CauseDispatched)
				linkChip[m] = int32(chip)
				linkPos[m] = int32(chipCounts[chip])
			}
		}
		if asc != nil {
			// Drain bookkeeping: the estimated completion instant and the
			// slot's pending-group queue let a later drain split in-flight
			// from queued work without replaying the dispatch walk.
			//perf:alloc-ok autoscaled-run bookkeeping, amortized appends off the static path
			ends = append(ends, busyUntil[chip])
			//perf:alloc-ok autoscaled-run bookkeeping, amortized appends off the static path
			asc.slots[chip].pend = append(asc.slots[chip].pend, int32(len(dispatches)))
		}
		dispatches = append(dispatches, dispatchRec{
			chip: chip, pos: chipCounts[chip], cost: cost, members: members,
			at: at, deadline: deadline, qos: qos,
			prio: prio, work: work,
		})
		chipCounts[chip]++
	}

	// Every dispatch group's member list is carved out of one arena (each
	// admit joins at most one group, so len(admits) bounds the total);
	// batch windows copy their members in at close time so the window
	// records themselves recycle through the scratch free list.
	takeMembers := func(members []int) []int {
		start := len(memberArena)
		memberArena = append(memberArena, members...)
		return memberArena[start:len(memberArena):len(memberArena)]
	}
	memberCap := maxBatch
	if memberCap > 8 {
		memberCap = 8
	}
	newBatch := func(model int, closeAt float64) *openBatch {
		if n := len(batchPool); n > 0 {
			b := batchPool[n-1]
			batchPool = batchPool[:n-1]
			b.model, b.closeAt, b.closed = model, closeAt, false
			b.members = b.members[:0]
			return b
		}
		//perf:alloc-ok batch-object miss path; steady state recycles via batchPool above
		return &openBatch{model: model, closeAt: closeAt, members: make([]int, 0, memberCap)}
	}
	// The handful of concurrently open windows (one per model) lives in a
	// small list: a linear scan beats per-admit string hashing, and there
	// is no map to keep planaria-vet's iteration checker away from.
	openList := make([]*openBatch, 0, 8)
	findOpen := func(model int) *openBatch {
		for _, b := range openList {
			if b.model == model {
				return b
			}
		}
		return nil
	}
	removeOpen := func(b *openBatch) {
		for i, x := range openList {
			if x == b {
				openList = append(openList[:i], openList[i+1:]...)
				return
			}
		}
	}
	// The window FIFO advances by head index, not by re-slicing: a
	// queue[1:] walk marches the append head off the backing array and
	// allocates a fresh tiny slice per window (one per batch — the
	// dominant allocation at scale). Draining rewinds to the front, and
	// in-place compaction bounds the backing at the open-window
	// high-water mark; both preserve FIFO order exactly.
	qHead := 0
	flush := func(until float64) {
		for qHead < len(queue) {
			b := queue[qHead]
			if b.closed {
				qHead++
				batchPool = append(batchPool, b)
				continue
			}
			if simtime.After(b.closeAt, until) {
				if qHead > 64 && 2*qHead >= len(queue) {
					n := copy(queue, queue[qHead:])
					queue = queue[:n]
					qHead = 0
				}
				return
			}
			qHead++
			removeOpen(b)
			dispatch(b.closeAt, takeMembers(b.members), b.model)
			batchPool = append(batchPool, b)
		}
		queue, qHead = queue[:0], 0
	}

	// Autoscaler control plane: drainChip retires one slot gracefully —
	// in-flight groups (estimated started before the drain instant) stay
	// and finish; queued groups migrate to the least-loaded routable chip
	// or shed as ShedDrain when none remains — and controlTick runs the
	// controller at each control instant. Both live inside the same
	// single-goroutine walk as dispatch, so a fault landing on a draining
	// chip, a flash crowd mid-drain, or a drain racing permanent chip death
	// all resolve in one deterministic time order.
	var controlTick func(T float64)
	if asc != nil {
		drainChip := func(c int, T float64) {
			s := &asc.slots[c]
			s.state = slotDraining
			asc.cDrains.Inc()
			asc.fleet.Note(T, c, obs.FleetDrain)
			if tracing {
				recordB(sim.Event{Time: T, Kind: sim.EvDrain, Unit: c})
			}
			pend := s.pend
			// Skip groups already estimated finished, then keep the
			// in-flight prefix: groups whose estimated start precedes the
			// drain instant run to completion on this chip, and the slot
			// retires when the last of them is estimated done.
			i := 0
			for i < len(pend) && ends[pend[i]] <= T {
				i++
			}
			retire := T
			for i < len(pend) {
				di := pend[i]
				if ends[di]-dispatches[di].cost >= T {
					break
				}
				retire = ends[di]
				i++
			}
			// Everything behind the in-flight prefix is queued work the
			// drained slot abandons: migrate each group, or shed it when no
			// routable chip remains. The abandoned groups are the trailing
			// positions of the slot's request slice, so decrementing the
			// count keeps per-chip positions dense.
			for _, di := range pend[i:] {
				d := dispatches[di]
				target := -1
				var bestOut float64
				for j := range busyUntil {
					if j == c || health[j].aliveAt(T, totalSub) <= 0 || !asc.routable(j, T) {
						continue
					}
					outst := busyUntil[j] - T
					if outst < 0 {
						outst = 0
					}
					if target < 0 || outst < bestOut {
						target, bestOut = j, outst
					}
				}
				out.Dispatched[c]--
				chipCounts[c]--
				if target < 0 {
					dispatches[di].chip = -1 // tombstone: shed during drain
					out.Batches--
					membersTotal -= len(d.members)
					out.ShedDrain += len(d.members)
					for _, m := range d.members {
						asc.cDrainShed.Inc()
						if tracing {
							recordB(sim.Event{Time: T, Kind: sim.EvShed, Task: reqs[m].ID, Model: reqs[m].Model})
						}
						if frontLed != nil {
							frontLed.Reopen(m, obs.PhaseDrainMigrate)
							frontLed.Close(m, T, obs.CauseShedDrain)
							linkChip[m], linkPos[m] = -1, -1
						}
					}
					continue
				}
				busyUntil[target] = math.Max(busyUntil[target], T) + d.cost
				newPos := chipCounts[target]
				chipCounts[target]++
				out.Dispatched[target]++
				out.Migrated += len(d.members)
				asc.cMigrated.Inc()
				if tracing {
					leader := &reqs[d.members[0]]
					recordB(sim.Event{Time: T, Kind: sim.EvMigrate, Task: leader.ID, Model: leader.Model, Unit: target, Depth: c})
				}
				if frontLed != nil {
					for _, m := range d.members {
						frontLed.Reopen(m, obs.PhaseDrainMigrate)
						frontLed.Close(m, T, obs.CauseDispatched)
						linkChip[m], linkPos[m] = int32(target), int32(newPos)
					}
				}
				//perf:alloc-ok drain-time migration, off the static and steady-state paths
				ends = append(ends, busyUntil[target])
				//perf:alloc-ok drain-time migration, off the static and steady-state paths
				asc.slots[target].pend = append(asc.slots[target].pend, int32(len(dispatches)))
				nd := d
				nd.chip, nd.pos, nd.at = target, newPos, T
				nd.qos = nd.deadline - T
				//perf:alloc-ok drain-time migration, off the static and steady-state paths
				dispatches = append(dispatches, nd)
				dispatches[di].chip = -2 // migrated away: the appended copy serves its members
			}
			s.pend = pend[:0]
			s.retireAt = retire
			busyUntil[c] = retire
			asc.fleet.Note(retire, c, obs.FleetRetire)
			asc.cDown.Inc()
			if tracing {
				//perf:alloc-ok future-dated retire event on a traced scaled run
				frontC = append(frontC, sim.Event{Time: retire, Kind: sim.EvScaleDown, Unit: c})
			}
		}
		controlTick = func(T float64) {
			active, booting, draining := asc.counts(T)
			backlog := 0.0
			for i := range busyUntil {
				if asc.slots[i].state != slotReady {
					continue
				}
				if w := busyUntil[i] - T; w > 0 {
					backlog += w
				}
			}
			want := asc.cfg.Controller.Desired(ScaleSignal{
				Time: T, Active: active, Booting: booting, Draining: draining,
				BacklogS: backlog, MaxWaitS: asc.debtMax, Arrivals: asc.arrivals,
			})
			if want < asc.cfg.Min {
				want = asc.cfg.Min
			}
			if want > asc.chips {
				want = asc.chips
			}
			eff := active + booting
			for eff < want {
				c := asc.bootOne(T)
				if c < 0 {
					break
				}
				if tracing {
					recordB(sim.Event{Time: T, Kind: sim.EvScaleUp, Unit: c})
				}
				eff++
			}
			// Scale-down drains ready slots only — boots in flight are never
			// cancelled — and stops at the Min floor.
			for eff > want && active > asc.cfg.Min {
				c := asc.drainCandidate(T, busyUntil)
				if c < 0 {
					break
				}
				drainChip(c, T)
				eff--
				active--
			}
			asc.debtMax, asc.arrivals = 0, 0
		}
	}
	for _, a := range admits {
		if asc != nil {
			// Control instants interleave with the admit walk in simulated
			// time order: close out batch windows up to the tick first, so
			// the controller sees (and drains reassign) exactly the state a
			// real front door would have at that instant.
			for a.at >= asc.nextTick {
				tk := asc.nextTick
				asc.nextTick += asc.cfg.IntervalS
				flush(tk)
				controlTick(tk)
			}
			asc.noteWait(a.at - arrs[a.idx])
		}
		if !batching {
			// Single-request group: a one-element capped sub-slice of the
			// arena, no per-request allocation.
			memberArena = append(memberArena, int(a.idx))
			dispatch(a.at, memberArena[len(memberArena)-1:len(memberArena):len(memberArena)], int(a.model))
			continue
		}
		model := int(a.model)
		flush(a.at)
		b := findOpen(model)
		if b == nil {
			b = newBatch(model, a.at+cfg.BatchWindow)
			openList = append(openList, b)
			queue = append(queue, b)
		}
		b.members = append(b.members, int(a.idx))
		if len(b.members) >= maxBatch {
			b.closed = true
			removeOpen(b)
			dispatch(a.at, takeMembers(b.members), b.model)
		}
	}
	flush(math.Inf(1))

	if out.Batches > 0 {
		out.MeanBatchSize = float64(membersTotal) / float64(out.Batches)
	}

	// Phase two of dispatch: lay the routed groups out per chip. The
	// backing array escapes into ChipResult.Requests, so it is a real
	// allocation — but exactly one, exactly sized. Capacities are capped
	// (three-index slices) so a caller appending to one chip's Requests
	// reallocates instead of clobbering its neighbour. Each merged
	// request is rebuilt in place from its leader plus the scalars the
	// dispatchRec captured; dispatch order within a chip matches d.pos
	// by construction.
	perChip := make([][]workload.Request, cfg.Chips)
	offs := make([]int, cfg.Chips)
	off := 0
	for i, n := range chipCounts {
		offs[i] = off
		off += n
	}
	// On autoscaled runs the final layout can be smaller than the record
	// count: drain tombstones (shed groups) and migrated-away originals
	// occupy no slot.
	backing := make([]workload.Request, off)
	for i, n := range chipCounts {
		perChip[i] = backing[offs[i] : offs[i]+n : offs[i]+n]
	}
	for i := range dispatches {
		d := &dispatches[i]
		if d.chip < 0 {
			continue
		}
		m := &backing[offs[d.chip]+d.pos]
		*m = reqs[d.members[0]]
		m.Arrival, m.Deadline, m.QoS = d.at, d.deadline, d.qos
		m.Priority, m.Work = d.prio, d.work
	}

	// Stage 4: run the chips — one shard (goroutine) per chip, since each
	// chip is one long independent simulation and the chip count is small.
	// Writes stay confined to index i; the merge below walks dispatch
	// records in virtual-time order, so the aggregate is deterministic no
	// matter how the shards interleave.
	results := make([]*ChipResult, cfg.Chips)
	errs := make([]error, cfg.Chips)
	par.PerItem(cfg.Chips, func(i int) {
		//perf:alloc-ok one result object per chip per run
		cr := &ChipResult{Requests: perChip[i]}
		results[i] = cr
		if cfg.ChipTraces {
			//perf:alloc-ok per-chip trace sink, built only when chip traces are requested
			cr.Trace = &sim.Trace{}
		}
		if cfg.Observe {
			cr.Obs = obs.New()
		}
		if cfg.Attrib {
			cr.Attrib = obs.NewLedger(len(perChip[i]))
			cr.Occ = obs.NewOccupancy(int64(totalSub))
		}
		if len(perChip[i]) == 0 {
			return
		}
		pol := cfg.System.NewPolicy()
		if ob, ok := pol.(obs.Observable); ok && cr.Obs != nil {
			ob.SetObserver(cr.Obs)
		}
		if oa, ok := pol.(obs.OccupancyAware); ok && cr.Occ != nil {
			oa.SetOccupancy(cr.Occ)
		}
		//perf:alloc-ok one simulated node per chip per run
		node := &sim.Node{
			Cfg:       cfg.System.Cfg,
			Policy:    pol,
			Programs:  cfg.System.Programs,
			Params:    cfg.System.Params,
			Trace:     cr.Trace,
			Obs:       cr.Obs,
			Attrib:    cr.Attrib,
			Occ:       cr.Occ,
			FaultMode: cfg.FaultMode,
			Shed:      cfg.Shed,
		}
		if cfg.Faults != nil && cfg.Faults[i] != nil {
			node.Faults, errs[i] = fault.NewInjector(cfg.Faults[i])
			if errs[i] != nil {
				return
			}
		}
		cr.Outcome, errs[i] = node.Run(perChip[i])
	})
	if err := par.FirstError(errs); err != nil {
		return nil, err
	}
	out.PerChip = results
	if frontLed != nil {
		//perf:alloc-ok one attribution bundle per run, only when Attrib is on
		out.Attrib = &Attribution{Front: frontLed, Chip: linkChip, Pos: linkPos}
	}

	// Stage 5: merge chip outcomes back onto the original stream. The
	// latency histogram handles are interned per model up front —
	// registry lookups and bucket-bound slices are off the per-request
	// path.
	var latHists map[string]*obs.Histogram
	var durBounds []float64
	if reg != nil {
		latHists = make(map[string]*obs.Histogram, len(cfg.System.Programs))
		durBounds = obs.DurationBuckets()
	}
	for _, d := range dispatches {
		if d.chip < 0 {
			continue // drain tombstone or migrated-away original
		}
		chipOut := results[d.chip].Outcome
		fin := chipOut.Finishes[d.pos]
		for _, m := range d.members {
			if fin >= 0 {
				out.Finishes[m] = fin
				out.Latency[m] = fin - arrs[m]
				out.Completed++
				if reg != nil {
					h := latHists[reqs[m].Model]
					if h == nil {
						h = reg.Histogram("cluster_latency_seconds", durBounds,
							obs.L("model", reqs[m].Model))
						latHists[reqs[m].Model] = h
					}
					h.Observe(out.Latency[m])
				}
			} else if _, ok := cfg.System.Programs[reqs[m].Model]; !ok {
				out.Rejected++
			} else {
				out.ShedChips++
			}
		}
	}
	lastFinish := math.Inf(-1)
	for i := range out.Finishes {
		if out.Finishes[i] > lastFinish {
			lastFinish = out.Finishes[i]
		}
	}
	if lastFinish > firstArrival {
		out.Makespan = lastFinish - firstArrival
	}
	for _, cr := range results {
		if cr.Outcome == nil {
			continue
		}
		out.EnergyJ += cr.Outcome.EnergyJ
		out.Killed += cr.Outcome.Killed
		out.Retries += cr.Outcome.Retries
		out.FaultEvents += cr.Outcome.FaultEvents
	}
	if domOverflow {
		out.MeetsSLA, out.DeadlineFrac = workload.SLAOutcome(reqs, out.Finishes)
	} else {
		out.MeetsSLA, out.DeadlineFrac = workload.SLAOutcomeFlat(doms, domNames, dls, out.Finishes)
	}

	if cfg.Trace != nil {
		if len(frontC) > 0 {
			// Retire events were recorded at drain-decision time with
			// future instants; order them and fold into the dispatch run so
			// exportFront sees two monotone runs again.
			sort.SliceStable(frontC, func(i, j int) bool { return frontC[i].Time < frontC[j].Time })
			merged := make([]sim.Event, 0, len(frontB)+len(frontC))
			i, j := 0, 0
			for i < len(frontB) && j < len(frontC) {
				if frontB[i].Time <= frontC[j].Time {
					merged = append(merged, frontB[i])
					i++
				} else {
					merged = append(merged, frontC[j])
					j++
				}
			}
			merged = append(merged, frontB[i:]...)
			merged = append(merged, frontC[j:]...)
			frontB = merged
		}
		exportFront(cfg.Trace, frontA, frontB)
	}
	return out, nil
}

// exportFront appends the two front-door event runs to the trace in
// stable time order. Both runs are built in non-decreasing time order
// (stage 1 walks arrivals in order; dispatch instants never move
// backwards), so a two-pointer merge that prefers run A on ties
// reproduces exactly what sort.SliceStable over the concatenation —
// the pre-sharded encoding — produced. Should either ordering
// invariant ever break, the stable sort runs as the fallback.
func exportFront(tr *sim.Trace, a, b []sim.Event) {
	if !eventsOrdered(a) || !eventsOrdered(b) {
		all := make([]sim.Event, 0, len(a)+len(b))
		all = append(all, a...)
		all = append(all, b...)
		sort.SliceStable(all, func(i, j int) bool { return all[i].Time < all[j].Time })
		tr.Events = append(tr.Events, all...)
		return
	}
	tr.Reserve(len(a) + len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i].Time <= b[j].Time {
			tr.Events = append(tr.Events, a[i])
			i++
		} else {
			tr.Events = append(tr.Events, b[j])
			j++
		}
	}
	tr.Events = append(tr.Events, a[i:]...)
	tr.Events = append(tr.Events, b[j:]...)
}

// eventsOrdered reports whether the run's times never decrease.
func eventsOrdered(evs []sim.Event) bool {
	for i := 1; i < len(evs); i++ {
		if evs[i].Time < evs[i-1].Time {
			return false
		}
	}
	return true
}
