package cluster

import (
	"fmt"
	"math"
	"sort"

	"planaria/internal/simtime"
)

// TokenBucket is the admission budget of one QoS level: tokens refill
// continuously at Rate per simulated second up to Burst, one token admits
// one request, and requests that find the bucket empty wait in a bounded
// FIFO whose overflow sheds deterministically (the arriving request is
// declined; nothing already queued is evicted).
type TokenBucket struct {
	// Rate is the sustained admission rate, tokens per simulated second.
	Rate float64
	// Burst is the bucket capacity (instantaneously admittable run).
	Burst float64
	// MaxQueue bounds how many admitted-but-waiting requests may be
	// queued for future tokens. 0 means no queueing: an empty bucket
	// sheds immediately.
	MaxQueue int
}

// validate checks one bucket's parameters.
func (b TokenBucket) validate(level string) error {
	if b.Rate <= 0 || math.IsNaN(b.Rate) || math.IsInf(b.Rate, 0) {
		return fmt.Errorf("cluster: admission bucket %q needs a positive rate, got %v", level, b.Rate)
	}
	if b.Burst < 1 || math.IsNaN(b.Burst) || math.IsInf(b.Burst, 0) {
		return fmt.Errorf("cluster: admission bucket %q needs burst >= 1, got %v", level, b.Burst)
	}
	if b.MaxQueue < 0 {
		return fmt.Errorf("cluster: admission bucket %q has negative queue bound %d", level, b.MaxQueue)
	}
	return nil
}

// bucketState replays one token bucket against arrival order. The bucket
// starts full at t = 0 of the simulated timeline, so the g-th grant (from
// 1) cannot happen before (g − Burst)/Rate; the admit instant is
// additionally FIFO (never before the previous grant's instant).
type bucketState struct {
	cfg    TokenBucket
	grants int
	// waiting holds the admit instants of grants still in the future,
	// oldest first; its length is the queue occupancy.
	waiting []float64
}

// admit requests one token at simulated time t (arrivals must be fed in
// non-decreasing t). It returns the admit instant (>= t) and true, or
// false when the wait queue is full and the request sheds.
func (b *bucketState) admit(t float64) (float64, bool) {
	// Grants whose instant has passed are no longer queued.
	drop := 0
	for drop < len(b.waiting) && simtime.Due(b.waiting[drop], t) {
		drop++
	}
	b.waiting = b.waiting[drop:]
	at := t
	if earliest := (float64(b.grants+1) - b.cfg.Burst) / b.cfg.Rate; earliest > at {
		at = earliest
	}
	if n := len(b.waiting); n > 0 && b.waiting[n-1] > at {
		at = b.waiting[n-1] // FIFO within the level
	}
	if simtime.After(at, t) {
		if len(b.waiting) >= b.cfg.MaxQueue {
			return 0, false
		}
		b.waiting = append(b.waiting, at)
	}
	b.grants++
	return at, true
}

// admissionState holds the per-level buckets of one cluster run.
type admissionState struct {
	buckets map[string]*bucketState
}

// newAdmissionState validates and instantiates the configured buckets.
// A nil/empty config disables admission control entirely.
//
//perf:cold once-per-run constructor; the per-request path is admit
func newAdmissionState(cfg map[string]TokenBucket) (*admissionState, error) {
	if len(cfg) == 0 {
		return nil, nil
	}
	levels := make([]string, 0, len(cfg))
	for level := range cfg {
		levels = append(levels, level)
	}
	sort.Strings(levels) // deterministic validation order
	st := &admissionState{buckets: make(map[string]*bucketState, len(cfg))}
	for _, level := range levels {
		b := cfg[level]
		if err := b.validate(level); err != nil {
			return nil, err
		}
		st.buckets[level] = &bucketState{cfg: b}
	}
	return st, nil
}

// admit runs one request's level through its bucket. Levels without a
// configured bucket fall back to the "" bucket when present, and admit
// freely otherwise (admission control governs only the levels it names).
func (st *admissionState) admit(level string, t float64) (float64, bool) {
	if st == nil {
		return t, true
	}
	b, ok := st.buckets[level]
	if !ok {
		if b, ok = st.buckets[""]; !ok {
			return t, true
		}
	}
	return b.admit(t)
}
