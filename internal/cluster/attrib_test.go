package cluster

import (
	"math/big"
	"testing"

	"planaria/internal/fault"
	"planaria/internal/obs"
	"planaria/internal/sim"
	"planaria/internal/workload"
)

// attribConfigs builds runs that exercise every attribution phase and
// terminal cause: batching (batch-wait), admission buckets (admit-wait,
// shed-admission), faults with shedding (fault-stall, retry-backoff,
// shed-chip, shed-retries), dead chips (shed-unroutable, shed-dead-chip),
// and an unknown model (rejected).
func attribConfigs(t *testing.T) []struct {
	name string
	cfg  Config
	reqs []workload.Request
} {
	t.Helper()
	spatial := spatialSystem(t)
	monolithic := premaSystem(t)
	faultsFor := func(chips int, seed int64) []*fault.Schedule {
		out := make([]*fault.Schedule, chips)
		for i := range out {
			s, err := fault.Generate(16, 4, 40, 0.5, 0.05, seed+int64(i))
			if err != nil {
				t.Fatal(err)
			}
			out[i] = s
		}
		return out
	}
	dead := &fault.Schedule{Units: 16, Pods: 4}
	for u := 0; u < 16; u++ {
		dead.Events = append(dead.Events, fault.Event{Time: 1e-4, Kind: fault.KindSubarray, Unit: u})
	}
	return []struct {
		name string
		cfg  Config
		reqs []workload.Request
	}{
		{
			name: "plain",
			cfg:  Config{System: spatial, Chips: 2, Policy: "least-work", Attrib: true},
			reqs: genReqs(60, 400, 1, 3),
		},
		{
			name: "batched-admitted",
			cfg: Config{System: spatial, Chips: 2, Policy: "round-robin",
				BatchWindow: 1e-3, MaxBatch: 4,
				Admission: map[string]TokenBucket{"": {Rate: 150, Burst: 2, MaxQueue: 2}},
				Attrib:    true},
			reqs: genReqs(80, 900, 0.1, 4),
		},
		{
			name: "faulted-fission-shedding",
			cfg: Config{System: spatial, Chips: 3, Policy: "least-work",
				Faults: faultsFor(3, 7), FaultMode: sim.FaultFission,
				Shed: sim.ShedDoomed, Attrib: true},
			reqs: genReqs(100, 600, 0.02, 5),
		},
		{
			name: "prema-derate-batched",
			cfg: Config{System: monolithic, Chips: 2, Policy: "round-robin",
				BatchWindow: 1e-3,
				Faults:      faultsFor(2, 11), FaultMode: sim.FaultDerate,
				Attrib:      true},
			reqs: genReqs(80, 500, 1, 6),
		},
		{
			name: "dead-chip-and-rejection",
			cfg: Config{System: spatial, Chips: 2, Policy: "least-work",
				Faults: []*fault.Schedule{dead, nil}, FaultMode: sim.FaultFission,
				Attrib: true},
			reqs: append(genReqs(40, 400, 1, 8),
				workload.Request{ID: 900, Model: "no-such-model", Domain: "classification",
					Arrival: 0.01, Priority: 5, QoS: 1, Deadline: 1.01}),
		},
	}
}

// bigSum telescopes a span list with 200-bit arithmetic; because spans
// share instants, the result must equal last.To − first.From with zero
// rounding error (DESIGN.md §14).
func bigSum(spans []obs.PhaseSpan) *big.Float {
	sum := new(big.Float).SetPrec(200)
	for _, s := range spans {
		d := new(big.Float).SetPrec(200).Sub(big.NewFloat(s.To), big.NewFloat(s.From))
		sum.Add(sum, d)
	}
	return sum
}

// TestAttributionConservation is the subsystem's load-bearing invariant
// check: for every request, the attributed phase spans (front half plus
// the linked chip half) telescope bit-exactly to its end-to-end latency;
// terminal causes partition the stream exactly like the Outcome tallies;
// and every chip's occupancy cycles partition Units × Horizon.
func TestAttributionConservation(t *testing.T) {
	for _, tc := range attribConfigs(t) {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			out, err := Run(tc.cfg, tc.reqs)
			if err != nil {
				t.Fatal(err)
			}
			a := out.Attrib
			if a == nil {
				t.Fatal("Config.Attrib set but Outcome.Attrib is nil")
			}

			causeTally := map[obs.Cause]int{}
			var spanBuf []obs.PhaseSpan
			for i, r := range tc.reqs {
				spans := a.Front.Spans(i, spanBuf[:0])
				if len(spans) == 0 {
					t.Fatalf("request %d has no front spans", i)
				}
				if spans[0].From != r.Arrival {
					t.Fatalf("request %d: first span starts at %x, arrival %x",
						i, spans[0].From, r.Arrival)
				}
				cause := a.Front.Cause(i)
				if cause == obs.CauseDispatched {
					led, pos, ok := a.ChipLedger(out, i)
					if !ok {
						t.Fatalf("request %d dispatched but has no chip ledger", i)
					}
					chipSpans := led.Spans(pos, nil)
					if len(chipSpans) == 0 {
						t.Fatalf("request %d: dispatched with no chip spans", i)
					}
					// The handoff boundary must be bit-identical: the front
					// half closes at the exact instant the chip half opens.
					if spans[len(spans)-1].To != chipSpans[0].From {
						t.Fatalf("request %d: front closes at %x, chip opens at %x",
							i, spans[len(spans)-1].To, chipSpans[0].From)
					}
					spans = append(spans, chipSpans...)
					cause = led.Cause(pos)
				}
				spanBuf = spans

				// Exact conservation: Σ spans == end − start in big.Float.
				endStart := new(big.Float).SetPrec(200).Sub(
					big.NewFloat(spans[len(spans)-1].To), big.NewFloat(spans[0].From))
				if s := bigSum(spans); s.Cmp(endStart) != 0 {
					t.Fatalf("request %d: Σ spans %s != end−start %s",
						i, s.Text('g', 25), endStart.Text('g', 25))
				}
				// Completed requests end exactly at their recorded finish.
				if fin := out.Finishes[i]; fin >= 0 {
					if cause != obs.CauseDone {
						t.Fatalf("request %d finished at %g but cause is %v", i, fin, cause)
					}
					if got := spans[len(spans)-1].To; got != fin {
						t.Fatalf("request %d: ledger ends at %x, Finishes says %x", i, got, fin)
					}
				} else if cause == obs.CauseDone {
					t.Fatalf("request %d: cause done but never finished", i)
				}

				// Durations agree with the span sum to float accumulation
				// error and never go negative.
				var dur [obs.NumPhases]float64
				c2, ok := a.Durations(out, i, &dur)
				if !ok || c2 != cause {
					t.Fatalf("request %d: Durations cause %v, Spans cause %v", i, c2, cause)
				}
				for p, d := range dur {
					if d < 0 {
						t.Fatalf("request %d: negative %v duration %g", i, obs.Phase(p), d)
					}
				}
				causeTally[cause]++
			}

			// Terminal causes partition exactly like the Outcome tallies.
			if causeTally[obs.CauseDone] != out.Completed {
				t.Errorf("done causes %d != Completed %d", causeTally[obs.CauseDone], out.Completed)
			}
			if got := causeTally[obs.CauseShedAdmission] + causeTally[obs.CauseShedUnroutable]; got != out.ShedFront {
				t.Errorf("front-shed causes %d != ShedFront %d", got, out.ShedFront)
			}
			if got := causeTally[obs.CauseShedChip] + causeTally[obs.CauseShedRetries] +
				causeTally[obs.CauseShedDeadChip]; got != out.ShedChips {
				t.Errorf("chip-shed causes %d != ShedChips %d", got, out.ShedChips)
			}
			if causeTally[obs.CauseRejected] != out.Rejected {
				t.Errorf("rejected causes %d != Rejected %d", causeTally[obs.CauseRejected], out.Rejected)
			}
			if causeTally[obs.CauseOpen] != 0 || causeTally[obs.CauseDispatched] != 0 {
				t.Errorf("non-terminal causes leaked: %v", causeTally)
			}

			// Integer occupancy conservation per chip and for the fleet.
			for c, cr := range out.PerChip {
				if cr == nil || cr.Occ == nil {
					t.Fatalf("chip %d has no occupancy accountant", c)
				}
				o := cr.Occ
				if got := o.Busy + o.Idle + o.Faulted + o.Reconfig; got != o.Units*o.Horizon {
					t.Errorf("chip %d occupancy partition: %d != %d (%+v)",
						c, got, o.Units*o.Horizon, o)
				}
			}
			rep, err := out.AttribReport(tc.reqs)
			if err != nil {
				t.Fatal(err)
			}
			var reqTotal int64
			for _, g := range rep.Groups {
				reqTotal += g.Requests
			}
			if reqTotal != int64(len(tc.reqs)) {
				t.Errorf("report covers %d requests, want %d", reqTotal, len(tc.reqs))
			}
			if rep.Fleet == nil {
				t.Fatal("report has no fleet row")
			}
			f := rep.Fleet
			if f.Busy+f.Idle+f.Faulted+f.Reconfig != f.Units*f.Horizon {
				t.Errorf("fleet occupancy partition: %+v", f)
			}
		})
	}
}

// TestAttributionDisabledByDefault pins the zero-cost default: without
// Config.Attrib the outcome carries no attribution state and AttribReport
// refuses to fabricate one.
func TestAttributionDisabledByDefault(t *testing.T) {
	reqs := genReqs(20, 400, 1, 3)
	out, err := Run(Config{System: spatialSystem(t), Chips: 1}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if out.Attrib != nil {
		t.Fatal("attribution populated without Config.Attrib")
	}
	for _, cr := range out.PerChip {
		if cr.Attrib != nil || cr.Occ != nil {
			t.Fatal("chip attribution populated without Config.Attrib")
		}
	}
	if _, err := out.AttribReport(reqs); err == nil {
		t.Fatal("AttribReport accepted an attribution-free run")
	}
	// Length mismatch is rejected too.
	out2, err := Run(Config{System: spatialSystem(t), Chips: 1, Attrib: true}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := out2.AttribReport(reqs[:5]); err == nil {
		t.Fatal("AttribReport accepted a mismatched request slice")
	}
}

// TestAttributionDeterministic pins byte-identical report JSON across two
// identical runs — the property the CI artifact gate enforces.
func TestAttributionDeterministic(t *testing.T) {
	sys := spatialSystem(t)
	reqs := genReqs(60, 900, 0.05, 14)
	run := func() string {
		rs := make([]workload.Request, len(reqs))
		copy(rs, reqs)
		out, err := Run(Config{
			System: sys, Chips: 2, Policy: "least-work",
			BatchWindow: 5e-4, MaxBatch: 4,
			Admission: map[string]TokenBucket{"": {Rate: 400, Burst: 8, MaxQueue: 4}},
			Shed:      sim.ShedDoomed, Attrib: true,
		}, rs)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := out.AttribReport(rs)
		if err != nil {
			t.Fatal(err)
		}
		j, err := rep.JSON()
		if err != nil {
			t.Fatal(err)
		}
		return string(j)
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("attribution report not deterministic:\n%s\n---\n%s", a, b)
	}
}
