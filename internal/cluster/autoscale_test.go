package cluster

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"planaria/internal/fault"
	"planaria/internal/obs"
	"planaria/internal/sim"
	"planaria/internal/workload"
)

// wantChips is a test controller that always asks for a fixed fleet size.
type wantChips int

func (w wantChips) Name() string              { return "fixed" }
func (w wantChips) Desired(s ScaleSignal) int { return int(w) }

// deadChip is a fault schedule that takes every pod's link down
// permanently at the given instant — the cluster's model of a chip that
// dies and never comes back.
func deadChip(t *testing.T, at float64) *fault.Schedule {
	t.Helper()
	s := &fault.Schedule{Units: 16, Pods: 4}
	for pod := 0; pod < s.Pods; pod++ {
		s.Events = append(s.Events, fault.Event{Time: at, Kind: fault.KindLink, Unit: pod})
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	return s
}

// burstReqs is genReqs plus a dense burst: burstN extra requests packed
// into [burstAt, burstAt+burstLen), modelling a flash crowd.
func burstReqs(n int, qps, qos float64, seed int64, burstAt, burstLen float64, burstN int) []workload.Request {
	reqs := genReqs(n, qps, qos, seed)
	rng := rand.New(rand.NewSource(seed + 1))
	for i := 0; i < burstN; i++ {
		at := burstAt + burstLen*float64(i)/float64(burstN)
		model := toyModels[rng.Intn(len(toyModels))]
		reqs = append(reqs, workload.Request{
			ID: n + i, Model: model, Domain: "classification",
			Arrival: at, Priority: rng.Intn(11) + 1,
			QoS: qos, Deadline: at + qos,
			Level: "QoS-M",
		})
	}
	// Re-sort by arrival so the stream stays a valid arrival order; IDs
	// stop being the identity permutation, which also exercises the
	// non-identity input path.
	for i := 1; i < len(reqs); i++ {
		for j := i; j > 0 && reqs[j].Arrival < reqs[j-1].Arrival; j-- {
			reqs[j], reqs[j-1] = reqs[j-1], reqs[j]
		}
	}
	return reqs
}

func TestHysteresisController(t *testing.T) {
	h := &Hysteresis{TargetS: 0.1, DebtS: 0.05, HoldTicks: 2}
	// Proportional up: a backlog of 0.95s at 0.1s/chip wants 10 chips in
	// one tick, not one-per-tick creep.
	if got := h.Desired(ScaleSignal{Active: 2, BacklogS: 0.95}); got != 10 {
		t.Fatalf("flash-crowd tick: want 10 chips, got %d", got)
	}
	// Admission debt trips even when the backlog estimate looks calm.
	if got := h.Desired(ScaleSignal{Active: 2, BacklogS: 0, MaxWaitS: 0.2}); got != 3 {
		t.Fatalf("debt trip: want 3 chips, got %d", got)
	}
	// Down needs HoldTicks consecutive calm ticks.
	if got := h.Desired(ScaleSignal{Active: 4, BacklogS: 0.01}); got != 4 {
		t.Fatalf("first calm tick must hold, got %d", got)
	}
	if got := h.Desired(ScaleSignal{Active: 4, BacklogS: 0.01}); got != 3 {
		t.Fatalf("second calm tick should release one chip, got %d", got)
	}
	// A loaded tick resets the calm streak.
	h.Desired(ScaleSignal{Active: 4, BacklogS: 0.01}) // calm 1
	h.Desired(ScaleSignal{Active: 4, BacklogS: 10})   // reset
	if got := h.Desired(ScaleSignal{Active: 4, BacklogS: 0.01}); got != 4 {
		t.Fatalf("calm streak must reset after load, got %d", got)
	}
}

func TestScriptController(t *testing.T) {
	s := &Script{Steps: []ScaleStep{{AtS: 1, Chips: 4}, {AtS: 2, Chips: 2}}}
	if got := s.Desired(ScaleSignal{Time: 0.5, Active: 3}); got != 3 {
		t.Fatalf("before first step: want current size 3, got %d", got)
	}
	if got := s.Desired(ScaleSignal{Time: 1}); got != 4 {
		t.Fatalf("at step: want 4, got %d", got)
	}
	if got := s.Desired(ScaleSignal{Time: 5}); got != 2 {
		t.Fatalf("past last step: want 2, got %d", got)
	}
}

func TestAutoscaleValidate(t *testing.T) {
	sys := spatialSystem(t)
	reqs := genReqs(4, 100, 1, 1)
	bad := []Autoscale{
		{Min: 5, IntervalS: 0.1},             // Min above the ceiling
		{Min: 1, Initial: 9, IntervalS: 0.1}, // Initial above the ceiling
		{Min: 2, Initial: 1, IntervalS: 0.1}, // Initial below Min
		{Min: 1, IntervalS: 0},               // no control period
		{Min: 1, IntervalS: 0.1, BootS: -1},  // negative boot
		{Min: 1, IntervalS: math.Inf(1)},     // non-finite period
	}
	for i, a := range bad {
		cfg := Config{System: sys, Chips: 4, Scale: &a}
		if _, err := Run(cfg, reqs); err == nil {
			t.Errorf("bad autoscale config %d accepted", i)
		}
	}
}

func TestAutoscaledRunConservation(t *testing.T) {
	sys := spatialSystem(t)
	reqs := genReqs(2000, 600, 1, 7)
	tr := &sim.Trace{}
	cfg := Config{
		System: sys, Chips: 6, Policy: "least-work",
		BatchWindow: 2e-4, MaxBatch: 8,
		Scale: &Autoscale{Min: 1, Initial: 2, BootS: 0.05, IntervalS: 0.05},
		Trace: tr, Attrib: true, Observe: true,
	}
	out, err := Run(cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	checkConservation(t, cfg, reqs, out)
	if out.Fleet == nil {
		t.Fatal("autoscaled run returned no fleet log")
	}
	horizon := reqs[len(reqs)-1].Arrival
	cs := out.Fleet.ChipSeconds(horizon)
	if cs <= 0 || cs >= float64(cfg.Chips)*horizon {
		t.Errorf("chip-seconds %g outside (0, %g): the fleet never scaled", cs, float64(cfg.Chips)*horizon)
	}
	if peak := out.Fleet.PeakActive(horizon); peak < 2 || peak > cfg.Chips {
		t.Errorf("peak active %d outside [2, %d]", peak, cfg.Chips)
	}
	if out.Completed == 0 {
		t.Error("nothing completed")
	}
}

// TestAutoscaleConstantFleetMatchesStatic pins the integration's zero
// point: an autoscaler whose controller always wants the full ceiling,
// starting with every slot ready, must reproduce the static fleet's
// outcome bit-exactly — the autoscaled code path may add state, never
// behavior.
func TestAutoscaleConstantFleetMatchesStatic(t *testing.T) {
	sys := spatialSystem(t)
	reqs := genReqs(1500, 500, 1, 11)
	base := Config{
		System: sys, Chips: 4, Policy: "least-work",
		BatchWindow: 2e-4, MaxBatch: 8,
	}
	static, err := Run(base, reqs)
	if err != nil {
		t.Fatal(err)
	}
	scaled := base
	scaled.Scale = &Autoscale{Min: 4, Initial: 4, IntervalS: 0.05, Controller: wantChips(4)}
	got, err := Run(scaled, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Finishes, static.Finishes) {
		t.Fatal("constant-fleet autoscaled finishes differ from static")
	}
	if got.Completed != static.Completed || got.ShedFront != static.ShedFront ||
		got.ShedChips != static.ShedChips || got.Batches != static.Batches {
		t.Fatalf("constant-fleet tallies differ: %+v vs %+v", got, static)
	}
	if got.ShedDrain != 0 || got.Migrated != 0 {
		t.Fatalf("constant fleet drained: ShedDrain %d Migrated %d", got.ShedDrain, got.Migrated)
	}
}

func TestAutoscaleDeterministic(t *testing.T) {
	sys := spatialSystem(t)
	reqs := burstReqs(1200, 400, 0.5, 3, 1.0, 0.2, 800)
	run := func() (*Outcome, *sim.Trace) {
		tr := &sim.Trace{}
		cfg := Config{
			System: sys, Chips: 8, Policy: "least-work",
			BatchWindow: 2e-4, MaxBatch: 8,
			Scale: &Autoscale{Min: 1, Initial: 1, BootS: 0.1, IntervalS: 0.05},
			Trace: tr,
		}
		out, err := Run(cfg, reqs)
		if err != nil {
			t.Fatal(err)
		}
		return out, tr
	}
	a, ta := run()
	b, tb := run()
	if !reflect.DeepEqual(a.Finishes, b.Finishes) {
		t.Fatal("autoscaled run is not deterministic: finishes differ")
	}
	if a.ShedDrain != b.ShedDrain || a.Migrated != b.Migrated || a.Completed != b.Completed {
		t.Fatal("autoscaled run is not deterministic: tallies differ")
	}
	if !reflect.DeepEqual(ta.Events, tb.Events) {
		t.Fatal("autoscaled run is not deterministic: traces differ")
	}
	if !reflect.DeepEqual(a.Fleet.Events(), b.Fleet.Events()) {
		t.Fatal("autoscaled run is not deterministic: fleet logs differ")
	}
}

// TestDrainMigratesQueuedWork forces a scale-down while queued work sits
// on the drained chip and checks the work survives on other chips. The
// toy models run in microseconds, so the burst is dense and the drain
// lands milliseconds in — while each chip still holds a deep queue.
func TestDrainMigratesQueuedWork(t *testing.T) {
	sys := spatialSystem(t)
	// A dense burst up front queues estimated work well past the drain
	// instant; a sparse tail keeps control ticks firing afterwards.
	reqs := burstReqs(200, 50, 10, 5, 0.0, 0.01, 10000)
	tr := &sim.Trace{}
	cfg := Config{
		System: sys, Chips: 3, Policy: "least-work",
		Scale: &Autoscale{
			Min: 1, Initial: 3, IntervalS: 0.002,
			Controller: &Script{Steps: []ScaleStep{{AtS: 0.002, Chips: 2}}},
		},
		Trace: tr, Attrib: true,
	}
	out, err := Run(cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	checkConservation(t, cfg, reqs, out)
	if out.Migrated == 0 {
		t.Fatal("drain migrated nothing despite queued work")
	}
	if out.ShedDrain != 0 {
		t.Fatalf("drain shed %d requests despite routable targets", out.ShedDrain)
	}
	sawDrain, sawMigrate := false, false
	for _, e := range tr.Events {
		switch e.Kind {
		case sim.EvDrain:
			sawDrain = true
		case sim.EvMigrate:
			sawMigrate = true
		}
	}
	if !sawDrain || !sawMigrate {
		t.Fatalf("trace missing drain/migrate events: drain=%v migrate=%v", sawDrain, sawMigrate)
	}
}

// TestDrainShedsWhenNoTargetRemains drains a loaded chip after every
// other chip has died permanently: the queued groups have nowhere to go
// and must land in ShedDrain, never vanish.
func TestDrainShedsWhenNoTargetRemains(t *testing.T) {
	sys := spatialSystem(t)
	reqs := burstReqs(100, 40, 10, 9, 0.0, 0.01, 10000)
	cfg := Config{
		System: sys, Chips: 2, Policy: "least-work",
		Faults: []*fault.Schedule{deadChip(t, 0.001), deadChip(t, 0.001)},
		Scale: &Autoscale{
			Min: 1, Initial: 2, IntervalS: 0.002,
			Controller: &Script{Steps: []ScaleStep{{AtS: 0.002, Chips: 1}}},
		},
		Attrib: true,
	}
	out, err := Run(cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	checkConservation(t, cfg, reqs, out)
	if out.ShedDrain == 0 {
		t.Fatal("drain with no live target shed nothing — queued work vanished or test setup idle")
	}
	if out.Migrated != 0 {
		t.Fatalf("migrated %d requests to dead chips", out.Migrated)
	}
}

// TestDrainRacesFaultOnDrainingChip lands a permanent chip death on the
// very chip being drained, at the drain instant: the two removal paths
// (drain migration and dead-chip queue shedding) must partition the
// chip's requests without losing or double-counting any.
func TestDrainRacesFaultOnDrainingChip(t *testing.T) {
	sys := spatialSystem(t)
	reqs := burstReqs(300, 60, 0.05, 13, 0.0, 0.002, 4000)
	for _, faultAt := range []float64{0.0015, 0.002, 0.0025} {
		faults := []*fault.Schedule{nil, nil, nil}
		// The script drains one chip at t=0.002; the fault lands just
		// before, exactly at, and just after the drain instant across the
		// three passes, covering both interleavings of the race.
		faults[2] = deadChip(t, faultAt)
		cfg := Config{
			System: sys, Chips: 3, Policy: "least-work",
			Faults: faults,
			Scale: &Autoscale{
				Min: 1, Initial: 3, IntervalS: 0.002,
				Controller: &Script{Steps: []ScaleStep{{AtS: 0.002, Chips: 2}}},
			},
			Attrib: true,
		}
		out, err := Run(cfg, reqs)
		if err != nil {
			t.Fatal(err)
		}
		checkConservation(t, cfg, reqs, out)
	}
}

// TestDrainRacesFlashCrowd scales down into the face of a flash crowd:
// the script drains at t=2ms, the crowd lands at t=2.5ms, and the script
// books the fleet back out at t=4ms — exercising slot re-boot after
// retirement and routing around a still-draining slot.
func TestDrainRacesFlashCrowd(t *testing.T) {
	sys := spatialSystem(t)
	reqs := burstReqs(600, 100, 5, 17, 0.0025, 0.0025, 3000)
	tr := &sim.Trace{}
	cfg := Config{
		System: sys, Chips: 4, Policy: "least-work",
		BatchWindow: 2e-4, MaxBatch: 8,
		Scale: &Autoscale{
			Min: 1, Initial: 4, BootS: 0.001, IntervalS: 0.002,
			Controller: &Script{Steps: []ScaleStep{
				{AtS: 0.002, Chips: 2},
				{AtS: 0.004, Chips: 4},
			}},
		},
		Trace: tr,
	}
	out, err := Run(cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	checkConservation(t, cfg, reqs, out)
	ups := 0
	for _, e := range tr.Events {
		if e.Kind == sim.EvScaleUp {
			ups++
		}
	}
	if ups == 0 {
		t.Fatal("flash crowd never scaled the fleet back up")
	}
	if err := out.Fleet.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestScaleDownRacesRandomized is the seeded fuzz of the tentpole's race
// matrix: random drains and re-boots (scripted) against random permanent
// and transient faults, with chips departing mid-run both gracefully and
// by death. The only assertion is the one that matters: conservation
// holds bit-exactly and no request ID is lost or double-served.
func TestScaleDownRacesRandomized(t *testing.T) {
	sys := spatialSystem(t)
	trials := 12
	if testing.Short() {
		trials = 4
	}
	for trial := 0; trial < trials; trial++ {
		seed := int64(1000 + trial)
		rng := rand.New(rand.NewSource(seed))
		chips := 2 + rng.Intn(4)
		reqs := burstReqs(200+rng.Intn(400), 50+50*float64(rng.Intn(4)), 5, seed,
			rng.Float64()*0.005, 0.005, 1500+rng.Intn(3000))
		var steps []ScaleStep
		at := 0.0
		for len(steps) < 4 {
			at += 0.001 + rng.Float64()*0.004
			steps = append(steps, ScaleStep{AtS: at, Chips: 1 + rng.Intn(chips)})
		}
		faults := make([]*fault.Schedule, chips)
		for i := range faults {
			switch rng.Intn(3) {
			case 0:
				faults[i] = deadChip(t, rng.Float64()*0.01)
			case 1:
				s, err := fault.Generate(16, 4, 3000, 0.02, 0.002, seed+int64(i))
				if err != nil {
					t.Fatal(err)
				}
				faults[i] = s
			default:
				faults[i] = &fault.Schedule{Units: 16, Pods: 4}
			}
		}
		tr := &sim.Trace{}
		cfg := Config{
			System: sys, Chips: chips, Policy: "least-work",
			BatchWindow: 2e-4, MaxBatch: 8,
			Faults: faults,
			Scale: &Autoscale{
				Min: 1, Initial: 1 + rng.Intn(chips),
				BootS: rng.Float64() * 0.002, IntervalS: 0.0005 + rng.Float64()*0.002,
				Controller: &Script{Steps: steps},
			},
			Trace: tr, Attrib: true,
		}
		out, err := Run(cfg, reqs)
		if err != nil {
			t.Fatalf("trial %d (seed %d): %v", trial, seed, err)
		}
		checkConservation(t, cfg, reqs, out)
		if t.Failed() {
			t.Fatalf("trial %d (seed %d) violated conservation", trial, seed)
		}
	}
}

// TestDrainAttribution checks the ledger story of a migrated request:
// its front record reopens in drain-migrate and re-closes as dispatched
// (or shed-drain), with spans that still telescope exactly.
func TestDrainAttribution(t *testing.T) {
	sys := spatialSystem(t)
	reqs := burstReqs(100, 40, 10, 21, 0.0, 0.01, 10000)
	cfg := Config{
		System: sys, Chips: 3, Policy: "least-work",
		Scale: &Autoscale{
			Min: 1, Initial: 3, IntervalS: 0.002,
			Controller: &Script{Steps: []ScaleStep{{AtS: 0.002, Chips: 2}}},
		},
		Attrib: true,
	}
	out, err := Run(cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if out.Migrated == 0 {
		t.Fatal("no migrations to attribute")
	}
	led := out.Attrib.Front
	sawDrainPhase := 0
	var buf []obs.PhaseSpan
	for i := range reqs {
		buf = led.Spans(i, buf[:0])
		for k, sp := range buf {
			if sp.Phase == obs.PhaseDrainMigrate {
				sawDrainPhase++
			}
			if k > 0 && sp.From != buf[k-1].To {
				t.Fatalf("request %d: span %d not contiguous", i, k)
			}
		}
	}
	if sawDrainPhase == 0 {
		t.Fatal("no drain-migrate phase spans recorded")
	}
}
