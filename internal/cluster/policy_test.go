package cluster

import (
	"fmt"
	"testing"

	"planaria/internal/workload"
)

func views(n int, unhealthy ...int) []ChipView {
	v := make([]ChipView, n)
	for i := range v {
		v[i] = ChipView{Index: i, Healthy: true}
	}
	for _, u := range unhealthy {
		v[u].Healthy = false
	}
	return v
}

func modelReq(model string) workload.Request {
	return workload.Request{ID: 1, Model: model, Priority: 5}
}

func TestNewBalancerNamesAndAliases(t *testing.T) {
	for name, want := range map[string]string{
		"round-robin": "round-robin", "rr": "round-robin",
		"least-work": "least-work", "lw": "least-work", "jsq": "least-work",
		"affinity": "affinity", "hash": "affinity",
	} {
		b, err := NewBalancer(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if b.Name() != want {
			t.Errorf("NewBalancer(%q).Name() = %q, want %q", name, b.Name(), want)
		}
	}
	if _, err := NewBalancer("bogus"); err == nil {
		t.Error("NewBalancer accepted an unknown policy")
	}
	if len(Policies()) != 3 {
		t.Errorf("Policies() = %v, want the three built-ins", Policies())
	}
}

func TestRoundRobinCyclesAndSkipsUnhealthy(t *testing.T) {
	b, _ := NewBalancer("round-robin")
	r := modelReq("m")
	var picks []int
	for i := 0; i < 6; i++ {
		picks = append(picks, b.Pick(r, 0, views(3)))
	}
	want := []int{0, 1, 2, 0, 1, 2}
	if fmt.Sprint(picks) != fmt.Sprint(want) {
		t.Errorf("healthy cycle = %v, want %v", picks, want)
	}
	b, _ = NewBalancer("round-robin")
	picks = picks[:0]
	for i := 0; i < 4; i++ {
		picks = append(picks, b.Pick(r, 0, views(3, 1)))
	}
	want = []int{0, 2, 0, 2}
	if fmt.Sprint(picks) != fmt.Sprint(want) {
		t.Errorf("cycle with chip 1 dead = %v, want %v", picks, want)
	}
	if got := b.Pick(r, 0, views(3, 0, 1, 2)); got != -1 {
		t.Errorf("all-dead pick = %d, want -1", got)
	}
}

func TestLeastWorkPicksMinAndBreaksTiesByIndex(t *testing.T) {
	b, _ := NewBalancer("least-work")
	r := modelReq("m")
	v := views(4)
	v[0].Outstanding = 3
	v[1].Outstanding = 1
	v[2].Outstanding = 1 // ties with 1: lower index wins
	v[3].Outstanding = 2
	if got := b.Pick(r, 0, v); got != 1 {
		t.Errorf("pick = %d, want 1 (least outstanding, lowest index on tie)", got)
	}
	// All-equal backlog: the tie breaks to chip 0.
	if got := b.Pick(r, 0, views(4)); got != 0 {
		t.Errorf("all-equal pick = %d, want 0", got)
	}
	// The minimum being unhealthy must not attract work.
	v[1].Healthy = false
	if got := b.Pick(r, 0, v); got != 2 {
		t.Errorf("pick with min dead = %d, want 2", got)
	}
	if got := b.Pick(r, 0, views(2, 0, 1)); got != -1 {
		t.Errorf("all-dead pick = %d, want -1", got)
	}
}

func TestAffinityStableAcrossRunsAndInstances(t *testing.T) {
	b1, _ := NewBalancer("affinity")
	b2, _ := NewBalancer("affinity")
	for i := 0; i < 40; i++ {
		model := fmt.Sprintf("model-%d", i)
		first := b1.Pick(modelReq(model), 0, views(5))
		for rep := 0; rep < 3; rep++ {
			if got := b1.Pick(modelReq(model), float64(rep), views(5)); got != first {
				t.Fatalf("%s: pick changed from %d to %d on repeat", model, first, got)
			}
			if got := b2.Pick(modelReq(model), 0, views(5)); got != first {
				t.Fatalf("%s: fresh balancer picked %d, want %d", model, got, first)
			}
		}
	}
}

func TestAffinitySpreadsModels(t *testing.T) {
	b, _ := NewBalancer("affinity")
	hit := map[int]int{}
	for i := 0; i < 64; i++ {
		hit[b.Pick(modelReq(fmt.Sprintf("model-%d", i)), 0, views(4))]++
	}
	for chip := 0; chip < 4; chip++ {
		if hit[chip] == 0 {
			t.Errorf("chip %d owns no models out of 64 (distribution %v)", chip, hit)
		}
	}
}

// TestAffinityRedistributesOnlyDeadChipsShare is the consistent-hashing
// property: killing one chip moves only the models that chip owned.
func TestAffinityRedistributesOnlyDeadChipsShare(t *testing.T) {
	b, _ := NewBalancer("affinity")
	const chips, models = 5, 100
	const dead = 2
	before := make([]int, models)
	for i := range before {
		before[i] = b.Pick(modelReq(fmt.Sprintf("model-%d", i)), 0, views(chips))
	}
	moved := 0
	for i := range before {
		after := b.Pick(modelReq(fmt.Sprintf("model-%d", i)), 0, views(chips, dead))
		if before[i] != dead {
			if after != before[i] {
				t.Errorf("model-%d moved %d -> %d though chip %d died", i, before[i], after, dead)
			}
			continue
		}
		moved++
		if after == dead || after < 0 {
			t.Errorf("model-%d still routed to dead chip (got %d)", i, after)
		}
	}
	if moved == 0 {
		t.Fatal("dead chip owned no models; test proves nothing")
	}
}
