package cluster

import (
	"fmt"
	"hash/fnv"

	"planaria/internal/workload"
)

// ChipView is the balancer's per-chip snapshot at a dispatch instant.
type ChipView struct {
	// Index is the chip's position in the cluster (stable for a run).
	Index int
	// Healthy reports whether the chip has at least one usable subarray
	// at the dispatch instant (per its fault schedule). The balancer must
	// not pick an unhealthy chip.
	Healthy bool
	// Outstanding is the chip's estimated backlog in seconds of isolated
	// execution time for everything already dispatched to it.
	Outstanding float64
	// Dispatched counts requests (batch leaders) sent to the chip so far.
	Dispatched int
}

// Balancer chooses a chip for each dispatch. Implementations must be
// deterministic: identical call sequences yield identical picks. Pick
// returns the chosen chip index, or -1 when no healthy chip exists (the
// front end sheds the request).
type Balancer interface {
	Name() string
	Pick(r workload.Request, now float64, view []ChipView) int
}

// Policies lists the built-in balancing policy names in canonical order.
func Policies() []string {
	return []string{"round-robin", "least-work", "affinity"}
}

// NewBalancer constructs a fresh balancer by name. Accepted names (and
// aliases): "round-robin" ("rr"), "least-work" ("lw", "jsq"),
// "affinity" ("hash").
//perf:cold once-per-run constructor; the per-request path is Pick
func NewBalancer(name string) (Balancer, error) {
	switch name {
	case "round-robin", "rr":
		return &roundRobin{}, nil
	case "least-work", "lw", "jsq":
		return leastWork{}, nil
	case "affinity", "hash":
		return affinity{}, nil
	default:
		return nil, fmt.Errorf("cluster: unknown policy %q (want round-robin, least-work, or affinity)", name)
	}
}

// roundRobin cycles through the chips, skipping unhealthy ones. The
// cursor advances past the chosen chip, so a dead chip costs one probe
// per dispatch but never receives work.
type roundRobin struct {
	next int
}

func (*roundRobin) Name() string { return "round-robin" }

func (b *roundRobin) Pick(_ workload.Request, _ float64, view []ChipView) int {
	n := len(view)
	for probe := 0; probe < n; probe++ {
		i := (b.next + probe) % n
		if view[i].Healthy {
			b.next = (i + 1) % n
			return i
		}
	}
	return -1
}

// leastWork is join-shortest-queue over the estimated backlog: the
// healthy chip with the least outstanding isolated work wins, ties
// broken by lowest chip index (determinism).
type leastWork struct{}

func (leastWork) Name() string { return "least-work" }

func (leastWork) Pick(_ workload.Request, _ float64, view []ChipView) int {
	best := -1
	for _, v := range view {
		if !v.Healthy {
			continue
		}
		if best < 0 || v.Outstanding < view[best].Outstanding {
			best = v.Index
		}
	}
	return best
}

// affinity pins each model to a chip via rendezvous (highest-random-
// weight) hashing over the model name: every chip scores
// hash(model, chip) and the highest-scoring healthy chip wins. The
// assignment is stable across runs (the hash has no seed or state), and
// when a chip dies only the models it owned move — every other model
// keeps its chip, the consistent-hashing property the model-affinity
// policy exists for (weight locality: a chip serves few distinct models,
// so its scratchpad keeps their weights resident).
type affinity struct{}

func (affinity) Name() string { return "affinity" }

// affinityScore is the rendezvous weight of (model, chip).
func affinityScore(model string, chip int) uint64 {
	h := fnv.New64a()
	h.Write([]byte(model))
	h.Write([]byte{'|', byte(chip), byte(chip >> 8), byte(chip >> 16), byte(chip >> 24)})
	return h.Sum64()
}

func (affinity) Pick(r workload.Request, _ float64, view []ChipView) int {
	best := -1
	var bestScore uint64
	for _, v := range view {
		if !v.Healthy {
			continue
		}
		// Strict > keeps the lowest index on a (vanishingly unlikely)
		// score tie: views iterate in index order.
		s := affinityScore(r.Model, v.Index)
		if best < 0 || s > bestScore {
			best, bestScore = v.Index, s
		}
	}
	return best
}
