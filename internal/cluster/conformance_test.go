package cluster

import (
	"fmt"
	"strings"
	"testing"

	"planaria/internal/metrics"
	"planaria/internal/obs"
	"planaria/internal/sim"
	"planaria/internal/workload"
)

// renderOutcome renders a cluster outcome with hex floats, so equality
// means bit-identical numbers, not close ones.
func renderOutcome(out *Outcome) string {
	var b strings.Builder
	for i := range out.Finishes {
		fmt.Fprintf(&b, "%d fin=%x lat=%x\n", i, out.Finishes[i], out.Latency[i])
	}
	fmt.Fprintf(&b, "completed=%d shedFront=%d shedChips=%d rejected=%d killed=%d retries=%d faults=%d\n",
		out.Completed, out.ShedFront, out.ShedChips, out.Rejected, out.Killed, out.Retries, out.FaultEvents)
	fmt.Fprintf(&b, "batches=%d batched=%d mean=%x dispatched=%v\n",
		out.Batches, out.BatchedReqs, out.MeanBatchSize, out.Dispatched)
	fmt.Fprintf(&b, "energy=%x makespan=%x sla=%v frac=%x\n",
		out.EnergyJ, out.Makespan, out.MeetsSLA, out.DeadlineFrac)
	return b.String()
}

// renderNodeOutcome renders a chip-level outcome the same way.
func renderNodeOutcome(out *sim.Outcome) string {
	var b strings.Builder
	for i := range out.Finishes {
		fmt.Fprintf(&b, "%d fin=%x lat=%x\n", i, out.Finishes[i], out.Latency[i])
	}
	fmt.Fprintf(&b, "energy=%x makespan=%x busy=%x fair=%x preempt=%d sla=%v\n",
		out.EnergyJ, out.Makespan, out.BusyTime, out.Fairness, out.Preemptions, out.MeetsSLA)
	fmt.Fprintf(&b, "killed=%d retries=%d shed=%d rejected=%d faults=%d\n",
		out.Killed, out.Retries, out.Shed, out.Rejected, out.FaultEvents)
	return b.String()
}

// directArtifacts runs the request stream straight through sim.Node.Run
// with a fresh observer and trace, mirroring what a 1-chip cluster sets
// up, and renders every artifact.
func directArtifacts(t *testing.T, sys metrics.System, shed sim.ShedPolicy, reqs []workload.Request) string {
	t.Helper()
	o := obs.New()
	pol := sys.NewPolicy()
	if ob, ok := pol.(obs.Observable); ok {
		ob.SetObserver(o)
	}
	tr := &sim.Trace{}
	node := &sim.Node{
		Cfg: sys.Cfg, Policy: pol, Programs: sys.Programs, Params: sys.Params,
		Trace: tr, Obs: o, Shed: shed,
	}
	out, err := node.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}
	return renderArtifacts(t, out, tr, o)
}

// clusterArtifacts runs the same stream through a 1-chip cluster with
// batching and admission disabled and renders the chip's artifacts.
func clusterArtifacts(t *testing.T, sys metrics.System, policy string, shed sim.ShedPolicy, reqs []workload.Request) (string, *Outcome) {
	t.Helper()
	out, err := Run(Config{
		System: sys, Chips: 1, Policy: policy, Shed: shed,
		Observe: true, ChipTraces: true,
	}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	chip := out.PerChip[0]
	return renderArtifacts(t, chip.Outcome, chip.Trace, chip.Obs), out
}

// renderArtifacts concatenates the three chip artifacts: hex outcome,
// trace timeline, metrics snapshot, and Perfetto timeline JSON.
func renderArtifacts(t *testing.T, out *sim.Outcome, tr *sim.Trace, o *obs.Observer) string {
	t.Helper()
	snap, err := o.Registry().Snapshot().JSON()
	if err != nil {
		t.Fatal(err)
	}
	return renderNodeOutcome(out) +
		"--- trace\n" + tr.String() +
		"--- metrics\n" + string(snap) +
		"\n--- timeline\n" + string(o.Tracer().JSON())
}

// TestSingleChipConformance pins the pass-through identity: a 1-chip
// cluster with batching and admission disabled produces byte-identical
// outcome, trace, and metrics artifacts to calling sim.Node.Run
// directly — under both engines and with shedding on and off. Each side
// runs twice, so the test also pins run-to-run determinism.
func TestSingleChipConformance(t *testing.T) {
	systems := []metrics.System{spatialSystem(t), premaSystem(t)}
	sheds := []sim.ShedPolicy{sim.ShedNone, sim.ShedDoomed}
	for _, sys := range systems {
		for _, shed := range sheds {
			name := fmt.Sprintf("%s/%s", sys.Name, shed)
			t.Run(name, func(t *testing.T) {
				// Tight-but-mixed deadlines so some requests shed under
				// ShedDoomed and the artifact exercises that path too.
				reqs := genReqs(50, 900, 0.05, 42)
				direct1 := directArtifacts(t, sys, shed, reqs)
				direct2 := directArtifacts(t, sys, shed, reqs)
				if direct1 != direct2 {
					t.Fatalf("direct node run is not deterministic")
				}
				for _, policy := range Policies() {
					got1, out1 := clusterArtifacts(t, sys, policy, shed, reqs)
					got2, _ := clusterArtifacts(t, sys, policy, shed, reqs)
					if got1 != got2 {
						t.Fatalf("%s: 1-chip cluster run is not deterministic", policy)
					}
					if got1 != direct1 {
						t.Errorf("%s: 1-chip cluster artifacts differ from direct sim.Node.Run\n--- cluster\n%.2000s\n--- direct\n%.2000s",
							policy, got1, direct1)
					}
					// Cluster-level view agrees with the chip view.
					for i := range reqs {
						chipFin := out1.PerChip[0].Outcome.Finishes[i]
						if out1.Finishes[i] != chipFin {
							t.Fatalf("%s: cluster finish[%d]=%x, chip %x", policy, i, out1.Finishes[i], chipFin)
						}
					}
				}
			})
		}
	}
}

// TestConformanceRequestsUntouched pins that the pass-through path hands
// the chip the exact request structs it was given.
func TestConformanceRequestsUntouched(t *testing.T) {
	sys := spatialSystem(t)
	reqs := genReqs(20, 500, 1, 7)
	out, err := Run(Config{System: sys, Chips: 1}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	chip := out.PerChip[0]
	if len(chip.Requests) != len(reqs) {
		t.Fatalf("chip got %d requests, want %d", len(chip.Requests), len(reqs))
	}
	for i := range reqs {
		if chip.Requests[i] != reqs[i] {
			t.Errorf("request %d mutated on the pass-through path:\n got %+v\nwant %+v", i, chip.Requests[i], reqs[i])
		}
	}
}
