package cluster

import (
	"fmt"
	"math"
	"sort"

	"planaria/internal/obs"
)

// Autoscaling (DESIGN.md §15): with Config.Scale set, the cluster's chip
// slots stop being a fixed fleet. Slots join with a simulated boot
// latency and leave via *graceful drain* — a draining slot stops
// admitting new work, its not-yet-started dispatch groups migrate to the
// least-loaded routable chip (or shed, as ShedDrain, when none remains),
// and the slot retires once its in-flight work is estimated done. A
// pluggable ScaleController reads the admission-queue pressure signal at
// a fixed control period and decides the desired fleet size; the default
// controller grows proportionally to backlog (flash crowds get multi-chip
// jumps in one tick) and shrinks one chip at a time after a hold-down.
//
// Everything runs on the same simulated clock as dispatch itself —
// control ticks interleave deterministically with the admit walk — so an
// autoscaled run at a fixed seed stays byte-reproducible, and the
// conservation invariant extends by exactly one term:
// Completed + ShedFront + ShedChips + Rejected + ShedDrain == arrivals.

// Autoscale configures the cluster autoscaler. Config.Chips becomes the
// fleet ceiling (the number of chip slots that exist); the controller
// moves the *active* count within [Min, Chips].
type Autoscale struct {
	// Min is the floor on active chips (default 1).
	Min int
	// Initial is the number of slots ready at t = 0 (default Min).
	Initial int
	// BootS is the boot latency in simulated seconds: a slot booted at t
	// becomes routable at t + BootS.
	BootS float64
	// IntervalS is the control period in simulated seconds (required).
	IntervalS float64
	// Controller decides the desired fleet size each tick; nil means a
	// default-tuned Hysteresis controller.
	Controller ScaleController
}

// withDefaults resolves the zero-value conveniences.
//
//perf:cold per-run configuration resolution, before the serving loop
func (a *Autoscale) withDefaults() Autoscale {
	out := *a
	if out.Min == 0 {
		out.Min = 1
	}
	if out.Initial == 0 {
		out.Initial = out.Min
	}
	if out.Controller == nil {
		out.Controller = &Hysteresis{}
	}
	return out
}

// validate checks the autoscale knobs against the fleet ceiling.
func (a *Autoscale) validate(chips int) error {
	r := a.withDefaults()
	if r.Min < 1 || r.Min > chips {
		return fmt.Errorf("cluster: autoscale Min %d outside [1, %d]", r.Min, chips)
	}
	if r.Initial < r.Min || r.Initial > chips {
		return fmt.Errorf("cluster: autoscale Initial %d outside [Min %d, %d]", r.Initial, r.Min, chips)
	}
	if math.IsNaN(a.BootS) || math.IsInf(a.BootS, 0) || a.BootS < 0 {
		return fmt.Errorf("cluster: autoscale BootS %v", a.BootS)
	}
	if !(a.IntervalS > 0) || math.IsInf(a.IntervalS, 0) {
		return fmt.Errorf("cluster: autoscale needs a positive control interval, got %v", a.IntervalS)
	}
	return nil
}

// ScaleSignal is the pressure snapshot a controller reads each tick.
type ScaleSignal struct {
	// Time is the tick instant (simulated seconds).
	Time float64
	// Active counts routable slots (ready, not draining); Booting counts
	// slots still paying their boot latency; Draining counts slots
	// finishing in-flight work.
	Active, Booting, Draining int
	// BacklogS sums the routable chips' outstanding estimated work in
	// seconds — the same estimate the least-work balancer routes on.
	BacklogS float64
	// MaxWaitS is the worst token-bucket admission delay (admit instant −
	// arrival) observed since the previous tick: the front door's debt.
	MaxWaitS float64
	// Arrivals counts admits processed since the previous tick.
	Arrivals int
}

// ScaleController decides the desired fleet size from the pressure
// signal. Desired is called exactly once per control tick, in simulated
// time order, so stateful controllers (hold-down counters, scripted
// schedules) stay deterministic.
type ScaleController interface {
	Name() string
	// Desired returns the wanted slot count; the autoscaler clamps it to
	// [Min, Chips] and to what boot/drain mechanics allow.
	Desired(s ScaleSignal) int
}

// Hysteresis is the default controller: scale up fast, scale down slow.
// Upward it is proportional — desired = ceil(backlog / TargetS) — so a
// flash crowd that multiplies the backlog books several chips in a
// single tick rather than one per tick; an admission-debt trip wire
// (MaxWaitS > DebtS) forces at least one extra chip even while backlog
// estimates lag. Downward it waits HoldTicks consecutive calm ticks and
// then releases one chip, so a transient lull inside a crowd cannot
// trigger a drain that the next spike regrets.
type Hysteresis struct {
	// TargetS is the per-fleet backlog the controller sizes for, in
	// seconds of estimated work per chip (default 0.25).
	TargetS float64
	// DebtS is the admission-wait trip wire in seconds (default 0.05).
	DebtS float64
	// HoldTicks is the calm-tick count before shrinking by one
	// (default 3).
	HoldTicks int

	calm int
}

// Name names the controller in artifacts.
func (h *Hysteresis) Name() string { return "hysteresis" }

// Desired implements ScaleController.
func (h *Hysteresis) Desired(s ScaleSignal) int {
	target := h.TargetS
	if target <= 0 {
		target = 0.25
	}
	debt := h.DebtS
	if debt <= 0 {
		debt = 0.05
	}
	hold := h.HoldTicks
	if hold <= 0 {
		hold = 3
	}
	want := int(math.Ceil(s.BacklogS / target))
	if want < 1 {
		want = 1
	}
	effective := s.Active + s.Booting
	if s.MaxWaitS > debt && want <= effective {
		want = effective + 1
	}
	if want >= effective {
		if want > effective {
			h.calm = 0
		}
		return want
	}
	h.calm++
	if h.calm >= hold {
		h.calm = 0
		return effective - 1
	}
	return effective
}

// ScaleStep is one step of a scripted fleet-size schedule.
type ScaleStep struct {
	AtS   float64
	Chips int
}

// Script is a deterministic controller that replays an explicit desired
// fleet-size schedule — the race-hardening tests use it to force drains
// at exact instants (against faults, flash crowds, and chip death), and
// it doubles as a way to replay a recorded scaling plan.
type Script struct {
	// Steps must be sorted by AtS; the desired size at time t is the last
	// step with AtS <= t (Initial applies before the first step).
	Steps []ScaleStep
}

// Name names the controller in artifacts.
func (s *Script) Name() string { return "script" }

// Desired implements ScaleController.
func (s *Script) Desired(sig ScaleSignal) int {
	idx := sort.Search(len(s.Steps), func(i int) bool { return s.Steps[i].AtS > sig.Time })
	if idx == 0 {
		return sig.Active + sig.Booting
	}
	return s.Steps[idx-1].Chips
}

// slotState is a chip slot's lifecycle position.
type slotState uint8

const (
	slotOff slotState = iota
	slotBooting
	slotReady
	slotDraining
)

// chipSlot is one slot's autoscaler-side record.
type chipSlot struct {
	state   slotState
	readyAt float64 // boot completion instant (valid in slotBooting/slotReady)
	// retireAt is the estimated in-flight completion of the last drain;
	// the slot can be re-booted only at t >= retireAt.
	retireAt float64
	// pend holds indices into the run's dispatch-record slice for groups
	// routed here and not yet estimated finished, in dispatch order
	// (estimated start and end both monotone). Pruned from the front.
	pend []int32
}

// autoscaler is the per-run fleet state machine. It lives entirely
// inside cluster.Run's single-goroutine front-end walk; Run consults
// routable() on every dispatch and calls tick() at each control instant.
type autoscaler struct {
	cfg   Autoscale
	chips int
	slots []chipSlot
	fleet *obs.Fleet

	nextTick float64
	debtMax  float64 // worst admission wait since the previous tick
	arrivals int     // admits since the previous tick

	// scale-event counters (registered only on scaled runs).
	cUp, cDown, cDrains, cMigrated, cDrainShed *obs.Counter
}

// newAutoscaler builds the run's fleet state: slots 0..Initial-1 ready
// at t = 0, the rest off.
//
//perf:cold per-run setup, before the serving loop
func newAutoscaler(cfg *Autoscale, chips int, reg *obs.Registry) *autoscaler {
	r := cfg.withDefaults()
	a := &autoscaler{
		cfg:        r,
		chips:      chips,
		slots:      make([]chipSlot, chips),
		fleet:      obs.NewFleet(chips),
		nextTick:   r.IntervalS,
		cUp:        reg.Counter("cluster_scale_up_total"),
		cDown:      reg.Counter("cluster_scale_down_total"),
		cDrains:    reg.Counter("cluster_drains_total"),
		cMigrated:  reg.Counter("cluster_migrated_total"),
		cDrainShed: reg.Counter("cluster_drain_shed_total"),
	}
	for i := 0; i < r.Initial; i++ {
		a.slots[i].state = slotReady
		a.fleet.Note(0, i, obs.FleetBoot)
		a.fleet.Note(0, i, obs.FleetReady)
	}
	return a
}

// routable reports whether slot i may receive new work at instant t.
// Health masking stays the balancer's separate concern.
func (a *autoscaler) routable(i int, t float64) bool {
	s := &a.slots[i]
	switch s.state {
	case slotReady:
		return true
	case slotBooting:
		if t >= s.readyAt {
			s.state = slotReady
			return true
		}
	}
	return false
}

// counts tallies the fleet states at instant t (promoting finished
// boots, so Active reflects instant t exactly).
func (a *autoscaler) counts(t float64) (active, booting, draining int) {
	for i := range a.slots {
		s := &a.slots[i]
		switch s.state {
		case slotBooting:
			if t >= s.readyAt {
				s.state = slotReady
				active++
			} else {
				booting++
			}
		case slotReady:
			active++
		case slotDraining:
			if t >= s.retireAt {
				s.state = slotOff
			} else {
				draining++
			}
		}
	}
	return
}

// noteWait feeds one admission wait into the debt signal.
func (a *autoscaler) noteWait(w float64) {
	if w > a.debtMax {
		a.debtMax = w
	}
	a.arrivals++
}

// bootOne powers on the lowest-index available slot at instant t,
// returning the slot index or -1 when every slot is active, booting,
// draining, or still finishing a previous drain.
func (a *autoscaler) bootOne(t float64) int {
	for i := range a.slots {
		s := &a.slots[i]
		if s.state == slotOff && t >= s.retireAt {
			s.state = slotBooting
			s.readyAt = t + a.cfg.BootS
			a.fleet.Note(t, i, obs.FleetBoot)
			a.fleet.Note(s.readyAt, i, obs.FleetReady)
			a.cUp.Inc()
			return i
		}
	}
	return -1
}

// drainCandidate picks the active slot with the least outstanding
// estimated work at instant t (ties to the highest index, so the newest
// spare retires first), or -1 when none is active.
func (a *autoscaler) drainCandidate(t float64, busyUntil []float64) int {
	best, bestOut := -1, 0.0
	for i := range a.slots {
		if a.slots[i].state != slotReady {
			continue
		}
		out := busyUntil[i] - t
		if out < 0 {
			out = 0
		}
		if best < 0 || out <= bestOut {
			best, bestOut = i, out
		}
	}
	return best
}
