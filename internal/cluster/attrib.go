package cluster

import (
	"fmt"

	"planaria/internal/obs"
	"planaria/internal/simtime"
	"planaria/internal/workload"
)

// Attribution joins the two halves of each request's phase timeline
// (DESIGN.md §14): the front-door ledger covers [arrival, dispatch]
// (admit-wait, batch-wait), and for dispatched requests the linked chip
// ledger continues bit-exactly from the same instant through the chip's
// phases (queue-wait, compute, preempt-stall, retry-backoff,
// fault-stall) to the terminal event. Batch members share one chip
// record, so each member's chip-side phases are the batch's.
type Attribution struct {
	// Front is the front-door ledger, indexed like the input stream.
	// Every record is closed: shed/rejected requests terminally, and
	// dispatched requests with CauseDispatched.
	Front *obs.Ledger
	// Chip[i] is the chip that served request i (-1 if never
	// dispatched); Pos[i] is the record position within that chip's
	// ledger.
	Chip []int32
	Pos  []int32
}

// ChipLedger returns the chip-side ledger record address for request i,
// or ok=false when the request never reached a chip.
func (a *Attribution) ChipLedger(o *Outcome, i int) (led *obs.Ledger, pos int, ok bool) {
	if a == nil || i < 0 || i >= len(a.Chip) || a.Chip[i] < 0 {
		return nil, 0, false
	}
	cr := o.PerChip[a.Chip[i]]
	if cr == nil || cr.Attrib == nil {
		return nil, 0, false
	}
	return cr.Attrib, int(a.Pos[i]), true
}

// Durations accumulates request i's full per-phase timeline (front +
// chip halves) into dur and returns its terminal cause. ok is false when
// attribution was off or the record is somehow still open.
func (a *Attribution) Durations(o *Outcome, i int, dur *[obs.NumPhases]float64) (obs.Cause, bool) {
	if a == nil || !a.Front.Durations(i, dur) {
		return obs.CauseOpen, false
	}
	cause := a.Front.Cause(i)
	if cause != obs.CauseDispatched {
		return cause, true
	}
	led, pos, ok := a.ChipLedger(o, i)
	if !ok || !led.Durations(pos, dur) {
		return obs.CauseOpen, false
	}
	return led.Cause(pos), true
}

// AttribReport folds the run's attribution into the per-model × per-QoS
// violation breakdown plus the fleet utilization table. reqs must be the
// same slice Run served. Returns an error when the run was executed
// without Config.Attrib.
func (o *Outcome) AttribReport(reqs []workload.Request) (*obs.AttribReport, error) {
	a := o.Attrib
	if a == nil {
		return nil, fmt.Errorf("cluster: run executed without Config.Attrib")
	}
	if len(reqs) != len(o.Finishes) {
		return nil, fmt.Errorf("cluster: %d requests for %d outcome slots", len(reqs), len(o.Finishes))
	}
	b := obs.NewAttribBuilder()
	for i := range reqs {
		var dur [obs.NumPhases]float64
		cause, ok := a.Durations(o, i, &dur)
		if !ok {
			return nil, fmt.Errorf("cluster: request %d has no closed attribution record", i)
		}
		fin := o.Finishes[i]
		violated := fin < 0 || simtime.After(fin, reqs[i].Deadline)
		b.Add(reqs[i].Model, reqs[i].Level, &dur, cause, violated)
	}
	occs := make([]*obs.Occupancy, 0, len(o.PerChip))
	for _, cr := range o.PerChip {
		if cr != nil && cr.Occ != nil {
			occs = append(occs, cr.Occ)
		}
	}
	return b.Report(occs), nil
}
