package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one parsed and type-checked package ready for analysis.
type Package struct {
	// Path is the import path ("planaria/internal/sched").
	Path string
	// Dir is the package directory on disk.
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	// hot memoizes the single-package //perf:hot closure for Run.
	hot *HotSet
}

// hotSet returns the package-local hot closure, computed once.
func (p *Package) hotSet() *HotSet {
	if p.hot == nil {
		p.hot = ComputeHot([]*Package{p})
	}
	return p.hot
}

// A Loader parses and type-checks packages of the enclosing module
// without external tooling: module-local imports resolve from the
// repository tree, everything else through the stdlib source importer
// (go/importer "source"), so loading works offline. Results are memoized
// per import path. A Loader is not safe for concurrent use.
type Loader struct {
	fset   *token.FileSet
	root   string // module root directory
	module string // module path from go.mod
	std    types.ImporterFrom
	pkgs   map[string]*Package // memo, keyed by import path
	loadin map[string]bool     // cycle guard
}

// NewLoader returns a loader rooted at the module containing dir.
func NewLoader(dir string) (*Loader, error) {
	root, module, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	std, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("analysis: source importer does not implement ImporterFrom")
	}
	return &Loader{
		fset:   fset,
		root:   root,
		module: module,
		std:    std,
		pkgs:   map[string]*Package{},
		loadin: map[string]bool{},
	}, nil
}

// Root returns the module root directory.
func (l *Loader) Root() string { return l.root }

// findModule walks up from dir to the nearest go.mod and returns the
// module root and module path.
func findModule(dir string) (root, module string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; d = filepath.Dir(d) {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module"); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("analysis: %s/go.mod has no module directive", d)
		}
		if filepath.Dir(d) == d {
			return "", "", fmt.Errorf("analysis: no go.mod above %s", abs)
		}
	}
}

// LoadDir loads the package in dir (non-test files only).
func (l *Loader) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(l.root, abs)
	if err != nil {
		return nil, fmt.Errorf("analysis: %s is outside module %s: %v", dir, l.root, err)
	}
	path := l.module
	if rel != "." {
		path = l.module + "/" + filepath.ToSlash(rel)
	}
	return l.load(path, abs)
}

// load parses and type-checks the package at dir under the given import
// path, memoized.
func (l *Loader) load(path, dir string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.loadin[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	l.loadin[path] = true
	defer delete(l.loadin, path)

	names, err := goFiles(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: importerFunc{l}}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %v", path, err)
	}
	p := &Package{Path: path, Dir: dir, Fset: l.fset, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = p
	return p, nil
}

// goFiles lists buildable non-test Go files in dir, sorted.
func goFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// importerFunc adapts the Loader to types.Importer, routing module-local
// paths to the repository tree and the rest to the source importer.
type importerFunc struct{ l *Loader }

func (f importerFunc) Import(path string) (*types.Package, error) {
	l := f.l
	if path == l.module || strings.HasPrefix(path, l.module+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.module), "/")
		p, err := l.load(path, filepath.Join(l.root, filepath.FromSlash(rel)))
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.ImportFrom(path, l.root, 0)
}

// PackageDirs expands package patterns relative to dir: "p/..." walks the
// tree under p; anything else names a single directory. Directories named
// testdata (and their subtrees), hidden directories, and directories
// without non-test Go files are skipped.
func PackageDirs(dir string, patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(d string) error {
		abs, err := filepath.Abs(d)
		if err != nil {
			return err
		}
		names, err := goFiles(abs)
		if err != nil || len(names) == 0 {
			return nil // not a buildable package dir; skip silently
		}
		if !seen[abs] {
			seen[abs] = true
			dirs = append(dirs, abs)
		}
		return nil
	}
	for _, pat := range patterns {
		base, walk := pat, false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			base, walk = rest, true
			if base == "" || base == "." {
				base = dir
			}
		}
		if !filepath.IsAbs(base) {
			base = filepath.Join(dir, base)
		}
		if !walk {
			if err := add(base); err != nil {
				return nil, err
			}
			continue
		}
		err := filepath.WalkDir(base, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != base && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return add(p)
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}
