package analysis

import (
	"go/ast"
	"go/types"
)

// MapOrder flags `for range` over a map in the deterministic packages.
// Go randomizes map iteration order per run, so any map-ordered loop
// whose effect is order-sensitive (appending to output, picking a
// winner, accumulating floats, returning the first error) silently
// breaks run-to-run reproducibility of cycle counts and metrics.
//
// Two escapes are recognized:
//
//   - the canonical sorted-keys preamble — a loop whose body is exactly
//     `keys = append(keys, k)`, collecting the keys for a subsequent
//     sort — is allowed;
//   - a `//det:mapiter-ok <reason>` annotation on the loop (same line or
//     the line above) exempts a provably order-insensitive loop; the
//     reason is mandatory.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc: "flags map iteration in deterministic packages unless keys are sorted first " +
		"or the loop is annotated //det:mapiter-ok <reason>",
	Run: runMapOrder,
}

func runMapOrder(pass *Pass) error {
	if !DeterministicPackages[pass.Pkg.Name()] {
		return nil
	}
	for _, f := range pass.Files {
		ann := annotationsFor(pass.Fset, f, "mapiter")
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok || !pass.isMapType(rs.X) {
				return true
			}
			if pass.exempt(ann, rs, "mapiter") {
				return true
			}
			if isKeyCollection(rs) {
				return true
			}
			pass.Reportf(rs.Pos(),
				"range over map %s in deterministic package %q: iterate sorted keys, or annotate //det:mapiter-ok <reason> if provably order-insensitive",
				types.ExprString(rs.X), pass.Pkg.Name())
			return true
		})
	}
	return nil
}

// isKeyCollection recognizes the sanctioned preamble of the sorted-keys
// pattern: a map-range whose entire body appends the range key to a
// slice (`keys = append(keys, k)`), which is then sorted before use.
func isKeyCollection(rs *ast.RangeStmt) bool {
	key, ok := rs.Key.(*ast.Ident)
	if !ok || key.Name == "_" || rs.Value != nil {
		return false
	}
	if len(rs.Body.List) != 1 {
		return false
	}
	as, ok := rs.Body.List[0].(*ast.AssignStmt)
	if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return false
	}
	dst, ok := as.Lhs[0].(*ast.Ident)
	if !ok {
		return false
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) != 2 || call.Ellipsis.IsValid() {
		return false
	}
	fn, ok := call.Fun.(*ast.Ident)
	if !ok || fn.Name != "append" {
		return false
	}
	arg0, ok := call.Args[0].(*ast.Ident)
	if !ok || arg0.Name != dst.Name {
		return false
	}
	arg1, ok := call.Args[1].(*ast.Ident)
	return ok && arg1.Name == key.Name
}
