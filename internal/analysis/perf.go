package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// This file holds the shared machinery of the performance-contract
// analyzers (hotalloc, poolcheck, obsguard; DESIGN.md §13): the
// //perf:<marker> annotation family, observability-guard recognition,
// and the cold-region (guarded probe blocks, error exits) classifier
// that both the call-graph walker and the per-construct checks use.

// perfMarkers enumerates the valid //perf: annotation markers.
//
//	//perf:hot <reason>        — on a func decl: the function is a hot
//	                             root; hotness propagates to module-local
//	                             callees (see callgraph.go).
//	//perf:cold <reason>       — on a func decl: stop propagation here;
//	                             the function runs off the steady state
//	                             (constructors, per-run setup).
//	//perf:alloc-ok <reason>   — exempts one statement from hotalloc.
//	//perf:pool-ok <reason>    — exempts one Get site from poolcheck.
//	//perf:obsguard-ok <reason> — exempts one probe call from obsguard.
//
// Reasons are mandatory, exactly like the //det:*-ok family.
var perfMarkers = map[string]bool{
	"hot":         true,
	"cold":        true,
	"alloc-ok":    true,
	"pool-ok":     true,
	"obsguard-ok": true,
}

// perfAnn is one parsed //perf: comment.
type perfAnn struct {
	Marker string
	Reason string
	Line   int
	Pos    token.Pos
}

// perfAnnotationsFor collects every //perf: comment in the file, valid
// or not — perfannot validates them, the other analyzers consume the
// well-formed ones.
func perfAnnotationsFor(fset *token.FileSet, file *ast.File) []perfAnn {
	var out []perfAnn
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			rest, ok := strings.CutPrefix(c.Text, "//perf:")
			if !ok {
				continue
			}
			marker := rest
			reason := ""
			if i := strings.IndexAny(rest, " \t"); i >= 0 {
				marker, reason = rest[:i], strings.TrimSpace(rest[i:])
			}
			out = append(out, perfAnn{
				Marker: marker,
				Reason: reason,
				Line:   fset.Position(c.Pos()).Line,
				Pos:    c.Pos(),
			})
		}
	}
	return out
}

// perfByLine filters the file's annotations down to one marker, in the
// same line-keyed shape the //det: machinery uses.
func perfByLine(anns []perfAnn, marker string) annotations {
	a := annotations{byLine: map[int]string{}}
	for _, ann := range anns {
		if ann.Marker == marker {
			a.byLine[ann.Line] = ann.Reason
		}
	}
	return a
}

// exemptPerf reports whether node carries a //perf:<marker> annotation on
// its line or the line above; an annotation without a reason is itself a
// finding, mirroring the //det:*-ok behavior.
func (p *Pass) exemptPerf(ann annotations, node ast.Node, marker string) bool {
	reason, ok := ann.at(p.Fset.Position(node.Pos()).Line)
	if !ok {
		return false
	}
	if reason == "" {
		p.Reportf(node.Pos(), "//perf:%s annotation requires a reason", marker)
	}
	return true
}

// perfFuncAnn returns the hot/cold annotation attached to a function
// declaration: a //perf:hot or //perf:cold line inside the decl's doc
// comment or on the line directly above the declaration.
func perfFuncAnn(fset *token.FileSet, anns []perfAnn, decl *ast.FuncDecl) (marker, reason string, ok bool) {
	declLine := fset.Position(decl.Pos()).Line
	lo := declLine - 1
	if decl.Doc != nil {
		if docLine := fset.Position(decl.Doc.Pos()).Line; docLine < lo {
			lo = docLine
		}
	}
	for _, ann := range anns {
		if ann.Marker != "hot" && ann.Marker != "cold" {
			continue
		}
		if ann.Line >= lo && ann.Line <= declLine {
			return ann.Marker, ann.Reason, true
		}
	}
	return "", "", false
}

// spanSet is a set of source intervals.
type spanSet struct {
	spans [][2]token.Pos
}

func (s *spanSet) add(lo, hi token.Pos) {
	s.spans = append(s.spans, [2]token.Pos{lo, hi})
}

// contains reports whether pos falls inside any recorded interval.
func (s *spanSet) contains(pos token.Pos) bool {
	for _, sp := range s.spans {
		if sp[0] <= pos && pos <= sp[1] {
			return true
		}
	}
	return false
}

// obsValueType reports whether t is (a pointer to) a named type belonging
// to the observability layer: any type from a package named "obs"
// (Registry, TraceBuilder, Counter, ...), or an engine-local trace sink
// named Trace or Observer (sim.Trace carries the event log; the fixtures
// mirror it with a local Trace).
func obsValueType(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if pkg := obj.Pkg(); pkg != nil && pkg.Name() == "obs" {
		return true
	}
	return obj.Name() == "Trace" || obj.Name() == "Observer"
}

// obsBoolGuards collects, in source order, the bool variables inside fn
// whose definition is an observability enablement check — the
// `tracing := n.Trace != nil` pattern PR 6 introduced so the guard costs
// one register test per probe instead of a load and compare.
func obsBoolGuards(info *types.Info, fn ast.Node) map[types.Object]bool {
	guards := map[types.Object]bool{}
	ast.Inspect(fn, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			if !obsGuardCond(info, guards, as.Rhs[i]) {
				continue
			}
			if obj := info.Defs[id]; obj != nil {
				guards[obj] = true
			} else if obj := info.Uses[id]; obj != nil {
				guards[obj] = true
			}
		}
		return true
	})
	return guards
}

// obsGuardCond reports whether cond is an observability enablement
// check: a nil comparison of an obs-typed value, a bool previously
// derived from one, a negation of either, or a conjunction/disjunction
// with at least one qualifying side (`tracer != nil && depth > 3`).
func obsGuardCond(info *types.Info, guards map[types.Object]bool, cond ast.Expr) bool {
	switch e := unparen(cond).(type) {
	case *ast.BinaryExpr:
		switch e.Op {
		case token.EQL, token.NEQ:
			lnil := info.Types[e.X].IsNil()
			rnil := info.Types[e.Y].IsNil()
			if lnil && !rnil {
				return obsValueType(info.TypeOf(e.Y))
			}
			if rnil && !lnil {
				return obsValueType(info.TypeOf(e.X))
			}
			return false
		case token.LAND, token.LOR:
			return obsGuardCond(info, guards, e.X) || obsGuardCond(info, guards, e.Y)
		}
	case *ast.UnaryExpr:
		if e.Op == token.NOT {
			return obsGuardCond(info, guards, e.X)
		}
	case *ast.Ident:
		if obj := info.Uses[e]; obj != nil && guards[obj] {
			return true
		}
	}
	return false
}

// errorExitBlock reports whether the statement list ends the enclosing
// block on an error path: a return whose final result is a non-nil
// error, or a panic. Allocations and probe calls on such paths are off
// the steady state and exempt from the performance checks.
func errorExitBlock(info *types.Info, list []ast.Stmt) bool {
	if len(list) == 0 {
		return false
	}
	switch last := list[len(list)-1].(type) {
	case *ast.ReturnStmt:
		if len(last.Results) == 0 {
			return false
		}
		res := last.Results[len(last.Results)-1]
		tv := info.Types[res]
		if tv.IsNil() {
			return false
		}
		if tv.Type == nil {
			return false
		}
		return types.AssignableTo(tv.Type, errorType)
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
					return true
				}
			}
		}
	}
	return false
}

var errorType = types.Universe.Lookup("error").Type()

// coldRegions returns the spans inside fn that the performance analyzers
// and the call-graph walker skip as off the hot steady state:
//
//   - bodies of observability guards (`if tracer != nil { ... }`,
//     `if tracing { ... }`) — work there only runs when tracing is on;
//   - nested blocks that exit on an error or a panic — failure paths
//     may format and allocate freely.
//
// The function's own top-level body never qualifies as an error exit
// (a tail `return g()` returning error would otherwise blanket-exempt
// the whole function).
func coldRegions(info *types.Info, body *ast.BlockStmt) spanSet {
	var spans spanSet
	if body == nil {
		return spans
	}
	guards := obsBoolGuards(info, body)
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.IfStmt:
			if obsGuardCond(info, guards, st.Cond) {
				spans.add(st.Body.Pos(), st.Body.End())
			}
		case *ast.BlockStmt:
			if st != body && errorExitBlock(info, st.List) {
				spans.add(st.Pos(), st.End())
			}
		case *ast.CaseClause:
			if errorExitBlock(info, st.Body) && len(st.Body) > 0 {
				spans.add(st.Body[0].Pos(), st.Body[len(st.Body)-1].End())
			}
		case *ast.CommClause:
			if errorExitBlock(info, st.Body) && len(st.Body) > 0 {
				spans.add(st.Body[0].Pos(), st.Body[len(st.Body)-1].End())
			}
		}
		return true
	})
	return spans
}

// unparen strips parentheses.
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// funcDeclObj resolves a function declaration to its *types.Func.
func funcDeclObj(info *types.Info, decl *ast.FuncDecl) *types.Func {
	fn, _ := info.Defs[decl.Name].(*types.Func)
	return fn
}
