// Package sim is a noclock fixture: wall-clock and global-RNG calls in a
// deterministic package must be flagged; seed-parameterized generators
// pass.
package sim

import (
	"math/rand"
	"time"
)

// WallClock reads the wall clock.
func WallClock() float64 {
	t := time.Now() // want `time\.Now in deterministic package "sim"`
	return float64(t.Unix())
}

// GlobalRand draws from the process-wide generator.
func GlobalRand() int {
	return rand.Intn(10) // want `global math/rand\.Intn`
}

// GlobalShuffle mutates via the process-wide generator.
func GlobalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `global math/rand\.Shuffle`
}

// Seeded is the sanctioned pattern: the seed arrives as a parameter.
func Seeded(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(10)
}

// Annotated is exempted with a reason (e.g. operational logging that
// never feeds simulated state).
func Annotated() int64 {
	//det:clock-ok wall time is only logged, never simulated
	return time.Now().UnixNano()
}

// Elapsed uses non-Now time helpers, which are fine.
func Elapsed(d time.Duration) float64 {
	return d.Seconds()
}
