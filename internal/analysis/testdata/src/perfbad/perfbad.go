// Package perfbad holds malformed //perf: annotations: the perfannot
// self-check must flag every one, because a malformed annotation
// silently weakens the other analyzers. The block comments carry the
// expectations so they don't become part of the annotation under test.
package perfbad

//perf:warm fixture: misspelled marker // want `unknown //perf: marker "warm"`
func mislabeled() int { return 0 }

/* want `//perf:hot annotation requires a reason` */ //perf:hot
func reasonless() int { return 0 }

func misplaced() int {
	//perf:hot fixture: attached to a statement, not a declaration // want `//perf:hot must annotate a function declaration`
	x := 1
	return x
}

/* want `//perf:alloc-ok annotation requires a reason` */ //perf:alloc-ok
var fixtureTable = []int{1, 2, 3}

//perf:cold fixture: a well-formed annotation stays silent
func valid() []int { return fixtureTable }
