// Package hotalloc exercises the hotalloc analyzer: allocation
// constructs inside //perf:hot functions are findings; cold regions
// (tracer-guard bodies, error-exit blocks), reuse evidence, and
// //perf:alloc-ok exemptions are not.
package hotalloc

import "fmt"

type event struct {
	seq  int
	name string
}

func (e event) key() int { return e.seq }

type keyed interface{ key() int }

func lastKey(k keyed) int { return k.key() }

// Trace mirrors sim.Trace: a nil-guarded event sink whose guard bodies
// are cold regions.
type Trace struct{ events []event }

func (t *Trace) record(e event) { t.events = append(t.events, e) }

type node struct {
	trace *Trace
}

//perf:hot fixture steady state: escaping composites are findings
func escapes(n int) int {
	e := &event{seq: n} // want `composite literal escapes to the heap in hot function escapes`
	return e.seq
}

//perf:hot fixture steady state: slice and map literals allocate
func literals() int {
	xs := []int{1, 2, 3}        // want `slice literal allocates in hot function literals`
	m := map[string]int{"a": 1} // want `map literal allocates in hot function literals`
	return len(xs) + len(m)
}

//perf:hot fixture steady state: make in a loop allocates per event
func makeInLoop(n int) int {
	total := 0
	for i := 0; i < n; i++ {
		scratch := make([]int, 4) // want `make inside a loop allocates per iteration in hot function makeInLoop`
		total += len(scratch)
	}
	return total
}

//perf:hot fixture steady state: growing a bare local in a loop reallocates
func appendNoReuse(evts []event) int {
	var ids []int
	for _, e := range evts {
		ids = append(ids, e.seq) // want `append grows ids in a hot loop with no reuse evidence`
	}
	return len(ids)
}

//perf:hot fixture steady state: preallocated and caller-owned buffers may grow
func appendReuse(evts []event, out []int) []int {
	ids := make([]int, 0, len(evts))
	for _, e := range evts {
		ids = append(ids, e.seq)
		out = append(out, e.seq)
	}
	return out[:len(out)-len(ids)]
}

//perf:hot fixture steady state: string building allocates
func concat(a, b string) string {
	s := a + b // want `string concatenation allocates in hot function concat`
	s += a     // want `string \+= allocates in hot function concat`
	return s
}

//perf:hot fixture steady state: formatting is never free
func format(e event) string {
	return fmt.Sprintf("ev-%d", e.seq) // want `fmt\.Sprintf formats \(and allocates\) in hot function format`
}

//perf:hot fixture steady state: a concrete arg at an interface parameter boxes
func boxes(e event) int {
	return lastKey(e) // want `passing event as interface keyed boxes \(allocates\) in hot function boxes`
}

//perf:hot fixture steady state: pointer-shaped args fit the interface word
func noBox(e *event) int {
	return lastKey(e)
}

//perf:hot fixture steady state: guard bodies and error exits are cold
func guarded(n *node, e event) error {
	if n.trace != nil {
		n.trace.record(event{seq: e.seq, name: fmt.Sprintf("ev-%d", e.seq)})
	}
	if e.seq < 0 {
		return fmt.Errorf("bad seq %d", e.seq)
	}
	return nil
}

//perf:hot fixture steady state: explicit exemptions silence the analyzer
func exempt() []int {
	//perf:alloc-ok fixture: bounds table built once per run
	bounds := []int{1, 2, 4}
	return bounds
}

//perf:cold fixture: constructors run off the steady state
func newNode() *node {
	return &node{trace: &Trace{}}
}
