// Package fault is a noclock fixture: the fault-injection layer is a
// deterministic package — schedules must come from seeds or files, never
// from the wall clock or the process-wide RNG.
package fault

import (
	"math/rand"
	"time"
)

// WallClockSchedule stamps faults off the wall clock.
func WallClockSchedule() float64 {
	return float64(time.Now().UnixNano()) * 1e-9 // want `time\.Now in deterministic package "fault"`
}

// GlobalRandOutage draws an outage from the process-wide generator.
func GlobalRandOutage() float64 {
	return rand.ExpFloat64() // want `global math/rand\.ExpFloat64`
}

// SeededSchedule is the sanctioned pattern: fault instants derive from a
// caller-provided seed.
func SeededSchedule(seed int64, rate float64) float64 {
	rng := rand.New(rand.NewSource(seed))
	return rng.ExpFloat64() / rate
}
