// Package obsguard exercises the obsguard analyzer against the tracer
// guards PR 6 hand-built in sim.Node.Run: expensive probes in hot code
// need an enablement guard, nil-safe probes and guarded or error-path
// probes pass. The unguarded case mirrors exactly what deleting one of
// the engine's `if tracing { ... }` wrappers would look like.
package obsguard

import "errors"

type ev struct {
	kind string
	at   float64
}

// Trace mirrors sim.Trace: record materializes its Event argument even
// when the internal nil check bails, so call sites must guard.
type Trace struct{ events []ev }

func (t *Trace) record(e ev) {
	if t == nil {
		return
	}
	t.events = append(t.events, e)
}

// Observer mirrors the nil-safe obs handles (Counter.Inc and friends):
// cheap no-ops when disabled, allowed inline in hot code.
type Observer struct{ count int }

func (o *Observer) bump() {
	if o == nil {
		return
	}
	o.count++
}

type node struct {
	trace *Trace
	obs   *Observer
}

var errBad = errors.New("bad event")

//perf:hot fixture steady state: unguarded probes are findings
func unguarded(n *node, at float64) {
	n.trace.record(ev{kind: "arrive", at: at}) // want `unguarded Trace\.record probe in hot function unguarded`
}

//perf:hot fixture steady state: the PR 6 guard shape passes
func guarded(n *node, at float64) {
	if n.trace != nil {
		n.trace.record(ev{kind: "arrive", at: at})
	}
}

//perf:hot fixture steady state: hoisted guard bools pass
func hoisted(n *node, events []float64) {
	tracing := n.trace != nil
	for _, at := range events {
		if tracing {
			n.trace.record(ev{kind: "tick", at: at})
		}
	}
}

//perf:hot fixture steady state: failure paths may probe freely
func errExit(n *node, at float64) error {
	if at < 0 {
		n.trace.record(ev{kind: "reject", at: at})
		return errBad
	}
	return nil
}

//perf:hot fixture steady state: nil-safe probes may run inline
func nilsafe(n *node) {
	n.obs.bump()
}

//perf:hot fixture steady state: explicit exemptions silence the analyzer
func exempt(n *node, at float64) {
	//perf:obsguard-ok fixture: once-per-run summary probe, cost accepted
	n.trace.record(ev{kind: "summary", at: at})
}
