// Package hotprop exercises //perf:hot propagation through the
// module-local call graph: hotness flows from an annotated root into
// unannotated callees (transitively), //perf:cold stops it, and call
// sites inside observability guards contribute no edges.
package hotprop

import "strconv"

type item struct{ weight int }

// Trace mirrors the engine's nil-guarded sink.
type Trace struct{ notes []string }

func (t *Trace) note(s string) { t.notes = append(t.notes, s) }

type state struct {
	trace *Trace
	table []int
}

//perf:hot fixture root: the per-item loop and its helpers must not allocate
func (s *state) run(items []item) int {
	total := 0
	for _, it := range items {
		total += stepOne(it)
	}
	if s.trace != nil {
		describe(s.trace, total)
	}
	s.table = setup()
	return total
}

// stepOne is unannotated: it inherits hotness from the root.
func stepOne(it item) int {
	box := &item{weight: it.weight} // want `composite literal escapes to the heap in hot function stepOne \(hot via .*\.run\)`
	return box.weight + len(weigh(it))
}

// weigh is two edges from the root: hotness is transitive and the
// diagnostic names the root, not the immediate caller.
func weigh(it item) string {
	return "w" + strconv.Itoa(it.weight) // want `string concatenation allocates in hot function weigh \(hot via .*\.run\)`
}

// describe is reached only inside the trace guard: no hot edge, so its
// formatting is fine.
func describe(t *Trace, total int) {
	t.note("total=" + strconv.Itoa(total))
}

//perf:cold fixture: per-run setup runs once before the loop
func setup() []int {
	return []int{1, 2, 3}
}
