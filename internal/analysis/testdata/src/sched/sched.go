// Package sched is a maporder fixture: its name is in the deterministic
// set, so unsorted map iteration must be flagged.
package sched

import "sort"

var m = map[int]float64{1: 1, 2: 2}

// Bad iterates a map directly.
func Bad() float64 {
	var out float64
	for k := range m { // want `range over map m in deterministic package "sched"`
		out += float64(k)
	}
	for k, v := range m { // want `range over map m`
		out += float64(k) + v
	}
	return out
}

// Sorted uses the sanctioned preamble: collect keys, sort, iterate.
func Sorted() float64 {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	var out float64
	for _, k := range keys {
		out += m[k]
	}
	return out
}

// Annotated is exempted with a reason.
func Annotated() int {
	n := 0
	//det:mapiter-ok counting entries is order-insensitive
	for range m {
		n++
	}
	for range m { //det:mapiter-ok trailing-comment form, also order-insensitive
		n++
	}
	return n
}

// MissingReason has the annotation but no justification.
func MissingReason() int {
	n := 0
	//det:mapiter-ok
	for range m { // want `annotation requires a reason`
		n++
	}
	return n
}
