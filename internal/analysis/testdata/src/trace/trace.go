// Package trace is a noclock fixture: the planet-scale trace layer is a
// deterministic package — arrival streams must replay from a spec's
// seed, never from the wall clock or the process-wide RNG.
package trace

import (
	"math/rand"
	"time"
)

// WallClockArrival stamps an arrival off the wall clock.
func WallClockArrival() float64 {
	return float64(time.Now().UnixNano()) * 1e-9 // want `time\.Now in deterministic package "trace"`
}

// GlobalRandThinning thins candidates with the process-wide generator.
func GlobalRandThinning(rate, peak float64) bool {
	return rand.Float64() < rate/peak // want `global math/rand\.Float64`
}

// SeededStream is the sanctioned pattern: every draw comes from the
// spec's own seeded generator.
func SeededStream(seed int64, lambda float64) float64 {
	rng := rand.New(rand.NewSource(seed))
	return rng.ExpFloat64() / lambda
}
