// Package refission is a noclock fixture: the elastic re-fission
// planner is a deterministic package — a re-split decision must follow
// from the candidate set alone, never from the wall clock or the
// process-wide RNG, or the EvRefission traces compared byte-for-byte
// across runs would drift.
package refission

import (
	"math/rand"
	"time"
)

// WallClockDeadband widens the donation deadband by the wall clock.
func WallClockDeadband(margin float64) float64 {
	return margin + float64(time.Now().UnixNano())*1e-9 // want `time\.Now in deterministic package "refission"`
}

// GlobalRandTieBreak breaks a donor tie with the process-wide generator.
func GlobalRandTieBreak(a, b int) int {
	if rand.Intn(2) == 0 { // want `global math/rand\.Intn`
		return a
	}
	return b
}

// ScoreOrder is the sanctioned pattern: ties break by task ID, a pure
// function of the candidate set.
func ScoreOrder(scoreA, scoreB float64, idA, idB int) bool {
	if scoreA != scoreB {
		return scoreA > scoreB
	}
	return idA < idB
}
