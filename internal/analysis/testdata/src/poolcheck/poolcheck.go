// Package poolcheck exercises the poolcheck analyzer against the
// scratch-pool discipline of sim.nodeScratchPool: every Get needs a
// deferred Put, pooled values must not escape through returns, and
// pointer-holding slice fields must be reset before the object goes
// back. The bad cases mirror exactly what deleting the Put call or the
// reset lines from sim.Node.Run's defer would look like.
package poolcheck

import "sync"

type task struct{ id int }

// scratch mirrors sim.nodeScratch: tasks pins heap objects across
// reuses unless reset, ids is pointer-free and needs no reset.
type scratch struct {
	tasks []*task
	ids   []int
}

var pool = sync.Pool{New: func() any { return new(scratch) }}

// good mirrors sim.Node.Run: a deferred Put that resets the
// pointer-holding field first.
func good(n int) int {
	sc := pool.Get().(*scratch)
	defer func() {
		sc.tasks = sc.tasks[:0]
		pool.Put(sc)
	}()
	sc.ids = append(sc.ids[:0], n)
	return len(sc.ids)
}

// missingPut mirrors deleting the Put call outright.
func missingPut(n int) int {
	sc := pool.Get().(*scratch) // want `sync\.Pool Get without a deferred Put`
	sc.ids = append(sc.ids[:0], n)
	return len(sc.ids)
}

// inlinePut puts without defer: an early return or panic between Get
// and Put leaks the object.
func inlinePut(n int) int {
	sc := pool.Get().(*scratch) // want `sync\.Pool Get without a deferred Put`
	sc.ids = append(sc.ids[:0], n)
	sc.tasks = sc.tasks[:0]
	pool.Put(sc)
	return n
}

// escapes hands the pooled object to the caller, who would alias
// memory recycled by the deferred Put. The tasks field is also never
// reset.
func escapes() *scratch {
	sc := pool.Get().(*scratch) // want `pooled field sc\.tasks holds pointers and is not reset before Put`
	defer pool.Put(sc)
	return sc // want `pooled sc escapes through return`
}

// noReset mirrors deleting only the reset lines from the defer: the
// stale []*task backing array leaks old tasks to the next user.
func noReset(n int) int {
	sc := pool.Get().(*scratch) // want `pooled field sc\.tasks holds pointers and is not reset before Put`
	defer pool.Put(sc)
	sc.ids = append(sc.ids[:0], n)
	return len(sc.ids)
}

// exempt documents a site where the round-trip is managed elsewhere.
func exempt() *scratch {
	//perf:pool-ok fixture: the caller Puts after its checkpoint completes
	sc := pool.Get().(*scratch)
	return sc
}
