// Package accum is a floataccum fixture: float reductions carried
// across map-range iterations drift run-to-run and must be flagged.
package accum

import "sort"

var m = map[string]float64{"a": 0.1, "b": 0.2}

// BadTotal accumulates a float in map order.
func BadTotal() float64 {
	var total float64
	for _, v := range m {
		total += v // want `float accumulation into total ordered by range over map m`
	}
	return total
}

// BadNested carries the accumulator across an outer map range even
// though the inner loop is a slice.
func BadNested(groups map[string][]float64) float64 {
	var total float64
	for _, vs := range groups {
		for _, v := range vs {
			total += v // want `float accumulation into total ordered by range over map groups`
		}
	}
	return total
}

// LocalReset declares the accumulator inside the map-range body, so each
// iteration starts fresh and order cannot matter.
func LocalReset(groups map[string][]float64) map[string]float64 {
	out := make(map[string]float64, len(groups))
	//det:mapiter-ok writes one independent out entry per key
	for k, vs := range groups {
		var sum float64
		for _, v := range vs {
			sum += v
		}
		out[k] = sum
	}
	return out
}

// IntCount is exact arithmetic: order-insensitive, not flagged.
func IntCount() int {
	n := 0
	for range m {
		n += 1
	}
	return n
}

// SortedKeys accumulates in sorted-key order, the sanctioned fix.
func SortedKeys() float64 {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var total float64
	for _, k := range keys {
		total += m[k]
	}
	return total
}

// Annotated opts out with a reason.
func Annotated() float64 {
	var total float64
	for _, v := range m {
		total += v //det:floataccum-ok feeds a tolerance-based comparison only
	}
	return total
}
