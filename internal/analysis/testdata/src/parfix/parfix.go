// Package parfix is a parorder fixture: closures handed to the
// internal/par pool must confine writes to their index-addressed slot
// and must not capture enclosing loop variables.
package parfix

import (
	"sync"

	"planaria/internal/par"
)

type pair struct{ a, b float64 }

func work(i int) float64 { return float64(i) }

// Good follows the contract: every write lands in the closure's slot.
func Good(n int) []float64 {
	results := make([]float64, n)
	par.ForEach(n, func(i int) {
		results[i] = work(i)
	})
	return results
}

// GoodDerived writes through indices derived from the parameter
// (disjoint slots per i), like experiments.NewSuite does.
func GoodDerived(n int) []pair {
	out := make([]pair, n)
	par.ForEach(2*n, func(i int) {
		if i%2 == 0 {
			out[i/2].a = work(i)
		} else {
			out[i/2].b = work(i)
		}
	})
	return out
}

// BadAccumulator reduces into shared state in completion order.
func BadAccumulator(n int) float64 {
	var sum float64
	par.ForEach(n, func(i int) {
		sum += work(i) // want `writes captured sum outside its index-addressed slot`
	})
	return sum
}

// BadAppend grows a shared slice concurrently.
func BadAppend(n int) []float64 {
	var out []float64
	par.ForEach(n, func(i int) {
		out = append(out, work(i)) // want `writes captured out`
	})
	return out
}

// BadFixedSlot writes a slot that does not depend on the index.
func BadFixedSlot(n int) []float64 {
	out := make([]float64, n)
	par.ForEach(n, func(i int) {
		out[0] = work(i) // want `writes captured out`
	})
	return out
}

// BadLoopCapture references the enclosing range variable instead of
// indexing through the closure parameter.
func BadLoopCapture(items []float64) []float64 {
	out := make([]float64, len(items))
	for j, item := range items {
		par.ForEach(1, func(i int) {
			out[j] = item // want `writes captured out` `captures enclosing loop variable j` `captures enclosing loop variable item`
		})
	}
	return out
}

// GoodPerItem: the per-item fan-out obeys the same slot contract as
// ForEach and passes when writes stay index-addressed.
func GoodPerItem(n int) []float64 {
	out := make([]float64, n)
	par.PerItem(n, func(i int) {
		out[i] = work(i)
	})
	return out
}

// BadPerItem reduces into shared state through the per-item entry
// point, which is just as order-sensitive as the worker pool.
func BadPerItem(n int) float64 {
	var sum float64
	par.PerItem(n, func(i int) {
		sum += work(i) // want `writes captured sum outside its index-addressed slot`
	})
	return sum
}

// AnnotatedMutex serializes a provably order-insensitive write (an
// integer counter) and says so.
func AnnotatedMutex(n int) int {
	var mu sync.Mutex
	count := 0
	par.ForEach(n, func(i int) {
		mu.Lock()
		count++ //det:parorder-ok integer increment under mutex, order-insensitive
		mu.Unlock()
	})
	return count
}
