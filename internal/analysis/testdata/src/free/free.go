// Package free is a maporder negative fixture: it is not in the
// deterministic set, so map iteration here is not flagged.
package free

var m = map[string]int{"a": 1}

// Loop iterates a map in a package outside the determinism contract.
func Loop() int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}
