// Package obs is a noclock fixture for the observability layer: the
// registry and trace builder run on simulated time only, so wall-clock
// reads and global RNG draws inside them must be flagged. CLI-layer
// profiling (cmd/planaria) is outside the deterministic packages; an
// annotated escape hatch stays available for probes that provably never
// feed a snapshot.
package obs

import (
	"math/rand"
	"time"
)

// StampSnapshot timestamps a metrics snapshot with the wall clock — the
// exact bug the determinism contract forbids: two identical runs would
// encode different bytes.
func StampSnapshot() int64 {
	return time.Now().UnixNano() // want `time\.Now in deterministic package "obs"`
}

// JitterSample perturbs a counter sample with the global generator.
func JitterSample(v float64) float64 {
	return v + rand.Float64() // want `global math/rand\.Float64`
}

// SimStamp is the sanctioned pattern: simulated time arrives as an
// argument and is recorded verbatim.
func SimStamp(simSeconds float64) float64 {
	return simSeconds
}

// DebugOnly is exempted with a reason: the value is printed to a
// developer log and never reaches a snapshot or trace encoder.
func DebugOnly() int64 {
	//det:clock-ok operator-facing debug log only, never encoded into artifacts
	return time.Now().UnixNano()
}
