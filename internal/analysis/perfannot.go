package analysis

import (
	"go/ast"
)

// PerfAnnot validates the //perf: annotation family itself — the CI
// self-check the performance contract rides on. A malformed annotation
// silently weakens the other analyzers (an unmatched marker exempts
// nothing; a missing reason hides why an exemption is sound), so every
// //perf: comment must:
//
//   - use a known marker (hot, cold, alloc-ok, pool-ok, obsguard-ok);
//   - carry a reason;
//   - for hot/cold: annotate a function declaration (in its doc comment
//     or on the line directly above).
var PerfAnnot = &Analyzer{
	Name: "perfannot",
	Doc: "validates //perf: annotations: known marker, mandatory reason, " +
		"hot/cold attached to function declarations",
	Run: runPerfAnnot,
}

func runPerfAnnot(pass *Pass) error {
	for _, f := range pass.Files {
		anns := perfAnnotationsFor(pass.Fset, f)
		if len(anns) == 0 {
			continue
		}
		// Collect the line windows where a hot/cold annotation may sit:
		// [doc start − covered by Doc — , decl line] per function.
		type window struct{ lo, hi int }
		var funcs []window
		for _, d := range f.Decls {
			decl, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			declLine := pass.Fset.Position(decl.Pos()).Line
			lo := declLine - 1
			if decl.Doc != nil {
				if docLine := pass.Fset.Position(decl.Doc.Pos()).Line; docLine < lo {
					lo = docLine
				}
			}
			funcs = append(funcs, window{lo: lo, hi: declLine})
		}
		onFunc := func(line int) bool {
			for _, w := range funcs {
				if line >= w.lo && line <= w.hi {
					return true
				}
			}
			return false
		}

		for _, ann := range anns {
			if !perfMarkers[ann.Marker] {
				pass.Reportf(ann.Pos,
					"unknown //perf: marker %q (known: hot, cold, alloc-ok, pool-ok, obsguard-ok)",
					ann.Marker)
				continue
			}
			if ann.Reason == "" {
				pass.Reportf(ann.Pos, "//perf:%s annotation requires a reason", ann.Marker)
			}
			if (ann.Marker == "hot" || ann.Marker == "cold") && !onFunc(ann.Line) {
				pass.Reportf(ann.Pos,
					"//perf:%s must annotate a function declaration (doc comment or the line above)",
					ann.Marker)
			}
		}
	}
	return nil
}
