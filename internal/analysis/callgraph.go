package analysis

import (
	"go/ast"
	"go/types"
	"sort"
)

// This file builds the intra-module call graph behind the //perf:hot
// annotation (DESIGN.md §13). A hot root — sim.Node.Run, cluster.Run —
// promises the zero-allocation steady state; that promise extends to
// every module-local function the root reaches, so the closure is
// computed here once and shared by hotalloc and obsguard.
//
// Edges are collected per function declaration, in source order, from
// every call expression whose callee resolves to a module-local function
// or concrete method (interface method calls do not resolve — dynamic
// callees such as sched policies carry their own //perf:hot roots).
// Call sites inside cold regions (observability-guard bodies and
// error-exit blocks, see coldRegions) contribute no edges: a formatter
// invoked only under `if tracer != nil` is not on the hot path.
// A //perf:cold annotation stops propagation at a declaration —
// constructors and per-run setup helpers that a hot root calls once
// before entering its steady-state loop.

// A HotSet is the computed hot closure over one or more packages.
type HotSet struct {
	facts map[*types.Func]hotFact
}

// hotFact records how a function became hot.
type hotFact struct {
	// reason is the annotation reason of the root.
	reason string
	// root is the annotated declaration the hotness propagated from
	// (the function itself when directly annotated).
	root *types.Func
	// direct marks an explicitly annotated root.
	direct bool
}

// hot reports whether fn is in the closure.
func (h *HotSet) hot(fn *types.Func) (hotFact, bool) {
	if h == nil || fn == nil {
		return hotFact{}, false
	}
	f, ok := h.facts[fn]
	return f, ok
}

// hotDecl is the convenience lookup the analyzers use: the fact for a
// declaration in the current pass, or ok=false for non-hot functions.
func (p *Pass) hotDecl(decl *ast.FuncDecl) (hotFact, bool) {
	return p.Hot.hot(funcDeclObj(p.Info, decl))
}

// via renders the propagation origin for diagnostics: empty for direct
// roots, " (hot via <root>)" for propagated hotness.
func (f hotFact) via() string {
	if f.direct || f.root == nil {
		return ""
	}
	return " (hot via " + f.root.FullName() + ")"
}

// declSite pairs a function object with its declaration.
type declSite struct {
	decl *ast.FuncDecl
	pkg  *Package
}

// ComputeHot builds the hot closure over the given packages. Functions
// annotated //perf:hot seed the closure; reachability follows resolved
// calls between the given packages' declarations, skipping cold regions
// and //perf:cold declarations. The walk is deterministic: roots and
// work items are processed in source-position order.
func ComputeHot(pkgs []*Package) *HotSet {
	decls := map[*types.Func]declSite{}
	cold := map[*types.Func]bool{}
	h := &HotSet{facts: map[*types.Func]hotFact{}}

	var queue []*types.Func
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			anns := perfAnnotationsFor(pkg.Fset, file)
			for _, d := range file.Decls {
				decl, ok := d.(*ast.FuncDecl)
				if !ok || decl.Body == nil {
					continue
				}
				fn := funcDeclObj(pkg.Info, decl)
				if fn == nil {
					continue
				}
				decls[fn] = declSite{decl: decl, pkg: pkg}
				marker, reason, ok := perfFuncAnn(pkg.Fset, anns, decl)
				if !ok {
					continue
				}
				switch marker {
				case "cold":
					cold[fn] = true
				case "hot":
					h.facts[fn] = hotFact{reason: reason, root: fn, direct: true}
					queue = append(queue, fn)
				}
			}
		}
	}
	sort.Slice(queue, func(i, j int) bool { return queue[i].Pos() < queue[j].Pos() })

	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		site, ok := decls[fn]
		if !ok {
			continue
		}
		fact := h.facts[fn]
		for _, callee := range hotCallees(site.pkg, site.decl) {
			if cold[callee] {
				continue
			}
			if _, seen := h.facts[callee]; seen {
				continue
			}
			if _, local := decls[callee]; !local {
				continue
			}
			h.facts[callee] = hotFact{reason: fact.reason, root: fact.root}
			queue = append(queue, callee)
		}
	}
	return h
}

// hotCallees returns the resolved callees of decl's hot call sites in
// source order, excluding calls inside cold regions.
func hotCallees(pkg *Package, decl *ast.FuncDecl) []*types.Func {
	skip := coldRegions(pkg.Info, decl.Body)
	var out []*types.Func
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if skip.contains(call.Pos()) {
			return true
		}
		if fn := calleeFunc(pkg.Info, call); fn != nil {
			out = append(out, fn)
		}
		return true
	})
	return out
}

// calleeFunc resolves a call expression to its static callee: a
// package-level function, a concrete method (through a selection), or a
// package-qualified function of another module package. Interface
// method calls, closure variables, and function-typed fields return nil.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			fn, ok := sel.Obj().(*types.Func)
			if !ok {
				return nil
			}
			// A concrete receiver resolves statically; an interface
			// receiver does not — the dynamic callee is unknown.
			if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
				if types.IsInterface(recv.Type()) {
					return nil
				}
			}
			return fn
		}
		// Package-qualified: obs.New, fault.NewInjector, ...
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}
