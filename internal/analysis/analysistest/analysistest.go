// Package analysistest runs an analyzer over testdata fixture packages
// and checks its diagnostics against `// want` expectations, mirroring
// golang.org/x/tools/go/analysis/analysistest on the self-contained
// framework in internal/analysis.
//
// Expectations are written as line comments in the fixture source:
//
//	for k := range m { // want `range over map`
//
// Each backquoted or double-quoted string after `want` is a regular
// expression that must match a diagnostic reported on that line; every
// diagnostic must likewise be claimed by an expectation. A fixture file
// with no `want` comments asserts the analyzer stays silent on it.
package analysistest

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"planaria/internal/analysis"
)

// wantRe matches one quoted expectation after a `want` marker.
var wantRe = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

// expectation is one `// want` pattern awaiting a diagnostic.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// Run loads each fixture package under dir/src and applies the analyzer,
// failing t on any mismatch between diagnostics and `// want` comments.
// pkgs name subdirectories of dir/src (e.g. "sched", "planaria/x").
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	loader, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	for _, pkgdir := range pkgs {
		pkg, err := loader.LoadDir(filepath.Join(dir, "src", filepath.FromSlash(pkgdir)))
		if err != nil {
			t.Fatalf("load %s: %v", pkgdir, err)
		}
		diags, err := analysis.Run(a, pkg)
		if err != nil {
			t.Fatalf("run %s on %s: %v", a.Name, pkgdir, err)
		}
		checkExpectations(t, pkg, diags)
	}
}

func checkExpectations(t *testing.T, pkg *analysis.Package, diags []analysis.Diagnostic) {
	t.Helper()
	expects, err := collectExpectations(pkg)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		claimed := false
		for _, e := range expects {
			if e.matched || e.file != pos.Filename || e.line != pos.Line {
				continue
			}
			if e.re.MatchString(d.Message) {
				e.matched = true
				claimed = true
				break
			}
		}
		if !claimed {
			t.Errorf("%s: unexpected diagnostic: %s (%s)", pos, d.Message, d.Analyzer)
		}
	}
	for _, e := range expects {
		if !e.matched {
			t.Errorf("%s:%d: expected diagnostic matching %s, got none", e.file, e.line, e.raw)
		}
	}
}

// collectExpectations scans the fixture files' comments for `want`
// markers.
func collectExpectations(pkg *analysis.Package) ([]*expectation, error) {
	var out []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				idx := strings.Index(text, "want ")
				if idx < 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, q := range wantRe.FindAllString(text[idx+len("want "):], -1) {
					pat := q
					if strings.HasPrefix(q, "`") {
						pat = strings.Trim(q, "`")
					} else if u, err := strconv.Unquote(q); err == nil {
						pat = u
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						return nil, fmt.Errorf("%s: bad want pattern %s: %v", pos, q, err)
					}
					out = append(out, &expectation{file: pos.Filename, line: pos.Line, re: re, raw: q})
				}
			}
		}
	}
	return out, nil
}
