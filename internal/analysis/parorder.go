package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// ParOrder checks call sites of the internal/par worker-pool primitives
// (ForEach, ForEachN). The package's contract — parallel compute,
// deterministic output — holds only when the closure confines its writes
// to per-index state (results[i] = ...) and aggregation happens in index
// order afterwards. ParOrder flags:
//
//   - writes to captured variables that do not go through an index
//     expression mentioning the closure's index parameter (shared-slice
//     or accumulator writes race and aggregate in completion order);
//   - references to an enclosing loop's iteration variable inside the
//     closure (per-item data must arrive via the index parameter).
//
// A `//det:parorder-ok <reason>` annotation on the offending statement
// exempts it, e.g. for writes the caller proves are mutex-serialized and
// order-insensitive.
var ParOrder = &Analyzer{
	Name: "parorder",
	Doc: "checks internal/par closures: captured state may only be written through " +
		"the closure's index parameter, and enclosing loop variables must not be captured",
	Run: runParOrder,
}

func runParOrder(pass *Pass) error {
	for _, f := range pass.Files {
		ann := annotationsFor(pass.Fset, f, "parorder")
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			name, ok := pass.parCallee(call)
			if !ok || len(call.Args) == 0 {
				return true
			}
			fn, ok := call.Args[len(call.Args)-1].(*ast.FuncLit)
			if !ok {
				// A pre-built function value: nothing to inspect here.
				return true
			}
			pass.checkParClosure(f, ann, name, call, fn)
			return true
		})
	}
	return nil
}

// parCallee reports whether call invokes one of internal/par's
// closure-running primitives: ForEach/ForEachN (bounded worker pool) or
// PerItem (one goroutine per item, PR 6's sharded chip execution). All
// three share the contract parorder enforces — parallel compute,
// index-confined writes, deterministic aggregation afterwards.
func (p *Pass) parCallee(call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	path, ok := p.packageQualifier(sel)
	if !ok || !(path == "internal/par" || strings.HasSuffix(path, "/internal/par")) {
		return "", false
	}
	switch sel.Sel.Name {
	case "ForEach", "ForEachN", "PerItem":
		return sel.Sel.Name, true
	}
	return "", false
}

func (p *Pass) checkParClosure(file *ast.File, ann annotations, name string, call *ast.CallExpr, fn *ast.FuncLit) {
	idx := p.indexParam(fn)
	loopVars := p.enclosingLoopVars(file, call)

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range st.Lhs {
				p.checkParWrite(ann, name, fn, idx, lhs, st)
			}
		case *ast.IncDecStmt:
			p.checkParWrite(ann, name, fn, idx, st.X, st)
		case *ast.Ident:
			if obj := p.objectOf(st); obj != nil && loopVars[obj] {
				if !p.exempt(ann, st, "parorder") {
					p.Reportf(st.Pos(),
						"closure passed to par.%s captures enclosing loop variable %s: pass per-item data through the index parameter",
						name, st.Name)
				}
			}
		}
		return true
	})
}

// indexParam returns the closure's index parameter object (fn's first
// int parameter), or nil when absent.
func (p *Pass) indexParam(fn *ast.FuncLit) types.Object {
	if fn.Type.Params == nil || len(fn.Type.Params.List) == 0 {
		return nil
	}
	names := fn.Type.Params.List[0].Names
	if len(names) == 0 {
		return nil
	}
	return p.objectOf(names[0])
}

// checkParWrite flags a write whose target is captured from outside the
// closure and not addressed through the index parameter.
func (p *Pass) checkParWrite(ann annotations, name string, fn *ast.FuncLit, idx types.Object, lhs ast.Expr, stmt ast.Stmt) {
	root := rootIdent(lhs)
	if root == nil || root.Name == "_" {
		return
	}
	obj := p.objectOf(root)
	if obj == nil || declaredWithin(obj, fn.Pos(), fn.End()) {
		return // closure-local state is fine
	}
	if p.indexAddressed(lhs, idx) {
		return // results[i], progs[i/2].field, ... — the per-index slot
	}
	if p.exempt(ann, stmt, "parorder") {
		return
	}
	p.Reportf(lhs.Pos(),
		"closure passed to par.%s writes captured %s outside its index-addressed slot: writes must go through the closure's index parameter (e.g. results[i] = ...)",
		name, root.Name)
}

// indexAddressed reports whether the assignable expression goes through
// an index expression that mentions the closure's index parameter.
func (p *Pass) indexAddressed(e ast.Expr, idx types.Object) bool {
	if idx == nil {
		return false
	}
	for {
		switch v := e.(type) {
		case *ast.IndexExpr:
			if p.mentions(v.Index, idx) {
				return true
			}
			e = v.X
		case *ast.SelectorExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		default:
			return false
		}
	}
}

// mentions reports whether expr references obj.
func (p *Pass) mentions(expr ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && p.objectOf(id) == obj {
			found = true
		}
		return !found
	})
	return found
}

// enclosingLoopVars collects the iteration-variable objects of every
// for/range statement lexically enclosing the call.
func (p *Pass) enclosingLoopVars(file *ast.File, call *ast.CallExpr) map[types.Object]bool {
	vars := map[types.Object]bool{}
	addIdent := func(e ast.Expr) {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := p.objectOf(id); obj != nil {
				vars[obj] = true
			}
		}
	}
	ast.Inspect(file, func(n ast.Node) bool {
		if n == nil || n.Pos() > call.Pos() || n.End() < call.End() {
			return false // only descend into nodes enclosing the call
		}
		switch st := n.(type) {
		case *ast.RangeStmt:
			addIdent(st.Key)
			addIdent(st.Value)
		case *ast.ForStmt:
			if init, ok := st.Init.(*ast.AssignStmt); ok {
				for _, l := range init.Lhs {
					addIdent(l)
				}
			}
		}
		return true
	})
	return vars
}
