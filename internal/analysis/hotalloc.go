package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotAlloc flags allocation-inducing constructs inside the //perf:hot
// closure (DESIGN.md §13). PR 6 made the serving engine's steady state
// allocation-free by hand; this analyzer makes regressing that a vet
// failure instead of hoping an AllocsPerRun pin happens to execute the
// regressed path. Within hot functions it reports:
//
//   - composite literals that escape (&T{...}) and slice/map literals;
//   - make/new inside a loop (a fresh allocation per iteration);
//   - append inside a loop growing a bare local slice with no reuse
//     evidence — no reslice (buf[:0]), no preallocation, not a
//     parameter-owned buffer;
//   - string concatenation;
//   - any fmt call (formatting allocates; hot paths format only under
//     tracer guards);
//   - interface boxing at call sites: a non-pointer-shaped concrete
//     argument passed to an interface parameter heap-allocates its copy.
//
// Cold regions are exempt: observability-guard bodies and error-exit
// blocks (see coldRegions). A statement is exempted explicitly with
// //perf:alloc-ok <reason> on its line or the line above; the reason is
// mandatory.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc: "flags allocation-inducing constructs (escaping composites, make/append in loops, " +
		"string concat, fmt calls, interface boxing) inside the //perf:hot closure",
	Run: runHotAlloc,
}

func runHotAlloc(pass *Pass) error {
	for _, f := range pass.Files {
		anns := perfByLine(perfAnnotationsFor(pass.Fset, f), "alloc-ok")
		for _, d := range f.Decls {
			decl, ok := d.(*ast.FuncDecl)
			if !ok || decl.Body == nil {
				continue
			}
			fact, hot := pass.hotDecl(decl)
			if !hot {
				continue
			}
			pass.checkHotAlloc(anns, decl, fact)
		}
	}
	return nil
}

func (p *Pass) checkHotAlloc(anns annotations, decl *ast.FuncDecl, fact hotFact) {
	skip := coldRegions(p.Info, decl.Body)
	loops := loopSpans(decl.Body)
	reuse := reuseEvidence(p.Info, decl)
	addrTaken := map[*ast.CompositeLit]bool{}

	report := func(n ast.Node, format string, args ...any) {
		if skip.contains(n.Pos()) {
			return
		}
		if p.exemptPerf(anns, n, "alloc-ok") {
			return
		}
		args = append(args, fact.via())
		p.Reportf(n.Pos(), format+"%s", args...)
	}

	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.UnaryExpr:
			if e.Op != token.AND {
				return true
			}
			if cl, ok := unparen(e.X).(*ast.CompositeLit); ok {
				addrTaken[cl] = true
				report(e, "composite literal escapes to the heap in hot function %s", decl.Name.Name)
			}

		case *ast.CompositeLit:
			if addrTaken[e] {
				return true
			}
			t := p.Info.TypeOf(e)
			if t == nil {
				return true
			}
			switch t.Underlying().(type) {
			case *types.Slice, *types.Map:
				report(e, "%s literal allocates in hot function %s", kindWord(t), decl.Name.Name)
			}

		case *ast.CallExpr:
			p.checkHotCall(report, loops, reuse, decl, e)

		case *ast.BinaryExpr:
			if e.Op == token.ADD && isStringType(p.Info.TypeOf(e)) {
				report(e, "string concatenation allocates in hot function %s", decl.Name.Name)
			}

		case *ast.AssignStmt:
			if e.Tok == token.ADD_ASSIGN && len(e.Lhs) == 1 && isStringType(p.Info.TypeOf(e.Lhs[0])) {
				report(e, "string += allocates in hot function %s", decl.Name.Name)
			}
		}
		return true
	})
}

// checkHotCall handles the call-shaped rules: builtins in loops, fmt,
// and interface boxing.
func (p *Pass) checkHotCall(report func(ast.Node, string, ...any), loops spanSet, reuse map[types.Object]bool, decl *ast.FuncDecl, call *ast.CallExpr) {
	if id, ok := unparen(call.Fun).(*ast.Ident); ok {
		if b, isBuiltin := p.objectOf(id).(*types.Builtin); isBuiltin {
			switch b.Name() {
			case "make", "new":
				if loops.contains(call.Pos()) {
					report(call, "%s inside a loop allocates per iteration in hot function %s", b.Name(), decl.Name.Name)
				}
			case "append":
				if loops.contains(call.Pos()) && len(call.Args) > 0 {
					if target, ok := unparen(call.Args[0]).(*ast.Ident); ok && target.Name != "_" {
						obj := p.objectOf(target)
						if obj != nil && !reuse[obj] {
							report(call, "append grows %s in a hot loop with no reuse evidence "+
								"(preallocate or reslice a scratch buffer) in hot function %s",
								target.Name, decl.Name.Name)
						}
					}
				}
			}
			return
		}
	}

	if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
		if path, ok := p.packageQualifier(sel); ok && path == "fmt" {
			report(call, "fmt.%s formats (and allocates) in hot function %s", sel.Sel.Name, decl.Name.Name)
			return
		}
	}

	p.checkBoxing(report, decl, call)
}

// checkBoxing flags concrete, non-pointer-shaped arguments passed to
// interface parameters: storing such a value in an interface copies it
// to the heap. Pointer-shaped kinds (pointers, maps, channels, function
// values) fit the interface word and are free.
func (p *Pass) checkBoxing(report func(ast.Node, string, ...any), decl *ast.FuncDecl, call *ast.CallExpr) {
	sig, ok := p.Info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	if params.Len() == 0 {
		return
	}
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // slice passed through, no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		tv := p.Info.Types[arg]
		if tv.IsNil() || tv.Type == nil {
			continue
		}
		switch tv.Type.Underlying().(type) {
		case *types.Interface, *types.Pointer, *types.Map, *types.Chan, *types.Signature:
			continue
		}
		report(arg, "passing %s as interface %s boxes (allocates) in hot function %s",
			types.TypeString(tv.Type, types.RelativeTo(p.Pkg)),
			types.TypeString(pt, types.RelativeTo(p.Pkg)),
			decl.Name.Name)
	}
}

// loopSpans collects the body spans of every for/range statement in fn.
func loopSpans(body *ast.BlockStmt) spanSet {
	var spans spanSet
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.ForStmt:
			spans.add(st.Body.Pos(), st.Body.End())
		case *ast.RangeStmt:
			spans.add(st.Body.Pos(), st.Body.End())
		}
		return true
	})
	return spans
}

// reuseEvidence collects the objects that may legitimately be append
// targets in a hot loop: parameters and receivers (caller-owned
// buffers), and locals some assignment initializes from a reslice or a
// call (scratch := sc.buf[:0], buf := make(..., 0, n), buf = grow(...)).
// A bare `var out []T` that only ever grows has no evidence and is the
// per-event-reallocation shape the analyzer exists to catch.
func reuseEvidence(info *types.Info, decl *ast.FuncDecl) map[types.Object]bool {
	ev := map[types.Object]bool{}
	addField := func(f *ast.Field) {
		for _, name := range f.Names {
			if obj := info.Defs[name]; obj != nil {
				ev[obj] = true
			}
		}
	}
	if decl.Recv != nil {
		for _, f := range decl.Recv.List {
			addField(f)
		}
	}
	if decl.Type.Params != nil {
		for _, f := range decl.Type.Params.List {
			addField(f)
		}
	}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.FuncLit:
			if st.Type.Params != nil {
				for _, f := range st.Type.Params.List {
					addField(f)
				}
			}
		case *ast.AssignStmt:
			if len(st.Lhs) != len(st.Rhs) {
				return true
			}
			for i, lhs := range st.Lhs {
				id, ok := unparen(lhs).(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				if !reusingExpr(st.Rhs[i]) {
					continue
				}
				if obj := info.Defs[id]; obj != nil {
					ev[obj] = true
				} else if obj := info.Uses[id]; obj != nil {
					ev[obj] = true
				}
			}
		case *ast.ValueSpec:
			for i, name := range st.Names {
				if i < len(st.Values) && reusingExpr(st.Values[i]) {
					if obj := info.Defs[name]; obj != nil {
						ev[obj] = true
					}
				}
			}
		}
		return true
	})
	return ev
}

// reusingExpr reports whether an initializer shows buffer management: a
// reslice or a call result (make with capacity, a grow helper, a pool
// Get). Appends to the initialized variable amortize instead of growing
// from nil on every invocation. An append call is NOT evidence — every
// growing slice is assigned from its own append, which is precisely the
// shape under suspicion.
func reusingExpr(e ast.Expr) bool {
	switch v := unparen(e).(type) {
	case *ast.SliceExpr:
		return true
	case *ast.CallExpr:
		if id, ok := unparen(v.Fun).(*ast.Ident); ok && id.Name == "append" {
			return false
		}
		return true
	case *ast.TypeAssertExpr:
		return reusingExpr(v.X)
	}
	return false
}

// kindWord names a composite's kind for diagnostics.
func kindWord(t types.Type) string {
	switch t.Underlying().(type) {
	case *types.Slice:
		return "slice"
	case *types.Map:
		return "map"
	}
	return "composite"
}

// isStringType reports whether t underlies to string.
func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}
