// Package analysis implements planaria-vet, a suite of static analyzers
// that machine-check the repository's determinism contract (DESIGN.md §8)
// and performance contract (DESIGN.md §13): the cycle-level simulator,
// the spatial scheduler, and the PREMA baseline must produce
// bit-identical metrics run-to-run, or the paper's spatial-vs-temporal
// comparison is noise — and the serving hot paths must stay on the
// zero-allocation steady state PR 6 established, or the 100×-scale
// sweeps regress silently.
//
// The framework mirrors the golang.org/x/tools/go/analysis API shape
// (Analyzer / Pass / Diagnostic) but is self-contained on the standard
// library: packages are parsed with go/parser and type-checked with
// go/types, resolving module-local imports from the repository tree and
// everything else through the stdlib source importer. This keeps the
// toolchain dependency-free — the suite builds and runs offline.
//
// Analyzers:
//
//	maporder   — flags `for range` over a map in the deterministic
//	             packages unless the loop only collects keys for sorting
//	             or carries a //det:mapiter-ok <reason> annotation.
//	noclock    — forbids time.Now, global math/rand functions, and
//	             wall-clock-seeded sources in the deterministic packages.
//	parorder   — checks internal/par call sites: closures must confine
//	             writes to their index-addressed aggregation slot and must
//	             not capture enclosing loop variables.
//	floataccum — flags float accumulation whose iteration order comes
//	             from a map range (run-to-run drift in energy/latency
//	             totals).
//	perfannot  — validates the //perf: annotation family itself (known
//	             marker, mandatory reason, hot/cold on function decls).
//	hotalloc   — flags allocation-inducing constructs inside the
//	             //perf:hot closure (escaping composites, make/append in
//	             loops, string concat, fmt calls, interface boxing).
//	poolcheck  — sync.Pool discipline: deferred Put for every Get, no
//	             escaping pooled values, pointer-holding slice fields
//	             reset before Put.
//	obsguard   — expensive obs probes in hot code must sit behind an
//	             enablement guard; nil-safe probes pass unguarded.
//
// Annotation syntax: a loop or statement is exempted by a line comment
// `//det:<marker>-ok <reason>` on the same line or the line directly
// above; the reason is mandatory. Markers: mapiter, clock, parorder,
// floataccum. The performance analyzers use the //perf: family the same
// way (hot, cold, alloc-ok, pool-ok, obsguard-ok; see perf.go and
// callgraph.go).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and annotations.
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass) error
}

// A Diagnostic is one finding, positioned in the analyzed source.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// A Pass carries one analyzed package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// Hot is the //perf:hot closure the performance analyzers consult.
	// Drivers that load a whole tree pass a module-wide set (hotness
	// crosses package boundaries); Run falls back to a per-package set.
	Hot *HotSet

	diags []Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// All returns the analyzers in the suite, in stable order: the
// determinism checkers first, then the performance-contract checkers.
func All() []*Analyzer {
	return []*Analyzer{MapOrder, NoClock, ParOrder, FloatAccum, PerfAnnot, HotAlloc, PoolCheck, ObsGuard}
}

// Run applies one analyzer to a loaded package and returns its findings
// sorted by source position. The hot closure is computed over the single
// package; use RunWithHot with a ComputeHot over every loaded package
// when hotness must propagate across package boundaries.
func Run(a *Analyzer, pkg *Package) ([]Diagnostic, error) {
	return RunWithHot(a, pkg, pkg.hotSet())
}

// RunWithHot is Run with an explicit hot closure (typically module-wide,
// from ComputeHot over all loaded packages).
func RunWithHot(a *Analyzer, pkg *Package, hot *HotSet) ([]Diagnostic, error) {
	pass := &Pass{
		Analyzer: a,
		Fset:     pkg.Fset,
		Files:    pkg.Files,
		Pkg:      pkg.Types,
		Info:     pkg.Info,
		Hot:      hot,
	}
	if err := a.Run(pass); err != nil {
		return nil, err
	}
	sort.SliceStable(pass.diags, func(i, j int) bool { return pass.diags[i].Pos < pass.diags[j].Pos })
	return pass.diags, nil
}

// DeterministicPackages names the packages bound by the determinism
// contract: their outputs feed cycle counts, SLA rates, and fairness
// numbers that must be bit-identical run-to-run. Matching is by package
// name so the analyzers work unchanged on testdata fixtures.
var DeterministicPackages = map[string]bool{
	"sim":         true,
	"sched":       true,
	"prema":       true,
	"systolic":    true,
	"model":       true,
	"compiler":    true,
	"experiments": true,
	// Fault schedules are part of the reproducibility surface: a chaos
	// sweep at a fixed seed must inject the exact same faults at the
	// exact same simulated instants on every run.
	"fault": true,
	// The observability layer must itself be deterministic: its snapshots
	// and trace exports are compared byte-for-byte run-to-run, so a wall
	// clock or map-ordered encoder inside internal/obs is a contract
	// violation like any other. Wall-clock profiling lives in the CLI
	// layer (cmd/planaria), which is not a deterministic package.
	"obs": true,
	// The multi-chip serving front end dispatches, batches, and sheds on
	// simulated time only; BENCH_cluster.json and the 1-chip conformance
	// artifacts are compared byte-for-byte run-to-run.
	"cluster": true,
	// Workload generation feeds every byte-compared artifact: the same
	// seed must yield the same request stream, and the SLA tallies must
	// not depend on iteration order.
	"workload": true,
	// Trace replay doubly so: a trace spec IS a reproducibility claim
	// (same spec, same seed → the same planet-scale request stream,
	// byte-for-byte), and BENCH_autoscale.json is compared across runs.
	"trace": true,
	// The shared simulated-time comparisons (epsilon discipline) back
	// every scheduling decision above.
	"simtime": true,
	// The elastic re-fission planner decides every between-tile re-split
	// from candidate state alone; a clock or global RNG here would make
	// EvRefission traces — compared byte-for-byte across runs — drift.
	"refission": true,
}

// annotations maps source lines to //det:<marker>-ok annotation reasons
// for one file and marker.
type annotations struct {
	// reason by line; present-but-empty means the annotation is missing
	// its mandatory reason.
	byLine map[int]string
}

// annotationsFor collects `//det:<marker>-ok <reason>` line comments.
func annotationsFor(fset *token.FileSet, file *ast.File, marker string) annotations {
	prefix := "//det:" + marker + "-ok"
	ann := annotations{byLine: map[int]string{}}
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, prefix) {
				continue
			}
			rest := c.Text[len(prefix):]
			if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
				continue // e.g. //det:mapiter-okay — not this marker
			}
			ann.byLine[fset.Position(c.Pos()).Line] = strings.TrimSpace(rest)
		}
	}
	return ann
}

// at reports whether a node starting on `line` is annotated (same line or
// the line directly above) and returns the reason.
func (a annotations) at(line int) (reason string, ok bool) {
	if r, found := a.byLine[line]; found {
		return r, true
	}
	if r, found := a.byLine[line-1]; found {
		return r, true
	}
	return "", false
}

// exempt reports whether node is annotated `//det:<marker>-ok`; an
// annotation without a reason is itself reported as a finding.
func (p *Pass) exempt(ann annotations, node ast.Node, marker string) bool {
	reason, ok := ann.at(p.Fset.Position(node.Pos()).Line)
	if !ok {
		return false
	}
	if reason == "" {
		p.Reportf(node.Pos(), "//det:%s-ok annotation requires a reason", marker)
	}
	return true
}

// isMapType reports whether the expression's type is (or underlies to) a map.
func (p *Pass) isMapType(x ast.Expr) bool {
	t := p.Info.TypeOf(x)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// rootIdent returns the base identifier of an assignable expression:
// x, x.f, x[i], *x, x.f[i].g all root at x. Nil when the root is not a
// plain identifier (e.g. a function call result).
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			return v
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// objectOf resolves an identifier to its declared object (definition or use).
func (p *Pass) objectOf(id *ast.Ident) types.Object {
	if o := p.Info.Uses[id]; o != nil {
		return o
	}
	return p.Info.Defs[id]
}

// declaredWithin reports whether the object's declaration lies inside the
// source interval [lo, hi]. Objects with no position (builtins) are
// treated as outside.
func declaredWithin(obj types.Object, lo, hi token.Pos) bool {
	if obj == nil || !obj.Pos().IsValid() {
		return false
	}
	return lo <= obj.Pos() && obj.Pos() <= hi
}
