package analysis_test

import (
	"path/filepath"
	"testing"

	"planaria/internal/analysis"
	"planaria/internal/analysis/analysistest"
)

// Each analyzer runs over a positive fixture (diagnostics expected at
// the `// want` comments, silence elsewhere) and, where the check is
// package-gated, a negative fixture proving the gate.

func TestMapOrder(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.MapOrder, "sched", "free")
}

func TestNoClock(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.NoClock, "sim", "obs", "fault", "trace", "refission")
}

func TestParOrder(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.ParOrder, "parfix")
}

func TestFloatAccum(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.FloatAccum, "accum")
}

// The performance-contract fixtures (DESIGN.md §13). hotalloc and
// obsguard mirror the shapes PR 6 hand-built in sim.Node.Run — tracer
// guards, hoisted guard bools, error exits — so deleting one of those
// guards in the real engine is the same AST shape the fixtures pin red.
// poolcheck mirrors nodeScratchPool's deferred Put-with-resets, and its
// bad cases are exactly what deleting the Put call or the reset lines
// would produce.

func TestHotAlloc(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.HotAlloc, "hotalloc")
}

func TestPoolCheck(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.PoolCheck, "poolcheck")
}

func TestObsGuard(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.ObsGuard, "obsguard")
}

// TestHotPropagation pins the call-graph engine: //perf:hot flows from
// an annotated root into unannotated callees (transitively, with the
// diagnostic naming the root), //perf:cold stops it, and call sites
// inside observability guards contribute no edges.
func TestHotPropagation(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.HotAlloc, "hotprop")
}

func TestPerfAnnot(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.PerfAnnot, "perfbad")
}

// TestRepoClean runs the full suite over the repository tree — the same
// gate CI applies via `go run ./cmd/planaria-vet ./...` — so a
// determinism or performance-contract violation anywhere fails the
// package tests too. Like the vet command, it loads every package
// before computing the hot closure so //perf:hot propagates across
// import edges.
func TestRepoClean(t *testing.T) {
	loader, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	dirs, err := analysis.PackageDirs(loader.Root(), []string{"./..."})
	if err != nil {
		t.Fatalf("expand ./...: %v", err)
	}
	if len(dirs) < 10 {
		t.Fatalf("expected to find the repository's packages, got %d dirs", len(dirs))
	}
	pkgs := make([]*analysis.Package, 0, len(dirs))
	for _, dir := range dirs {
		pkg, err := loader.LoadDir(dir)
		if err != nil {
			t.Fatalf("load %s: %v", dir, err)
		}
		pkgs = append(pkgs, pkg)
	}
	hot := analysis.ComputeHot(pkgs)
	for _, pkg := range pkgs {
		for _, a := range analysis.All() {
			diags, err := analysis.RunWithHot(a, pkg, hot)
			if err != nil {
				t.Fatalf("%s on %s: %v", a.Name, pkg.Path, err)
			}
			for _, d := range diags {
				t.Errorf("%s: %s (%s)", pkg.Fset.Position(d.Pos), d.Message, d.Analyzer)
			}
		}
	}
}

// TestPackageDirsSkipsTestdata guards the pattern expansion: fixture
// trees must never be vetted as repository packages.
func TestPackageDirsSkipsTestdata(t *testing.T) {
	loader, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	dirs, err := analysis.PackageDirs(loader.Root(), []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range dirs {
		if filepath.Base(filepath.Dir(d)) == "src" {
			t.Errorf("testdata fixture leaked into package expansion: %s", d)
		}
	}
}
