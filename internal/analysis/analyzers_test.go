package analysis_test

import (
	"path/filepath"
	"testing"

	"planaria/internal/analysis"
	"planaria/internal/analysis/analysistest"
)

// Each analyzer runs over a positive fixture (diagnostics expected at
// the `// want` comments, silence elsewhere) and, where the check is
// package-gated, a negative fixture proving the gate.

func TestMapOrder(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.MapOrder, "sched", "free")
}

func TestNoClock(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.NoClock, "sim", "obs", "fault")
}

func TestParOrder(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.ParOrder, "parfix")
}

func TestFloatAccum(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.FloatAccum, "accum")
}

// TestRepoClean runs the full suite over the repository tree — the same
// gate CI applies via `go run ./cmd/planaria-vet ./...` — so a
// determinism violation anywhere fails the package tests too.
func TestRepoClean(t *testing.T) {
	loader, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	dirs, err := analysis.PackageDirs(loader.Root(), []string{"./..."})
	if err != nil {
		t.Fatalf("expand ./...: %v", err)
	}
	if len(dirs) < 10 {
		t.Fatalf("expected to find the repository's packages, got %d dirs", len(dirs))
	}
	for _, dir := range dirs {
		pkg, err := loader.LoadDir(dir)
		if err != nil {
			t.Fatalf("load %s: %v", dir, err)
		}
		for _, a := range analysis.All() {
			diags, err := analysis.Run(a, pkg)
			if err != nil {
				t.Fatalf("%s on %s: %v", a.Name, pkg.Path, err)
			}
			for _, d := range diags {
				t.Errorf("%s: %s (%s)", pkg.Fset.Position(d.Pos), d.Message, d.Analyzer)
			}
		}
	}
}

// TestPackageDirsSkipsTestdata guards the pattern expansion: fixture
// trees must never be vetted as repository packages.
func TestPackageDirsSkipsTestdata(t *testing.T) {
	loader, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	dirs, err := analysis.PackageDirs(loader.Root(), []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range dirs {
		if filepath.Base(filepath.Dir(d)) == "src" {
			t.Errorf("testdata fixture leaked into package expansion: %s", d)
		}
	}
}
