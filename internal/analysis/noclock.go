package analysis

import (
	"go/ast"
	"go/types"
)

// NoClock forbids nondeterministic time and randomness sources in the
// deterministic packages: time.Now (wall clock), the global math/rand
// functions (process-wide state, randomly seeded since Go 1.20), and all
// of math/rand/v2's package-level functions (always randomly seeded).
// RNGs must be seed-parameterized — rand.New(rand.NewSource(seed)) with
// the seed threaded from configuration, the way internal/vm and
// internal/workload already do. A `//det:clock-ok <reason>` annotation
// exempts a call site (the reason is mandatory).
var NoClock = &Analyzer{
	Name: "noclock",
	Doc: "forbids time.Now and global math/rand in deterministic packages; " +
		"randomness must come from seed-parameterized rand.New(rand.NewSource(seed))",
	Run: runNoClock,
}

// noClockAllowed lists math/rand package-level functions that do not
// consume the global generator's state.
var noClockAllowed = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

func runNoClock(pass *Pass) error {
	if !DeterministicPackages[pass.Pkg.Name()] {
		return nil
	}
	for _, f := range pass.Files {
		ann := annotationsFor(pass.Fset, f, "clock")
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkgPath, ok := pass.packageQualifier(sel)
			if !ok {
				return true
			}
			switch {
			case pkgPath == "time" && sel.Sel.Name == "Now":
				if !pass.exempt(ann, call, "clock") {
					pass.Reportf(call.Pos(),
						"time.Now in deterministic package %q: simulation time must be explicit, not wall clock",
						pass.Pkg.Name())
				}
			case pkgPath == "math/rand" && !noClockAllowed[sel.Sel.Name]:
				if !pass.exempt(ann, call, "clock") {
					pass.Reportf(call.Pos(),
						"global math/rand.%s in deterministic package %q: use a seed-parameterized rand.New(rand.NewSource(seed))",
						sel.Sel.Name, pass.Pkg.Name())
				}
			case pkgPath == "math/rand/v2":
				// v2 has no Seed; every package-level function draws from
				// a randomly-seeded global generator.
				if sel.Sel.Name != "New" && !isConstructor(sel.Sel.Name) && !pass.exempt(ann, call, "clock") {
					pass.Reportf(call.Pos(),
						"global math/rand/v2.%s in deterministic package %q: use a seeded rand.New(...)",
						sel.Sel.Name, pass.Pkg.Name())
				}
			}
			return true
		})
	}
	return nil
}

// isConstructor reports whether a math/rand/v2 package-level name builds
// a source or generator rather than drawing from the global one.
func isConstructor(name string) bool {
	switch name {
	case "NewPCG", "NewChaCha8", "NewZipf":
		return true
	}
	return false
}

// packageQualifier resolves sel's receiver to an imported package path
// when the selector is a package-qualified reference (e.g. time.Now),
// as opposed to a field or method selection.
func (p *Pass) packageQualifier(sel *ast.SelectorExpr) (string, bool) {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	pn, ok := p.objectOf(id).(*types.PkgName)
	if !ok {
		return "", false
	}
	return pn.Imported().Path(), true
}
