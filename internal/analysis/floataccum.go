package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatAccum flags floating-point accumulation (`+=`, `-=`, `*=`, `/=`)
// whose iteration order comes from a map range: float arithmetic is not
// associative, so a map-ordered reduction drifts run-to-run — the classic
// source of last-bit noise in energy and latency totals. Accumulators
// declared inside the map-range body reset every iteration and are fine;
// only accumulators carried across map iterations are flagged. Sorting
// the keys fixes the finding; a `//det:floataccum-ok <reason>` annotation
// exempts a site that is deliberately order-insensitive (e.g. feeding a
// tolerance-based comparison).
var FloatAccum = &Analyzer{
	Name: "floataccum",
	Doc: "flags float accumulation carried across map-range iterations; " +
		"iteration order must come from sorted keys, not the map",
	Run: runFloatAccum,
}

func runFloatAccum(pass *Pass) error {
	for _, f := range pass.Files {
		ann := annotationsFor(pass.Fset, f, "floataccum")
		// mapRanges tracks the enclosing map-range statements along the
		// current inspection path (ast.Inspect reports n == nil on pop).
		var mapRanges []*ast.RangeStmt
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				return false
			}
			for len(mapRanges) > 0 && n.Pos() >= mapRanges[len(mapRanges)-1].End() {
				mapRanges = mapRanges[:len(mapRanges)-1]
			}
			if rs, ok := n.(*ast.RangeStmt); ok && pass.isMapType(rs.X) {
				mapRanges = append(mapRanges, rs)
				return true
			}
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(mapRanges) == 0 || !isCompoundAssign(as.Tok) {
				return true
			}
			if !pass.isFloat(as.Lhs[0]) {
				return true
			}
			root := rootIdent(as.Lhs[0])
			if root == nil {
				return true
			}
			obj := pass.objectOf(root)
			if obj == nil {
				return true
			}
			// Flag when some enclosing map range carries the accumulator
			// across its (unordered) iterations.
			for _, rs := range mapRanges {
				if !declaredWithin(obj, rs.Pos(), rs.End()) {
					if !pass.exempt(ann, as, "floataccum") {
						pass.Reportf(as.Pos(),
							"float accumulation into %s ordered by range over map %s: float reduction is order-sensitive — iterate sorted keys",
							root.Name, types.ExprString(rs.X))
					}
					break
				}
			}
			return true
		})
	}
	return nil
}

// isCompoundAssign reports whether tok is an order-sensitive compound
// assignment operator on floats.
func isCompoundAssign(tok token.Token) bool {
	switch tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		return true
	}
	return false
}

// isFloat reports whether the expression has a floating-point (or
// complex) type.
func (p *Pass) isFloat(e ast.Expr) bool {
	t := p.Info.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}
