package analysis

import (
	"go/ast"
	"go/types"
)

// PoolCheck enforces the sync.Pool discipline the PR 6 scratch pools
// established (sim.nodeScratchPool, cluster.scratchPool):
//
//   - every Get has a Put on the same pool reachable on all exit paths,
//     which in this codebase means inside a defer — an early return or
//     a panic must not leak the pooled object;
//   - the pooled value must not escape the function through a return
//     (a caller holding it past Put aliases recycled memory);
//   - every pointer-holding slice field of the pooled struct must be
//     reset (assigned) before the object goes back — a stale
//     []*Task or []Event backing array pins old requests live across
//     reuses and leaks them to the next tenant of the scratch.
//
// The check is structural, not path-sensitive: "reset" means some
// assignment to the field exists in the function (PR 6 does all resets
// in the same defer that Puts). //perf:pool-ok <reason> on the Get line
// exempts a site.
var PoolCheck = &Analyzer{
	Name: "poolcheck",
	Doc: "checks sync.Pool discipline: deferred Put for every Get, no escape of pooled " +
		"values, pointer-holding slice fields reset before Put",
	Run: runPoolCheck,
}

func runPoolCheck(pass *Pass) error {
	for _, f := range pass.Files {
		anns := perfByLine(perfAnnotationsFor(pass.Fset, f), "pool-ok")
		for _, d := range f.Decls {
			decl, ok := d.(*ast.FuncDecl)
			if !ok || decl.Body == nil {
				continue
			}
			pass.checkPoolFunc(anns, decl)
		}
	}
	return nil
}

// poolCall reports whether call is pool.<method>() on a sync.Pool and
// returns the pool's root object.
func (p *Pass) poolCall(call *ast.CallExpr, method string) (types.Object, bool) {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != method {
		return nil, false
	}
	t := p.Info.TypeOf(sel.X)
	if t == nil {
		return nil, false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil, false
	}
	obj := named.Obj()
	if obj.Name() != "Pool" || obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return nil, false
	}
	root := rootIdent(sel.X)
	if root == nil {
		return nil, false
	}
	return p.objectOf(root), true
}

func (p *Pass) checkPoolFunc(anns annotations, decl *ast.FuncDecl) {
	type putInfo struct {
		call     *ast.CallExpr
		deferred bool
	}
	var gets []*ast.CallExpr
	getPools := map[*ast.CallExpr]types.Object{}
	var puts []putInfo

	// A Put is "deferred" when it is the deferred call itself or sits
	// inside a deferred closure.
	var deferSpans spanSet
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if ds, ok := n.(*ast.DeferStmt); ok {
			deferSpans.add(ds.Pos(), ds.End())
		}
		return true
	})

	ast.Inspect(decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if pool, ok := p.poolCall(call, "Get"); ok {
			gets = append(gets, call)
			getPools[call] = pool
		}
		if _, ok := p.poolCall(call, "Put"); ok {
			puts = append(puts, putInfo{call: call, deferred: deferSpans.contains(call.Pos())})
		}
		return true
	})
	if len(gets) == 0 {
		return
	}

	for _, get := range gets {
		if p.exemptPerf(anns, get, "pool-ok") {
			continue
		}
		pool := getPools[get]
		var put *ast.CallExpr
		for _, pi := range puts {
			target, _ := p.poolCall(pi.call, "Put")
			if target != pool {
				continue
			}
			if pi.deferred {
				put = pi.call
				break
			}
		}
		if put == nil {
			p.Reportf(get.Pos(),
				"sync.Pool Get without a deferred Put: an early return or panic leaks the pooled object")
			continue
		}

		pooled := p.pooledVar(decl, get)
		if pooled == nil {
			continue
		}
		p.checkPoolEscape(decl, pooled)
		p.checkPoolResets(decl, get, pooled)
	}
}

// pooledVar finds the variable the Get result is bound to:
// sc := pool.Get().(*T).
func (p *Pass) pooledVar(decl *ast.FuncDecl, get *ast.CallExpr) types.Object {
	var obj types.Object
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || obj != nil {
			return obj == nil
		}
		for i, rhs := range as.Rhs {
			e := unparen(rhs)
			if ta, ok := e.(*ast.TypeAssertExpr); ok {
				e = unparen(ta.X)
			}
			if e != ast.Expr(get) || i >= len(as.Lhs) {
				continue
			}
			if id, ok := unparen(as.Lhs[i]).(*ast.Ident); ok && id.Name != "_" {
				obj = p.objectOf(id)
			}
		}
		return true
	})
	return obj
}

// checkPoolEscape flags returns through which the pooled object can
// alias out: a result that mentions the pooled variable and whose type
// still holds references (the object itself, a field slice, a struct
// embedding one). Scalar results derived from pooled state — len(sc.x),
// sc.ids[0] — carry no reference and pass.
func (p *Pass) checkPoolEscape(decl *ast.FuncDecl, pooled types.Object) {
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			if !p.mentions(res, pooled) {
				continue
			}
			if t := p.Info.TypeOf(res); t != nil && !holdsPointers(t, map[types.Type]bool{}) {
				continue
			}
			p.Reportf(ret.Pos(),
				"pooled %s escapes through return: callers would alias memory recycled by Put",
				pooled.Name())
			return true
		}
		return true
	})
}

// checkPoolResets verifies every pointer-holding slice field of the
// pooled struct is assigned somewhere in the function before reuse.
func (p *Pass) checkPoolResets(decl *ast.FuncDecl, get *ast.CallExpr, pooled types.Object) {
	t := pooled.Type()
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return
	}

	assigned := map[string]bool{}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range as.Lhs {
			sel, ok := unparen(lhs).(*ast.SelectorExpr)
			if !ok {
				continue
			}
			if root := rootIdent(sel); root != nil && p.objectOf(root) == pooled {
				assigned[sel.Sel.Name] = true
			}
		}
		return true
	})

	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		sl, ok := f.Type().Underlying().(*types.Slice)
		if !ok {
			continue
		}
		if !holdsPointers(sl.Elem(), map[types.Type]bool{}) {
			continue
		}
		if !assigned[f.Name()] {
			p.Reportf(get.Pos(),
				"pooled field %s.%s holds pointers and is not reset before Put: stale references leak across reuses",
				pooled.Name(), f.Name())
		}
	}
}

// holdsPointers reports whether values of t keep heap references alive:
// pointers, interfaces, maps, channels, functions, slices, and strings
// all do, directly or through struct/array composition.
func holdsPointers(t types.Type, seen map[types.Type]bool) bool {
	if seen[t] {
		return false
	}
	seen[t] = true
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Interface, *types.Map, *types.Chan, *types.Signature, *types.Slice:
		return true
	case *types.Basic:
		return u.Info()&types.IsString != 0
	case *types.Array:
		return holdsPointers(u.Elem(), seen)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if holdsPointers(u.Field(i).Type(), seen) {
				return true
			}
		}
	}
	return false
}
