package analysis

import (
	"go/ast"
	"go/types"
)

// ObsGuard checks that the expensive observability probes inside the
// //perf:hot closure sit behind an enablement guard. PR 6 wrapped every
// such probe by hand (`if tracer != nil { tracer.Instant(...) }`,
// `tracing := n.Trace != nil; if tracing { n.Trace.record(...) }`)
// because the probes format strings and materialize event structs even
// when observability is off; this analyzer makes deleting one of those
// guards a vet failure.
//
// Guard-required probes: TraceBuilder.Span/Instant/Counter (they
// Sprintf label strings at most call sites) and Trace.record (its Event
// argument is materialized before the nil check inside can help).
// The known nil-safe inline paths — Counter.Inc/Add, Gauge.Set/Max,
// Histogram.Observe, Registry.Counter/Gauge/Histogram, Observer
// accessors, and both Reserve methods — are cheap no-ops when disabled
// and may appear unguarded. //perf:obsguard-ok <reason> exempts a call.
var ObsGuard = &Analyzer{
	Name: "obsguard",
	Doc: "requires nil/enabled guards around expensive obs probes (TraceBuilder.Span/" +
		"Instant/Counter, Trace.record) in //perf:hot code; nil-safe probes pass unguarded",
	Run: runObsGuard,
}

// guardRequired lists the probe methods that must be guarded in hot
// code, keyed by receiver type name.
var guardRequired = map[string]map[string]bool{
	"TraceBuilder": {"Span": true, "Instant": true, "Counter": true},
	"Trace":        {"record": true, "Record": true},
}

func runObsGuard(pass *Pass) error {
	for _, f := range pass.Files {
		anns := perfByLine(perfAnnotationsFor(pass.Fset, f), "obsguard-ok")
		for _, d := range f.Decls {
			decl, ok := d.(*ast.FuncDecl)
			if !ok || decl.Body == nil {
				continue
			}
			fact, hot := pass.hotDecl(decl)
			if !hot {
				continue
			}
			pass.checkObsGuards(anns, decl, fact)
		}
	}
	return nil
}

func (p *Pass) checkObsGuards(anns annotations, decl *ast.FuncDecl, fact hotFact) {
	// coldRegions includes every recognized guard body plus error exits;
	// a probe inside either is fine (error paths are off the steady
	// state by definition).
	skip := coldRegions(p.Info, decl.Body)

	ast.Inspect(decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		typeName, method, ok := p.obsProbe(call)
		if !ok {
			return true
		}
		req := guardRequired[typeName]
		if req == nil || !req[method] {
			return true
		}
		if skip.contains(call.Pos()) {
			return true
		}
		if p.exemptPerf(anns, call, "obsguard-ok") {
			return true
		}
		p.Reportf(call.Pos(),
			"unguarded %s.%s probe in hot function %s%s: wrap it in an enablement check "+
				"(if tracer != nil { ... }) so disabled observability costs one branch",
			typeName, method, decl.Name.Name, fact.via())
		return true
	})
}

// obsProbe resolves a call to (receiver type name, method) when the
// receiver is an observability-layer type (see obsValueType).
func (p *Pass) obsProbe(call *ast.CallExpr) (typeName, method string, ok bool) {
	sel, isSel := unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	s, found := p.Info.Selections[sel]
	if !found {
		return "", "", false
	}
	recv := s.Recv()
	if !obsValueType(recv) {
		return "", "", false
	}
	if ptr, isPtr := recv.Underlying().(*types.Pointer); isPtr {
		recv = ptr.Elem()
	}
	named, isNamed := recv.(*types.Named)
	if !isNamed {
		return "", "", false
	}
	return named.Obj().Name(), sel.Sel.Name, true
}
