package arch

import "fmt"

// HealthMask is the chip's subarray availability view of the fission
// configuration space: Usable[i] reports whether subarray i can host a
// logical accelerator right now. A subarray is unusable when it holds a
// permanent or active transient fault (dead PE, dead subarray) or when
// its Fission Pod's crossbar/ring link is down (internal/fault produces
// masks from its fault schedule). The scheduler consults the mask so
// Algorithm 1 only considers fission configurations whose subarrays and
// chaining links are alive.
//
// Chaining feasibility is judged in the serpentine ring order the
// reconfiguration state uses (ChipState.StageShape): a cluster of k
// subarrays needs k consecutive usable subarrays so its ring-bus
// chaining links are all alive; single-subarray clusters need no links
// at all.
type HealthMask struct {
	// Usable[i] is subarray i's availability.
	Usable []bool
}

// FullHealth returns the all-alive mask for a configuration.
func FullHealth(c Config) HealthMask {
	u := make([]bool, c.NumSubarrays())
	for i := range u {
		u[i] = true
	}
	return HealthMask{Usable: u}
}

// Alive returns the number of usable subarrays.
func (m HealthMask) Alive() int {
	n := 0
	for _, u := range m.Usable {
		if u {
			n++
		}
	}
	return n
}

// Fraction returns the usable share of the subarray pool (1 for an empty
// mask, which means "no health tracking").
func (m HealthMask) Fraction() float64 {
	if len(m.Usable) == 0 {
		return 1
	}
	return float64(m.Alive()) / float64(len(m.Usable))
}

// Degraded reports whether any subarray is masked out.
func (m HealthMask) Degraded() bool {
	return m.Alive() < len(m.Usable)
}

// MaxChainable returns the length of the longest run of consecutive
// usable subarrays in chain order — the largest single cluster the
// surviving hardware can still realize. Zero when nothing is usable.
func (m HealthMask) MaxChainable() int {
	best, run := 0, 0
	for _, u := range m.Usable {
		if u {
			run++
			if run > best {
				best = run
			}
		} else {
			run = 0
		}
	}
	return best
}

// runs returns the lengths of the maximal usable runs in chain order,
// in positional order.
func (m HealthMask) runs() []int {
	var rs []int
	run := 0
	for _, u := range m.Usable {
		if u {
			run++
		} else if run > 0 {
			rs = append(rs, run)
			run = 0
		}
	}
	if run > 0 {
		rs = append(rs, run)
	}
	return rs
}

// Placeable reports whether the shape's clusters can be laid out on the
// surviving subarrays: each cluster claims H·W consecutive usable
// subarrays (first-fit over the usable runs, largest clusters first is
// unnecessary since all clusters of one shape are the same size).
func (m HealthMask) Placeable(sh Shape) bool {
	if len(m.Usable) == 0 {
		return true // no health tracking: everything is alive
	}
	need := sh.H * sh.W
	if need <= 0 || sh.Clusters <= 0 {
		return false
	}
	placed := 0
	for _, r := range m.runs() {
		placed += r / need
	}
	return placed >= sh.Clusters
}

// FeasibleShapes filters EnumerateShapes(c, s) down to the shapes the
// surviving hardware can realize, preserving the deterministic
// enumeration order.
func (m HealthMask) FeasibleShapes(c Config, s int) []Shape {
	all := EnumerateShapes(c, s)
	if len(m.Usable) == 0 {
		return all
	}
	out := make([]Shape, 0, len(all))
	for _, sh := range all {
		if m.Placeable(sh) {
			out = append(out, sh)
		}
	}
	return out
}

// Validate checks the mask's dimensions against a configuration.
func (m HealthMask) Validate(c Config) error {
	if len(m.Usable) != 0 && len(m.Usable) != c.NumSubarrays() {
		return fmt.Errorf("arch: health mask covers %d subarrays, config has %d",
			len(m.Usable), c.NumSubarrays())
	}
	return nil
}

// String renders the mask as a compact alive/dead string in chain order
// ('#' alive, 'x' dead).
func (m HealthMask) String() string {
	b := make([]byte, len(m.Usable))
	for i, u := range m.Usable {
		if u {
			b[i] = '#'
		} else {
			b[i] = 'x'
		}
	}
	return string(b)
}
