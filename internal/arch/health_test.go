package arch

import "testing"

func maskOf(bits ...int) HealthMask {
	u := make([]bool, 16)
	for i := range u {
		u[i] = true
	}
	for _, b := range bits {
		u[b] = false
	}
	return HealthMask{Usable: u}
}

func TestFullHealth(t *testing.T) {
	m := FullHealth(Planaria())
	if m.Alive() != 16 || m.Degraded() || m.Fraction() != 1 {
		t.Fatalf("full health: alive=%d degraded=%v frac=%g", m.Alive(), m.Degraded(), m.Fraction())
	}
	if m.MaxChainable() != 16 {
		t.Fatalf("MaxChainable = %d", m.MaxChainable())
	}
	if err := m.Validate(Planaria()); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyMaskMeansUntracked(t *testing.T) {
	var m HealthMask
	if m.Fraction() != 1 {
		t.Fatalf("empty mask fraction = %g", m.Fraction())
	}
	if !m.Placeable(Shape{Clusters: 1, H: 4, W: 4}) {
		t.Fatal("empty mask rejected a shape")
	}
	cfg := Planaria()
	if got, want := len(m.FeasibleShapes(cfg, 16)), len(EnumerateShapes(cfg, 16)); got != want {
		t.Fatalf("empty mask filtered shapes: %d of %d", got, want)
	}
}

func TestMaxChainableRuns(t *testing.T) {
	m := maskOf(4, 9) // runs: 4, 4, 6
	if m.Alive() != 14 {
		t.Fatalf("alive = %d", m.Alive())
	}
	if m.MaxChainable() != 6 {
		t.Fatalf("MaxChainable = %d, want 6", m.MaxChainable())
	}
	dead := HealthMask{Usable: make([]bool, 16)}
	if dead.MaxChainable() != 0 || dead.Alive() != 0 {
		t.Fatal("all-dead mask reports life")
	}
}

func TestPlaceableRespectsRuns(t *testing.T) {
	m := maskOf(4, 9) // runs of 4, 4, 6 usable subarrays
	cases := []struct {
		sh   Shape
		want bool
	}{
		{Shape{Clusters: 14, H: 1, W: 1}, true},  // singles need no links
		{Shape{Clusters: 1, H: 2, W: 2}, true},   // 4 consecutive fit in any run
		{Shape{Clusters: 3, H: 2, W: 2}, true},   // one 4-cluster per run
		{Shape{Clusters: 1, H: 2, W: 4}, false},  // needs 8 consecutive, max run 6
		{Shape{Clusters: 2, H: 2, W: 2}, true},   // 4+4
		{Shape{Clusters: 1, H: 4, W: 4}, false},  // whole chip no longer chainable
		{Shape{Clusters: 3, H: 1, W: 4}, true},   // 4 + 4 + (6/4 = 1)
		{Shape{Clusters: 4, H: 1, W: 4}, false},  // only three 4-runs available
	}
	for _, c := range cases {
		if got := m.Placeable(c.sh); got != c.want {
			t.Errorf("Placeable(%+v) = %v, want %v (mask %s)", c.sh, got, c.want, m)
		}
	}
}

func TestFeasibleShapesSubsetAndDeterministic(t *testing.T) {
	cfg := Planaria()
	m := maskOf(5, 10) // runs of 5, 4, 5 — an 8-subarray cluster no longer fits
	all := EnumerateShapes(cfg, 8)
	feasible := m.FeasibleShapes(cfg, 8)
	if len(feasible) == 0 || len(feasible) >= len(all) {
		t.Fatalf("feasible %d of %d shapes", len(feasible), len(all))
	}
	// Subset in enumeration order.
	j := 0
	for _, sh := range all {
		if j < len(feasible) && feasible[j] == sh {
			j++
		}
	}
	if j != len(feasible) {
		t.Fatal("feasible shapes are not an ordered subset of the enumeration")
	}
	for _, sh := range feasible {
		if !m.Placeable(sh) {
			t.Errorf("infeasible shape %+v returned", sh)
		}
	}
}

func TestHealthMaskValidate(t *testing.T) {
	bad := HealthMask{Usable: make([]bool, 7)}
	if err := bad.Validate(Planaria()); err == nil {
		t.Fatal("mismatched mask accepted")
	}
}
