package arch

import "fmt"

// Placement maps one logical accelerator's fission shape onto physical
// subarrays and carries the per-subarray configuration bits that realize
// it (direction + link enables, §IV-C). Produced by Route and validated
// by Placement.Validate — the structural counterpart of the functional
// grid simulator: together they show the mux network can actually route
// every shape the compiler emits.
type Placement struct {
	Shape Shape
	// Subarrays lists the physical subarray indices used, in logical
	// order: cluster-major, then row-major within the cluster.
	Subarrays []int
	// Configs[i] is the configuration of Subarrays[i].
	Configs []SubarrayConfig
}

// Route places a shape onto count physical subarrays starting at base
// (linear index into the chip's subarray list) and derives each
// subarray's 6-bit configuration. Within a cluster, logical rows chain
// horizontally with the activation flow serpentining (alternating
// direction per row) so the ring bus carries the stream between row ends
// — the omni-directional pattern of Fig 4. Vertical links chain partial
// sums between logical rows.
func Route(cfg Config, sh Shape, base int) (*Placement, error) {
	if !sh.Valid(cfg) {
		return nil, fmt.Errorf("arch: invalid shape %v for %s", sh, cfg.String())
	}
	need := sh.Subarrays()
	total := cfg.NumSubarrays()
	if base < 0 || base+need > total {
		return nil, fmt.Errorf("arch: placement [%d,%d) outside %d subarrays", base, base+need, total)
	}
	p := &Placement{Shape: sh}
	idx := base
	for g := 0; g < sh.Clusters; g++ {
		for h := 0; h < sh.H; h++ {
			for w := 0; w < sh.W; w++ {
				c := SubarrayConfig{
					ActReverse: h%2 == 1,
					LinkE:      w < sh.W-1,
					LinkW:      w > 0,
					LinkS:      h < sh.H-1,
					LinkN:      h > 0,
				}
				p.Subarrays = append(p.Subarrays, idx)
				p.Configs = append(p.Configs, c)
				idx++
			}
		}
	}
	return p, nil
}

// Validate checks the structural invariants of a placement:
//   - the subarray count matches the shape;
//   - within each cluster, horizontal links are mutual along each logical
//     row and absent at row ends (fission boundaries);
//   - vertical links are mutual between adjacent logical rows and absent
//     at the cluster's top and bottom;
//   - activation direction serpentines (alternates per logical row) so a
//     chained stream can fold back, which requires the omni-directional
//     feature whenever H > 1 and W > 1 or the chain exceeds the pod grid.
func (p *Placement) Validate() error {
	sh := p.Shape
	if len(p.Subarrays) != sh.Subarrays() || len(p.Configs) != sh.Subarrays() {
		return fmt.Errorf("arch: placement covers %d subarrays, shape needs %d", len(p.Subarrays), sh.Subarrays())
	}
	at := func(g, h, w int) SubarrayConfig {
		return p.Configs[(g*sh.H+h)*sh.W+w]
	}
	for g := 0; g < sh.Clusters; g++ {
		for h := 0; h < sh.H; h++ {
			for w := 0; w < sh.W; w++ {
				c := at(g, h, w)
				// Horizontal link mutuality and boundaries.
				if w < sh.W-1 {
					if !c.LinkE || !at(g, h, w+1).LinkW {
						return fmt.Errorf("arch: broken horizontal link at cluster %d (%d,%d)", g, h, w)
					}
				} else if c.LinkE {
					return fmt.Errorf("arch: dangling east link at cluster %d (%d,%d)", g, h, w)
				}
				if w == 0 && c.LinkW {
					return fmt.Errorf("arch: dangling west link at cluster %d (%d,%d)", g, h, w)
				}
				// Vertical link mutuality and boundaries.
				if h < sh.H-1 {
					if !c.LinkS || !at(g, h+1, w).LinkN {
						return fmt.Errorf("arch: broken vertical link at cluster %d (%d,%d)", g, h, w)
					}
				} else if c.LinkS {
					return fmt.Errorf("arch: dangling south link at cluster %d (%d,%d)", g, h, w)
				}
				if h == 0 && c.LinkN {
					return fmt.Errorf("arch: dangling north link at cluster %d (%d,%d)", g, h, w)
				}
				// Serpentine direction.
				if c.ActReverse != (h%2 == 1) {
					return fmt.Errorf("arch: row %d of cluster %d has wrong flow direction", h, g)
				}
			}
		}
	}
	return nil
}

// HopCount returns the number of ring-bus segments the placement's
// longest activation chain and partial-sum chain traverse — the latency
// the analytical model charges as boundary crossings.
func (p *Placement) HopCount() (actHops, psumHops int) {
	return p.Shape.W - 1, p.Shape.H - 1
}

// RouteAll places a full chip scenario: a list of (shape, owner) pairs
// packed contiguously. It errors when the shapes exceed the chip.
func RouteAll(cfg Config, shapes []Shape) ([]*Placement, error) {
	base := 0
	placements := make([]*Placement, 0, len(shapes))
	for i, sh := range shapes {
		p, err := Route(cfg, sh, base)
		if err != nil {
			return nil, fmt.Errorf("arch: logical accelerator %d: %w", i, err)
		}
		if err := p.Validate(); err != nil {
			return nil, fmt.Errorf("arch: logical accelerator %d: %w", i, err)
		}
		placements = append(placements, p)
		base += sh.Subarrays()
	}
	return placements, nil
}
