// Package arch describes the Planaria chip organization: the PE array and
// its fission granularity, Fission Pods with their Pod Memory, ring buses
// and crossbars, the space of fission shapes a logical accelerator can
// take, and the runtime reconfiguration state (§III–IV of the paper).
package arch

import "fmt"

// Config captures the hardware parameters shared by the functional
// simulator, the analytical model, and the schedulers. The defaults in
// Planaria() match the paper's evaluation setup (§VI-A): the same compute
// and memory resources as PREMA's TPU-like baseline.
type Config struct {
	// ArrayRows × ArrayCols is the total PE count of the chip.
	ArrayRows, ArrayCols int
	// SubRows × SubCols is the fission granularity (subarray size).
	SubRows, SubCols int
	// Pods is the number of Fission Pods; subarrays are distributed
	// evenly across pods.
	Pods int
	// FreqMHz is the clock frequency.
	FreqMHz int
	// On-chip SRAM capacities (bytes). ActBuf+WgtBuf+OutBuf = 12 MB in
	// the evaluation configuration.
	ActBufBytes, WgtBufBytes, OutBufBytes int64
	// DRAMBandwidthGBs is the aggregate off-chip bandwidth across the
	// chip's memory channels (one channel per pod).
	DRAMBandwidthGBs float64
	// RingPipelineRegs is the pipeline depth of each ring bus (§IV-B).
	RingPipelineRegs int
	// InstrBufBytes is the per-subarray instruction buffer (§IV-C).
	InstrBufBytes int
}

// Planaria returns the paper's evaluated configuration: 128×128 PEs,
// 32×32 fission granularity (16 subarrays), 4 Fission Pods, 700 MHz,
// 12 MB of on-chip SRAM, and 4 × 16 GB/s memory channels.
func Planaria() Config {
	return Config{
		ArrayRows: 128, ArrayCols: 128,
		SubRows: 32, SubCols: 32,
		Pods:             4,
		FreqMHz:          700,
		ActBufBytes:      6 << 20,
		WgtBufBytes:      4 << 20,
		OutBufBytes:      2 << 20,
		DRAMBandwidthGBs: 64,
		RingPipelineRegs: 12,
		InstrBufBytes:    4 << 10,
	}
}

// Monolithic returns the PREMA baseline: identical resources but no
// fission capability (granularity = full array, a single "pod").
func Monolithic() Config {
	c := Planaria()
	c.SubRows, c.SubCols = c.ArrayRows, c.ArrayCols
	c.Pods = 1
	c.RingPipelineRegs = 0
	return c
}

// WithGranularity returns a copy of the configuration refissioned at a
// g×g subarray granularity (used by the Fig 18 design-space exploration).
func (c Config) WithGranularity(g int) Config {
	c.SubRows, c.SubCols = g, g
	n := c.NumSubarrays()
	if n < c.Pods {
		c.Pods = n
	}
	return c
}

// NumSubarrays returns the total subarray count.
func (c Config) NumSubarrays() int {
	return (c.ArrayRows / c.SubRows) * (c.ArrayCols / c.SubCols)
}

// SubarraysPerPod returns the number of subarrays in each Fission Pod.
func (c Config) SubarraysPerPod() int {
	return c.NumSubarrays() / c.Pods
}

// CyclesPerSecond returns the clock rate in Hz.
func (c Config) CyclesPerSecond() float64 { return float64(c.FreqMHz) * 1e6 }

// Seconds converts a cycle count to wall-clock time.
func (c Config) Seconds(cycles int64) float64 {
	return float64(cycles) / c.CyclesPerSecond()
}

// BytesPerCycle returns the aggregate DRAM bandwidth in bytes per clock
// cycle (the unit the cycle model works in).
func (c Config) BytesPerCycle() float64 {
	return c.DRAMBandwidthGBs * 1e9 / c.CyclesPerSecond()
}

// ConfigSwapCycles returns the cycles to bring n subarrays onto a new
// task's configuration outside a drain-and-checkpoint preemption: one
// cycle per subarray to swap the double-buffered configuration
// registers, plus the per-subarray instruction-buffer prefetch through
// the aggregate DRAM bandwidth (§IV-C). The elastic re-fission hook
// charges this when it grows a stalled task into freed subarrays
// mid-run; it is what makes a grow decision non-free and keeps the
// planner honest about churn.
func (c Config) ConfigSwapCycles(n int) int64 {
	if n <= 0 {
		return 0
	}
	bpc := c.BytesPerCycle()
	if bpc <= 0 {
		return int64(n)
	}
	return int64(n) + int64(float64(n)*float64(c.InstrBufBytes)/bpc)
}

// WeightBufPerSubarray returns the weight-buffer capacity private to one
// subarray; weight buffers live inside the PEs, so they partition evenly.
func (c Config) WeightBufPerSubarray() int64 {
	return c.WgtBufBytes / int64(c.NumSubarrays())
}

// PodMemBytes returns the Pod Memory capacity of one Fission Pod
// (activation + output buffers are co-located there, §IV-B).
func (c Config) PodMemBytes() int64 {
	return (c.ActBufBytes + c.OutBufBytes) / int64(c.Pods)
}

// Validate checks internal consistency of a configuration.
func (c Config) Validate() error {
	if c.ArrayRows <= 0 || c.ArrayCols <= 0 {
		return fmt.Errorf("arch: non-positive array dims %dx%d", c.ArrayRows, c.ArrayCols)
	}
	if c.SubRows <= 0 || c.SubCols <= 0 ||
		c.ArrayRows%c.SubRows != 0 || c.ArrayCols%c.SubCols != 0 {
		return fmt.Errorf("arch: granularity %dx%d does not tile array %dx%d",
			c.SubRows, c.SubCols, c.ArrayRows, c.ArrayCols)
	}
	if c.Pods <= 0 || c.NumSubarrays()%c.Pods != 0 {
		return fmt.Errorf("arch: %d subarrays not divisible into %d pods", c.NumSubarrays(), c.Pods)
	}
	if c.FreqMHz <= 0 {
		return fmt.Errorf("arch: non-positive frequency")
	}
	if c.ActBufBytes <= 0 || c.WgtBufBytes <= 0 || c.OutBufBytes <= 0 {
		return fmt.Errorf("arch: non-positive buffer capacity")
	}
	if c.DRAMBandwidthGBs <= 0 {
		return fmt.Errorf("arch: non-positive DRAM bandwidth")
	}
	return nil
}

// String summarizes the configuration.
func (c Config) String() string {
	return fmt.Sprintf("%dx%d PEs, %dx%d subarrays (%d), %d pods, %d MHz, %d MB SRAM, %.0f GB/s",
		c.ArrayRows, c.ArrayCols, c.SubRows, c.SubCols, c.NumSubarrays(), c.Pods, c.FreqMHz,
		(c.ActBufBytes+c.WgtBufBytes+c.OutBufBytes)>>20, c.DRAMBandwidthGBs)
}
