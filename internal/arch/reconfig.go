package arch

import "fmt"

// SubarrayConfig is the per-subarray reconfiguration state the paper
// describes in §IV-C: two direction bits (input-activation flow and
// partial-sum flow) and four neighbor-link enables, packed into six bits.
// Each subarray holds two such registers — the active state and a
// pre-loaded next state — so reconfiguration takes effect at a tile
// boundary without stalling.
type SubarrayConfig struct {
	// ActReverse flips input-activation flow from the default
	// left-to-right to right-to-left (omni-directional feature).
	ActReverse bool
	// PsumReverse flips partial-sum flow from the default top-to-bottom
	// to bottom-to-top.
	PsumReverse bool
	// LinkN/E/S/W enable the inter-subarray links to the four neighbors
	// (via ring-bus segments); a disabled link is a fission boundary.
	LinkN, LinkE, LinkS, LinkW bool
}

// Pack encodes the configuration into its 6-bit hardware representation.
func (s SubarrayConfig) Pack() uint8 {
	var b uint8
	if s.ActReverse {
		b |= 1 << 0
	}
	if s.PsumReverse {
		b |= 1 << 1
	}
	if s.LinkN {
		b |= 1 << 2
	}
	if s.LinkE {
		b |= 1 << 3
	}
	if s.LinkS {
		b |= 1 << 4
	}
	if s.LinkW {
		b |= 1 << 5
	}
	return b
}

// UnpackSubarrayConfig decodes a 6-bit register value.
func UnpackSubarrayConfig(b uint8) SubarrayConfig {
	return SubarrayConfig{
		ActReverse:  b&(1<<0) != 0,
		PsumReverse: b&(1<<1) != 0,
		LinkN:       b&(1<<2) != 0,
		LinkE:       b&(1<<3) != 0,
		LinkS:       b&(1<<4) != 0,
		LinkW:       b&(1<<5) != 0,
	}
}

// PodMemConfig is the per-pod 8-bit register selecting which subarray each
// of the pod's activation-buffer and output-buffer crossbar ports connects
// to (§IV-C: "another eight bits determine the connectivity of the Pod
// Memory buffers to the subarrays").
type PodMemConfig struct {
	// ActPort[i] is the subarray index (0..3 within the pod) that
	// activation buffer i feeds through the read crossbar.
	ActPort [2]uint8
	// OutPort[i] is the subarray index that output buffer i drains
	// through the write crossbar.
	OutPort [2]uint8
}

// Pack encodes the pod-memory crossbar selection into eight bits.
func (p PodMemConfig) Pack() uint8 {
	return (p.ActPort[0] & 3) | (p.ActPort[1]&3)<<2 |
		(p.OutPort[0]&3)<<4 | (p.OutPort[1]&3)<<6
}

// UnpackPodMemConfig decodes an 8-bit pod-memory register value.
func UnpackPodMemConfig(b uint8) PodMemConfig {
	return PodMemConfig{
		ActPort: [2]uint8{b & 3, (b >> 2) & 3},
		OutPort: [2]uint8{(b >> 4) & 3, (b >> 6) & 3},
	}
}

// ChipState tracks the double-buffered reconfiguration registers for the
// whole chip and which logical accelerator currently owns each subarray.
type ChipState struct {
	cfg     Config
	Current []SubarrayConfig
	Next    []SubarrayConfig
	// Owner[i] is the task/accelerator id owning subarray i, or -1.
	Owner []int
}

// NewChipState returns a chip with all links down and no owners.
func NewChipState(cfg Config) *ChipState {
	n := cfg.NumSubarrays()
	st := &ChipState{
		cfg:     cfg,
		Current: make([]SubarrayConfig, n),
		Next:    make([]SubarrayConfig, n),
		Owner:   make([]int, n),
	}
	for i := range st.Owner {
		st.Owner[i] = -1
	}
	return st
}

// StageShape programs the Next registers of count subarrays starting at
// subarray index base to realize the given shape for owner id. It returns
// an error if any targeted subarray is staged for a different owner in
// the same staging round (overlapping allocation).
func (s *ChipState) StageShape(base int, shape Shape, owner int) error {
	need := shape.Subarrays()
	if base < 0 || base+need > len(s.Next) {
		return fmt.Errorf("arch: shape %v needs subarrays [%d,%d), chip has %d",
			shape, base, base+need, len(s.Next))
	}
	// Within a cluster, chain subarrays in serpentine order: alternate
	// activation direction per logical row so the ring bus carries the
	// stream between row ends (the omni-directional pattern of Fig 4).
	idx := base
	for g := 0; g < shape.Clusters; g++ {
		for h := 0; h < shape.H; h++ {
			for w := 0; w < shape.W; w++ {
				c := SubarrayConfig{
					ActReverse: h%2 == 1,
					LinkE:      w < shape.W-1,
					LinkW:      w > 0,
					LinkS:      h < shape.H-1,
					LinkN:      h > 0,
				}
				s.Next[idx] = c
				s.Owner[idx] = owner
				idx++
			}
		}
	}
	return nil
}

// Commit swaps the staged configuration into the active registers,
// modelling the tile-boundary configuration swap.
func (s *ChipState) Commit() {
	copy(s.Current, s.Next)
}

// OwnedBy returns the subarray indices currently owned by owner.
func (s *ChipState) OwnedBy(owner int) []int {
	var idx []int
	for i, o := range s.Owner {
		if o == owner {
			idx = append(idx, i)
		}
	}
	return idx
}

// Release clears ownership of all subarrays held by owner.
func (s *ChipState) Release(owner int) {
	for i, o := range s.Owner {
		if o == owner {
			s.Owner[i] = -1
			s.Next[i] = SubarrayConfig{}
		}
	}
}

// FreeCount returns the number of unowned subarrays.
func (s *ChipState) FreeCount() int {
	n := 0
	for _, o := range s.Owner {
		if o == -1 {
			n++
		}
	}
	return n
}
