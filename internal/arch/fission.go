package arch

import (
	"fmt"
	"sort"
)

// Shape describes one fission configuration of a logical accelerator:
// Clusters independent systolic clusters, each an H×W arrangement of
// subarrays acting as a single logical systolic array of
// (H·SubRows)×(W·SubCols) PEs. For the 16-subarray chip this space
// contains exactly the 15 configurations of the paper's Table II.
type Shape struct {
	Clusters int
	H, W     int // in subarray units
}

// Subarrays returns the number of subarrays the shape occupies.
func (s Shape) Subarrays() int { return s.Clusters * s.H * s.W }

// PERows and PECols return the PE dimensions of one cluster.
func (s Shape) PERows(c Config) int { return s.H * c.SubRows }
func (s Shape) PECols(c Config) int { return s.W * c.SubCols }

// UsesOmniDirectional reports whether realizing the shape requires the
// omni-directional systolic feature: a cluster whose logical row or
// column span exceeds the physical pod grid side must fold its dataflow
// (serpentine chaining over the ring bus, Fig 4), reversing the flow
// direction in alternating subarrays. For the 4×4 subarray grid this
// reproduces Table II's OD-SA Used/Unused labelling exactly.
func (s Shape) UsesOmniDirectional(c Config) bool {
	side := gridSide(c)
	return s.H > side || s.W > side
}

// gridSide returns the side of the (assumed square) physical subarray grid.
func gridSide(c Config) int {
	return c.ArrayRows / c.SubRows
}

// String renders the shape in the paper's Table II notation,
// e.g. "(256x64)-1" for one 256×64-PE cluster.
func (s Shape) String() string {
	return fmt.Sprintf("(%dx%d)-%d", s.H*32, s.W*32, s.Clusters)
}

// Label renders the shape with explicit PE dims for a configuration.
func (s Shape) Label(c Config) string {
	return fmt.Sprintf("(%dx%d)-%d", s.PERows(c), s.PECols(c), s.Clusters)
}

// Valid reports whether the shape is realizable on the configuration:
// power-of-two subarray extents that fit within the chip.
func (s Shape) Valid(c Config) bool {
	n := c.NumSubarrays()
	return s.Clusters >= 1 && s.H >= 1 && s.W >= 1 &&
		isPow2(s.H) && isPow2(s.W) &&
		s.H*s.W <= n && s.Subarrays() <= n
}

func isPow2(x int) bool { return x > 0 && x&(x-1) == 0 }

// EnumerateShapes returns every fission shape available to a logical
// accelerator granted s subarrays: all power-of-two cluster extents
// (h, w) with h·w ≤ s, at every cluster count from 1 to floor(s/(h·w)).
// Fewer-than-maximal clusters matter because each cluster claims its own
// Pod Memory share — a layer whose activations barely fit may prefer two
// big shares over three small ones. Enumerating all counts also makes the
// shape set for s+1 a superset of the set for s, so compiled latency is
// monotone in the allocation. Shapes are returned in a deterministic
// order (largest clusters first, then by H, then W).
func EnumerateShapes(c Config, s int) []Shape {
	n := c.NumSubarrays()
	if s > n {
		s = n
	}
	if s < 1 {
		return nil
	}
	var shapes []Shape
	for h := 1; h <= n; h *= 2 {
		for w := 1; w <= n; w *= 2 {
			if h*w > s {
				continue
			}
			for g := 1; g <= s/(h*w); g++ {
				shapes = append(shapes, Shape{Clusters: g, H: h, W: w})
			}
		}
	}
	sort.Slice(shapes, func(i, j int) bool {
		if shapes[i].Clusters != shapes[j].Clusters {
			return shapes[i].Clusters > shapes[j].Clusters
		}
		if shapes[i].H != shapes[j].H {
			return shapes[i].H < shapes[j].H
		}
		return shapes[i].W < shapes[j].W
	})
	return shapes
}

// MonolithicShape returns the single shape available to a conventional
// (non-fissionable) accelerator: one cluster spanning the whole array.
func MonolithicShape(c Config) Shape {
	return Shape{Clusters: 1, H: c.ArrayRows / c.SubRows, W: c.ArrayCols / c.SubCols}
}

// EnumerateChipScenarios returns the chip-level co-location scenarios:
// the unordered partitions of the chip's subarrays into logical
// accelerator sizes. Each scenario is a non-increasing list of sizes
// summing to NumSubarrays.
//
// For the 16-subarray chip this enumeration yields 231 partitions; the
// paper reports 65 scenarios, reflecting placement constraints of the
// physical ring-bus floorplan that the paper does not fully specify.
// The scheduler does not depend on this count — it allocates integer
// subarray counts, all of which are realizable.
func EnumerateChipScenarios(c Config) [][]int {
	n := c.NumSubarrays()
	var out [][]int
	var cur []int
	var rec func(remaining, maxPart int)
	rec = func(remaining, maxPart int) {
		if remaining == 0 {
			out = append(out, append([]int(nil), cur...))
			return
		}
		limit := maxPart
		if remaining < limit {
			limit = remaining
		}
		for p := limit; p >= 1; p-- {
			cur = append(cur, p)
			rec(remaining-p, p)
			cur = cur[:len(cur)-1]
		}
	}
	rec(n, n)
	return out
}
