package arch

import (
	"testing"
	"testing/quick"
)

func TestRouteAllFullChipShapes(t *testing.T) {
	// Every Table II configuration must route and validate.
	cfg := Planaria()
	for _, sh := range EnumerateShapes(cfg, 16) {
		p, err := Route(cfg, sh, 0)
		if err != nil {
			t.Fatalf("%v: %v", sh, err)
		}
		if err := p.Validate(); err != nil {
			t.Errorf("%v: %v", sh, err)
		}
		ah, ph := p.HopCount()
		if ah != sh.W-1 || ph != sh.H-1 {
			t.Errorf("%v: hops = (%d,%d)", sh, ah, ph)
		}
	}
}

func TestRouteSerpentineDirections(t *testing.T) {
	cfg := Planaria()
	p, err := Route(cfg, Shape{Clusters: 1, H: 4, W: 4}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for h := 0; h < 4; h++ {
		for w := 0; w < 4; w++ {
			c := p.Configs[h*4+w]
			if c.ActReverse != (h%2 == 1) {
				t.Errorf("row %d col %d: ActReverse = %v", h, w, c.ActReverse)
			}
		}
	}
}

func TestRouteRejectsBadPlacements(t *testing.T) {
	cfg := Planaria()
	if _, err := Route(cfg, Shape{Clusters: 1, H: 4, W: 4}, 1); err == nil {
		t.Error("placement past chip end accepted")
	}
	if _, err := Route(cfg, Shape{Clusters: 1, H: 3, W: 1}, 0); err == nil {
		t.Error("non-power-of-two extent accepted")
	}
	if _, err := Route(cfg, Shape{Clusters: 0, H: 1, W: 1}, 0); err == nil {
		t.Error("zero clusters accepted")
	}
	if _, err := Route(cfg, Shape{Clusters: 1, H: 1, W: 1}, -1); err == nil {
		t.Error("negative base accepted")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	cfg := Planaria()
	mutations := []func(*Placement){
		func(p *Placement) { p.Configs[0].LinkE = false },     // broken horizontal
		func(p *Placement) { p.Configs[1].LinkW = false },     // one-sided link
		func(p *Placement) { p.Configs[0].LinkS = false },     // broken vertical
		func(p *Placement) { p.Configs[0].LinkN = true },      // dangling north
		func(p *Placement) { p.Configs[0].ActReverse = true }, // wrong direction
		func(p *Placement) { p.Configs = p.Configs[:3] },      // truncated
	}
	for i, mutate := range mutations {
		p, err := Route(cfg, Shape{Clusters: 1, H: 2, W: 2}, 0)
		if err != nil {
			t.Fatal(err)
		}
		mutate(p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d: corrupted placement validated", i)
		}
	}
}

func TestRouteAllScenario(t *testing.T) {
	// A heterogeneous co-location (Fig 1c style): one 8-subarray, one
	// 4-subarray, and four 1-subarray logical accelerators.
	cfg := Planaria()
	shapes := []Shape{
		{Clusters: 1, H: 2, W: 4},
		{Clusters: 4, H: 1, W: 1},
		{Clusters: 1, H: 1, W: 1},
		{Clusters: 1, H: 1, W: 1},
		{Clusters: 1, H: 1, W: 1},
		{Clusters: 1, H: 1, W: 1},
	}
	ps, err := RouteAll(cfg, shapes)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, p := range ps {
		for _, s := range p.Subarrays {
			if seen[s] {
				t.Fatalf("subarray %d placed twice", s)
			}
			seen[s] = true
		}
	}
	if len(seen) != 16 {
		t.Fatalf("scenario covers %d subarrays, want 16", len(seen))
	}
}

func TestRouteAllOverflow(t *testing.T) {
	cfg := Planaria()
	if _, err := RouteAll(cfg, []Shape{
		{Clusters: 1, H: 4, W: 4},
		{Clusters: 1, H: 1, W: 1},
	}); err == nil {
		t.Fatal("17-subarray scenario accepted")
	}
}

func TestRoutePropertyAllPartialShapes(t *testing.T) {
	cfg := Planaria()
	f := func(raw, b uint8) bool {
		s := int(raw)%16 + 1
		shapes := EnumerateShapes(cfg, s)
		sh := shapes[int(b)%len(shapes)]
		base := int(b) % (16 - sh.Subarrays() + 1)
		p, err := Route(cfg, sh, base)
		if err != nil {
			return false
		}
		return p.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPodMemoryClaimRelease(t *testing.T) {
	cfg := Planaria()
	pm := NewPodMemory(cfg)
	if pm.Banks != 4 {
		t.Fatalf("banks = %d, want 4", pm.Banks)
	}
	if pm.BankBytes != cfg.PodMemBytes()/4 {
		t.Fatalf("bank bytes = %d", pm.BankBytes)
	}
	got, err := pm.Claim(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got != 3*pm.BankBytes {
		t.Fatalf("claimed %d bytes", got)
	}
	if pm.FreeActBanks() != 1 || pm.FreeOutBanks() != 1 {
		t.Fatalf("free = %d/%d", pm.FreeActBanks(), pm.FreeOutBanks())
	}
	// Over-claim fails without side effects.
	if _, err := pm.Claim(2, 2); err == nil {
		t.Fatal("over-claim accepted")
	}
	if pm.FreeActBanks() != 1 {
		t.Fatal("failed claim had side effects")
	}
	pm.Release(1)
	if pm.FreeActBanks() != 4 || pm.FreeOutBanks() != 4 {
		t.Fatal("release incomplete")
	}
}

func TestPodMemoryBadArgs(t *testing.T) {
	pm := NewPodMemory(Planaria())
	if _, err := pm.Claim(-1, 1); err == nil {
		t.Error("negative owner accepted")
	}
	if _, err := pm.Claim(1, 0); err == nil {
		t.Error("zero-bank claim accepted")
	}
}

func TestPodSetSpanningClaim(t *testing.T) {
	cfg := Planaria()
	ps := NewPodSet(cfg)
	// A logical accelerator spanning pod 0 entirely and half of pod 1
	// (the paper's cross-pod composition).
	idx := []int{0, 1, 2, 3, 4, 5}
	got, err := ps.ClaimForSubarrays(7, idx)
	if err != nil {
		t.Fatal(err)
	}
	if got <= 0 {
		t.Fatal("no capacity claimed")
	}
	if ps.FreeBanks() != 16-6 {
		t.Fatalf("free banks = %d, want 10", ps.FreeBanks())
	}
	// A conflicting claim on pod 0 fails atomically.
	if _, err := ps.ClaimForSubarrays(8, []int{0, 1}); err == nil {
		t.Fatal("conflicting claim accepted")
	}
	if ps.FreeBanks() != 10 {
		t.Fatalf("failed claim leaked banks: %d", ps.FreeBanks())
	}
	ps.Release(7)
	if ps.FreeBanks() != 16 {
		t.Fatal("release incomplete")
	}
}

func TestPodSetRejectsBadIndex(t *testing.T) {
	ps := NewPodSet(Planaria())
	if _, err := ps.ClaimForSubarrays(1, []int{99}); err == nil {
		t.Fatal("out-of-range subarray accepted")
	}
}

func TestCrossbarSelect(t *testing.T) {
	c, err := CrossbarSelect([2]int{1, 3}, [2]int{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	rt := UnpackPodMemConfig(c.Pack())
	if rt != c {
		t.Fatalf("crossbar selection round trip: %+v != %+v", rt, c)
	}
	if _, err := CrossbarSelect([2]int{4, 0}, [2]int{0, 0}); err == nil {
		t.Fatal("out-of-range port accepted")
	}
}
