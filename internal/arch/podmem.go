package arch

import "fmt"

// PodMemory models one Fission Pod's shared memory substrate (§IV-B):
// the activation and output buffers relocated from the monolithic
// design's edges into the pod, split into banks, and connected to the
// pod's subarrays through the two 4×4 crossbars. The allocator hands
// banks to logical accelerators; the compiler's per-cluster buffer share
// (model.actShare) corresponds to the banks a cluster can claim here.
type PodMemory struct {
	// Banks is the number of independently assignable banks per buffer.
	Banks int
	// BankBytes is the capacity of one bank.
	BankBytes int64
	// actOwner/outOwner track bank ownership (-1 = free).
	actOwner []int
	outOwner []int
}

// NewPodMemory splits a pod's memory into banks. The evaluated
// configuration gives each pod (6 MB activation + 2 MB output)/4 pods,
// split into one bank per subarray by default.
func NewPodMemory(cfg Config) *PodMemory {
	banks := cfg.SubarraysPerPod()
	p := &PodMemory{
		Banks:     banks,
		BankBytes: cfg.PodMemBytes() / int64(banks),
		actOwner:  make([]int, banks),
		outOwner:  make([]int, banks),
	}
	for i := 0; i < banks; i++ {
		p.actOwner[i] = -1
		p.outOwner[i] = -1
	}
	return p
}

// FreeActBanks returns the number of unowned activation banks.
func (p *PodMemory) FreeActBanks() int { return countFree(p.actOwner) }

// FreeOutBanks returns the number of unowned output banks.
func (p *PodMemory) FreeOutBanks() int { return countFree(p.outOwner) }

func countFree(owner []int) int {
	n := 0
	for _, o := range owner {
		if o == -1 {
			n++
		}
	}
	return n
}

// Claim assigns n activation banks and n output banks to owner,
// returning the claimed activation capacity. It fails without side
// effects when the pod cannot satisfy the request.
func (p *PodMemory) Claim(owner, n int) (int64, error) {
	if owner < 0 {
		return 0, fmt.Errorf("arch: pod memory owner must be non-negative")
	}
	if n <= 0 {
		return 0, fmt.Errorf("arch: pod memory claim of %d banks", n)
	}
	if p.FreeActBanks() < n || p.FreeOutBanks() < n {
		return 0, fmt.Errorf("arch: pod memory has %d/%d free act/out banks, need %d",
			p.FreeActBanks(), p.FreeOutBanks(), n)
	}
	claimed := 0
	for i := 0; i < p.Banks && claimed < n; i++ {
		if p.actOwner[i] == -1 {
			p.actOwner[i] = owner
			claimed++
		}
	}
	claimed = 0
	for i := 0; i < p.Banks && claimed < n; i++ {
		if p.outOwner[i] == -1 {
			p.outOwner[i] = owner
			claimed++
		}
	}
	return int64(n) * p.BankBytes, nil
}

// Release frees every bank held by owner.
func (p *PodMemory) Release(owner int) {
	for i := range p.actOwner {
		if p.actOwner[i] == owner {
			p.actOwner[i] = -1
		}
	}
	for i := range p.outOwner {
		if p.outOwner[i] == owner {
			p.outOwner[i] = -1
		}
	}
}

// CrossbarSelect derives the pod-memory crossbar register (PodMemConfig)
// for a pod whose activation banks 0..1 and output banks 0..1 feed the
// given subarray ports. Ports are pod-local subarray indices.
func CrossbarSelect(actPorts, outPorts [2]int) (PodMemConfig, error) {
	var c PodMemConfig
	for i, p := range actPorts {
		if p < 0 || p > 3 {
			return c, fmt.Errorf("arch: crossbar act port %d out of range", p)
		}
		c.ActPort[i] = uint8(p)
	}
	for i, p := range outPorts {
		if p < 0 || p > 3 {
			return c, fmt.Errorf("arch: crossbar out port %d out of range", p)
		}
		c.OutPort[i] = uint8(p)
	}
	return c, nil
}

// PodSet is the chip's four pod memories plus a bank-level view of a
// logical accelerator's claim across pods (a logical accelerator may span
// parts of several pods, §IV-C).
type PodSet struct {
	cfg  Config
	Pods []*PodMemory
}

// NewPodSet builds the chip's pod memories.
func NewPodSet(cfg Config) *PodSet {
	ps := &PodSet{cfg: cfg}
	for i := 0; i < cfg.Pods; i++ {
		ps.Pods = append(ps.Pods, NewPodMemory(cfg))
	}
	return ps
}

// ClaimForSubarrays claims one activation and one output bank for each
// subarray index in idx (banks live in the subarray's pod). Fails —
// releasing any partial claim — if a pod is exhausted.
func (ps *PodSet) ClaimForSubarrays(owner int, idx []int) (int64, error) {
	perPod := ps.cfg.SubarraysPerPod()
	need := make(map[int]int)
	for _, i := range idx {
		if i < 0 || i >= ps.cfg.NumSubarrays() {
			return 0, fmt.Errorf("arch: subarray %d out of range", i)
		}
		need[i/perPod]++
	}
	var total int64
	for pod, n := range need {
		got, err := ps.Pods[pod].Claim(owner, n)
		if err != nil {
			ps.Release(owner)
			return 0, fmt.Errorf("arch: pod %d: %w", pod, err)
		}
		total += got
	}
	return total, nil
}

// Release frees the owner's banks across all pods.
func (ps *PodSet) Release(owner int) {
	for _, p := range ps.Pods {
		p.Release(owner)
	}
}

// FreeBanks returns the chip-wide free activation-bank count.
func (ps *PodSet) FreeBanks() int {
	n := 0
	for _, p := range ps.Pods {
		n += p.FreeActBanks()
	}
	return n
}
