package arch

import (
	"testing"
	"testing/quick"
)

func TestPlanariaConfig(t *testing.T) {
	c := Planaria()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.NumSubarrays() != 16 {
		t.Errorf("NumSubarrays = %d, want 16", c.NumSubarrays())
	}
	if c.SubarraysPerPod() != 4 {
		t.Errorf("SubarraysPerPod = %d, want 4", c.SubarraysPerPod())
	}
	if total := c.ActBufBytes + c.WgtBufBytes + c.OutBufBytes; total != 12<<20 {
		t.Errorf("total SRAM = %d, want 12 MB", total)
	}
	if c.WeightBufPerSubarray() != (4<<20)/16 {
		t.Errorf("WeightBufPerSubarray = %d", c.WeightBufPerSubarray())
	}
}

func TestMonolithicConfig(t *testing.T) {
	c := Monolithic()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.NumSubarrays() != 1 {
		t.Errorf("monolithic NumSubarrays = %d, want 1", c.NumSubarrays())
	}
	sh := MonolithicShape(c)
	if sh.PERows(c) != 128 || sh.PECols(c) != 128 {
		t.Errorf("monolithic shape = %dx%d PEs", sh.PERows(c), sh.PECols(c))
	}
}

func TestGranularitySweep(t *testing.T) {
	for g, want := range map[int]int{16: 64, 32: 16, 64: 4} {
		c := Planaria().WithGranularity(g)
		if err := c.Validate(); err != nil {
			t.Fatalf("g=%d: %v", g, err)
		}
		if c.NumSubarrays() != want {
			t.Errorf("g=%d: NumSubarrays = %d, want %d", g, c.NumSubarrays(), want)
		}
	}
}

func TestEnumerateShapesFull(t *testing.T) {
	c := Planaria()
	shapes := EnumerateShapes(c, 16)
	// Shapes that occupy the whole chip are exactly Table II's 15
	// configurations; of those, 6 need the omni-directional feature.
	full, odUsed := 0, 0
	for _, s := range shapes {
		if s.Subarrays() == 16 {
			full++
			if s.UsesOmniDirectional(c) {
				odUsed++
				if s.H <= 4 && s.W <= 4 {
					t.Errorf("shape %v should not need omni-directional", s)
				}
			}
		}
	}
	if full != 15 {
		t.Fatalf("full-chip shape count = %d, want 15 (Table II)", full)
	}
	if odUsed != 6 {
		t.Errorf("omni-directional full-chip shapes = %d, want 6 (Table II)", odUsed)
	}
}

func TestEnumerateShapesSuperset(t *testing.T) {
	// The shape set for s+1 subarrays must contain every shape available
	// at s (this is what makes compiled latency monotone in allocation).
	c := Planaria()
	for s := 1; s < 16; s++ {
		have := map[Shape]bool{}
		for _, sh := range EnumerateShapes(c, s+1) {
			have[sh] = true
		}
		for _, sh := range EnumerateShapes(c, s) {
			if !have[sh] {
				t.Fatalf("shape %v available at s=%d but not s=%d", sh, s, s+1)
			}
		}
	}
}

func TestEnumerateShapesPartial(t *testing.T) {
	c := Planaria()
	for s := 1; s <= 16; s++ {
		shapes := EnumerateShapes(c, s)
		if len(shapes) == 0 {
			t.Fatalf("no shapes for %d subarrays", s)
		}
		for _, sh := range shapes {
			if !sh.Valid(c) {
				t.Errorf("s=%d: invalid shape %v", s, sh)
			}
			if sh.Subarrays() > s {
				t.Errorf("s=%d: shape %v uses %d subarrays", s, sh, sh.Subarrays())
			}
		}
	}
}

func TestEnumerateShapesProperty(t *testing.T) {
	c := Planaria()
	f := func(raw uint8) bool {
		s := int(raw)%16 + 1
		for _, sh := range EnumerateShapes(c, s) {
			if !isPow2(sh.H) || !isPow2(sh.W) {
				return false
			}
			if sh.Clusters < 1 || sh.Clusters > s/(sh.H*sh.W) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShapeString(t *testing.T) {
	s := Shape{Clusters: 2, H: 8, W: 1}
	if got := s.String(); got != "(256x32)-2" {
		t.Errorf("String = %q, want (256x32)-2", got)
	}
}

func TestChipScenarios(t *testing.T) {
	c := Planaria()
	sc := EnumerateChipScenarios(c)
	// Integer partitions of 16.
	if len(sc) != 231 {
		t.Fatalf("scenario count = %d, want 231 partitions of 16", len(sc))
	}
	for _, parts := range sc {
		sum := 0
		prev := 17
		for _, p := range parts {
			if p < 1 || p > 16 || p > prev {
				t.Fatalf("malformed partition %v", parts)
			}
			prev = p
			sum += p
		}
		if sum != 16 {
			t.Fatalf("partition %v sums to %d", parts, sum)
		}
	}
}

func TestSubarrayConfigRoundTrip(t *testing.T) {
	f := func(b uint8) bool {
		b &= 0x3F // 6-bit register
		return UnpackSubarrayConfig(b).Pack() == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPodMemConfigRoundTrip(t *testing.T) {
	f := func(b uint8) bool {
		return UnpackPodMemConfig(b).Pack() == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestChipStateStaging(t *testing.T) {
	c := Planaria()
	st := NewChipState(c)
	shape := Shape{Clusters: 1, H: 2, W: 2}
	if err := st.StageShape(0, shape, 7); err != nil {
		t.Fatal(err)
	}
	if got := len(st.OwnedBy(7)); got != 4 {
		t.Fatalf("owner 7 owns %d subarrays, want 4", got)
	}
	if st.FreeCount() != 12 {
		t.Fatalf("FreeCount = %d, want 12", st.FreeCount())
	}
	// Active registers change only at Commit.
	if st.Current[0] != (SubarrayConfig{}) {
		t.Fatal("Current changed before Commit")
	}
	st.Commit()
	if st.Current[0].LinkE != true || st.Current[0].LinkS != true {
		t.Fatalf("top-left subarray links = %+v", st.Current[0])
	}
	st.Release(7)
	if st.FreeCount() != 16 {
		t.Fatalf("FreeCount after release = %d, want 16", st.FreeCount())
	}
}

func TestChipStateSerpentine(t *testing.T) {
	c := Planaria()
	st := NewChipState(c)
	// A 1×(2 rows × 4 cols) cluster: the second logical row must run
	// activations right-to-left (serpentine).
	if err := st.StageShape(0, Shape{Clusters: 1, H: 2, W: 4}, 1); err != nil {
		t.Fatal(err)
	}
	st.Commit()
	if st.Current[0].ActReverse {
		t.Error("row 0 should flow left-to-right")
	}
	if !st.Current[4].ActReverse {
		t.Error("row 1 should flow right-to-left (omni-directional)")
	}
}

func TestChipStateBounds(t *testing.T) {
	st := NewChipState(Planaria())
	if err := st.StageShape(14, Shape{Clusters: 1, H: 2, W: 2}, 1); err == nil {
		t.Fatal("expected out-of-range error")
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	bad := []Config{
		{},
		func() Config { c := Planaria(); c.SubRows = 33; return c }(),
		func() Config { c := Planaria(); c.Pods = 3; return c }(),
		func() Config { c := Planaria(); c.FreqMHz = 0; return c }(),
		func() Config { c := Planaria(); c.DRAMBandwidthGBs = 0; return c }(),
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted %v", i, c)
		}
	}
}
