package refission

import (
	"math/rand"
	"testing"
)

// planInvariants asserts the planner contract on one (cands, capacity,
// out) triple: allocations stay in range, no subarray is assigned
// twice, voluntary shrinks never go below the effective minimum, the
// chip never idles with work present, and leftover capacity only
// remains when every task is at its useful maximum.
func planInvariants(t *testing.T, cands []Candidate, capacity int, out []int) {
	t.Helper()
	sum := 0
	baseSum := 0
	for i, c := range cands {
		if out[i] < 0 || out[i] > capacity {
			t.Fatalf("cand %d: allocation %d outside [0,%d]", i, out[i], capacity)
		}
		sum += out[i]
		b := c.Cur
		if b < 0 {
			b = 0
		}
		if b > capacity {
			b = capacity
		}
		baseSum += b
	}
	if sum > capacity {
		t.Fatalf("over-allocated: Σ=%d > capacity %d (one subarray on two tasks)", sum, capacity)
	}
	if baseSum <= capacity {
		// No capacity deficit: nothing may be shrunk below min(Cur, Min'),
		// except a full eviction (to exactly 0) funding a strictly
		// higher-scored task that was starved on input.
		for i, c := range cands {
			b := c.Cur
			if b > capacity {
				b = capacity
			}
			floor := clampMin(&cands[i], capacity)
			if b < floor {
				floor = b
			}
			if out[i] >= floor {
				continue
			}
			// Below the floor: legal only as an eviction (the top-up pass
			// may hand a victim part of the surplus back, so any value
			// under the floor is possible, not just 0).
			justified := false
			for j, d := range cands {
				if j == i {
					continue
				}
				base := d.Cur
				if base < 0 {
					base = 0
				}
				starved := base < clampMin(&cands[j], capacity)
				outscores := d.Score > c.Score || (d.Score == c.Score && d.ID < c.ID)
				if starved && outscores {
					justified = true
					break
				}
			}
			if !justified {
				t.Fatalf("cand %d (cur %d, min %d, score %g): at %d below floor %d with no outscoring starved task",
					i, c.Cur, c.Min, c.Score, out[i], floor)
			}
		}
	}
	if capacity > 0 && len(cands) > 0 && sum == 0 {
		t.Fatalf("chip idles with %d tasks and capacity %d", len(cands), capacity)
	}
	// Work conservation: leftover free implies everyone is at Max'.
	if sum < capacity {
		for i := range cands {
			if out[i] < clampMax(&cands[i], capacity) {
				t.Fatalf("cand %d at %d below max %d with %d subarrays free",
					i, out[i], clampMax(&cands[i], capacity), capacity-sum)
			}
		}
	}
}

func plan(t *testing.T, p *Planner, cands []Candidate, capacity int) []int {
	t.Helper()
	out := make([]int, len(cands))
	p.Plan(cands, capacity, out)
	planInvariants(t, cands, capacity, out)
	return out
}

func TestPlanTable(t *testing.T) {
	var p Planner
	cases := []struct {
		name     string
		cands    []Candidate
		capacity int
		want     []int
	}{
		{
			name:     "empty-capacity",
			cands:    []Candidate{{ID: 1, Cur: 4, Min: 2, Max: 16, Score: 1}},
			capacity: 0,
			want:     []int{0},
		},
		{
			name:     "single-arrival-takes-chip",
			cands:    []Candidate{{ID: 1, Cur: 0, Min: 3, Max: 16, Score: 1}},
			capacity: 16,
			want:     []int{16}, // Min granted, then topped up to Max
		},
		{
			name: "steady-state-no-change",
			cands: []Candidate{
				{ID: 1, Cur: 10, Min: 4, Max: 16, Score: 2, Headroom: 0.001, Margin: 0.01},
				{ID: 2, Cur: 6, Min: 6, Max: 16, Score: 1, Headroom: 0.0, Margin: 0.01},
			},
			capacity: 16,
			want:     []int{10, 6}, // nobody starved: the plan re-issues Cur exactly
		},
		{
			name: "arrival-absorbed-by-donor",
			cands: []Candidate{
				{ID: 1, Cur: 12, Min: 4, Max: 16, Score: 1, Headroom: 0.05, Margin: 0.01},
				{ID: 2, Cur: 0, Min: 8, Max: 16, Score: 3},
			},
			capacity: 16,
			// Arrival needs 8 with nothing free, and it outscores the
			// comfortable donor: the donor funds the grant and the
			// rebalance pass hands its remaining spares over too, leaving
			// it at its (still deadline-meeting) minimum.
			want: []int{4, 12},
		},
		{
			name: "reluctant-donor-still-funds-feasible-grant",
			cands: []Candidate{
				{ID: 1, Cur: 16, Min: 4, Max: 16, Score: 1, Headroom: 0.001, Margin: 0.01},
				{ID: 2, Cur: 0, Min: 8, Max: 16, Score: 3},
			},
			capacity: 16,
			// The incumbent's headroom is under its margin, but its Min
			// still meets its deadline: both minima fit, so the arrival is
			// served rather than stalled — the spatial fit path's decision.
			want: []int{8, 8},
		},
		{
			name: "comfortable-donor-gives-before-tight-one",
			cands: []Candidate{
				{ID: 1, Cur: 8, Min: 2, Max: 16, Score: 1, Headroom: 0.001, Margin: 0.01},
				{ID: 2, Cur: 8, Min: 2, Max: 16, Score: 1, Headroom: 0.05, Margin: 0.01},
				{ID: 3, Cur: 0, Min: 4, Max: 16, Score: 3},
			},
			capacity: 16,
			// Task 2 clears its margin and covers the whole grant alone —
			// the tight task 1 never moves — and the rebalance then hands
			// task 2's last spares to the outscoring arrival as well.
			want: []int{8, 2, 6},
		},
		{
			name: "urgent-grant-evicts-outscored-then-refunds",
			cands: []Candidate{
				{ID: 1, Cur: 10, Min: 6, Max: 16, Score: 0.5, Headroom: 0.001, Margin: 0.01},
				{ID: 2, Cur: 6, Min: 4, Max: 16, Score: 5, Headroom: 0.05, Margin: 0.01},
				{ID: 3, Cur: 0, Min: 12, Max: 16, Score: 10},
			},
			capacity: 16,
			// Donation tops out at 6 of the 12 the urgent arrival needs, so
			// both outscored incumbents are evicted (lowest score first);
			// the 4-subarray surplus immediately re-admits task 2 at its
			// minimum, while the least urgent task waits.
			want: []int{0, 4, 12},
		},
		{
			name: "capacity-deficit-peels-largest",
			cands: []Candidate{
				{ID: 1, Cur: 10, Min: 2, Max: 16, Score: 1, Headroom: -1, Margin: 0},
				{ID: 2, Cur: 6, Min: 2, Max: 16, Score: 2, Headroom: -1, Margin: 0},
			},
			capacity: 8,
			// 16 held, 8 alive: the largest (lowest-score ties) sheds
			// first. No donors (negative headroom), mins still fit.
			want: []int{4, 4},
		},
		{
			name: "nothing-running-grants-remaining",
			cands: []Candidate{
				{ID: 1, Cur: 0, Min: 10, Max: 10, Score: 2},
				{ID: 2, Cur: 0, Min: 10, Max: 10, Score: 1},
			},
			capacity: 12,
			// Top score reaches Min; the second cannot (needs 10, 2
			// left) but top-up keeps the chip fully busy.
			want: []int{10, 2},
		},
		{
			name: "min-clamped-to-capacity",
			cands: []Candidate{
				{ID: 1, Cur: 0, Min: 32, Max: 32, Score: 1},
			},
			capacity: 4,
			want:     []int{4},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := plan(t, &p, tc.cands, tc.capacity)
			for i := range tc.want {
				if got[i] != tc.want[i] {
					t.Fatalf("plan %v, want %v", got, tc.want)
				}
			}
		})
	}
}

// randCands draws a random but reproducible candidate set, rapid-style:
// schedules of up to 12 tasks over a 16-subarray chip with arbitrary
// current allocations, minima, headrooms, and scores.
func randCands(rng *rand.Rand) ([]Candidate, int) {
	n := 1 + rng.Intn(12)
	capacity := rng.Intn(17)
	cands := make([]Candidate, n)
	for i := range cands {
		mx := 1 + rng.Intn(16)
		mn := 1 + rng.Intn(mx)
		cands[i] = Candidate{
			ID:       i*7 + rng.Intn(3), // occasionally colliding IDs must stay deterministic
			Cur:      rng.Intn(20) - 2,  // includes negatives and over-capacity
			Min:      mn,
			Max:      mx,
			Score:    float64(rng.Intn(10)) / (1e-3 + rng.Float64()),
			Headroom: rng.NormFloat64() * 0.01,
			Margin:   rng.Float64() * 0.01,
		}
	}
	return cands, capacity
}

// TestPlanRandomizedProperties drives the planner through seeded random
// schedules and checks every invariant plus run-to-run determinism.
func TestPlanRandomizedProperties(t *testing.T) {
	for seed := int64(1); seed <= 200; seed++ {
		rng := rand.New(rand.NewSource(seed))
		cands, capacity := randCands(rng)
		var p1, p2 Planner
		out1 := plan(t, &p1, cands, capacity)
		out2 := plan(t, &p2, cands, capacity)
		for i := range out1 {
			if out1[i] != out2[i] {
				t.Fatalf("seed %d: nondeterministic plan %v vs %v", seed, out1, out2)
			}
		}
		// A warm planner (scratch already grown) must agree too.
		out3 := plan(t, &p1, cands, capacity)
		for i := range out1 {
			if out1[i] != out3[i] {
				t.Fatalf("seed %d: warm planner diverged %v vs %v", seed, out1, out3)
			}
		}
	}
}

// TestPlanStability pins the churn-suppression property the engine's
// reallocation penalty rewards: re-planning an already-feasible plan
// changes nothing.
func TestPlanStability(t *testing.T) {
	var p Planner
	for seed := int64(1); seed <= 100; seed++ {
		rng := rand.New(rand.NewSource(seed))
		cands, capacity := randCands(rng)
		out := plan(t, &p, cands, capacity)
		// Feed the plan back as the current state.
		next := make([]Candidate, len(cands))
		copy(next, cands)
		for i := range next {
			next[i].Cur = out[i]
		}
		out2 := plan(t, &p, next, capacity)
		for i := range out {
			if out[i] != out2[i] {
				t.Fatalf("seed %d: fixed point violated: %v re-plans to %v", seed, out, out2)
			}
		}
	}
}

// FuzzElasticDecision fuzzes the planner over (headroom, capacity,
// fault-mask) tuples: the mask's population count is the alive
// capacity, and the seeded candidate set varies with the structure
// byte. Every accepted input must satisfy the full invariant set and
// plan identically twice.
func FuzzElasticDecision(f *testing.F) {
	f.Add(int64(1), uint16(0xFFFF), 0.01, 0.001, uint8(3))
	f.Add(int64(7), uint16(0x00FF), -0.02, 0.0, uint8(1))
	f.Add(int64(42), uint16(0x0001), 0.5, 0.25, uint8(9))
	f.Fuzz(func(t *testing.T, seed int64, mask uint16, headroom, margin float64, n uint8) {
		// The fault mask determines alive capacity, exactly as the
		// engine passes the injector's alive count to the policy.
		capacity := 0
		for m := mask; m != 0; m &= m - 1 {
			capacity++
		}
		if headroom != headroom || margin != margin { // NaN: planner requires finite inputs
			t.Skip()
		}
		rng := rand.New(rand.NewSource(seed))
		tasks := 1 + int(n%12)
		cands := make([]Candidate, tasks)
		for i := range cands {
			mx := 1 + rng.Intn(16)
			cands[i] = Candidate{
				ID:       i,
				Cur:      rng.Intn(18) - 1,
				Min:      1 + rng.Intn(mx),
				Max:      mx,
				Score:    float64(rng.Intn(8)) * (0.1 + rng.Float64()),
				Headroom: headroom * float64(1+i%3),
				Margin:   margin,
			}
		}
		var p Planner
		out := make([]int, tasks)
		p.Plan(cands, capacity, out)
		planInvariants(t, cands, capacity, out)
		out2 := make([]int, tasks)
		p.Plan(cands, capacity, out2)
		for i := range out {
			if out[i] != out2[i] {
				t.Fatalf("nondeterministic plan: %v vs %v", out, out2)
			}
		}
	})
}
