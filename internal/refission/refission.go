// Package refission implements the elastic re-fission planner
// (DESIGN.md §16): given each in-flight task's current allocation, the
// minimum allocation that still meets its deadline, and its QoS
// headroom, the planner produces a new allocation vector that grows
// starved tasks into freed subarrays and shrinks tasks beating their
// SLA — instead of queueing, shedding, or fully preempting. The planner
// is pure and deterministic: the same candidates and capacity always
// yield the same plan, with every tie broken by task ID. Simulated-time
// inputs only; the package holds no clocks and no global randomness.
package refission

import "sort"

// Candidate describes one in-flight task to the planner.
type Candidate struct {
	// ID is the task's unique request ID, the deterministic tie-break.
	ID int
	// Cur is the task's current subarray allocation (0 = stalled).
	Cur int
	// Min is the smallest allocation whose projected completion meets
	// the task's deadline (Algorithm 1's ESTIMATERESOURCES); treated as
	// at least 1 and at most Max.
	Min int
	// Max is the largest useful allocation (the chain-capped maximum
	// under the current fault mask); treated as at least 1.
	Max int
	// Score is the admission urgency (higher is served first), the same
	// priority/(slack·demand) score the spatial scheduler's unfit path
	// competes on. Must be finite.
	Score float64
	// Headroom is the projected finish margin at Cur: slack minus the
	// predicted remaining time on Cur subarrays. Tasks with Headroom at
	// or above Margin donate first (most comfortable first); tasks below
	// the margin donate only as a last resort, and never below Min.
	Headroom float64
	// Margin is the comfort deadband: donors at or above it absorb the
	// shrink's own reconfiguration penalty without risk, so they fund
	// grants before anyone tighter has to move.
	Margin float64
}

// Planner computes re-fission plans. The zero value is ready to use;
// scratch buffers are reused across Plan calls, so a single goroutine
// should own each Planner (the engine invokes policies from one
// goroutine, matching this contract).
type Planner struct {
	order      []int
	donors     []int
	victims    []int
	scoreSort  scoreSorter
	headerSort headroomSorter
	victimSort victimSorter
	topupSort  topupSorter
}

// Plan writes the new allocation for cands[i] into out[i] (len(out)
// must equal len(cands)). The plan obeys, in priority order:
//
//  1. Feasibility: every out[i] is in [0, capacity] and Σ out ≤
//     capacity — no subarray is ever assigned to two tasks.
//  2. Stability: a task keeps Cur unless capacity fell below the
//     current total or a donation/grant changes it. Voluntary shrinks
//     never go below Min; the only ways under it are a capacity
//     deficit (fault masking) and a full eviction (to exactly 0) that
//     funds a strictly higher-scored starved task.
//  3. Demand: starved tasks (below Min) are granted up to Min in score
//     order, funded first from free capacity, then by shrinking donors
//     toward Min — comfortable donors (Headroom ≥ Margin, largest
//     headroom first) before reluctant ones — and as a last resort by
//     evicting strictly lower-scored running tasks outright, lowest
//     score first. The three sources pool: a grant is refused only when
//     free capacity, every donation, and every eviction together cannot
//     cover it. Donation serves every grant that co-locates
//     (Σ Min ≤ capacity) exactly as the spatial fit path would;
//     eviction reproduces the spatial unfit path's admission order, so
//     an urgent arrival never loses the chip to a task it outscores.
//     A fully starved task whose grant cannot reach Min still takes
//     whatever free capacity and donations exist (never an eviction):
//     crawling below Min preserves a late chance at the deadline and
//     minimizes tardiness past it, where idling at zero does neither.
//  4. Work conservation: leftover capacity tops tasks up toward Max,
//     most urgent first, and at least one task runs whenever capacity
//     is positive.
//  5. Urgency: spares held above a comfortable donor's minimum flow to
//     strictly higher-scored tasks below Max, so an urgent task never
//     runs at exactly Min while a relaxed one hoards slack.
//
//perf:hot re-fission decision inside the engine's per-event loop; scratch buffers reused across plans
func (p *Planner) Plan(cands []Candidate, capacity int, out []int) {
	if len(cands) == 0 {
		return
	}
	if capacity <= 0 {
		for i := range out {
			out[i] = 0
		}
		return
	}

	// Base: keep current allocations, clamped to what exists.
	sum := 0
	for i, c := range cands {
		a := c.Cur
		if a < 0 {
			a = 0
		}
		if a > capacity {
			a = capacity
		}
		out[i] = a
		sum += a
	}
	// Capacity deficit (the chip shrank under the running set): peel
	// subarrays off the largest holder, breaking ties toward the lowest
	// score and then the highest ID, until the plan fits.
	for sum > capacity {
		v := -1
		for i := range cands {
			if out[i] == 0 {
				continue
			}
			if v < 0 || out[i] > out[v] ||
				(out[i] == out[v] && (cands[i].Score < cands[v].Score ||
					(cands[i].Score == cands[v].Score && cands[i].ID > cands[v].ID))) {
				v = i
			}
		}
		out[v]--
		sum--
	}
	free := capacity - sum

	// Grant pass: starved tasks reach Min in score order, shrinking
	// donors on demand. A grant that cannot reach Min leaves running
	// tasks untouched, except that a fully starved grantee still takes
	// the free-plus-donation pool as a partial grant — the chip never
	// idles capacity while work is queued.
	if cap(p.order) < len(cands) {
		p.order = make([]int, 0, len(cands))
	}
	order := p.order[:0]
	for i := range cands {
		order = append(order, i)
	}
	p.order = order
	p.scoreSort.idx, p.scoreSort.cands = order, cands
	sort.Sort(&p.scoreSort)
	for _, i := range order {
		m := clampMin(&cands[i], capacity)
		need := m - out[i]
		if need <= 0 {
			continue
		}
		if need > free {
			// Joint feasibility: the donation pool and the evictable pool
			// must cover the shortfall together before either is touched —
			// judging each tier alone would refuse a grant the pair can
			// fund (donors a little short, an outscored task covering the
			// rest), leaving an admissible arrival with nothing.
			short := need - free
			dp := donorPotential(cands, out, capacity)
			ep := evictPotential(cands, out, i)
			if dp+ep >= short {
				if dp > 0 {
					w := short
					if w > dp {
						w = dp
					}
					free += p.shrinkDonors(cands, out, capacity, w)
				}
				if need > free {
					free += p.evictOutscored(cands, out, i, need-free)
				}
			}
		}
		if need <= free {
			out[i] = m
			free -= need
			continue
		}
		// Partial grant: a fully starved task takes whatever free
		// capacity and donations exist rather than idling at zero — the
		// spatial scheduler keeps such a task churning at a small
		// allocation, and crawling below Min both preserves a late
		// chance at the deadline and minimizes tardiness past it.
		// Eviction is excluded: a whole running task is never destroyed
		// to fund a crawl. Donors end at Min, so re-planning the result
		// finds an empty pool and the plan stays a fixed point.
		if out[i] == 0 {
			avail := free + donorPotential(cands, out, capacity)
			if avail > need {
				avail = need
			}
			if avail > 0 {
				if avail > free {
					free += p.shrinkDonors(cands, out, capacity, avail-free)
				}
				out[i] = avail
				free -= avail
			}
		}
	}

	// Top-up pass: leftover capacity flows toward Max, most urgent task
	// first.
	if free > 0 {
		p.topupSort.idx, p.topupSort.cands, p.topupSort.out = order, cands, out
		sort.Sort(&p.topupSort)
		for _, i := range order {
			if free == 0 {
				break
			}
			mx := clampMax(&cands[i], capacity)
			grow := mx - out[i]
			if grow <= 0 {
				continue
			}
			if grow > free {
				grow = free
			}
			out[i] += grow
			free -= grow
		}
	}

	// Rebalance pass: spare subarrays held above a comfortable donor's
	// minimum flow to strictly higher-scored tasks still below Max —
	// the spatial scheduler re-earns every spare by score at each
	// event, and without this step an urgent arrival would run at
	// exactly Min (finishing exactly at its deadline, where any penalty
	// tips it over) while a relaxed incumbent hoards the slack. The
	// Margin deadband keeps tight donors out of the pool, so steady
	// state still re-issues the same plan: after a rebalance every
	// lower-scored comfortable donor is at Min or every receiver is at
	// Max, and re-planning moves nothing.
	p.scoreSort.idx, p.scoreSort.cands = order, cands
	sort.Sort(&p.scoreSort)
	for _, x := range order {
		room := clampMax(&cands[x], capacity) - out[x]
		if room <= 0 {
			continue
		}
		// Donors give in reverse admission order: the least urgent
		// comfortable task parts with its spares first.
		for k := len(order) - 1; k >= 0 && room > 0; k-- {
			y := order[k]
			if y == x || cands[y].Headroom < cands[y].Margin {
				continue
			}
			if !outscores(&cands[x], &cands[y]) {
				continue
			}
			give := out[y] - clampMin(&cands[y], capacity)
			if give <= 0 {
				continue
			}
			if give > room {
				give = room
			}
			out[y] -= give
			out[x] += give
			room -= give
		}
	}
}

// outscores reports whether a ranks strictly ahead of b in the
// admission order (score desc, ID asc).
func outscores(a, b *Candidate) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	return a.ID < b.ID
}

// donorPotential sums what shrinkDonors could free: every subarray held
// above a task's effective minimum.
func donorPotential(cands []Candidate, out []int, capacity int) int {
	potential := 0
	for i := range cands {
		if spare := out[i] - clampMin(&cands[i], capacity); spare > 0 {
			potential += spare
		}
	}
	return potential
}

// evictPotential sums what evictOutscored could free for the grantee at
// index g: the whole allocation of every running task it strictly
// outscores.
func evictPotential(cands []Candidate, out []int, g int) int {
	potential := 0
	gc := &cands[g]
	for i := range cands {
		if i == g || out[i] == 0 {
			continue
		}
		if cands[i].Score < gc.Score ||
			(cands[i].Score == gc.Score && cands[i].ID > gc.ID) {
			potential += out[i]
		}
	}
	return potential
}

// shrinkDonors frees exactly want subarrays by shrinking tasks above
// their minimum toward Min: comfortable donors (Headroom ≥ Margin)
// give first, largest headroom first, and reluctant ones follow only
// when the comfortable pool runs out — Min still meets every donor's
// deadline by construction, so a feasible grant is never refused
// (matching the spatial scheduler's fit path, which squeezes everyone
// to their estimate). The shrink is all-or-nothing: if the whole pool
// cannot cover want, nothing is shrunk and 0 is returned — a doomed
// grant must not perturb the running set, or re-planning the same
// state would churn allocations instead of reaching a fixed point.
func (p *Planner) shrinkDonors(cands []Candidate, out []int, capacity, want int) int {
	if cap(p.donors) < len(cands) {
		p.donors = make([]int, 0, len(cands))
	}
	donors := p.donors[:0]
	potential := 0
	for i := range cands {
		if spare := out[i] - clampMin(&cands[i], capacity); spare > 0 {
			donors = append(donors, i)
			potential += spare
		}
	}
	p.donors = donors
	if potential < want {
		return 0
	}
	p.headerSort.idx, p.headerSort.cands = donors, cands
	sort.Sort(&p.headerSort)
	freed := 0
	for _, i := range donors {
		if freed >= want {
			break
		}
		give := out[i] - clampMin(&cands[i], capacity)
		if give > want-freed {
			give = want - freed
		}
		out[i] -= give
		freed += give
	}
	return freed
}

// evictOutscored frees at least want subarrays for the grantee at
// index g by evicting running tasks the grantee strictly outscores
// (score tie broken toward the lower ID, the admission order), lowest
// score first — the spatial scheduler's unfit path, where tasks below
// the admission cut get nothing. Whole allocations are reclaimed, so
// the freed total may exceed want; the surplus stays in the free pool
// for later grants and the top-up pass. Like the donor shrink, the
// eviction is all-or-nothing: if even the whole outscored pool cannot
// cover want, nobody is evicted and 0 is returned.
func (p *Planner) evictOutscored(cands []Candidate, out []int, g, want int) int {
	if cap(p.victims) < len(cands) {
		p.victims = make([]int, 0, len(cands))
	}
	victims := p.victims[:0]
	potential := 0
	gc := &cands[g]
	for i := range cands {
		if i == g || out[i] == 0 {
			continue
		}
		if cands[i].Score < gc.Score ||
			(cands[i].Score == gc.Score && cands[i].ID > gc.ID) {
			victims = append(victims, i)
			potential += out[i]
		}
	}
	p.victims = victims
	if potential < want {
		return 0
	}
	p.victimSort.idx, p.victimSort.cands = victims, cands
	sort.Sort(&p.victimSort)
	freed := 0
	for _, i := range victims {
		if freed >= want {
			break
		}
		freed += out[i]
		out[i] = 0
	}
	return freed
}

// clampMin returns the candidate's effective minimum: at least 1, at
// most its useful maximum and the chip capacity.
func clampMin(c *Candidate, capacity int) int {
	m := c.Min
	if m < 1 {
		m = 1
	}
	if mx := clampMax(c, capacity); m > mx {
		m = mx
	}
	return m
}

// clampMax returns the candidate's effective maximum: at least 1, at
// most the chip capacity.
func clampMax(c *Candidate, capacity int) int {
	mx := c.Max
	if mx < 1 {
		mx = 1
	}
	if mx > capacity {
		mx = capacity
	}
	return mx
}

// scoreSorter orders candidate indices by (score desc, ID asc) — a
// total order when IDs are unique, so the permutation is stable across
// runs regardless of sorting algorithm.
type scoreSorter struct {
	idx   []int
	cands []Candidate
}

func (x *scoreSorter) Len() int      { return len(x.idx) }
func (x *scoreSorter) Swap(i, j int) { x.idx[i], x.idx[j] = x.idx[j], x.idx[i] }
func (x *scoreSorter) Less(i, j int) bool {
	a, b := &x.cands[x.idx[i]], &x.cands[x.idx[j]]
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	return a.ID < b.ID
}

// headroomSorter orders donor indices by (comfortable first, headroom
// desc, ID asc): tasks whose headroom clears their margin donate before
// anyone tighter has to, and within a tier the most comfortable task
// donates first.
type headroomSorter struct {
	idx   []int
	cands []Candidate
}

func (x *headroomSorter) Len() int      { return len(x.idx) }
func (x *headroomSorter) Swap(i, j int) { x.idx[i], x.idx[j] = x.idx[j], x.idx[i] }
func (x *headroomSorter) Less(i, j int) bool {
	a, b := &x.cands[x.idx[i]], &x.cands[x.idx[j]]
	ac, bc := a.Headroom >= a.Margin, b.Headroom >= b.Margin
	if ac != bc {
		return ac
	}
	if a.Headroom != b.Headroom {
		return a.Headroom > b.Headroom
	}
	return a.ID < b.ID
}

// victimSorter orders eviction candidates by (score asc, ID desc): the
// least urgent task loses the chip first, and on a score tie the later
// arrival (higher ID) loses before the earlier one — the mirror image
// of the admission order.
type victimSorter struct {
	idx   []int
	cands []Candidate
}

func (x *victimSorter) Len() int      { return len(x.idx) }
func (x *victimSorter) Swap(i, j int) { x.idx[i], x.idx[j] = x.idx[j], x.idx[i] }
func (x *victimSorter) Less(i, j int) bool {
	a, b := &x.cands[x.idx[i]], &x.cands[x.idx[j]]
	if a.Score != b.Score {
		return a.Score < b.Score
	}
	return a.ID > b.ID
}

// topupSorter orders indices by (score desc, current allocation desc,
// ID asc): spare capacity flows to the most urgent task first — a task
// granted exactly Min would otherwise finish exactly at its deadline,
// where any penalty tips it over — then to whoever already holds the
// most. Steady state still re-issues the same plan: after a plan
// applies, either no capacity is free or every task is at Max, so the
// top-up order never perturbs a fixed point.
type topupSorter struct {
	idx   []int
	cands []Candidate
	out   []int
}

func (x *topupSorter) Len() int      { return len(x.idx) }
func (x *topupSorter) Swap(i, j int) { x.idx[i], x.idx[j] = x.idx[j], x.idx[i] }
func (x *topupSorter) Less(i, j int) bool {
	a, b := x.idx[i], x.idx[j]
	if x.cands[a].Score != x.cands[b].Score {
		return x.cands[a].Score > x.cands[b].Score
	}
	if x.cands[a].Cur != x.cands[b].Cur {
		return x.cands[a].Cur > x.cands[b].Cur
	}
	return x.cands[a].ID < x.cands[b].ID
}
