package systolic

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func randMat(rng *rand.Rand, r, c int) [][]int8 {
	m := make([][]int8, r)
	for i := range m {
		m[i] = make([]int8, c)
		for j := range m[i] {
			m[i][j] = int8(rng.Intn(256) - 128)
		}
	}
	return m
}

func equal(a, b [][]int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

func runSingle(t *testing.T, subR, subC, h, w, m, k, n int, seed int64) (*Grid, int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g, err := New(subR, subC, h, w)
	if err != nil {
		t.Fatal(err)
	}
	wts := randMat(rng, k, n)
	a := randMat(rng, m, k)
	id, err := g.AddCluster(ClusterSpec{0, 0, h, w}, wts, a)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Run(int64(10 * (m + k + n + 100))); err != nil {
		t.Fatal(err)
	}
	out, err := g.Output(id)
	if err != nil {
		t.Fatal(err)
	}
	if want := Reference(a, wts); !equal(out, want) {
		t.Fatalf("GEMM mismatch for %dx%dx%d on %dx%d bands", m, k, n, h, w)
	}
	drain, err := g.DrainCycle(id)
	if err != nil {
		t.Fatal(err)
	}
	return g, drain
}

func TestSingleSubarrayGEMM(t *testing.T) {
	// Full-tile GEMM on one 8×8 subarray: streaming latency is exactly
	// M + K + N − 1 cycles.
	_, drain := runSingle(t, 8, 8, 1, 1, 12, 8, 8, 1)
	if got, want := drain+1, int64(12+8+8-1); got != want {
		t.Fatalf("streaming latency = %d, want %d", got, want)
	}
}

func TestPartialTileGEMM(t *testing.T) {
	// K and N smaller than the array: latency shrinks accordingly.
	_, drain := runSingle(t, 8, 8, 1, 1, 5, 3, 4, 2)
	if got, want := drain+1, int64(5+3+4-1); got != want {
		t.Fatalf("streaming latency = %d, want %d", got, want)
	}
}

func TestChainedHorizontalBoundaryDelay(t *testing.T) {
	// N spans 2 bands: the activation wavefront pays one boundary
	// crossing; latency = M+K+N−1 + BoundaryDelay.
	_, drain := runSingle(t, 4, 4, 1, 2, 6, 4, 8, 3)
	if got, want := drain+1, int64(6+4+8-1+BoundaryDelay); got != want {
		t.Fatalf("streaming latency = %d, want %d", got, want)
	}
}

func TestChainedVerticalBoundaryDelay(t *testing.T) {
	// K spans 2 bands: partial sums pay one boundary crossing.
	_, drain := runSingle(t, 4, 4, 2, 1, 6, 8, 4, 4)
	if got, want := drain+1, int64(6+8+4-1+BoundaryDelay); got != want {
		t.Fatalf("streaming latency = %d, want %d", got, want)
	}
}

func TestChainedBothDimensions(t *testing.T) {
	// A 2×2-band cluster fully used: both chain delays apply.
	_, drain := runSingle(t, 4, 4, 2, 2, 10, 8, 8, 5)
	if got, want := drain+1, int64(10+8+8-1+2*BoundaryDelay); got != want {
		t.Fatalf("streaming latency = %d, want %d", got, want)
	}
}

func TestLongChain(t *testing.T) {
	// A 1×4 chain (the paper's fat-short (32×512)-style shape, scaled
	// down): three boundary crossings.
	_, drain := runSingle(t, 4, 4, 1, 4, 9, 4, 16, 6)
	if got, want := drain+1, int64(9+4+16-1+3*BoundaryDelay); got != want {
		t.Fatalf("streaming latency = %d, want %d", got, want)
	}
}

func TestGEMMCorrectnessProperty(t *testing.T) {
	// Random shapes on random band layouts always match the reference.
	rng := rand.New(rand.NewSource(99))
	f := func(mm, kk, nn, hh, ww uint8) bool {
		h := int(hh)%2 + 1
		w := int(ww)%2 + 1
		subR, subC := 4, 4
		m := int(mm)%12 + 1
		k := int(kk)%(h*subR) + 1
		n := int(nn)%(w*subC) + 1
		g, err := New(subR, subC, h, w)
		if err != nil {
			return false
		}
		wts := randMat(rng, k, n)
		a := randMat(rng, m, k)
		id, err := g.AddCluster(ClusterSpec{0, 0, h, w}, wts, a)
		if err != nil {
			return false
		}
		if _, err := g.Run(int64(10 * (m + k + n + 100))); err != nil {
			return false
		}
		out, err := g.Output(id)
		if err != nil {
			return false
		}
		return equal(out, Reference(a, wts))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestFissionedClustersRunIndependently(t *testing.T) {
	// Four independent 4×4 subarrays each run their own GEMM
	// concurrently — the spatial co-location the architecture exists for.
	rng := rand.New(rand.NewSource(11))
	g, err := New(4, 4, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	type job struct {
		id  int
		a   [][]int8
		wts [][]int8
	}
	var jobs []job
	dims := [][3]int{{5, 4, 4}, {7, 3, 4}, {4, 4, 2}, {9, 2, 3}}
	i := 0
	for br := 0; br < 2; br++ {
		for bc := 0; bc < 2; bc++ {
			d := dims[i]
			wts := randMat(rng, d[1], d[2])
			a := randMat(rng, d[0], d[1])
			id, err := g.AddCluster(ClusterSpec{br, bc, 1, 1}, wts, a)
			if err != nil {
				t.Fatal(err)
			}
			jobs = append(jobs, job{id, a, wts})
			i++
		}
	}
	if _, err := g.Run(4096); err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		out, err := g.Output(j.id)
		if err != nil {
			t.Fatal(err)
		}
		if !equal(out, Reference(j.a, j.wts)) {
			t.Fatalf("cluster %d output mismatch", j.id)
		}
	}
}

func TestHeterogeneousCoLocation(t *testing.T) {
	// One 2×1 cluster and two 1×1 clusters co-located — a heterogeneous
	// fission scheme like the paper's Fig 1(c).
	rng := rand.New(rand.NewSource(21))
	g, err := New(4, 4, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	wBig := randMat(rng, 8, 4)
	aBig := randMat(rng, 6, 8)
	big, err := g.AddCluster(ClusterSpec{0, 0, 2, 1}, wBig, aBig)
	if err != nil {
		t.Fatal(err)
	}
	w1 := randMat(rng, 4, 4)
	a1 := randMat(rng, 3, 4)
	s1, err := g.AddCluster(ClusterSpec{0, 1, 1, 1}, w1, a1)
	if err != nil {
		t.Fatal(err)
	}
	w2 := randMat(rng, 2, 3)
	a2 := randMat(rng, 5, 2)
	s2, err := g.AddCluster(ClusterSpec{1, 1, 1, 1}, w2, a2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Run(4096); err != nil {
		t.Fatal(err)
	}
	for _, c := range []struct {
		id  int
		a   [][]int8
		wts [][]int8
	}{{big, aBig, wBig}, {s1, a1, w1}, {s2, a2, w2}} {
		out, err := g.Output(c.id)
		if err != nil {
			t.Fatal(err)
		}
		if !equal(out, Reference(c.a, c.wts)) {
			t.Fatalf("cluster %d mismatch", c.id)
		}
	}
}

func TestOverlappingClustersRejected(t *testing.T) {
	g, _ := New(4, 4, 2, 2)
	w := randMat(rand.New(rand.NewSource(1)), 4, 4)
	a := randMat(rand.New(rand.NewSource(2)), 4, 4)
	if _, err := g.AddCluster(ClusterSpec{0, 0, 2, 2}, w, a); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddCluster(ClusterSpec{1, 1, 1, 1}, w, a); err == nil {
		t.Fatal("expected overlap rejection")
	}
}

func TestOversizedTileRejected(t *testing.T) {
	g, _ := New(4, 4, 1, 1)
	rng := rand.New(rand.NewSource(3))
	if _, err := g.AddCluster(ClusterSpec{0, 0, 1, 1}, randMat(rng, 5, 4), randMat(rng, 2, 5)); err == nil {
		t.Fatal("expected K > rows rejection")
	}
	if _, err := g.AddCluster(ClusterSpec{0, 0, 1, 1}, randMat(rng, 4, 5), randMat(rng, 2, 4)); err == nil {
		t.Fatal("expected N > cols rejection")
	}
}

func TestMalformedInputsRejected(t *testing.T) {
	g, _ := New(4, 4, 1, 1)
	rng := rand.New(rand.NewSource(4))
	// Ragged weights.
	w := randMat(rng, 3, 3)
	w[1] = w[1][:2]
	if _, err := g.AddCluster(ClusterSpec{0, 0, 1, 1}, w, randMat(rng, 2, 3)); err == nil {
		t.Fatal("expected ragged-weight rejection")
	}
	// Activation K mismatch.
	if _, err := g.AddCluster(ClusterSpec{0, 0, 1, 1}, randMat(rng, 3, 3), randMat(rng, 2, 4)); err == nil {
		t.Fatal("expected activation-width rejection")
	}
	// Out-of-grid placement.
	if _, err := g.AddCluster(ClusterSpec{0, 1, 1, 1}, randMat(rng, 3, 3), randMat(rng, 2, 3)); err == nil {
		t.Fatal("expected out-of-grid rejection")
	}
}

func TestRunTwiceRejected(t *testing.T) {
	g, _ := New(4, 4, 1, 1)
	rng := rand.New(rand.NewSource(5))
	if _, err := g.AddCluster(ClusterSpec{0, 0, 1, 1}, randMat(rng, 2, 2), randMat(rng, 2, 2)); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Run(1000); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Run(1000); err == nil {
		t.Fatal("expected second Run rejection")
	}
}

func TestRunWithoutClusters(t *testing.T) {
	g, _ := New(4, 4, 1, 1)
	if _, err := g.Run(10); err == nil {
		t.Fatal("expected error running empty grid")
	}
}

func TestTimeoutReported(t *testing.T) {
	g, _ := New(4, 4, 1, 1)
	rng := rand.New(rand.NewSource(6))
	if _, err := g.AddCluster(ClusterSpec{0, 0, 1, 1}, randMat(rng, 4, 4), randMat(rng, 100, 4)); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Run(3); err == nil {
		t.Fatal("expected timeout error")
	}
}

func TestStreamLoadCorrectAndExposed(t *testing.T) {
	// With the load phase simulated, the result is unchanged and the
	// drain extends by exactly K−1 cycles (the exposed first load).
	rng := rand.New(rand.NewSource(31))
	for _, dims := range [][3]int{{6, 4, 4}, {9, 8, 5}, {5, 3, 7}, {7, 1, 4}} {
		m, k, n := dims[0], dims[1], dims[2]
		wts := randMat(rng, k, n)
		a := randMat(rng, m, k)

		pre, err := New(8, 8, 1, 1)
		if err != nil {
			t.Fatal(err)
		}
		idPre, err := pre.AddCluster(ClusterSpec{0, 0, 1, 1}, wts, a)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := pre.Run(4096); err != nil {
			t.Fatal(err)
		}
		dPre, _ := pre.DrainCycle(idPre)

		ld, err := New(8, 8, 1, 1)
		if err != nil {
			t.Fatal(err)
		}
		idLd, err := ld.AddClusterStreamLoad(ClusterSpec{0, 0, 1, 1}, wts, a)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ld.Run(4096); err != nil {
			t.Fatal(err)
		}
		out, err := ld.Output(idLd)
		if err != nil {
			t.Fatal(err)
		}
		if !equal(out, Reference(a, wts)) {
			t.Fatalf("stream-load GEMM mismatch for %v", dims)
		}
		dLd, _ := ld.DrainCycle(idLd)
		if got, want := dLd-dPre, int64(k-1); got != want {
			t.Fatalf("%v: load exposure = %d cycles, want K-1 = %d", dims, got, want)
		}
	}
}

func TestStreamLoadChainedVertical(t *testing.T) {
	// K spanning two bands: weight tokens pay the band-boundary register
	// like partial sums do, and the result stays correct.
	rng := rand.New(rand.NewSource(37))
	m, k, n := 6, 8, 4
	wts := randMat(rng, k, n)
	a := randMat(rng, m, k)
	g, err := New(4, 4, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	id, err := g.AddClusterStreamLoad(ClusterSpec{0, 0, 2, 1}, wts, a)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Run(4096); err != nil {
		t.Fatal(err)
	}
	out, err := g.Output(id)
	if err != nil {
		t.Fatal(err)
	}
	if !equal(out, Reference(a, wts)) {
		t.Fatal("chained stream-load GEMM mismatch")
	}
}

func TestStreamLoadProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	f := func(mm, kk, nn uint8) bool {
		m := int(mm)%10 + 1
		k := int(kk)%8 + 1
		n := int(nn)%8 + 1
		wts := randMat(rng, k, n)
		a := randMat(rng, m, k)
		g, err := New(8, 8, 1, 1)
		if err != nil {
			return false
		}
		id, err := g.AddClusterStreamLoad(ClusterSpec{0, 0, 1, 1}, wts, a)
		if err != nil {
			return false
		}
		if _, err := g.Run(4096); err != nil {
			return false
		}
		out, err := g.Output(id)
		if err != nil {
			return false
		}
		return equal(out, Reference(a, wts))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
