package systolic

import (
	"fmt"
	"math/rand"
	"testing"
)

// benchCase is one BenchmarkGridRun configuration. Grid construction and
// matrix generation are part of the measured loop because a Grid is
// single-shot (Run consumes it), but the engine's cycle loop dominates:
// the simulated cycle count scales with M+K+N while setup scales with
// the matrix footprints.
type benchCase struct {
	name          string
	subR, subC    int
	bandsR, bands int
	h, w          int
	m, k, n       int
	streamLoad    bool
}

func benchCases() []benchCase {
	return []benchCase{
		{name: "small_16x8x8", subR: 8, subC: 8, bandsR: 1, bands: 1, h: 1, w: 1, m: 16, k: 8, n: 8},
		{name: "medium_128x16x16", subR: 8, subC: 8, bandsR: 2, bands: 2, h: 2, w: 2, m: 128, k: 16, n: 16},
		{name: "large_512x32x32", subR: 16, subC: 16, bandsR: 2, bands: 2, h: 2, w: 2, m: 512, k: 32, n: 32},
		{name: "stream_load_128x16x16", subR: 8, subC: 8, bandsR: 2, bands: 2, h: 2, w: 2, m: 128, k: 16, n: 16, streamLoad: true},
	}
}

func buildGrid(b *testing.B, rng *rand.Rand, c benchCase) (*Grid, int64) {
	g, err := New(c.subR, c.subC, c.bandsR, c.bands)
	if err != nil {
		b.Fatal(err)
	}
	wts := randMat(rng, c.k, c.n)
	a := randMat(rng, c.m, c.k)
	spec := ClusterSpec{0, 0, c.h, c.w}
	if c.streamLoad {
		_, err = g.AddClusterStreamLoad(spec, wts, a)
	} else {
		_, err = g.AddCluster(spec, wts, a)
	}
	if err != nil {
		b.Fatal(err)
	}
	return g, int64(10 * (c.m + c.k + c.n + 100))
}

// BenchmarkGridRun measures the functional engine's hot loop across GEMM
// sizes; allocs/op is the headline number the flat-state engine targets.
func BenchmarkGridRun(b *testing.B) {
	for _, c := range benchCases() {
		b.Run(c.name, func(b *testing.B) {
			rng := rand.New(rand.NewSource(7))
			b.ReportAllocs()
			var cycles int64
			for i := 0; i < b.N; i++ {
				g, maxCycles := buildGrid(b, rng, c)
				cy, err := g.Run(maxCycles)
				if err != nil {
					b.Fatal(err)
				}
				cycles = cy
			}
			b.ReportMetric(float64(cycles), "cycles")
		})
	}
}

// BenchmarkGridRunMultiCluster measures spatial co-location: four
// independent clusters sharing one grid, the multi-tenant case the
// architecture exists for.
func BenchmarkGridRunMultiCluster(b *testing.B) {
	dims := [][3]int{{64, 8, 8}, {48, 7, 6}, {96, 5, 8}, {32, 8, 4}}
	b.ReportAllocs()
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < b.N; i++ {
		g, err := New(8, 8, 2, 2)
		if err != nil {
			b.Fatal(err)
		}
		di := 0
		for br := 0; br < 2; br++ {
			for bc := 0; bc < 2; bc++ {
				d := dims[di]
				di++
				wts := randMat(rng, d[1], d[2])
				a := randMat(rng, d[0], d[1])
				if _, err := g.AddCluster(ClusterSpec{br, bc, 1, 1}, wts, a); err != nil {
					b.Fatal(err)
				}
			}
		}
		if _, err := g.Run(1 << 16); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReference is the host-side GEMM the simulator validates
// against, for scale.
func BenchmarkReference(b *testing.B) {
	for _, d := range [][3]int{{128, 16, 16}, {512, 32, 32}} {
		b.Run(fmt.Sprintf("%dx%dx%d", d[0], d[1], d[2]), func(b *testing.B) {
			rng := rand.New(rand.NewSource(17))
			a := randMat(rng, d[0], d[1])
			w := randMat(rng, d[1], d[2])
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				Reference(a, w)
			}
		})
	}
}
