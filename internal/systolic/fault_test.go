package systolic

import (
	"math/rand"
	"testing"
)

// TestMaskedGridComputesExactGEMMs is the functional graceful-degradation
// check: inject a dead subarray (via a dead PE), re-fission the grid
// around the masked band, and verify every surviving logical accelerator
// still produces bit-exact int8 GEMM results.
func TestMaskedGridComputesExactGEMMs(t *testing.T) {
	g, err := New(4, 4, 2, 2) // 2×2 bands of 4×4 PEs
	if err != nil {
		t.Fatal(err)
	}
	// A dead PE at grid coordinates (5, 2) masks band (1, 0).
	if err := g.InjectPEFault(5, 2); err != nil {
		t.Fatal(err)
	}
	if g.BandUsable(1, 0) {
		t.Fatal("band (1,0) still usable after PE fault")
	}
	if got := g.FaultyBands(); len(got) != 1 || got[0] != [2]int{1, 0} {
		t.Fatalf("FaultyBands = %v", got)
	}
	if mask := g.HealthMask(); !mask[0] || !mask[1] || mask[2] || !mask[3] {
		t.Fatalf("HealthMask = %v", mask)
	}

	// Placing over the dead band is refused...
	if _, err := g.AddCluster(ClusterSpec{BandRow: 0, BandCol: 0, H: 2, W: 1},
		randMat(rand.New(rand.NewSource(1)), 8, 4), randMat(rand.New(rand.NewSource(2)), 3, 8)); err == nil {
		t.Fatal("cluster over faulty band accepted")
	}

	// ...so re-fission over the three survivors: a chained 1×2 cluster on
	// the top row and a single-band cluster at (1,1).
	rng := rand.New(rand.NewSource(7))
	wA := randMat(rng, 4, 8)
	aA := randMat(rng, 6, 4)
	idA, err := g.AddCluster(ClusterSpec{BandRow: 0, BandCol: 0, H: 1, W: 2}, wA, aA)
	if err != nil {
		t.Fatal(err)
	}
	wB := randMat(rng, 4, 4)
	aB := randMat(rng, 5, 4)
	idB, err := g.AddCluster(ClusterSpec{BandRow: 1, BandCol: 1, H: 1, W: 1}, wB, aB)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Run(10_000); err != nil {
		t.Fatal(err)
	}
	for _, c := range []struct {
		id   int
		w, a [][]int8
	}{{idA, wA, aA}, {idB, wB, aB}} {
		got, err := g.Output(c.id)
		if err != nil {
			t.Fatal(err)
		}
		want := Reference(c.a, c.w)
		for i := range want {
			for j := range want[i] {
				if got[i][j] != want[i][j] {
					t.Fatalf("cluster %d out[%d][%d] = %d, want %d", c.id, i, j, got[i][j], want[i][j])
				}
			}
		}
	}
}

// TestFaultInjectionBounds covers the mask API's error paths.
func TestFaultInjectionBounds(t *testing.T) {
	g, err := New(4, 4, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.InjectSubarrayFault(2, 0); err == nil {
		t.Error("out-of-grid band fault accepted")
	}
	if err := g.InjectPEFault(0, 99); err == nil {
		t.Error("out-of-grid PE fault accepted")
	}
	// An owned band cannot be masked after the fact.
	rng := rand.New(rand.NewSource(3))
	if _, err := g.AddCluster(ClusterSpec{BandRow: 0, BandCol: 0, H: 1, W: 1},
		randMat(rng, 4, 4), randMat(rng, 4, 4)); err != nil {
		t.Fatal(err)
	}
	if err := g.InjectSubarrayFault(0, 0); err == nil {
		t.Error("masking an owned band accepted")
	}
	// Masking a free band twice is idempotent and fine.
	if err := g.InjectSubarrayFault(1, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.InjectSubarrayFault(1, 1); err != nil {
		t.Fatal(err)
	}
}
