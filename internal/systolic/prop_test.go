package systolic

import (
	"math/rand"
	"testing"
)

// TestRandomizedGEMMProperty drives the engine through ~50 random
// (M, K, N, subarray-size, cluster-placement, stream-load) cases: every
// run must reproduce the host Reference GEMM bit-exactly. This is the
// referee for engine rewrites — any timing or pairing bug surfaces as a
// wrong output or a wavefront error.
func TestRandomizedGEMMProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(20260805))
	for i := 0; i < 50; i++ {
		subR := rng.Intn(7) + 2 // 2..8
		subC := rng.Intn(7) + 2
		bandsR := rng.Intn(3) + 1 // 1..3
		bandsC := rng.Intn(3) + 1
		h := rng.Intn(bandsR) + 1
		w := rng.Intn(bandsC) + 1
		br := rng.Intn(bandsR - h + 1)
		bc := rng.Intn(bandsC - w + 1)
		m := rng.Intn(24) + 1
		k := rng.Intn(h*subR) + 1
		n := rng.Intn(w*subC) + 1
		streamLoad := rng.Intn(2) == 1

		g, err := New(subR, subC, bandsR, bandsC)
		if err != nil {
			t.Fatal(err)
		}
		wts := randMat(rng, k, n)
		a := randMat(rng, m, k)
		spec := ClusterSpec{BandRow: br, BandCol: bc, H: h, W: w}
		var id int
		if streamLoad {
			id, err = g.AddClusterStreamLoad(spec, wts, a)
		} else {
			id, err = g.AddCluster(spec, wts, a)
		}
		if err != nil {
			t.Fatalf("case %d (%+v m=%d k=%d n=%d stream=%v): %v", i, spec, m, k, n, streamLoad, err)
		}
		if _, err := g.Run(int64(10 * (m + k + n + 100))); err != nil {
			t.Fatalf("case %d (%+v m=%d k=%d n=%d stream=%v): %v", i, spec, m, k, n, streamLoad, err)
		}
		out, err := g.Output(id)
		if err != nil {
			t.Fatal(err)
		}
		if !equal(out, Reference(a, wts)) {
			t.Fatalf("case %d (%+v m=%d k=%d n=%d stream=%v): GEMM mismatch", i, spec, m, k, n, streamLoad)
		}
	}
}

// TestRandomizedMultiClusterProperty co-locates several random clusters
// on one grid — random placements, sizes, and load modes — and checks
// every cluster's output against the reference. Spatial isolation is the
// property: one tenant's tokens must never perturb another's.
func TestRandomizedMultiClusterProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for i := 0; i < 20; i++ {
		subR := rng.Intn(5) + 2 // 2..6
		subC := rng.Intn(5) + 2
		const bands = 3
		g, err := New(subR, subC, bands, bands)
		if err != nil {
			t.Fatal(err)
		}
		used := [bands][bands]bool{}
		type job struct {
			id  int
			a   [][]int8
			wts [][]int8
		}
		var jobs []job
		for tries := 0; tries < 12 && len(jobs) < 4; tries++ {
			h := rng.Intn(2) + 1
			w := rng.Intn(2) + 1
			br := rng.Intn(bands - h + 1)
			bc := rng.Intn(bands - w + 1)
			overlap := false
			for r := br; r < br+h; r++ {
				for c := bc; c < bc+w; c++ {
					overlap = overlap || used[r][c]
				}
			}
			if overlap {
				continue
			}
			for r := br; r < br+h; r++ {
				for c := bc; c < bc+w; c++ {
					used[r][c] = true
				}
			}
			m := rng.Intn(16) + 1
			k := rng.Intn(h*subR) + 1
			n := rng.Intn(w*subC) + 1
			wts := randMat(rng, k, n)
			a := randMat(rng, m, k)
			spec := ClusterSpec{BandRow: br, BandCol: bc, H: h, W: w}
			var id int
			var err error
			if rng.Intn(2) == 1 {
				id, err = g.AddClusterStreamLoad(spec, wts, a)
			} else {
				id, err = g.AddCluster(spec, wts, a)
			}
			if err != nil {
				t.Fatalf("round %d: %v", i, err)
			}
			jobs = append(jobs, job{id, a, wts})
		}
		if len(jobs) == 0 {
			continue
		}
		if _, err := g.Run(1 << 14); err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
		for _, j := range jobs {
			out, err := g.Output(j.id)
			if err != nil {
				t.Fatal(err)
			}
			if !equal(out, Reference(j.a, j.wts)) {
				t.Fatalf("round %d cluster %d: output mismatch", i, j.id)
			}
		}
	}
}
