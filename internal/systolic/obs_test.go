package systolic

import (
	"encoding/json"
	"math/rand"
	"strings"
	"testing"

	"planaria/internal/obs"
)

// runObserved simulates two co-located clusters with a timeline attached
// and returns the exported trace.
func runObserved(t *testing.T) []byte {
	t.Helper()
	g, err := New(8, 8, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	tb := obs.NewTraceBuilder(1)
	g.Observe(tb, 4)
	rng := rand.New(rand.NewSource(3))
	for i, spec := range []ClusterSpec{{0, 0, 1, 2}, {1, 0, 1, 1}} {
		wts := randMat(rng, 8, 8)
		a := randMat(rng, 16+4*i, 8)
		if _, err := g.AddCluster(spec, wts, a); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := g.Run(1 << 14); err != nil {
		t.Fatal(err)
	}
	return tb.JSON()
}

func TestGridObserverEmitsBandsAndSamples(t *testing.T) {
	raw := runObserved(t)
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Dur  float64 `json:"dur"`
			Args map[string]any
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("invalid trace JSON: %v", err)
	}
	bands := map[string]bool{}
	counters := 0
	for _, e := range doc.TraceEvents {
		switch {
		case e.Ph == "M":
			if name, _ := e.Args["name"].(string); strings.HasPrefix(name, "band ") {
				bands[name] = true
			}
		case e.Ph == "X":
			if e.Dur <= 0 {
				t.Errorf("band span %q has non-positive duration", e.Name)
			}
		case e.Ph == "C":
			counters++
		}
	}
	// Cluster 0 claims bands (0,0),(0,1); cluster 1 claims (1,0).
	for _, want := range []string{"band 0,0", "band 0,1", "band 1,0"} {
		if !bands[want] {
			t.Errorf("missing occupancy track %q (have %v)", want, bands)
		}
	}
	if bands["band 1,1"] {
		t.Error("unclaimed band 1,1 has an occupancy track")
	}
	if counters == 0 {
		t.Error("no sampled grid counters recorded")
	}
}

func TestGridObserverDeterministic(t *testing.T) {
	a, b := runObserved(t), runObserved(t)
	if string(a) != string(b) {
		t.Fatal("identical observed runs exported different trace bytes")
	}
}

func TestGridObserverNilIsFree(t *testing.T) {
	g, err := New(8, 8, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	g.Observe(nil, 0) // explicit nil: hot loop must tolerate it
	rng := rand.New(rand.NewSource(5))
	if _, err := g.AddCluster(ClusterSpec{0, 0, 1, 1}, randMat(rng, 4, 4), randMat(rng, 8, 4)); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Run(1 << 12); err != nil {
		t.Fatal(err)
	}
}

// TestGridOccupancyConservation pins the band-cycle accounting fed into
// the fleet utilization accountant: claimed bands are busy to their
// cluster's drain cycle, masked bands are faulted for the whole run, and
// the integer partition busy+idle+faulted+reconfig == bands × horizon
// holds exactly.
func TestGridOccupancyConservation(t *testing.T) {
	g, err := New(8, 8, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.InjectSubarrayFault(1, 1); err != nil {
		t.Fatal(err)
	}
	occ := obs.NewOccupancy(0)
	g.SetOccupancy(occ)
	rng := rand.New(rand.NewSource(3))
	if _, err := g.AddCluster(ClusterSpec{0, 0, 1, 2}, randMat(rng, 8, 8), randMat(rng, 16, 8)); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Run(1 << 14); err != nil {
		t.Fatal(err)
	}
	if occ.Units != 4 {
		t.Fatalf("units = %d, want 4 bands", occ.Units)
	}
	if occ.Horizon <= 0 || occ.Busy <= 0 {
		t.Fatalf("degenerate accounting: %+v", occ)
	}
	if occ.Faulted != occ.Horizon {
		t.Fatalf("one masked band should be faulted for the whole run: %+v", occ)
	}
	if got := occ.Busy + occ.Idle + occ.Faulted + occ.Reconfig; got != occ.Units*occ.Horizon {
		t.Fatalf("band-cycle partition broke: %d != %d (%+v)", got, occ.Units*occ.Horizon, occ)
	}
	// Two claimed bands for the drain span: busy = 2 × (lastOut+1) ≤ 2 × horizon.
	if occ.Busy > 2*occ.Horizon {
		t.Fatalf("busy %d exceeds 2 bands × horizon %d", occ.Busy, occ.Horizon)
	}
	if u := occ.Utilization(); u <= 0 || u > 0.5 {
		t.Fatalf("utilization = %g, want in (0, 0.5] with 2 of 4 bands claimed", u)
	}
}
