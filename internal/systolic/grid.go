// Package systolic is a functional, cycle-level simulator of the
// (omni-directional) systolic PE grid. It moves real int8 activation and
// int32 partial-sum tokens through PEs one clock cycle at a time — no
// closed-form shortcuts — and therefore serves as the ground truth the
// analytical model in internal/model is cross-validated against, playing
// the role the paper's Verilog implementation played for its simulator.
//
// The engine computes in *flow coordinates*: partial sums advance in the
// +row direction and activations in the +column direction. The
// omni-directional feature — which physical edge is "first" — is a
// routing concern handled by the mux network; internal/arch produces and
// validates those per-subarray direction/link bits (see
// ChipState.StageShape and the serpentine tests). Here the physically
// routed cluster appears as a straight logical array with pipeline
// boundary registers between subarrays.
//
// Engine internals: token timing uses a calendar queue — a ring of
// per-cycle buckets whose backing slices are reused once the ring wraps —
// and per-PE state uses dense arrays indexed by (row, col) per cluster,
// so the steady-state cycle loop performs no map operations and
// amortizes to zero allocations. Every in-flight delay is bounded by
// 1 + BoundaryDelay, so a ring sized past the latest pre-Run injection
// can never alias two distinct pending cycles to one bucket.
package systolic

import (
	"fmt"

	"planaria/internal/obs"
)

// BoundaryDelay is the extra pipeline latency a token pays when crossing
// a subarray boundary (the registered ring-bus segment). It must match
// the analytical model's assumption; internal/model cross-validates this.
const BoundaryDelay = 2

// ClusterSpec places one logical systolic cluster on the grid.
type ClusterSpec struct {
	// BandRow, BandCol locate the cluster's top-left subarray band.
	BandRow, BandCol int
	// H, W are the cluster extent in subarray bands.
	H, W int
}

// tokenKind discriminates deliveries.
type tokenKind uint8

const (
	actToken tokenKind = iota
	psumToken
	weightToken
)

// delivery is one token arriving at a PE (or collector) at a given cycle.
// Fields are 32-bit to halve the calendar queue's memory traffic; every
// grid coordinate and activation-row index fits comfortably.
type delivery struct {
	cycle   int64
	v       int32
	cluster int32
	row     int32 // cluster-local row; row == K means the output collector
	col     int32 // cluster-local col
	m       int32 // activation-row index the token belongs to
	kind    tokenKind
}

// peCell is the dense per-PE pairing state for one cycle: the activation
// and partial-sum tokens currently present. An m index of −1 means empty.
type peCell struct {
	actV  int32
	actM  int32
	psumV int32
	psumM int32
}

type cluster struct {
	spec    ClusterSpec
	m, k, n int
	// w holds the k×n weights row-major; loaded marks each weight as
	// present in its PE. When the cluster uses streamed loading, weights
	// arrive as tokens shifting down the columns (bottom row first, so
	// every row lands at cycle K−1 plus its band-boundary delays); with
	// preloading every entry starts true.
	w      []int8
	loaded []bool
	// cells is the k×n dense pairing state; touched lists the cell
	// indices that received a token this cycle (reset each cycle, backing
	// array reused).
	cells   []peCell
	touched []int32
	out     [][]int32
	outSeen [][]bool
	pending int
	lastOut int64
}

// Grid is a functional multi-cluster systolic array simulator.
type Grid struct {
	subR, subC     int
	bandsR, bandsC int
	owner          [][]int // band ownership, -1 = free
	// faulty marks subarray bands masked out by injected faults; deadPE
	// counts the dead PEs behind each band's mask. AddCluster refuses to
	// place a cluster over a faulty band — the fission granularity is
	// the subarray, so one dead PE retires its whole band while the
	// surviving bands keep computing bit-exact results.
	faulty [][]bool
	deadPE [][]int
	clusters       []*cluster
	// staged holds pre-Run injections (activations and streamed weights);
	// Run counting-sorts them into the read-only initial schedule.
	staged   []delivery
	maxStage int64
	// initial[c] is the slice of pre-Run injections arriving at cycle c,
	// views into one contiguous arena. In-flight tokens generated during
	// simulation live in the small calendar ring instead: every runtime
	// delay is ≤ 1+BoundaryDelay, so a handful of buckets (reused as the
	// ring wraps) covers all of them and their backing slices stabilize
	// after the first few cycles.
	initial [][]delivery
	buckets [][]delivery // calendar ring: cycle c lives at buckets[c&mask]
	mask    int64
	cycle   int64
	ran     bool

	// Observability (nil = off, the hot loop pays one untaken branch per
	// cycle): obsTB receives per-band occupancy spans and sampled token
	// counters on the cycle timeline; obsSample is the sampling period.
	obsTB     *obs.TraceBuilder
	obsSample int64
	// occAcct, when non-nil, receives band-cycle occupancy accounting at
	// end of Run: each claimed band busy to its cluster's drain cycle,
	// faulty bands faulted for the whole run, the rest idle
	// (DESIGN.md §14).
	occAcct *obs.Occupancy
}

// New creates a grid of bandsR×bandsC subarrays, each subR×subC PEs.
func New(subR, subC, bandsR, bandsC int) (*Grid, error) {
	if subR <= 0 || subC <= 0 || bandsR <= 0 || bandsC <= 0 {
		return nil, fmt.Errorf("systolic: non-positive grid dims %d %d %d %d", subR, subC, bandsR, bandsC)
	}
	owner := make([][]int, bandsR)
	faulty := make([][]bool, bandsR)
	deadPE := make([][]int, bandsR)
	for i := range owner {
		owner[i] = make([]int, bandsC)
		faulty[i] = make([]bool, bandsC)
		deadPE[i] = make([]int, bandsC)
		for j := range owner[i] {
			owner[i][j] = -1
		}
	}
	return &Grid{
		subR: subR, subC: subC,
		bandsR: bandsR, bandsC: bandsC,
		owner: owner, faulty: faulty, deadPE: deadPE,
	}, nil
}

// InjectSubarrayFault masks the subarray band (bandRow, bandCol) out of
// the placement pool: subsequent AddCluster calls refuse to claim it.
// Bands already owned by a cluster cannot be masked — the serving layer
// kills and re-enqueues the affected task instead (internal/sim), and a
// fresh grid is fissioned over the survivors.
func (g *Grid) InjectSubarrayFault(bandRow, bandCol int) error {
	if bandRow < 0 || bandRow >= g.bandsR || bandCol < 0 || bandCol >= g.bandsC {
		return fmt.Errorf("systolic: fault target band (%d,%d) outside %dx%d grid",
			bandRow, bandCol, g.bandsR, g.bandsC)
	}
	if g.owner[bandRow][bandCol] != -1 {
		return fmt.Errorf("systolic: band (%d,%d) is owned by cluster %d; kill the task before masking",
			bandRow, bandCol, g.owner[bandRow][bandCol])
	}
	g.faulty[bandRow][bandCol] = true
	return nil
}

// InjectPEFault marks the PE at grid-global coordinates (peRow, peCol)
// dead. The fission granularity is the subarray, so the PE's whole band
// is masked out of the placement pool (a dead PE breaks its column's
// systolic wavefront; there is no per-PE bypass in the architecture).
func (g *Grid) InjectPEFault(peRow, peCol int) error {
	if peRow < 0 || peRow >= g.bandsR*g.subR || peCol < 0 || peCol >= g.bandsC*g.subC {
		return fmt.Errorf("systolic: fault target PE (%d,%d) outside %dx%d grid",
			peRow, peCol, g.bandsR*g.subR, g.bandsC*g.subC)
	}
	if err := g.InjectSubarrayFault(peRow/g.subR, peCol/g.subC); err != nil {
		return err
	}
	g.deadPE[peRow/g.subR][peCol/g.subC]++
	return nil
}

// BandUsable reports whether a band is free of injected faults.
func (g *Grid) BandUsable(bandRow, bandCol int) bool {
	return !g.faulty[bandRow][bandCol]
}

// FaultyBands returns the masked bands as (row, col) pairs in row-major
// order.
func (g *Grid) FaultyBands() [][2]int {
	var out [][2]int
	for r := 0; r < g.bandsR; r++ {
		for c := 0; c < g.bandsC; c++ {
			if g.faulty[r][c] {
				out = append(out, [2]int{r, c})
			}
		}
	}
	return out
}

// HealthMask flattens the band fault state row-major into a usable-mask
// slice, the shape arch.HealthMask consumes.
func (g *Grid) HealthMask() []bool {
	u := make([]bool, 0, g.bandsR*g.bandsC)
	for r := 0; r < g.bandsR; r++ {
		for c := 0; c < g.bandsC; c++ {
			u = append(u, !g.faulty[r][c])
		}
	}
	return u
}

// Observe attaches a timeline builder before Run. Timestamps are cycles
// (pick the builder's scale accordingly, e.g. 1e6/freqHz for real-time
// microseconds). Every sampleEvery cycles (min 1, default 64) the engine
// records the number of token deliveries processed that cycle and the
// outputs still pending; when Run completes, each cluster contributes one
// occupancy span per claimed subarray band.
func (g *Grid) Observe(tb *obs.TraceBuilder, sampleEvery int64) {
	if sampleEvery <= 0 {
		sampleEvery = 64
	}
	g.obsTB = tb
	g.obsSample = sampleEvery
}

// SetOccupancy implements obs.OccupancyAware: at end of Run the grid
// accounts every band-cycle of the run into the accountant — busy for
// claimed bands up to their cluster's drain cycle, faulted for masked
// bands over the whole run, idle for the remainder — so the integer
// conservation identity busy+idle+faulted+reconfig == bands × cycles
// holds exactly.
func (g *Grid) SetOccupancy(a *obs.Occupancy) { g.occAcct = a }

// AddCluster claims the spec's subarray bands for a new logical cluster
// and schedules an M×K×N GEMM on it: weights (K×N) are preloaded, the
// activation matrix A (M×K) is injected with the systolic skew the
// compiler programs into the pod buffers. Returns the cluster id.
func (g *Grid) AddCluster(spec ClusterSpec, wts [][]int8, a [][]int8) (int, error) {
	return g.addCluster(spec, wts, a, false)
}

// AddClusterStreamLoad is AddCluster with the weight-load phase
// simulated: weight rows stream from the weight buffer one row per cycle
// (bottom row first) and shift down the columns, so the array is fully
// loaded at cycle K−1 (plus band-boundary registers); activations are
// skewed to start exactly then — the exposed first-tile load the
// analytical model charges.
func (g *Grid) AddClusterStreamLoad(spec ClusterSpec, wts [][]int8, a [][]int8) (int, error) {
	return g.addCluster(spec, wts, a, true)
}

func (g *Grid) addCluster(spec ClusterSpec, wts [][]int8, a [][]int8, streamLoad bool) (int, error) {
	if g.ran {
		return 0, fmt.Errorf("systolic: grid already ran")
	}
	if spec.H <= 0 || spec.W <= 0 ||
		spec.BandRow < 0 || spec.BandCol < 0 ||
		spec.BandRow+spec.H > g.bandsR || spec.BandCol+spec.W > g.bandsC {
		return 0, fmt.Errorf("systolic: cluster %+v out of grid %dx%d bands", spec, g.bandsR, g.bandsC)
	}
	for r := spec.BandRow; r < spec.BandRow+spec.H; r++ {
		for c := spec.BandCol; c < spec.BandCol+spec.W; c++ {
			if g.owner[r][c] != -1 {
				return 0, fmt.Errorf("systolic: band (%d,%d) already owned by cluster %d", r, c, g.owner[r][c])
			}
			if g.faulty[r][c] {
				return 0, fmt.Errorf("systolic: band (%d,%d) has an injected fault (%d dead PEs)", r, c, g.deadPE[r][c])
			}
		}
	}

	k := len(wts)
	if k == 0 {
		return 0, fmt.Errorf("systolic: empty weight matrix")
	}
	n := len(wts[0])
	m := len(a)
	if m == 0 {
		return 0, fmt.Errorf("systolic: empty activation matrix")
	}
	rows := spec.H * g.subR
	cols := spec.W * g.subC
	if k > rows || n > cols {
		return 0, fmt.Errorf("systolic: weight tile %dx%d exceeds cluster %dx%d PEs", k, n, rows, cols)
	}
	for i := range wts {
		if len(wts[i]) != n {
			return 0, fmt.Errorf("systolic: ragged weight matrix row %d", i)
		}
	}
	for i := range a {
		if len(a[i]) != k {
			return 0, fmt.Errorf("systolic: activation row %d has %d cols, want K=%d", i, len(a[i]), k)
		}
	}

	id := len(g.clusters)
	cl := &cluster{spec: spec, m: m, k: k, n: n, pending: m * n}
	cl.w = make([]int8, k*n)
	cl.loaded = make([]bool, k*n)
	cl.cells = make([]peCell, k*n)
	cl.touched = make([]int32, 0, k*n)
	for i := range wts {
		copy(cl.w[i*n:(i+1)*n], wts[i])
	}
	if !streamLoad {
		for i := range cl.loaded {
			cl.loaded[i] = true
		}
	}
	for i := range cl.cells {
		cl.cells[i].actM = -1
		cl.cells[i].psumM = -1
	}
	cl.out = make([][]int32, m)
	cl.outSeen = make([][]bool, m)
	for i := range cl.out {
		cl.out[i] = make([]int32, n)
		cl.outSeen[i] = make([]bool, n)
	}
	g.clusters = append(g.clusters, cl)
	for r := spec.BandRow; r < spec.BandRow+spec.H; r++ {
		for c := spec.BandCol; c < spec.BandCol+spec.W; c++ {
			g.owner[r][c] = id
		}
	}

	// Streamed weight load: one row per cycle from the top edge, bottom
	// row (k−1) first so every row lands at cycle (k−1) plus the
	// band-boundary registers it crossed.
	actBase := 0
	if streamLoad {
		for ki := k - 1; ki >= 0; ki-- {
			issue := int64(k - 1 - ki)
			for ni := 0; ni < n; ni++ {
				g.stage(delivery{
					cycle: issue, cluster: int32(id), kind: weightToken,
					row: 0, col: int32(ni), m: int32(ki), v: int32(wts[ki][ni]),
				})
			}
		}
		actBase = k - 1
	}

	// Inject activations: a[mi][ki] enters row ki's first column at cycle
	// base + mi + ki + BoundaryDelay·(ki/subR). The band offset keeps the
	// activation wavefront aligned with partial sums that paid the
	// boundary register crossing — this is the skew the compiler programs.
	for mi := 0; mi < m; mi++ {
		for ki := 0; ki < k; ki++ {
			t := int64(actBase + mi + ki + BoundaryDelay*(ki/g.subR))
			g.stage(delivery{
				cycle: t, cluster: int32(id), kind: actToken,
				row: int32(ki), col: 0, m: int32(mi), v: int32(a[mi][ki]),
			})
		}
	}
	return id, nil
}

// stage queues a pre-Run injection; Run distributes staged deliveries
// into the calendar ring once its size is known.
func (g *Grid) stage(d delivery) {
	g.staged = append(g.staged, d)
	if d.cycle > g.maxStage {
		g.maxStage = d.cycle
	}
}

// push inserts an in-flight token during simulation. All runtime delays
// are ≤ 1+BoundaryDelay, well inside the ring.
func (g *Grid) push(d delivery) {
	b := d.cycle & g.mask
	g.buckets[b] = append(g.buckets[b], d)
}

// initCalendar counting-sorts the staged injections into one contiguous
// arena indexed by cycle (O(1) allocations regardless of how long the
// injection schedule is) and sizes the in-flight ring past the maximum
// runtime delay so two pending cycles can never alias to one bucket.
func (g *Grid) initCalendar() {
	size := int64(8)
	for size < BoundaryDelay+2 {
		size <<= 1
	}
	g.mask = size - 1
	g.buckets = make([][]delivery, size)

	cycles := g.maxStage + 1
	g.initial = make([][]delivery, cycles)
	counts := make([]int32, cycles)
	for i := range g.staged {
		counts[g.staged[i].cycle]++
	}
	arena := make([]delivery, len(g.staged))
	off := 0
	for c := int64(0); c < cycles; c++ {
		n := int(counts[c])
		if n > 0 {
			g.initial[c] = arena[off : off : off+n]
			off += n
		}
	}
	for _, d := range g.staged {
		g.initial[d.cycle] = append(g.initial[d.cycle], d)
	}
	g.staged = nil
}

// Run simulates until every cluster has drained all outputs or maxCycles
// elapse. It returns the number of cycles simulated.
//
//perf:hot cycle-level inner loop: per-delivery work must stay allocation-free
func (g *Grid) Run(maxCycles int64) (int64, error) {
	if g.ran {
		return 0, fmt.Errorf("systolic: grid already ran")
	}
	g.ran = true
	if len(g.clusters) == 0 {
		return 0, fmt.Errorf("systolic: no clusters")
	}
	remaining := 0
	for _, cl := range g.clusters {
		remaining += cl.pending
	}
	g.initCalendar()

	for g.cycle = 0; g.cycle <= maxCycles && remaining > 0; g.cycle++ {
		slot := g.cycle & g.mask
		var init []delivery
		if g.cycle < int64(len(g.initial)) {
			init = g.initial[g.cycle]
		}
		inflight := g.buckets[slot]
		if g.obsTB != nil && g.cycle%g.obsSample == 0 {
			g.obsTB.Counter("grid", "deliveries", float64(g.cycle), float64(len(init)+len(inflight)))
			g.obsTB.Counter("grid", "outputs_pending", float64(g.cycle), float64(remaining))
		}
		if len(init)+len(inflight) == 0 {
			continue
		}
		// Injections were queued before any runtime token, so they are
		// processed first within the cycle, matching the original
		// single-queue ordering.
		both := [2][]delivery{init, inflight}

		// Weight tokens first: a weight reaching its destination row is
		// captured into the PE the same cycle an aligned activation may
		// use it; otherwise it shifts down one row (plus the boundary
		// register when crossing bands).
		for _, ds := range both {
			for _, d := range ds {
				if d.kind != weightToken {
					continue
				}
				cl := g.clusters[d.cluster]
				if d.row == d.m {
					cl.loaded[int(d.row)*cl.n+int(d.col)] = true
					continue
				}
				if d.row > d.m || int(d.row)+1 > cl.k {
					return g.cycle, fmt.Errorf("systolic: weight token overshot row %d (dest %d)", d.row, d.m)
				}
				delay := int64(1)
				if (int(d.row)+1)%g.subR == 0 && int(d.row)+1 < cl.k {
					delay += BoundaryDelay
				}
				nd := d
				nd.cycle = g.cycle + delay
				nd.row = d.row + 1
				g.push(nd)
			}
		}

		// Deposit act and psum tokens into each cluster's dense per-PE
		// state; psums reaching row K land in the output collector.
		for _, ds := range both {
			for _, d := range ds {
				if d.kind == weightToken {
					continue
				}
				cl := g.clusters[d.cluster]
				if d.kind == psumToken && int(d.row) == cl.k {
					// Output collector at the cluster's drain edge.
					if d.m < 0 || int(d.m) >= cl.m || d.col < 0 || int(d.col) >= cl.n {
						return g.cycle, fmt.Errorf("systolic: stray output token m=%d col=%d cluster=%d", d.m, d.col, d.cluster)
					}
					if cl.outSeen[d.m][d.col] {
						return g.cycle, fmt.Errorf("systolic: duplicate output (%d,%d) cluster=%d", d.m, d.col, d.cluster)
					}
					cl.outSeen[d.m][d.col] = true
					cl.out[d.m][d.col] = d.v
					cl.pending--
					cl.lastOut = g.cycle
					remaining--
					continue
				}
				idx := int(d.row)*cl.n + int(d.col)
				cell := &cl.cells[idx]
				if cell.actM < 0 && cell.psumM < 0 {
					cl.touched = append(cl.touched, int32(idx))
				}
				switch d.kind {
				case actToken:
					if cell.actM >= 0 {
						return g.cycle, fmt.Errorf("systolic: act collision at cluster %d PE (%d,%d) (m=%d,m=%d)",
							d.cluster, d.row, d.col, cell.actM, d.m)
					}
					cell.actM, cell.actV = d.m, d.v
				case psumToken:
					if cell.psumM >= 0 {
						return g.cycle, fmt.Errorf("systolic: psum collision at cluster %d PE (%d,%d) (m=%d,m=%d)",
							d.cluster, d.row, d.col, cell.psumM, d.m)
					}
					cell.psumM, cell.psumV = d.m, d.v
				}
			}
		}
		g.buckets[slot] = inflight[:0]
		if init != nil {
			g.initial[g.cycle] = nil
		}

		// Each PE holding an activation computes and forwards; a psum
		// with no matching activation below row 0 is a timing bug.
		for ci, cl := range g.clusters {
			if len(cl.touched) == 0 {
				continue
			}
			for _, idx := range cl.touched {
				cell := &cl.cells[idx]
				row := int(idx) / cl.n
				col := int(idx) % cl.n
				if cell.actM < 0 {
					if row > 0 {
						return g.cycle, fmt.Errorf("systolic: orphan psum at PE (%d,%d) m=%d cluster=%d", row, col, cell.psumM, ci)
					}
					cell.psumM = -1
					continue
				}
				var p int32
				if row > 0 {
					if cell.psumM < 0 {
						return g.cycle, fmt.Errorf("systolic: act token (cluster %d, PE %d,%d, m=%d) missing partial sum", ci, row, col, cell.actM)
					}
					if cell.psumM != cell.actM {
						return g.cycle, fmt.Errorf("systolic: wavefront misalignment at PE (%d,%d): act m=%d psum m=%d", row, col, cell.actM, cell.psumM)
					}
					p = cell.psumV
				}
				if !cl.loaded[idx] {
					return g.cycle, fmt.Errorf("systolic: PE (%d,%d) computed before its weight loaded (cluster %d, m=%d)",
						row, col, ci, cell.actM)
				}
				p += int32(int8(cell.actV)) * int32(cl.w[idx])
				mIdx, actV := cell.actM, cell.actV
				cell.actM, cell.psumM = -1, -1

				// Forward the partial sum down, paying the boundary
				// register when leaving a subarray band (or into the
				// collector).
				pDelay := int64(1)
				if (row+1)%g.subR == 0 && row+1 < cl.k {
					pDelay += BoundaryDelay
				}
				g.push(delivery{
					cycle: g.cycle + pDelay, cluster: int32(ci), kind: psumToken,
					row: int32(row + 1), col: int32(col), m: mIdx, v: p,
				})

				// Forward the activation along the row while more weight
				// columns remain.
				if col+1 < cl.n {
					aDelay := int64(1)
					if (col+1)%g.subC == 0 {
						aDelay += BoundaryDelay
					}
					g.push(delivery{
						cycle: g.cycle + aDelay, cluster: int32(ci), kind: actToken,
						row: int32(row), col: int32(col + 1), m: mIdx, v: actV,
					})
				}
			}
			cl.touched = cl.touched[:0]
		}
	}
	if remaining > 0 {
		return g.cycle, fmt.Errorf("systolic: %d outputs still pending after %d cycles", remaining, maxCycles)
	}
	if g.obsTB != nil {
		// Per-band occupancy: one span per claimed subarray band from the
		// cluster's configuration (cycle 0) to its last drained output —
		// the spatial co-location picture the fission architecture exists
		// to create.
		for id, cl := range g.clusters {
			name := fmt.Sprintf("cluster %d: %dx%dx%d", id, cl.m, cl.k, cl.n)
			for r := cl.spec.BandRow; r < cl.spec.BandRow+cl.spec.H; r++ {
				for c := cl.spec.BandCol; c < cl.spec.BandCol+cl.spec.W; c++ {
					g.obsTB.Span(fmt.Sprintf("band %d,%d", r, c), name,
						0, float64(cl.lastOut+1),
						obs.Num("cluster", float64(id)),
						obs.Num("drain_cycle", float64(cl.lastOut)))
				}
			}
		}
	}
	if g.occAcct != nil {
		// Band-cycle occupancy accounting: claimed bands are busy from
		// configuration (cycle 0) through their cluster's drain cycle,
		// faulty bands are masked for the whole run, and CloseHorizon
		// derives idle as the exact integer remainder. AddCluster never
		// places a cluster on a faulty band, so busy and faulted bands
		// are disjoint.
		a := g.occAcct
		a.SetUnits(int64(g.bandsR * g.bandsC))
		horizon := g.cycle + 1
		for _, cl := range g.clusters {
			busy := cl.lastOut + 1
			if busy > horizon {
				horizon = busy
			}
			a.AddBusy(int64(cl.spec.H*cl.spec.W), busy)
		}
		nFaulty := int64(0)
		for r := 0; r < g.bandsR; r++ {
			for c := 0; c < g.bandsC; c++ {
				if g.faulty[r][c] {
					nFaulty++
				}
			}
		}
		a.AddFaulted(nFaulty, horizon)
		a.CloseHorizon(horizon)
	}
	return g.cycle, nil
}

// Output returns cluster id's M×N result matrix. Valid after Run.
func (g *Grid) Output(id int) ([][]int32, error) {
	if id < 0 || id >= len(g.clusters) {
		return nil, fmt.Errorf("systolic: no cluster %d", id)
	}
	cl := g.clusters[id]
	if cl.pending != 0 {
		return nil, fmt.Errorf("systolic: cluster %d still has %d outputs pending", id, cl.pending)
	}
	return cl.out, nil
}

// DrainCycle returns the cycle at which cluster id's last output emerged
// (0-indexed); total streaming latency is DrainCycle+1 cycles.
func (g *Grid) DrainCycle(id int) (int64, error) {
	if id < 0 || id >= len(g.clusters) {
		return 0, fmt.Errorf("systolic: no cluster %d", id)
	}
	return g.clusters[id].lastOut, nil
}

// Reference computes the M×N GEMM a·w on the host for verification.
func Reference(a [][]int8, w [][]int8) [][]int32 {
	m := len(a)
	k := len(w)
	n := 0
	if k > 0 {
		n = len(w[0])
	}
	out := make([][]int32, m)
	for i := 0; i < m; i++ {
		out[i] = make([]int32, n)
		for j := 0; j < n; j++ {
			var s int32
			for x := 0; x < k; x++ {
				s += int32(a[i][x]) * int32(w[x][j])
			}
			out[i][j] = s
		}
	}
	return out
}
