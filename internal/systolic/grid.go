// Package systolic is a functional, cycle-level simulator of the
// (omni-directional) systolic PE grid. It moves real int8 activation and
// int32 partial-sum tokens through PEs one clock cycle at a time — no
// closed-form shortcuts — and therefore serves as the ground truth the
// analytical model in internal/model is cross-validated against, playing
// the role the paper's Verilog implementation played for its simulator.
//
// The engine computes in *flow coordinates*: partial sums advance in the
// +row direction and activations in the +column direction. The
// omni-directional feature — which physical edge is "first" — is a
// routing concern handled by the mux network; internal/arch produces and
// validates those per-subarray direction/link bits (see
// ChipState.StageShape and the serpentine tests). Here the physically
// routed cluster appears as a straight logical array with pipeline
// boundary registers between subarrays.
package systolic

import (
	"fmt"
)

// BoundaryDelay is the extra pipeline latency a token pays when crossing
// a subarray boundary (the registered ring-bus segment). It must match
// the analytical model's assumption; internal/model cross-validates this.
const BoundaryDelay = 2

// ClusterSpec places one logical systolic cluster on the grid.
type ClusterSpec struct {
	// BandRow, BandCol locate the cluster's top-left subarray band.
	BandRow, BandCol int
	// H, W are the cluster extent in subarray bands.
	H, W int
}

// tokenKind discriminates deliveries.
type tokenKind uint8

const (
	actToken tokenKind = iota
	psumToken
	weightToken
)

// delivery is one token arriving at a PE (or collector) at a given cycle.
type delivery struct {
	cycle   int64
	cluster int
	kind    tokenKind
	row     int // cluster-local row; row == K means the output collector
	col     int // cluster-local col
	m       int // activation-row index the token belongs to
	v       int32
}

type cluster struct {
	spec    ClusterSpec
	m, k, n int
	w       [][]int8 // k×n weights
	// loaded[r][c] marks the weight as present in the PE. When the
	// cluster uses streamed loading, weights arrive as tokens shifting
	// down the columns (bottom row first, so every row lands at cycle
	// K−1 plus its band-boundary delays); with preloading every entry
	// starts true.
	loaded  [][]bool
	out     [][]int32
	outSeen [][]bool
	pending int
	lastOut int64
}

// Grid is a functional multi-cluster systolic array simulator.
type Grid struct {
	subR, subC     int
	bandsR, bandsC int
	owner          [][]int // band ownership, -1 = free
	clusters       []*cluster
	queue          map[int64][]delivery
	cycle          int64
	ran            bool
}

// New creates a grid of bandsR×bandsC subarrays, each subR×subC PEs.
func New(subR, subC, bandsR, bandsC int) (*Grid, error) {
	if subR <= 0 || subC <= 0 || bandsR <= 0 || bandsC <= 0 {
		return nil, fmt.Errorf("systolic: non-positive grid dims %d %d %d %d", subR, subC, bandsR, bandsC)
	}
	owner := make([][]int, bandsR)
	for i := range owner {
		owner[i] = make([]int, bandsC)
		for j := range owner[i] {
			owner[i][j] = -1
		}
	}
	return &Grid{
		subR: subR, subC: subC,
		bandsR: bandsR, bandsC: bandsC,
		owner: owner,
		queue: make(map[int64][]delivery),
	}, nil
}

// AddCluster claims the spec's subarray bands for a new logical cluster
// and schedules an M×K×N GEMM on it: weights (K×N) are preloaded, the
// activation matrix A (M×K) is injected with the systolic skew the
// compiler programs into the pod buffers. Returns the cluster id.
func (g *Grid) AddCluster(spec ClusterSpec, wts [][]int8, a [][]int8) (int, error) {
	return g.addCluster(spec, wts, a, false)
}

// AddClusterStreamLoad is AddCluster with the weight-load phase
// simulated: weight rows stream from the weight buffer one row per cycle
// (bottom row first) and shift down the columns, so the array is fully
// loaded at cycle K−1 (plus band-boundary registers); activations are
// skewed to start exactly then — the exposed first-tile load the
// analytical model charges.
func (g *Grid) AddClusterStreamLoad(spec ClusterSpec, wts [][]int8, a [][]int8) (int, error) {
	return g.addCluster(spec, wts, a, true)
}

func (g *Grid) addCluster(spec ClusterSpec, wts [][]int8, a [][]int8, streamLoad bool) (int, error) {
	if g.ran {
		return 0, fmt.Errorf("systolic: grid already ran")
	}
	if spec.H <= 0 || spec.W <= 0 ||
		spec.BandRow < 0 || spec.BandCol < 0 ||
		spec.BandRow+spec.H > g.bandsR || spec.BandCol+spec.W > g.bandsC {
		return 0, fmt.Errorf("systolic: cluster %+v out of grid %dx%d bands", spec, g.bandsR, g.bandsC)
	}
	for r := spec.BandRow; r < spec.BandRow+spec.H; r++ {
		for c := spec.BandCol; c < spec.BandCol+spec.W; c++ {
			if g.owner[r][c] != -1 {
				return 0, fmt.Errorf("systolic: band (%d,%d) already owned by cluster %d", r, c, g.owner[r][c])
			}
		}
	}

	k := len(wts)
	if k == 0 {
		return 0, fmt.Errorf("systolic: empty weight matrix")
	}
	n := len(wts[0])
	m := len(a)
	if m == 0 {
		return 0, fmt.Errorf("systolic: empty activation matrix")
	}
	rows := spec.H * g.subR
	cols := spec.W * g.subC
	if k > rows || n > cols {
		return 0, fmt.Errorf("systolic: weight tile %dx%d exceeds cluster %dx%d PEs", k, n, rows, cols)
	}
	for i := range wts {
		if len(wts[i]) != n {
			return 0, fmt.Errorf("systolic: ragged weight matrix row %d", i)
		}
	}
	for i := range a {
		if len(a[i]) != k {
			return 0, fmt.Errorf("systolic: activation row %d has %d cols, want K=%d", i, len(a[i]), k)
		}
	}

	id := len(g.clusters)
	cl := &cluster{spec: spec, m: m, k: k, n: n, w: wts, pending: m * n}
	cl.out = make([][]int32, m)
	cl.outSeen = make([][]bool, m)
	for i := range cl.out {
		cl.out[i] = make([]int32, n)
		cl.outSeen[i] = make([]bool, n)
	}
	cl.loaded = make([][]bool, k)
	for i := range cl.loaded {
		cl.loaded[i] = make([]bool, n)
		for j := range cl.loaded[i] {
			cl.loaded[i][j] = !streamLoad
		}
	}
	g.clusters = append(g.clusters, cl)
	for r := spec.BandRow; r < spec.BandRow+spec.H; r++ {
		for c := spec.BandCol; c < spec.BandCol+spec.W; c++ {
			g.owner[r][c] = id
		}
	}

	// Streamed weight load: one row per cycle from the top edge, bottom
	// row (k−1) first so every row lands at cycle (k−1) plus the
	// band-boundary registers it crossed.
	actBase := 0
	if streamLoad {
		for ki := k - 1; ki >= 0; ki-- {
			issue := int64(k - 1 - ki)
			for ni := 0; ni < n; ni++ {
				g.push(delivery{
					cycle: issue, cluster: id, kind: weightToken,
					row: 0, col: ni, m: ki, v: int32(wts[ki][ni]),
				})
			}
		}
		actBase = k - 1
	}

	// Inject activations: a[mi][ki] enters row ki's first column at cycle
	// base + mi + ki + BoundaryDelay·(ki/subR). The band offset keeps the
	// activation wavefront aligned with partial sums that paid the
	// boundary register crossing — this is the skew the compiler programs.
	for mi := 0; mi < m; mi++ {
		for ki := 0; ki < k; ki++ {
			t := int64(actBase + mi + ki + BoundaryDelay*(ki/g.subR))
			g.push(delivery{
				cycle: t, cluster: id, kind: actToken,
				row: ki, col: 0, m: mi, v: int32(a[mi][ki]),
			})
		}
	}
	return id, nil
}

func (g *Grid) push(d delivery) {
	g.queue[d.cycle] = append(g.queue[d.cycle], d)
}

// Run simulates until every cluster has drained all outputs or maxCycles
// elapse. It returns the number of cycles simulated.
func (g *Grid) Run(maxCycles int64) (int64, error) {
	if g.ran {
		return 0, fmt.Errorf("systolic: grid already ran")
	}
	g.ran = true
	if len(g.clusters) == 0 {
		return 0, fmt.Errorf("systolic: no clusters")
	}
	remaining := 0
	for _, cl := range g.clusters {
		remaining += cl.pending
	}

	// acts[cluster] holds the activation token present at each PE this
	// cycle; psums likewise. Maps keyed by (row, col) stay small because
	// a wavefront touches each PE once per cycle.
	for g.cycle = 0; g.cycle <= maxCycles && remaining > 0; g.cycle++ {
		ds := g.queue[g.cycle]
		if len(ds) == 0 {
			continue
		}
		delete(g.queue, g.cycle)

		// Weight tokens first: a weight reaching its destination row is
		// captured into the PE the same cycle an aligned activation may
		// use it; otherwise it shifts down one row (plus the boundary
		// register when crossing bands).
		for _, d := range ds {
			if d.kind != weightToken {
				continue
			}
			cl := g.clusters[d.cluster]
			if d.row == d.m {
				cl.loaded[d.row][d.col] = true
				continue
			}
			if d.row > d.m || d.row+1 > cl.k {
				return g.cycle, fmt.Errorf("systolic: weight token overshot row %d (dest %d)", d.row, d.m)
			}
			delay := int64(1)
			if (d.row+1)%g.subR == 0 && d.row+1 < cl.k {
				delay += BoundaryDelay
			}
			nd := d
			nd.cycle = g.cycle + delay
			nd.row = d.row + 1
			g.push(nd)
		}

		// Pair act and psum tokens arriving at the same PE this cycle.
		type key struct{ cl, row, col int }
		acts := make(map[key]delivery)
		psums := make(map[key]delivery)
		for _, d := range ds {
			if d.kind == weightToken {
				continue
			}
			cl := g.clusters[d.cluster]
			if d.kind == psumToken && d.row == cl.k {
				// Output collector at the cluster's drain edge.
				if d.m < 0 || d.m >= cl.m || d.col < 0 || d.col >= cl.n {
					return g.cycle, fmt.Errorf("systolic: stray output token m=%d col=%d cluster=%d", d.m, d.col, d.cluster)
				}
				if cl.outSeen[d.m][d.col] {
					return g.cycle, fmt.Errorf("systolic: duplicate output (%d,%d) cluster=%d", d.m, d.col, d.cluster)
				}
				cl.outSeen[d.m][d.col] = true
				cl.out[d.m][d.col] = d.v
				cl.pending--
				cl.lastOut = g.cycle
				remaining--
				continue
			}
			k := key{d.cluster, d.row, d.col}
			switch d.kind {
			case actToken:
				if prev, dup := acts[k]; dup {
					return g.cycle, fmt.Errorf("systolic: act collision at %+v (m=%d,m=%d)", k, prev.m, d.m)
				}
				acts[k] = d
			case psumToken:
				if prev, dup := psums[k]; dup {
					return g.cycle, fmt.Errorf("systolic: psum collision at %+v (m=%d,m=%d)", k, prev.m, d.m)
				}
				psums[k] = d
			}
		}

		// Each PE holding an activation computes and forwards.
		for k, ad := range acts {
			cl := g.clusters[k.cl]
			var p int32
			if k.row > 0 {
				pd, ok := psums[k]
				if !ok {
					return g.cycle, fmt.Errorf("systolic: act token (cluster %d, PE %d,%d, m=%d) missing partial sum", k.cl, k.row, k.col, ad.m)
				}
				if pd.m != ad.m {
					return g.cycle, fmt.Errorf("systolic: wavefront misalignment at PE (%d,%d): act m=%d psum m=%d", k.row, k.col, ad.m, pd.m)
				}
				p = pd.v
				delete(psums, k)
			}
			if !cl.loaded[k.row][k.col] {
				return g.cycle, fmt.Errorf("systolic: PE (%d,%d) computed before its weight loaded (cluster %d, m=%d)",
					k.row, k.col, k.cl, ad.m)
			}
			p += int32(int8(ad.v)) * int32(cl.w[k.row][k.col])

			// Forward the partial sum down, paying the boundary register
			// when leaving a subarray band (or into the collector).
			pDelay := int64(1)
			if (k.row+1)%g.subR == 0 && k.row+1 < cl.k {
				pDelay += BoundaryDelay
			}
			g.push(delivery{
				cycle: g.cycle + pDelay, cluster: k.cl, kind: psumToken,
				row: k.row + 1, col: k.col, m: ad.m, v: p,
			})

			// Forward the activation along the row while more weight
			// columns remain.
			if k.col+1 < cl.n {
				aDelay := int64(1)
				if (k.col+1)%g.subC == 0 {
					aDelay += BoundaryDelay
				}
				g.push(delivery{
					cycle: g.cycle + aDelay, cluster: k.cl, kind: actToken,
					row: k.row, col: k.col + 1, m: ad.m, v: ad.v,
				})
			}
		}
		// Any psum token left unpaired below row 0 is a timing bug.
		for k, pd := range psums {
			if k.row > 0 {
				return g.cycle, fmt.Errorf("systolic: orphan psum at PE (%d,%d) m=%d cluster=%d", k.row, k.col, pd.m, k.cl)
			}
		}
	}
	if remaining > 0 {
		return g.cycle, fmt.Errorf("systolic: %d outputs still pending after %d cycles", remaining, maxCycles)
	}
	return g.cycle, nil
}

// Output returns cluster id's M×N result matrix. Valid after Run.
func (g *Grid) Output(id int) ([][]int32, error) {
	if id < 0 || id >= len(g.clusters) {
		return nil, fmt.Errorf("systolic: no cluster %d", id)
	}
	cl := g.clusters[id]
	if cl.pending != 0 {
		return nil, fmt.Errorf("systolic: cluster %d still has %d outputs pending", id, cl.pending)
	}
	return cl.out, nil
}

// DrainCycle returns the cycle at which cluster id's last output emerged
// (0-indexed); total streaming latency is DrainCycle+1 cycles.
func (g *Grid) DrainCycle(id int) (int64, error) {
	if id < 0 || id >= len(g.clusters) {
		return 0, fmt.Errorf("systolic: no cluster %d", id)
	}
	return g.clusters[id].lastOut, nil
}

// Reference computes the M×N GEMM a·w on the host for verification.
func Reference(a [][]int8, w [][]int8) [][]int32 {
	m := len(a)
	k := len(w)
	n := 0
	if k > 0 {
		n = len(w[0])
	}
	out := make([][]int32, m)
	for i := 0; i < m; i++ {
		out[i] = make([]int32, n)
		for j := 0; j < n; j++ {
			var s int32
			for x := 0; x < k; x++ {
				s += int32(a[i][x]) * int32(w[x][j])
			}
			out[i][j] = s
		}
	}
	return out
}
