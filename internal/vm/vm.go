// Package vm is the functional execution backend: it runs a compiled
// macro-instruction binary for a network with real int8 data, driving the
// cycle-level systolic grid for every GEMM tile and host-modelled SIMD
// vector-unit code for the rest. Its output is bit-exact against the pure
// host reference (Reference), which is how the repository demonstrates
// that the compiler's tiling and the omni-directional grid actually
// compute the network — the end-to-end counterpart of the paper's RTL
// validation.
//
// Tensors are laid out H×W×C, int8, with int32 accumulation and a
// right-shift requantization between layers (TPU-style).
package vm

import (
	"fmt"
	"math/rand"

	"planaria/internal/arch"
	"planaria/internal/compiler"
	"planaria/internal/dnn"
	"planaria/internal/isa"
	"planaria/internal/systolic"
)

// requantShift is the right shift applied to int32 accumulators between
// layers.
const requantShift = 3

func requant(v int32) int8 {
	v >>= requantShift
	if v > 127 {
		return 127
	}
	if v < -128 {
		return -128
	}
	return int8(v)
}

// Machine holds a network and its (randomly initialized) weights.
type Machine struct {
	cfg     arch.Config
	net     *dnn.Network
	weights [][][]int8 // per GEMM layer: K×N (DWConv: K=KH·KW, N=InC)
}

// NewMachine builds a machine with deterministic random weights in
// [-3, 3] (small magnitudes keep multi-layer accumulators meaningful
// after requantization).
func NewMachine(cfg arch.Config, net *dnn.Network, seed int64) (*Machine, error) {
	if err := net.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	m := &Machine{cfg: cfg, net: net, weights: make([][][]int8, len(net.Layers))}
	for i := range net.Layers {
		l := &net.Layers[i]
		if !l.Kind.IsGEMM() {
			continue
		}
		k, n := weightDims(l)
		w := make([][]int8, k)
		for r := range w {
			w[r] = make([]int8, n)
			for c := range w[r] {
				w[r][c] = int8(rng.Intn(7) - 3)
			}
		}
		m.weights[i] = w
	}
	return m, nil
}

// weightDims returns the weight matrix dimensions for a GEMM layer.
func weightDims(l *dnn.Layer) (k, n int) {
	if l.Kind == dnn.DWConv {
		return l.KH * l.KW, l.InC
	}
	_, k, n = l.GEMM()
	return k, n
}

// RandomInput produces a deterministic random input tensor for the
// machine's network.
func (m *Machine) RandomInput(seed int64) []int8 {
	rng := rand.New(rand.NewSource(seed))
	in := make([]int8, m.net.InputH*m.net.InputW*m.net.InputC)
	for i := range in {
		in[i] = int8(rng.Intn(9) - 4)
	}
	return in
}

// tensor is an H×W×C int8 activation map.
type tensor struct {
	h, w, c int
	data    []int8
}

func (t *tensor) at(y, x, ch int) int8 {
	if y < 0 || x < 0 || y >= t.h || x >= t.w {
		return 0 // zero padding
	}
	return t.data[(y*t.w+x)*t.c+ch]
}

// im2col builds the M×K activation matrix of a convolution.
func im2col(in *tensor, l *dnn.Layer) [][]int8 {
	mrows := l.OutH * l.OutW
	k := l.KH * l.KW * l.InC
	a := make([][]int8, mrows)
	for oh := 0; oh < l.OutH; oh++ {
		for ow := 0; ow < l.OutW; ow++ {
			row := make([]int8, k)
			idx := 0
			for ky := 0; ky < l.KH; ky++ {
				for kx := 0; kx < l.KW; kx++ {
					for ch := 0; ch < l.InC; ch++ {
						row[idx] = in.at(oh*l.Stride+ky-l.Pad, ow*l.Stride+kx-l.Pad, ch)
						idx++
					}
				}
			}
			a[oh*l.OutW+ow] = row
		}
	}
	return a
}

// im2colChannel builds the M×(KH·KW) matrix of one depthwise channel.
func im2colChannel(in *tensor, l *dnn.Layer, ch int) [][]int8 {
	mrows := l.OutH * l.OutW
	k := l.KH * l.KW
	a := make([][]int8, mrows)
	for oh := 0; oh < l.OutH; oh++ {
		for ow := 0; ow < l.OutW; ow++ {
			row := make([]int8, k)
			idx := 0
			for ky := 0; ky < l.KH; ky++ {
				for kx := 0; kx < l.KW; kx++ {
					row[idx] = in.at(oh*l.Stride+ky-l.Pad, ow*l.Stride+kx-l.Pad, ch)
					idx++
				}
			}
			a[oh*l.OutW+ow] = row
		}
	}
	return a
}

// gemmOnGrid runs an M×K×N GEMM tiled onto systolic clusters of the given
// shape, accumulating across K-tiles host-side (the output-buffer
// accumulation of the real design). Returns the int32 result and the
// systolic cycles spent (sum over tiles — clusters within a shape run in
// parallel, so parallel tiles count once).
func (m *Machine) gemmOnGrid(a [][]int8, w [][]int8, sh arch.Shape) ([][]int32, int64, error) {
	mrows := len(a)
	k := len(w)
	if k == 0 || mrows == 0 {
		return nil, 0, fmt.Errorf("vm: empty GEMM operands")
	}
	n := len(w[0])
	r := sh.PERows(m.cfg)
	c := sh.PECols(m.cfg)

	out := make([][]int32, mrows)
	for i := range out {
		out[i] = make([]int32, n)
	}
	var cycles int64
	for k0 := 0; k0 < k; k0 += r {
		k1 := min(k0+r, k)
		for n0 := 0; n0 < n; n0 += c {
			n1 := min(n0+c, n)
			wt := make([][]int8, k1-k0)
			for i := range wt {
				wt[i] = w[k0+i][n0:n1]
			}
			at := make([][]int8, mrows)
			for i := range at {
				at[i] = a[i][k0:k1]
			}
			g, err := systolic.New(m.cfg.SubRows, m.cfg.SubCols, sh.H, sh.W)
			if err != nil {
				return nil, 0, err
			}
			// The load phase is simulated too: weight rows stream in and
			// shift down before activations start (AddClusterStreamLoad).
			id, err := g.AddClusterStreamLoad(systolic.ClusterSpec{H: sh.H, W: sh.W}, wt, at)
			if err != nil {
				return nil, 0, err
			}
			cy, err := g.Run(int64(10*(mrows+r+c) + 1000))
			if err != nil {
				return nil, 0, err
			}
			res, err := g.Output(id)
			if err != nil {
				return nil, 0, err
			}
			for i := 0; i < mrows; i++ {
				for j := n0; j < n1; j++ {
					out[i][j] += res[i][j-n0]
				}
			}
			cycles += cy
		}
	}
	return out, cycles, nil
}

// Result reports a functional execution.
type Result struct {
	Output         []int8
	SystolicCycles int64
	TilesRun       int64
	InstrsRetired  int
}

// Run executes the binary against the machine's weights and the input
// tensor. The binary's instruction stream is validated and walked
// instruction by instruction; every MATMUL drives real tiles through the
// cycle-level grid. Networks containing Repeat>1 layers (recurrent
// unrolls) are rejected — the functional backend targets feed-forward
// models.
func (m *Machine) Run(bin *isa.Binary, tab *compiler.Table, input []int8) (*Result, error) {
	if err := bin.Validate(); err != nil {
		return nil, err
	}
	if bin.Net != m.net.Name || tab.Net != m.net.Name {
		return nil, fmt.Errorf("vm: binary/table for %q,%q on machine for %q", bin.Net, tab.Net, m.net.Name)
	}
	if want := m.net.InputH * m.net.InputW * m.net.InputC; len(input) != want {
		return nil, fmt.Errorf("vm: input has %d elements, want %d", len(input), want)
	}
	cur := &tensor{h: m.net.InputH, w: m.net.InputW, c: m.net.InputC, data: input}
	res := &Result{}

	shapes := make(map[int]arch.Shape)
	executed := make(map[int]bool)
	for _, in := range bin.Instrs {
		res.InstrsRetired++
		li := int(in.Layer)
		switch in.Op {
		case isa.OpConfig:
			shapes[li] = arch.Shape{Clusters: int(in.A), H: int(in.B), W: int(in.C)}
		case isa.OpMatMul, isa.OpVector:
			if executed[li] {
				continue // further tiles of an already-executed layer
			}
			executed[li] = true
			if li >= len(m.net.Layers) {
				return nil, fmt.Errorf("vm: instruction for layer %d beyond network", li)
			}
			l := &m.net.Layers[li]
			if l.Repeat > 1 {
				return nil, fmt.Errorf("vm: layer %s has Repeat=%d; functional backend is feed-forward only", l.Name, l.Repeat)
			}
			sh, ok := shapes[li]
			if !ok {
				return nil, fmt.Errorf("vm: layer %d executed without CONFIG", li)
			}
			next, cy, tiles, err := m.execLayer(l, cur, sh)
			if err != nil {
				return nil, fmt.Errorf("vm: layer %s: %w", l.Name, err)
			}
			cur = next
			res.SystolicCycles += cy
			res.TilesRun += tiles
		}
	}
	res.Output = cur.data
	return res, nil
}

// execLayer applies one layer to the current tensor.
func (m *Machine) execLayer(l *dnn.Layer, cur *tensor, sh arch.Shape) (*tensor, int64, int64, error) {
	switch l.Kind {
	case dnn.Conv, dnn.FC, dnn.MatMul:
		var a [][]int8
		if l.Kind == dnn.Conv {
			a = im2col(cur, l)
		} else {
			// Flatten the current tensor into M=1 rows of K.
			_, k, _ := l.GEMM()
			if len(cur.data) != k {
				return nil, 0, 0, fmt.Errorf("flattened input %d != K %d", len(cur.data), k)
			}
			a = [][]int8{cur.data}
		}
		out32, cy, err := m.gemmOnGrid(a, m.weights[indexOf(m.net, l)], sh)
		if err != nil {
			return nil, 0, 0, err
		}
		var next *tensor
		if l.Kind == dnn.Conv {
			next = &tensor{h: l.OutH, w: l.OutW, c: l.OutC, data: make([]int8, l.OutH*l.OutW*l.OutC)}
			for p := 0; p < l.OutH*l.OutW; p++ {
				for ch := 0; ch < l.OutC; ch++ {
					next.data[p*l.OutC+ch] = requant(out32[p][ch])
				}
			}
		} else {
			n := len(out32[0])
			next = &tensor{h: 1, w: 1, c: n, data: make([]int8, n)}
			for j := 0; j < n; j++ {
				next.data[j] = requant(out32[0][j])
			}
		}
		return next, cy, int64(len(a)), nil

	case dnn.DWConv:
		next := &tensor{h: l.OutH, w: l.OutW, c: l.OutC, data: make([]int8, l.OutH*l.OutW*l.OutC)}
		w := m.weights[indexOf(m.net, l)]
		var cycles, tiles int64
		for ch := 0; ch < l.InC; ch++ {
			a := im2colChannel(cur, l, ch)
			col := make([][]int8, len(w))
			for i := range w {
				col[i] = []int8{w[i][ch]}
			}
			out32, cy, err := m.gemmOnGrid(a, col, arch.Shape{Clusters: 1, H: 1, W: 1})
			if err != nil {
				return nil, 0, 0, err
			}
			for p := 0; p < l.OutH*l.OutW; p++ {
				next.data[p*l.OutC+ch] = requant(out32[p][0])
			}
			// Channels run in parallel across the shape's clusters.
			if ch%maxInt(sh.Clusters, 1) == 0 {
				cycles += cy
			}
			tiles++
		}
		return next, cycles, tiles, nil

	case dnn.Pool:
		next := &tensor{h: l.OutH, w: l.OutW, c: l.OutC, data: make([]int8, l.OutH*l.OutW*l.OutC)}
		for oh := 0; oh < l.OutH; oh++ {
			for ow := 0; ow < l.OutW; ow++ {
				for ch := 0; ch < l.InC; ch++ {
					best := int8(-128)
					for ky := 0; ky < l.KH; ky++ {
						for kx := 0; kx < l.KW; kx++ {
							v := cur.at(oh*l.Stride+ky-l.Pad, ow*l.Stride+kx-l.Pad, ch)
							if v > best {
								best = v
							}
						}
					}
					next.data[(oh*l.OutW+ow)*l.OutC+ch] = best
				}
			}
		}
		return next, 0, 1, nil

	case dnn.GlobalPool:
		next := &tensor{h: 1, w: 1, c: l.OutC, data: make([]int8, l.OutC)}
		for ch := 0; ch < l.InC; ch++ {
			var s int32
			for y := 0; y < l.InH; y++ {
				for x := 0; x < l.InW; x++ {
					s += int32(cur.at(y, x, ch))
				}
			}
			next.data[ch] = int8(s / int32(l.InH*l.InW))
		}
		return next, 0, 1, nil

	case dnn.Add:
		// Serialized residual branch: the reference semantics double the
		// tensor (x + x) with saturation.
		next := &tensor{h: cur.h, w: cur.w, c: cur.c, data: make([]int8, len(cur.data))}
		for i, v := range cur.data {
			s := int32(v) * 2
			if s > 127 {
				s = 127
			}
			if s < -128 {
				s = -128
			}
			next.data[i] = int8(s)
		}
		return next, 0, 1, nil

	case dnn.Activation:
		next := &tensor{h: cur.h, w: cur.w, c: cur.c, data: make([]int8, len(cur.data))}
		for i, v := range cur.data {
			if v > 0 {
				next.data[i] = v
			}
		}
		return next, 0, 1, nil
	}
	return nil, 0, 0, fmt.Errorf("unsupported layer kind %v", l.Kind)
}

func indexOf(n *dnn.Network, l *dnn.Layer) int {
	for i := range n.Layers {
		if &n.Layers[i] == l {
			return i
		}
	}
	return -1
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Reference executes the network on the host with plain loops — the
// golden model the grid-backed Run is compared against.
func (m *Machine) Reference(input []int8) ([]int8, error) {
	if want := m.net.InputH * m.net.InputW * m.net.InputC; len(input) != want {
		return nil, fmt.Errorf("vm: input has %d elements, want %d", len(input), want)
	}
	cur := &tensor{h: m.net.InputH, w: m.net.InputW, c: m.net.InputC, data: input}
	for i := range m.net.Layers {
		l := &m.net.Layers[i]
		var err error
		cur, err = m.refLayer(l, cur)
		if err != nil {
			return nil, fmt.Errorf("vm: reference layer %s: %w", l.Name, err)
		}
	}
	return cur.data, nil
}

func (m *Machine) refLayer(l *dnn.Layer, cur *tensor) (*tensor, error) {
	switch l.Kind {
	case dnn.Conv, dnn.FC, dnn.MatMul:
		var a [][]int8
		if l.Kind == dnn.Conv {
			a = im2col(cur, l)
		} else {
			_, k, _ := l.GEMM()
			if len(cur.data) != k {
				return nil, fmt.Errorf("flattened input %d != K %d", len(cur.data), k)
			}
			a = [][]int8{cur.data}
		}
		out32 := systolic.Reference(a, m.weights[indexOf(m.net, l)])
		if l.Kind == dnn.Conv {
			next := &tensor{h: l.OutH, w: l.OutW, c: l.OutC, data: make([]int8, l.OutH*l.OutW*l.OutC)}
			for p := 0; p < l.OutH*l.OutW; p++ {
				for ch := 0; ch < l.OutC; ch++ {
					next.data[p*l.OutC+ch] = requant(out32[p][ch])
				}
			}
			return next, nil
		}
		n := len(out32[0])
		next := &tensor{h: 1, w: 1, c: n, data: make([]int8, n)}
		for j := 0; j < n; j++ {
			next.data[j] = requant(out32[0][j])
		}
		return next, nil
	case dnn.DWConv:
		next := &tensor{h: l.OutH, w: l.OutW, c: l.OutC, data: make([]int8, l.OutH*l.OutW*l.OutC)}
		w := m.weights[indexOf(m.net, l)]
		for ch := 0; ch < l.InC; ch++ {
			a := im2colChannel(cur, l, ch)
			for p := 0; p < l.OutH*l.OutW; p++ {
				var s int32
				for x := 0; x < l.KH*l.KW; x++ {
					s += int32(a[p][x]) * int32(w[x][ch])
				}
				next.data[p*l.OutC+ch] = requant(s)
			}
		}
		return next, nil
	default:
		// Vector-unit layers share the exact implementation with Run.
		out, _, _, err := m.execLayer(l, cur, arch.Shape{Clusters: 1, H: 1, W: 1})
		return out, err
	}
}
