package vm

import (
	"testing"

	"planaria/internal/arch"
	"planaria/internal/compiler"
	"planaria/internal/dnn"
)

// smallCfg keeps functional execution fast: a 16×16-PE chip fissionable
// into 4×4 subarrays.
func smallCfg() arch.Config {
	c := arch.Planaria()
	c.ArrayRows, c.ArrayCols = 16, 16
	c.SubRows, c.SubCols = 4, 4
	c.Pods = 4
	return c
}

func toyConvNet(t *testing.T) *dnn.Network {
	t.Helper()
	b := dnn.NewBuilder("vm-toy", "classification", 8, 8, 3)
	b.Conv("c1", 6, 3, 1)
	b.Pool("p1", 2, 2)
	b.Conv("c2", 8, 3, 1)
	b.GlobalPool("gp")
	b.FC("fc", 5)
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func toyDWNet(t *testing.T) *dnn.Network {
	t.Helper()
	b := dnn.NewBuilder("vm-dw", "classification", 8, 8, 4)
	b.Conv("c1", 8, 3, 2)
	b.DWConv("dw", 3, 1)
	b.Conv("pw", 8, 1, 1)
	b.Activation("relu")
	b.GlobalPool("gp")
	b.FC("fc", 3)
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func runThrough(t *testing.T, net *dnn.Network, seed int64) {
	t.Helper()
	cfg := smallCfg()
	m, err := NewMachine(cfg, net, seed)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := compiler.Compile(net, cfg, cfg.NumSubarrays(), true)
	if err != nil {
		t.Fatal(err)
	}
	bin, err := tab.Binary(net, 4)
	if err != nil {
		t.Fatal(err)
	}
	input := m.RandomInput(seed + 1)
	got, err := m.Run(bin, tab, append([]int8(nil), input...))
	if err != nil {
		t.Fatal(err)
	}
	want, err := m.Reference(append([]int8(nil), input...))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Output) != len(want) {
		t.Fatalf("output length %d != reference %d", len(got.Output), len(want))
	}
	for i := range want {
		if got.Output[i] != want[i] {
			t.Fatalf("output[%d] = %d, reference %d (net %s)", i, got.Output[i], want[i], net.Name)
		}
	}
	if got.SystolicCycles <= 0 || got.TilesRun <= 0 || got.InstrsRetired <= 0 {
		t.Fatalf("degenerate result %+v", got)
	}
}

// TestEndToEndConvNet compiles a small conv net, lowers it to a binary,
// and executes every GEMM tile through the cycle-level grid; the result
// must be bit-exact against the host reference.
func TestEndToEndConvNet(t *testing.T) { runThrough(t, toyConvNet(t), 7) }

// TestEndToEndDepthwiseNet exercises the depthwise path (one channel per
// column, channel parallelism across clusters).
func TestEndToEndDepthwiseNet(t *testing.T) { runThrough(t, toyDWNet(t), 13) }

func TestEndToEndManySeeds(t *testing.T) {
	net := toyConvNet(t)
	for seed := int64(100); seed < 104; seed++ {
		runThrough(t, net, seed)
	}
}

func TestRunValidatesInput(t *testing.T) {
	cfg := smallCfg()
	net := toyConvNet(t)
	m, err := NewMachine(cfg, net, 1)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := compiler.Compile(net, cfg, 16, true)
	if err != nil {
		t.Fatal(err)
	}
	bin, err := tab.Binary(net, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(bin, tab, make([]int8, 5)); err == nil {
		t.Fatal("expected input size rejection")
	}
}

func TestRunRejectsMismatchedBinary(t *testing.T) {
	cfg := smallCfg()
	netA := toyConvNet(t)
	netB := toyDWNet(t)
	m, err := NewMachine(cfg, netA, 1)
	if err != nil {
		t.Fatal(err)
	}
	tabB, err := compiler.Compile(netB, cfg, 16, true)
	if err != nil {
		t.Fatal(err)
	}
	binB, err := tabB.Binary(netB, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(binB, tabB, m.RandomInput(2)); err == nil {
		t.Fatal("expected binary/network mismatch rejection")
	}
}

func TestRunRejectsRecurrentNets(t *testing.T) {
	cfg := smallCfg()
	b := dnn.NewBuilder("rec", "translation", 1, 1, 8)
	b.MatMul("lstm", 1, 8, 8, 5)
	net, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMachine(cfg, net, 1)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := compiler.Compile(net, cfg, 16, true)
	if err != nil {
		t.Fatal(err)
	}
	bin, err := tab.Binary(net, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(bin, tab, make([]int8, 8)); err == nil {
		t.Fatal("expected Repeat>1 rejection")
	}
}

func TestNewMachineRejectsInvalidNet(t *testing.T) {
	if _, err := NewMachine(smallCfg(), &dnn.Network{Name: "x"}, 1); err == nil {
		t.Fatal("expected validation error")
	}
}
