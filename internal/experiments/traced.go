package experiments

import (
	"fmt"

	"planaria/internal/metrics"
	"planaria/internal/obs"
	"planaria/internal/sim"
	"planaria/internal/workload"
)

// TracedResult bundles the observability artifacts of one instrumented
// co-location run: the deterministic metrics snapshot (JSON and text) and
// the Chrome trace-event timeline, both covering the Planaria and PREMA
// systems side by side in one document.
type TracedResult struct {
	// MetricsJSON is the registry snapshot, sorted by series id.
	MetricsJSON []byte
	// MetricsText is the aligned-table rendering of the same snapshot.
	MetricsText string
	// TraceJSON is the Perfetto-loadable timeline: per-request lifecycle
	// spans, allocation counters, queue occupancy, and scheduler decision
	// instants on "planaria/..." and "prema/..." tracks.
	TraceJSON []byte
	// Planaria and PREMA are the two simulated outcomes.
	Planaria, PREMA *sim.Outcome
}

// tracedSystem runs one system under the named observer view and returns
// its outcome.
func tracedSystem(sys metrics.System, o *obs.Observer, reqs []workload.Request) (*sim.Outcome, error) {
	pol := sys.NewPolicy()
	if ob, ok := pol.(obs.Observable); ok {
		ob.SetObserver(o)
	}
	node := &sim.Node{
		Cfg:      sys.Cfg,
		Policy:   pol,
		Programs: sys.Programs,
		Params:   sys.Params,
		Trace:    &sim.Trace{},
		Obs:      o,
	}
	// Pre-size both event sinks so the whole run records on the engines'
	// zero-alloc append paths (DESIGN.md §12). A request contributes a
	// bounded handful of events to each sink: lifecycle records on the
	// engine trace, and spans plus scheduler counters on the timeline.
	node.Trace.Reserve(4 * len(reqs))
	o.Tracer().Reserve(8 * len(reqs))
	out, err := node.Run(reqs)
	if err != nil {
		return nil, fmt.Errorf("traced %s run: %w", sys.Name, err)
	}
	if err := node.Trace.Validate(); err != nil {
		return nil, fmt.Errorf("traced %s run: %w", sys.Name, err)
	}
	return out, nil
}

// TracedRun simulates one workload instance on both systems with full
// observability attached: a shared metrics registry (series labeled
// system=planaria / system=prema) and a shared timeline whose tracks are
// prefixed per system. The run is deterministic — two identical
// invocations produce byte-identical MetricsJSON and TraceJSON.
func (s *Suite) TracedRun(sc workload.Scenario, lvl workload.QoSLevel, qps float64, requests int, seed int64) (*TracedResult, error) {
	if requests <= 0 {
		requests = 60
	}
	reqs, err := workload.Generate(sc, lvl, qps, requests, seed)
	if err != nil {
		return nil, err
	}
	root := obs.New()
	res := &TracedResult{}
	// The two systems run sequentially on derived observer views, so the
	// shared artifact interleaves nothing and stays byte-stable.
	if res.Planaria, err = tracedSystem(s.Planaria, root.Named("planaria"), reqs); err != nil {
		return nil, err
	}
	if res.PREMA, err = tracedSystem(s.PREMA, root.Named("prema"), reqs); err != nil {
		return nil, err
	}
	snap := root.Metrics.Snapshot()
	if res.MetricsJSON, err = snap.JSON(); err != nil {
		return nil, err
	}
	res.MetricsText = snap.Text()
	res.TraceJSON = root.Trace.JSON()
	return res, nil
}
