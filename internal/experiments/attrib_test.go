package experiments

import (
	"strings"
	"testing"

	"planaria/internal/metrics"
	"planaria/internal/obs"
)

// attribTestOptions shrinks the run for test turnaround while keeping
// batching and admission on so the interesting phases appear.
func attribTestOptions() AttribOptions {
	o := DefaultAttribOptions()
	o.Opt = metrics.Options{Requests: 60, Seed: 17}
	return o
}

func TestAttribRunRejectsBadOptions(t *testing.T) {
	s := testSuite(t)
	for name, o := range map[string]AttribOptions{
		"no requests": {Chips: 2, QPS: 90},
		"zero chips":  {QPS: 90, Opt: metrics.Options{Requests: 10}},
		"zero qps":    {Chips: 2, Opt: metrics.Options{Requests: 10}},
	} {
		o.Scenario = DefaultAttribOptions().Scenario
		if _, err := s.AttribRun(o); err == nil {
			t.Errorf("%s: run accepted bad options", name)
		}
	}
}

// TestAttribWorkloadMix pins the mixed-QoS stream: all three levels
// present, total request count honored, arrivals sorted, IDs identity.
func TestAttribWorkloadMix(t *testing.T) {
	o := attribTestOptions()
	reqs, err := attribWorkload(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != o.Opt.Requests {
		t.Fatalf("generated %d requests, want %d", len(reqs), o.Opt.Requests)
	}
	levels := map[string]int{}
	for i, r := range reqs {
		if r.ID != i {
			t.Fatalf("request %d has ID %d (want identity)", i, r.ID)
		}
		if i > 0 && reqs[i].Arrival < reqs[i-1].Arrival {
			t.Fatalf("arrivals not sorted at %d", i)
		}
		levels[r.Level]++
	}
	if len(levels) != 3 {
		t.Fatalf("QoS levels in stream: %v, want all 3", levels)
	}
}

// TestAttribRunReportAndArtifact runs the experiment end to end and pins
// the acceptance properties: per-group request conservation, fleet
// occupancy partition, a rendered table, and a byte-identical artifact
// across two runs — the BENCH_attrib.json regression gate.
func TestAttribRunReportAndArtifact(t *testing.T) {
	s := testSuite(t)
	o := attribTestOptions()
	rows, err := s.AttribRun(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want one per system", len(rows))
	}
	for _, r := range rows {
		if r.Report == nil {
			t.Fatalf("%s: no report", r.System)
		}
		var reqTotal int64
		for _, g := range r.Report.Groups {
			reqTotal += g.Requests
		}
		if reqTotal != int64(o.Opt.Requests) {
			t.Errorf("%s: report covers %d requests, want %d", r.System, reqTotal, o.Opt.Requests)
		}
		if f := r.Report.Fleet; f == nil {
			t.Errorf("%s: no fleet utilization row", r.System)
		} else if f.Busy+f.Idle+f.Faulted+f.Reconfig != f.Units*f.Horizon {
			t.Errorf("%s: fleet occupancy partition broke: %+v", r.System, f)
		}
		// Re-rendering from the JSON round trip must not lose groups.
		j, err := r.Report.JSON()
		if err != nil {
			t.Fatal(err)
		}
		back, err := obs.LoadAttribReport(j)
		if err != nil {
			t.Fatal(err)
		}
		if len(back.Groups) != len(r.Report.Groups) {
			t.Errorf("%s: round trip lost groups", r.System)
		}
	}

	text := FormatAttrib(o, rows)
	for _, want := range []string{"Planaria", "PREMA", "fleet", "qos"} {
		if !strings.Contains(text, want) {
			t.Errorf("FormatAttrib missing %q:\n%.600s", want, text)
		}
	}

	j1, err := AttribJSON(o, rows)
	if err != nil {
		t.Fatal(err)
	}
	rows2, err := s.AttribRun(o)
	if err != nil {
		t.Fatal(err)
	}
	j2, err := AttribJSON(o, rows2)
	if err != nil {
		t.Fatal(err)
	}
	if string(j1) != string(j2) {
		t.Error("BENCH_attrib.json differs between identical runs")
	}
	if !strings.Contains(string(j1), `"scenario": "Workload-A"`) {
		t.Errorf("artifact missing header:\n%.400s", j1)
	}
}
