package experiments

import (
	"strings"
	"testing"

	"planaria/internal/workload"
)

func TestSchedulerAblationOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("throughput sweep")
	}
	s := testSuite(t)
	rows, err := s.SchedulerAblation(workload.ScenarioC())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 {
		t.Fatalf("rows = %d, want 12 (3 QoS × 4 policies)", len(rows))
	}
	byKey := map[string]float64{}
	for _, r := range rows {
		byKey[r.QoS+"|"+r.Policy] = r.QPS
	}
	for _, q := range []string{"QoS-S", "QoS-M", "QoS-H"} {
		spatial := byKey[q+"|spatial (Alg. 1)"]
		equal := byKey[q+"|equal-share"]
		fcfs := byKey[q+"|fcfs"]
		prema := byKey[q+"|prema (monolithic)"]
		// Algorithm 1 must dominate the naive spatial policy, which must
		// dominate run-to-completion on the mixed workload.
		if spatial < equal {
			t.Errorf("%s: spatial %.1f < equal-share %.1f", q, spatial, equal)
		}
		if equal < fcfs {
			t.Errorf("%s: equal-share %.1f < fcfs %.1f on the mixed workload", q, equal, fcfs)
		}
		// The full system must beat the monolithic temporal baseline.
		if spatial < prema {
			t.Errorf("%s: spatial %.1f < prema %.1f", q, spatial, prema)
		}
	}
	if out := FormatSchedulerAblation(rows); !strings.Contains(out, "equal-share") {
		t.Error("format missing policies")
	}
}

func TestOmniAblationNeverFaster(t *testing.T) {
	rows, err := OmniAblation()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		// Removing shapes can never improve the compiled latency.
		if r.NoOmniCycles < r.FullCycles {
			t.Errorf("%s: restricted search faster (%d < %d)", r.Model, r.NoOmniCycles, r.FullCycles)
		}
		if r.SlowdownPct < -1e-9 {
			t.Errorf("%s: negative slowdown %f", r.Model, r.SlowdownPct)
		}
	}
	if out := FormatOmniAblation(rows); !strings.Contains(out, "slowdown") {
		t.Error("format missing header")
	}
}

func TestExtendedGranularityContainsFig18(t *testing.T) {
	s := testSuite(t)
	rows, err := s.ExtendedGranularity()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	edp := map[int]float64{}
	for _, r := range rows {
		edp[r.Granularity] = r.RelativeEDP
	}
	if edp[32] != 1.0 {
		t.Errorf("32x32 EDP = %g, want normalized 1.0", edp[32])
	}
	// The overhead trend must keep growing below 16: 8×8 is worse than
	// 16×16.
	if edp[8] <= edp[16] {
		t.Errorf("8x8 EDP %.3f not above 16x16 %.3f", edp[8], edp[16])
	}
	if edp[32] > edp[16] || edp[32] > edp[64] {
		t.Errorf("EDP minimum not at 32x32: %v", edp)
	}
}

func TestPenaltySensitivityShape(t *testing.T) {
	if testing.Short() {
		t.Skip("throughput sweep")
	}
	s := testSuite(t)
	rows, err := s.PenaltySensitivity(workload.ScenarioC(), workload.QoSMedium)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Throughput must not increase as preemption gets dearer, and free
	// preemption must be at least as good as 100x penalties.
	for i := 1; i < len(rows); i++ {
		if rows[i].QPS > rows[i-1].QPS*1.15 { // 15% search tolerance
			t.Errorf("throughput rose with penalty scale: %.1f@%g > %.1f@%g",
				rows[i].QPS, rows[i].Scale, rows[i-1].QPS, rows[i-1].Scale)
		}
	}
	if rows[0].QPS <= 0 {
		t.Fatal("no sustainable throughput at near-free preemption")
	}
	out := FormatPenaltySensitivity(workload.ScenarioC(), workload.QoSMedium, rows)
	if len(out) == 0 {
		t.Fatal("empty rendering")
	}
}
