package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"

	"planaria/internal/cluster"
	"planaria/internal/metrics"
	"planaria/internal/par"
	"planaria/internal/workload"
)

// ClusterOptions configures the multi-chip serving sweep: the workload
// point, the cluster sizes and balancing policies to compare, and the
// shared front-end knobs (batching window, admission buckets are left to
// the CLI; the sweep itself measures raw scale-out).
type ClusterOptions struct {
	Scenario workload.Scenario
	Level    workload.QoSLevel
	// Chips lists the cluster sizes to sweep (e.g. 1, 2, 4).
	Chips []int
	// Policies lists the balancing policies (cluster.Policies() names).
	Policies []string
	// QPS is the fixed-rate grid evaluated per (chips, policy) cell, on
	// top of the bisected maximum.
	QPS []float64
	// BatchWindow/MaxBatch configure the front end's batching stage for
	// every cell (0 disables).
	BatchWindow float64
	MaxBatch    int
	// Elastic adds the elastic re-fission system (DESIGN.md §16) as a
	// third sweep axis next to Planaria and PREMA — same fission
	// hardware, runtime grow/shrink between tiles.
	Elastic bool
	// Opt carries requests/instances/seed, as in the other sweeps.
	Opt metrics.Options
}

// DefaultClusterOptions is the configuration the cluster CLI experiment
// and CI smoke run use.
func DefaultClusterOptions() ClusterOptions {
	return ClusterOptions{
		Scenario: workload.ScenarioA(),
		Level:    workload.QoSMedium,
		Chips:    []int{1, 2, 4},
		Policies: cluster.Policies(),
		QPS:      []float64{25, 50, 100},
		Opt:      metrics.Options{Requests: 120, Instances: 2, Seed: 17},
	}
}

// ClusterGridPoint is one fixed arrival rate's aggregate for a cell.
type ClusterGridPoint struct {
	QPS float64 `json:"qps"`
	// SLARate is the fraction of instances meeting the MLPerf server SLA.
	SLARate float64 `json:"sla_rate"`
	// DeadlineFrac is the mean within-deadline request fraction.
	DeadlineFrac float64 `json:"deadline_frac"`
	// ShedFront/ShedChips total the front-door and chip-local declines.
	ShedFront int `json:"shed_front"`
	ShedChips int `json:"shed_chips"`
	// MeanBatch is the mean dispatch-group size (1 with batching off).
	MeanBatch float64 `json:"mean_batch"`
	// EnergyJ is the mean cluster energy per instance.
	EnergyJ float64 `json:"energy_j"`
}

// ClusterRow is one (system, chips, policy) cell: its bisected maximum
// SLA-meeting QPS plus the fixed-rate grid.
type ClusterRow struct {
	System string  `json:"system"`
	Chips  int     `json:"chips"`
	Policy string  `json:"policy"`
	MaxQPS float64 `json:"max_qps"`

	Grid []ClusterGridPoint `json:"grid"`
}

// clusterEval runs one cell at one rate over Opt.Instances seeded
// instances and aggregates.
func clusterEval(sys metrics.System, o ClusterOptions, chips int, policy string, qps float64) (ClusterGridPoint, error) {
	p := ClusterGridPoint{QPS: qps}
	for inst := 0; inst < o.Opt.Instances; inst++ {
		reqs, err := workload.Generate(o.Scenario, o.Level, qps, o.Opt.Requests, o.Opt.Seed+int64(inst)*7919)
		if err != nil {
			return p, err
		}
		out, err := cluster.Run(cluster.Config{
			System: sys, Chips: chips, Policy: policy,
			BatchWindow: o.BatchWindow, MaxBatch: o.MaxBatch,
		}, reqs)
		if err != nil {
			return p, err
		}
		if out.MeetsSLA {
			p.SLARate++
		}
		p.DeadlineFrac += out.DeadlineFrac
		p.ShedFront += out.ShedFront
		p.ShedChips += out.ShedChips
		p.MeanBatch += out.MeanBatchSize
		p.EnergyJ += out.EnergyJ
	}
	n := float64(o.Opt.Instances)
	p.SLARate /= n
	p.DeadlineFrac /= n
	p.MeanBatch /= n
	p.EnergyJ /= n
	return p, nil
}

// clusterMaxQPS finds a cell's maximum SLA-meeting arrival rate by
// doubling then bisecting on the majority-of-instances criterion, the
// same search metrics.Throughput applies to a single node.
func clusterMaxQPS(sys metrics.System, o ClusterOptions, chips int, policy string) (float64, error) {
	const (
		minQPS = 0.5
		maxQPS = 1 << 20
	)
	meets := func(qps float64) (bool, error) {
		p, err := clusterEval(sys, o, chips, policy, qps)
		if err != nil {
			return false, err
		}
		return p.SLARate >= 0.5, nil
	}
	ok, err := meets(minQPS)
	if err != nil || !ok {
		return 0, err
	}
	lo := minQPS
	hi := lo
	for hi < maxQPS {
		hi *= 2
		if ok, err = meets(hi); err != nil {
			return 0, err
		}
		if !ok {
			break
		}
		lo = hi
	}
	if hi >= maxQPS {
		return lo, nil
	}
	for i := 0; i < 10 && hi-lo > 0.05*lo; i++ {
		mid := (lo + hi) / 2
		if ok, err = meets(mid); err != nil {
			return 0, err
		}
		if ok {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, nil
}

// ClusterSweep measures cluster scale-out for both systems: every
// (system, chips, policy) cell gets a bisected maximum SLA-meeting QPS
// and a fixed-rate grid. Cells are independent and fan out across the
// worker pool; rows aggregate in deterministic cell order.
func (s *Suite) ClusterSweep(o ClusterOptions) ([]ClusterRow, error) {
	if len(o.Chips) == 0 || len(o.Policies) == 0 {
		return nil, fmt.Errorf("experiments: cluster sweep needs chips and policies, got %v / %v", o.Chips, o.Policies)
	}
	if o.Opt.Requests <= 0 || o.Opt.Instances <= 0 {
		return nil, fmt.Errorf("experiments: bad cluster options %+v", o.Opt)
	}
	for _, c := range o.Chips {
		if c < 1 {
			return nil, fmt.Errorf("experiments: cluster size %d", c)
		}
	}
	for _, p := range o.Policies {
		if _, err := cluster.NewBalancer(p); err != nil {
			return nil, err
		}
	}
	systems := []metrics.System{s.Planaria, s.PREMA}
	if o.Elastic {
		systems = append(systems, s.Elastic)
	}
	rows := make([]ClusterRow, len(systems)*len(o.Chips)*len(o.Policies))
	errs := make([]error, len(rows))
	par.ForEach(len(rows), func(i int) {
		sysIdx := i / (len(o.Chips) * len(o.Policies))
		chipIdx := i / len(o.Policies) % len(o.Chips)
		polIdx := i % len(o.Policies)
		sys := systems[sysIdx]
		row := ClusterRow{System: sys.Name, Chips: o.Chips[chipIdx], Policy: o.Policies[polIdx]}
		row.MaxQPS, errs[i] = clusterMaxQPS(sys, o, row.Chips, row.Policy)
		if errs[i] != nil {
			return
		}
		for _, qps := range o.QPS {
			p, err := clusterEval(sys, o, row.Chips, row.Policy, qps)
			if err != nil {
				errs[i] = err
				return
			}
			row.Grid = append(row.Grid, p)
		}
		rows[i] = row
	})
	if err := par.FirstError(errs); err != nil {
		return nil, err
	}
	return rows, nil
}

// FormatCluster renders the sweep as a text table.
func FormatCluster(o ClusterOptions, rows []ClusterRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Cluster sweep — %s × %s (batch window %g s, max batch %d)\n",
		o.Scenario.Name, o.Level.Name, o.BatchWindow, o.MaxBatch)
	fmt.Fprintf(&b, "  %-10s %6s %-12s %10s", "system", "chips", "policy", "max QPS")
	for _, q := range o.QPS {
		fmt.Fprintf(&b, "  SLA@%-6g", q)
	}
	b.WriteString("\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-10s %6d %-12s %10.1f", r.System, r.Chips, r.Policy, r.MaxQPS)
		for _, p := range r.Grid {
			fmt.Fprintf(&b, "  %8.1f%%", p.DeadlineFrac*100)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// ClusterJSON marshals the sweep into the deterministic
// BENCH_cluster.json artifact: options header plus rows, indented, no
// timestamps — two runs at the same seed must be byte-identical.
func ClusterJSON(o ClusterOptions, rows []ClusterRow) ([]byte, error) {
	doc := struct {
		Scenario    string       `json:"scenario"`
		QoS         string       `json:"qos"`
		BatchWindow float64      `json:"batch_window_s"`
		MaxBatch    int          `json:"max_batch"`
		Elastic     bool         `json:"elastic,omitempty"`
		Requests    int          `json:"requests"`
		Instances   int          `json:"instances"`
		Seed        int64        `json:"seed"`
		Rows        []ClusterRow `json:"rows"`
	}{
		Scenario: o.Scenario.Name, QoS: o.Level.Name,
		BatchWindow: o.BatchWindow, MaxBatch: o.MaxBatch, Elastic: o.Elastic,
		Requests: o.Opt.Requests, Instances: o.Opt.Instances, Seed: o.Opt.Seed,
		Rows: rows,
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
