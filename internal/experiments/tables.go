package experiments

import (
	"fmt"
	"sort"
	"strings"

	"planaria/internal/arch"
	"planaria/internal/dnn"
	"planaria/internal/workload"
)

// FormatTable1 renders Table I: the workload scenarios and their models.
func FormatTable1() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table I — Workload scenarios and benchmark DNNs\n")
	for _, sc := range workload.Scenarios() {
		fmt.Fprintf(&b, "%s:\n", sc.Name)
		for _, m := range sc.Models {
			net := dnn.MustByName(m)
			fmt.Fprintf(&b, "  %-16s %-14s %7.2f GMACs %7.1fM params  QoS-S %.0f ms\n",
				m, net.Domain, float64(net.TotalMACs())/1e9, float64(net.TotalParams())/1e6,
				workload.BaseQoSSeconds[m]*1e3)
		}
	}
	return b.String()
}

// Table2Cell is one fission configuration's usage by one DNN.
type Table2Cell struct {
	Shape   arch.Shape
	OD      bool // needs the omni-directional feature
	Model   string
	Percent float64 // % of the model's GEMM layers choosing this shape
}

// Table2Sensitivity reproduces Table II: per DNN, the percentage of
// (GEMM) layers whose compiled configuration is each fission shape, when
// the whole 16-subarray accelerator is dedicated to the network.
func (s *Suite) Table2Sensitivity() ([]Table2Cell, error) {
	cfg := s.Planaria.Cfg
	var cells []Table2Cell
	for _, name := range dnn.Names {
		net, err := dnn.ByName(name)
		if err != nil {
			return nil, err
		}
		tab := s.Planaria.Programs[name].Table(cfg.NumSubarrays())
		counts := map[arch.Shape]int{}
		gemms := 0
		for _, lp := range tab.Layers {
			if !net.Layers[lp.LayerIdx].Kind.IsGEMM() {
				continue
			}
			gemms++
			counts[lp.Shape]++
		}
		if gemms == 0 {
			continue
		}
		shapes := make([]arch.Shape, 0, len(counts))
		for sh := range counts {
			shapes = append(shapes, sh)
		}
		sort.Slice(shapes, func(i, j int) bool {
			a, b := shapes[i], shapes[j]
			if a.Clusters != b.Clusters {
				return a.Clusters < b.Clusters
			}
			if a.H != b.H {
				return a.H < b.H
			}
			return a.W < b.W
		})
		for _, sh := range shapes {
			cells = append(cells, Table2Cell{
				Shape:   sh,
				OD:      sh.UsesOmniDirectional(cfg),
				Model:   name,
				Percent: 100 * float64(counts[sh]) / float64(gemms),
			})
		}
	}
	sort.Slice(cells, func(i, j int) bool {
		a, b := cells[i], cells[j]
		if a.Shape != b.Shape {
			if a.Shape.Clusters != b.Shape.Clusters {
				return a.Shape.Clusters > b.Shape.Clusters
			}
			if a.Shape.H != b.Shape.H {
				return a.Shape.H < b.Shape.H
			}
			return a.Shape.W < b.Shape.W
		}
		return a.Model < b.Model
	})
	return cells, nil
}

// FormatTable2 renders the layer-sensitivity table grouped by shape.
func FormatTable2(cells []Table2Cell) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table II — Layer sensitivity to fission configurations (whole chip per DNN)\n")
	var cur arch.Shape
	first := true
	for _, c := range cells {
		if first || c.Shape != cur {
			od := ""
			if c.OD {
				od = "  [omni-directional]"
			}
			fmt.Fprintf(&b, "%s  P=%dx IAR=%dx PSR=%dx%s\n",
				c.Shape.String(), c.Shape.Clusters, c.Shape.W, c.Shape.H, od)
			cur = c.Shape
			first = false
		}
		fmt.Fprintf(&b, "    %-16s %5.1f%%\n", c.Model, c.Percent)
	}
	return b.String()
}
