package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"

	"planaria/internal/cluster"
	"planaria/internal/obs"
	"planaria/internal/par"
	"planaria/internal/sim"
	"planaria/internal/workload"
	"planaria/internal/workload/trace"
)

// The autoscale experiment (DESIGN.md §15) replays one planet-scale
// trace — a 24 h diurnal curve with flash crowds over a heavy model mix
// — against a grid of static fleet sizes and one autoscaled fleet, and
// reports each configuration's SLA attainment next to its chip-hours
// bill. The claim under test: the autoscaler rides the diurnal valley at
// the fleet floor, absorbs the crowds by booting spares, and ends the
// day meeting the best static row's SLA at a fraction of its chip-time.

// AutoscaleOptions configures the static-versus-autoscaled sweep.
type AutoscaleOptions struct {
	// Trace is the workload description; nil means DefaultAutoscaleTrace.
	Trace *trace.Spec
	// Statics lists the fixed fleet sizes to sweep.
	Statics []int
	// Chips is the autoscaled fleet's slot ceiling.
	Chips int
	// Scale holds the autoscaler knobs (controller nil = tuned
	// Hysteresis); Scale.Min/Initial/BootS/IntervalS apply as in
	// cluster.Autoscale.
	Scale cluster.Autoscale
	// Policy names the load balancer (empty = least-work).
	Policy string
	// Elastic serves the trace with the elastic re-fission scheduler
	// (DESIGN.md §16) instead of plain spatial fission on every chip.
	Elastic bool
}

// DefaultAutoscaleOptions is the artifact configuration: static fleets
// of 1–3 chips against an autoscaler allowed up to 6, on a 15 s control
// loop with 30 s boots. The controller is tuned tight (30 ms of backlog
// per chip) with a long scale-down hold, trading some chip-hours for
// flash-crowd headroom — on the default trace it is the only row that
// meets the MLPerf SLA, at roughly half the chip-time of the best
// (still SLA-missing) static fleet.
func DefaultAutoscaleOptions() AutoscaleOptions {
	return AutoscaleOptions{
		Statics: []int{1, 2, 3},
		Chips:   6,
		Scale: cluster.Autoscale{
			Min:       1,
			Initial:   1,
			BootS:     30,
			IntervalS: 15,
			Controller: &cluster.Hysteresis{
				TargetS:   0.03,
				HoldTicks: 8,
			},
		},
	}
}

// DefaultAutoscaleTrace is the planet-day workload: 24 hours of the
// heavy serving mix (GNMT, SSD-R, YOLOv3 — per-chip capacity ≈ 47 QPS)
// under a day/night rate curve, a 12× lunchtime flash crowd, an 8×
// evening one, Zipf-skewed model popularity, and a heavy-tailed user
// population. The base rate is sized so the day comfortably exceeds one
// million requests.
func DefaultAutoscaleTrace() *trace.Spec {
	return &trace.Spec{
		Version:  trace.FormatVersion,
		Name:     "planet-day",
		Models:   []string{"GNMT", "SSD-R", "YOLOv3"},
		QoS:      "QoS-M",
		Seed:     1,
		HorizonS: 86400,
		BaseQPS:  13,
		Diurnal: []trace.RatePoint{
			{AtS: 0, Mult: 0.35},
			{AtS: 5 * 3600, Mult: 0.25},
			{AtS: 9 * 3600, Mult: 1.2},
			{AtS: 12 * 3600, Mult: 1.5},
			{AtS: 15 * 3600, Mult: 1.35},
			{AtS: 18 * 3600, Mult: 1.6},
			{AtS: 21 * 3600, Mult: 0.9},
			{AtS: 24 * 3600, Mult: 0.35},
		},
		Crowds: []trace.Crowd{
			{AtS: 12.5 * 3600, Mult: 12, RampS: 120, DecayS: 1800},
			{AtS: 19 * 3600, Mult: 8, RampS: 180, DecayS: 1200},
		},
		ZipfS:    0.9,
		Users:    10000,
		UserBias: 0.3,
	}
}

// AutoscaleRow is one fleet configuration's day.
type AutoscaleRow struct {
	// Mode is "static" or "autoscaled"; Chips is the fixed size or the
	// slot ceiling; Controller names the scaling policy (autoscaled only).
	Mode       string `json:"mode"`
	Chips      int    `json:"chips"`
	Controller string `json:"controller,omitempty"`

	// Terminal tallies over the trace (the five-way conservation
	// partition plus the informational migration count).
	Requests  int `json:"requests"`
	Completed int `json:"completed"`
	ShedFront int `json:"shed_front"`
	ShedChips int `json:"shed_chips"`
	ShedDrain int `json:"shed_drain,omitempty"`
	Migrated  int `json:"migrated,omitempty"`

	// MeetsSLA / DeadlineFrac apply the MLPerf server criterion over the
	// full stream; ChipHours is the fleet-time bill (size × horizon for
	// statics, the lifecycle-log integral for the autoscaled fleet).
	MeetsSLA     bool    `json:"meets_sla"`
	DeadlineFrac float64 `json:"deadline_frac"`
	ChipHours    float64 `json:"chip_hours"`

	// Autoscaled-only fleet dynamics: the concurrent-chip peak and the
	// boot / retire event counts (initial boots included).
	PeakActive int `json:"peak_active,omitempty"`
	ScaleUps   int `json:"scale_ups,omitempty"`
	ScaleDowns int `json:"scale_downs,omitempty"`
}

// autoscaleEval runs one fleet configuration over the shared stream.
func autoscaleEval(s *Suite, o AutoscaleOptions, spec *trace.Spec, reqs []workload.Request, chips int, scale *cluster.Autoscale) (AutoscaleRow, error) {
	sys := s.Planaria
	if o.Elastic {
		sys = s.Elastic
	}
	cfg := cluster.Config{
		System: sys,
		Chips:  chips,
		Policy: o.Policy,
		Shed:   sim.ShedPriority,
		Scale:  scale,
	}
	out, err := cluster.Run(cfg, reqs)
	if err != nil {
		return AutoscaleRow{}, err
	}
	row := AutoscaleRow{
		Mode:         "static",
		Chips:        chips,
		Requests:     len(reqs),
		Completed:    out.Completed,
		ShedFront:    out.ShedFront,
		ShedChips:    out.ShedChips,
		ShedDrain:    out.ShedDrain,
		Migrated:     out.Migrated,
		MeetsSLA:     out.MeetsSLA,
		DeadlineFrac: out.DeadlineFrac,
		ChipHours:    float64(chips) * spec.HorizonS / 3600,
	}
	if scale != nil {
		row.Mode = "autoscaled"
		ctrl := scale.Controller
		if ctrl == nil {
			ctrl = &cluster.Hysteresis{}
		}
		row.Controller = ctrl.Name()
		row.ChipHours = out.Fleet.ChipSeconds(spec.HorizonS) / 3600
		row.PeakActive = out.Fleet.PeakActive(spec.HorizonS)
		for _, ev := range out.Fleet.Events() {
			switch ev.Kind {
			case obs.FleetBoot:
				row.ScaleUps++
			case obs.FleetRetire:
				row.ScaleDowns++
			}
		}
	}
	return row, nil
}

// AutoscaleSweep replays the trace against every static size and the
// autoscaled fleet. The request stream generates once and is shared
// read-only; rows evaluate in parallel and land in a fixed order
// (statics in option order, the autoscaled row last), so the sweep is
// deterministic end to end.
func (s *Suite) AutoscaleSweep(o AutoscaleOptions) ([]AutoscaleRow, error) {
	spec := o.Trace
	if spec == nil {
		spec = DefaultAutoscaleTrace()
	}
	if len(o.Statics) == 0 || o.Chips < 1 {
		return nil, fmt.Errorf("experiments: autoscale sweep needs static sizes and a positive chip ceiling")
	}
	reqs, err := spec.Generate()
	if err != nil {
		return nil, err
	}
	rows := make([]AutoscaleRow, len(o.Statics)+1)
	errs := make([]error, len(rows))
	par.ForEach(len(rows), func(i int) {
		if i < len(o.Statics) {
			rows[i], errs[i] = autoscaleEval(s, o, spec, reqs, o.Statics[i], nil)
			return
		}
		// Each evaluation needs a private Autoscale: controllers are
		// stateful and the runs execute concurrently.
		scale := o.Scale
		rows[i], errs[i] = autoscaleEval(s, o, spec, reqs, o.Chips, &scale)
	})
	if err := par.FirstError(errs); err != nil {
		return nil, err
	}
	return rows, nil
}

// FormatAutoscale renders the sweep as a text table.
func FormatAutoscale(o AutoscaleOptions, rows []AutoscaleRow) string {
	spec := o.Trace
	if spec == nil {
		spec = DefaultAutoscaleTrace()
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Autoscale sweep — trace %q (%s, %.3g h, base %g QPS)\n",
		spec.Name, spec.QoS, spec.HorizonS/3600, spec.BaseQPS)
	fmt.Fprintf(&b, "  %-10s %6s %-11s %10s %10s %6s %11s %6s\n",
		"mode", "chips", "controller", "requests", "deadline%", "SLA", "chip-hours", "peak")
	for _, r := range rows {
		ctrl, sla, peak := "-", "miss", "-"
		if r.Controller != "" {
			ctrl = r.Controller
		}
		if r.MeetsSLA {
			sla = "meet"
		}
		if r.Mode == "autoscaled" {
			peak = fmt.Sprintf("%d", r.PeakActive)
		}
		fmt.Fprintf(&b, "  %-10s %6d %-11s %10d %9.3f%% %6s %11.1f %6s\n",
			r.Mode, r.Chips, ctrl, r.Requests, r.DeadlineFrac*100, sla, r.ChipHours, peak)
	}
	return b.String()
}

// AutoscaleJSON marshals the sweep into the deterministic
// BENCH_autoscale.json artifact: the full trace spec as the options
// header plus rows, indented, no timestamps — two runs of the same
// options must be byte-identical.
func AutoscaleJSON(o AutoscaleOptions, rows []AutoscaleRow) ([]byte, error) {
	spec := o.Trace
	if spec == nil {
		spec = DefaultAutoscaleTrace()
	}
	doc := struct {
		Trace     *trace.Spec    `json:"trace"`
		Statics   []int          `json:"statics"`
		Chips     int            `json:"chips"`
		BootS     float64        `json:"boot_s"`
		IntervalS float64        `json:"interval_s"`
		Policy    string         `json:"policy,omitempty"`
		Elastic   bool           `json:"elastic,omitempty"`
		Rows      []AutoscaleRow `json:"rows"`
	}{
		Trace: spec, Statics: o.Statics, Chips: o.Chips,
		BootS: o.Scale.BootS, IntervalS: o.Scale.IntervalS,
		Policy: o.Policy, Elastic: o.Elastic, Rows: rows,
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
