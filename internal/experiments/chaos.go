package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"

	"planaria/internal/fault"
	"planaria/internal/metrics"
	"planaria/internal/par"
	"planaria/internal/sim"
	"planaria/internal/workload"
)

// ChaosOptions configures the fault-injection sweep: the serving
// workload, the fault rates to sweep, and Planaria's degradation knobs.
// PREMA runs the same schedules in derate mode with no admission
// control — the monolithic baseline has neither fission masking nor a
// QoS-aware front door.
type ChaosOptions struct {
	Scenario workload.Scenario
	Level    workload.QoSLevel
	// QPS is the fixed arrival rate for every row.
	QPS float64
	// Rates are chip-level fault arrival rates (faults per simulated
	// second). A rate of 0 runs the exact fault-free serving path — no
	// injector, no shedding — so the baseline row reproduces the plain
	// serving numbers bit-for-bit.
	Rates []float64
	// MeanOutage is the mean transient-fault outage in seconds.
	MeanOutage float64
	// Shed is Planaria's admission-control policy at nonzero rates.
	Shed sim.ShedPolicy
	// Schedule, when non-nil, replaces the generated schedules: the
	// sweep collapses to one row (Rate = -1) replaying exactly this
	// schedule on every instance.
	Schedule *fault.Schedule
	// Opt carries requests/instances/seed, as in the other sweeps.
	Opt metrics.Options
}

// DefaultChaosOptions is the configuration the chaos CLI experiment and
// CI smoke run use.
func DefaultChaosOptions() ChaosOptions {
	return ChaosOptions{
		Scenario:   workload.ScenarioA(),
		Level:      workload.QoSMedium,
		QPS:        40,
		Rates:      []float64{0, 10, 40, 160},
		MeanOutage: 10e-3,
		Shed:       sim.ShedDoomed,
		Opt:        metrics.Options{Requests: 150, Instances: 2, Seed: 11},
	}
}

// ChaosRow is one fault rate's outcome for both systems, aggregated over
// Opt.Instances instances.
type ChaosRow struct {
	// Rate is the fault rate in faults per simulated second (-1 when the
	// row replays an explicit schedule file).
	Rate float64 `json:"rate"`
	// FaultEvents totals the transitions applied across instances (per
	// system; the two differ because shedding empties the Planaria queue
	// earlier or later than PREMA's).
	FaultEvents int `json:"fault_events"`

	// SLA retention: mean within-deadline request fraction.
	PlanariaSLA float64 `json:"planaria_sla"`
	PremaSLA    float64 `json:"prema_sla"`

	// Degradation tallies, totaled over instances.
	PlanariaKilled  int `json:"planaria_killed"`
	PlanariaRetries int `json:"planaria_retries"`
	PlanariaShed    int `json:"planaria_shed"`
	PremaKilled     int `json:"prema_killed"`
	PremaRetries    int `json:"prema_retries"`

	// Mean energy per instance (J).
	PlanariaJ float64 `json:"planaria_j"`
	PremaJ    float64 `json:"prema_j"`
}

// chaosHorizon bounds fault generation: well past the arrival window so
// late retries still face the configured fault environment.
func chaosHorizon(o ChaosOptions) float64 {
	return 3*float64(o.Opt.Requests)/o.QPS + 1
}

// chaosNode builds one system's serving node for one instance of one
// row. A nil schedule selects the exact fault-free path.
func chaosNode(sys metrics.System, mode sim.FaultMode, shed sim.ShedPolicy, sched *fault.Schedule) (*sim.Node, error) {
	n := &sim.Node{Cfg: sys.Cfg, Policy: sys.NewPolicy(), Programs: sys.Programs, Params: sys.Params}
	if sched == nil {
		return n, nil
	}
	in, err := fault.NewInjector(sched)
	if err != nil {
		return nil, err
	}
	n.Faults = in
	n.FaultMode = mode
	n.Shed = shed
	return n, nil
}

// ChaosSweep runs the fault-rate sweep. Every (rate, instance) pair uses
// the same request stream and the same fault schedule for both systems;
// the injectors are rebuilt per run because they are stateful.
func (s *Suite) ChaosSweep(o ChaosOptions) ([]ChaosRow, error) {
	if o.QPS <= 0 {
		return nil, fmt.Errorf("experiments: chaos needs a positive QPS, got %g", o.QPS)
	}
	if o.Opt.Requests <= 0 || o.Opt.Instances <= 0 {
		return nil, fmt.Errorf("experiments: bad chaos options %+v", o.Opt)
	}
	rates := o.Rates
	if o.Schedule != nil {
		rates = []float64{-1}
	}
	if len(rates) == 0 {
		return nil, fmt.Errorf("experiments: chaos needs fault rates or a schedule")
	}

	type cell struct {
		pl, pr *sim.Outcome
		reqs   []workload.Request
		err    error
	}
	units := s.Planaria.Cfg.NumSubarrays()
	pods := s.Planaria.Cfg.Pods
	horizon := chaosHorizon(o)
	cells := make([]cell, len(rates)*o.Opt.Instances)
	par.ForEach(len(cells), func(i int) {
		rateIdx, inst := i/o.Opt.Instances, i%o.Opt.Instances
		rate := rates[rateIdx]
		c := &cells[i]
		c.reqs, c.err = workload.Generate(o.Scenario, o.Level, o.QPS, o.Opt.Requests, o.Opt.Seed+int64(inst)*7919)
		if c.err != nil {
			return
		}
		var sched *fault.Schedule
		shed := sim.ShedNone
		switch {
		case o.Schedule != nil:
			sched, shed = o.Schedule, o.Shed
		case rate > 0:
			// A distinct seed stream per (rate, instance), disjoint from
			// the workload seeds.
			sched, c.err = fault.Generate(units, pods, rate, horizon, o.MeanOutage,
				o.Opt.Seed+int64(inst)*7919+104729*int64(rateIdx+1))
			if c.err != nil {
				return
			}
			shed = o.Shed
		}
		pl, err := chaosNode(s.Planaria, sim.FaultFission, shed, sched)
		if err != nil {
			c.err = err
			return
		}
		c.pl, c.err = pl.Run(c.reqs)
		if c.err != nil {
			return
		}
		pr, err := chaosNode(s.PREMA, sim.FaultDerate, sim.ShedNone, sched)
		if err != nil {
			c.err = err
			return
		}
		c.pr, c.err = pr.Run(c.reqs)
	})

	rows := make([]ChaosRow, len(rates))
	for rateIdx, rate := range rates {
		row := ChaosRow{Rate: rate}
		for inst := 0; inst < o.Opt.Instances; inst++ {
			c := &cells[rateIdx*o.Opt.Instances+inst]
			if c.err != nil {
				return nil, c.err
			}
			row.PlanariaSLA += workload.DeadlineFraction(c.reqs, c.pl.Finishes)
			row.PremaSLA += workload.DeadlineFraction(c.reqs, c.pr.Finishes)
			row.FaultEvents += c.pl.FaultEvents
			row.PlanariaKilled += c.pl.Killed
			row.PlanariaRetries += c.pl.Retries
			row.PlanariaShed += c.pl.Shed
			row.PremaKilled += c.pr.Killed
			row.PremaRetries += c.pr.Retries
			row.PlanariaJ += c.pl.EnergyJ
			row.PremaJ += c.pr.EnergyJ
		}
		n := float64(o.Opt.Instances)
		row.PlanariaSLA /= n
		row.PremaSLA /= n
		row.PlanariaJ /= n
		row.PremaJ /= n
		rows[rateIdx] = row
	}
	return rows, nil
}

// FormatChaos renders the sweep as a text table.
func FormatChaos(o ChaosOptions, rows []ChaosRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Chaos sweep — %s × %s at %g QPS (Planaria: fission masking + shed=%s; PREMA: monolithic derate)\n",
		o.Scenario.Name, o.Level.Name, o.QPS, o.Shed)
	fmt.Fprintf(&b, "  %-10s %10s %14s %14s %8s %8s %8s %8s\n",
		"faults/s", "events", "Planaria SLA", "PREMA SLA", "kills", "retries", "shed", "PR kills")
	for _, r := range rows {
		label := fmt.Sprintf("%g", r.Rate)
		if r.Rate < 0 {
			label = "file"
		}
		fmt.Fprintf(&b, "  %-10s %10d %13.1f%% %13.1f%% %8d %8d %8d %8d\n",
			label, r.FaultEvents, r.PlanariaSLA*100, r.PremaSLA*100,
			r.PlanariaKilled, r.PlanariaRetries, r.PlanariaShed, r.PremaKilled)
	}
	return b.String()
}

// ChaosJSON marshals the sweep into the deterministic BENCH_chaos.json
// artifact: options header plus rows, indented, no timestamps — two runs
// at the same seed must be byte-identical.
func ChaosJSON(o ChaosOptions, rows []ChaosRow) ([]byte, error) {
	doc := struct {
		Scenario   string     `json:"scenario"`
		QoS        string     `json:"qos"`
		QPS        float64    `json:"qps"`
		MeanOutage float64    `json:"mean_outage_s"`
		Shed       string     `json:"shed"`
		Requests   int        `json:"requests"`
		Instances  int        `json:"instances"`
		Seed       int64      `json:"seed"`
		Rows       []ChaosRow `json:"rows"`
	}{
		Scenario: o.Scenario.Name, QoS: o.Level.Name, QPS: o.QPS,
		MeanOutage: o.MeanOutage, Shed: o.Shed.String(),
		Requests: o.Opt.Requests, Instances: o.Opt.Instances, Seed: o.Opt.Seed,
		Rows: rows,
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
