// Package experiments regenerates every table and figure of the paper's
// evaluation (§VI): Fig 12 (throughput), Fig 13 (SLA satisfaction),
// Fig 14 (fairness), Fig 15 (energy), Fig 16 (scale-out), Fig 17
// (isolated single-DNN speedup/energy), Fig 18 (fission-granularity DSE),
// Fig 19 (area/power breakdown), Table I (workloads), and Table II
// (layer sensitivity to fission configurations).
package experiments

import (
	"fmt"
	"math"
	"strings"
	"sync"

	"planaria/internal/arch"
	"planaria/internal/compiler"
	"planaria/internal/dnn"
	"planaria/internal/energy"
	"planaria/internal/metrics"
	"planaria/internal/par"
	"planaria/internal/prema"
	"planaria/internal/sched"
	"planaria/internal/sim"
	"planaria/internal/workload"
)

// Suite holds the two systems under comparison and caches intermediate
// results (throughputs feed the fixed-rate experiments).
type Suite struct {
	Planaria metrics.System
	PREMA    metrics.System
	// Elastic is the Planaria hardware under the elastic re-fission
	// scheduler (DESIGN.md §16): same chip, same compiled programs, the
	// spatial policy wrapped with QoS-headroom grow/shrink between tiles.
	// The cluster and autoscale sweeps add it as an ablation axis.
	Elastic metrics.System
	Opt     metrics.Options

	mu         sync.Mutex            // guards throughput
	throughput map[string][2]float64 // scenario|qos → {planaria, prema}
}

// NewSuite compiles all nine benchmark models for both systems. The
// (model, system) compilations are independent and run across a bounded
// worker pool; the process-wide cache deduplicates concurrent misses.
// Options follow the evaluation defaults: 400-request instances, 3 seeds.
func NewSuite() (*Suite, error) {
	pl := arch.Planaria()
	mono := arch.Monolithic()
	type compiled struct {
		pl, mono *compiler.Program
	}
	progs := make([]compiled, len(dnn.Names))
	errs := make([]error, 2*len(dnn.Names))
	par.ForEach(2*len(dnn.Names), func(i int) {
		name := dnn.Names[i/2]
		net, err := dnn.ByName(name)
		if err != nil {
			errs[i] = err
			return
		}
		if i%2 == 0 {
			progs[i/2].pl, errs[i] = compiler.DefaultCache.Program(net, pl, true)
		} else {
			progs[i/2].mono, errs[i] = compiler.DefaultCache.Program(net, mono, false)
		}
	})
	if err := par.FirstError(errs); err != nil {
		return nil, err
	}
	progsP := make(map[string]*compiler.Program, len(dnn.Names))
	progsM := make(map[string]*compiler.Program, len(dnn.Names))
	for i, name := range dnn.Names {
		progsP[name] = progs[i].pl
		progsM[name] = progs[i].mono
	}
	return &Suite{
		Planaria: metrics.System{
			Name: "Planaria", Cfg: pl, Programs: progsP, Params: energy.Default(),
			NewPolicy: func() sim.Policy { return sched.NewSpatial(pl) },
		},
		PREMA: metrics.System{
			Name: "PREMA", Cfg: mono, Programs: progsM, Params: energy.Default(),
			NewPolicy: func() sim.Policy { return prema.NewToken(mono) },
		},
		Elastic: metrics.System{
			Name: "Planaria-Elastic", Cfg: pl, Programs: progsP, Params: energy.Default(),
			NewPolicy: func() sim.Policy { return sched.NewElastic(pl) },
		},
		Opt:        metrics.Options{Requests: 400, Instances: 3, Seed: 1},
		throughput: make(map[string][2]float64),
	}, nil
}

// throughputs returns (and caches) both systems' max sustainable QPS for
// a scenario × QoS point. Safe for concurrent callers; distinct points
// compute in parallel while the cache map stays mutex-guarded.
func (s *Suite) throughputs(sc workload.Scenario, lvl workload.QoSLevel) (plQPS, prQPS float64, err error) {
	key := sc.Name + "|" + lvl.Name
	s.mu.Lock()
	v, ok := s.throughput[key]
	s.mu.Unlock()
	if ok {
		return v[0], v[1], nil
	}
	plQPS, err = metrics.Throughput(s.Planaria, sc, lvl, s.Opt)
	if err != nil {
		return 0, 0, err
	}
	prQPS, err = metrics.Throughput(s.PREMA, sc, lvl, s.Opt)
	if err != nil {
		return 0, 0, err
	}
	s.mu.Lock()
	s.throughput[key] = [2]float64{plQPS, prQPS}
	s.mu.Unlock()
	return plQPS, prQPS, nil
}

// commonRate is the fixed arrival rate used by the same-throughput
// comparisons (Fig 13–15): just past the PREMA baseline's sustainable
// rate (1.2×), the operating region the paper's fixed-λ comparisons look
// at — PREMA begins violating the SLA while a stronger system still has
// headroom. Capped at the Planaria rate so both systems stay in a
// meaningful regime when the gap is extreme.
func commonRate(plQPS, prQPS float64) float64 {
	if prQPS <= 0 {
		prQPS = 0.5
	}
	r := prQPS * 1.2
	if plQPS > 0 && r > plQPS {
		r = math.Max(prQPS, plQPS*0.9)
	}
	return r
}

// ServingRow is one (workload, QoS) comparison point shared by the
// serving-path figures.
type ServingRow struct {
	Workload string
	QoS      string

	PlanariaQPS float64
	PremaQPS    float64
	Ratio       float64 // Planaria / PREMA (throughput)

	RateQPS      float64 // common rate used for the fixed-rate metrics
	PlanariaSLA  float64
	PremaSLA     float64
	SLAGainPct   float64 // (Planaria − PREMA) × 100
	PlanariaFair float64
	PremaFair    float64
	FairRatio    float64 // Planaria / PREMA
	PlanariaJ    float64
	PremaJ       float64
	EnergyRatio  float64 // PREMA / Planaria (reduction; >1 favours Planaria)
}

// ServingComparison runs the full Fig 12–15 sweep: throughput per system,
// then SLA rate, fairness, and energy at the common rate. The scenario ×
// QoS points are independent simulations, so they fan out across a
// bounded worker pool; each point writes its own row index and the slice
// is returned in enumeration order, keeping the output identical to the
// sequential sweep (the same pattern metrics.Evaluate uses per instance).
func (s *Suite) ServingComparison() ([]ServingRow, error) {
	type point struct {
		sc  workload.Scenario
		lvl workload.QoSLevel
	}
	var points []point
	for _, sc := range workload.Scenarios() {
		for _, lvl := range workload.Levels {
			points = append(points, point{sc, lvl})
		}
	}
	rows := make([]ServingRow, len(points))
	errs := make([]error, len(points))
	par.ForEach(len(points), func(i int) {
		rows[i], errs[i] = s.servingPoint(points[i].sc, points[i].lvl)
	})
	if err := par.FirstError(errs); err != nil {
		return nil, err
	}
	return rows, nil
}

// servingPoint computes one scenario × QoS row of the Fig 12–15 sweep.
func (s *Suite) servingPoint(sc workload.Scenario, lvl workload.QoSLevel) (ServingRow, error) {
	plQPS, prQPS, err := s.throughputs(sc, lvl)
	if err != nil {
		return ServingRow{}, err
	}
	row := ServingRow{
		Workload:    sc.Name,
		QoS:         lvl.Name,
		PlanariaQPS: plQPS,
		PremaQPS:    prQPS,
	}
	if prQPS > 0 {
		row.Ratio = plQPS / prQPS
	}
	rate := commonRate(plQPS, prQPS)
	row.RateQPS = rate
	// More instances at the fixed rate: the SLA satisfaction *rate* is a
	// fraction over instances and needs resolution.
	fixedOpt := s.Opt
	if fixedOpt.Instances < 5 {
		fixedOpt.Instances = 5
	}
	ap, err := metrics.Evaluate(s.Planaria, sc, lvl, rate, fixedOpt)
	if err != nil {
		return ServingRow{}, err
	}
	am, err := metrics.Evaluate(s.PREMA, sc, lvl, rate, fixedOpt)
	if err != nil {
		return ServingRow{}, err
	}
	row.PlanariaSLA = ap.SLARate
	row.PremaSLA = am.SLARate
	row.SLAGainPct = (ap.SLARate - am.SLARate) * 100
	row.PlanariaFair = ap.Fairness
	row.PremaFair = am.Fairness
	if am.Fairness > 0 {
		row.FairRatio = ap.Fairness / am.Fairness
	}
	row.PlanariaJ = ap.EnergyJ
	row.PremaJ = am.EnergyJ
	if ap.EnergyJ > 0 {
		row.EnergyRatio = am.EnergyJ / ap.EnergyJ
	}
	return row, nil
}

// FormatFig12 renders the throughput comparison (Fig 12).
func FormatFig12(rows []ServingRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 12 — Throughput (max QPS meeting SLA), Planaria vs PREMA\n")
	fmt.Fprintf(&b, "%-12s %-6s %14s %12s %8s\n", "workload", "qos", "planaria(qps)", "prema(qps)", "ratio")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %-6s %14.1f %12.1f %8.1fx\n",
			r.Workload, r.QoS, r.PlanariaQPS, r.PremaQPS, r.Ratio)
	}
	return b.String()
}

// FormatFig13 renders the SLA satisfaction comparison (Fig 13).
func FormatFig13(rows []ServingRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 13 — SLA satisfaction rate at a common rate\n")
	fmt.Fprintf(&b, "%-12s %-6s %10s %12s %10s %8s\n", "workload", "qos", "rate(qps)", "planaria", "prema", "gain")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %-6s %10.1f %11.0f%% %9.0f%% %+7.0f%%\n",
			r.Workload, r.QoS, r.RateQPS, r.PlanariaSLA*100, r.PremaSLA*100, r.SLAGainPct)
	}
	return b.String()
}

// FormatFig14 renders the fairness comparison (Fig 14).
func FormatFig14(rows []ServingRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 14 — Fairness (normalized to PREMA) at a common rate\n")
	fmt.Fprintf(&b, "%-12s %-6s %10s %10s %8s\n", "workload", "qos", "planaria", "prema", "ratio")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %-6s %10.3f %10.3f %7.1fx\n",
			r.Workload, r.QoS, r.PlanariaFair, r.PremaFair, r.FairRatio)
	}
	return b.String()
}

// FormatFig15 renders the energy comparison (Fig 15).
func FormatFig15(rows []ServingRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 15 — Total workload energy, reduction over PREMA\n")
	fmt.Fprintf(&b, "%-12s %-6s %12s %12s %10s\n", "workload", "qos", "planaria(J)", "prema(J)", "reduction")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %-6s %12.2f %12.2f %9.1fx\n",
			r.Workload, r.QoS, r.PlanariaJ, r.PremaJ, r.EnergyRatio)
	}
	return b.String()
}
