package experiments

import (
	"fmt"
	"math"
	"strings"

	"planaria/internal/arch"
	"planaria/internal/dnn"
	"planaria/internal/energy"
	"planaria/internal/metrics"
	"planaria/internal/model"
	"planaria/internal/workload"
)

// Fig16Row is one scale-out point: the minimum node count for 99% SLA.
type Fig16Row struct {
	Workload string
	QoS      string
	RateQPS  float64
	Nodes    int // MaxNodes+1 means "not achievable within MaxNodes"
}

// Fig16MaxNodes bounds the scale-out search.
const Fig16MaxNodes = 10

// Fig16ScaleOut finds the minimum number of Planaria nodes that meets the
// SLA at a constant rate across all workloads and QoS levels (the paper
// uses a single constant throughput; we use 100 QPS, which spans 1 to
// >10 nodes across the sweep).
func (s *Suite) Fig16ScaleOut(rate float64) ([]Fig16Row, error) {
	var rows []Fig16Row
	for _, sc := range workload.Scenarios() {
		for _, lvl := range workload.Levels {
			n, err := metrics.MinNodes(s.Planaria, sc, lvl, rate, Fig16MaxNodes, s.Opt)
			if err != nil {
				return nil, err
			}
			rows = append(rows, Fig16Row{Workload: sc.Name, QoS: lvl.Name, RateQPS: rate, Nodes: n})
		}
	}
	return rows, nil
}

// FormatFig16 renders the scale-out table.
func FormatFig16(rows []Fig16Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 16 — Minimum Planaria nodes for SLA at a constant rate\n")
	fmt.Fprintf(&b, "%-12s %-6s %10s %6s\n", "workload", "qos", "rate(qps)", "nodes")
	for _, r := range rows {
		nodes := fmt.Sprintf("%d", r.Nodes)
		if r.Nodes > Fig16MaxNodes {
			nodes = fmt.Sprintf(">%d", Fig16MaxNodes)
		}
		fmt.Fprintf(&b, "%-12s %-6s %10.1f %6s\n", r.Workload, r.QoS, r.RateQPS, nodes)
	}
	return b.String()
}

// Fig17Row is one isolated single-DNN comparison against the conventional
// monolithic systolic accelerator with identical resources.
type Fig17Row struct {
	Model           string
	Speedup         float64
	EnergyReduction float64
}

// Fig17Isolated reproduces the isolated inference comparison: Planaria
// (fission enabled, whole chip) vs a conventional systolic accelerator
// (same PEs, buffers, frequency, bandwidth).
func (s *Suite) Fig17Isolated() ([]Fig17Row, error) {
	params := energy.Default()
	plIdle := energy.LeakageWatts(s.Planaria.Cfg, params) + energy.OverheadWatts(s.Planaria.Cfg)
	prIdle := energy.LeakageWatts(s.PREMA.Cfg, params) + energy.OverheadWatts(s.PREMA.Cfg)
	var rows []Fig17Row
	for _, name := range dnn.Names {
		pTab := s.Planaria.Programs[name].Table(s.Planaria.Cfg.NumSubarrays())
		mTab := s.PREMA.Programs[name].Table(1)
		pT := s.Planaria.Cfg.Seconds(pTab.TotalCycles)
		mT := s.PREMA.Cfg.Seconds(mTab.TotalCycles)
		pJ := pTab.Acct.Joules(params) + plIdle*pT
		mJ := mTab.Acct.Joules(params) + prIdle*mT
		rows = append(rows, Fig17Row{
			Model:           name,
			Speedup:         mT / pT,
			EnergyReduction: mJ / pJ,
		})
	}
	// Geometric means, as the paper reports averages across benchmarks.
	gs, ge := 1.0, 1.0
	for _, r := range rows {
		gs *= r.Speedup
		ge *= r.EnergyReduction
	}
	n := float64(len(rows))
	rows = append(rows, Fig17Row{
		Model:           "geomean",
		Speedup:         math.Pow(gs, 1/n),
		EnergyReduction: math.Pow(ge, 1/n),
	})
	return rows, nil
}

// FormatFig17 renders the isolated comparison.
func FormatFig17(rows []Fig17Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 17 — Isolated single-DNN inference vs conventional systolic accelerator\n")
	fmt.Fprintf(&b, "%-16s %8s %14s\n", "model", "speedup", "energy-reduct")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-16s %7.2fx %13.2fx\n", r.Model, r.Speedup, r.EnergyReduction)
	}
	return b.String()
}

// Fig18Row is one fission-granularity design point.
type Fig18Row struct {
	Granularity int
	RelativeEDP float64 // normalized to the 32×32 point
	MeanDelayS  float64
	MeanJ       float64
}

// Fig18Granularity sweeps the fission granularity (16×16, 32×32, 64×64
// subarrays) and reports the mean EDP across the nine benchmarks running
// in isolation — the DSE that selected 32×32 (§VI-B2).
func (s *Suite) Fig18Granularity() ([]Fig18Row, error) {
	params := energy.Default()
	granularities := []int{16, 32, 64}
	perNet := make(map[int]map[string]float64) // g → net → EDP
	rows := make([]Fig18Row, 0, len(granularities))
	for _, g := range granularities {
		cfg := arch.Planaria().WithGranularity(g)
		idle := energy.LeakageWatts(cfg, params) + energy.OverheadWatts(cfg)
		perNet[g] = make(map[string]float64, len(dnn.Names))
		var sumT, sumJ float64
		for _, name := range dnn.Names {
			net, err := dnn.ByName(name)
			if err != nil {
				return nil, err
			}
			res, err := model.NetworkOnAlloc(net, cfg, cfg.NumSubarrays(), true)
			if err != nil {
				return nil, err
			}
			t := cfg.Seconds(res.Cycles)
			j := res.Acct.Joules(params) + idle*t
			perNet[g][name] = t * j
			sumT += t
			sumJ += j
		}
		n := float64(len(dnn.Names))
		rows = append(rows, Fig18Row{Granularity: g, MeanDelayS: sumT / n, MeanJ: sumJ / n})
	}
	// Relative EDP: per-network ratio to the 32×32 point, geometric mean
	// across networks (an arithmetic mean of absolute EDPs would be
	// dominated by the slowest network).
	for i := range rows {
		g := rows[i].Granularity
		prod := 1.0
		for _, name := range dnn.Names {
			prod *= perNet[g][name] / perNet[32][name]
		}
		rows[i].RelativeEDP = math.Pow(prod, 1/float64(len(dnn.Names)))
	}
	return rows, nil
}

// FormatFig18 renders the granularity DSE.
func FormatFig18(rows []Fig18Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 18 — Fission granularity DSE (mean across benchmarks, isolated)\n")
	fmt.Fprintf(&b, "%-12s %12s %12s %12s\n", "granularity", "rel. EDP", "delay(ms)", "energy(J)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%dx%-9d %12.3f %12.3f %12.4f\n",
			r.Granularity, r.Granularity, r.RelativeEDP, r.MeanDelayS*1e3, r.MeanJ)
	}
	return b.String()
}

// Fig19Breakdown returns the component-level area/power model and the
// fission overhead fractions.
func Fig19Breakdown() (energy.Breakdown, float64, float64) {
	b := energy.AreaPowerBreakdown(arch.Planaria())
	a, p := b.OverheadFraction()
	return b, a, p
}

// FormatFig19 renders the breakdown.
func FormatFig19() string {
	b, a, p := Fig19Breakdown()
	var sb strings.Builder
	fmt.Fprintf(&sb, "Fig 19 — Planaria area/power breakdown (45 nm class, buffers excluded)\n")
	sb.WriteString(b.String())
	fmt.Fprintf(&sb, "fission overhead: %.1f%% area, %.1f%% power (paper: 12.6%%, 20.6%%)\n", a*100, p*100)
	return sb.String()
}
