package experiments

import (
	"strings"
	"testing"

	"planaria/internal/metrics"
	"planaria/internal/workload"
	"planaria/internal/workload/trace"
)

// TestElasticAblationGain is the headline acceptance claim for the
// elastic re-fission loop: on the headroom-scarce serving mix (hard QoS,
// where Algorithm 1 queues what elastic absorbs into donated headroom),
// the cluster sustains a strictly higher maximum SLA-meeting arrival
// rate at equal chips, and the artifact run records the gain.
func TestElasticAblationGain(t *testing.T) {
	if testing.Short() {
		t.Skip("elastic ablation bisection sweep")
	}
	s := testSuite(t)
	rows, err := s.ElasticAblation(workload.ScenarioB(), workload.QoSHard, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2 (off + on at one chip count)", len(rows))
	}
	var off, on float64
	for _, r := range rows {
		if r.Elastic {
			on = r.MaxQPS
		} else {
			off = r.MaxQPS
		}
	}
	t.Logf("max SLA-meeting QPS at 1 chip: elastic-off %.1f, elastic-on %.1f (%.2fx)", off, on, on/off)
	if off <= 0 {
		t.Fatal("elastic-off sustains nothing; the comparison is vacuous")
	}
	if on <= off {
		t.Fatalf("elastic-on max QPS %.1f does not raise elastic-off %.1f", on, off)
	}
	table := FormatElasticAblation(rows)
	if !strings.Contains(table, "elastic") || !strings.Contains(table, "on") {
		t.Errorf("ablation table missing cells:\n%s", table)
	}
}

// TestElasticClusterSweepAxis: with Elastic set, the sweep gains
// Planaria-Elastic rows and the BENCH_cluster.json artifact stays
// byte-deterministic and records the axis in its header.
func TestElasticClusterSweepAxis(t *testing.T) {
	if testing.Short() {
		t.Skip("elastic cluster sweep")
	}
	s := testSuite(t)
	o := clusterTestOptions()
	o.Chips = []int{2}
	o.Policies = []string{"least-work"}
	o.Elastic = true
	rows, err := s.ClusterSweep(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3 (Planaria, PREMA, Planaria-Elastic)", len(rows))
	}
	sawElastic := false
	for _, r := range rows {
		if r.System == "Planaria-Elastic" {
			sawElastic = true
			if r.MaxQPS <= 0 {
				t.Errorf("elastic cell sustains nothing")
			}
		}
	}
	if !sawElastic {
		t.Fatal("sweep missing the Planaria-Elastic system")
	}
	js1, err := ClusterJSON(o, rows)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(js1), `"elastic": true`) {
		t.Errorf("artifact header missing the elastic axis:\n%.400s", js1)
	}
	rows2, err := s.ClusterSweep(o)
	if err != nil {
		t.Fatal(err)
	}
	js2, err := ClusterJSON(o, rows2)
	if err != nil {
		t.Fatal(err)
	}
	if string(js1) != string(js2) {
		t.Error("elastic BENCH_cluster.json differs between identical sweeps")
	}
}

// TestElasticAutoscaleAxis: the autoscale sweep serves the compressed
// planet-day with the elastic scheduler; conservation-by-construction
// row tallies still partition the stream and the artifact is
// deterministic with the axis recorded.
func TestElasticAutoscaleAxis(t *testing.T) {
	if testing.Short() {
		t.Skip("elastic autoscale sweep")
	}
	s := testSuite(t)
	o := autoscaleTestOptions()
	o.Statics = []int{2}
	o.Elastic = true
	// A further-compressed trace: in the overloaded stretches the
	// re-fission loop replans at every rate-limited stall wakeup, so
	// elastic serving costs far more sim events per trace second than
	// the plain sweep — the full compressed planet-day belongs to the
	// benchmark, not this wiring + conservation test.
	o.Trace = &trace.Spec{
		Version:  trace.FormatVersion,
		Name:     "planet-day-mini",
		Models:   []string{"GNMT", "SSD-R", "YOLOv3"},
		QoS:      "QoS-M",
		Seed:     17,
		HorizonS: 240,
		BaseQPS:  13,
		Diurnal: []trace.RatePoint{
			{AtS: 0, Mult: 0.35},
			{AtS: 60, Mult: 1.2},
			{AtS: 120, Mult: 1.5},
			{AtS: 180, Mult: 1.0},
			{AtS: 240, Mult: 0.4},
		},
		Crowds:   []trace.Crowd{{AtS: 100, Mult: 8, RampS: 20, DecayS: 40}},
		ZipfS:    0.9,
		Users:    200,
		UserBias: 0.3,
	}
	rows, err := s.AutoscaleSweep(o)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if got := r.Completed + r.ShedFront + r.ShedChips + r.ShedDrain; got != r.Requests {
			t.Errorf("%s/%d: terminal tallies %d != %d requests under elastic serving",
				r.Mode, r.Chips, got, r.Requests)
		}
	}
	js1, err := AutoscaleJSON(o, rows)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(js1), `"elastic": true`) {
		t.Errorf("autoscale artifact missing the elastic axis:\n%.400s", js1)
	}
	rows2, err := s.AutoscaleSweep(o)
	if err != nil {
		t.Fatal(err)
	}
	js2, err := AutoscaleJSON(o, rows2)
	if err != nil {
		t.Fatal(err)
	}
	if string(js1) != string(js2) {
		t.Error("elastic BENCH_autoscale.json differs between identical sweeps")
	}
}

// TestElasticSystemWired pins the Suite wiring: the elastic system
// shares the Planaria chip and programs and its policies report active
// re-fission.
func TestElasticSystemWired(t *testing.T) {
	s := testSuite(t)
	if s.Elastic.Name != "Planaria-Elastic" {
		t.Errorf("elastic system name %q", s.Elastic.Name)
	}
	if s.Elastic.Cfg != s.Planaria.Cfg {
		t.Error("elastic system runs different hardware than Planaria")
	}
	if len(s.Elastic.Programs) != len(s.Planaria.Programs) {
		t.Error("elastic system compiled a different model set")
	}
	pol := s.Elastic.NewPolicy()
	type refissioner interface{ RefissionActive() bool }
	r, ok := pol.(refissioner)
	if !ok || !r.RefissionActive() {
		t.Fatalf("elastic policy %T does not have re-fission active", pol)
	}
	_ = metrics.Options{}
}
