package experiments

import (
	"strings"
	"testing"

	"planaria/internal/metrics"
	"planaria/internal/workload"
)

// testSuite returns a suite with reduced instance sizes for test speed.
func testSuite(t *testing.T) *Suite {
	t.Helper()
	s, err := NewSuite()
	if err != nil {
		t.Fatal(err)
	}
	s.Opt = metrics.Options{Requests: 150, Instances: 2, Seed: 11}
	return s
}

func TestServingComparisonShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full serving sweep")
	}
	s := testSuite(t)
	rows, err := s.ServingComparison()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("rows = %d, want 9 (3 workloads × 3 QoS)", len(rows))
	}
	byKey := map[string]ServingRow{}
	for _, r := range rows {
		byKey[r.Workload+"|"+r.QoS] = r
		// The paper's headline direction: Planaria sustains at least the
		// PREMA throughput everywhere.
		if r.PlanariaQPS < r.PremaQPS {
			t.Errorf("%s/%s: Planaria %g QPS below PREMA %g", r.Workload, r.QoS, r.PlanariaQPS, r.PremaQPS)
		}
		if r.PlanariaSLA < r.PremaSLA-0.51 {
			t.Errorf("%s/%s: Planaria SLA %g far below PREMA %g", r.Workload, r.QoS, r.PlanariaSLA, r.PremaSLA)
		}
		if r.PlanariaFair <= 0 || r.PremaFair <= 0 {
			t.Errorf("%s/%s: non-positive fairness", r.Workload, r.QoS)
		}
	}
	// Workload-B (depthwise) shows a large throughput gap — the fission
	// advantage (paper §VI-B1). At reduced test fidelity the per-level
	// ordering is noisy, so assert the robust claims: B's gap is large at
	// every level and beats A's at QoS-S.
	for _, q := range []string{"QoS-S", "QoS-M", "QoS-H"} {
		b := byKey["Workload-B|"+q]
		if b.Ratio < 3 {
			t.Errorf("%s: Workload-B throughput ratio %.1f, expected the depthwise gap to be large", q, b.Ratio)
		}
	}
	if byKey["Workload-B|QoS-S"].Ratio < byKey["Workload-A|QoS-S"].Ratio {
		t.Errorf("QoS-S: Workload-B ratio %.1f below Workload-A %.1f",
			byKey["Workload-B|QoS-S"].Ratio, byKey["Workload-A|QoS-S"].Ratio)
	}
	for _, f := range []func([]ServingRow) string{FormatFig12, FormatFig13, FormatFig14, FormatFig15} {
		if out := f(rows); !strings.Contains(out, "Workload-C") {
			t.Error("formatted table missing rows")
		}
	}
}

func TestFig16ScaleOut(t *testing.T) {
	if testing.Short() {
		t.Skip("scale-out sweep")
	}
	s := testSuite(t)
	rows, err := s.Fig16ScaleOut(100)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("rows = %d", len(rows))
	}
	byWl := map[string][]int{}
	for _, r := range rows {
		if r.Nodes < 1 {
			t.Errorf("%s/%s: %d nodes", r.Workload, r.QoS, r.Nodes)
		}
		byWl[r.Workload] = append(byWl[r.Workload], r.Nodes)
	}
	// Harder QoS never needs fewer nodes (rows are S, M, H in order).
	for wl, ns := range byWl {
		if ns[2] < ns[0] {
			t.Errorf("%s: QoS-H needs %d nodes < QoS-S %d", wl, ns[2], ns[0])
		}
	}
	if out := FormatFig16(rows); !strings.Contains(out, "nodes") {
		t.Error("missing table header")
	}
}

func TestFig17IsolatedShape(t *testing.T) {
	s := testSuite(t)
	rows, err := s.Fig17Isolated()
	if err != nil {
		t.Fatal(err)
	}
	byModel := map[string]Fig17Row{}
	for _, r := range rows {
		byModel[r.Model] = r
		if r.Speedup < 1 {
			t.Errorf("%s: speedup %.2f < 1 — fission should never lose", r.Model, r.Speedup)
		}
	}
	// Depthwise models gain the most; GNMT gains the least (paper
	// §VI-B2).
	for _, dw := range []string{"EfficientNet-B0", "MobileNet-v1", "SSD-M"} {
		if byModel[dw].Speedup < 4 {
			t.Errorf("%s: depthwise speedup %.2f, expected large", dw, byModel[dw].Speedup)
		}
		if byModel[dw].EnergyReduction < 2 {
			t.Errorf("%s: energy reduction %.2f, expected large", dw, byModel[dw].EnergyReduction)
		}
		if byModel["GNMT"].Speedup > byModel[dw].Speedup {
			t.Errorf("GNMT speedup %.2f exceeds %s %.2f", byModel["GNMT"].Speedup, dw, byModel[dw].Speedup)
		}
	}
	if _, ok := byModel["geomean"]; !ok {
		t.Error("missing geomean row")
	}
	if out := FormatFig17(rows); !strings.Contains(out, "geomean") {
		t.Error("format missing geomean")
	}
}

func TestFig18GranularityUShape(t *testing.T) {
	s := testSuite(t)
	rows, err := s.Fig18Granularity()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	edp := map[int]float64{}
	for _, r := range rows {
		edp[r.Granularity] = r.RelativeEDP
	}
	// The DSE result the paper reports: 32×32 minimizes EDP.
	if edp[32] > edp[16] || edp[32] > edp[64] {
		t.Errorf("EDP minimum not at 32x32: %v", edp)
	}
	if out := FormatFig18(rows); !strings.Contains(out, "32x32") {
		t.Error("format missing 32x32 row")
	}
}

func TestFig19BreakdownShape(t *testing.T) {
	b, a, p := Fig19Breakdown()
	if len(b.Components) < 8 {
		t.Fatalf("breakdown has %d components", len(b.Components))
	}
	if a < 0.10 || a > 0.16 || p < 0.17 || p > 0.25 {
		t.Errorf("overhead %.3f area / %.3f power outside calibration band", a, p)
	}
	if out := FormatFig19(); !strings.Contains(out, "overhead") {
		t.Error("format missing overhead line")
	}
}

func TestTable2Shape(t *testing.T) {
	s := testSuite(t)
	cells, err := s.Table2Sensitivity()
	if err != nil {
		t.Fatal(err)
	}
	perModel := map[string]float64{}
	odUsed := false
	for _, c := range cells {
		if c.Percent <= 0 || c.Percent > 100+1e-9 {
			t.Errorf("%s/%v: %.1f%%", c.Model, c.Shape, c.Percent)
		}
		perModel[c.Model] += c.Percent
		if c.OD {
			odUsed = true
		}
	}
	// Percentages per model sum to 100.
	for m, sum := range perModel {
		if sum < 99.5 || sum > 100.5 {
			t.Errorf("%s: shape percentages sum to %.1f", m, sum)
		}
	}
	if !odUsed {
		t.Error("no layer uses an omni-directional configuration — Table II expects several")
	}
	if out := FormatTable2(cells); !strings.Contains(out, "MobileNet-v1") {
		t.Error("format missing models")
	}
}

func TestTable1Format(t *testing.T) {
	out := FormatTable1()
	for _, sc := range workload.Scenarios() {
		if !strings.Contains(out, sc.Name) {
			t.Errorf("Table I missing %s", sc.Name)
		}
	}
	if !strings.Contains(out, "GNMT") {
		t.Error("Table I missing GNMT")
	}
}
