package experiments

import (
	"strings"
	"testing"

	"planaria/internal/cluster"
	"planaria/internal/workload/trace"
)

// autoscaleTestOptions compresses the planet-day sweep ~48× (a 30-minute
// "day" with one flash crowd) so the acceptance claim runs in test time.
// Control-loop constants shrink with the timescale.
func autoscaleTestOptions() AutoscaleOptions {
	return AutoscaleOptions{
		Trace: &trace.Spec{
			Version:  trace.FormatVersion,
			Name:     "planet-day-compressed",
			Models:   []string{"GNMT", "SSD-R", "YOLOv3"},
			QoS:      "QoS-M",
			Seed:     17,
			HorizonS: 1800,
			BaseQPS:  13,
			Diurnal: []trace.RatePoint{
				{AtS: 0, Mult: 0.35},
				{AtS: 375, Mult: 0.25},
				{AtS: 675, Mult: 1.2},
				{AtS: 900, Mult: 1.5},
				{AtS: 1125, Mult: 1.35},
				{AtS: 1350, Mult: 1.6},
				{AtS: 1575, Mult: 0.9},
				{AtS: 1800, Mult: 0.35},
			},
			Crowds:   []trace.Crowd{{AtS: 940, Mult: 12, RampS: 60, DecayS: 240}},
			ZipfS:    0.9,
			Users:    500,
			UserBias: 0.3,
		},
		Statics: []int{1, 2, 3},
		Chips:   6,
		Scale: cluster.Autoscale{
			Min:       1,
			Initial:   1,
			BootS:     10,
			IntervalS: 5,
			Controller: &cluster.Hysteresis{
				TargetS:   0.03,
				HoldTicks: 8,
			},
		},
	}
}

func TestAutoscaleSweepRejectsBadOptions(t *testing.T) {
	s := testSuite(t)
	for name, o := range map[string]AutoscaleOptions{
		"no statics": {Chips: 4},
		"no ceiling": {Statics: []int{1}},
		"bad trace":  {Statics: []int{1}, Chips: 4, Trace: &trace.Spec{}},
	} {
		if _, err := s.AutoscaleSweep(o); err == nil {
			t.Errorf("%s: sweep accepted bad options", name)
		}
	}
}

// TestAutoscaleSweepAcceptance is the headline claim scaled to test
// time: over a diurnal trace with a flash crowd, the autoscaled fleet
// matches or beats every static row's SLA-hit rate while billing
// strictly fewer chip-hours than the best static — and the
// BENCH_autoscale.json artifact is byte-deterministic across fresh
// sweeps.
func TestAutoscaleSweepAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("autoscale sweep")
	}
	s := testSuite(t)
	o := autoscaleTestOptions()
	rows, err := s.AutoscaleSweep(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(o.Statics)+1 {
		t.Fatalf("rows = %d, want %d", len(rows), len(o.Statics)+1)
	}
	t.Logf("\n%s", FormatAutoscale(o, rows))

	bestFrac, bestHours := 0.0, 0.0
	for i, r := range rows[:len(o.Statics)] {
		if r.Mode != "static" || r.Chips != o.Statics[i] {
			t.Fatalf("row %d: %s/%d, want static/%d", i, r.Mode, r.Chips, o.Statics[i])
		}
		if got := r.Completed + r.ShedFront + r.ShedChips + r.ShedDrain; got != r.Requests {
			t.Errorf("static-%d: tallies sum to %d of %d requests", r.Chips, got, r.Requests)
		}
		if r.ShedDrain != 0 || r.Migrated != 0 || r.PeakActive != 0 {
			t.Errorf("static-%d: autoscaler tallies leaked: %+v", r.Chips, r)
		}
		if r.DeadlineFrac > bestFrac {
			bestFrac, bestHours = r.DeadlineFrac, r.ChipHours
		}
	}
	auto := rows[len(rows)-1]
	if auto.Mode != "autoscaled" || auto.Controller != "hysteresis" {
		t.Fatalf("last row is %s/%s, want autoscaled/hysteresis", auto.Mode, auto.Controller)
	}
	if got := auto.Completed + auto.ShedFront + auto.ShedChips + auto.ShedDrain; got != auto.Requests {
		t.Errorf("autoscaled: tallies sum to %d of %d requests", got, auto.Requests)
	}
	if auto.DeadlineFrac < bestFrac {
		t.Errorf("autoscaled deadline fraction %.4f below best static %.4f",
			auto.DeadlineFrac, bestFrac)
	}
	if auto.ChipHours >= bestHours {
		t.Errorf("autoscaled bills %.2f chip-hours, best static bills %.2f",
			auto.ChipHours, bestHours)
	}
	if auto.PeakActive < 2 || auto.PeakActive > o.Chips {
		t.Errorf("peak active %d outside (1, %d]", auto.PeakActive, o.Chips)
	}
	if auto.ScaleUps == 0 || auto.ScaleDowns == 0 {
		t.Errorf("fleet never moved: %d ups, %d downs", auto.ScaleUps, auto.ScaleDowns)
	}

	table := FormatAutoscale(o, rows)
	if !strings.Contains(table, "autoscaled") || !strings.Contains(table, "hysteresis") {
		t.Errorf("table missing rows:\n%s", table)
	}
	js1, err := AutoscaleJSON(o, rows)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(js1), `"name": "planet-day-compressed"`) {
		t.Errorf("artifact missing trace header:\n%.400s", js1)
	}
	o2 := autoscaleTestOptions() // fresh options: controllers are stateful
	rows2, err := s.AutoscaleSweep(o2)
	if err != nil {
		t.Fatal(err)
	}
	js2, err := AutoscaleJSON(o2, rows2)
	if err != nil {
		t.Fatal(err)
	}
	if string(js1) != string(js2) {
		t.Error("BENCH_autoscale.json differs between identical sweeps")
	}
}
