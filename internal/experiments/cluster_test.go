package experiments

import (
	"strings"
	"testing"

	"planaria/internal/metrics"
)

// clusterTestOptions shrinks the sweep for test turnaround.
func clusterTestOptions() ClusterOptions {
	o := DefaultClusterOptions()
	o.Opt = metrics.Options{Requests: 80, Instances: 1, Seed: 17}
	o.QPS = []float64{25}
	return o
}

func TestClusterSweepRejectsBadOptions(t *testing.T) {
	s := testSuite(t)
	for name, o := range map[string]ClusterOptions{
		"no chips":    {Policies: []string{"least-work"}, QPS: []float64{10}, Opt: metrics.Options{Requests: 10, Instances: 1}},
		"no policies": {Chips: []int{1}, QPS: []float64{10}, Opt: metrics.Options{Requests: 10, Instances: 1}},
		"bad policy":  {Chips: []int{1}, Policies: []string{"bogus"}, Opt: metrics.Options{Requests: 10, Instances: 1}},
		"zero chips":  {Chips: []int{0}, Policies: []string{"least-work"}, Opt: metrics.Options{Requests: 10, Instances: 1}},
		"bad opt":     {Chips: []int{1}, Policies: []string{"least-work"}},
	} {
		if _, err := s.ClusterSweep(o); err == nil {
			t.Errorf("%s: sweep accepted bad options", name)
		}
	}
}

// TestClusterScaleOut is the scale-out acceptance claim: for Workload-A,
// at least one balancing policy lets a 4-chip cluster sustain at least
// 3× the maximum SLA-meeting arrival rate of a single chip — under both
// the Planaria spatial engine and the PREMA baseline.
func TestClusterScaleOut(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster scale-out sweep")
	}
	s := testSuite(t)
	o := clusterTestOptions()
	o.Chips = []int{1, 4}
	o.QPS = nil // only the bisected maxima matter here
	rows, err := s.ClusterSweep(o)
	if err != nil {
		t.Fatal(err)
	}
	max := map[string]float64{} // system|chips|policy → MaxQPS
	for _, r := range rows {
		max[r.System+"|"+string(rune('0'+r.Chips))+"|"+r.Policy] = r.MaxQPS
	}
	for _, sys := range []string{"Planaria", "PREMA"} {
		scaled := false
		for _, pol := range o.Policies {
			one := max[sys+"|1|"+pol]
			four := max[sys+"|4|"+pol]
			if one <= 0 {
				t.Errorf("%s/%s: single chip sustains nothing", sys, pol)
				continue
			}
			t.Logf("%s/%s: 1 chip %.1f QPS, 4 chips %.1f QPS (%.2fx)", sys, pol, one, four, four/one)
			if four >= 3*one {
				scaled = true
			}
		}
		if !scaled {
			t.Errorf("%s: no policy reached 3x scale-out from 1 to 4 chips", sys)
		}
	}
}

// TestClusterSweepGridAndArtifacts covers the fixed-rate grid, the table
// renderer, and byte-determinism of the BENCH_cluster.json artifact.
func TestClusterSweepGridAndArtifacts(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster grid sweep")
	}
	s := testSuite(t)
	o := clusterTestOptions()
	o.Chips = []int{2}
	o.Policies = []string{"least-work"}
	o.BatchWindow = 2e-3
	o.MaxBatch = 4
	rows, err := s.ClusterSweep(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2 (one cell per system)", len(rows))
	}
	for _, r := range rows {
		if len(r.Grid) != len(o.QPS) {
			t.Fatalf("%s: grid has %d points, want %d", r.System, len(r.Grid), len(o.QPS))
		}
		for _, p := range r.Grid {
			if p.MeanBatch < 1 {
				t.Errorf("%s@%g: mean batch %g < 1 with batching on", r.System, p.QPS, p.MeanBatch)
			}
			if p.EnergyJ <= 0 {
				t.Errorf("%s@%g: energy %g", r.System, p.QPS, p.EnergyJ)
			}
			if p.DeadlineFrac < 0 || p.DeadlineFrac > 1 {
				t.Errorf("%s@%g: deadline fraction %g", r.System, p.QPS, p.DeadlineFrac)
			}
		}
	}
	table := FormatCluster(o, rows)
	if !strings.Contains(table, "least-work") || !strings.Contains(table, "Planaria") {
		t.Errorf("table missing cells:\n%s", table)
	}
	js1, err := ClusterJSON(o, rows)
	if err != nil {
		t.Fatal(err)
	}
	rows2, err := s.ClusterSweep(o)
	if err != nil {
		t.Fatal(err)
	}
	js2, err := ClusterJSON(o, rows2)
	if err != nil {
		t.Fatal(err)
	}
	if string(js1) != string(js2) {
		t.Error("BENCH_cluster.json differs between identical sweeps")
	}
	if !strings.Contains(string(js1), `"scenario": "Workload-A"`) {
		t.Errorf("artifact missing header:\n%.400s", js1)
	}
}

// TestClusterSweepMoreChipsNeverHurt: on the fixed grid, a 4-chip
// cluster's deadline fraction is at least the 1-chip cluster's at every
// rate (identical request streams, more capacity).
func TestClusterSweepMoreChipsNeverHurt(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster grid sweep")
	}
	s := testSuite(t)
	o := clusterTestOptions()
	o.Chips = []int{1, 4}
	o.Policies = []string{"least-work"}
	o.QPS = []float64{40}
	rows, err := s.ClusterSweep(o)
	if err != nil {
		t.Fatal(err)
	}
	frac := map[string]map[int]float64{}
	for _, r := range rows {
		if frac[r.System] == nil {
			frac[r.System] = map[int]float64{}
		}
		frac[r.System][r.Chips] = r.Grid[0].DeadlineFrac
	}
	for sys, byChips := range frac {
		if byChips[4] < byChips[1]-1e-9 {
			t.Errorf("%s: 4 chips retain %.3f of deadlines, 1 chip %.3f", sys, byChips[4], byChips[1])
		}
	}
}
