package experiments

import (
	"fmt"
	"strings"
	"testing"

	"planaria/internal/metrics"
	"planaria/internal/sim"
	"planaria/internal/workload"
)

// renderComparison renders every serving-comparison figure plus a raw
// hexadecimal dump of each row's float fields, so a single ULP of
// run-to-run drift changes the output.
func renderComparison(rows []ServingRow) string {
	var b strings.Builder
	b.WriteString(FormatFig12(rows))
	b.WriteString(FormatFig13(rows))
	b.WriteString(FormatFig14(rows))
	b.WriteString(FormatFig15(rows))
	for _, r := range rows {
		fmt.Fprintf(&b, "%s|%s %x %x %x %x %x %x %x %x %x %x %x %x\n",
			r.Workload, r.QoS,
			r.PlanariaQPS, r.PremaQPS, r.Ratio, r.RateQPS,
			r.PlanariaSLA, r.PremaSLA, r.SLAGainPct,
			r.PlanariaFair, r.PremaFair, r.FairRatio,
			r.PlanariaJ, r.PremaJ)
	}
	return b.String()
}

// TestServingComparisonDeterministic is the determinism regression test
// the analyzers back up: it runs the default serving comparison twice
// with completely fresh suites (fresh stateful policies, fresh
// throughput caches, the same parallel fan-out) and asserts the rendered
// metrics are byte-identical. CI runs it under -race as well — the
// worker-pool sweeps must not trade reproducibility for speed.
func TestServingComparisonDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("full serving sweep")
	}
	run := func() string {
		s := testSuite(t)
		rows, err := s.ServingComparison()
		if err != nil {
			t.Fatal(err)
		}
		return renderComparison(rows)
	}
	first, second := run(), run()
	if first != second {
		t.Fatalf("serving comparison differs between identical runs:\n--- run 1\n%s\n--- run 2\n%s", first, second)
	}
}

// TestNodeMetricsDeterministic replays one workload instance through
// both systems twice and compares the per-model latency tables and
// outcome metrics byte-for-byte, covering the single-node path (task
// retirement, fairness, energy accounting) at full float precision.
func TestNodeMetricsDeterministic(t *testing.T) {
	s := testSuite(t)
	sc := workload.ScenarioB()
	run := func(sys metrics.System) string {
		reqs, err := workload.Generate(sc, workload.QoSMedium, 40, 120, 7)
		if err != nil {
			t.Fatal(err)
		}
		node := &sim.Node{Cfg: sys.Cfg, Policy: sys.NewPolicy(), Programs: sys.Programs, Params: sys.Params}
		out, err := node.Run(reqs)
		if err != nil {
			t.Fatal(err)
		}
		stats, err := metrics.GroupLatencies(reqs, out.Latency, out.Finishes)
		if err != nil {
			t.Fatal(err)
		}
		return fmt.Sprintf("%s\nenergy=%x makespan=%x busy=%x fair=%x preempt=%d sla=%v\n",
			metrics.FormatLatencyTable(stats),
			out.EnergyJ, out.Makespan, out.BusyTime, out.Fairness, out.Preemptions, out.MeetsSLA)
	}
	for _, sys := range []metrics.System{s.Planaria, s.PREMA} {
		first, second := run(sys), run(sys)
		if first != second {
			t.Errorf("%s: node metrics differ between identical runs:\n--- run 1\n%s\n--- run 2\n%s",
				sys.Name, first, second)
		}
	}
}
