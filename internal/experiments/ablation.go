package experiments

import (
	"fmt"
	"math"
	"strings"

	"planaria/internal/arch"
	"planaria/internal/compiler"
	"planaria/internal/dnn"
	"planaria/internal/energy"
	"planaria/internal/metrics"
	"planaria/internal/model"
	"planaria/internal/sched"
	"planaria/internal/sim"
	"planaria/internal/workload"
)

// PolicyRow is one scheduler-ablation point: the sustainable throughput
// of one policy on one workload × QoS.
type PolicyRow struct {
	Workload string
	QoS      string
	Policy   string
	QPS      float64
}

// SchedulerAblation isolates the scheduler's contribution: the same
// fission-capable hardware and compiled programs under (1) Algorithm 1,
// (2) naive equal-share spatial co-location, and (3) FCFS
// run-to-completion, plus the PREMA baseline on monolithic hardware.
// Expected ordering: spatial ≥ equal-share ≥ FCFS, with PREMA below the
// fission-capable variants (DESIGN.md's scheduling-vs-architecture
// decomposition).
func (s *Suite) SchedulerAblation(sc workload.Scenario) ([]PolicyRow, error) {
	cfg := s.Planaria.Cfg
	variants := []struct {
		name string
		sys  metrics.System
	}{
		{"spatial (Alg. 1)", s.Planaria},
		{"equal-share", withPolicy(s.Planaria, func() sim.Policy { return sched.NewEqualShare(cfg) })},
		{"fcfs", withPolicy(s.Planaria, func() sim.Policy { return sched.NewFCFS(cfg) })},
		{"prema (monolithic)", s.PREMA},
	}
	var rows []PolicyRow
	for _, lvl := range workload.Levels {
		for _, v := range variants {
			qps, err := metrics.Throughput(v.sys, sc, lvl, s.Opt)
			if err != nil {
				return nil, err
			}
			rows = append(rows, PolicyRow{
				Workload: sc.Name, QoS: lvl.Name, Policy: v.name, QPS: qps,
			})
		}
	}
	return rows, nil
}

func withPolicy(sys metrics.System, newPolicy func() sim.Policy) metrics.System {
	sys.NewPolicy = newPolicy
	return sys
}

// ElasticRow is one elastic re-fission ablation point: the cluster's
// maximum SLA-meeting arrival rate with runtime re-fission on or off at
// the same chip count.
type ElasticRow struct {
	Workload string  `json:"workload"`
	QoS      string  `json:"qos"`
	Chips    int     `json:"chips"`
	Elastic  bool    `json:"elastic"`
	MaxQPS   float64 `json:"max_qps"`
}

// ElasticAblation isolates the elastic re-fission control loop's
// contribution (DESIGN.md §16): the same fission hardware, compiled
// programs, and least-work balancing, with and without between-tile
// grow/shrink, at each chip count. The headline claim under test:
// elastic-on sustains a higher SLA-meeting arrival rate at equal chips,
// because arrivals that Algorithm 1 would queue are absorbed into
// headroom donated by SLA-beating tenants.
func (s *Suite) ElasticAblation(sc workload.Scenario, lvl workload.QoSLevel, chips []int) ([]ElasticRow, error) {
	if len(chips) == 0 {
		chips = []int{1, 2}
	}
	o := ClusterOptions{Scenario: sc, Level: lvl, Opt: s.Opt}
	variants := []struct {
		sys     metrics.System
		elastic bool
	}{
		{s.Planaria, false},
		{s.Elastic, true},
	}
	var rows []ElasticRow
	for _, c := range chips {
		for _, v := range variants {
			qps, err := clusterMaxQPS(v.sys, o, c, "least-work")
			if err != nil {
				return nil, err
			}
			rows = append(rows, ElasticRow{
				Workload: sc.Name, QoS: lvl.Name,
				Chips: c, Elastic: v.elastic, MaxQPS: qps,
			})
		}
	}
	return rows, nil
}

// FormatElasticAblation renders the elastic on/off comparison.
func FormatElasticAblation(rows []ElasticRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation — elastic re-fission (max SLA-meeting QPS, least-work balancing)\n")
	fmt.Fprintf(&b, "%-12s %-6s %6s %-8s %10s\n", "workload", "qos", "chips", "elastic", "max qps")
	for _, r := range rows {
		on := "off"
		if r.Elastic {
			on = "on"
		}
		fmt.Fprintf(&b, "%-12s %-6s %6d %-8s %10.1f\n", r.Workload, r.QoS, r.Chips, on, r.MaxQPS)
	}
	return b.String()
}

// FormatSchedulerAblation renders the policy ablation.
func FormatSchedulerAblation(rows []PolicyRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation — scheduler contribution (throughput, same fission hardware)\n")
	fmt.Fprintf(&b, "%-12s %-6s %-20s %10s\n", "workload", "qos", "policy", "qps")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %-6s %-20s %10.1f\n", r.Workload, r.QoS, r.Policy, r.QPS)
	}
	return b.String()
}

// OmniRow is one omni-directional-ablation point: how much a network
// loses when the omni-directional configurations are removed from the
// compiler's shape space.
type OmniRow struct {
	Model         string
	FullCycles    int64
	NoOmniCycles  int64
	SlowdownPct   float64
	EnergyRisePct float64
}

// OmniAblation recompiles each benchmark with the omni-directional shapes
// (cluster extents beyond the physical pod-grid side, §IV-A) excluded and
// reports the isolated latency/energy cost — the value of the
// omni-directional systolic feature.
func OmniAblation() ([]OmniRow, error) {
	cfg := arch.Planaria()
	params := energy.Default()
	noOmni := func(sh arch.Shape) bool { return !sh.UsesOmniDirectional(cfg) }
	var rows []OmniRow
	for _, name := range dnn.Names {
		net, err := dnn.ByName(name)
		if err != nil {
			return nil, err
		}
		full, err := model.NetworkOnAlloc(net, cfg, cfg.NumSubarrays(), true)
		if err != nil {
			return nil, err
		}
		restricted, err := model.NetworkOnAllocWith(net, cfg, cfg.NumSubarrays(), true, noOmni)
		if err != nil {
			return nil, err
		}
		fj := full.Acct.Joules(params)
		rj := restricted.Acct.Joules(params)
		rows = append(rows, OmniRow{
			Model:         name,
			FullCycles:    full.Cycles,
			NoOmniCycles:  restricted.Cycles,
			SlowdownPct:   100 * (float64(restricted.Cycles)/float64(full.Cycles) - 1),
			EnergyRisePct: 100 * (rj/fj - 1),
		})
	}
	return rows, nil
}

// FormatOmniAblation renders the omni-directional ablation.
func FormatOmniAblation(rows []OmniRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation — omni-directional feature removed from the shape space\n")
	fmt.Fprintf(&b, "%-16s %12s %12s %10s %10s\n", "model", "full(cyc)", "no-omni", "slowdown", "energy")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-16s %12d %12d %9.2f%% %9.2f%%\n",
			r.Model, r.FullCycles, r.NoOmniCycles, r.SlowdownPct, r.EnergyRisePct)
	}
	return b.String()
}

// GranularityRow extends the Fig 18 sweep with additional design points
// for the ablation study (8×8 through 64×64).
type GranularityRow = Fig18Row

// ExtendedGranularity sweeps granularities 8, 16, 32, 64 (the Fig 18
// methodology over a wider range).
func (s *Suite) ExtendedGranularity() ([]GranularityRow, error) {
	params := energy.Default()
	granularities := []int{8, 16, 32, 64}
	perNet := make(map[int]map[string]float64)
	rows := make([]GranularityRow, 0, len(granularities))
	for _, g := range granularities {
		cfg := arch.Planaria().WithGranularity(g)
		idle := energy.LeakageWatts(cfg, params) + energy.OverheadWatts(cfg)
		perNet[g] = make(map[string]float64, len(dnn.Names))
		var sumT, sumJ float64
		for _, name := range dnn.Names {
			net, err := dnn.ByName(name)
			if err != nil {
				return nil, err
			}
			res, err := model.NetworkOnAlloc(net, cfg, cfg.NumSubarrays(), true)
			if err != nil {
				return nil, err
			}
			t := cfg.Seconds(res.Cycles)
			j := res.Acct.Joules(params) + idle*t
			perNet[g][name] = t * j
			sumT += t
			sumJ += j
		}
		n := float64(len(dnn.Names))
		rows = append(rows, GranularityRow{Granularity: g, MeanDelayS: sumT / n, MeanJ: sumJ / n})
	}
	for i := range rows {
		g := rows[i].Granularity
		prod := 1.0
		for _, name := range dnn.Names {
			prod *= perNet[g][name] / perNet[32][name]
		}
		rows[i].RelativeEDP = math.Pow(prod, 1/float64(len(dnn.Names)))
	}
	return rows, nil
}

// PenaltyRow is one reconfiguration-cost sensitivity point.
type PenaltyRow struct {
	Scale float64
	QPS   float64
}

// PenaltySensitivity sweeps a multiplier on every re-allocation penalty
// (tile drain + checkpoint DMA + configuration load) and measures
// Workload-C/QoS-M throughput under Algorithm 1 — quantifying §V's claim
// that tile-granularity scheduling keeps re-allocation overheads from
// eroding throughput (the curve should be nearly flat at small scales and
// degrade only when preemption becomes orders of magnitude dearer).
func (s *Suite) PenaltySensitivity(sc workload.Scenario, lvl workload.QoSLevel) ([]PenaltyRow, error) {
	scales := []float64{0.001, 1, 10, 100}
	rows := make([]PenaltyRow, 0, len(scales))
	for _, scale := range scales {
		qps, err := penaltyThroughput(s.Planaria.Cfg, s.Planaria.Programs,
			s.Planaria.Params, s.Opt, sc, lvl, scale)
		if err != nil {
			return nil, err
		}
		rows = append(rows, PenaltyRow{Scale: scale, QPS: qps})
	}
	return rows, nil
}

// penaltyThroughput is a reduced throughput search over nodes carrying a
// penalty scale.
func penaltyThroughput(cfg arch.Config, progs map[string]*compiler.Program, params energy.Params,
	opt metrics.Options, sc workload.Scenario, lvl workload.QoSLevel, scale float64) (float64, error) {
	meets := func(qps float64) (bool, error) {
		ok := 0
		for inst := 0; inst < opt.Instances; inst++ {
			reqs, err := workload.Generate(sc, lvl, qps, opt.Requests, opt.Seed+int64(inst)*7919)
			if err != nil {
				return false, err
			}
			node := &sim.Node{
				Cfg: cfg, Policy: sched.NewSpatial(cfg), Programs: progs,
				Params: params, PenaltyScale: scale,
			}
			out, err := node.Run(reqs)
			if err != nil {
				return false, err
			}
			if out.MeetsSLA {
				ok++
			}
		}
		return float64(ok) >= 0.5*float64(opt.Instances), nil
	}
	lo, hi := 0.5, 0.5
	okLo, err := meets(lo)
	if err != nil || !okLo {
		return 0, err
	}
	for hi < 1<<20 {
		hi *= 2
		ok, err := meets(hi)
		if err != nil {
			return 0, err
		}
		if !ok {
			break
		}
		lo = hi
	}
	for i := 0; i < 10 && hi-lo > 0.05*lo; i++ {
		mid := (lo + hi) / 2
		ok, err := meets(mid)
		if err != nil {
			return 0, err
		}
		if ok {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, nil
}

// FormatPenaltySensitivity renders the sweep.
func FormatPenaltySensitivity(sc workload.Scenario, lvl workload.QoSLevel, rows []PenaltyRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation — re-allocation penalty sensitivity (%s, %s, Algorithm 1)\n", sc.Name, lvl.Name)
	fmt.Fprintf(&b, "%-14s %10s\n", "penalty scale", "qps")
	for _, r := range rows {
		fmt.Fprintf(&b, "%14.3f %10.1f\n", r.Scale, r.QPS)
	}
	return b.String()
}
