package experiments

import (
	"bytes"
	"strings"
	"testing"

	"planaria/internal/workload"
)

// tracedPoint is the acceptance fixture: a 2-task co-location instance at
// a rate that overlaps the two requests on the chip.
func tracedPoint(t *testing.T, s *Suite) *TracedResult {
	t.Helper()
	res, err := s.TracedRun(workload.ScenarioA(), workload.QoSMedium, 200, 2, 11)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestTracedRunDeterministic is the observability acceptance criterion:
// two identical invocations of the 2-task co-location run must produce
// byte-identical metrics snapshots and trace JSON.
func TestTracedRunDeterministic(t *testing.T) {
	s := testSuite(t)
	a, b := tracedPoint(t, s), tracedPoint(t, s)
	if !bytes.Equal(a.MetricsJSON, b.MetricsJSON) {
		t.Errorf("metrics snapshots differ between identical runs:\n--- run 1\n%s\n--- run 2\n%s",
			a.MetricsJSON, b.MetricsJSON)
	}
	if !bytes.Equal(a.TraceJSON, b.TraceJSON) {
		t.Error("trace JSON differs between identical runs")
	}
	if a.MetricsText != b.MetricsText {
		t.Error("metrics text tables differ between identical runs")
	}
}

// TestTracedRunContents checks both systems landed in the shared
// artifacts: system-labeled series in the snapshot and per-system track
// prefixes in the timeline.
func TestTracedRunContents(t *testing.T) {
	s := testSuite(t)
	res := tracedPoint(t, s)
	snap := string(res.MetricsJSON)
	for _, want := range []string{
		`"sim_requests_total"`, `"sim_completions_total"`, `"sim_latency_seconds"`,
		`"sched_decisions_total"`, `"prema_decisions_total"`,
		`"value": "planaria"`, `"value": "prema"`,
	} {
		if !strings.Contains(snap, want) {
			t.Errorf("metrics snapshot missing %s", want)
		}
	}
	trace := string(res.TraceJSON)
	for _, want := range []string{`"planaria/task 000"`, `"prema/task 000"`, `"planaria/chip"`} {
		if !strings.Contains(trace, want) {
			t.Errorf("trace missing track %s", want)
		}
	}
	if res.Planaria == nil || res.PREMA == nil {
		t.Fatal("missing outcome")
	}
	if len(res.Planaria.Finishes) != 2 {
		t.Fatalf("expected 2 requests, got %d", len(res.Planaria.Finishes))
	}
	if res.MetricsText == "" {
		t.Error("empty metrics text table")
	}
}
