package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"

	"planaria/internal/cluster"
	"planaria/internal/metrics"
	"planaria/internal/obs"
	"planaria/internal/par"
	"planaria/internal/sim"
	"planaria/internal/workload"
)

// AttribOptions configures the SLA root-cause attribution experiment
// (DESIGN.md §14): one cluster run per system over a mixed-QoS workload,
// with admission control, batching, and doomed-request shedding on so
// every attribution phase can actually appear in the artifact.
type AttribOptions struct {
	Scenario workload.Scenario
	// Chips / Policy / BatchWindow / MaxBatch configure the cluster
	// front end.
	Chips       int
	Policy      string
	BatchWindow float64
	MaxBatch    int
	// QPS is the total arrival rate, split evenly across the three QoS
	// levels so the report breaks down per model × per level.
	QPS float64
	// AdmitRate/AdmitBurst configure one shared front-door token bucket
	// (0 disables admission control and with it the admit-wait phase).
	AdmitRate  float64
	AdmitBurst float64
	// Opt carries requests and seed (Instances is unused: attribution
	// is per-run causal accounting, so the artifact is one run per
	// system).
	Opt metrics.Options
}

// DefaultAttribOptions is the configuration the attrib CLI experiment
// and CI smoke run use.
func DefaultAttribOptions() AttribOptions {
	return AttribOptions{
		Scenario:    workload.ScenarioA(),
		Chips:       2,
		Policy:      "least-work",
		BatchWindow: 0.002,
		MaxBatch:    8,
		QPS:         90,
		AdmitRate:   120,
		AdmitBurst:  8,
		Opt:         metrics.Options{Requests: 120, Seed: 17},
	}
}

// AttribRow is one system's attribution result.
type AttribRow struct {
	System    string            `json:"system"`
	Completed int               `json:"completed"`
	ShedFront int               `json:"shed_front"`
	ShedChips int               `json:"shed_chips"`
	Rejected  int               `json:"rejected"`
	Report    *obs.AttribReport `json:"report"`
}

// attribWorkload builds the mixed-QoS stream: one generated stream per
// QoS level at QPS/3, merged chronologically (ties keep level order) and
// re-IDed to the identity so the cluster front end takes its fast paths.
func attribWorkload(o AttribOptions) ([]workload.Request, error) {
	levels := workload.Levels
	per := o.Opt.Requests / len(levels)
	streams := make([][]workload.Request, len(levels))
	for i, lv := range levels {
		n := per
		if i == 0 {
			n += o.Opt.Requests - per*len(levels)
		}
		reqs, err := workload.Generate(o.Scenario, lv, o.QPS/float64(len(levels)), n, o.Opt.Seed+int64(i)*7919)
		if err != nil {
			return nil, err
		}
		streams[i] = reqs
	}
	merged := make([]workload.Request, 0, o.Opt.Requests)
	heads := make([]int, len(streams))
	for {
		best := -1
		for i, h := range heads {
			if h >= len(streams[i]) {
				continue
			}
			if best < 0 || streams[i][h].Arrival < streams[best][heads[best]].Arrival {
				best = i
			}
		}
		if best < 0 {
			break
		}
		merged = append(merged, streams[best][heads[best]])
		heads[best]++
	}
	for i := range merged {
		merged[i].ID = i
	}
	return merged, nil
}

// AttribRun executes the attribution experiment: the same mixed-QoS
// stream through each system's cluster, attribution on, folded into one
// report per system.
func (s *Suite) AttribRun(o AttribOptions) ([]AttribRow, error) {
	if o.Opt.Requests <= 0 || o.Chips < 1 || o.QPS <= 0 {
		return nil, fmt.Errorf("experiments: bad attrib options %+v", o)
	}
	reqs, err := attribWorkload(o)
	if err != nil {
		return nil, err
	}
	var admission map[string]cluster.TokenBucket
	if o.AdmitRate > 0 {
		admission = map[string]cluster.TokenBucket{
			"": {Rate: o.AdmitRate, Burst: o.AdmitBurst, MaxQueue: 64},
		}
	}
	systems := []metrics.System{s.Planaria, s.PREMA}
	rows := make([]AttribRow, len(systems))
	errs := make([]error, len(systems))
	par.ForEach(len(systems), func(i int) {
		run := make([]workload.Request, len(reqs))
		copy(run, reqs)
		out, err := cluster.Run(cluster.Config{
			System: systems[i], Chips: o.Chips, Policy: o.Policy,
			BatchWindow: o.BatchWindow, MaxBatch: o.MaxBatch,
			Admission: admission,
			Shed:      sim.ShedDoomed,
			Attrib:    true,
		}, run)
		if err != nil {
			errs[i] = err
			return
		}
		report, err := out.AttribReport(run)
		if err != nil {
			errs[i] = err
			return
		}
		rows[i] = AttribRow{
			System:    systems[i].Name,
			Completed: out.Completed,
			ShedFront: out.ShedFront,
			ShedChips: out.ShedChips,
			Rejected:  out.Rejected,
			Report:    report,
		}
	})
	if err := par.FirstError(errs); err != nil {
		return nil, err
	}
	return rows, nil
}

// FormatAttrib renders the attribution rows as text: per-system terminal
// tallies, the per-model × per-QoS phase breakdown, the dominant-cause
// histogram, and the fleet utilization table.
func FormatAttrib(o AttribOptions, rows []AttribRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "SLA root-cause attribution — %s, %d chips, %s, %g QPS (batch window %g s)\n",
		o.Scenario.Name, o.Chips, o.Policy, o.QPS, o.BatchWindow)
	for _, r := range rows {
		fmt.Fprintf(&b, "\n%s: completed %d, shed front %d, shed chips %d, rejected %d\n",
			r.System, r.Completed, r.ShedFront, r.ShedChips, r.Rejected)
		b.WriteString(r.Report.Text())
	}
	return b.String()
}

// AttribJSON marshals the rows into the deterministic BENCH_attrib.json
// artifact: options header plus rows, indented, no timestamps — two runs
// at the same seed must be byte-identical.
func AttribJSON(o AttribOptions, rows []AttribRow) ([]byte, error) {
	doc := struct {
		Scenario    string      `json:"scenario"`
		Chips       int         `json:"chips"`
		Policy      string      `json:"policy"`
		QPS         float64     `json:"qps"`
		BatchWindow float64     `json:"batch_window_s"`
		MaxBatch    int         `json:"max_batch"`
		AdmitRate   float64     `json:"admit_rate"`
		AdmitBurst  float64     `json:"admit_burst"`
		Requests    int         `json:"requests"`
		Seed        int64       `json:"seed"`
		Rows        []AttribRow `json:"rows"`
	}{
		Scenario: o.Scenario.Name, Chips: o.Chips, Policy: o.Policy,
		QPS: o.QPS, BatchWindow: o.BatchWindow, MaxBatch: o.MaxBatch,
		AdmitRate: o.AdmitRate, AdmitBurst: o.AdmitBurst,
		Requests: o.Opt.Requests, Seed: o.Opt.Seed,
		Rows: rows,
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
