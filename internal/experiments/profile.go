package experiments

import (
	"fmt"
	"strings"

	"planaria/internal/arch"
	"planaria/internal/compiler"
	"planaria/internal/dnn"
	"planaria/internal/energy"
)

// ProfileRow is one layer of a compiled-network profile.
type ProfileRow struct {
	Layer   string
	Kind    string
	Shape   arch.Shape
	Cycles  int64
	Tiles   int64
	UtilPct float64
	EnergyU float64 // microjoules
	Omni    bool
}

// Profile compiles a network for an allocation and returns the per-layer
// execution plan — the contents of the configuration table the runtime
// scheduler consults (Fig 11).
func Profile(name string, s int) ([]ProfileRow, error) {
	net, err := dnn.ByName(name)
	if err != nil {
		return nil, err
	}
	cfg := arch.Planaria()
	tab, err := compiler.Compile(net, cfg, s, true)
	if err != nil {
		return nil, err
	}
	params := energy.Default()
	rows := make([]ProfileRow, 0, len(tab.Layers))
	for _, lp := range tab.Layers {
		l := &net.Layers[lp.LayerIdx]
		rows = append(rows, ProfileRow{
			Layer:   l.Name,
			Kind:    l.Kind.String(),
			Shape:   lp.Shape,
			Cycles:  lp.Cycles,
			Tiles:   lp.Tiles,
			UtilPct: lp.Util * 100,
			EnergyU: lp.Acct.Joules(params) * 1e6,
			Omni:    lp.Shape.UsesOmniDirectional(cfg),
		})
	}
	return rows, nil
}

// FormatProfile renders a per-layer profile.
func FormatProfile(name string, s int, rows []ProfileRow) string {
	var b strings.Builder
	var totalCycles int64
	var totalE float64
	fmt.Fprintf(&b, "Profile — %s on %d subarray(s)\n", name, s)
	fmt.Fprintf(&b, "%-22s %-10s %-14s %12s %8s %7s %10s %4s\n",
		"layer", "kind", "shape", "cycles", "tiles", "util", "energy(uJ)", "omni")
	for _, r := range rows {
		omni := ""
		if r.Omni {
			omni = "yes"
		}
		fmt.Fprintf(&b, "%-22s %-10s %-14s %12d %8d %6.1f%% %10.2f %4s\n",
			r.Layer, r.Kind, r.Shape.String(), r.Cycles, r.Tiles, r.UtilPct, r.EnergyU, omni)
		totalCycles += r.Cycles
		totalE += r.EnergyU
	}
	cfg := arch.Planaria()
	fmt.Fprintf(&b, "total: %d cycles (%.3f ms at %d MHz), %.1f uJ dynamic\n",
		totalCycles, cfg.Seconds(totalCycles)*1e3, cfg.FreqMHz, totalE)
	return b.String()
}
