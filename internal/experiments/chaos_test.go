package experiments

import (
	"bytes"
	"testing"

	"planaria/internal/fault"
	"planaria/internal/metrics"
	"planaria/internal/sim"
	"planaria/internal/workload"
)

// chaosTestOptions keeps the sweep cheap: one scenario, two rates, small
// instances.
func chaosTestOptions() ChaosOptions {
	o := DefaultChaosOptions()
	o.Opt = metrics.Options{Requests: 60, Instances: 2, Seed: 11}
	o.Rates = []float64{0, 40}
	return o
}

// TestChaosSweepDeterministic mirrors TestTracedRunDeterministic for the
// fault path: two sweeps from fresh suites must produce byte-identical
// BENCH_chaos artifacts.
func TestChaosSweepDeterministic(t *testing.T) {
	run := func() []byte {
		s := testSuite(t)
		o := chaosTestOptions()
		rows, err := s.ChaosSweep(o)
		if err != nil {
			t.Fatal(err)
		}
		j, err := ChaosJSON(o, rows)
		if err != nil {
			t.Fatal(err)
		}
		return j
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatalf("chaos artifacts differ:\n%s\n---\n%s", a, b)
	}
}

// TestChaosZeroRateMatchesPlainServing: the rate-0 row must reproduce
// the fault-free serving numbers exactly — same nodes, no injector, no
// shedding — so enabling the chaos machinery cannot perturb baselines.
func TestChaosZeroRateMatchesPlainServing(t *testing.T) {
	s := testSuite(t)
	o := chaosTestOptions()
	o.Rates = []float64{0}
	rows, err := s.ChaosSweep(o)
	if err != nil {
		t.Fatal(err)
	}
	// Replay the plain path by hand for both systems.
	var plSLA, prSLA float64
	for inst := 0; inst < o.Opt.Instances; inst++ {
		reqs, err := workload.Generate(o.Scenario, o.Level, o.QPS, o.Opt.Requests, o.Opt.Seed+int64(inst)*7919)
		if err != nil {
			t.Fatal(err)
		}
		pl := &sim.Node{Cfg: s.Planaria.Cfg, Policy: s.Planaria.NewPolicy(), Programs: s.Planaria.Programs, Params: s.Planaria.Params}
		plOut, err := pl.Run(reqs)
		if err != nil {
			t.Fatal(err)
		}
		pr := &sim.Node{Cfg: s.PREMA.Cfg, Policy: s.PREMA.NewPolicy(), Programs: s.PREMA.Programs, Params: s.PREMA.Params}
		prOut, err := pr.Run(reqs)
		if err != nil {
			t.Fatal(err)
		}
		plSLA += workload.DeadlineFraction(reqs, plOut.Finishes)
		prSLA += workload.DeadlineFraction(reqs, prOut.Finishes)
	}
	n := float64(o.Opt.Instances)
	if rows[0].PlanariaSLA != plSLA/n || rows[0].PremaSLA != prSLA/n {
		t.Fatalf("rate-0 row (%.6f, %.6f) drifted from plain serving (%.6f, %.6f)",
			rows[0].PlanariaSLA, rows[0].PremaSLA, plSLA/n, prSLA/n)
	}
	if rows[0].FaultEvents != 0 || rows[0].PlanariaKilled != 0 || rows[0].PlanariaShed != 0 {
		t.Fatalf("rate-0 row has fault activity: %+v", rows[0])
	}
}

// TestChaosGracefulDegradation is the headline robustness claim: at a
// nonzero fault rate, Planaria's fission masking with shedding retains
// strictly more SLA than PREMA's monolithic derate.
func TestChaosGracefulDegradation(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos sweep")
	}
	s := testSuite(t)
	o := chaosTestOptions()
	o.Rates = []float64{0, 40, 160}
	rows, err := s.ChaosSweep(o)
	if err != nil {
		t.Fatal(err)
	}
	better := false
	for _, r := range rows[1:] {
		if r.FaultEvents == 0 {
			t.Errorf("rate %g produced no fault events", r.Rate)
		}
		if r.PlanariaSLA > r.PremaSLA {
			better = true
		}
	}
	if !better {
		t.Fatalf("Planaria never beat PREMA under faults: %+v", rows)
	}
	// The zero-fault row must not show degradation machinery at work.
	if rows[0].PlanariaKilled != 0 || rows[0].PremaKilled != 0 {
		t.Fatalf("kills on the fault-free row: %+v", rows[0])
	}
}

// TestChaosExplicitSchedule: a -faults style schedule collapses the
// sweep to one replayed row.
func TestChaosExplicitSchedule(t *testing.T) {
	s := testSuite(t)
	o := chaosTestOptions()
	o.Schedule = &fault.Schedule{Units: 16, Pods: 4, Events: []fault.Event{
		{Time: 0.050, Kind: fault.KindSubarray, Unit: 3},
		{Time: 0.120, Kind: fault.KindLink, Unit: 1, Duration: 0.100},
	}}
	rows, err := s.ChaosSweep(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Rate != -1 {
		t.Fatalf("explicit schedule produced rows %+v", rows)
	}
	if rows[0].FaultEvents == 0 {
		t.Fatal("explicit schedule applied no transitions")
	}
	if out := FormatChaos(o, rows); out == "" {
		t.Fatal("empty chaos table")
	}
}
