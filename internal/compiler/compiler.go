// Package compiler implements the offline Planaria compiler (§IV-C,
// Fig 11a): for each DNN and each possible subarray allocation (1..16) it
// selects the optimal fission configuration and tiling per layer and
// produces (a) a configuration table — per layer: shape, tile count,
// cycles per tile, energy — that the runtime scheduler uses to predict
// remaining time, and (b) a macro-instruction binary.
package compiler

import (
	"fmt"
	"sync"

	"planaria/internal/arch"
	"planaria/internal/dnn"
	"planaria/internal/energy"
	"planaria/internal/isa"
	"planaria/internal/model"
	"planaria/internal/par"
)

// LayerPlan is one configuration-table row.
type LayerPlan struct {
	LayerIdx      int
	Shape         arch.Shape
	SplitM        bool
	Tiles         int64
	CyclesPerTile int64
	Cycles        int64
	Util          float64
	Acct          energy.Account
}

// Table is the configuration table for one (network, allocation) pair.
type Table struct {
	Net       string
	Subarrays int
	Layers    []LayerPlan
	// TotalCycles/TotalTiles aggregate the whole inference.
	TotalCycles int64
	TotalTiles  int64
	// CumCycles[i] is the cycle count of layers [0, i); CumCycles has
	// len(Layers)+1 entries, so CumCycles[len] == TotalCycles. The
	// scheduler's PREDICTTIME is a lookup into this prefix sum.
	CumCycles []int64
	Acct      energy.Account
}

// Compile builds the configuration table for net on cfg with s subarrays.
// fissionable = false forces the monolithic shape for every layer (the
// conventional/PREMA execution model).
func Compile(net *dnn.Network, cfg arch.Config, s int, fissionable bool) (*Table, error) {
	if err := net.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if s < 1 || s > cfg.NumSubarrays() {
		return nil, fmt.Errorf("compiler: allocation %d outside [1,%d]", s, cfg.NumSubarrays())
	}
	t := &Table{Net: net.Name, Subarrays: s}
	t.CumCycles = make([]int64, 0, len(net.Layers)+1)
	t.CumCycles = append(t.CumCycles, 0)
	mono := arch.MonolithicShape(cfg)
	for i := range net.Layers {
		l := &net.Layers[i]
		var r model.Result
		if fissionable || !l.Kind.IsGEMM() {
			r = model.BestShape(l, cfg, s)
		} else {
			r = model.LayerOnShape(l, mono, cfg, s)
		}
		plan := LayerPlan{
			LayerIdx:      i,
			Shape:         r.Shape,
			SplitM:        r.SplitM,
			Tiles:         r.Tiles,
			CyclesPerTile: r.CyclesPerTile(),
			Cycles:        r.Cycles,
			Util:          r.Util,
			Acct:          r.Acct,
		}
		t.Layers = append(t.Layers, plan)
		t.TotalCycles += r.Cycles
		t.TotalTiles += r.Tiles
		t.Acct.Add(r.Acct)
		t.CumCycles = append(t.CumCycles, t.TotalCycles)
	}
	if t.TotalCycles <= 0 || t.TotalTiles <= 0 {
		return nil, fmt.Errorf("compiler: degenerate table for %s/s=%d", net.Name, s)
	}
	return t, nil
}

// RemainingCycles returns the cycles left from a progress point: layer
// index and tiles already completed within that layer.
func (t *Table) RemainingCycles(layer int, tilesDone int64) int64 {
	if layer >= len(t.Layers) {
		return 0
	}
	if layer < 0 {
		layer = 0
	}
	rem := t.TotalCycles - t.CumCycles[layer]
	lp := &t.Layers[layer]
	if tilesDone > 0 && lp.Tiles > 0 {
		if tilesDone > lp.Tiles {
			tilesDone = lp.Tiles
		}
		rem -= lp.Cycles * tilesDone / lp.Tiles
	}
	if rem < 0 {
		rem = 0
	}
	return rem
}

// Program bundles the 16 per-allocation tables for one network on one
// hardware configuration — the artifact INFaaS deploys per model.
type Program struct {
	Net    *dnn.Network
	Cfg    arch.Config
	tables []*Table // index 0 = allocation 1
}

// CompileProgram compiles all allocations 1..NumSubarrays. The
// allocations are independent, so they compile across a bounded worker
// pool; tables land at their allocation index and errors surface in
// allocation order, so the result is identical to a sequential build.
func CompileProgram(net *dnn.Network, cfg arch.Config, fissionable bool) (*Program, error) {
	n := cfg.NumSubarrays()
	p := &Program{Net: net, Cfg: cfg, tables: make([]*Table, n)}
	errs := make([]error, n)
	par.ForEach(n, func(i int) {
		t, err := Compile(net, cfg, i+1, fissionable)
		if err != nil {
			errs[i] = fmt.Errorf("compiler: %s s=%d: %w", net.Name, i+1, err)
			return
		}
		p.tables[i] = t
	})
	if err := par.FirstError(errs); err != nil {
		return nil, err
	}
	return p, nil
}

// Table returns the configuration table for an allocation of s subarrays,
// clamped to the valid range.
func (p *Program) Table(s int) *Table {
	if s < 1 {
		s = 1
	}
	if s > len(p.tables) {
		s = len(p.tables)
	}
	return p.tables[s-1]
}

// MaxAlloc returns the largest allocation the program was compiled for.
func (p *Program) MaxAlloc() int { return len(p.tables) }

// RemainingByAlloc writes, for every allocation a in 1..MaxAlloc, the
// cycles left from the given progress point into out[a-1] and returns
// out (extended if too short). Each entry is bit-identical to
// Table(a).RemainingCycles at the same progress — the elastic planner
// uses this to price every candidate subarray count in one pass
// instead of 16 Table lookups. Progress is (layer, fraction of that
// layer's work done); the fraction converts to whole tiles per table,
// exactly as the simulator tracks it.
func (p *Program) RemainingByAlloc(layer int, frac float64, out []int64) []int64 {
	if cap(out) < len(p.tables) {
		out = make([]int64, len(p.tables))
	}
	out = out[:len(p.tables)]
	for i, tab := range p.tables {
		var tilesDone int64
		if layer >= 0 && layer < len(tab.Layers) {
			tilesDone = int64(frac * float64(tab.Layers[layer].Tiles))
		}
		out[i] = tab.RemainingCycles(layer, tilesDone)
	}
	return out
}

// Binary lowers a configuration table to the macro-instruction stream the
// per-subarray sequencers execute. Per layer: CONFIG, then per tile
// LDW/LDA/MATMUL/STORE (vector layers emit VECTOR), with a SYNC at each
// layer end and a final HALT. Tile loops longer than emitLimit are
// emitted as a single hardware-looped MATMUL with the repeat count in B,
// matching how real sequencers avoid unrolling.
func (t *Table) Binary(net *dnn.Network, emitLimit int) (*isa.Binary, error) {
	if net.Name != t.Net {
		return nil, fmt.Errorf("compiler: table for %q, network %q", t.Net, net.Name)
	}
	if emitLimit < 1 {
		emitLimit = 1
	}
	b := &isa.Binary{Net: t.Net, Subarrays: t.Subarrays}
	for _, lp := range t.Layers {
		l := &net.Layers[lp.LayerIdx]
		layer := uint16(lp.LayerIdx)
		b.Instrs = append(b.Instrs, isa.Instruction{
			Op: isa.OpConfig, Layer: layer,
			A: uint32(lp.Shape.Clusters), B: uint32(lp.Shape.H), C: uint32(lp.Shape.W),
		})
		if l.Kind.IsGEMM() {
			m, _, _ := l.GEMM()
			tiles := lp.Tiles
			if tiles <= int64(emitLimit) {
				for ti := int64(0); ti < tiles; ti++ {
					b.Instrs = append(b.Instrs,
						isa.Instruction{Op: isa.OpLoadWeights, Layer: layer, A: uint32(ti)},
						isa.Instruction{Op: isa.OpLoadActs, Layer: layer, A: uint32(ti), B: uint32(m)},
						isa.Instruction{Op: isa.OpMatMul, Layer: layer, A: uint32(m), B: 1},
						isa.Instruction{Op: isa.OpStore, Layer: layer, A: uint32(ti)},
					)
				}
			} else {
				b.Instrs = append(b.Instrs,
					isa.Instruction{Op: isa.OpLoadWeights, Layer: layer},
					isa.Instruction{Op: isa.OpLoadActs, Layer: layer, B: uint32(m)},
					isa.Instruction{Op: isa.OpMatMul, Layer: layer, A: uint32(m), B: uint32(tiles)},
					isa.Instruction{Op: isa.OpStore, Layer: layer},
				)
			}
		} else {
			ops := l.VectorOps()
			b.Instrs = append(b.Instrs, isa.Instruction{
				Op: isa.OpVector, Layer: layer,
				A: uint32(ops & 0xFFFFFFFF), B: uint32(ops >> 32),
			})
		}
		b.Instrs = append(b.Instrs, isa.Instruction{Op: isa.OpSync, Layer: layer})
	}
	last := uint16(0)
	if n := len(t.Layers); n > 0 {
		last = uint16(t.Layers[n-1].LayerIdx)
	}
	b.Instrs = append(b.Instrs, isa.Instruction{Op: isa.OpHalt, Layer: last})
	if err := b.Validate(); err != nil {
		return nil, fmt.Errorf("compiler: generated invalid binary: %w", err)
	}
	return b, nil
}

// Cache memoizes compiled programs — INFaaS compiles each model once and
// serves unbounded requests from the precompiled artifact (§IV-C).
// Concurrent misses for the same key are deduplicated singleflight-style:
// the first caller compiles while the rest block on its result, so a
// program compiles exactly once no matter how many goroutines race.
type Cache struct {
	mu     sync.Mutex
	prog   map[string]*Program
	flight map[string]*flightCall
	// compile is CompileProgram, overridable by tests to observe how many
	// compilations actually run.
	compile func(*dnn.Network, arch.Config, bool) (*Program, error)
}

// flightCall tracks one in-progress compilation; done closes when p/err
// are set.
type flightCall struct {
	done chan struct{}
	p    *Program
	err  error
}

// NewCache returns an empty program cache.
func NewCache() *Cache {
	return &Cache{
		prog:    make(map[string]*Program),
		flight:  make(map[string]*flightCall),
		compile: CompileProgram,
	}
}

func cacheKey(name string, cfg arch.Config, fissionable bool) string {
	return fmt.Sprintf("%s|%dx%d|%dx%d|%v", name, cfg.ArrayRows, cfg.ArrayCols, cfg.SubRows, cfg.SubCols, fissionable)
}

// Program returns (compiling on first use) the program for a network.
// Failed compilations are not cached: once the in-flight call's waiters
// have drained, a later call retries.
func (c *Cache) Program(net *dnn.Network, cfg arch.Config, fissionable bool) (*Program, error) {
	key := cacheKey(net.Name, cfg, fissionable)
	c.mu.Lock()
	if p, ok := c.prog[key]; ok {
		c.mu.Unlock()
		return p, nil
	}
	if f, ok := c.flight[key]; ok {
		c.mu.Unlock()
		<-f.done
		return f.p, f.err
	}
	f := &flightCall{done: make(chan struct{})}
	c.flight[key] = f
	c.mu.Unlock()

	f.p, f.err = c.compile(net, cfg, fissionable)

	c.mu.Lock()
	if f.err == nil {
		c.prog[key] = f.p
	}
	delete(c.flight, key)
	c.mu.Unlock()
	close(f.done)
	return f.p, f.err
}

// DefaultCache is the process-wide program cache used by the experiment
// harnesses.
var DefaultCache = NewCache()
