package compiler

import (
	"errors"
	"reflect"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"planaria/internal/arch"
	"planaria/internal/dnn"
)

func toyNet(t *testing.T) *dnn.Network {
	t.Helper()
	b := dnn.NewBuilder("toy", "classification", 16, 16, 3)
	b.Conv("c1", 8, 3, 1)
	b.DWConv("dw", 3, 1)
	b.Conv("pw", 16, 1, 1)
	b.Pool("p", 2, 2)
	b.GlobalPool("gp")
	b.FC("fc", 10)
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestCompileBasics(t *testing.T) {
	cfg := arch.Planaria()
	tab, err := Compile(toyNet(t), cfg, 16, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Layers) != 6 {
		t.Fatalf("layer plans = %d, want 6", len(tab.Layers))
	}
	if tab.TotalCycles <= 0 || tab.TotalTiles <= 0 {
		t.Fatalf("degenerate table %+v", tab)
	}
	if len(tab.CumCycles) != 7 || tab.CumCycles[6] != tab.TotalCycles {
		t.Fatalf("prefix sums wrong: %v vs total %d", tab.CumCycles, tab.TotalCycles)
	}
}

func TestCompileRejectsBadInput(t *testing.T) {
	cfg := arch.Planaria()
	if _, err := Compile(&dnn.Network{Name: "x"}, cfg, 4, true); err == nil {
		t.Error("accepted invalid network")
	}
	if _, err := Compile(toyNet(t), cfg, 0, true); err == nil {
		t.Error("accepted allocation 0")
	}
	if _, err := Compile(toyNet(t), cfg, 17, true); err == nil {
		t.Error("accepted allocation 17")
	}
}

func TestProgramMonotoneLatency(t *testing.T) {
	// More subarrays must never increase compiled latency — the property
	// the scheduler's ESTIMATERESOURCES search relies on.
	cfg := arch.Planaria()
	for _, name := range []string{"MobileNet-v1", "GoogLeNet", "GNMT"} {
		p, err := CompileProgram(dnn.MustByName(name), cfg, true)
		if err != nil {
			t.Fatal(err)
		}
		prev := int64(1 << 62)
		for s := 1; s <= 16; s++ {
			c := p.Table(s).TotalCycles
			if c > prev {
				t.Errorf("%s: cycles increased %d→%d at s=%d", name, prev, c, s)
			}
			prev = c
		}
	}
}

func TestRemainingCycles(t *testing.T) {
	cfg := arch.Planaria()
	tab, err := Compile(toyNet(t), cfg, 8, true)
	if err != nil {
		t.Fatal(err)
	}
	if got := tab.RemainingCycles(0, 0); got != tab.TotalCycles {
		t.Errorf("fresh task remaining = %d, want %d", got, tab.TotalCycles)
	}
	if got := tab.RemainingCycles(len(tab.Layers), 0); got != 0 {
		t.Errorf("finished task remaining = %d, want 0", got)
	}
	// Mid-layer progress interpolates.
	l0 := tab.Layers[0]
	if l0.Tiles > 1 {
		half := tab.RemainingCycles(0, l0.Tiles/2)
		if half >= tab.TotalCycles || half <= tab.RemainingCycles(1, 0)-1 {
			t.Errorf("mid-layer remaining %d not between bounds (%d, %d)",
				half, tab.RemainingCycles(1, 0), tab.TotalCycles)
		}
	}
	// Tiles beyond the layer clamp.
	if got := tab.RemainingCycles(0, l0.Tiles*10); got < 0 {
		t.Errorf("clamped remaining = %d", got)
	}
	// Monotone in progress.
	prev := tab.TotalCycles + 1
	for layer := 0; layer <= len(tab.Layers); layer++ {
		got := tab.RemainingCycles(layer, 0)
		if got >= prev {
			t.Errorf("remaining not decreasing at layer %d: %d >= %d", layer, got, prev)
		}
		prev = got
	}
}

func TestBinaryGeneration(t *testing.T) {
	cfg := arch.Planaria()
	net := toyNet(t)
	tab, err := Compile(net, cfg, 4, true)
	if err != nil {
		t.Fatal(err)
	}
	bin, err := tab.Binary(net, 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := bin.Validate(); err != nil {
		t.Fatal(err)
	}
	if bin.Subarrays != 4 || bin.Net != "toy" {
		t.Fatalf("binary header %q/%d", bin.Net, bin.Subarrays)
	}
	// Hardware-looped emission keeps big nets within sane binary sizes.
	big, err := Compile(dnn.MustByName("ResNet-50"), cfg, 16, true)
	if err != nil {
		t.Fatal(err)
	}
	bbin, err := big.Binary(dnn.MustByName("ResNet-50"), 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := bbin.Validate(); err != nil {
		t.Fatal(err)
	}
	if bbin.Bytes() > 1<<20 {
		t.Errorf("ResNet-50 binary = %d bytes, want < 1 MB with looped emission", bbin.Bytes())
	}
}

func TestBinaryNetMismatch(t *testing.T) {
	cfg := arch.Planaria()
	tab, err := Compile(toyNet(t), cfg, 4, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tab.Binary(dnn.MustByName("GNMT"), 8); err == nil {
		t.Fatal("expected network mismatch error")
	}
}

func TestDepthwisePlansAreClustered(t *testing.T) {
	// Table II's observation: depthwise layers pick the finest fission.
	cfg := arch.Planaria()
	tab, err := Compile(dnn.MustByName("MobileNet-v1"), cfg, 16, true)
	if err != nil {
		t.Fatal(err)
	}
	net := dnn.MustByName("MobileNet-v1")
	for _, lp := range tab.Layers {
		if net.Layers[lp.LayerIdx].Kind == dnn.DWConv && lp.Shape.Clusters < 8 {
			t.Errorf("depthwise layer %s compiled to %v, expected many clusters",
				net.Layers[lp.LayerIdx].Name, lp.Shape)
		}
	}
}

func TestMonolithicCompilationUsesOneShape(t *testing.T) {
	cfg := arch.Monolithic()
	net := dnn.MustByName("GoogLeNet")
	tab, err := Compile(net, cfg, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	mono := arch.MonolithicShape(cfg)
	for _, lp := range tab.Layers {
		if net.Layers[lp.LayerIdx].Kind.IsGEMM() && lp.Shape != mono {
			t.Errorf("layer %d compiled to %v on a monolithic design", lp.LayerIdx, lp.Shape)
		}
	}
}

func TestCacheReturnsSameProgram(t *testing.T) {
	c := NewCache()
	cfg := arch.Planaria()
	net := dnn.MustByName("Tiny YOLO")
	p1, err := c.Program(net, cfg, true)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := c.Program(net, cfg, true)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Fatal("cache returned distinct programs")
	}
	// Different fissionability is a different artifact.
	p3, err := c.Program(net, cfg, false)
	if err != nil {
		t.Fatal(err)
	}
	if p3 == p1 {
		t.Fatal("cache conflated fissionable and monolithic programs")
	}
}

func TestProgramTableClamping(t *testing.T) {
	cfg := arch.Planaria()
	p, err := CompileProgram(toyNetHelper(t), cfg, true)
	if err != nil {
		t.Fatal(err)
	}
	if p.Table(0) != p.Table(1) {
		t.Error("Table(0) should clamp to 1")
	}
	if p.Table(99) != p.Table(16) {
		t.Error("Table(99) should clamp to 16")
	}
	if p.MaxAlloc() != 16 {
		t.Errorf("MaxAlloc = %d", p.MaxAlloc())
	}
}

func toyNetHelper(t *testing.T) *dnn.Network { return toyNet(t) }

func TestCacheConcurrentAccess(t *testing.T) {
	// INFaaS deployments compile models from concurrent request paths;
	// the cache must be safe and return one program per artifact.
	c := NewCache()
	cfg := arch.Planaria()
	net := dnn.MustByName("GoogLeNet")
	const goroutines = 8
	progs := make([]*Program, goroutines)
	done := make(chan int, goroutines)
	for i := 0; i < goroutines; i++ {
		go func(i int) {
			p, err := c.Program(net, cfg, true)
			if err == nil {
				progs[i] = p
			}
			done <- i
		}(i)
	}
	for i := 0; i < goroutines; i++ {
		<-done
	}
	for i := 1; i < goroutines; i++ {
		if progs[i] == nil {
			t.Fatalf("goroutine %d got no program", i)
		}
		if progs[i].MaxAlloc() != 16 {
			t.Fatalf("goroutine %d got incomplete program", i)
		}
		// In-flight deduplication: every racing caller must share the one
		// artifact compiled by the first.
		if progs[i] != progs[0] {
			t.Fatalf("goroutine %d got a distinct program — duplicate compile", i)
		}
	}
}

func TestCacheSingleflightCompilesOnce(t *testing.T) {
	// Hold every caller at a start line, release them at once, and count
	// how many compilations actually execute: exactly one.
	c := NewCache()
	cfg := arch.Planaria()
	net := dnn.MustByName("Tiny YOLO")

	var compiles atomic.Int32
	inner := c.compile
	c.compile = func(n *dnn.Network, cf arch.Config, f bool) (*Program, error) {
		compiles.Add(1)
		time.Sleep(10 * time.Millisecond) // widen the miss window
		return inner(n, cf, f)
	}

	const goroutines = 16
	start := make(chan struct{})
	progs := make([]*Program, goroutines)
	errs := make([]error, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			progs[i], errs[i] = c.Program(net, cfg, true)
		}(i)
	}
	close(start)
	wg.Wait()
	for i := 0; i < goroutines; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if progs[i] != progs[0] {
			t.Fatalf("goroutine %d got a distinct program", i)
		}
	}
	if got := compiles.Load(); got != 1 {
		t.Fatalf("CompileProgram ran %d times for one key, want 1", got)
	}
}

func TestCacheSingleflightRetriesAfterError(t *testing.T) {
	// A failed compilation must not be cached: waiters share the error,
	// and a later call retries and succeeds.
	c := NewCache()
	cfg := arch.Planaria()
	net := dnn.MustByName("Tiny YOLO")

	inner := c.compile
	var calls atomic.Int32
	wantErr := errors.New("transient failure")
	c.compile = func(n *dnn.Network, cf arch.Config, f bool) (*Program, error) {
		if calls.Add(1) == 1 {
			return nil, wantErr
		}
		return inner(n, cf, f)
	}
	if _, err := c.Program(net, cfg, true); !errors.Is(err, wantErr) {
		t.Fatalf("first call error = %v, want %v", err, wantErr)
	}
	p, err := c.Program(net, cfg, true)
	if err != nil {
		t.Fatalf("retry failed: %v", err)
	}
	if p == nil || p.MaxAlloc() != 16 {
		t.Fatal("retry returned incomplete program")
	}
	if calls.Load() != 2 {
		t.Fatalf("compile ran %d times, want 2 (fail once, then retry)", calls.Load())
	}
}

func TestCompileProgramParallelMatchesSequential(t *testing.T) {
	// Force real worker goroutines even on narrow machines, then check the
	// parallel per-allocation sweep lands the same tables a sequential
	// compile produces — the fan-out must be invisible in the artifact.
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	cfg := arch.Planaria()
	net := dnn.MustByName("Tiny YOLO")
	p, err := CompileProgram(net, cfg, true)
	if err != nil {
		t.Fatal(err)
	}
	for s := 1; s <= p.MaxAlloc(); s++ {
		want, err := Compile(net, cfg, s, true)
		if err != nil {
			t.Fatal(err)
		}
		got := p.Table(s)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("allocation %d: parallel table differs from sequential compile", s)
		}
	}
}
