package sim

import (
	"math"
	"testing"

	"planaria/internal/arch"
	"planaria/internal/compiler"
	"planaria/internal/dnn"
	"planaria/internal/energy"
	"planaria/internal/workload"
)

// fullPolicy gives every task an equal share (test stand-in).
type fullPolicy struct{}

func (fullPolicy) Name() string     { return "test-equal" }
func (fullPolicy) Quantum() float64 { return 0 }
func (fullPolicy) Allocate(now float64, tasks []*Task, total int) map[int]int {
	m := make(map[int]int, len(tasks))
	if len(tasks) == 0 {
		return m
	}
	share := total / len(tasks)
	if share < 1 {
		share = 1
	}
	left := total
	for _, t := range tasks {
		a := share
		if a > left {
			a = left
		}
		m[t.ID] = a
		left -= a
	}
	return m
}

func toyNet(t *testing.T, name string) *dnn.Network {
	t.Helper()
	b := dnn.NewBuilder(name, "classification", 32, 32, 8)
	b.Conv("c1", 32, 3, 1)
	b.Conv("c2", 32, 3, 1)
	b.GlobalPool("gp")
	b.FC("fc", 10)
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func testNode(t *testing.T, pol Policy) (*Node, *compiler.Program) {
	t.Helper()
	cfg := arch.Planaria()
	net := toyNet(t, "sim-toy")
	prog, err := compiler.CompileProgram(net, cfg, true)
	if err != nil {
		t.Fatal(err)
	}
	return &Node{
		Cfg:      cfg,
		Policy:   pol,
		Programs: map[string]*compiler.Program{"sim-toy": prog},
		Params:   energy.Default(),
	}, prog
}

func req(id int, arrival, qos float64, prio int) workload.Request {
	return workload.Request{
		ID: id, Model: "sim-toy", Domain: "classification",
		Arrival: arrival, Priority: prio, QoS: qos, Deadline: arrival + qos,
	}
}

func TestSingleRequestLatencyEqualsIsolated(t *testing.T) {
	node, prog := testNode(t, fullPolicy{})
	iso := node.Cfg.Seconds(prog.Table(16).TotalCycles)
	out, err := node.Run([]workload.Request{req(0, 0, 1, 5)})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(out.Latency[0]-iso) > iso*0.01+1e-9 {
		t.Fatalf("lone-task latency %.3g, isolated %.3g", out.Latency[0], iso)
	}
	if out.Preemptions != 0 {
		t.Errorf("lone task preempted %d times", out.Preemptions)
	}
	if out.EnergyJ <= 0 {
		t.Errorf("energy = %g", out.EnergyJ)
	}
}

func TestCoLocatedTasksBothFinish(t *testing.T) {
	node, prog := testNode(t, fullPolicy{})
	iso := node.Cfg.Seconds(prog.Table(16).TotalCycles)
	reqs := []workload.Request{req(0, 0, 1, 5), req(1, 0, 1, 5)}
	out, err := node.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range reqs {
		if out.Finishes[i] < 0 {
			t.Fatalf("request %d never finished", i)
		}
		if out.Latency[i] < iso {
			t.Errorf("co-located latency %.3g below isolated %.3g", out.Latency[i], iso)
		}
	}
	if out.Fairness <= 0 || out.Fairness > 1+1e-9 {
		t.Errorf("fairness = %g outside (0,1]", out.Fairness)
	}
}

func TestStaggeredArrivals(t *testing.T) {
	node, _ := testNode(t, fullPolicy{})
	reqs := []workload.Request{
		req(0, 0.000, 1, 5),
		req(1, 0.001, 1, 5),
		req(2, 0.050, 1, 5),
	}
	out, err := node.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range reqs {
		if out.Finishes[i] < reqs[i].Arrival {
			t.Fatalf("request %d finished before arriving", i)
		}
	}
	if !out.MeetsSLA {
		t.Error("easy workload should meet SLA")
	}
}

func TestDeterminism(t *testing.T) {
	reqs := []workload.Request{req(0, 0, 1, 5), req(1, 0.0005, 1, 7), req(2, 0.001, 1, 2)}
	node1, _ := testNode(t, fullPolicy{})
	node2, _ := testNode(t, fullPolicy{})
	o1, err := node1.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}
	o2, err := node2.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range o1.Finishes {
		if o1.Finishes[i] != o2.Finishes[i] {
			t.Fatalf("nondeterministic finish for request %d: %g vs %g", i, o1.Finishes[i], o2.Finishes[i])
		}
	}
	if o1.EnergyJ != o2.EnergyJ {
		t.Fatalf("nondeterministic energy: %g vs %g", o1.EnergyJ, o2.EnergyJ)
	}
}

func TestUnknownModelRejected(t *testing.T) {
	node, _ := testNode(t, fullPolicy{})
	node.Strict = true
	bad := workload.Request{ID: 0, Model: "no-such-model", Arrival: 0, QoS: 1, Deadline: 1, Priority: 1}
	if _, err := node.Run([]workload.Request{bad}); err == nil {
		t.Fatal("expected unknown-model error in strict mode")
	}
}

// TestUnknownModelRejectionOutcome checks the default (non-strict)
// behavior: a request for an unknown model becomes a per-request
// rejection rather than failing the whole run, and the other requests
// finish untouched.
func TestUnknownModelRejectionOutcome(t *testing.T) {
	node, _ := testNode(t, fullPolicy{})
	node.Trace = &Trace{}
	reqs := []workload.Request{
		req(0, 0, 1, 1),
		{ID: 1, Model: "no-such-model", Arrival: 10e-6, QoS: 1, Deadline: 1, Priority: 1},
		req(2, 20e-6, 1, 1),
	}
	out, err := node.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if out.Rejected != 1 {
		t.Fatalf("Rejected = %d, want 1", out.Rejected)
	}
	if out.Finishes[1] != -1 {
		t.Fatalf("rejected request got a finish time %g", out.Finishes[1])
	}
	for _, i := range []int{0, 2} {
		if out.Finishes[i] < 0 {
			t.Fatalf("request %d did not finish (%g)", i, out.Finishes[i])
		}
	}
	var sawReject bool
	for _, e := range node.Trace.Events {
		if e.Kind == EvReject && e.Task == 1 {
			sawReject = true
		}
	}
	if !sawReject {
		t.Fatal("no EvReject for the unknown-model request")
	}
	if err := node.Trace.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyRunRejected(t *testing.T) {
	node, _ := testNode(t, fullPolicy{})
	if _, err := node.Run(nil); err == nil {
		t.Fatal("expected empty-request error")
	}
}

func TestValidateAllocationContract(t *testing.T) {
	tasks := []*Task{{ID: 1}, {ID: 2}}
	if err := validateAllocation(map[int]int{1: 8, 2: 8}, tasks, 16); err != nil {
		t.Errorf("valid allocation rejected: %v", err)
	}
	if err := validateAllocation(map[int]int{1: 9, 2: 8}, tasks, 16); err == nil {
		t.Error("over-allocation accepted")
	}
	if err := validateAllocation(map[int]int{3: 1}, tasks, 16); err == nil {
		t.Error("unknown-task allocation accepted")
	}
	if err := validateAllocation(map[int]int{1: -1}, tasks, 16); err == nil {
		t.Error("negative allocation accepted")
	}
}

func TestReallocChargesPenalty(t *testing.T) {
	node, prog := testNode(t, fullPolicy{})
	_ = node
	task := &Task{ID: 0, Prog: prog, Alloc: 16, Frac: 0.3, Finish: -1}
	task.applyRealloc(8, &node.Cfg, 1)
	if task.PenaltyCycles <= configLoadCycles {
		t.Errorf("penalty = %d, want > %d (tile drain + checkpoint included)", task.PenaltyCycles, configLoadCycles)
	}
	if task.Preemptions != 1 {
		t.Errorf("preemptions = %d", task.Preemptions)
	}
	// No-op realloc has no cost.
	before := task.PenaltyCycles
	task.applyRealloc(8, &node.Cfg, 1)
	if task.PenaltyCycles != before {
		t.Error("no-op realloc charged a penalty")
	}
	// Stall (alloc 0) also checkpoints.
	task.applyRealloc(0, &node.Cfg, 1)
	if task.Alloc != 0 {
		t.Errorf("alloc = %d after stall", task.Alloc)
	}
}

func TestTaskAdvanceAcrossLayers(t *testing.T) {
	_, prog := testNode(t, fullPolicy{})
	task := &Task{ID: 0, Prog: prog, Alloc: 16, Finish: -1}
	total := prog.Table(16).TotalCycles
	consumed := task.advance(total, energy.Default())
	if consumed != total {
		t.Fatalf("consumed %d of %d", consumed, total)
	}
	if !task.Done() {
		t.Fatal("task not done after consuming all cycles")
	}
	if task.EnergyJ <= 0 {
		t.Fatal("no energy accumulated")
	}
	// Further advancing consumes nothing.
	if task.advance(100, energy.Default()) != 0 {
		t.Fatal("done task consumed cycles")
	}
}

func TestRemainingCyclesMonotoneInProgress(t *testing.T) {
	_, prog := testNode(t, fullPolicy{})
	task := &Task{ID: 0, Prog: prog, Alloc: 4, Finish: -1}
	prev := task.RemainingCycles(4)
	step := prev / 10
	for i := 0; i < 9; i++ {
		task.advance(step, energy.Default())
		cur := task.RemainingCycles(4)
		if cur > prev {
			t.Fatalf("remaining increased %d → %d at step %d", prev, cur, i)
		}
		prev = cur
	}
}

func TestCheckpointScalesWithBandwidthShare(t *testing.T) {
	// A task preempted from a small allocation has a smaller bandwidth
	// share, so checkpointing the same tile takes longer.
	node, prog := testNode(t, fullPolicy{})
	wide := &Task{ID: 0, Prog: prog, Alloc: 16, Finish: -1}
	narrow := &Task{ID: 1, Prog: prog, Alloc: 1, Finish: -1}
	cw := wide.checkpointCycles(&node.Cfg, 16)
	cn := narrow.checkpointCycles(&node.Cfg, 1)
	if cn <= cw {
		t.Fatalf("narrow-allocation checkpoint %d not above wide %d", cn, cw)
	}
	// Done tasks have nothing to checkpoint.
	done := &Task{ID: 2, Prog: prog, Alloc: 4, Layer: len(prog.Table(1).Layers)}
	if done.checkpointCycles(&node.Cfg, 4) != 0 {
		t.Fatal("done task checkpointed")
	}
}
