package sim

import (
	"fmt"
	"sort"

	"planaria/internal/arch"
	"planaria/internal/compiler"
	"planaria/internal/fault"
	"planaria/internal/simtime"
	"planaria/internal/workload"
)

// FaultMode selects how a node degrades when its fault injector masks
// part of the chip.
type FaultMode int

const (
	// FaultFission is Planaria's graceful degradation: dead subarrays are
	// masked out of the fission configuration space, the scheduler is
	// invoked with the surviving subarray count, and only tasks whose
	// subarrays died are killed (the deterministic contiguous-placement
	// model below decides ownership).
	FaultFission FaultMode = iota
	// FaultDerate is the monolithic baseline's only option: the array
	// cannot be re-fissioned around a dead unit, so throughput derates by
	// the alive fraction and every fault landing kills whichever task is
	// running (the whole array must drain and reconfigure around the
	// fault).
	FaultDerate
)

// String names the fault mode.
func (m FaultMode) String() string {
	switch m {
	case FaultFission:
		return "fission"
	case FaultDerate:
		return "derate"
	default:
		return fmt.Sprintf("faultmode(%d)", int(m))
	}
}

// ShedPolicy selects the admission controller's load-shedding behavior.
type ShedPolicy int

const (
	// ShedNone admits every request (the pre-fault default).
	ShedNone ShedPolicy = iota
	// ShedDoomed sheds a request only when even an isolated run at the
	// chip's current degraded capacity would miss its deadline — the
	// request is doomed, so queueing it can only hurt others.
	ShedDoomed
	// ShedPriority additionally weighs queue load against request
	// priority: the isolated estimate is inflated by the number of
	// in-flight tasks and discounted by the request's priority, so
	// low-priority requests shed first under pressure.
	ShedPriority
)

// String names the shed policy.
func (p ShedPolicy) String() string {
	switch p {
	case ShedNone:
		return "none"
	case ShedDoomed:
		return "doomed"
	case ShedPriority:
		return "priority"
	default:
		return fmt.Sprintf("shed(%d)", int(p))
	}
}

// ParseShedPolicy maps the CLI vocabulary to a ShedPolicy.
func ParseShedPolicy(name string) (ShedPolicy, error) {
	switch name {
	case "none":
		return ShedNone, nil
	case "doomed":
		return ShedDoomed, nil
	case "priority":
		return ShedPriority, nil
	default:
		return 0, fmt.Errorf("sim: unknown shed policy %q (want none, doomed, or priority)", name)
	}
}

// HealthAware policies receive the chip's health mask whenever fault
// transitions change it, so their estimates only consider alive
// configurations.
type HealthAware interface {
	SetHealth(mask arch.HealthMask)
}

// Default retry backoff: first re-enqueue 200 µs after the kill,
// doubling per attempt, capped at 5 ms. All simulated time.
const (
	defaultRetryBase = 200e-6
	defaultRetryCap  = 5e-3
)

func (n *Node) retryBase() float64 {
	if n.RetryBase > 0 {
		return n.RetryBase
	}
	return defaultRetryBase
}

func (n *Node) retryCap() float64 {
	if n.RetryCap > 0 {
		return n.RetryCap
	}
	return defaultRetryCap
}

// backoff returns the capped exponential delay before a task's attempt-th
// re-enqueue (attempt ≥ 1). Doubling a float is exact, so this is
// deterministic without math.Pow.
func (n *Node) backoff(attempt int) float64 {
	b, lim := n.retryBase(), n.retryCap()
	for i := 1; i < attempt && b < lim; i++ {
		b *= 2
	}
	if b > lim {
		b = lim
	}
	return b
}

// capacity returns the subarray count the scheduler may allocate right
// now: the alive count under fission masking, the static total otherwise.
func (n *Node) capacity(total int) int {
	if n.Faults == nil || n.FaultMode != FaultFission {
		return total
	}
	return n.Faults.Health().Alive()
}

// speed returns the throughput multiplier under derate mode (alive
// fraction of the physical chip), exactly 1 otherwise.
func (n *Node) speed() float64 {
	if n.Faults == nil || n.FaultMode != FaultDerate {
		return 1
	}
	return n.Faults.Health().Fraction()
}

// shouldShed is the admission controller: it estimates the request's
// completion were it admitted now and sheds when the estimate misses the
// deadline. ShedDoomed uses the isolated run time at the chip's current
// degraded capacity (only hopeless requests shed); ShedPriority inflates
// the estimate by the in-flight task count and discounts it by the
// request's priority, shedding low-priority work first under load. With
// zero capacity the estimate is unbounded and any enabled policy sheds.
func (n *Node) shouldShed(now float64, prog *compiler.Program, r *workload.Request, total, active int) bool {
	switch n.Shed {
	case ShedDoomed, ShedPriority:
	default:
		return false
	}
	capNow := n.capacity(total)
	sp := n.speed()
	if capNow == 0 || sp == 0 {
		return true
	}
	iso := n.Cfg.Seconds(prog.Table(capNow).TotalCycles) / sp
	if r.Work > 0 {
		iso *= r.Work // fused batches carry proportionally more work
	}
	est := now + iso
	if n.Shed == ShedPriority {
		est = now + iso*float64(1+active)/float64(r.Priority)
	}
	return simtime.After(est, r.Deadline)
}

// retryEntry is one killed task waiting out its backoff. Entries queue in
// a retryHeap (eventq.go) keyed by (time, task ID) so re-admission order
// is deterministic.
type retryEntry struct {
	t  *Task
	at float64
}

// faultVictims returns the running tasks that lose their subarrays when
// the chip's health drops from prevUsable to h. Under derate the whole
// monolithic array reconfigures, so any landing kills every running
// task. Under fission, ownership follows a deterministic contiguous
// placement: running tasks in ID order occupy consecutive
// previously-alive subarrays, and a task dies iff one of its subarrays
// did. Victims are returned in ID order.
//
//perf:cold fault-transition path: runs per fault event, never on the no-fault steady state
func faultVictims(tasks []*Task, prevUsable []bool, h *fault.Health, mode FaultMode, anyDown bool) []*Task {
	if !anyDown {
		return nil
	}
	running := make([]*Task, 0, len(tasks))
	for _, t := range tasks {
		if t.Alloc > 0 && !t.Done() {
			running = append(running, t)
		}
	}
	sort.Slice(running, func(i, j int) bool { return running[i].ID < running[j].ID })
	if mode == FaultDerate {
		return running
	}
	aliveIdx := make([]int, 0, len(prevUsable))
	for i, u := range prevUsable {
		if u {
			aliveIdx = append(aliveIdx, i)
		}
	}
	var victims []*Task
	offset := 0
	for _, t := range running {
		end := offset + t.Alloc
		if end > len(aliveIdx) {
			end = len(aliveIdx)
		}
		for _, u := range aliveIdx[offset:end] {
			if !h.UsableSub(u) {
				victims = append(victims, t)
				break
			}
		}
		offset = end
	}
	return victims
}
