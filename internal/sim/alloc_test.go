package sim

import (
	"math/rand"
	"sort"
	"testing"
)

// The event-engine work (DESIGN.md §12) guarantees that steady-state
// tracing stays off the allocator: recording into a Reserved buffer and
// the disabled-tracing no-op path must both be alloc-free. These tests
// pin that contract so a future refactor that reintroduces a per-event
// allocation fails loudly instead of silently costing 1M allocs per
// serving run.

func TestTraceRecordZeroAllocs(t *testing.T) {
	tr := &Trace{}
	tr.Reserve(2048)
	i := 0
	allocs := testing.AllocsPerRun(1000, func() {
		tr.record(Event{Time: float64(i), Kind: EvAlloc, Task: i, Alloc: 4})
		i++
	})
	if allocs != 0 {
		t.Fatalf("Trace.record into reserved capacity: %.1f allocs/op, want 0", allocs)
	}
}

func TestNilTraceZeroAllocs(t *testing.T) {
	var tr *Trace
	allocs := testing.AllocsPerRun(1000, func() {
		tr.record(Event{Kind: EvFinish, Task: 1})
		tr.Reserve(64)
	})
	if allocs != 0 {
		t.Fatalf("nil-Trace no-op path: %.1f allocs/op, want 0", allocs)
	}
}

func TestTraceReserveAmortizes(t *testing.T) {
	tr := &Trace{}
	tr.Reserve(100)
	if cap(tr.Events) < 100 {
		t.Fatalf("Reserve(100) left cap %d", cap(tr.Events))
	}
	// A second Reserve within the existing headroom must not reallocate.
	before := cap(tr.Events)
	tr.Reserve(50)
	if cap(tr.Events) != before {
		t.Fatalf("Reserve within capacity reallocated: cap %d -> %d", before, cap(tr.Events))
	}
}

// TestRefissionOffRunAllocParity pins the elastic-off fast path: a
// policy that implements Refissioner but reports inactive must drive
// Run with zero extra allocations over the identical plain policy — the
// re-fission machinery costs nothing unless it is switched on.
func TestRefissionOffRunAllocParity(t *testing.T) {
	nodeP, prog := testNode(t, nil)
	iso := nodeP.Cfg.Seconds(prog.Table(16).TotalCycles)
	reqs := refissionReqs(iso)
	nodeP.Policy = &splitPolicy{at: iso * 0.5}
	nodeE, _ := testNode(t, nil)
	nodeE.Policy = &stubRefission{splitPolicy{at: iso * 0.5}, false}
	run := func(n *Node) {
		if _, err := n.Run(reqs); err != nil {
			t.Fatal(err)
		}
	}
	// Warm the scratch pool and program tables so both measurements see
	// steady state.
	run(nodeP)
	run(nodeE)
	aPlain := testing.AllocsPerRun(100, func() { run(nodeP) })
	aElastic := testing.AllocsPerRun(100, func() { run(nodeE) })
	if aElastic > aPlain {
		t.Fatalf("inactive refissioner run allocates %.1f/op, plain policy %.1f/op (want 0 extra)",
			aElastic, aPlain)
	}
}

// TestRetryHeapOrder checks the heap against the sorted-slice queue it
// replaced: pop order must equal a stable sort by (at, task ID), with
// task ID breaking timestamp ties (IDs are unique, so the order is
// total and the two structures are behavior-identical).
func TestRetryHeapOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tasks := make([]Task, 64)
	var want []retryEntry
	for i := range tasks {
		tasks[i].ID = i
		// Coarse timestamps force ID tie-breaks.
		want = append(want, retryEntry{t: &tasks[i], at: float64(rng.Intn(8))})
	}
	var h retryHeap
	for _, i := range rng.Perm(len(want)) {
		h.push(want[i])
	}
	sort.SliceStable(want, func(i, j int) bool { return retryBefore(want[i], want[j]) })
	for i, w := range want {
		if h.Len() != len(want)-i {
			t.Fatalf("Len() = %d before pop %d", h.Len(), i)
		}
		if p := h.peek(); p != w {
			t.Fatalf("peek %d = {%d %g}, want {%d %g}", i, p.t.ID, p.at, w.t.ID, w.at)
		}
		if g := h.pop(); g != w {
			t.Fatalf("pop %d = {%d %g}, want {%d %g}", i, g.t.ID, g.at, w.t.ID, w.at)
		}
	}
	if h.Len() != 0 {
		t.Fatalf("heap not drained: %d left", h.Len())
	}
}
