package sim

import (
	"math/big"
	"testing"

	"planaria/internal/fault"
	"planaria/internal/obs"
	"planaria/internal/workload"
)

// checkNodeAttrib asserts the node-level attribution invariants over one
// run: every record closed, span sums telescoping bit-exactly to
// end−start (big.Float over shared instants), completed records ending
// precisely at their Finishes entry, and the occupancy partition holding.
func checkNodeAttrib(t *testing.T, n *Node, reqs []workload.Request, out *Outcome) {
	t.Helper()
	led, occ := n.Attrib, n.Occ
	for i := range reqs {
		if !led.Closed(i) {
			t.Fatalf("request %d: attribution record still open", i)
		}
		spans := led.Spans(i, nil)
		if len(spans) == 0 {
			t.Fatalf("request %d: no spans", i)
		}
		sum := new(big.Float).SetPrec(200)
		for _, s := range spans {
			sum.Add(sum, new(big.Float).SetPrec(200).Sub(big.NewFloat(s.To), big.NewFloat(s.From)))
		}
		want := new(big.Float).SetPrec(200).Sub(
			big.NewFloat(spans[len(spans)-1].To), big.NewFloat(spans[0].From))
		if sum.Cmp(want) != 0 {
			t.Fatalf("request %d: Σ spans %s != end−start %s",
				i, sum.Text('g', 25), want.Text('g', 25))
		}
		if fin := out.Finishes[i]; fin >= 0 {
			if led.Cause(i) != obs.CauseDone {
				t.Fatalf("request %d finished but cause = %v", i, led.Cause(i))
			}
			if got := spans[len(spans)-1].To; got != fin {
				t.Fatalf("request %d: ledger end %x != finish %x", i, got, fin)
			}
		} else if led.Cause(i) == obs.CauseDone {
			t.Fatalf("request %d: cause done without a finish", i)
		}
	}
	if occ != nil {
		if got := occ.Busy + occ.Idle + occ.Faulted + occ.Reconfig; got != occ.Units*occ.Horizon {
			t.Fatalf("occupancy partition broke: %d != %d (%+v)", got, occ.Units*occ.Horizon, occ)
		}
	}
}

// TestNodeAttributionCompute covers the plain path: queue-wait then
// compute, closed done, with the occupancy horizon spanning the run.
func TestNodeAttributionCompute(t *testing.T) {
	node, _ := testNode(t, fullPolicy{})
	node.Attrib = obs.NewLedger(0)
	node.Occ = obs.NewOccupancy(0)
	reqs := []workload.Request{req(0, 0, 1, 5), req(1, 1e-5, 1, 7)}
	out, err := node.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}
	checkNodeAttrib(t, node, reqs, out)
	var dur [obs.NumPhases]float64
	node.Attrib.Durations(0, &dur)
	if dur[obs.PhaseCompute] <= 0 {
		t.Fatalf("no compute time attributed: %v", dur)
	}
	if node.Occ.Busy <= 0 || node.Occ.Horizon <= 0 {
		t.Fatalf("no busy cycles accounted: %+v", node.Occ)
	}
}

// TestNodeAttributionKillRetryAndShed covers the fault paths: a killed
// task passes through retry-backoff and closes done after its retry; a
// task with an exhausted retry budget closes shed-retries.
func TestNodeAttributionKillRetryAndShed(t *testing.T) {
	node, prog := testNode(t, fullPolicy{})
	iso := node.Cfg.Seconds(prog.Table(16).TotalCycles)
	in, err := fault.NewInjector(&fault.Schedule{Units: 16, Pods: 4,
		Events: []fault.Event{{Time: iso / 2, Kind: fault.KindSubarray, Unit: 0}}})
	if err != nil {
		t.Fatal(err)
	}
	node.Faults = in
	node.FaultMode = FaultFission
	node.Attrib = obs.NewLedger(0)
	node.Occ = obs.NewOccupancy(0)
	reqs := []workload.Request{req(0, 0, 1, 5)}
	out, err := node.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if out.Retries != 1 {
		t.Fatalf("retries = %d, want 1", out.Retries)
	}
	checkNodeAttrib(t, node, reqs, out)
	var dur [obs.NumPhases]float64
	node.Attrib.Durations(0, &dur)
	if dur[obs.PhaseRetryBackoff] <= 0 {
		t.Fatalf("killed-and-retried task has no retry-backoff time: %v", dur)
	}

	// Recurring transient strikes with a small retry budget and short
	// backoff: the retried task keeps landing back in the line of fire
	// until the budget exhausts into shed-retries.
	node2, _ := testNode(t, fullPolicy{})
	events := []fault.Event{}
	for i := 0; i < 5; i++ {
		events = append(events, fault.Event{
			Time: iso / 4 * float64(i+1), Kind: fault.KindSubarray, Unit: i, Duration: iso / 16,
		})
	}
	in2, err := fault.NewInjector(&fault.Schedule{Units: 16, Pods: 4, Events: events})
	if err != nil {
		t.Fatal(err)
	}
	node2.Faults = in2
	node2.FaultMode = FaultFission
	node2.MaxAttempts = 2
	node2.RetryBase = iso / 100
	node2.RetryCap = iso / 50
	node2.Attrib = obs.NewLedger(0)
	node2.Occ = obs.NewOccupancy(0)
	out2, err := node2.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}
	checkNodeAttrib(t, node2, reqs, out2)
	if node2.Attrib.Cause(0) != obs.CauseShedRetries {
		t.Fatalf("budget-exhausted cause = %v, want shed-retries", node2.Attrib.Cause(0))
	}
}

// TestNodeAttributionRejectAndDoomedShed covers the terminal admission
// paths: unknown models close rejected with a zero-width record, and
// ShedDoomed declines close shed-chip.
func TestNodeAttributionRejectAndDoomedShed(t *testing.T) {
	node, _ := testNode(t, fullPolicy{})
	node.Shed = ShedDoomed
	node.Attrib = obs.NewLedger(0)
	node.Occ = obs.NewOccupancy(0)
	reqs := []workload.Request{
		req(0, 0, 1, 5),
		{ID: 1, Model: "no-such-model", Domain: "classification",
			Arrival: 1e-5, Priority: 5, QoS: 1, Deadline: 1e-5 + 1},
		// Hopeless deadline: ShedDoomed declines at admission.
		req(2, 2e-5, 1e-12, 5),
	}
	out, err := node.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}
	checkNodeAttrib(t, node, reqs, out)
	if node.Attrib.Cause(1) != obs.CauseRejected {
		t.Fatalf("unknown-model cause = %v, want rejected", node.Attrib.Cause(1))
	}
	if node.Attrib.Cause(2) != obs.CauseShedChip {
		t.Fatalf("doomed-request cause = %v, want shed-chip", node.Attrib.Cause(2))
	}
	if out.Shed != 1 || out.Rejected != 1 {
		t.Fatalf("outcome shed/rejected = %d/%d, want 1/1", out.Shed, out.Rejected)
	}
}

// TestNodeAttributionDeterministic pins that enabling attribution leaves
// the simulated outcome bit-identical — the ledger observes, it never
// perturbs.
func TestNodeAttributionDeterministic(t *testing.T) {
	reqs := []workload.Request{req(0, 0, 1, 5), req(1, 1e-5, 0.5, 7), req(2, 3e-5, 1, 3)}
	run := func(attrib bool) *Outcome {
		node, _ := testNode(t, fullPolicy{})
		if attrib {
			node.Attrib = obs.NewLedger(0)
			node.Occ = obs.NewOccupancy(0)
		}
		out, err := node.Run(reqs)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := run(false), run(true)
	for i := range reqs {
		if a.Finishes[i] != b.Finishes[i] {
			t.Fatalf("request %d: finish changed with attribution on: %x vs %x",
				i, a.Finishes[i], b.Finishes[i])
		}
	}
	if a.EnergyJ != b.EnergyJ {
		t.Fatalf("energy changed with attribution on: %x vs %x", a.EnergyJ, b.EnergyJ)
	}
}
