package sim

import (
	"strings"
	"testing"

	"planaria/internal/workload"
)

func TestTraceRecordsTimeline(t *testing.T) {
	node, _ := testNode(t, fullPolicy{})
	tr := &Trace{}
	node.Trace = tr
	reqs := []workload.Request{
		req(0, 0, 1, 5),
		req(1, 0.0002, 1, 7),
	}
	if _, err := node.Run(reqs); err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := len(tr.TasksSeen()); got != 2 {
		t.Fatalf("trace saw %d tasks, want 2", got)
	}
	// Both tasks were (re)allocated at least once and finished once.
	arrivals, allocs, finishes := 0, 0, 0
	for _, e := range tr.Events {
		switch e.Kind {
		case EvArrival:
			arrivals++
		case EvAlloc:
			allocs++
		case EvFinish:
			finishes++
		}
	}
	if arrivals != 2 || finishes != 2 || allocs < 2 {
		t.Fatalf("arrivals=%d allocs=%d finishes=%d", arrivals, allocs, finishes)
	}
	if len(tr.AllocTimeline(0)) == 0 {
		t.Fatal("task 0 has no allocation timeline")
	}
	if s := tr.String(); !strings.Contains(s, "finish") {
		t.Fatal("trace rendering missing events")
	}
}

func TestTraceNilSafe(t *testing.T) {
	node, _ := testNode(t, fullPolicy{})
	node.Trace = nil
	if _, err := node.Run([]workload.Request{req(0, 0, 1, 5)}); err != nil {
		t.Fatal(err)
	}
}

func TestTraceValidateCatchesCorruption(t *testing.T) {
	cases := map[string]Trace{
		"backwards": {Events: []Event{
			{Time: 1, Kind: EvArrival, Task: 0},
			{Time: 0.5, Kind: EvFinish, Task: 0},
		}},
		"double arrival": {Events: []Event{
			{Time: 0, Kind: EvArrival, Task: 0},
			{Time: 1, Kind: EvArrival, Task: 0},
		}},
		"alloc before arrival": {Events: []Event{
			{Time: 0, Kind: EvAlloc, Task: 0, Alloc: 4},
		}},
		"double finish": {Events: []Event{
			{Time: 0, Kind: EvArrival, Task: 0},
			{Time: 1, Kind: EvFinish, Task: 0},
			{Time: 2, Kind: EvFinish, Task: 0},
		}},
		"alloc after finish": {Events: []Event{
			{Time: 0, Kind: EvArrival, Task: 0},
			{Time: 1, Kind: EvFinish, Task: 0},
			{Time: 2, Kind: EvAlloc, Task: 0, Alloc: 1},
		}},
		"finish before arrival": {Events: []Event{
			{Time: 0, Kind: EvFinish, Task: 0},
		}},
	}
	for name, tr := range cases {
		if err := tr.Validate(); err == nil {
			t.Errorf("%s: corrupted trace validated", name)
		}
	}
}

func TestEventKindString(t *testing.T) {
	for _, k := range []EventKind{EvArrival, EvAlloc, EvFinish} {
		if k.String() == "" {
			t.Fatal("empty kind name")
		}
	}
	if EventKind(99).String() != "event(99)" {
		t.Fatal("unknown kind string")
	}
}
