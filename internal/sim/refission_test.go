package sim

import (
	"math"
	"reflect"
	"testing"

	"planaria/internal/energy"
	"planaria/internal/obs"
	"planaria/internal/workload"
)

// splitPolicy is a deterministic stand-in scheduler for the re-fission
// engine hook: it gives the first task the whole chip before the split
// instant `at`, then divides the chip equally. Implementing
// SliceAllocator keeps it on the engine's zero-alloc fast path, the one
// the elastic policy uses.
type splitPolicy struct{ at float64 }

func (s *splitPolicy) Name() string     { return "stub-split" }
func (s *splitPolicy) Quantum() float64 { return 0 }

func (s *splitPolicy) AllocateInto(now float64, tasks []*Task, total int, dst []int) {
	if len(tasks) == 0 {
		return
	}
	if s.at <= 0 || now < s.at {
		dst[0] = total
		return
	}
	share := total / len(tasks)
	if share < 1 {
		share = 1
	}
	left := total
	for i := range tasks {
		a := share
		if a > left {
			a = left
		}
		dst[i] = a
		left -= a
	}
}

func (s *splitPolicy) Allocate(now float64, tasks []*Task, total int) map[int]int {
	dst := make([]int, len(tasks))
	s.AllocateInto(now, tasks, total, dst)
	m := make(map[int]int, len(tasks))
	for i, t := range tasks {
		if dst[i] > 0 {
			m[t.ID] = dst[i]
		}
	}
	return m
}

// stubRefission turns splitPolicy's split instant into a Refissioner
// wakeup: the equal split happens at a policy-requested re-fission
// instant rather than waiting for the next ordinary event.
type stubRefission struct {
	splitPolicy
	active bool
}

func (s *stubRefission) RefissionActive() bool { return s.active }

func (s *stubRefission) NextRefission(now float64, tasks []*Task, total int) float64 {
	if !s.active || s.at <= 0 || now >= s.at {
		return math.Inf(1)
	}
	return s.at
}

// refissionReqs builds two co-arriving requests with slack to spare, so
// the only interesting instant is the stub's split time.
func refissionReqs(iso float64) []workload.Request {
	return []workload.Request{req(0, 0, 8*iso, 5), req(1, 0, 8*iso, 5)}
}

// TestRefissionEventSemantics drives the engine through one policy-
// requested re-split: both allocation changes at that instant must be
// recorded as EvRefission (one shrink, one grow), counted in the
// Outcome, and never double-reported as EvPreempt.
func TestRefissionEventSemantics(t *testing.T) {
	node, prog := testNode(t, nil)
	iso := node.Cfg.Seconds(prog.Table(16).TotalCycles)
	at := iso * 0.5
	node.Policy = &stubRefission{splitPolicy{at: at}, true}
	node.Trace = &Trace{}
	out, err := node.Run(refissionReqs(iso))
	if err != nil {
		t.Fatal(err)
	}
	if out.Refissions != 2 {
		t.Fatalf("Refissions = %d, want 2 (one shrink + one grow)", out.Refissions)
	}
	var refs []Event
	for _, e := range node.Trace.Events {
		switch e.Kind {
		case EvRefission:
			refs = append(refs, e)
		case EvPreempt:
			if e.Time == at {
				t.Fatalf("EvPreempt at the re-fission instant for task %d", e.Task)
			}
		}
	}
	if len(refs) != 2 {
		t.Fatalf("trace has %d EvRefission events, want 2", len(refs))
	}
	for _, e := range refs {
		if e.Time != at {
			t.Errorf("EvRefission at %g, want the requested instant %g", e.Time, at)
		}
		if e.Alloc != 8 {
			t.Errorf("EvRefission task %d -> %d subarrays, want 8", e.Task, e.Alloc)
		}
	}
	if refs[0].Task == refs[1].Task {
		t.Errorf("both EvRefission events on task %d", refs[0].Task)
	}
	// The shrink of the running donor still counts as a preemption; the
	// regrow of the survivor at the donor's completion adds the second.
	if out.Preemptions != 2 {
		t.Errorf("Preemptions = %d, want 2", out.Preemptions)
	}
	if err := node.Trace.Validate(); err != nil {
		t.Fatal(err)
	}
	for i := range out.Finishes {
		if out.Finishes[i] < 0 {
			t.Fatalf("request %d never finished", i)
		}
	}
}

// TestRefissionInactiveMatchesPlain pins the engine-level conformance
// anchor: a Refissioner reporting inactive runs the event loop
// bit-identically to the same policy without the interface.
func TestRefissionInactiveMatchesPlain(t *testing.T) {
	nodeP, prog := testNode(t, nil)
	iso := nodeP.Cfg.Seconds(prog.Table(16).TotalCycles)
	reqs := refissionReqs(iso)
	at := iso * 0.5

	nodeP.Policy = &splitPolicy{at: at}
	nodeP.Trace = &Trace{}
	outP, err := nodeP.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}

	nodeE, _ := testNode(t, nil)
	nodeE.Policy = &stubRefission{splitPolicy{at: at}, false}
	nodeE.Trace = &Trace{}
	outE, err := nodeE.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(outP, outE) {
		t.Fatalf("inactive refissioner outcome diverged:\n%+v\nvs\n%+v", outP, outE)
	}
	if !reflect.DeepEqual(nodeP.Trace.Events, nodeE.Trace.Events) {
		t.Fatalf("inactive refissioner trace diverged (%d vs %d events)",
			len(nodeP.Trace.Events), len(nodeE.Trace.Events))
	}
	for _, e := range nodeE.Trace.Events {
		if e.Kind == EvRefission {
			t.Fatal("inactive refissioner produced an EvRefission event")
		}
	}
}

// TestRefissionCounterRegistration: the refission counters exist — and
// tally grows and shrinks — only when the policy has re-fission active,
// so a disabled run's metrics artifact is byte-identical to one from a
// policy that never heard of re-fission.
func TestRefissionCounterRegistration(t *testing.T) {
	counters := func(active bool) map[string]float64 {
		node, prog := testNode(t, nil)
		iso := node.Cfg.Seconds(prog.Table(16).TotalCycles)
		node.Policy = &stubRefission{splitPolicy{at: iso * 0.5}, active}
		node.Obs = obs.New()
		if _, err := node.Run(refissionReqs(iso)); err != nil {
			t.Fatal(err)
		}
		got := map[string]float64{}
		for _, s := range node.Obs.Registry().Snapshot().Series {
			got[s.Name] = s.Value
		}
		return got
	}

	on := counters(true)
	if on["sim_refissions_total"] != 2 || on["sim_refission_grows_total"] != 1 ||
		on["sim_refission_shrinks_total"] != 1 {
		t.Fatalf("active counters: refissions=%g grows=%g shrinks=%g, want 2/1/1",
			on["sim_refissions_total"], on["sim_refission_grows_total"], on["sim_refission_shrinks_total"])
	}

	off := counters(false)
	for _, name := range []string{"sim_refissions_total", "sim_refission_grows_total", "sim_refission_shrinks_total"} {
		if _, ok := off[name]; ok {
			t.Fatalf("%s registered on an inactive run", name)
		}
	}
}

// TestRefissionGrowChargeScales: growing a stalled task at a re-fission
// instant charges the configuration-swap cost through the node's
// penalty scale — with penalties disabled the same schedule finishes
// strictly earlier.
func TestRefissionGrowChargeScales(t *testing.T) {
	run := func(scale float64) *Outcome {
		node, prog := testNode(t, nil)
		iso := node.Cfg.Seconds(prog.Table(16).TotalCycles)
		node.Policy = &stubRefission{splitPolicy{at: iso * 0.5}, true}
		node.PenaltyScale = scale
		out, err := node.Run(refissionReqs(iso))
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	charged := run(1)
	free := run(-1) // negative means penalty scale 0
	if charged.Refissions != free.Refissions {
		t.Fatalf("penalty scale changed the schedule shape: %d vs %d refissions",
			charged.Refissions, free.Refissions)
	}
	if charged.Finishes[1] <= free.Finishes[1] {
		t.Fatalf("grown task unaffected by penalties: charged %.9g, free %.9g",
			charged.Finishes[1], free.Finishes[1])
	}
}

// TestRemainingCyclesByAllocMatchesScalar: the one-pass per-alloc row
// the elastic policy prices candidates from must be bit-identical to
// the scalar RemainingCycles at every allocation, across progress,
// penalty debt, batch-work scaling, and completion.
func TestRemainingCyclesByAllocMatchesScalar(t *testing.T) {
	_, prog := testNode(t, nil)
	maxA := prog.MaxAlloc()
	check := func(name string, task *Task) {
		t.Helper()
		var out []int64
		out = task.RemainingCyclesByAlloc(out)
		if len(out) != maxA {
			t.Fatalf("%s: row has %d entries, want %d", name, len(out), maxA)
		}
		for a := 1; a <= maxA; a++ {
			if want := task.RemainingCycles(a); out[a-1] != want {
				t.Errorf("%s: alloc %d: row %d != scalar %d", name, a, out[a-1], want)
			}
		}
	}

	fresh := &Task{ID: 0, Prog: prog, Alloc: 4, Finish: -1}
	check("fresh", fresh)

	mid := &Task{ID: 1, Prog: prog, Alloc: 4, Finish: -1}
	mid.advance(prog.Table(4).TotalCycles/3, energy.Default())
	mid.PenaltyCycles = 123
	check("mid-progress+penalty", mid)

	batched := &Task{ID: 2, Prog: prog, Alloc: 8, Finish: -1}
	batched.Req.Work = 3.5
	batched.advance(prog.Table(8).TotalCycles/5, energy.Default())
	check("batched", batched)

	done := &Task{ID: 3, Prog: prog, Alloc: 2, Layer: len(prog.Table(1).Layers), PenaltyCycles: 77}
	check("done", done)
}

// TestTileBoundaryCycles pins the re-fission instant's source: the next
// tile boundary is strictly positive for a running task, never past the
// task's own remaining work, and degenerates to the documented values
// when stalled or done.
func TestTileBoundaryCycles(t *testing.T) {
	_, prog := testNode(t, nil)

	stalled := &Task{ID: 0, Prog: prog, Alloc: 0, Finish: -1}
	if got := stalled.TileBoundaryCycles(); got != 0 {
		t.Errorf("stalled boundary = %d, want 0", got)
	}

	done := &Task{ID: 1, Prog: prog, Alloc: 4, Layer: len(prog.Table(1).Layers), PenaltyCycles: 9}
	if got := done.TileBoundaryCycles(); got != 9 {
		t.Errorf("done boundary = %d, want its penalty 9", got)
	}

	running := &Task{ID: 2, Prog: prog, Alloc: 4, Finish: -1}
	running.advance(prog.Table(4).TotalCycles/7, energy.Default())
	b := running.TileBoundaryCycles()
	if b < 1 {
		t.Fatalf("running boundary = %d, want >= 1", b)
	}
	if rem := running.RemainingCycles(running.Alloc); b > rem {
		t.Fatalf("boundary %d past remaining work %d", b, rem)
	}
	// Advancing to the boundary lands on a whole tile up to integer-cycle
	// rounding, so a re-allocation there drains a vanishing sliver rather
	// than a full tile of intermediate state.
	running.advance(b, energy.Default())
	tab := running.Prog.Table(running.Alloc)
	if !running.Done() && running.Frac > 0 && running.Frac < 1 {
		tiles := float64(tab.Layers[running.Layer].Tiles)
		frac := running.Frac * tiles
		if d := math.Abs(frac - math.Round(frac)); d > 0.01 {
			t.Errorf("advance(boundary) left mid-tile progress: %.9g of %g tiles", frac, tiles)
		}
	}
}
