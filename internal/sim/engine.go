package sim

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"planaria/internal/arch"
	"planaria/internal/compiler"
	"planaria/internal/energy"
	"planaria/internal/fault"
	"planaria/internal/obs"
	"planaria/internal/simtime"
	"planaria/internal/workload"
)

// TimeEps re-exports the repository-wide simulated-time comparison
// tolerance (see internal/simtime, which sits below both this package
// and internal/fault). Every due-at/later-than check in the engine, the
// fault injector, and the cluster front end uses the same tolerance.
const TimeEps = simtime.Eps

// configLoadCycles covers the double-buffered configuration-register swap
// and the per-subarray instruction-buffer prefetch on a re-allocation
// (§IV-C); the checkpoint DMA of one tile of intermediate results is
// modeled separately from the allocation's bandwidth share
// (Task.checkpointCycles).
const configLoadCycles = 500

// Outcome aggregates one simulated workload instance.
type Outcome struct {
	// Finishes[i] is the completion time of the i-th request of the
	// slice passed to Run (-1 if the request never completed: shed by
	// admission control, rejected for an unknown model, or dropped after
	// exhausting its fault-retry budget).
	Finishes []float64
	// Latency[i] = Finishes[i] − Arrival[i].
	Latency []float64
	// EnergyJ is total energy: per-task dynamic energy + chip leakage
	// over the makespan.
	EnergyJ float64
	// Makespan is the time from first arrival to last completion.
	Makespan float64
	// BusyTime is the total time at least one task was in flight; chip
	// leakage and fission-support overhead power are charged over it
	// (the chip power-gates when idle).
	BusyTime float64
	// Fairness is the PREMA metric min_{i,j} PP_i/PP_j.
	Fairness float64
	// Preemptions counts allocation changes of running tasks.
	Preemptions int
	// Refissions counts elastic re-fission resizes: allocation changes
	// applied at a Refissioner-scheduled wakeup rather than an arrival,
	// completion, quantum, or fault event. Always zero unless the policy
	// implements Refissioner and has it active.
	Refissions int
	// MeetsSLA reports the MLPerf server criterion over this instance.
	MeetsSLA bool

	// Fault-injection and degradation tallies (all zero when the node has
	// no injector and shedding is off). Requests that are shed, rejected,
	// or dropped keep Finishes[i] = -1 and count against the SLA.
	//
	// Killed counts fault-induced task kills; Retries counts the subset
	// re-enqueued after backoff (a kill past MaxAttempts sheds instead).
	Killed  int
	Retries int
	// Shed counts admission-control declines plus retry-budget
	// exhaustions.
	Shed int
	// Rejected counts requests for models the node has no program for
	// (non-strict mode only).
	Rejected int
	// FaultEvents counts fault transitions (landings and repairs)
	// applied during the run.
	FaultEvents int
}

// Node simulates one accelerator under a scheduling policy.
type Node struct {
	Cfg    arch.Config
	Policy Policy
	// Programs maps model name → compiled program (matching Cfg).
	Programs map[string]*compiler.Program
	// Params are the energy constants.
	Params energy.Params
	// Trace, when non-nil, records the serving timeline (arrivals,
	// allocation changes, preemptions, queue samples, completions).
	Trace *Trace
	// Obs, when non-nil, receives metrics and timeline tracks on
	// simulated time (request lifecycle spans, per-task allocation
	// counters, queue occupancy). Nil costs only untaken branches.
	Obs *obs.Observer
	// Attrib, when non-nil, receives per-request phase-attribution
	// stamps (DESIGN.md §14): queue-wait, compute, preempt-stall,
	// retry-backoff, fault-stall boundaries plus the terminal cause,
	// addressed by input-slice position. Run resizes it to len(reqs).
	// Nil costs only untaken branches.
	Attrib *obs.Ledger
	// Occ, when non-nil, receives integer subarray-cycle occupancy
	// accounting: every event interval's wall-cycles split into
	// busy/reconfig/faulted/idle unit-cycles. Nil costs only untaken
	// branches.
	Occ *obs.Occupancy
	// PenaltyScale multiplies every re-allocation penalty (tile drain,
	// checkpoint DMA, configuration load). 0 = free preemption, 1 =
	// default; used by the reconfiguration-cost sensitivity ablation.
	// Zero value means 1.
	PenaltyScale float64

	// Faults, when non-nil, replays a deterministic fault schedule
	// against the node: transitions are applied exactly at their
	// simulated instants, victims are killed and re-enqueued with capped
	// exponential backoff, and capacity/throughput degrade per FaultMode.
	// Nil keeps the fault-free paths bit-identical to a node without any
	// fault machinery.
	Faults *fault.Injector
	// FaultMode selects fission masking (Planaria) or monolithic
	// derating (PREMA baseline). Meaningful only with Faults set.
	FaultMode FaultMode
	// Shed selects the admission-control policy (default ShedNone).
	Shed ShedPolicy
	// Strict restores the original all-or-nothing behavior for unknown
	// models: Run fails instead of rejecting the single request.
	Strict bool
	// RetryBase and RetryCap bound the kill-retry backoff in simulated
	// seconds (zero values mean 200 µs and 5 ms). MaxAttempts caps how
	// often one request may be killed before it is shed; 0 = unlimited.
	RetryBase   float64
	RetryCap    float64
	MaxAttempts int
}

// nodeScratch holds one Run's large non-escaping working buffers,
// recycled through a sync.Pool so back-to-back simulations (cluster
// shards, sweeps, benchmarks) stop paying a large-allocation zeroing
// tax per run. Task records are engine-owned: nothing in an Outcome,
// Trace, or observer references them, and policies must not retain
// *Task pointers across calls (the scheduling contract), so the arena
// is free for reuse the moment Run returns. Every buffer is either
// appended from empty or fully overwritten before it is read, so stale
// contents cannot influence a run.
type nodeScratch struct {
	arena      []Task
	tasks      []*Task
	pp         []ppEntry
	allocBuf   []int
	retry      []retryEntry
	prevUsable []bool
}

var nodeScratchPool = sync.Pool{New: func() any { return new(nodeScratch) }}

// penaltyScale returns the effective multiplier.
func (n *Node) penaltyScale() float64 {
	if n.PenaltyScale == 0 {
		return 1
	}
	if n.PenaltyScale < 0 {
		return 0
	}
	return n.PenaltyScale
}

// Run simulates the requests to completion and computes the outcome
// metrics. Isolated times for fairness come from each program's
// full-allocation table.
//
//perf:hot serving steady state: the per-event loop must not allocate (DESIGN.md §13)
func (n *Node) Run(reqs []workload.Request) (*Outcome, error) {
	if n.Policy == nil {
		return nil, fmt.Errorf("sim: node has no policy")
	}
	if len(reqs) == 0 {
		return nil, fmt.Errorf("sim: no requests")
	}
	total := n.Cfg.NumSubarrays()
	// Per-event constants hoisted off the hot loop: the clock rate (the
	// Seconds/CyclesPerSecond conversions are pure functions of Cfg) and
	// the reallocation penalty multiplier.
	cps := n.Cfg.CyclesPerSecond()
	penScale := n.penaltyScale()
	if n.Faults != nil && n.FaultMode == FaultFission && n.Faults.Health().Units() != total {
		return nil, fmt.Errorf("sim: fault schedule has %d units, fission config has %d subarrays",
			n.Faults.Health().Units(), total)
	}

	// Request-ID index. The common case — IDs are the identity
	// permutation, as every generated workload and cluster dispatch
	// stream produces — needs no map at all: IDs are provably unique and
	// ID == input position.
	var index map[int]int
	identityIDs := true
	for i, r := range reqs {
		if r.ID != i {
			identityIDs = false
			break
		}
	}
	if !identityIDs {
		index = make(map[int]int, len(reqs))
		for i, r := range reqs {
			if _, dup := index[r.ID]; dup {
				return nil, fmt.Errorf("sim: duplicate request ID %d", r.ID)
			}
			index[r.ID] = i
		}
	}

	// Arrival calendar. A strictly increasing input (the Poisson streams
	// and the cluster's chronological dispatch order) is its own
	// calendar — alias it without copying; the engine never mutates
	// pending entries. Anything else takes the copy-and-sort path, whose
	// comparator and algorithm are unchanged so tied arrivals keep their
	// historical order.
	pending := reqs
	aliased := true
	// The monotonicity pass doubles as the fairness priority sum (input
	// order, matching fairnessOf's historical accumulation order); the
	// rare unsorted input recomputes it below after breaking out early.
	prioSum := 0.0
	if len(reqs) > 0 {
		prioSum = float64(reqs[0].Priority)
	}
	for i := 1; i < len(reqs); i++ {
		if reqs[i].Arrival <= reqs[i-1].Arrival {
			//perf:alloc-ok unsorted-input fallback: runs at most once, sorted streams never enter
			cp := make([]workload.Request, len(reqs))
			copy(cp, reqs)
			//perf:alloc-ok same fallback: one sort of a copied stream
			sort.Slice(cp, func(i, j int) bool { return cp[i].Arrival < cp[j].Arrival })
			pending = cp
			aliased = false
			break
		}
		prioSum += float64(reqs[i].Priority)
	}
	if !aliased {
		prioSum = 0
		for i := range reqs {
			prioSum += float64(reqs[i].Priority)
		}
	}
	if identityIDs || aliased {
		// Each task learns its input position at admit (ID for identity
		// streams, calendar position for aliased ones), so the retire path
		// never consults the index map; it was only needed for the
		// duplicate check above.
		index = nil
	}

	// Task records come from one pooled arena: at most one task is ever
	// created per request (retries re-enqueue the same record), so the
	// arena never grows and the pointers stay stable for the whole run.
	sc := nodeScratchPool.Get().(*nodeScratch)
	arena := sc.arena
	if cap(arena) < len(pending) {
		arena = make([]Task, len(pending))
	} else {
		arena = arena[:len(pending)]
	}
	usedArena := 0

	tasks := sc.tasks[:0] // active
	pp := sc.pp[:0]
	allocBuf := sc.allocBuf[:0]
	prevUsable := sc.prevUsable[:0]
	retryQ := retryHeap{entries: sc.retry[:0]}
	defer func() {
		sc.arena, sc.tasks, sc.pp = arena, tasks[:0], pp[:0]
		sc.allocBuf, sc.prevUsable = allocBuf[:0], prevUsable[:0]
		sc.retry = retryQ.entries[:0]
		nodeScratchPool.Put(sc)
	}()

	//perf:alloc-ok single result object per run
	out := &Outcome{
		Finishes: make([]float64, len(reqs)),
		Latency:  make([]float64, len(reqs)),
	}
	for i := range out.Finishes {
		out.Finishes[i] = -1
	}

	// Observability handles: nil registry/tracer yields nil handles whose
	// methods are no-ops, so the probes below cost only untaken branches
	// when observability is off.
	reg := n.Obs.Registry()
	tracer := n.Obs.Tracer()
	cRequests := reg.Counter("sim_requests_total")
	cDone := reg.Counter("sim_completions_total")
	cPreempt := reg.Counter("sim_preemptions_total")
	cSched := reg.Counter("sim_sched_events_total")
	cKills := reg.Counter("sim_kills_total")
	cRetries := reg.Counter("sim_retries_total")
	cSheds := reg.Counter("sim_sheds_total")
	cRejects := reg.Counter("sim_rejects_total")
	cFaults := reg.Counter("fault_events_total")
	gAlive := reg.Gauge("fault_alive_subarrays")
	gDepth := reg.Gauge("sim_queue_depth_max")
	lastDepth, lastRunning := -1, -1
	// Per-model latency-histogram handles, interned on first completion so
	// the steady state skips the registry's label canonicalization.
	var latHists map[string]*obs.Histogram
	var durBounds []float64
	if reg != nil {
		latHists = make(map[string]*obs.Histogram, len(n.Programs))
		durBounds = obs.DurationBuckets()
	}
	// Attribution handles (DESIGN.md §14): nil ledger/accountant means
	// every stamp below is an untaken branch. The ledger is resized to
	// the input so stamps address records by the same positions the
	// Outcome uses.
	led := n.Attrib
	occ := n.Occ
	if led != nil {
		led.Reset(len(reqs))
	}
	if occ != nil {
		occ.SetUnits(int64(total))
	}
	// A typical request contributes arrival + alloc + finish plus a queue
	// sample; reserving 4 events per request keeps steady-state tracing
	// off the allocator (appends beyond the estimate still grow).
	n.Trace.Reserve(4 * len(pending))
	// Event-construction guard: with tracing off, the record calls below
	// are skipped entirely so no Event argument is ever materialized.
	tracing := n.Trace != nil

	// Model bindings interned once: the compiled program plus its
	// full-allocation isolated run time (the fairness numerator), so each
	// admit does a single map lookup and each retirement does none.
	binds := make(map[string]progBinding, len(n.Programs))
	for m, p := range n.Programs { //det:mapiter-ok builds a map from a map; contents are iteration-order-insensitive
		binds[m] = progBinding{prog: p, iso: float64(p.Table(total).TotalCycles) / cps}
	}

	now := pending[0].Arrival
	firstArrival := now
	nextPending := 0
	const maxIter = 10_000_000

	admit := func() error {
		for nextPending < len(pending) && simtime.Due(pending[nextPending].Arrival, now) {
			r := &pending[nextPending]
			srcPos := nextPending
			nextPending++
			// The request's position in the caller's slice: the ID itself
			// for identity streams, the calendar position for aliased
			// inputs, and an index lookup only on the cold copy-and-sort
			// path. Needed by every branch below (the ledger addresses
			// terminal records by position too, not just admits).
			pos := r.ID
			if !identityIDs {
				if aliased {
					pos = srcPos
				} else {
					pos = index[r.ID]
				}
			}
			bind, ok := binds[r.Model]
			if !ok {
				if n.Strict {
					return fmt.Errorf("sim: no program for model %q", r.Model)
				}
				if tracing {
					n.Trace.record(Event{Time: r.Arrival, Kind: EvArrival, Task: r.ID, Model: r.Model})
				}
				if tracing {
					n.Trace.record(Event{Time: r.Arrival, Kind: EvReject, Task: r.ID, Model: r.Model})
				}
				cRequests.Inc()
				cRejects.Inc()
				out.Rejected++
				if led != nil {
					led.Terminal(pos, r.Arrival, r.Arrival, obs.PhaseQueueWait, obs.CauseRejected)
				}
				continue
			}
			if tracing {
				n.Trace.record(Event{Time: r.Arrival, Kind: EvArrival, Task: r.ID, Model: r.Model})
			}
			cRequests.Inc()
			if n.shouldShed(now, bind.prog, r, total, len(tasks)) {
				if tracing {
					n.Trace.record(Event{Time: now, Kind: EvShed, Task: r.ID, Model: r.Model})
				}
				cSheds.Inc()
				out.Shed++
				if led != nil {
					led.Terminal(pos, r.Arrival, now, obs.PhaseQueueWait, obs.CauseShedChip)
				}
				continue
			}
			t := &arena[usedArena]
			usedArena++
			// Field writes rather than a composite literal: the literal
			// materializes a 200-byte temporary and block-copies it into
			// the arena slot on every admit.
			t.ID = r.ID
			t.Req = *r
			t.Prog = bind.prog
			t.Layer, t.Frac = 0, 0
			t.Alloc, t.PenaltyCycles = 0, 0
			t.Finish = -1
			t.EnergyJ = 0
			t.Preemptions = 0
			t.iso = bind.iso
			t.pos = pos
			t.Attempts = 0
			if led != nil {
				led.Open(pos, r.Arrival, obs.PhaseQueueWait)
				t.phase = obs.PhaseQueueWait
			}
			tasks = append(tasks, t)
		}
		// Killed tasks whose backoff has elapsed rejoin the queue; a task
		// whose prospects died with the chip's capacity is shed here.
		for retryQ.Len() > 0 && simtime.Due(retryQ.peek().at, now) {
			e := retryQ.pop()
			if n.shouldShed(now, e.t.Prog, &e.t.Req, total, len(tasks)) {
				if tracing {
					n.Trace.record(Event{Time: now, Kind: EvShed, Task: e.t.ID, Model: e.t.Req.Model, Attempt: e.t.Attempts})
				}
				cSheds.Inc()
				out.Shed++
				out.EnergyJ += e.t.EnergyJ
				if led != nil {
					led.Close(e.t.pos, now, obs.CauseShedRetries)
				}
				continue
			}
			if tracing {
				n.Trace.record(Event{Time: now, Kind: EvRetry, Task: e.t.ID, Model: e.t.Req.Model, Attempt: e.t.Attempts})
			}
			if led != nil {
				led.Mark(e.t.pos, now, obs.PhaseQueueWait)
				e.t.phase = obs.PhaseQueueWait
			}
			tasks = append(tasks, e.t)
		}
		return nil
	}

	kill := func(t *Task) {
		t.Attempts++
		t.Alloc, t.Layer, t.Frac, t.PenaltyCycles = 0, 0, 0, 0
		if tracing {
			n.Trace.record(Event{Time: now, Kind: EvKill, Task: t.ID, Model: t.Req.Model, Attempt: t.Attempts})
		}
		cKills.Inc()
		out.Killed++
		if tracer != nil {
			tracer.Instant("faults", fmt.Sprintf("kill task %d (attempt %d)", t.ID, t.Attempts), now,
				obs.Str("model", t.Req.Model), obs.Num("attempt", float64(t.Attempts)))
			tracer.Counter(taskTrack(t.ID), "subarrays", now, 0)
		}
		if n.MaxAttempts > 0 && t.Attempts > n.MaxAttempts {
			if tracing {
				n.Trace.record(Event{Time: now, Kind: EvShed, Task: t.ID, Model: t.Req.Model, Attempt: t.Attempts})
			}
			cSheds.Inc()
			out.Shed++
			out.EnergyJ += t.EnergyJ
			if led != nil {
				led.Close(t.pos, now, obs.CauseShedRetries)
			}
			return
		}
		if led != nil {
			led.Mark(t.pos, now, obs.PhaseRetryBackoff)
			t.phase = obs.PhaseRetryBackoff
		}
		retryQ.push(retryEntry{t: t, at: now + n.backoff(t.Attempts)})
		out.Retries++
		cRetries.Inc()
	}

	// applyFaults applies every fault transition due at or before now:
	// records the transitions, kills the victims, and hands the updated
	// health mask to a health-aware policy. No-op without an injector.
	// prevUsable comes from the run scratch, reused across invocations.
	applyFaults := func() {
		if n.Faults == nil {
			return
		}
		h := n.Faults.Health()
		prev := prevUsable[:0]
		for i := 0; i < h.Units(); i++ {
			prev = append(prev, h.UsableSub(i))
		}
		prevUsable = prev
		changes := n.Faults.AdvanceTo(now)
		if len(changes) == 0 {
			return
		}
		anyDown := false
		for _, ch := range changes {
			if !ch.Up {
				anyDown = true
			}
			if tracing {
				n.Trace.record(Event{Time: ch.Time, Kind: EvFault, Unit: ch.Event.Unit, Up: ch.Up, Model: ch.Event.Kind.String()})
			}
			cFaults.Inc()
			out.FaultEvents++
			if tracer != nil {
				dir := "lands"
				if ch.Up {
					dir = "repairs"
				}
				tracer.Instant("faults", fmt.Sprintf("%s fault %s on unit %d", ch.Event.Kind, dir, ch.Event.Unit), ch.Time,
					obs.Str("kind", ch.Event.Kind.String()), obs.Num("unit", float64(ch.Event.Unit)))
			}
		}
		gAlive.Set(float64(h.Alive()))
		if tracer != nil {
			tracer.Counter("chip", "alive_subarrays", now, float64(h.Alive()))
		}
		victims := faultVictims(tasks, prev, h, n.FaultMode, anyDown)
		if len(victims) > 0 {
			dead := make(map[int]bool, len(victims))
			for _, v := range victims {
				kill(v)
				dead[v.ID] = true
			}
			kept := tasks[:0]
			for _, t := range tasks {
				if !dead[t.ID] {
					kept = append(kept, t)
				}
			}
			tasks = kept
		}
		if ha, ok := n.Policy.(HealthAware); ok {
			ha.SetHealth(h.Mask())
		}
	}

	if err := admit(); err != nil {
		return nil, err
	}

	// Zero-allocation scheduling fast path: policies implementing
	// SliceAllocator write into a reusable positional buffer instead of
	// returning a fresh map per event.
	sliceAlloc, fastPolicy := n.Policy.(SliceAllocator)

	// Elastic re-fission (DESIGN.md §16): an active Refissioner policy
	// gets scheduling wakeups at tile boundaries it asks for, so it can
	// re-split the chip between the ordinary events. Everything below is
	// behind the one-time `elastic` flag — an inactive or non-Refissioner
	// policy runs the historical event loop bit-identically, and the
	// refission counters are not even registered.
	var refis Refissioner
	elastic := false
	if r, ok := n.Policy.(Refissioner); ok && r.RefissionActive() {
		refis, elastic = r, true
	}
	var cRefis, cRefisGrow, cRefisShrink *obs.Counter
	if elastic {
		cRefis = reg.Counter("sim_refissions_total")
		cRefisGrow = reg.Counter("sim_refission_grows_total")
		cRefisShrink = reg.Counter("sim_refission_shrinks_total")
	}
	refAt := math.Inf(1)

	for iter := 0; ; iter++ {
		if iter > maxIter {
			return nil, fmt.Errorf("sim: exceeded %d events (livelock?) at t=%.9f: %d tasks, %d retries queued, %d/%d arrivals admitted",
				maxIter, now, len(tasks), retryQ.Len(), nextPending, len(pending))
		}
		applyFaults()
		if len(tasks) == 0 {
			if nextPending >= len(pending) && retryQ.Len() == 0 {
				break
			}
			wake := math.Inf(1)
			if nextPending < len(pending) {
				wake = pending[nextPending].Arrival
			}
			if retryQ.Len() > 0 && retryQ.peek().at < wake {
				wake = retryQ.peek().at
			}
			if occ != nil && wake > now {
				// Empty-queue jump: the whole chip sits idle (or masked)
				// until the next arrival or retry wakes it.
				occ.Interval(int64(math.Ceil((wake-now)*cps)), 0, 0, int64(total-n.capacity(total)))
			}
			// The queue emptied, so any pending re-fission wakeup is moot;
			// clear it so the jump target cannot coincide with a stale one.
			refAt = math.Inf(1)
			now = wake
			applyFaults()
			if err := admit(); err != nil {
				return nil, err
			}
			continue
		}
		sp := n.speed()
		capNow := n.capacity(total)
		// This iteration is a re-fission instant iff the loop woke exactly
		// at the Refissioner's requested time (next-event selection below
		// folds refAt into the minimum, so equality is exact).
		atRef := elastic && now == refAt
		if capNow == 0 || sp == 0 {
			// Every subarray is masked: nothing can run until a repair,
			// which is the only event that can change capacity.
			nc := n.Faults.NextChange(now)
			if !math.IsInf(nc, 1) {
				if led != nil {
					for _, t := range tasks {
						if t.phase != obs.PhaseFaultStall {
							led.Mark(t.pos, now, obs.PhaseFaultStall)
							t.phase = obs.PhaseFaultStall
						}
					}
				}
				if occ != nil && nc > now {
					occ.Interval(int64(math.Ceil((nc-now)*cps)), 0, 0, int64(total))
				}
				now = nc
				continue
			}
			// The chip is permanently dead: no queued, retrying, or
			// still-to-arrive request can ever be served. Drain them all
			// as shed and end the run gracefully — their Finishes stay
			// -1 and count against the SLA.
			shedOne := func(at float64, pos, id int, model string, attempt int, energy float64) {
				if tracing {
					n.Trace.record(Event{Time: at, Kind: EvShed, Task: id, Model: model, Attempt: attempt})
				}
				cSheds.Inc()
				out.Shed++
				out.EnergyJ += energy
				if led != nil {
					// Terminal works for open and never-opened records
					// alike: the Open half degrades to a zero-length mark
					// when a chain already exists.
					led.Terminal(pos, at, at, obs.PhaseQueueWait, obs.CauseShedDeadChip)
				}
			}
			for _, t := range tasks {
				shedOne(now, t.pos, t.ID, t.Req.Model, t.Attempts, t.EnergyJ)
			}
			tasks = tasks[:0]
			for retryQ.Len() > 0 {
				e := retryQ.pop()
				shedOne(now, e.t.pos, e.t.ID, e.t.Req.Model, e.t.Attempts, e.t.EnergyJ)
			}
			for ; nextPending < len(pending); nextPending++ {
				r := pending[nextPending]
				if tracing {
					n.Trace.record(Event{Time: r.Arrival, Kind: EvArrival, Task: r.ID, Model: r.Model})
				}
				cRequests.Inc()
				pos := r.ID
				if !identityIDs {
					if aliased {
						pos = nextPending
					} else {
						pos = index[r.ID]
					}
				}
				shedOne(r.Arrival, pos, r.ID, r.Model, 0, 0)
			}
			break
		}

		// Scheduling event: invoke the policy and apply re-allocations.
		var alloc map[int]int
		if fastPolicy {
			if cap(allocBuf) < len(tasks) {
				//perf:alloc-ok amortized growth of pooled scratch; steady state takes the cap fast path
				allocBuf = make([]int, len(tasks))
			}
			allocBuf = allocBuf[:len(tasks)]
			for i := range allocBuf {
				allocBuf[i] = 0
			}
			sliceAlloc.AllocateInto(now, tasks, capNow, allocBuf)
			if err := validateAllocationSlice(allocBuf, tasks, capNow); err != nil {
				return nil, err
			}
		} else {
			alloc = n.Policy.Allocate(now, tasks, capNow)
			if err := validateAllocation(alloc, tasks, capNow); err != nil {
				return nil, err
			}
		}
		cSched.Inc()
		running, inUse := 0, 0
		for ti, t := range tasks {
			na := 0
			if fastPolicy {
				na = allocBuf[ti]
			} else {
				na = alloc[t.ID]
			}
			if na != t.Alloc {
				if tracing {
					n.Trace.record(Event{Time: now, Kind: EvAlloc, Task: t.ID, Model: t.Req.Model, Alloc: na})
				}
				wasRunning := t.Alloc > 0 && !t.Done()
				if atRef && !t.Done() {
					// An elastic resize at a tile boundary: grow a starved
					// task into freed subarrays or shrink an SLA-beating
					// donor. Recorded as EvRefission instead of EvPreempt;
					// the preemption counter still ticks for running tasks
					// (applyRealloc charges them and bumps Preemptions).
					if tracing {
						n.Trace.record(Event{Time: now, Kind: EvRefission, Task: t.ID, Model: t.Req.Model, Alloc: na})
					}
					cRefis.Inc()
					if na > t.Alloc {
						cRefisGrow.Inc()
					} else {
						cRefisShrink.Inc()
					}
					out.Refissions++
					if wasRunning {
						cPreempt.Inc()
					} else if na > 0 {
						// Growing a stalled task mid-run is not free: the
						// freed subarrays swap in its configuration and
						// prefetch its instructions (§IV-C) before work
						// resumes. Ordinary-event dispatches of queued tasks
						// stay free, exactly as before.
						t.PenaltyCycles += int64(float64(n.Cfg.ConfigSwapCycles(na)) * penScale)
					}
					if tracer != nil {
						tracer.Instant("sched", fmt.Sprintf("refission task %d -> %d", t.ID, na), now,
							obs.Str("model", t.Req.Model), obs.Num("subarrays", float64(na)))
					}
				} else if wasRunning {
					// A running task's allocation changed: a preemption
					// (full, on PREMA's context switch; partial, on a
					// Planaria re-fission).
					if tracing {
						n.Trace.record(Event{Time: now, Kind: EvPreempt, Task: t.ID, Model: t.Req.Model, Alloc: na})
					}
					cPreempt.Inc()
					if tracer != nil {
						tracer.Instant("sched", fmt.Sprintf("preempt task %d -> %d", t.ID, na), now,
							obs.Str("model", t.Req.Model), obs.Num("subarrays", float64(na)))
					}
				}
				if tracer != nil {
					tracer.Counter(taskTrack(t.ID), "subarrays", now, float64(na))
				}
			}
			t.applyRealloc(int64(na), &n.Cfg, penScale)
			if led != nil {
				// Phase transition at the scheduling event: allocated and
				// penalty-free means computing, allocated but draining a
				// re-allocation penalty means preempt-stall, unallocated
				// means queued. Stamp only actual transitions so steady
				// state adds no marks.
				ph := obs.PhaseQueueWait
				if t.Alloc > 0 {
					if t.PenaltyCycles > 0 {
						ph = obs.PhasePreemptStall
					} else {
						ph = obs.PhaseCompute
					}
				}
				if ph != t.phase {
					led.Mark(t.pos, now, ph)
					t.phase = ph
				}
			}
			if t.Alloc > 0 {
				running++
				inUse += t.Alloc
			}
		}
		if running == 0 {
			return nil, fmt.Errorf("sim: policy %s stalled all %d tasks", n.Policy.Name(), len(tasks))
		}
		if lastDepth != len(tasks) || lastRunning != running {
			lastDepth, lastRunning = len(tasks), running
			if tracing {
				n.Trace.record(Event{Time: now, Kind: EvQueue, Depth: lastDepth, Running: lastRunning})
			}
			gDepth.Max(float64(lastDepth))
			if tracer != nil {
				tracer.Counter("queue", "inflight", now, float64(lastDepth))
				tracer.Counter("queue", "running", now, float64(lastRunning))
			}
		}
		if tracer != nil {
			tracer.Counter("chip", "subarrays_in_use", now, float64(inUse))
		}

		// Next event: earliest completion, next arrival, quantum, fault
		// transition, or retry re-enqueue.
		next := math.Inf(1)
		for _, t := range tasks {
			if t.Alloc > 0 {
				rem := float64(t.RemainingCycles(t.Alloc)) / cps
				if sp != 1 {
					rem /= sp
				}
				fin := now + rem
				if fin < next {
					next = fin
				}
			}
		}
		if nextPending < len(pending) && pending[nextPending].Arrival < next {
			next = pending[nextPending].Arrival
		}
		if q := n.Policy.Quantum(); q > 0 && len(tasks) > running {
			// The quantum is a cycle-count epoch, so a derated chip takes
			// proportionally longer wall-clock to complete one. (Keeping it
			// wall-clock-fixed would let the per-switch reconfiguration
			// penalty outrun the work retired per epoch at low speeds —
			// tasks would thrash forever without progressing.)
			if sp != 1 {
				q /= sp
			}
			if now+q < next {
				next = now + q
			}
		}
		if n.Faults != nil {
			if nc := n.Faults.NextChange(now); nc < next {
				next = nc
			}
		}
		if retryQ.Len() > 0 && retryQ.peek().at < next {
			next = retryQ.peek().at
		}
		if elastic {
			// The Refissioner names the next tile boundary worth a
			// re-split (+Inf when the current fission needs no revisit);
			// fold it into the minimum so the loop wakes exactly there.
			refAt = refis.NextRefission(now, tasks, capNow)
			if refAt <= now {
				refAt = math.Inf(1)
			} else if refAt < next {
				next = refAt
			}
		}
		if math.IsInf(next, 1) {
			return nil, fmt.Errorf("sim: no next event with %d tasks active", len(tasks))
		}

		// Advance running tasks to the event time. Under derate the chip
		// retires work at the alive fraction of its nominal rate.
		dt := next - now
		out.BusyTime += dt
		work := dt * cps
		if sp != 1 {
			work *= sp
		}
		dtCycles := int64(math.Ceil(work))
		if dtCycles < 1 {
			dtCycles = 1
		}
		if occ != nil {
			// Occupancy accounting in wall-cycles (not derate-scaled work
			// cycles, so the split is speed-independent): each allocated
			// subarray is busy or — while its task drains a re-allocation
			// penalty — reconfiguring; fault-masked subarrays are faulted;
			// the rest idle. Zero-width intervals contribute nothing.
			var busyU, reconfU int64
			for _, t := range tasks {
				if t.Alloc > 0 {
					if t.PenaltyCycles > 0 {
						reconfU += int64(t.Alloc)
					} else {
						busyU += int64(t.Alloc)
					}
				}
			}
			occ.Interval(int64(math.Ceil(dt*cps)), busyU, reconfU, int64(total-capNow))
		}
		for _, t := range tasks {
			if t.Alloc > 0 {
				t.advance(dtCycles, n.Params)
			}
		}
		now = next

		// Retire finished tasks.
		kept := tasks[:0]
		for _, t := range tasks {
			if t.Done() && t.PenaltyCycles <= 0 {
				t.Finish = now
				if tracing {
					n.Trace.record(Event{Time: now, Kind: EvFinish, Task: t.ID, Model: t.Req.Model})
				}
				lat := now - t.Req.Arrival
				cDone.Inc()
				if reg != nil {
					h := latHists[t.Req.Model]
					if h == nil {
						h = reg.Histogram("sim_latency_seconds", durBounds,
							obs.L("model", t.Req.Model))
						latHists[t.Req.Model] = h
					}
					h.Observe(lat)
				}
				if tracer != nil {
					tracer.Span(taskTrack(t.ID), fmt.Sprintf("req %d %s", t.ID, t.Req.Model),
						t.Req.Arrival, now,
						obs.Str("model", t.Req.Model),
						obs.Num("priority", float64(t.Req.Priority)),
						obs.Num("latency_ms", lat*1e3),
						obs.Num("deadline_ms", (t.Req.Deadline-t.Req.Arrival)*1e3),
						obs.Num("preemptions", float64(t.Preemptions)))
					tracer.Counter(taskTrack(t.ID), "subarrays", now, 0)
				}
				if led != nil {
					led.Close(t.pos, now, obs.CauseDone)
				}
				idx := t.pos
				out.Finishes[idx] = now
				out.Latency[idx] = lat
				out.EnergyJ += t.EnergyJ
				out.Preemptions += t.Preemptions
				pp = appendPP(pp, t)
			} else {
				kept = append(kept, t)
			}
		}
		tasks = kept
		if err := admit(); err != nil {
			return nil, err
		}
		if len(tasks) == 0 && nextPending >= len(pending) && retryQ.Len() == 0 {
			break
		}
	}

	out.Makespan = now - firstArrival
	// Chip leakage and fission-support overhead power over the busy time.
	out.EnergyJ += (energy.LeakageWatts(n.Cfg, n.Params) + energy.OverheadWatts(n.Cfg)) * out.BusyTime
	out.Fairness = fairnessOf(pp, prioSum)
	out.MeetsSLA = workload.MeetsSLA(reqs, out.Finishes)
	return out, nil
}

// taskTrack names one request's timeline track; zero-padded so Perfetto's
// lexicographic track ordering matches request IDs.
func taskTrack(id int) string {
	return fmt.Sprintf("task %03d", id)
}

// ppEntry carries one finished task's normalized progress for fairness.
type ppEntry struct {
	id       int
	priority int
	iso      float64
	multi    float64
}

// progBinding is one model's interned admission state: its compiled
// program and the isolated full-chip run time used by the fairness
// metric.
type progBinding struct {
	prog *compiler.Program
	iso  float64
}

func appendPP(pp []ppEntry, t *Task) []ppEntry {
	return append(pp, ppEntry{
		id:       t.Req.ID,
		priority: t.Req.Priority,
		iso:      t.iso,
		multi:    t.Finish - t.Req.Arrival,
	})
}

// fairnessOf computes PREMA's fairness metric:
// PP_i = (T_iso / T_multi) / (priority_i / Σ priority), fairness =
// min_{i,j} PP_i / PP_j = min PP / max PP.
func fairnessOf(pp []ppEntry, prioSum float64) float64 {
	if len(pp) < 2 {
		return 1
	}
	minPP, maxPP := math.Inf(1), 0.0
	for _, e := range pp {
		if e.multi <= 0 {
			continue
		}
		v := (e.iso / e.multi) / (float64(e.priority) / prioSum)
		if v < minPP {
			minPP = v
		}
		if v > maxPP {
			maxPP = v
		}
	}
	if maxPP == 0 || math.IsInf(minPP, 1) {
		return 1
	}
	return minPP / maxPP
}
