package sim

import (
	"fmt"
	"math"
	"sort"

	"planaria/internal/arch"
	"planaria/internal/compiler"
	"planaria/internal/energy"
	"planaria/internal/workload"
)

// configLoadCycles covers the double-buffered configuration-register swap
// and the per-subarray instruction-buffer prefetch on a re-allocation
// (§IV-C); the checkpoint DMA of one tile of intermediate results is
// modeled separately from the allocation's bandwidth share
// (Task.checkpointCycles).
const configLoadCycles = 500

// Outcome aggregates one simulated workload instance.
type Outcome struct {
	// Finishes[i] is the completion time of the i-th request of the
	// slice passed to Run (-1 if unfinished — cannot happen when Run
	// returns nil error, but kept for metrics symmetry).
	Finishes []float64
	// Latency[i] = Finishes[i] − Arrival[i].
	Latency []float64
	// EnergyJ is total energy: per-task dynamic energy + chip leakage
	// over the makespan.
	EnergyJ float64
	// Makespan is the time from first arrival to last completion.
	Makespan float64
	// BusyTime is the total time at least one task was in flight; chip
	// leakage and fission-support overhead power are charged over it
	// (the chip power-gates when idle).
	BusyTime float64
	// Fairness is the PREMA metric min_{i,j} PP_i/PP_j.
	Fairness float64
	// Preemptions counts allocation changes of running tasks.
	Preemptions int
	// MeetsSLA reports the MLPerf server criterion over this instance.
	MeetsSLA bool
}

// Node simulates one accelerator under a scheduling policy.
type Node struct {
	Cfg    arch.Config
	Policy Policy
	// Programs maps model name → compiled program (matching Cfg).
	Programs map[string]*compiler.Program
	// Params are the energy constants.
	Params energy.Params
	// Trace, when non-nil, records the serving timeline (arrivals,
	// allocation changes, completions).
	Trace *Trace
	// PenaltyScale multiplies every re-allocation penalty (tile drain,
	// checkpoint DMA, configuration load). 0 = free preemption, 1 =
	// default; used by the reconfiguration-cost sensitivity ablation.
	// Zero value means 1.
	PenaltyScale float64
}

// penaltyScale returns the effective multiplier.
func (n *Node) penaltyScale() float64 {
	if n.PenaltyScale == 0 {
		return 1
	}
	if n.PenaltyScale < 0 {
		return 0
	}
	return n.PenaltyScale
}

// Run simulates the requests to completion and computes the outcome
// metrics. Isolated times for fairness come from each program's
// full-allocation table.
func (n *Node) Run(reqs []workload.Request) (*Outcome, error) {
	if n.Policy == nil {
		return nil, fmt.Errorf("sim: node has no policy")
	}
	if len(reqs) == 0 {
		return nil, fmt.Errorf("sim: no requests")
	}
	total := n.Cfg.NumSubarrays()

	index := make(map[int]int, len(reqs))
	for i, r := range reqs {
		if _, dup := index[r.ID]; dup {
			return nil, fmt.Errorf("sim: duplicate request ID %d", r.ID)
		}
		index[r.ID] = i
	}

	pending := make([]workload.Request, len(reqs))
	copy(pending, reqs)
	sort.Slice(pending, func(i, j int) bool { return pending[i].Arrival < pending[j].Arrival })

	tasks := make([]*Task, 0, 8) // active
	out := &Outcome{
		Finishes: make([]float64, len(reqs)),
		Latency:  make([]float64, len(reqs)),
	}
	for i := range out.Finishes {
		out.Finishes[i] = -1
	}
	var pp []ppEntry

	now := pending[0].Arrival
	firstArrival := now
	nextPending := 0
	const maxIter = 10_000_000

	admit := func() error {
		for nextPending < len(pending) && pending[nextPending].Arrival <= now+1e-12 {
			r := pending[nextPending]
			prog, ok := n.Programs[r.Model]
			if !ok {
				return fmt.Errorf("sim: no program for model %q", r.Model)
			}
			tasks = append(tasks, &Task{ID: r.ID, Req: r, Prog: prog, Finish: -1})
			n.Trace.record(Event{Time: r.Arrival, Kind: EvArrival, Task: r.ID, Model: r.Model})
			nextPending++
		}
		return nil
	}
	if err := admit(); err != nil {
		return nil, err
	}

	for iter := 0; ; iter++ {
		if iter > maxIter {
			return nil, fmt.Errorf("sim: exceeded %d events (livelock?)", maxIter)
		}
		if len(tasks) == 0 {
			if nextPending >= len(pending) {
				break
			}
			now = pending[nextPending].Arrival
			if err := admit(); err != nil {
				return nil, err
			}
			continue
		}

		// Scheduling event: invoke the policy and apply re-allocations.
		alloc := n.Policy.Allocate(now, tasks, total)
		if err := validateAllocation(alloc, tasks, total); err != nil {
			return nil, err
		}
		running := 0
		for _, t := range tasks {
			na := alloc[t.ID]
			if na != t.Alloc {
				n.Trace.record(Event{Time: now, Kind: EvAlloc, Task: t.ID, Model: t.Req.Model, Alloc: na})
			}
			t.applyRealloc(int64(na), n.Cfg, n.penaltyScale())
			if t.Alloc > 0 {
				running++
			}
		}
		if running == 0 {
			return nil, fmt.Errorf("sim: policy %s stalled all %d tasks", n.Policy.Name(), len(tasks))
		}

		// Next event: earliest completion, next arrival, or quantum.
		next := math.Inf(1)
		for _, t := range tasks {
			if t.Alloc > 0 {
				fin := now + n.Cfg.Seconds(t.RemainingCycles(t.Alloc))
				if fin < next {
					next = fin
				}
			}
		}
		if nextPending < len(pending) && pending[nextPending].Arrival < next {
			next = pending[nextPending].Arrival
		}
		if q := n.Policy.Quantum(); q > 0 && len(tasks) > running {
			if now+q < next {
				next = now + q
			}
		}
		if math.IsInf(next, 1) {
			return nil, fmt.Errorf("sim: no next event with %d tasks active", len(tasks))
		}

		// Advance running tasks to the event time.
		dt := next - now
		out.BusyTime += dt
		dtCycles := int64(math.Ceil(dt * n.Cfg.CyclesPerSecond()))
		if dtCycles < 1 {
			dtCycles = 1
		}
		for _, t := range tasks {
			if t.Alloc > 0 {
				t.advance(dtCycles, n.Params)
			}
		}
		now = next

		// Retire finished tasks.
		kept := tasks[:0]
		for _, t := range tasks {
			if t.Done() && t.PenaltyCycles <= 0 {
				t.Finish = now
				n.Trace.record(Event{Time: now, Kind: EvFinish, Task: t.ID, Model: t.Req.Model})
				out.Finishes[index[t.Req.ID]] = now
				out.Latency[index[t.Req.ID]] = now - t.Req.Arrival
				out.EnergyJ += t.EnergyJ
				out.Preemptions += t.Preemptions
				pp = appendPP(pp, n, t)
			} else {
				kept = append(kept, t)
			}
		}
		tasks = kept
		if err := admit(); err != nil {
			return nil, err
		}
		if len(tasks) == 0 && nextPending >= len(pending) {
			break
		}
	}

	out.Makespan = now - firstArrival
	// Chip leakage and fission-support overhead power over the busy time.
	out.EnergyJ += (energy.LeakageWatts(n.Cfg, n.Params) + energy.OverheadWatts(n.Cfg)) * out.BusyTime
	out.Fairness = fairnessOf(pp, reqs)
	out.MeetsSLA = workload.MeetsSLA(reqs, out.Finishes)
	return out, nil
}

// ppEntry carries one finished task's normalized progress for fairness.
type ppEntry struct {
	id       int
	priority int
	iso      float64
	multi    float64
}

func appendPP(pp []ppEntry, n *Node, t *Task) []ppEntry {
	iso := n.Cfg.Seconds(t.Prog.Table(n.Cfg.NumSubarrays()).TotalCycles)
	return append(pp, ppEntry{
		id:       t.Req.ID,
		priority: t.Req.Priority,
		iso:      iso,
		multi:    t.Finish - t.Req.Arrival,
	})
}

// fairnessOf computes PREMA's fairness metric:
// PP_i = (T_iso / T_multi) / (priority_i / Σ priority), fairness =
// min_{i,j} PP_i / PP_j = min PP / max PP.
func fairnessOf(pp []ppEntry, reqs []workload.Request) float64 {
	if len(pp) < 2 {
		return 1
	}
	var prioSum float64
	for _, r := range reqs {
		prioSum += float64(r.Priority)
	}
	minPP, maxPP := math.Inf(1), 0.0
	for _, e := range pp {
		if e.multi <= 0 {
			continue
		}
		v := (e.iso / e.multi) / (float64(e.priority) / prioSum)
		if v < minPP {
			minPP = v
		}
		if v > maxPP {
			maxPP = v
		}
	}
	if maxPP == 0 || math.IsInf(minPP, 1) {
		return 1
	}
	return minPP / maxPP
}
