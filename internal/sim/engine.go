package sim

import (
	"fmt"
	"math"
	"sort"

	"planaria/internal/arch"
	"planaria/internal/compiler"
	"planaria/internal/energy"
	"planaria/internal/obs"
	"planaria/internal/workload"
)

// configLoadCycles covers the double-buffered configuration-register swap
// and the per-subarray instruction-buffer prefetch on a re-allocation
// (§IV-C); the checkpoint DMA of one tile of intermediate results is
// modeled separately from the allocation's bandwidth share
// (Task.checkpointCycles).
const configLoadCycles = 500

// Outcome aggregates one simulated workload instance.
type Outcome struct {
	// Finishes[i] is the completion time of the i-th request of the
	// slice passed to Run (-1 if unfinished — cannot happen when Run
	// returns nil error, but kept for metrics symmetry).
	Finishes []float64
	// Latency[i] = Finishes[i] − Arrival[i].
	Latency []float64
	// EnergyJ is total energy: per-task dynamic energy + chip leakage
	// over the makespan.
	EnergyJ float64
	// Makespan is the time from first arrival to last completion.
	Makespan float64
	// BusyTime is the total time at least one task was in flight; chip
	// leakage and fission-support overhead power are charged over it
	// (the chip power-gates when idle).
	BusyTime float64
	// Fairness is the PREMA metric min_{i,j} PP_i/PP_j.
	Fairness float64
	// Preemptions counts allocation changes of running tasks.
	Preemptions int
	// MeetsSLA reports the MLPerf server criterion over this instance.
	MeetsSLA bool
}

// Node simulates one accelerator under a scheduling policy.
type Node struct {
	Cfg    arch.Config
	Policy Policy
	// Programs maps model name → compiled program (matching Cfg).
	Programs map[string]*compiler.Program
	// Params are the energy constants.
	Params energy.Params
	// Trace, when non-nil, records the serving timeline (arrivals,
	// allocation changes, preemptions, queue samples, completions).
	Trace *Trace
	// Obs, when non-nil, receives metrics and timeline tracks on
	// simulated time (request lifecycle spans, per-task allocation
	// counters, queue occupancy). Nil costs only untaken branches.
	Obs *obs.Observer
	// PenaltyScale multiplies every re-allocation penalty (tile drain,
	// checkpoint DMA, configuration load). 0 = free preemption, 1 =
	// default; used by the reconfiguration-cost sensitivity ablation.
	// Zero value means 1.
	PenaltyScale float64
}

// penaltyScale returns the effective multiplier.
func (n *Node) penaltyScale() float64 {
	if n.PenaltyScale == 0 {
		return 1
	}
	if n.PenaltyScale < 0 {
		return 0
	}
	return n.PenaltyScale
}

// Run simulates the requests to completion and computes the outcome
// metrics. Isolated times for fairness come from each program's
// full-allocation table.
func (n *Node) Run(reqs []workload.Request) (*Outcome, error) {
	if n.Policy == nil {
		return nil, fmt.Errorf("sim: node has no policy")
	}
	if len(reqs) == 0 {
		return nil, fmt.Errorf("sim: no requests")
	}
	total := n.Cfg.NumSubarrays()

	index := make(map[int]int, len(reqs))
	for i, r := range reqs {
		if _, dup := index[r.ID]; dup {
			return nil, fmt.Errorf("sim: duplicate request ID %d", r.ID)
		}
		index[r.ID] = i
	}

	pending := make([]workload.Request, len(reqs))
	copy(pending, reqs)
	sort.Slice(pending, func(i, j int) bool { return pending[i].Arrival < pending[j].Arrival })

	tasks := make([]*Task, 0, 8) // active
	out := &Outcome{
		Finishes: make([]float64, len(reqs)),
		Latency:  make([]float64, len(reqs)),
	}
	for i := range out.Finishes {
		out.Finishes[i] = -1
	}
	var pp []ppEntry

	// Observability handles: nil registry/tracer yields nil handles whose
	// methods are no-ops, so the probes below cost only untaken branches
	// when observability is off.
	reg := n.Obs.Registry()
	tracer := n.Obs.Tracer()
	cRequests := reg.Counter("sim_requests_total")
	cDone := reg.Counter("sim_completions_total")
	cPreempt := reg.Counter("sim_preemptions_total")
	cSched := reg.Counter("sim_sched_events_total")
	gDepth := reg.Gauge("sim_queue_depth_max")
	lastDepth, lastRunning := -1, -1

	now := pending[0].Arrival
	firstArrival := now
	nextPending := 0
	const maxIter = 10_000_000

	admit := func() error {
		for nextPending < len(pending) && pending[nextPending].Arrival <= now+1e-12 {
			r := pending[nextPending]
			prog, ok := n.Programs[r.Model]
			if !ok {
				return fmt.Errorf("sim: no program for model %q", r.Model)
			}
			tasks = append(tasks, &Task{ID: r.ID, Req: r, Prog: prog, Finish: -1})
			n.Trace.record(Event{Time: r.Arrival, Kind: EvArrival, Task: r.ID, Model: r.Model})
			cRequests.Inc()
			nextPending++
		}
		return nil
	}
	if err := admit(); err != nil {
		return nil, err
	}

	for iter := 0; ; iter++ {
		if iter > maxIter {
			return nil, fmt.Errorf("sim: exceeded %d events (livelock?)", maxIter)
		}
		if len(tasks) == 0 {
			if nextPending >= len(pending) {
				break
			}
			now = pending[nextPending].Arrival
			if err := admit(); err != nil {
				return nil, err
			}
			continue
		}

		// Scheduling event: invoke the policy and apply re-allocations.
		alloc := n.Policy.Allocate(now, tasks, total)
		if err := validateAllocation(alloc, tasks, total); err != nil {
			return nil, err
		}
		cSched.Inc()
		running, inUse := 0, 0
		for _, t := range tasks {
			na := alloc[t.ID]
			if na != t.Alloc {
				n.Trace.record(Event{Time: now, Kind: EvAlloc, Task: t.ID, Model: t.Req.Model, Alloc: na})
				if t.Alloc > 0 && !t.Done() {
					// A running task's allocation changed: a preemption
					// (full, on PREMA's context switch; partial, on a
					// Planaria re-fission).
					n.Trace.record(Event{Time: now, Kind: EvPreempt, Task: t.ID, Model: t.Req.Model, Alloc: na})
					cPreempt.Inc()
					if tracer != nil {
						tracer.Instant("sched", fmt.Sprintf("preempt task %d -> %d", t.ID, na), now,
							obs.Str("model", t.Req.Model), obs.Num("subarrays", float64(na)))
					}
				}
				if tracer != nil {
					tracer.Counter(taskTrack(t.ID), "subarrays", now, float64(na))
				}
			}
			t.applyRealloc(int64(na), n.Cfg, n.penaltyScale())
			if t.Alloc > 0 {
				running++
				inUse += t.Alloc
			}
		}
		if running == 0 {
			return nil, fmt.Errorf("sim: policy %s stalled all %d tasks", n.Policy.Name(), len(tasks))
		}
		if lastDepth != len(tasks) || lastRunning != running {
			lastDepth, lastRunning = len(tasks), running
			n.Trace.record(Event{Time: now, Kind: EvQueue, Depth: lastDepth, Running: lastRunning})
			gDepth.Max(float64(lastDepth))
			tracer.Counter("queue", "inflight", now, float64(lastDepth))
			tracer.Counter("queue", "running", now, float64(lastRunning))
		}
		tracer.Counter("chip", "subarrays_in_use", now, float64(inUse))

		// Next event: earliest completion, next arrival, or quantum.
		next := math.Inf(1)
		for _, t := range tasks {
			if t.Alloc > 0 {
				fin := now + n.Cfg.Seconds(t.RemainingCycles(t.Alloc))
				if fin < next {
					next = fin
				}
			}
		}
		if nextPending < len(pending) && pending[nextPending].Arrival < next {
			next = pending[nextPending].Arrival
		}
		if q := n.Policy.Quantum(); q > 0 && len(tasks) > running {
			if now+q < next {
				next = now + q
			}
		}
		if math.IsInf(next, 1) {
			return nil, fmt.Errorf("sim: no next event with %d tasks active", len(tasks))
		}

		// Advance running tasks to the event time.
		dt := next - now
		out.BusyTime += dt
		dtCycles := int64(math.Ceil(dt * n.Cfg.CyclesPerSecond()))
		if dtCycles < 1 {
			dtCycles = 1
		}
		for _, t := range tasks {
			if t.Alloc > 0 {
				t.advance(dtCycles, n.Params)
			}
		}
		now = next

		// Retire finished tasks.
		kept := tasks[:0]
		for _, t := range tasks {
			if t.Done() && t.PenaltyCycles <= 0 {
				t.Finish = now
				n.Trace.record(Event{Time: now, Kind: EvFinish, Task: t.ID, Model: t.Req.Model})
				lat := now - t.Req.Arrival
				cDone.Inc()
				if reg != nil {
					reg.Histogram("sim_latency_seconds", obs.DurationBuckets(),
						obs.L("model", t.Req.Model)).Observe(lat)
				}
				if tracer != nil {
					tracer.Span(taskTrack(t.ID), fmt.Sprintf("req %d %s", t.ID, t.Req.Model),
						t.Req.Arrival, now,
						obs.Str("model", t.Req.Model),
						obs.Num("priority", float64(t.Req.Priority)),
						obs.Num("latency_ms", lat*1e3),
						obs.Num("deadline_ms", (t.Req.Deadline-t.Req.Arrival)*1e3),
						obs.Num("preemptions", float64(t.Preemptions)))
					tracer.Counter(taskTrack(t.ID), "subarrays", now, 0)
				}
				out.Finishes[index[t.Req.ID]] = now
				out.Latency[index[t.Req.ID]] = lat
				out.EnergyJ += t.EnergyJ
				out.Preemptions += t.Preemptions
				pp = appendPP(pp, n, t)
			} else {
				kept = append(kept, t)
			}
		}
		tasks = kept
		if err := admit(); err != nil {
			return nil, err
		}
		if len(tasks) == 0 && nextPending >= len(pending) {
			break
		}
	}

	out.Makespan = now - firstArrival
	// Chip leakage and fission-support overhead power over the busy time.
	out.EnergyJ += (energy.LeakageWatts(n.Cfg, n.Params) + energy.OverheadWatts(n.Cfg)) * out.BusyTime
	out.Fairness = fairnessOf(pp, reqs)
	out.MeetsSLA = workload.MeetsSLA(reqs, out.Finishes)
	return out, nil
}

// taskTrack names one request's timeline track; zero-padded so Perfetto's
// lexicographic track ordering matches request IDs.
func taskTrack(id int) string {
	return fmt.Sprintf("task %03d", id)
}

// ppEntry carries one finished task's normalized progress for fairness.
type ppEntry struct {
	id       int
	priority int
	iso      float64
	multi    float64
}

func appendPP(pp []ppEntry, n *Node, t *Task) []ppEntry {
	iso := n.Cfg.Seconds(t.Prog.Table(n.Cfg.NumSubarrays()).TotalCycles)
	return append(pp, ppEntry{
		id:       t.Req.ID,
		priority: t.Req.Priority,
		iso:      iso,
		multi:    t.Finish - t.Req.Arrival,
	})
}

// fairnessOf computes PREMA's fairness metric:
// PP_i = (T_iso / T_multi) / (priority_i / Σ priority), fairness =
// min_{i,j} PP_i / PP_j = min PP / max PP.
func fairnessOf(pp []ppEntry, reqs []workload.Request) float64 {
	if len(pp) < 2 {
		return 1
	}
	var prioSum float64
	for _, r := range reqs {
		prioSum += float64(r.Priority)
	}
	minPP, maxPP := math.Inf(1), 0.0
	for _, e := range pp {
		if e.multi <= 0 {
			continue
		}
		v := (e.iso / e.multi) / (float64(e.priority) / prioSum)
		if v < minPP {
			minPP = v
		}
		if v > maxPP {
			maxPP = v
		}
	}
	if maxPP == 0 || math.IsInf(minPP, 1) {
		return 1
	}
	return minPP / maxPP
}
