package sim

// retryHeap is a binary min-heap of killed tasks waiting out their
// backoff, keyed by (re-enqueue instant, task ID). It replaces the
// sorted-slice retry queue whose every insert re-sorted the whole slice:
// pushes and pops are O(log n) and peeks O(1). Because the key is a
// total order (task IDs are unique), heap pop order and full-sort order
// agree, so the replacement is behavior-identical.
//
// The heap is the only dynamic priority structure the engine needs:
// arrivals are a pre-sorted calendar (one sort up front, consumed by
// cursor), and task completions are re-estimated by a min-scan at every
// scheduling event because each re-allocation changes every in-flight
// finish time at once — a heap over completions would be rebuilt per
// event, which is strictly more work than the scan (see DESIGN.md §12).
type retryHeap struct {
	entries []retryEntry
}

// retryBefore orders entries by (at, task ID).
func retryBefore(a, b retryEntry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.t.ID < b.t.ID
}

// Len returns the queue occupancy.
func (h *retryHeap) Len() int { return len(h.entries) }

// peek returns the earliest entry; the caller checks Len() > 0.
func (h *retryHeap) peek() retryEntry { return h.entries[0] }

// push inserts an entry.
func (h *retryHeap) push(e retryEntry) {
	h.entries = append(h.entries, e)
	i := len(h.entries) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !retryBefore(h.entries[i], h.entries[parent]) {
			break
		}
		h.entries[i], h.entries[parent] = h.entries[parent], h.entries[i]
		i = parent
	}
}

// pop removes and returns the earliest entry; the caller checks Len() > 0.
func (h *retryHeap) pop() retryEntry {
	top := h.entries[0]
	last := len(h.entries) - 1
	h.entries[0] = h.entries[last]
	h.entries[last] = retryEntry{} // release the task pointer
	h.entries = h.entries[:last]
	h.siftDown(0)
	return top
}

func (h *retryHeap) siftDown(i int) {
	n := len(h.entries)
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && retryBefore(h.entries[l], h.entries[min]) {
			min = l
		}
		if r < n && retryBefore(h.entries[r], h.entries[min]) {
			min = r
		}
		if min == i {
			return
		}
		h.entries[i], h.entries[min] = h.entries[min], h.entries[i]
		i = min
	}
}
