// Package sim is the discrete-event multi-tenant serving simulator: it
// dispatches workload requests to an accelerator node, invokes a
// scheduling policy on every arrival and completion (§V "overall flow"),
// advances running tasks at tile granularity between events, charges
// re-allocation penalties (tile drain + checkpoint + configuration load),
// and collects the paper's evaluation metrics.
package sim

import (
	"fmt"
	"sort"

	"planaria/internal/arch"
	"planaria/internal/compiler"
	"planaria/internal/energy"
	"planaria/internal/obs"
	"planaria/internal/workload"
)

// Task is one in-flight inference request with its execution progress.
type Task struct {
	ID   int
	Req  workload.Request
	Prog *compiler.Program

	// Progress: current layer and the fraction of it completed. Fractions
	// transfer across allocation changes (the tile counts differ between
	// tables, but the fraction of layer work done is invariant).
	Layer int
	Frac  float64

	// Alloc is the current subarray allocation (0 = queued/stalled).
	Alloc int
	// PenaltyCycles is outstanding reconfiguration work (tile drain,
	// checkpoint DMA, config-register load) that must be paid before the
	// task progresses again.
	PenaltyCycles int64

	Finish      float64 // completion time, or -1 while in flight
	EnergyJ     float64
	Preemptions int

	// iso is the model's isolated full-chip run time, interned from the
	// node's program bindings at admit so fairness accounting needs no
	// per-retirement lookup.
	iso float64
	// pos is the request's position in the caller's input slice (the
	// Outcome index), resolved once at admit so retirement writes
	// straight into Finishes/Latency with no ID-index lookup.
	pos int
	// Attempts counts fault-induced restarts: a kill resets the task's
	// progress (EnergyJ keeps accruing — the wasted work was real) and
	// re-enqueues it after a capped exponential backoff.
	Attempts int
	// phase is the task's current attribution phase (DESIGN.md §14).
	// Only read and written under `if led != nil` guards, so it carries
	// no cost — and may hold stale arena garbage — when the node has no
	// attribution ledger.
	phase obs.Phase
}

// Done reports whether the task has completed every layer.
func (t *Task) Done() bool {
	return t.Layer >= len(t.Prog.Table(1).Layers)
}

// workScale returns the request's work multiplier: fused cluster batches
// carry Work > 1 so one allocation retires the whole batch at the
// amortized cost. Zero (every pre-cluster request) means exactly 1, and
// the scale-1 paths below are bit-identical to the unscaled originals.
func (t *Task) workScale() float64 {
	if t.Req.Work > 0 {
		return t.Req.Work
	}
	return 1
}

// RemainingCycles returns the cycles left if the task ran on alloc
// subarrays from its current progress (plus any outstanding penalty).
func (t *Task) RemainingCycles(alloc int) int64 {
	if t.Done() {
		return t.PenaltyCycles
	}
	tab := t.Prog.Table(alloc)
	lp := &tab.Layers[t.Layer]
	tilesDone := int64(t.Frac * float64(lp.Tiles))
	rem := tab.RemainingCycles(t.Layer, tilesDone)
	if s := t.workScale(); s != 1 {
		rem = int64(float64(rem) * s)
	}
	return rem + t.PenaltyCycles
}

// RemainingCyclesByAlloc writes the cycles left at every candidate
// allocation 1..MaxAlloc into out[a-1] (out is extended if too short)
// and returns out. Each entry is bit-identical to RemainingCycles(a) —
// the elastic policy prices all subarray counts in one pass per task.
func (t *Task) RemainingCyclesByAlloc(out []int64) []int64 {
	if t.Done() {
		n := t.Prog.MaxAlloc()
		if cap(out) < n {
			out = make([]int64, n)
		}
		out = out[:n]
		for i := range out {
			out[i] = t.PenaltyCycles
		}
		return out
	}
	out = t.Prog.RemainingByAlloc(t.Layer, t.Frac, out)
	s := t.workScale()
	for i, rem := range out {
		if s != 1 {
			rem = int64(float64(rem) * s)
		}
		out[i] = rem + t.PenaltyCycles
	}
	return out
}

// TileBoundaryCycles returns the cycles until the task next crosses a
// tile boundary at its current allocation — the natural re-fission
// instant (§V: reconfiguration happens between tiles, so only one tile
// of intermediate state ever drains). Outstanding penalty work is paid
// first; a stalled task has no boundary and returns 0.
func (t *Task) TileBoundaryCycles() int64 {
	if t.Alloc <= 0 {
		return 0
	}
	if t.Done() {
		return t.PenaltyCycles
	}
	tab := t.Prog.Table(t.Alloc)
	lp := &tab.Layers[t.Layer]
	if lp.Tiles <= 0 {
		return t.PenaltyCycles + 1
	}
	tiles := float64(lp.Tiles)
	boundary := float64(int64(t.Frac*tiles)+1) / tiles
	if boundary > 1 {
		boundary = 1
	}
	layerCycles := float64(lp.Cycles)
	if s := t.workScale(); s != 1 {
		layerCycles *= s
	}
	rem := int64((boundary - t.Frac) * layerCycles)
	if rem < 1 {
		rem = 1
	}
	return rem + t.PenaltyCycles
}

// Slack returns the time remaining until the task's deadline.
func (t *Task) Slack(now float64) float64 {
	return t.Req.Deadline - now
}

// advance consumes up to dtCycles of work at the task's current
// allocation and returns the cycles actually consumed (less than dtCycles
// only if the task finishes first).
func (t *Task) advance(dtCycles int64, params energy.Params) int64 {
	if t.Alloc <= 0 || dtCycles <= 0 {
		return 0
	}
	consumed := int64(0)
	if t.PenaltyCycles > 0 {
		pay := min64(t.PenaltyCycles, dtCycles)
		t.PenaltyCycles -= pay
		consumed += pay
	}
	tab := t.Prog.Table(t.Alloc)
	scale := t.workScale()
	for consumed < dtCycles && !t.Done() {
		lp := &tab.Layers[t.Layer]
		// A scaled layer stretches uniformly: cycles and dynamic energy
		// both multiply by the work factor, tile structure is unchanged.
		layerCycles := float64(lp.Cycles)
		layerJoules := lp.Acct.Joules(params)
		if scale != 1 {
			layerCycles *= scale
			layerJoules *= scale
		}
		remFrac := 1 - t.Frac
		remCycles := int64(remFrac * layerCycles)
		if remCycles <= 0 {
			remCycles = 1
		}
		budget := dtCycles - consumed
		if budget >= remCycles {
			// Finish this layer.
			consumed += remCycles
			t.EnergyJ += remFrac * layerJoules
			t.Layer++
			t.Frac = 0
		} else {
			df := float64(budget) / layerCycles
			t.Frac += df
			if t.Frac > 1 {
				t.Frac = 1
			}
			t.EnergyJ += df * layerJoules
			consumed += budget
		}
	}
	return consumed
}

// applyRealloc switches the task to a new allocation, charging the
// preemption cost when it was actively running: the current tile drains
// (progress rounds up to the tile boundary), one tile of intermediate
// results checkpoints through DRAM (store now, reload when the task
// resumes), and the new configuration and instructions load (§V
// "tile-based scheduling to minimize re-allocation overheads").
func (t *Task) applyRealloc(newAlloc int64, cfg *arch.Config, scale float64) {
	if t.Done() {
		t.Alloc = int(newAlloc)
		return
	}
	old := t.Alloc
	if old == int(newAlloc) {
		return
	}
	if old > 0 {
		tab := t.Prog.Table(old)
		lp := &tab.Layers[t.Layer]
		var penalty int64
		if lp.Tiles > 0 && t.Frac > 0 && t.Frac < 1 {
			// Round progress up to the next tile boundary; the drain time
			// is charged as penalty.
			tiles := float64(lp.Tiles)
			boundary := float64(int64(t.Frac*tiles)+1) / tiles
			if boundary > 1 {
				boundary = 1
			}
			t.Frac = boundary
			penalty += lp.CyclesPerTile
		}
		penalty += t.checkpointCycles(cfg, old) + configLoadCycles
		t.PenaltyCycles += int64(float64(penalty) * scale)
		t.Preemptions++
	}
	t.Alloc = int(newAlloc)
}

// checkpointCycles models storing and reloading one tile of intermediate
// results through DRAM with the old allocation's bandwidth share — the
// paper's observation that tile granularity keeps this to a single tile.
func (t *Task) checkpointCycles(cfg *arch.Config, oldAlloc int) int64 {
	if t.Done() {
		return 0
	}
	tab := t.Prog.Table(oldAlloc)
	lp := &tab.Layers[t.Layer]
	if lp.Tiles <= 0 {
		return 0
	}
	l := &t.Prog.Net.Layers[lp.LayerIdx]
	tileBytes := l.OutputElems() / lp.Tiles
	if tileBytes < 1 {
		tileBytes = 1
	}
	bw := cfg.BytesPerCycle() * float64(oldAlloc) / float64(cfg.NumSubarrays())
	if bw <= 0 {
		bw = 1
	}
	// Store + reload.
	return int64(2 * float64(tileBytes) / bw)
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// Policy decides subarray allocations. Allocate is invoked at every
// scheduling event (arrival or completion, plus the policy's quantum if
// nonzero) with the tasks currently dispatched and unfinished; it returns
// the new allocation per task ID. Tasks omitted from the map are stalled
// (allocation 0). The sum of allocations must not exceed total.
type Policy interface {
	Name() string
	Allocate(now float64, tasks []*Task, total int) map[int]int
	// Quantum returns the re-scheduling period while tasks are waiting
	// (0 = event-driven only).
	Quantum() float64
}

// Refissioner is an optional extension of Policy for elastic runtime
// re-fission (DESIGN.md §16). When a policy implements it and
// RefissionActive reports true, the engine adds a scheduling wakeup at
// NextRefission's time: the policy is re-invoked there even though no
// arrival, completion, quantum, or fault fires, letting it re-split the
// chip at a running task's tile boundary. NextRefission returns the
// absolute sim time of the next useful re-fission point, or +Inf when
// the current allocation needs no revisit; it must be strictly after
// now, deterministic, and side-effect free. RefissionActive is
// consulted once per Run, so a disabled policy costs nothing on the
// event loop.
type Refissioner interface {
	RefissionActive() bool
	NextRefission(now float64, tasks []*Task, total int) float64
}

// SliceAllocator is an optional extension of Policy for the engine's
// zero-allocation scheduling fast path. AllocateInto writes tasks[i]'s
// new allocation into dst[i] (dst arrives zeroed with len(dst) ==
// len(tasks)); a slot left at zero stalls that task, exactly like a task
// omitted from Allocate's map. Implementations must produce the same
// allocations as their Allocate method and may keep reusable scratch on
// the policy value — the engine invokes the policy from a single
// goroutine.
type SliceAllocator interface {
	AllocateInto(now float64, tasks []*Task, total int, dst []int)
}

// validateAllocationSlice enforces the policy contract on the slice fast
// path without allocating. Unknown-task violations cannot occur (slots
// are positional), so only the range and sum checks remain; the first
// violation is reported in task-position order, which is deterministic
// run-to-run.
func validateAllocationSlice(alloc []int, tasks []*Task, total int) error {
	sum := 0
	for i, a := range alloc {
		if a < 0 || a > total {
			return fmt.Errorf("sim: allocation %d for task %d outside [0,%d]", a, tasks[i].ID, total)
		}
		sum += a
	}
	if sum > total {
		return fmt.Errorf("sim: policy over-allocated %d of %d subarrays", sum, total)
	}
	return nil
}

// validateAllocation enforces the policy contract.
func validateAllocation(alloc map[int]int, tasks []*Task, total int) error {
	sum := 0
	ids := make(map[int]bool, len(tasks))
	for _, t := range tasks {
		ids[t.ID] = true
	}
	// Iterate task IDs in sorted order so the first validation error is
	// the same run-to-run (map order would pick an arbitrary one).
	allocated := make([]int, 0, len(alloc))
	for id := range alloc {
		allocated = append(allocated, id)
	}
	sort.Ints(allocated)
	for _, id := range allocated {
		a := alloc[id]
		if !ids[id] {
			return fmt.Errorf("sim: policy allocated to unknown task %d", id)
		}
		if a < 0 || a > total {
			return fmt.Errorf("sim: allocation %d for task %d outside [0,%d]", a, id, total)
		}
		sum += a
	}
	if sum > total {
		return fmt.Errorf("sim: policy over-allocated %d of %d subarrays", sum, total)
	}
	return nil
}
