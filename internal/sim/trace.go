package sim

import (
	"fmt"
	"sort"
	"strings"

	"planaria/internal/simtime"
)

// EventKind classifies trace events.
type EventKind int

const (
	// EvArrival marks a request joining the node's queue.
	EvArrival EventKind = iota
	// EvAlloc marks an allocation change decided by the scheduler
	// (Alloc = new subarray count; 0 = stalled).
	EvAlloc
	// EvFinish marks a request completing.
	EvFinish
	// EvPreempt marks a running task losing or changing its allocation
	// while unfinished (Alloc = new subarray count; 0 = fully preempted).
	// Both engines emit it: Planaria on spatial re-fission, PREMA on a
	// temporal context switch.
	EvPreempt
	// EvQueue samples the scheduler's queue occupancy after a scheduling
	// event: Depth dispatched-but-unfinished tasks, of which Running hold
	// a non-zero allocation. Recorded only when the pair changes.
	EvQueue
	// EvKill marks a running task losing its progress to an injected
	// fault (Attempt = how many times this request has now been killed).
	EvKill
	// EvRetry marks a killed task rejoining the queue after its backoff
	// (Attempt = the attempt number it resumes at).
	EvRetry
	// EvShed marks a request declined by admission control — its
	// estimated completion misses the deadline at the chip's current
	// (possibly degraded) capacity, or its retry budget is exhausted.
	EvShed
	// EvReject marks a request for a model the node has no program for
	// (non-strict mode; strict mode fails the whole run instead).
	EvReject
	// EvFault marks a fault transition applied to the chip: Unit is the
	// faulted unit index, Up distinguishes repair from landing, and Model
	// carries the fault kind name ("pe", "subarray", "link").
	EvFault
	// EvBatch marks a cluster dynamic-batching window closing: Task is
	// the batch leader's request ID, Alloc carries the batch size, Model
	// the batched model. Only cluster front-door traces contain it; chip
	// traces never do.
	EvBatch
	// EvDispatch marks the cluster balancer assigning a request (or batch
	// leader) to a chip: Unit is the chip index. Only cluster front-door
	// traces contain it.
	EvDispatch
	// EvScaleUp marks the cluster autoscaler booting a chip slot: Unit is
	// the slot index; the slot becomes routable after its boot latency.
	// Fleet events are not bound to a task. Only cluster front-door
	// traces contain the four autoscaler kinds.
	EvScaleUp
	// EvScaleDown marks a drained chip slot powering off (its in-flight
	// work finished): Unit is the slot index.
	EvScaleDown
	// EvDrain marks a chip slot beginning a graceful drain — it stops
	// admitting new work: Unit is the slot index.
	EvDrain
	// EvMigrate marks a dispatch group pulled off a draining chip and
	// re-routed: Task is the batch leader's request ID, Depth the source
	// chip, Unit the destination chip.
	EvMigrate
	// EvRefission marks an elastic re-fission: the scheduler resized a
	// task's allocation at a tile boundary — outside any arrival,
	// completion, quantum, or fault event — to absorb an arrival or grow
	// a starved task (Alloc = new subarray count). Emitted instead of
	// EvPreempt at re-fission instants; only elastic policies produce it.
	EvRefission
)

// String names the event kind.
func (k EventKind) String() string {
	switch k {
	case EvArrival:
		return "arrive"
	case EvAlloc:
		return "alloc"
	case EvFinish:
		return "finish"
	case EvPreempt:
		return "preempt"
	case EvQueue:
		return "queue"
	case EvKill:
		return "kill"
	case EvRetry:
		return "retry"
	case EvShed:
		return "shed"
	case EvReject:
		return "reject"
	case EvFault:
		return "fault"
	case EvBatch:
		return "batch"
	case EvDispatch:
		return "dispatch"
	case EvScaleUp:
		return "scale-up"
	case EvScaleDown:
		return "scale-down"
	case EvDrain:
		return "drain"
	case EvMigrate:
		return "migrate"
	case EvRefission:
		return "refission"
	default:
		return fmt.Sprintf("event(%d)", int(k))
	}
}

// Event is one timeline entry of a traced serving run.
type Event struct {
	Time  float64
	Kind  EventKind
	Task  int // request ID (unused for EvQueue)
	Model string
	Alloc int // for EvAlloc and EvPreempt
	// Depth and Running carry EvQueue's occupancy sample.
	Depth   int
	Running int
	// Unit and Up carry EvFault's transition: the faulted unit index
	// (subarray, PE-owning subarray, or pod for link faults) and whether
	// the transition is a repair.
	Unit int
	Up   bool
	// Attempt carries EvKill/EvRetry's fault-restart count.
	Attempt int
}

// Trace is a recorded serving timeline.
type Trace struct {
	Events []Event
}

// record appends an event (nil-safe: tracing is optional). Appending
// within a Reserved buffer's capacity allocates nothing — the engine
// reserves an arrival-count-based estimate up front so steady-state
// recording stays off the allocator.
func (tr *Trace) record(e Event) {
	if tr == nil {
		return
	}
	tr.Events = append(tr.Events, e)
}

// Reserve grows the trace's capacity so at least n more events append
// without reallocating. Nil-safe no-op, like record.
func (tr *Trace) Reserve(n int) {
	if tr == nil || n <= cap(tr.Events)-len(tr.Events) {
		return
	}
	grown := make([]Event, len(tr.Events), len(tr.Events)+n)
	copy(grown, tr.Events)
	tr.Events = grown
}

// TasksSeen returns the distinct request IDs in the trace.
func (tr *Trace) TasksSeen() []int {
	seen := map[int]bool{}
	for _, e := range tr.Events {
		switch e.Kind {
		case EvQueue, EvFault, EvScaleUp, EvScaleDown, EvDrain:
			continue // samples, faults, and fleet transitions are not bound to a task
		}
		seen[e.Task] = true
	}
	ids := make([]int, 0, len(seen))
	for id := range seen {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// AllocTimeline returns the (time, alloc) steps of one task.
func (tr *Trace) AllocTimeline(task int) []Event {
	var out []Event
	for _, e := range tr.Events {
		if e.Task == task && e.Kind == EvAlloc {
			out = append(out, e)
		}
	}
	return out
}

// Validate checks trace sanity: every task arrives before any other
// event, finishes at most once, times are non-decreasing, and no task
// receives an allocation after finishing.
func (tr *Trace) Validate() error {
	prev := -1.0
	arrived := map[int]bool{}
	finished := map[int]bool{}
	for i, e := range tr.Events {
		if simtime.After(prev, e.Time) {
			return fmt.Errorf("sim: trace time went backwards at event %d", i)
		}
		prev = e.Time
		switch e.Kind {
		case EvArrival:
			if arrived[e.Task] {
				return fmt.Errorf("sim: task %d arrived twice", e.Task)
			}
			arrived[e.Task] = true
		case EvAlloc, EvPreempt, EvRefission:
			if !arrived[e.Task] {
				return fmt.Errorf("sim: task %d allocated before arrival", e.Task)
			}
			if finished[e.Task] {
				return fmt.Errorf("sim: task %d allocated after finishing", e.Task)
			}
		case EvQueue:
			if e.Depth < e.Running || e.Running < 0 {
				return fmt.Errorf("sim: queue sample depth=%d running=%d at event %d", e.Depth, e.Running, i)
			}
		case EvKill, EvRetry:
			if !arrived[e.Task] {
				return fmt.Errorf("sim: task %d %s before arrival", e.Task, e.Kind)
			}
			if finished[e.Task] {
				return fmt.Errorf("sim: task %d %s after finishing", e.Task, e.Kind)
			}
		case EvShed, EvReject:
			if !arrived[e.Task] {
				return fmt.Errorf("sim: task %d %s before arrival", e.Task, e.Kind)
			}
			if finished[e.Task] {
				return fmt.Errorf("sim: task %d %s after finishing", e.Task, e.Kind)
			}
			// Shedding and rejection are terminal: no later allocation,
			// retry, or completion may reference the task.
			finished[e.Task] = true
		case EvFault, EvScaleUp, EvScaleDown, EvDrain:
			// Not bound to a task; nothing beyond time monotonicity.
		case EvMigrate:
			if !arrived[e.Task] {
				return fmt.Errorf("sim: task %d migrated before arrival", e.Task)
			}
			if finished[e.Task] {
				return fmt.Errorf("sim: task %d migrated after finishing", e.Task)
			}
		case EvBatch, EvDispatch:
			if !arrived[e.Task] {
				return fmt.Errorf("sim: task %d %s before arrival", e.Task, e.Kind)
			}
			if finished[e.Task] {
				return fmt.Errorf("sim: task %d %s after finishing", e.Task, e.Kind)
			}
		case EvFinish:
			if !arrived[e.Task] {
				return fmt.Errorf("sim: task %d finished before arrival", e.Task)
			}
			if finished[e.Task] {
				return fmt.Errorf("sim: task %d finished twice", e.Task)
			}
			finished[e.Task] = true
		}
	}
	return nil
}

// String renders the timeline, one event per line.
func (tr *Trace) String() string {
	var b strings.Builder
	for _, e := range tr.Events {
		switch e.Kind {
		case EvAlloc, EvPreempt, EvRefission:
			fmt.Fprintf(&b, "%9.3f ms  %-7s task %-3d %-16s -> %d subarrays\n",
				e.Time*1e3, e.Kind, e.Task, e.Model, e.Alloc)
		case EvQueue:
			fmt.Fprintf(&b, "%9.3f ms  %-7s depth %d running %d\n",
				e.Time*1e3, e.Kind, e.Depth, e.Running)
		case EvFault:
			dir := "down"
			if e.Up {
				dir = "up"
			}
			fmt.Fprintf(&b, "%9.3f ms  %-7s %s unit %d %s\n",
				e.Time*1e3, e.Kind, e.Model, e.Unit, dir)
		case EvKill, EvRetry:
			fmt.Fprintf(&b, "%9.3f ms  %-7s task %-3d %-16s attempt %d\n",
				e.Time*1e3, e.Kind, e.Task, e.Model, e.Attempt)
		case EvBatch:
			fmt.Fprintf(&b, "%9.3f ms  %-7s task %-3d %-16s size %d\n",
				e.Time*1e3, e.Kind, e.Task, e.Model, e.Alloc)
		case EvDispatch:
			fmt.Fprintf(&b, "%9.3f ms  %-7s task %-3d %-16s -> chip %d\n",
				e.Time*1e3, e.Kind, e.Task, e.Model, e.Unit)
		case EvScaleUp, EvScaleDown, EvDrain:
			fmt.Fprintf(&b, "%9.3f ms  %-10s chip %d\n", e.Time*1e3, e.Kind, e.Unit)
		case EvMigrate:
			fmt.Fprintf(&b, "%9.3f ms  %-7s task %-3d %-16s chip %d -> chip %d\n",
				e.Time*1e3, e.Kind, e.Task, e.Model, e.Depth, e.Unit)
		default:
			fmt.Fprintf(&b, "%9.3f ms  %-7s task %-3d %-16s\n",
				e.Time*1e3, e.Kind, e.Task, e.Model)
		}
	}
	return b.String()
}
