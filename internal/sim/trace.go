package sim

import (
	"fmt"
	"sort"
	"strings"
)

// EventKind classifies trace events.
type EventKind int

const (
	// EvArrival marks a request joining the node's queue.
	EvArrival EventKind = iota
	// EvAlloc marks an allocation change decided by the scheduler
	// (Alloc = new subarray count; 0 = stalled).
	EvAlloc
	// EvFinish marks a request completing.
	EvFinish
	// EvPreempt marks a running task losing or changing its allocation
	// while unfinished (Alloc = new subarray count; 0 = fully preempted).
	// Both engines emit it: Planaria on spatial re-fission, PREMA on a
	// temporal context switch.
	EvPreempt
	// EvQueue samples the scheduler's queue occupancy after a scheduling
	// event: Depth dispatched-but-unfinished tasks, of which Running hold
	// a non-zero allocation. Recorded only when the pair changes.
	EvQueue
)

// String names the event kind.
func (k EventKind) String() string {
	switch k {
	case EvArrival:
		return "arrive"
	case EvAlloc:
		return "alloc"
	case EvFinish:
		return "finish"
	case EvPreempt:
		return "preempt"
	case EvQueue:
		return "queue"
	default:
		return fmt.Sprintf("event(%d)", int(k))
	}
}

// Event is one timeline entry of a traced serving run.
type Event struct {
	Time  float64
	Kind  EventKind
	Task  int // request ID (unused for EvQueue)
	Model string
	Alloc int // for EvAlloc and EvPreempt
	// Depth and Running carry EvQueue's occupancy sample.
	Depth   int
	Running int
}

// Trace is a recorded serving timeline.
type Trace struct {
	Events []Event
}

// record appends an event (nil-safe: tracing is optional).
func (tr *Trace) record(e Event) {
	if tr == nil {
		return
	}
	tr.Events = append(tr.Events, e)
}

// TasksSeen returns the distinct request IDs in the trace.
func (tr *Trace) TasksSeen() []int {
	seen := map[int]bool{}
	for _, e := range tr.Events {
		if e.Kind == EvQueue {
			continue // queue samples are not bound to a task
		}
		seen[e.Task] = true
	}
	ids := make([]int, 0, len(seen))
	for id := range seen {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// AllocTimeline returns the (time, alloc) steps of one task.
func (tr *Trace) AllocTimeline(task int) []Event {
	var out []Event
	for _, e := range tr.Events {
		if e.Task == task && e.Kind == EvAlloc {
			out = append(out, e)
		}
	}
	return out
}

// Validate checks trace sanity: every task arrives before any other
// event, finishes at most once, times are non-decreasing, and no task
// receives an allocation after finishing.
func (tr *Trace) Validate() error {
	prev := -1.0
	arrived := map[int]bool{}
	finished := map[int]bool{}
	for i, e := range tr.Events {
		if e.Time < prev-1e-12 {
			return fmt.Errorf("sim: trace time went backwards at event %d", i)
		}
		prev = e.Time
		switch e.Kind {
		case EvArrival:
			if arrived[e.Task] {
				return fmt.Errorf("sim: task %d arrived twice", e.Task)
			}
			arrived[e.Task] = true
		case EvAlloc, EvPreempt:
			if !arrived[e.Task] {
				return fmt.Errorf("sim: task %d allocated before arrival", e.Task)
			}
			if finished[e.Task] {
				return fmt.Errorf("sim: task %d allocated after finishing", e.Task)
			}
		case EvQueue:
			if e.Depth < e.Running || e.Running < 0 {
				return fmt.Errorf("sim: queue sample depth=%d running=%d at event %d", e.Depth, e.Running, i)
			}
		case EvFinish:
			if !arrived[e.Task] {
				return fmt.Errorf("sim: task %d finished before arrival", e.Task)
			}
			if finished[e.Task] {
				return fmt.Errorf("sim: task %d finished twice", e.Task)
			}
			finished[e.Task] = true
		}
	}
	return nil
}

// String renders the timeline, one event per line.
func (tr *Trace) String() string {
	var b strings.Builder
	for _, e := range tr.Events {
		switch e.Kind {
		case EvAlloc, EvPreempt:
			fmt.Fprintf(&b, "%9.3f ms  %-7s task %-3d %-16s -> %d subarrays\n",
				e.Time*1e3, e.Kind, e.Task, e.Model, e.Alloc)
		case EvQueue:
			fmt.Fprintf(&b, "%9.3f ms  %-7s depth %d running %d\n",
				e.Time*1e3, e.Kind, e.Depth, e.Running)
		default:
			fmt.Fprintf(&b, "%9.3f ms  %-7s task %-3d %-16s\n",
				e.Time*1e3, e.Kind, e.Task, e.Model)
		}
	}
	return b.String()
}
