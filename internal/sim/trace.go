package sim

import (
	"fmt"
	"sort"
	"strings"
)

// EventKind classifies trace events.
type EventKind int

const (
	// EvArrival marks a request joining the node's queue.
	EvArrival EventKind = iota
	// EvAlloc marks an allocation change decided by the scheduler
	// (Alloc = new subarray count; 0 = stalled).
	EvAlloc
	// EvFinish marks a request completing.
	EvFinish
)

// String names the event kind.
func (k EventKind) String() string {
	switch k {
	case EvArrival:
		return "arrive"
	case EvAlloc:
		return "alloc"
	case EvFinish:
		return "finish"
	default:
		return fmt.Sprintf("event(%d)", int(k))
	}
}

// Event is one timeline entry of a traced serving run.
type Event struct {
	Time  float64
	Kind  EventKind
	Task  int // request ID
	Model string
	Alloc int // for EvAlloc
}

// Trace is a recorded serving timeline.
type Trace struct {
	Events []Event
}

// record appends an event (nil-safe: tracing is optional).
func (tr *Trace) record(e Event) {
	if tr == nil {
		return
	}
	tr.Events = append(tr.Events, e)
}

// TasksSeen returns the distinct request IDs in the trace.
func (tr *Trace) TasksSeen() []int {
	seen := map[int]bool{}
	for _, e := range tr.Events {
		seen[e.Task] = true
	}
	ids := make([]int, 0, len(seen))
	for id := range seen {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// AllocTimeline returns the (time, alloc) steps of one task.
func (tr *Trace) AllocTimeline(task int) []Event {
	var out []Event
	for _, e := range tr.Events {
		if e.Task == task && e.Kind == EvAlloc {
			out = append(out, e)
		}
	}
	return out
}

// Validate checks trace sanity: every task arrives before any other
// event, finishes at most once, times are non-decreasing, and no task
// receives an allocation after finishing.
func (tr *Trace) Validate() error {
	prev := -1.0
	arrived := map[int]bool{}
	finished := map[int]bool{}
	for i, e := range tr.Events {
		if e.Time < prev-1e-12 {
			return fmt.Errorf("sim: trace time went backwards at event %d", i)
		}
		prev = e.Time
		switch e.Kind {
		case EvArrival:
			if arrived[e.Task] {
				return fmt.Errorf("sim: task %d arrived twice", e.Task)
			}
			arrived[e.Task] = true
		case EvAlloc:
			if !arrived[e.Task] {
				return fmt.Errorf("sim: task %d allocated before arrival", e.Task)
			}
			if finished[e.Task] {
				return fmt.Errorf("sim: task %d allocated after finishing", e.Task)
			}
		case EvFinish:
			if !arrived[e.Task] {
				return fmt.Errorf("sim: task %d finished before arrival", e.Task)
			}
			if finished[e.Task] {
				return fmt.Errorf("sim: task %d finished twice", e.Task)
			}
			finished[e.Task] = true
		}
	}
	return nil
}

// String renders the timeline, one event per line.
func (tr *Trace) String() string {
	var b strings.Builder
	for _, e := range tr.Events {
		switch e.Kind {
		case EvAlloc:
			fmt.Fprintf(&b, "%9.3f ms  %-6s task %-3d %-16s -> %d subarrays\n",
				e.Time*1e3, e.Kind, e.Task, e.Model, e.Alloc)
		default:
			fmt.Fprintf(&b, "%9.3f ms  %-6s task %-3d %-16s\n",
				e.Time*1e3, e.Kind, e.Task, e.Model)
		}
	}
	return b.String()
}
