package sim

import (
	"math"
	"reflect"
	"testing"

	"planaria/internal/fault"
	"planaria/internal/workload"
)

// injectorOf builds an injector over the Planaria 16-subarray geometry.
func injectorOf(t *testing.T, events []fault.Event) *fault.Injector {
	t.Helper()
	in, err := fault.NewInjector(&fault.Schedule{Units: 16, Pods: 4, Events: events})
	if err != nil {
		t.Fatal(err)
	}
	return in
}

// TestFaultKillAndRetry injects a permanent subarray fault mid-run under
// fission masking: the running task is killed at the fault instant,
// retries after its backoff, and still finishes on the surviving
// subarrays.
func TestFaultKillAndRetry(t *testing.T) {
	node, prog := testNode(t, fullPolicy{})
	iso := node.Cfg.Seconds(prog.Table(16).TotalCycles)
	node.Trace = &Trace{}
	// Strike at half the isolated run time so the task is mid-flight.
	strike := iso / 2
	node.Faults = injectorOf(t, []fault.Event{{Time: strike, Kind: fault.KindSubarray, Unit: 0}})
	node.FaultMode = FaultFission

	out, err := node.Run([]workload.Request{req(0, 0, 1, 5)})
	if err != nil {
		t.Fatal(err)
	}
	if out.Killed != 1 || out.Retries != 1 {
		t.Fatalf("Killed=%d Retries=%d, want 1/1", out.Killed, out.Retries)
	}
	if out.FaultEvents != 1 {
		t.Fatalf("FaultEvents = %d", out.FaultEvents)
	}
	if out.Finishes[0] < 0 {
		t.Fatal("killed task never finished after retry")
	}
	// Progress restarted from scratch after the strike plus backoff, on
	// 15 of 16 subarrays.
	restartIso := node.Cfg.Seconds(prog.Table(15).TotalCycles)
	if out.Finishes[0] < strike+restartIso {
		t.Fatalf("finish %.3g earlier than strike %.3g + restarted run %.3g", out.Finishes[0], strike, restartIso)
	}
	var kills, retries int
	for _, e := range node.Trace.Events {
		switch e.Kind {
		case EvKill:
			kills++
			if e.Attempt != 1 {
				t.Errorf("kill attempt = %d", e.Attempt)
			}
		case EvRetry:
			retries++
		}
	}
	if kills != 1 || retries != 1 {
		t.Fatalf("trace kills=%d retries=%d", kills, retries)
	}
	if err := node.Trace.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestFaultOnFreeSubarrayKillsNobody: under fission, a fault landing on a
// subarray no task owns only shrinks capacity.
func TestFaultOnFreeSubarrayKillsNobody(t *testing.T) {
	node, _ := testNode(t, halfPolicy{})
	// halfPolicy allocates 8 of 16 subarrays (the low prefix of the alive
	// set under the contiguous-placement model); unit 15 stays free.
	node.Faults = injectorOf(t, []fault.Event{{Time: 1e-6, Kind: fault.KindSubarray, Unit: 15}})
	node.FaultMode = FaultFission
	out, err := node.Run([]workload.Request{req(0, 0, 1, 5)})
	if err != nil {
		t.Fatal(err)
	}
	if out.Killed != 0 {
		t.Fatalf("free-subarray fault killed %d tasks", out.Killed)
	}
	if out.Finishes[0] < 0 {
		t.Fatal("task never finished")
	}
}

// halfPolicy allocates half the chip to the first task only.
type halfPolicy struct{}

func (halfPolicy) Name() string     { return "test-half" }
func (halfPolicy) Quantum() float64 { return 0 }
func (halfPolicy) Allocate(now float64, tasks []*Task, total int) map[int]int {
	if len(tasks) == 0 {
		return nil
	}
	h := total / 2
	if h < 1 {
		h = 1
	}
	return map[int]int{tasks[0].ID: h}
}

// TestDerateModeKillsRunningTask: the monolithic baseline cannot mask,
// so the same fault kills whoever is running and derates throughput.
func TestDerateModeKillsRunningTask(t *testing.T) {
	node, prog := testNode(t, fullPolicy{})
	iso := node.Cfg.Seconds(prog.Table(16).TotalCycles)
	node.Faults = injectorOf(t, []fault.Event{{Time: iso / 2, Kind: fault.KindSubarray, Unit: 15}})
	node.FaultMode = FaultDerate
	out, err := node.Run([]workload.Request{req(0, 0, 1, 5)})
	if err != nil {
		t.Fatal(err)
	}
	if out.Killed != 1 {
		t.Fatalf("derate-mode fault killed %d tasks, want 1", out.Killed)
	}
	if out.Finishes[0] < 0 {
		t.Fatal("task never finished")
	}
	// Restarted work runs at 15/16 speed: strictly slower than a clean
	// restart at full rate.
	if out.Finishes[0] <= iso/2+iso {
		t.Fatalf("finish %.3g not derated (strike %.3g + full-rate rerun %.3g)", out.Finishes[0], iso/2, iso)
	}
}

// TestRetryBudgetExhaustionSheds: repeated strikes on the same task
// exhaust MaxAttempts and the request is dropped as shed.
func TestRetryBudgetExhaustionSheds(t *testing.T) {
	node, prog := testNode(t, fullPolicy{})
	iso := node.Cfg.Seconds(prog.Table(16).TotalCycles)
	// Transient faults recur long before the task can finish; repairs
	// keep capacity available so the task keeps retrying.
	events := []fault.Event{}
	for i := 0; i < 5; i++ {
		events = append(events, fault.Event{
			Time: iso / 4 * float64(i+1), Kind: fault.KindSubarray, Unit: i, Duration: iso / 16,
		})
	}
	node.Faults = injectorOf(t, events)
	node.FaultMode = FaultFission
	node.MaxAttempts = 2
	// Backoff far below the strike period so retries land back in the
	// line of fire.
	node.RetryBase = iso / 100
	node.RetryCap = iso / 50
	node.Trace = &Trace{}
	out, err := node.Run([]workload.Request{req(0, 0, 1, 5)})
	if err != nil {
		t.Fatal(err)
	}
	if out.Killed < 3 {
		t.Fatalf("Killed = %d, want ≥ 3 (budget of 2 retries)", out.Killed)
	}
	if out.Shed != 1 {
		t.Fatalf("Shed = %d, want 1 (dropped after MaxAttempts)", out.Shed)
	}
	if out.Finishes[0] != -1 {
		t.Fatalf("dropped task finished at %g", out.Finishes[0])
	}
	if err := node.Trace.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestShedDoomedDeclinesHopelessRequest: with the chip degraded, a
// request whose isolated run cannot meet its deadline is shed on arrival.
func TestShedDoomedDeclinesHopelessRequest(t *testing.T) {
	node, prog := testNode(t, fullPolicy{})
	iso := node.Cfg.Seconds(prog.Table(16).TotalCycles)
	node.Shed = ShedDoomed
	node.Trace = &Trace{}
	reqs := []workload.Request{
		req(0, 0, iso*4, 5),          // generous deadline: admitted
		req(1, 1e-6, iso*0.01, 5),    // hopeless deadline: shed
	}
	out, err := node.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if out.Shed != 1 {
		t.Fatalf("Shed = %d, want 1", out.Shed)
	}
	if out.Finishes[1] != -1 {
		t.Fatalf("shed request finished at %g", out.Finishes[1])
	}
	if out.Finishes[0] < 0 {
		t.Fatal("admitted request never finished")
	}
	if err := node.Trace.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestShedPriorityPrefersImportantRequests: under identical hopeless-ish
// load, the low-priority request sheds while the high-priority one is
// admitted.
func TestShedPriorityPrefersImportantRequests(t *testing.T) {
	node, prog := testNode(t, fullPolicy{})
	iso := node.Cfg.Seconds(prog.Table(16).TotalCycles)
	node.Shed = ShedPriority
	// With one task in flight the load-inflated estimate is
	// 2×iso/priority against a 1.5×iso deadline: priority 1 misses
	// (2×iso > 1.5×iso) and sheds, priority 10 meets (0.2×iso) and is
	// admitted. ShedDoomed would admit both — the bare isolated estimate
	// of 1×iso fits the deadline.
	reqs := []workload.Request{
		req(0, 0, iso*10, 5),
		req(1, 1e-6, iso*1.5, 1),
		req(2, 2e-6, iso*1.5, 10),
	}
	out, err := node.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if out.Finishes[2] < 0 {
		t.Fatal("high-priority request was not admitted")
	}
	if out.Shed == 0 {
		t.Fatal("no request shed under priority shedding")
	}
	if out.Finishes[1] != -1 {
		t.Fatalf("low-priority request finished at %g despite shedding", out.Finishes[1])
	}
}

// TestFaultRunDeterministic: two runs over the same schedule and seed
// produce identical outcomes and traces.
func TestFaultRunDeterministic(t *testing.T) {
	run := func() (*Outcome, *Trace) {
		node, prog := testNode(t, fullPolicy{})
		iso := node.Cfg.Seconds(prog.Table(16).TotalCycles)
		sched, err := fault.Generate(16, 4, 3/iso, iso*3, iso/8, 7)
		if err != nil {
			t.Fatal(err)
		}
		in, err := fault.NewInjector(sched)
		if err != nil {
			t.Fatal(err)
		}
		node.Faults = in
		node.FaultMode = FaultFission
		node.Shed = ShedDoomed
		node.Trace = &Trace{}
		reqs := []workload.Request{
			req(0, 0, iso*8, 5), req(1, iso/3, iso*8, 3), req(2, iso/2, iso*8, 9),
		}
		out, err := node.Run(reqs)
		if err != nil {
			t.Fatal(err)
		}
		return out, node.Trace
	}
	o1, t1 := run()
	o2, t2 := run()
	if !reflect.DeepEqual(o1, o2) {
		t.Fatalf("outcomes differ:\n%+v\n%+v", o1, o2)
	}
	if !reflect.DeepEqual(t1.Events, t2.Events) {
		t.Fatal("traces differ")
	}
	if err := t1.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestZeroFaultPathUnchanged: attaching no injector and ShedNone must
// reproduce the plain serving numbers bit-for-bit — the guard for the
// acceptance criterion that fault machinery costs nothing when off.
func TestZeroFaultPathUnchanged(t *testing.T) {
	run := func(configure func(*Node)) *Outcome {
		node, _ := testNode(t, fullPolicy{})
		configure(node)
		reqs := []workload.Request{req(0, 0, 1, 5), req(1, 100e-6, 1, 3), req(2, 250e-6, 1, 9)}
		out, err := node.Run(reqs)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	plain := run(func(n *Node) {})
	// An injector with an empty schedule and explicit zero-value knobs.
	emptied := run(func(n *Node) {
		in, err := fault.NewInjector(&fault.Schedule{Units: 16, Pods: 4})
		if err != nil {
			t.Fatal(err)
		}
		n.Faults = in
		n.FaultMode = FaultFission
		n.Shed = ShedNone
	})
	if !reflect.DeepEqual(plain, emptied) {
		t.Fatalf("empty fault schedule perturbed the run:\n%+v\n%+v", plain, emptied)
	}
	if plain.Killed != 0 || plain.Shed != 0 || plain.Rejected != 0 || plain.FaultEvents != 0 {
		t.Fatalf("fault tallies nonzero on clean run: %+v", plain)
	}
	if math.IsNaN(plain.EnergyJ) {
		t.Fatal("energy NaN")
	}
}
