package sim_test

// Trace coverage for both serving engines: the Planaria spatial scheduler
// and the PREMA baseline must emit queue-depth samples, and their
// preemptions (spatial re-fission vs temporal context switch) must land
// as EvPreempt so either timeline converts to a Perfetto track set.

import (
	"testing"

	"planaria/internal/arch"
	"planaria/internal/compiler"
	"planaria/internal/dnn"
	"planaria/internal/energy"
	"planaria/internal/obs"
	"planaria/internal/prema"
	"planaria/internal/sched"
	"planaria/internal/sim"
	"planaria/internal/workload"
)

func engineNode(t *testing.T, pol sim.Policy) (*sim.Node, float64) {
	t.Helper()
	cfg := arch.Planaria()
	b := dnn.NewBuilder("trace-toy", "classification", 32, 32, 8)
	b.Conv("c1", 32, 3, 1)
	b.Conv("c2", 32, 3, 1)
	b.GlobalPool("gp")
	b.FC("fc", 10)
	net, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	prog, err := compiler.CompileProgram(net, cfg, true)
	if err != nil {
		t.Fatal(err)
	}
	iso := cfg.Seconds(prog.Table(cfg.NumSubarrays()).TotalCycles)
	return &sim.Node{
		Cfg:      cfg,
		Policy:   pol,
		Programs: map[string]*compiler.Program{"trace-toy": prog},
		Params:   energy.Default(),
		Trace:    &sim.Trace{},
	}, iso
}

// colocated builds three overlapping requests: the later arrivals force a
// scheduling reaction (re-fission or context switch) while request 0 runs.
func colocated(iso float64) []workload.Request {
	reqs := make([]workload.Request, 3)
	for i := range reqs {
		arr := float64(i) * iso / 4
		reqs[i] = workload.Request{
			ID: i, Model: "trace-toy", Domain: "classification",
			Arrival: arr, Priority: 1 + i, QoS: 20 * iso, Deadline: arr + 20*iso,
		}
	}
	return reqs
}

func countKinds(tr *sim.Trace) map[sim.EventKind]int {
	n := map[sim.EventKind]int{}
	for _, e := range tr.Events {
		n[e.Kind]++
	}
	return n
}

func runEngine(t *testing.T, name string, pol sim.Policy) *sim.Node {
	t.Helper()
	node, iso := engineNode(t, pol)
	o := obs.New()
	node.Obs = o.Named(name)
	if ob, ok := pol.(obs.Observable); ok {
		ob.SetObserver(node.Obs)
	}
	if _, err := node.Run(colocated(iso)); err != nil {
		t.Fatalf("%s run: %v", name, err)
	}
	if err := node.Trace.Validate(); err != nil {
		t.Fatalf("%s trace invalid: %v", name, err)
	}
	kinds := countKinds(node.Trace)
	if kinds[sim.EvQueue] == 0 {
		t.Errorf("%s trace has no queue-depth samples", name)
	}
	if kinds[sim.EvPreempt] == 0 {
		t.Errorf("%s trace has no preemption events", name)
	}
	if kinds[sim.EvFinish] != 3 {
		t.Errorf("%s trace finished %d of 3 requests", name, kinds[sim.EvFinish])
	}
	if o.Trace.Len() == 0 {
		t.Errorf("%s recorded no timeline events", name)
	}
	return node
}

func TestPlanariaEngineTraceCoverage(t *testing.T) {
	cfg := arch.Planaria()
	node := runEngine(t, "planaria", sched.NewSpatial(cfg))
	// Spatial co-location: while all three overlap, more than one task
	// must hold a non-zero allocation in at least one queue sample.
	spatial := false
	for _, e := range node.Trace.Events {
		if e.Kind == sim.EvQueue && e.Running > 1 {
			spatial = true
		}
	}
	if !spatial {
		t.Error("Planaria never co-located tasks (no queue sample with running > 1)")
	}
}

func TestPREMAEngineTraceCoverage(t *testing.T) {
	cfg := arch.Planaria()
	node := runEngine(t, "prema", prema.NewToken(cfg))
	// Temporal multi-tenancy: at most one task runs at any sample, and a
	// preemption means some task's allocation dropped to zero.
	fullDrop := false
	for _, e := range node.Trace.Events {
		switch e.Kind {
		case sim.EvQueue:
			if e.Running > 1 {
				t.Fatalf("PREMA ran %d tasks concurrently at t=%g", e.Running, e.Time)
			}
		case sim.EvPreempt:
			if e.Alloc == 0 {
				fullDrop = true
			}
		}
	}
	if !fullDrop {
		t.Error("PREMA preemptions never fully revoked an allocation")
	}
}
