package dnn

import "testing"

// Published reference compute/parameter counts. Our serialized-branch
// representation reproduces compute within a modest tolerance (branch
// serialization and SE/attention approximations shift counts slightly).
func TestBenchmarkModelStats(t *testing.T) {
	cases := []struct {
		name                 string
		minGMACs, maxGMACs   float64
		minMParam, maxMParam float64
	}{
		{"ResNet-50", 3.4, 4.5, 22, 29},
		{"GoogLeNet", 1.2, 2.2, 5.5, 9},
		{"MobileNet-v1", 0.45, 0.75, 3.2, 5.5},
		{"EfficientNet-B0", 0.3, 0.75, 3.5, 8},
		{"YOLOv3", 25, 45, 50, 75},
		{"Tiny YOLO", 2.0, 5.0, 8, 18},
		{"SSD-R", 50, 260, 15, 45},
		{"SSD-M", 0.8, 3.0, 4, 12},
		// GNMT compute includes the beam-4 decode multiplier.
		{"GNMT", 5.0, 15.0, 100, 250},
	}
	for _, c := range cases {
		n := MustByName(c.name)
		g := float64(n.TotalMACs()) / 1e9
		p := float64(n.TotalParams()) / 1e6
		t.Logf("%s", n.Summary())
		if g < c.minGMACs || g > c.maxGMACs {
			t.Errorf("%s: %.2f GMACs outside [%.2f, %.2f]", c.name, g, c.minGMACs, c.maxGMACs)
		}
		if p < c.minMParam || p > c.maxMParam {
			t.Errorf("%s: %.1fM params outside [%.1f, %.1f]", c.name, p, c.minMParam, c.maxMParam)
		}
	}
}

func TestAllModelsValidate(t *testing.T) {
	for _, n := range All() {
		if err := n.Validate(); err != nil {
			t.Errorf("%s: %v", n.Name, err)
		}
	}
}

func TestAllModelsHaveGEMMLayers(t *testing.T) {
	for _, n := range All() {
		if len(n.GEMMLayers()) == 0 {
			t.Errorf("%s has no GEMM layers", n.Name)
		}
	}
}

func TestDepthwiseClassification(t *testing.T) {
	want := map[string]bool{
		"ResNet-50": false, "GoogLeNet": false, "YOLOv3": false,
		"SSD-R": false, "GNMT": false,
		"EfficientNet-B0": true, "MobileNet-v1": true, "SSD-M": true,
		"Tiny YOLO": false,
	}
	for name, w := range want {
		if got := MustByName(name).HasDepthwise(); got != w {
			t.Errorf("%s: HasDepthwise = %v, want %v", name, got, w)
		}
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("NoSuchNet"); err == nil {
		t.Fatal("expected error for unknown network")
	}
}

func TestByNameCaches(t *testing.T) {
	a := MustByName("ResNet-50")
	b := MustByName("ResNet-50")
	if a != b {
		t.Fatal("ByName should return the cached instance")
	}
}

func TestResNet50Structure(t *testing.T) {
	n := MustByName("ResNet-50")
	// 1 stem + 16 bottlenecks × 3 convs + 4 projections + 1 FC = 54 GEMMs.
	if got := len(n.GEMMLayers()); got != 54 {
		t.Errorf("ResNet-50 GEMM layer count = %d, want 54", got)
	}
	last := n.Layers[len(n.Layers)-1]
	if last.Kind != FC || last.N != 1000 {
		t.Errorf("last layer = %s, want FC to 1000", last.String())
	}
}

func TestMobileNetAlternation(t *testing.T) {
	n := MustByName("MobileNet-v1")
	dw := 0
	for i := range n.Layers {
		if n.Layers[i].Kind == DWConv {
			dw++
		}
	}
	if dw != 13 {
		t.Errorf("MobileNet-v1 depthwise layer count = %d, want 13", dw)
	}
}

func TestGNMTSequential(t *testing.T) {
	n := MustByName("GNMT")
	for i := range n.Layers {
		l := &n.Layers[i]
		if l.Kind != MatMul {
			t.Errorf("GNMT layer %s is %s, want MatMul", l.Name, l.Kind)
		}
		if l.Repeat < 1 {
			t.Errorf("GNMT layer %s Repeat = %d", l.Name, l.Repeat)
		}
	}
}

func TestFormatLayers(t *testing.T) {
	s := MustByName("Tiny YOLO").FormatLayers()
	if len(s) == 0 {
		t.Fatal("empty layer listing")
	}
}
