package dnn

import "fmt"

// mbconv appends one EfficientNet MBConv block: 1×1 expansion (ratio t),
// k×k depthwise conv (stride s), squeeze-and-excitation (two FCs over the
// channel vector), and 1×1 projection to outC, with a residual add when
// the shape is preserved.
func mbconv(b *Builder, tag string, outC, k, stride, expand int) {
	_, _, inC := b.Shape()
	mid := inC * expand
	if expand != 1 {
		b.Conv(fmt.Sprintf("%s_expand", tag), mid, 1, 1)
	}
	b.DWConv(fmt.Sprintf("%s_dw", tag), k, stride)
	// Squeeze-and-excitation: global pool to 1×1×mid, FC mid→inC/4,
	// FC inC/4→mid, channel-wise scale. The pooled FCs are tiny GEMMs.
	se := inC / 4
	if se < 1 {
		se = 1
	}
	h, w, _ := b.Shape()
	b.MatMul(fmt.Sprintf("%s_se_reduce", tag), 1, mid, se, 1)
	b.MatMul(fmt.Sprintf("%s_se_expand", tag), 1, se, mid, 1)
	b.Conv(fmt.Sprintf("%s_project", tag), outC, 1, 1)
	if stride == 1 && inC == outC {
		b.Add(fmt.Sprintf("%s_add", tag))
	}
	b.SetShape(h, w, outC)
}

// EfficientNetB0 builds the EfficientNet-B0 image classifier
// (224×224×3 input, ~0.39 GMACs, ~5.3 M parameters).
func EfficientNetB0() *Network {
	b := NewBuilder("EfficientNet-B0", "classification", 224, 224, 3)
	b.Conv("stem", 32, 3, 2)

	type stage struct {
		outC, k, stride, expand, repeat int
	}
	stages := []stage{
		{16, 3, 1, 1, 1},
		{24, 3, 2, 6, 2},
		{40, 5, 2, 6, 2},
		{80, 3, 2, 6, 3},
		{112, 5, 1, 6, 3},
		{192, 5, 2, 6, 4},
		{320, 3, 1, 6, 1},
	}
	for si, s := range stages {
		for r := 0; r < s.repeat; r++ {
			stride := 1
			if r == 0 {
				stride = s.stride
			}
			mbconv(b, fmt.Sprintf("mb%d_%d", si+1, r+1), s.outC, s.k, stride, s.expand)
		}
	}
	b.Conv("head", 1280, 1, 1)
	b.GlobalPool("avgpool")
	b.FC("fc1000", 1000)
	return b.MustBuild()
}
