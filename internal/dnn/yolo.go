package dnn

import "fmt"

// darkRes appends one Darknet-53 residual unit: 1×1 reduce to half the
// channels, 3×3 restore, residual add.
func darkRes(b *Builder, tag string, c int) {
	b.Conv(fmt.Sprintf("%s_1x1", tag), c/2, 1, 1)
	b.Conv(fmt.Sprintf("%s_3x3", tag), c, 3, 1)
	b.Add(fmt.Sprintf("%s_add", tag))
}

// yoloHead appends one YOLOv3 detection head: five alternating 1×1/3×3
// convs followed by the 1×1 prediction conv (255 = 3 anchors × 85).
func yoloHead(b *Builder, tag string, c int) {
	b.Conv(fmt.Sprintf("%s_c1", tag), c/2, 1, 1)
	b.Conv(fmt.Sprintf("%s_c2", tag), c, 3, 1)
	b.Conv(fmt.Sprintf("%s_c3", tag), c/2, 1, 1)
	b.Conv(fmt.Sprintf("%s_c4", tag), c, 3, 1)
	b.Conv(fmt.Sprintf("%s_c5", tag), c/2, 1, 1)
	b.Conv(fmt.Sprintf("%s_obj", tag), c, 3, 1)
	b.Conv(fmt.Sprintf("%s_pred", tag), 255, 1, 1)
}

// YOLOv3 builds the YOLOv3 object detector on Darknet-53
// (416×416×3 input, ~33 GMACs, ~62 M parameters).
func YOLOv3() *Network {
	b := NewBuilder("YOLOv3", "detection", 416, 416, 3)
	b.Conv("conv1", 32, 3, 1)
	b.Conv("down1", 64, 3, 2)
	darkRes(b, "res1_1", 64)
	b.Conv("down2", 128, 3, 2)
	for i := 0; i < 2; i++ {
		darkRes(b, fmt.Sprintf("res2_%d", i+1), 128)
	}
	b.Conv("down3", 256, 3, 2)
	for i := 0; i < 8; i++ {
		darkRes(b, fmt.Sprintf("res3_%d", i+1), 256)
	}
	b.Conv("down4", 512, 3, 2)
	for i := 0; i < 8; i++ {
		darkRes(b, fmt.Sprintf("res4_%d", i+1), 512)
	}
	b.Conv("down5", 1024, 3, 2)
	for i := 0; i < 4; i++ {
		darkRes(b, fmt.Sprintf("res5_%d", i+1), 1024)
	}

	// Detection head at 13×13 (stride 32).
	yoloHead(b, "head13", 1024)

	// Upsample path to 26×26: 1×1 reduce, upsample (no MACs), concat with
	// the 512-channel backbone feature map, head.
	b.SetShape(13, 13, 512)
	b.Conv("up26_reduce", 256, 1, 1)
	b.SetShape(26, 26, 256+512)
	yoloHead(b, "head26", 512)

	// Upsample path to 52×52.
	b.SetShape(26, 26, 256)
	b.Conv("up52_reduce", 128, 1, 1)
	b.SetShape(52, 52, 128+256)
	yoloHead(b, "head52", 256)

	return b.MustBuild()
}

// TinyYOLO builds the Tiny YOLO (v2-tiny style) object detector
// (416×416×3 input, ~3.5 GMACs, ~11 M parameters).
func TinyYOLO() *Network {
	b := NewBuilder("Tiny YOLO", "detection", 416, 416, 3)
	b.Conv("conv1", 16, 3, 1)
	b.Pool("pool1", 2, 2)
	b.Conv("conv2", 32, 3, 1)
	b.Pool("pool2", 2, 2)
	b.Conv("conv3", 64, 3, 1)
	b.Pool("pool3", 2, 2)
	b.Conv("conv4", 128, 3, 1)
	b.Pool("pool4", 2, 2)
	b.Conv("conv5", 256, 3, 1)
	b.Pool("pool5", 2, 2)
	b.Conv("conv6", 512, 3, 1)
	b.Pool("pool6", 2, 1)
	b.Conv("conv7", 1024, 3, 1)
	b.Conv("conv8", 512, 3, 1)
	b.Conv("pred", 255, 1, 1)
	return b.MustBuild()
}
