package dnn

import "fmt"

// dwSeparable appends one MobileNet depthwise-separable block:
// 3×3 depthwise conv (stride s) followed by 1×1 pointwise conv to outC.
func dwSeparable(b *Builder, tag string, outC, stride int) {
	b.DWConv(fmt.Sprintf("%s_dw", tag), 3, stride)
	b.Conv(fmt.Sprintf("%s_pw", tag), outC, 1, 1)
}

// mobileNetBackbone appends the full MobileNet-v1 feature extractor
// (through the 1024-channel layers) to an existing builder.
func mobileNetBackbone(b *Builder) {
	b.Conv("conv1", 32, 3, 2)
	dwSeparable(b, "sep2", 64, 1)
	dwSeparable(b, "sep3", 128, 2)
	dwSeparable(b, "sep4", 128, 1)
	dwSeparable(b, "sep5", 256, 2)
	dwSeparable(b, "sep6", 256, 1)
	dwSeparable(b, "sep7", 512, 2)
	for i := 0; i < 5; i++ {
		dwSeparable(b, fmt.Sprintf("sep%d", 8+i), 512, 1)
	}
	dwSeparable(b, "sep13", 1024, 2)
	dwSeparable(b, "sep14", 1024, 1)
}

// MobileNetV1 builds the MobileNet-v1 (1.0, 224) image classifier
// (~0.57 GMACs, ~4.2 M parameters).
func MobileNetV1() *Network {
	b := NewBuilder("MobileNet-v1", "classification", 224, 224, 3)
	mobileNetBackbone(b)
	b.GlobalPool("avgpool")
	b.FC("fc1000", 1000)
	return b.MustBuild()
}
