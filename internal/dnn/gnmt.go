package dnn

import "fmt"

// GNMT sequence-model parameters. GNMT inference is autoregressive: the
// per-timestep LSTM GEMMs cannot be batched across time, which the Repeat
// field expresses (see DESIGN.md §3 for the substitution rationale).
const (
	gnmtHidden   = 1024
	gnmtLayers   = 8
	gnmtSeqLen   = 12
	gnmtBeam     = 4
	gnmtVocab    = 32000
	gnmtSELayers = 0 // no SE in GNMT; named to keep constants grouped
)

// GNMT builds the Google NMT translation model as the sequence of GEMMs a
// fixed-length (12-token, beam-4) inference performs: an 8-layer LSTM
// encoder (first layer bidirectional), an 8-layer LSTM decoder with
// attention, and the vocabulary projection. All recurrent GEMMs carry
// Repeat = timestep count to model their strict sequential dependency.
func GNMT() *Network {
	b := NewBuilder("GNMT", "translation", 1, 1, gnmtHidden)

	// Encoder. Each LSTM layer computes, per timestep, the four gates:
	// a GEMM of [x_t ; h_{t-1}] (2·hidden) by (4·hidden).
	// Layer 1 is bidirectional: two such passes.
	k := 2 * gnmtHidden
	n := 4 * gnmtHidden
	b.MatMul("enc1_fwd", 1, k, n, gnmtSeqLen)
	b.MatMul("enc1_bwd", 1, k, n, gnmtSeqLen)
	for l := 2; l <= gnmtLayers; l++ {
		b.MatMul(fmt.Sprintf("enc%d", l), 1, k, n, gnmtSeqLen)
	}

	// Decoder: beam-width rows per step.
	for l := 1; l <= gnmtLayers; l++ {
		b.MatMul(fmt.Sprintf("dec%d", l), gnmtBeam, k, n, gnmtSeqLen)
	}
	// Attention per decode step: score the encoder states (beam × hidden ·
	// hidden × seq) and form the context (beam × seq · seq × hidden).
	b.MatMul("attn_score", gnmtBeam, gnmtHidden, gnmtSeqLen, gnmtSeqLen)
	b.MatMul("attn_context", gnmtBeam, gnmtSeqLen, gnmtHidden, gnmtSeqLen)
	// Vocabulary projection per decode step.
	b.MatMul("vocab_proj", gnmtBeam, gnmtHidden, gnmtVocab, gnmtSeqLen)

	return b.MustBuild()
}
