package dnn

import (
	"fmt"
	"sort"
	"sync"
)

// Names lists the nine benchmark networks from the paper's Table I, in the
// paper's presentation order.
var Names = []string{
	"ResNet-50", "GoogLeNet", "YOLOv3", "SSD-R", "GNMT",
	"EfficientNet-B0", "MobileNet-v1", "SSD-M", "Tiny YOLO",
}

var constructors = map[string]func() *Network{
	"ResNet-50":       ResNet50,
	"GoogLeNet":       GoogLeNet,
	"YOLOv3":          YOLOv3,
	"SSD-R":           SSDResNet34,
	"GNMT":            GNMT,
	"EfficientNet-B0": EfficientNetB0,
	"MobileNet-v1":    MobileNetV1,
	"SSD-M":           SSDMobileNet,
	"Tiny YOLO":       TinyYOLO,
}

var (
	cacheMu sync.Mutex
	cache   = map[string]*Network{}
)

// ByName returns the named benchmark network. Networks are immutable and
// cached; callers must not mutate the returned value.
func ByName(name string) (*Network, error) {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	if n, ok := cache[name]; ok {
		return n, nil
	}
	ctor, ok := constructors[name]
	if !ok {
		return nil, fmt.Errorf("dnn: unknown network %q (known: %v)", name, Names)
	}
	n := ctor()
	cache[name] = n
	return n, nil
}

// MustByName is ByName for statically known names.
func MustByName(name string) *Network {
	n, err := ByName(name)
	if err != nil {
		panic(err)
	}
	return n
}

// All returns every benchmark network in Table I order.
func All() []*Network {
	nets := make([]*Network, 0, len(Names))
	for _, name := range Names {
		nets = append(nets, MustByName(name))
	}
	return nets
}

// SortedNames returns the benchmark names in lexicographic order, for
// deterministic table output.
func SortedNames() []string {
	s := append([]string(nil), Names...)
	sort.Strings(s)
	return s
}

// HasDepthwise reports whether the network contains depthwise
// convolutions — the layer class that monolithic systolic arrays
// underutilize and that separates Workload-A from Workload-B in the paper.
func (n *Network) HasDepthwise() bool {
	for i := range n.Layers {
		if n.Layers[i].Kind == DWConv {
			return true
		}
	}
	return false
}
