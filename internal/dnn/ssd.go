package dnn

import "fmt"

// ssdHead appends the per-feature-map SSD prediction convs: a k×k
// localization conv (anchors×4 outputs) and a k×k confidence conv
// (anchors×classes outputs) over the current feature map. SSD-ResNet34
// uses 3×3 heads; SSD-MobileNet's box predictor uses 1×1 heads.
func ssdHead(b *Builder, tag string, anchors, classes, k int) {
	h, w, c := b.Shape()
	b.Conv(fmt.Sprintf("%s_loc", tag), anchors*4, k, 1)
	b.SetShape(h, w, c)
	b.Conv(fmt.Sprintf("%s_conf", tag), anchors*classes, k, 1)
	b.SetShape(h, w, c)
}

// SSDResNet34 builds the MLPerf-style SSD-ResNet34 ("SSD-R") large object
// detector: 1200×1200 input, ResNet-34 backbone truncated at conv4, six
// feature maps with extra downsampling layers, 81 COCO classes.
func SSDResNet34() *Network {
	b := NewBuilder("SSD-R", "detection", 1200, 1200, 3)
	resNet34Backbone(b) // ends at 75×75×256 (1200/16)
	ssdHead(b, "fm1", 4, 81, 3)

	// Extra feature layers: 1×1 reduce then 3×3 stride-2 downsample.
	b.Conv("extra1_1x1", 256, 1, 1)
	b.Conv("extra1_3x3", 512, 3, 2) // 38×38
	ssdHead(b, "fm2", 6, 81, 3)
	b.Conv("extra2_1x1", 256, 1, 1)
	b.Conv("extra2_3x3", 512, 3, 2) // 19×19
	ssdHead(b, "fm3", 6, 81, 3)
	b.Conv("extra3_1x1", 128, 1, 1)
	b.Conv("extra3_3x3", 256, 3, 2) // 10×10
	ssdHead(b, "fm4", 6, 81, 3)
	b.Conv("extra4_1x1", 128, 1, 1)
	b.Conv("extra4_3x3", 256, 3, 2) // 5×5
	ssdHead(b, "fm5", 4, 81, 3)
	b.Conv("extra5_1x1", 128, 1, 1)
	b.ConvValid("extra5_3x3", 256, 3, 1) // 3×3
	ssdHead(b, "fm6", 4, 81, 3)

	return b.MustBuild()
}

// SSDMobileNet builds the SSD-MobileNet-v1 ("SSD-M") lightweight object
// detector: 300×300 input, MobileNet-v1 backbone, six feature maps,
// 91 classes (COCO with background), ~1.2 GMACs.
func SSDMobileNet() *Network {
	b := NewBuilder("SSD-M", "detection", 300, 300, 3)
	mobileNetBackbone(b) // ends at 10×10×1024

	// First head taps the 19×19×512 backbone feature map (sep12 output);
	// the backbone has already been serialized past it, so restore the
	// shape for the head convs.
	b.SetShape(19, 19, 512)
	ssdHead(b, "fm1", 3, 91, 1)

	b.SetShape(10, 10, 1024)
	ssdHead(b, "fm2", 6, 91, 1)

	// Extra layers: 1×1 reduce + 3×3 stride-2 pairs down to 1×1.
	b.Conv("extra1_1x1", 256, 1, 1)
	b.Conv("extra1_3x3", 512, 3, 2) // 5×5
	ssdHead(b, "fm3", 6, 91, 1)
	b.Conv("extra2_1x1", 128, 1, 1)
	b.Conv("extra2_3x3", 256, 3, 2) // 3×3
	ssdHead(b, "fm4", 6, 91, 1)
	b.Conv("extra3_1x1", 128, 1, 1)
	b.Conv("extra3_3x3", 256, 3, 2) // 2×2
	ssdHead(b, "fm5", 6, 91, 1)
	b.Conv("extra4_1x1", 64, 1, 1)
	b.ConvValid("extra4_3x3", 128, 2, 1) // 1×1
	ssdHead(b, "fm6", 6, 91, 1)

	return b.MustBuild()
}
