package dnn

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSamePad(t *testing.T) {
	cases := []struct {
		in, k, s int
		wantOut  int
	}{
		{224, 7, 2, 112},
		{224, 3, 2, 112},
		{224, 3, 1, 224},
		{112, 3, 2, 56},
		{56, 1, 1, 56},
		{13, 3, 1, 13},
		{19, 3, 2, 10},
		{75, 3, 2, 38},
		{300, 3, 2, 150},
		{416, 2, 2, 208},
	}
	for _, c := range cases {
		out, pad := samePad(c.in, c.k, c.s)
		if out != c.wantOut {
			t.Errorf("samePad(%d,%d,%d) out = %d, want %d", c.in, c.k, c.s, out, c.wantOut)
		}
		if got := (c.in+2*pad-c.k)/c.s + 1; got != out {
			t.Errorf("samePad(%d,%d,%d): pad %d inconsistent, formula gives %d want %d",
				c.in, c.k, c.s, pad, got, out)
		}
	}
}

func TestSamePadProperty(t *testing.T) {
	// For random (in, k, stride), the output must equal ceil(in/stride)
	// and the symmetric pad must provide at least SAME coverage without
	// being absurdly large.
	f := func(a, b, c uint8) bool {
		in := int(a)%512 + 1
		k := int(b)%7 + 1
		s := int(c)%4 + 1
		if k > in {
			return true
		}
		out, pad := samePad(in, k, s)
		want := (in + s - 1) / s
		return out == want && (in+2*pad-k)/s+1 >= out && pad <= k
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestConvGEMMLowering(t *testing.T) {
	l := Layer{
		Kind: Conv, InH: 56, InW: 56, InC: 64, OutC: 256,
		OutH: 56, OutW: 56, KH: 1, KW: 1, Stride: 1,
	}
	m, k, n := l.GEMM()
	if m != 56*56 || k != 64 || n != 256 {
		t.Fatalf("GEMM = (%d,%d,%d), want (3136,64,256)", m, k, n)
	}
	if got, want := l.MACs(), int64(56*56*64*256); got != want {
		t.Fatalf("MACs = %d, want %d", got, want)
	}
}

func TestDepthwiseGEMM(t *testing.T) {
	l := Layer{
		Kind: DWConv, InH: 112, InW: 112, InC: 32, OutC: 32,
		OutH: 112, OutW: 112, KH: 3, KW: 3, Stride: 1,
	}
	m, k, n := l.GEMM()
	if m != 112*112 || k != 9 || n != 1 {
		t.Fatalf("GEMM = (%d,%d,%d), want (12544,9,1)", m, k, n)
	}
	if l.Channels() != 32 {
		t.Fatalf("Channels = %d, want 32", l.Channels())
	}
	if got, want := l.MACs(), int64(112*112*9*32); got != want {
		t.Fatalf("MACs = %d, want %d", got, want)
	}
}

func TestRepeatScalesMACs(t *testing.T) {
	l := Layer{Kind: MatMul, M: 1, K: 2048, N: 4096, Repeat: 25}
	if got, want := l.MACs(), int64(25)*2048*4096; got != want {
		t.Fatalf("MACs = %d, want %d", got, want)
	}
	if got, want := l.Params(), int64(2048)*4096+4096; got != want {
		t.Fatalf("Params = %d, want %d (repeat must not scale params)", got, want)
	}
}

func TestBuilderShapeChaining(t *testing.T) {
	b := NewBuilder("toy", "classification", 32, 32, 3)
	b.Conv("c1", 16, 3, 1)
	b.Pool("p1", 2, 2)
	b.DWConv("dw", 3, 1)
	b.Conv("pw", 32, 1, 1)
	b.GlobalPool("gp")
	b.FC("fc", 10)
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(n.Layers) != 6 {
		t.Fatalf("got %d layers, want 6", len(n.Layers))
	}
	fc := n.Layers[5]
	if fc.K != 32 || fc.N != 10 {
		t.Fatalf("fc K=%d N=%d, want 32, 10", fc.K, fc.N)
	}
}

func TestBuilderUniqueNames(t *testing.T) {
	b := NewBuilder("toy", "classification", 8, 8, 3)
	b.Conv("c", 4, 1, 1)
	b.Conv("c", 4, 1, 1)
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if n.Layers[0].Name == n.Layers[1].Name {
		t.Fatalf("duplicate names not disambiguated: %q", n.Layers[0].Name)
	}
}

func TestBuilderCollapseError(t *testing.T) {
	b := NewBuilder("bad", "classification", 4, 4, 3)
	b.ConvValid("c1", 8, 5, 1) // 5×5 valid conv on 4×4 input collapses
	if _, err := b.Build(); err == nil {
		t.Fatal("expected error for collapsed spatial dims")
	}
}

func TestValidateRejectsBadNetworks(t *testing.T) {
	cases := []struct {
		name string
		net  Network
	}{
		{"empty", Network{Name: "x"}},
		{"noname", Network{Layers: []Layer{{Name: "a", Kind: Add}}}},
		{"dup", Network{Name: "x", Layers: []Layer{
			{Name: "a", Kind: Add}, {Name: "a", Kind: Add},
		}}},
		{"badconv", Network{Name: "x", Layers: []Layer{
			{Name: "c", Kind: Conv, InH: 8, InW: 8, InC: 3, OutC: 4, KH: 3, KW: 3, Stride: 1, OutH: 99, OutW: 8},
		}}},
		{"badgemm", Network{Name: "x", Layers: []Layer{
			{Name: "m", Kind: MatMul, M: 0, K: 4, N: 4},
		}}},
		{"dwmismatch", Network{Name: "x", Layers: []Layer{
			{Name: "d", Kind: DWConv, InH: 8, InW: 8, InC: 4, OutC: 8, KH: 3, KW: 3, Stride: 1, OutH: 8, OutW: 8, Pad: 1},
		}}},
	}
	for _, c := range cases {
		if err := c.net.Validate(); err == nil {
			t.Errorf("%s: Validate accepted an invalid network", c.name)
		}
	}
}

func TestRandomBuildersValidate(t *testing.T) {
	// Networks produced via the builder must always validate.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		b := NewBuilder("rand", "classification", 64, 64, 3)
		depth := rng.Intn(8) + 1
		for i := 0; i < depth; i++ {
			switch rng.Intn(4) {
			case 0:
				b.Conv("c", rng.Intn(64)+1, []int{1, 3, 5}[rng.Intn(3)], rng.Intn(2)+1)
			case 1:
				b.DWConv("d", 3, rng.Intn(2)+1)
			case 2:
				b.Pool("p", 2, 2)
			case 3:
				b.Add("a")
			}
		}
		n, err := b.Build()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := n.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}
