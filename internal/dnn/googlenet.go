package dnn

import "fmt"

// inception appends one GoogLeNet inception module. The four parallel
// branches (1×1; 1×1→3×3; 1×1→5×5; pool→1×1) are serialized; the output
// channel count is the concatenation of the branch outputs.
func inception(b *Builder, tag string, c1, r3, c3, r5, c5, pp int) {
	h, w, c := b.Shape()
	b.Conv(fmt.Sprintf("%s_1x1", tag), c1, 1, 1)
	b.SetShape(h, w, c)
	b.Conv(fmt.Sprintf("%s_3x3r", tag), r3, 1, 1)
	b.Conv(fmt.Sprintf("%s_3x3", tag), c3, 3, 1)
	b.SetShape(h, w, c)
	b.Conv(fmt.Sprintf("%s_5x5r", tag), r5, 1, 1)
	b.Conv(fmt.Sprintf("%s_5x5", tag), c5, 5, 1)
	b.SetShape(h, w, c)
	b.Pool(fmt.Sprintf("%s_pool", tag), 3, 1)
	b.Conv(fmt.Sprintf("%s_poolproj", tag), pp, 1, 1)
	b.SetShape(h, w, c1+c3+c5+pp)
}

// GoogLeNet builds the Inception-v1 image classifier
// (224×224×3 input, ~1.6 GMACs, ~7 M parameters).
func GoogLeNet() *Network {
	b := NewBuilder("GoogLeNet", "classification", 224, 224, 3)
	b.Conv("conv1", 64, 7, 2)
	b.Pool("pool1", 3, 2)
	b.Conv("conv2r", 64, 1, 1)
	b.Conv("conv2", 192, 3, 1)
	b.Pool("pool2", 3, 2)

	inception(b, "3a", 64, 96, 128, 16, 32, 32)
	inception(b, "3b", 128, 128, 192, 32, 96, 64)
	b.Pool("pool3", 3, 2)
	inception(b, "4a", 192, 96, 208, 16, 48, 64)
	inception(b, "4b", 160, 112, 224, 24, 64, 64)
	inception(b, "4c", 128, 128, 256, 24, 64, 64)
	inception(b, "4d", 112, 144, 288, 32, 64, 64)
	inception(b, "4e", 256, 160, 320, 32, 128, 128)
	b.Pool("pool4", 3, 2)
	inception(b, "5a", 256, 160, 320, 32, 128, 128)
	inception(b, "5b", 384, 192, 384, 48, 128, 128)

	b.GlobalPool("avgpool")
	b.FC("fc1000", 1000)
	return b.MustBuild()
}
