package dnn

import "fmt"

// bottleneck appends one ResNet-50 bottleneck block (1×1 reduce, 3×3,
// 1×1 expand, residual add); project indicates a projection shortcut.
func bottleneck(b *Builder, tag string, mid, out, stride int, project bool) {
	h0, w0, c0 := b.Shape()
	b.Conv(fmt.Sprintf("%s_1x1a", tag), mid, 1, 1)
	b.Conv(fmt.Sprintf("%s_3x3", tag), mid, 3, stride)
	b.Conv(fmt.Sprintf("%s_1x1b", tag), out, 1, 1)
	if project {
		// The projection shortcut is a strided 1×1 conv on the block
		// input tensor.
		b.SetShape(h0, w0, c0)
		b.Conv(fmt.Sprintf("%s_proj", tag), out, 1, stride)
	}
	b.Add(fmt.Sprintf("%s_add", tag))
}

// ResNet50 builds the standard ResNet-50 image classifier
// (224×224×3 input, ~3.9 GMACs, ~25.6 M parameters).
func ResNet50() *Network {
	b := NewBuilder("ResNet-50", "classification", 224, 224, 3)
	b.Conv("conv1", 64, 7, 2)
	b.Pool("pool1", 3, 2)

	stages := []struct {
		name        string
		mid, out, n int
		stride      int
	}{
		{"conv2", 64, 256, 3, 1},
		{"conv3", 128, 512, 4, 2},
		{"conv4", 256, 1024, 6, 2},
		{"conv5", 512, 2048, 3, 2},
	}
	for _, s := range stages {
		for i := 0; i < s.n; i++ {
			stride := 1
			if i == 0 {
				stride = s.stride
			}
			bottleneck(b, fmt.Sprintf("%s_b%d", s.name, i+1), s.mid, s.out, stride, i == 0)
		}
	}
	b.GlobalPool("avgpool")
	b.FC("fc1000", 1000)
	return b.MustBuild()
}

// basicBlock appends one ResNet-34 basic block (two 3×3 convs + residual).
func basicBlock(b *Builder, tag string, out, stride int, project bool) {
	h0, w0, c0 := b.Shape()
	b.Conv(fmt.Sprintf("%s_3x3a", tag), out, 3, stride)
	b.Conv(fmt.Sprintf("%s_3x3b", tag), out, 3, 1)
	if project {
		b.SetShape(h0, w0, c0)
		b.Conv(fmt.Sprintf("%s_proj", tag), out, 1, stride)
	}
	b.Add(fmt.Sprintf("%s_add", tag))
}

// resNet34Backbone appends the ResNet-34 feature extractor through conv4
// (the truncation MLPerf's SSD-ResNet34 uses) to an existing builder.
func resNet34Backbone(b *Builder) {
	b.Conv("conv1", 64, 7, 2)
	b.Pool("pool1", 3, 2)
	for i := 0; i < 3; i++ {
		basicBlock(b, fmt.Sprintf("conv2_b%d", i+1), 64, 1, false)
	}
	for i := 0; i < 4; i++ {
		stride := 1
		if i == 0 {
			stride = 2
		}
		basicBlock(b, fmt.Sprintf("conv3_b%d", i+1), 128, stride, i == 0)
	}
	for i := 0; i < 6; i++ {
		stride := 1
		if i == 0 {
			stride = 2
		}
		basicBlock(b, fmt.Sprintf("conv4_b%d", i+1), 256, stride, i == 0)
	}
}
