// Package dnn defines the deep-neural-network representation used across
// the Planaria simulator: layers with explicit shapes, shape-inferring
// network builders, and the nine benchmark networks from the paper's
// evaluation (Table I).
//
// A Network is a flat, in-order list of layers (DNN inference graphs are
// static; branches such as residual connections and inception modules are
// serialized, which preserves total compute and data movement — the
// quantities the performance model consumes). Every compute layer lowers
// to a canonical GEMM via Layer.GEMM, matching how systolic arrays execute
// convolutions.
package dnn

import (
	"fmt"
	"strings"
)

// Kind enumerates the layer operator types the simulator models.
type Kind int

const (
	// Conv is a standard (dense) 2-D convolution executed on the systolic
	// array as an im2col GEMM.
	Conv Kind = iota
	// DWConv is a depthwise 2-D convolution: each input channel is
	// convolved with its own K×K filter. On a systolic array one channel
	// occupies a single column (paper §VI-B2), so channel-level
	// parallelism is only available across independent clusters.
	DWConv
	// FC is a fully connected layer (GEMM with M = batch).
	FC
	// MatMul is a generic matrix multiplication with explicit M, K, N.
	MatMul
	// Pool is a max/average pooling layer executed on the SIMD vector unit.
	Pool
	// GlobalPool is a global average pool executed on the vector unit.
	GlobalPool
	// Add is an elementwise residual addition on the vector unit.
	Add
	// Activation is a standalone elementwise activation on the vector unit
	// (activations fused into the preceding conv are not emitted).
	Activation
)

// String returns the human-readable operator name.
func (k Kind) String() string {
	switch k {
	case Conv:
		return "Conv"
	case DWConv:
		return "DWConv"
	case FC:
		return "FC"
	case MatMul:
		return "MatMul"
	case Pool:
		return "Pool"
	case GlobalPool:
		return "GlobalPool"
	case Add:
		return "Add"
	case Activation:
		return "Activation"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// IsGEMM reports whether the layer kind executes on the systolic array
// (as opposed to the SIMD vector unit).
func (k Kind) IsGEMM() bool {
	switch k {
	case Conv, DWConv, FC, MatMul:
		return true
	}
	return false
}

// Layer is one operator in a network. Spatial fields (InH..Pad) are
// populated for Conv/DWConv/Pool layers; the GEMM fields (M, K, N) for
// FC/MatMul layers; Elems for vector-unit layers. OutH/OutW are stored
// explicitly (computed by the builder) so padding conventions never need
// to be re-derived downstream.
type Layer struct {
	Name string
	Kind Kind

	// Spatial operator parameters.
	InH, InW, InC  int
	OutH, OutW     int
	OutC           int // for DWConv, OutC == InC (channel multiplier 1)
	KH, KW, Stride int
	Pad            int

	// Explicit GEMM dimensions for FC/MatMul.
	M, K, N int

	// Elems is the elementwise operation count for vector-unit layers.
	Elems int64

	// Repeat is the number of strictly sequential invocations of this
	// layer (default 1). Used for recurrent networks (GNMT): an LSTM
	// layer's per-timestep GEMM cannot be batched across time, so it is
	// represented once with Repeat = sequence length.
	Repeat int
}

// reps returns Repeat clamped to at least one invocation.
func (l *Layer) reps() int64 {
	if l.Repeat < 1 {
		return 1
	}
	return int64(l.Repeat)
}

// GEMM lowers the layer to its canonical matrix multiplication
// M×K · K×N, the form in which the systolic array executes it.
//
// For DWConv the returned GEMM describes a single channel
// (M = OutH·OutW, K = KH·KW, N = 1); Channels reports how many such
// independent per-channel GEMMs the layer contains.
// Vector-unit layers return zeros.
func (l *Layer) GEMM() (m, k, n int) {
	switch l.Kind {
	case Conv:
		return l.OutH * l.OutW, l.KH * l.KW * l.InC, l.OutC
	case DWConv:
		return l.OutH * l.OutW, l.KH * l.KW, 1
	case FC, MatMul:
		return l.M, l.K, l.N
	default:
		return 0, 0, 0
	}
}

// Channels reports the number of independent per-channel GEMMs for a
// depthwise convolution, and 1 for every other GEMM kind.
func (l *Layer) Channels() int {
	if l.Kind == DWConv {
		return l.InC
	}
	return 1
}

// MACs returns the total multiply-accumulate count of the layer,
// including sequential repetitions.
func (l *Layer) MACs() int64 {
	m, k, n := l.GEMM()
	per := int64(m) * int64(k) * int64(n) * int64(l.Channels())
	return per * l.reps()
}

// Params returns the number of weight parameters of the layer
// (weights are shared across Repeat invocations).
func (l *Layer) Params() int64 {
	switch l.Kind {
	case Conv:
		return int64(l.KH)*int64(l.KW)*int64(l.InC)*int64(l.OutC) + int64(l.OutC)
	case DWConv:
		return int64(l.KH)*int64(l.KW)*int64(l.InC) + int64(l.InC)
	case FC, MatMul:
		return int64(l.K)*int64(l.N) + int64(l.N)
	default:
		return 0
	}
}

// InputElems returns the activation element count consumed per invocation.
func (l *Layer) InputElems() int64 {
	switch l.Kind {
	case Conv, DWConv:
		return int64(l.InH) * int64(l.InW) * int64(l.InC)
	case FC, MatMul:
		return int64(l.M) * int64(l.K)
	case Pool, GlobalPool, Add, Activation:
		return l.Elems
	default:
		return 0
	}
}

// OutputElems returns the activation element count produced per invocation.
func (l *Layer) OutputElems() int64 {
	switch l.Kind {
	case Conv, DWConv:
		return int64(l.OutH) * int64(l.OutW) * int64(l.OutC)
	case FC, MatMul:
		return int64(l.M) * int64(l.N)
	case Pool:
		return int64(l.OutH) * int64(l.OutW) * int64(l.OutC)
	case GlobalPool:
		return int64(l.OutC)
	case Add, Activation:
		return l.Elems
	default:
		return 0
	}
}

// VectorOps returns the number of SIMD vector-unit operations the layer
// performs (pooling window reductions, elementwise ops). GEMM layers
// report their output element count: every GEMM output passes through the
// vector unit once for bias/activation/requantization.
func (l *Layer) VectorOps() int64 {
	switch l.Kind {
	case Pool:
		return int64(l.OutH) * int64(l.OutW) * int64(l.OutC) * int64(l.KH) * int64(l.KW) * l.reps()
	case GlobalPool:
		return int64(l.InH) * int64(l.InW) * int64(l.InC) * l.reps()
	case Add, Activation:
		return l.Elems * l.reps()
	case Conv, DWConv, FC, MatMul:
		return l.OutputElems() * l.reps()
	default:
		return 0
	}
}

// String summarizes the layer for logs and error messages.
func (l *Layer) String() string {
	switch l.Kind {
	case Conv, DWConv:
		return fmt.Sprintf("%s %s %dx%dx%d -> %dx%dx%d k%dx%d s%d",
			l.Name, l.Kind, l.InH, l.InW, l.InC, l.OutH, l.OutW, l.OutC, l.KH, l.KW, l.Stride)
	case FC, MatMul:
		r := ""
		if l.Repeat > 1 {
			r = fmt.Sprintf(" x%d", l.Repeat)
		}
		return fmt.Sprintf("%s %s M%d K%d N%d%s", l.Name, l.Kind, l.M, l.K, l.N, r)
	default:
		return fmt.Sprintf("%s %s elems=%d", l.Name, l.Kind, l.Elems)
	}
}

// Network is an in-order list of layers with model-level metadata.
type Network struct {
	Name string
	// Domain is the MLPerf-style task domain: "classification",
	// "detection", or "translation".
	Domain string
	// InputH/InputW/InputC describe the network input tensor.
	InputH, InputW, InputC int
	Layers                 []Layer
}

// TotalMACs returns the multiply-accumulate count of one inference.
func (n *Network) TotalMACs() int64 {
	var t int64
	for i := range n.Layers {
		t += n.Layers[i].MACs()
	}
	return t
}

// TotalParams returns the number of weight parameters of the network.
func (n *Network) TotalParams() int64 {
	var t int64
	for i := range n.Layers {
		t += n.Layers[i].Params()
	}
	return t
}

// GEMMLayers returns the indices of layers that execute on the systolic
// array.
func (n *Network) GEMMLayers() []int {
	var idx []int
	for i := range n.Layers {
		if n.Layers[i].Kind.IsGEMM() {
			idx = append(idx, i)
		}
	}
	return idx
}

// Validate checks structural integrity: positive dimensions, consistent
// spatial shapes, unique layer names. Networks produced by the builders in
// this package always validate; the check exists to catch hand-built or
// corrupted models before they reach the compiler.
func (n *Network) Validate() error {
	if n.Name == "" {
		return fmt.Errorf("dnn: network has no name")
	}
	if len(n.Layers) == 0 {
		return fmt.Errorf("dnn: network %q has no layers", n.Name)
	}
	seen := make(map[string]bool, len(n.Layers))
	for i := range n.Layers {
		l := &n.Layers[i]
		if l.Name == "" {
			return fmt.Errorf("dnn: %s layer %d has no name", n.Name, i)
		}
		if seen[l.Name] {
			return fmt.Errorf("dnn: %s has duplicate layer name %q", n.Name, l.Name)
		}
		seen[l.Name] = true
		switch l.Kind {
		case Conv, DWConv:
			if l.InH <= 0 || l.InW <= 0 || l.InC <= 0 || l.OutC <= 0 ||
				l.KH <= 0 || l.KW <= 0 || l.Stride <= 0 || l.OutH <= 0 || l.OutW <= 0 {
				return fmt.Errorf("dnn: %s layer %s has non-positive dimensions: %+v", n.Name, l.Name, *l)
			}
			if l.Kind == DWConv && l.OutC != l.InC {
				return fmt.Errorf("dnn: %s depthwise layer %s must have OutC == InC (%d != %d)",
					n.Name, l.Name, l.OutC, l.InC)
			}
			// OutH/OutW must match either the exact symmetric-padding
			// formula or the SAME convention ceil(in/stride); even kernels
			// need asymmetric padding that symmetric Pad over-covers.
			okDim := func(in, k, out int) bool {
				return out == (in+2*l.Pad-k)/l.Stride+1 ||
					out == (in+l.Stride-1)/l.Stride
			}
			if !okDim(l.InH, l.KH, l.OutH) || !okDim(l.InW, l.KW, l.OutW) {
				return fmt.Errorf("dnn: %s layer %s output %dx%d inconsistent with params %+v",
					n.Name, l.Name, l.OutH, l.OutW, *l)
			}
		case FC, MatMul:
			if l.M <= 0 || l.K <= 0 || l.N <= 0 {
				return fmt.Errorf("dnn: %s layer %s has non-positive GEMM dims M%d K%d N%d",
					n.Name, l.Name, l.M, l.K, l.N)
			}
		case Pool:
			if l.KH <= 0 || l.Stride <= 0 || l.OutH <= 0 || l.OutW <= 0 {
				return fmt.Errorf("dnn: %s pool layer %s has non-positive dimensions", n.Name, l.Name)
			}
		case GlobalPool, Add, Activation:
			// Elems may legitimately be derived; nothing stronger to check.
		default:
			return fmt.Errorf("dnn: %s layer %s has unknown kind %d", n.Name, l.Name, int(l.Kind))
		}
		if l.Repeat < 0 {
			return fmt.Errorf("dnn: %s layer %s has negative Repeat", n.Name, l.Name)
		}
	}
	return nil
}

// Summary returns a one-line description of the network.
func (n *Network) Summary() string {
	return fmt.Sprintf("%s: %d layers, %.2f GMACs, %.1fM params",
		n.Name, len(n.Layers), float64(n.TotalMACs())/1e9, float64(n.TotalParams())/1e6)
}

// Builder constructs a Network with automatic shape inference. Each
// spatial method consumes the current tensor shape (H, W, C) and updates
// it. Padding follows the TensorFlow SAME convention (output = ceil(in /
// stride)) unless a Valid variant is used, matching how the benchmark
// networks are commonly specified.
type Builder struct {
	net     Network
	h, w, c int
	counter map[string]int
	err     error
}

// NewBuilder starts a network with the given input tensor shape.
func NewBuilder(name, domain string, h, w, c int) *Builder {
	return &Builder{
		net: Network{Name: name, Domain: domain, InputH: h, InputW: w, InputC: c},
		h:   h, w: w, c: c,
		counter: make(map[string]int),
	}
}

// Shape returns the current tensor shape (H, W, C).
func (b *Builder) Shape() (h, w, c int) { return b.h, b.w, b.c }

func (b *Builder) unique(name string) string {
	b.counter[name]++
	if b.counter[name] == 1 {
		return name
	}
	return fmt.Sprintf("%s_%d", name, b.counter[name])
}

// samePad computes the SAME-convention output size (ceil(in/stride)) and
// a symmetric padding that covers it. When the required total padding is
// odd (even kernels), symmetric padding necessarily over-covers by one
// row/column; the padding returned always provides at least SAME coverage.
func samePad(in, k, stride int) (out, pad int) {
	out = (in + stride - 1) / stride
	total := (out-1)*stride + k - in
	if total < 0 {
		total = 0
	}
	pad = (total + 1) / 2
	for (in+2*pad-k)/stride+1 < out {
		pad++
	}
	return out, pad
}

// Conv appends a standard convolution with SAME padding.
func (b *Builder) Conv(name string, outC, k, stride int) *Builder {
	return b.conv(name, outC, k, k, stride, true)
}

// ConvValid appends a standard convolution with VALID (no) padding.
func (b *Builder) ConvValid(name string, outC, k, stride int) *Builder {
	return b.conv(name, outC, k, k, stride, false)
}

func (b *Builder) conv(name string, outC, kh, kw, stride int, same bool) *Builder {
	if b.err != nil {
		return b
	}
	l := Layer{
		Name: b.unique(name), Kind: Conv,
		InH: b.h, InW: b.w, InC: b.c, OutC: outC,
		KH: kh, KW: kw, Stride: stride,
	}
	if same {
		l.OutH, l.Pad = samePad(b.h, kh, stride)
		l.OutW, _ = samePad(b.w, kw, stride)
	} else {
		l.OutH = (b.h-kh)/stride + 1
		l.OutW = (b.w-kw)/stride + 1
	}
	if l.OutH <= 0 || l.OutW <= 0 {
		b.err = fmt.Errorf("dnn: %s: conv %s collapses spatial dims (%dx%d k%d s%d)",
			b.net.Name, name, b.h, b.w, kh, stride)
		return b
	}
	b.net.Layers = append(b.net.Layers, l)
	b.h, b.w, b.c = l.OutH, l.OutW, outC
	return b
}

// DWConv appends a depthwise convolution with SAME padding.
func (b *Builder) DWConv(name string, k, stride int) *Builder {
	if b.err != nil {
		return b
	}
	l := Layer{
		Name: b.unique(name), Kind: DWConv,
		InH: b.h, InW: b.w, InC: b.c, OutC: b.c,
		KH: k, KW: k, Stride: stride,
	}
	l.OutH, l.Pad = samePad(b.h, k, stride)
	l.OutW, _ = samePad(b.w, k, stride)
	b.net.Layers = append(b.net.Layers, l)
	b.h, b.w = l.OutH, l.OutW
	return b
}

// Pool appends a max/avg pooling layer with SAME padding.
func (b *Builder) Pool(name string, k, stride int) *Builder {
	if b.err != nil {
		return b
	}
	l := Layer{
		Name: b.unique(name), Kind: Pool,
		InH: b.h, InW: b.w, InC: b.c, OutC: b.c,
		KH: k, KW: k, Stride: stride,
	}
	l.OutH, l.Pad = samePad(b.h, k, stride)
	l.OutW, _ = samePad(b.w, k, stride)
	b.net.Layers = append(b.net.Layers, l)
	b.h, b.w = l.OutH, l.OutW
	return b
}

// GlobalPool appends a global average pool, collapsing spatial dims to 1×1.
func (b *Builder) GlobalPool(name string) *Builder {
	if b.err != nil {
		return b
	}
	l := Layer{
		Name: b.unique(name), Kind: GlobalPool,
		InH: b.h, InW: b.w, InC: b.c, OutC: b.c,
		Elems: int64(b.h) * int64(b.w) * int64(b.c),
	}
	b.net.Layers = append(b.net.Layers, l)
	b.h, b.w = 1, 1
	return b
}

// Activation appends a standalone elementwise activation (ReLU) over the
// current tensor. Activations fused into a preceding conv need no layer.
func (b *Builder) Activation(name string) *Builder {
	if b.err != nil {
		return b
	}
	l := Layer{
		Name: b.unique(name), Kind: Activation,
		Elems: int64(b.h) * int64(b.w) * int64(b.c),
	}
	b.net.Layers = append(b.net.Layers, l)
	return b
}

// Add appends a residual elementwise addition over the current tensor.
func (b *Builder) Add(name string) *Builder {
	if b.err != nil {
		return b
	}
	l := Layer{
		Name: b.unique(name), Kind: Add,
		Elems: int64(b.h) * int64(b.w) * int64(b.c),
	}
	b.net.Layers = append(b.net.Layers, l)
	return b
}

// FC appends a fully connected layer from the current (flattened) tensor
// to outN features.
func (b *Builder) FC(name string, outN int) *Builder {
	if b.err != nil {
		return b
	}
	k := b.h * b.w * b.c
	l := Layer{Name: b.unique(name), Kind: FC, M: 1, K: k, N: outN}
	b.net.Layers = append(b.net.Layers, l)
	b.h, b.w, b.c = 1, 1, outN
	return b
}

// MatMul appends a generic GEMM layer with explicit dimensions and a
// sequential repetition count (use repeat > 1 for recurrent timesteps).
// It does not alter the builder's spatial shape.
func (b *Builder) MatMul(name string, m, k, n, repeat int) *Builder {
	if b.err != nil {
		return b
	}
	l := Layer{Name: b.unique(name), Kind: MatMul, M: m, K: k, N: n, Repeat: repeat}
	b.net.Layers = append(b.net.Layers, l)
	return b
}

// SetShape overrides the current tensor shape. Needed after serializing a
// branch (e.g. returning to a backbone feature map for a second SSD head).
func (b *Builder) SetShape(h, w, c int) *Builder {
	if b.err != nil {
		return b
	}
	b.h, b.w, b.c = h, w, c
	return b
}

// GrowChannels adds to the current channel count without emitting a layer,
// modelling a concatenation with a serialized branch.
func (b *Builder) GrowChannels(dc int) *Builder {
	if b.err != nil {
		return b
	}
	b.c += dc
	return b
}

// Build finalizes and validates the network.
func (b *Builder) Build() (*Network, error) {
	if b.err != nil {
		return nil, b.err
	}
	n := b.net
	if err := n.Validate(); err != nil {
		return nil, err
	}
	return &n, nil
}

// MustBuild is Build for the package's own statically known models, where
// a validation failure is a programming error.
func (b *Builder) MustBuild() *Network {
	n, err := b.Build()
	if err != nil {
		panic(err)
	}
	return n
}

// FormatLayers renders a multi-line layer listing, useful for examples and
// debugging.
func (n *Network) FormatLayers() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s (%s) input %dx%dx%d\n", n.Name, n.Domain, n.InputH, n.InputW, n.InputC)
	for i := range n.Layers {
		fmt.Fprintf(&sb, "  %3d  %s\n", i, n.Layers[i].String())
	}
	return sb.String()
}
