// Package prema reimplements the PREMA scheduling baseline (Choi & Rhu,
// HPCA 2020) the paper compares against: preemptive *temporal*
// multi-tenancy on a monolithic systolic accelerator. PREMA's published
// policy is token-based: each waiting task accrues tokens proportionally
// to its priority and waiting time; tasks whose token reaches the current
// maximum become candidates, and among candidates the one with the
// shortest estimated remaining time runs next (shortest-estimated-job
// first, for throughput). Preemption checkpoints at tile granularity.
//
// This is a reimplementation from the published description — the paper's
// artifact is not available — preserving the policy semantics the
// comparison needs (see DESIGN.md §3).
package prema

import (
	"fmt"
	"sort"

	"planaria/internal/arch"
	"planaria/internal/obs"
	"planaria/internal/sim"
)

// Token is the PREMA scheduling policy. It is stateful: tokens persist
// across invocations and grow while tasks wait.
type Token struct {
	Cfg arch.Config
	// CandidateFraction: tasks with token ≥ CandidateFraction × max-token
	// are candidates (1.0 = strict maximum only).
	CandidateFraction float64
	// SchedulingQuantum bounds how long a decision stands before tokens
	// are re-evaluated.
	SchedulingQuantum float64

	tokens map[int]float64
	last   map[int]float64

	// Scratch reused across AllocateInto invocations: the live-task set
	// and the sorted stale-token worklist.
	live  map[int]bool
	stale []int

	// health is the physical chip's fault mask (empty = untracked). The
	// monolithic array cannot re-fission around dead subarrays, so its
	// only degradation is a uniform throughput derate by the alive
	// fraction — which the serving engine applies (sim.FaultDerate).
	// PREMA's shortest-estimated-job-first ordering is invariant under a
	// uniform derate, so the mask only rescales the absolute estimates
	// reported to observability.
	health arch.HealthMask

	// Observability probes (nil-safe no-ops when unset).
	cDecisions *obs.Counter
	cSwitches  *obs.Counter
	gMaxToken  *obs.Gauge
	tracer     *obs.TraceBuilder
	dispatched int
	haveDisp   bool
}

// NewToken returns the PREMA policy with the defaults used in the
// evaluation: a 90% candidate threshold and a 500 µs quantum.
func NewToken(cfg arch.Config) *Token {
	return &Token{
		Cfg:               cfg,
		CandidateFraction: 0.9,
		SchedulingQuantum: 500e-6,
		tokens:            make(map[int]float64),
		last:              make(map[int]float64),
	}
}

// Name implements sim.Policy.
func (p *Token) Name() string { return "PREMA" }

// SetObserver implements obs.Observable: decision counters, the
// dispatch-switch count (temporal context switches), and the token
// high-water mark land in the registry; dispatch switches also appear as
// instants on the "prema" timeline track.
func (p *Token) SetObserver(o *obs.Observer) {
	reg := o.Registry()
	p.cDecisions = reg.Counter("prema_decisions_total")
	p.cSwitches = reg.Counter("prema_dispatch_switches_total")
	p.gMaxToken = reg.Gauge("prema_max_token")
	p.tracer = o.Tracer()
}

// Quantum implements sim.Policy.
func (p *Token) Quantum() float64 { return p.SchedulingQuantum }

// SetHealth implements sim.HealthAware.
func (p *Token) SetHealth(mask arch.HealthMask) { p.health = mask }

// EffectiveRemaining rescales a task's remaining time by the degraded
// chip's throughput: the monolithic array runs at the alive fraction of
// its nominal rate.
func (p *Token) EffectiveRemaining(t *sim.Task, total int) float64 {
	rem := p.Cfg.Seconds(t.RemainingCycles(total))
	if f := p.health.Fraction(); f > 0 && f < 1 {
		rem /= f
	}
	return rem
}

// Allocate implements sim.Policy: exactly one task owns the whole
// monolithic accelerator at a time.
func (p *Token) Allocate(now float64, tasks []*sim.Task, total int) map[int]int {
	if len(tasks) == 0 {
		return nil
	}
	return map[int]int{tasks[p.decide(now, tasks, total)].ID: total}
}

// AllocateInto implements sim.SliceAllocator (same decision, no result
// map; the token-accounting maps persist on the policy either way).
func (p *Token) AllocateInto(now float64, tasks []*sim.Task, total int, dst []int) {
	if len(tasks) == 0 {
		return
	}
	dst[p.decide(now, tasks, total)] = total
}

// decide runs one token-policy round — accrual, stale-token GC,
// candidate filtering, shortest-estimated-job tie-break — and returns the
// position of the dispatched task, mutating the token state.
func (p *Token) decide(now float64, tasks []*sim.Task, total int) int {
	// Accrue tokens: priority × waiting time (milliseconds) since the
	// last update; running tasks do not accrue.
	if p.live == nil {
		p.live = make(map[int]bool, len(tasks))
	}
	clear(p.live)
	for _, t := range tasks {
		p.live[t.ID] = true
		lastT, seen := p.last[t.ID]
		if !seen {
			// Initial token equals the priority, as in PREMA.
			p.tokens[t.ID] = float64(t.Req.Priority)
			p.last[t.ID] = now
			continue
		}
		if t.Alloc == 0 {
			p.tokens[t.ID] += float64(t.Req.Priority) * (now - lastT) * 1e3
		}
		p.last[t.ID] = now
	}
	stale := p.stale[:0]
	for id := range p.tokens {
		stale = append(stale, id)
	}
	p.stale = stale
	sort.Ints(stale)
	for _, id := range stale {
		if !p.live[id] {
			delete(p.tokens, id)
			delete(p.last, id)
		}
	}

	// Candidate set: tokens within CandidateFraction of the maximum.
	maxTok := 0.0
	for _, t := range tasks {
		if p.tokens[t.ID] > maxTok {
			maxTok = p.tokens[t.ID]
		}
	}
	best := -1
	bestRem := int64(0)
	for i, t := range tasks {
		if p.tokens[t.ID] < p.CandidateFraction*maxTok {
			continue
		}
		rem := t.RemainingCycles(total)
		if best < 0 || rem < bestRem || (rem == bestRem && t.ID < tasks[best].ID) {
			best = i
			bestRem = rem
		}
	}
	if best < 0 {
		best = 0
	}
	bt := tasks[best]
	p.cDecisions.Inc()
	p.gMaxToken.Max(maxTok)
	if !p.haveDisp || p.dispatched != bt.ID {
		if p.haveDisp {
			p.cSwitches.Inc()
			if p.tracer != nil {
				p.tracer.Instant("prema", fmt.Sprintf("dispatch task %d", bt.ID), now,
					obs.Str("model", bt.Req.Model),
					obs.Num("token", p.tokens[bt.ID]),
					obs.Num("max_token", maxTok))
			}
		}
		p.dispatched, p.haveDisp = bt.ID, true
	}
	// The dispatched task's token resets, as in PREMA, so others catch up.
	p.tokens[bt.ID] = float64(bt.Req.Priority)
	return best
}

var _ obs.Observable = (*Token)(nil)

var _ sim.Policy = (*Token)(nil)

var _ sim.SliceAllocator = (*Token)(nil)

var _ sim.HealthAware = (*Token)(nil)

// Isolated returns the task's isolated execution time on the monolithic
// accelerator, used by the fairness metric.
func Isolated(t *sim.Task, cfg arch.Config) float64 {
	return cfg.Seconds(t.Prog.Table(cfg.NumSubarrays()).TotalCycles)
}
