package prema

import (
	"testing"

	"planaria/internal/arch"
	"planaria/internal/compiler"
	"planaria/internal/dnn"
	"planaria/internal/sim"
	"planaria/internal/workload"
)

func toyProg(t *testing.T, cfg arch.Config) *compiler.Program {
	t.Helper()
	b := dnn.NewBuilder("prema-toy", "classification", 32, 32, 8)
	b.Conv("c1", 32, 3, 1)
	b.GlobalPool("gp")
	b.FC("fc", 10)
	net, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	p, err := compiler.CompileProgram(net, cfg, false)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func mkTask(id, prio int, prog *compiler.Program) *sim.Task {
	return &sim.Task{
		ID:     id,
		Req:    workload.Request{ID: id, Priority: prio, Deadline: 1},
		Prog:   prog,
		Finish: -1,
	}
}

func TestSingleOwnerAtATime(t *testing.T) {
	cfg := arch.Monolithic()
	p := toyProg(t, cfg)
	pol := NewToken(cfg)
	tasks := []*sim.Task{mkTask(0, 3, p), mkTask(1, 7, p), mkTask(2, 11, p)}
	alloc := pol.Allocate(0, tasks, 1)
	owners := 0
	for _, a := range alloc {
		if a > 0 {
			owners++
			if a != 1 {
				t.Fatalf("owner granted %d of 1", a)
			}
		}
	}
	if owners != 1 {
		t.Fatalf("%d owners, want exactly 1", owners)
	}
}

func TestTokensAccrueForWaiters(t *testing.T) {
	cfg := arch.Monolithic()
	p := toyProg(t, cfg)
	pol := NewToken(cfg)
	a := mkTask(0, 2, p)
	b := mkTask(1, 10, p)
	tasks := []*sim.Task{a, b}

	first := pol.Allocate(0, tasks, 1)
	var runner, waiter *sim.Task
	if first[a.ID] == 1 {
		runner, waiter = a, b
	} else {
		runner, waiter = b, a
	}
	runner.Alloc = 1
	// After the waiter has waited, its token (priority × wait) overtakes
	// the runner's reset token and it preempts.
	later := pol.Allocate(0.05, tasks, 1)
	if later[waiter.ID] != 1 {
		t.Fatalf("waiter (prio %d) not scheduled after waiting: %v", waiter.Req.Priority, later)
	}
}

func TestHigherPriorityWinsInitially(t *testing.T) {
	cfg := arch.Monolithic()
	p := toyProg(t, cfg)
	pol := NewToken(cfg)
	lo := mkTask(0, 1, p)
	hi := mkTask(1, 11, p)
	alloc := pol.Allocate(0, []*sim.Task{lo, hi}, 1)
	if alloc[hi.ID] != 1 {
		t.Fatalf("high-priority task not scheduled first: %v", alloc)
	}
}

func TestFinishedTasksForgotten(t *testing.T) {
	cfg := arch.Monolithic()
	p := toyProg(t, cfg)
	pol := NewToken(cfg)
	a := mkTask(0, 5, p)
	pol.Allocate(0, []*sim.Task{a}, 1)
	if len(pol.tokens) != 1 {
		t.Fatalf("tokens = %d, want 1", len(pol.tokens))
	}
	b := mkTask(1, 5, p)
	pol.Allocate(1, []*sim.Task{b}, 1)
	if _, ok := pol.tokens[a.ID]; ok {
		t.Fatal("departed task still holds a token")
	}
}

func TestQuantumPositive(t *testing.T) {
	if NewToken(arch.Monolithic()).Quantum() <= 0 {
		t.Fatal("PREMA needs a positive scheduling quantum for token re-evaluation")
	}
}
