package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strconv"
	"sync"
)

// An Arg is one key/value annotation attached to a trace event. Args keep
// their call-site order in the exported JSON.
type Arg struct {
	Key string
	Str string
	Num float64
	num bool
}

// Str constructs a string-valued Arg.
func Str(key, value string) Arg { return Arg{Key: key, Str: value} }

// Num constructs a numeric Arg.
func Num(key string, value float64) Arg { return Arg{Key: key, Num: value, num: true} }

// event phases of the Chrome trace-event format.
const (
	phaseComplete = 'X' // span with ts + dur
	phaseInstant  = 'i'
	phaseCounter  = 'C'
)

// traceEvent is one recorded timeline entry in builder-native units.
// Counter samples store their value inline (cval) instead of an args
// slice so the hot Counter path allocates nothing per sample; the
// encoder synthesizes the identical {"series":value} args object.
type traceEvent struct {
	phase byte
	name  string
	track int
	ts    float64
	dur   float64
	cval  float64
	args  []Arg
}

// traceCore is the storage shared by prefix-scoped TraceBuilder views.
type traceCore struct {
	mu       sync.Mutex
	scale    float64 // microseconds per timestamp unit
	tracks   []string
	trackIDs map[string]int
	events   []traceEvent
}

// TraceBuilder records a simulated-time timeline and exports it in the
// Chrome trace-event JSON format, which Perfetto (ui.perfetto.dev) and
// chrome://tracing load directly. Tracks become named threads; spans,
// instants, and counter series land on them in record order.
//
// Timestamps are simulated time in whatever unit the caller works in
// (seconds for the serving simulator, cycles for the systolic grid); the
// scale passed to NewTraceBuilder converts that unit to the format's
// microseconds. All methods are nil-safe no-ops on a nil receiver and
// safe for concurrent use.
type TraceBuilder struct {
	core   *traceCore
	prefix string
}

// NewTraceBuilder returns an empty builder whose timestamps are
// multiplied by scale to obtain microseconds (0 means 1: timestamps are
// already microseconds).
//perf:cold once-per-run constructor
func NewTraceBuilder(scale float64) *TraceBuilder {
	if scale == 0 {
		scale = 1
	}
	return &TraceBuilder{core: &traceCore{scale: scale, trackIDs: map[string]int{}}}
}

// WithPrefix returns a view that prepends prefix to every track name,
// sharing the parent's storage.
func (tb *TraceBuilder) WithPrefix(prefix string) *TraceBuilder {
	if tb == nil {
		return nil
	}
	return &TraceBuilder{core: tb.core, prefix: tb.prefix + prefix}
}

// track interns a track name. Caller holds core.mu.
func (c *traceCore) track(name string) int {
	if id, ok := c.trackIDs[name]; ok {
		return id
	}
	id := len(c.tracks)
	c.tracks = append(c.tracks, name)
	c.trackIDs[name] = id
	return id
}

func (tb *TraceBuilder) record(phase byte, track, name string, ts, dur float64, args []Arg) {
	if tb == nil {
		return
	}
	c := tb.core
	c.mu.Lock()
	c.events = append(c.events, traceEvent{
		phase: phase,
		name:  name,
		track: c.track(tb.prefix + track),
		ts:    ts,
		dur:   dur,
		args:  args,
	})
	c.mu.Unlock()
}

// Span records a completed slice [start, end] on a track.
func (tb *TraceBuilder) Span(track, name string, start, end float64, args ...Arg) {
	if end < start {
		end = start
	}
	tb.record(phaseComplete, track, name, start, end-start, args)
}

// Instant records a point event on a track.
func (tb *TraceBuilder) Instant(track, name string, ts float64, args ...Arg) {
	tb.record(phaseInstant, track, name, ts, 0, args)
}

// Counter records a sample of a counter series. Perfetto renders each
// counter name as its own numeric track. The sample value lands inline
// in the event record — no per-sample args allocation.
func (tb *TraceBuilder) Counter(track, series string, ts, value float64) {
	if tb == nil {
		return
	}
	c := tb.core
	c.mu.Lock()
	c.events = append(c.events, traceEvent{
		phase: phaseCounter,
		name:  series,
		track: c.track(tb.prefix + track),
		ts:    ts,
		cval:  value,
	})
	c.mu.Unlock()
}

// Reserve pre-grows the event buffer so the next n recordings append
// without reallocating. Nil-safe no-op.
func (tb *TraceBuilder) Reserve(n int) {
	if tb == nil || n <= 0 {
		return
	}
	c := tb.core
	c.mu.Lock()
	if free := cap(c.events) - len(c.events); free < n {
		grown := make([]traceEvent, len(c.events), len(c.events)+n)
		copy(grown, c.events)
		c.events = grown
	}
	c.mu.Unlock()
}

// Len returns the number of recorded events.
func (tb *TraceBuilder) Len() int {
	if tb == nil {
		return 0
	}
	c := tb.core
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.events)
}

// jsonString renders s as a JSON string literal (deterministic; falls
// back to quoting on the never-expected marshal error).
func jsonString(s string) string {
	b, err := json.Marshal(s)
	if err != nil {
		return strconv.Quote(s)
	}
	return string(b)
}

// jsonFloat renders a finite float compactly and deterministically.
func jsonFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func appendArgs(buf *bytes.Buffer, args []Arg) {
	buf.WriteByte('{')
	for i, a := range args {
		if i > 0 {
			buf.WriteByte(',')
		}
		buf.WriteString(jsonString(a.Key))
		buf.WriteByte(':')
		if a.num {
			buf.WriteString(jsonFloat(a.Num))
		} else {
			buf.WriteString(jsonString(a.Str))
		}
	}
	buf.WriteByte('}')
}

// JSON encodes the timeline as a Chrome trace-event document. The
// encoding is hand-rolled so the bytes are a pure function of the
// recorded events: process/thread metadata first (tracks in registration
// order), then events in record order.
func (tb *TraceBuilder) JSON() []byte {
	var c *traceCore
	if tb != nil {
		c = tb.core
	}
	var buf bytes.Buffer
	buf.WriteString("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n")
	first := true
	emit := func(line string) {
		if !first {
			buf.WriteString(",\n")
		}
		first = false
		buf.WriteString(line)
	}
	emit(`{"name":"process_name","ph":"M","pid":0,"tid":0,"args":{"name":"planaria-sim"}}`)
	if c != nil {
		c.mu.Lock()
		defer c.mu.Unlock()
		for id, name := range c.tracks {
			emit(fmt.Sprintf(`{"name":"thread_name","ph":"M","pid":0,"tid":%d,"args":{"name":%s}}`,
				id+1, jsonString(name)))
			emit(fmt.Sprintf(`{"name":"thread_sort_index","ph":"M","pid":0,"tid":%d,"args":{"sort_index":%d}}`,
				id+1, id+1))
		}
		for _, e := range c.events {
			var line bytes.Buffer
			name := e.name
			if e.phase == phaseCounter {
				// Perfetto keys counter tracks by (pid, name); qualify the
				// series with its track so same-named series on different
				// tracks stay separate.
				name = c.tracks[e.track] + ":" + e.name
			}
			fmt.Fprintf(&line, `{"name":%s,"ph":"%c","ts":%s`,
				jsonString(name), e.phase, jsonFloat(e.ts*c.scale))
			if e.phase == phaseComplete {
				fmt.Fprintf(&line, `,"dur":%s`, jsonFloat(e.dur*c.scale))
			}
			fmt.Fprintf(&line, `,"pid":0,"tid":%d`, e.track+1)
			if e.phase == phaseInstant {
				line.WriteString(`,"s":"t"`)
			}
			if e.phase == phaseCounter {
				// Counter values live inline; synthesize the one-entry
				// args object the format expects, byte-identical to the
				// old []Arg encoding.
				line.WriteString(`,"args":{`)
				line.WriteString(jsonString(e.name))
				line.WriteByte(':')
				line.WriteString(jsonFloat(e.cval))
				line.WriteByte('}')
			} else if len(e.args) > 0 {
				line.WriteString(`,"args":`)
				appendArgs(&line, e.args)
			}
			line.WriteByte('}')
			emit(line.String())
		}
	}
	buf.WriteString("\n]}\n")
	return buf.Bytes()
}
