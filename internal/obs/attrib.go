package obs

import "math"

// SLA root-cause attribution (DESIGN.md §14): every request's life is a
// chain of phases — front-door admission throttling, batch-window
// waiting, queueing behind co-tenants, compute, preemption stalls, retry
// backoff, fault outages — ending in a terminal cause. The Ledger below
// records that chain as phase-boundary *instants* on simulated time, so
// the span between consecutive marks is attributable exactly: the sum of
// a record's phase spans telescopes to end − start as real numbers (the
// cluster invariant suite verifies this with math/big exact arithmetic).
// Storing durations instead would round at every accumulation and break
// the conservation identity.

// Phase is one segment of a request's life between admission to the
// serving system and its terminal event. Values index fixed-size
// duration arrays, so the order here is load-bearing; it is also the
// tie-break order of the dominant-cause rule (earlier phase wins ties).
type Phase uint8

const (
	// PhaseAdmitWait is time spent in the cluster front door waiting for
	// an admission-control token.
	PhaseAdmitWait Phase = iota
	// PhaseBatchWait is time spent parked in a dynamic-batching window
	// after admission, waiting for the window to close.
	PhaseBatchWait
	// PhaseQueueWait is time spent dispatched to a chip but allocated
	// zero subarrays — queued behind co-tenants by the fission policy.
	PhaseQueueWait
	// PhaseCompute is time spent running on a nonzero subarray
	// allocation with no outstanding reconfiguration penalty.
	PhaseCompute
	// PhasePreemptStall is time spent paying a re-allocation penalty
	// (tile drain, checkpoint DMA, configuration load) after a fission
	// decision changed the task's allocation.
	PhasePreemptStall
	// PhaseRetryBackoff is time spent waiting out the capped exponential
	// backoff after a fault killed the task.
	PhaseRetryBackoff
	// PhaseFaultStall is time spent waiting while the chip had zero
	// usable capacity (every subarray masked by faults).
	PhaseFaultStall
	// PhaseDrainMigrate is time a dispatched-but-unstarted request spent
	// parked on a chip that then began a graceful drain, measured from
	// its original dispatch to the drain instant where it was migrated
	// (or shed, when no routable chip remained).
	PhaseDrainMigrate

	// NumPhases sizes per-phase duration arrays.
	NumPhases int = iota
)

// String names the phase as it appears in artifacts and tables.
func (p Phase) String() string {
	switch p {
	case PhaseAdmitWait:
		return "admit-wait"
	case PhaseBatchWait:
		return "batch-wait"
	case PhaseQueueWait:
		return "queue-wait"
	case PhaseCompute:
		return "compute"
	case PhasePreemptStall:
		return "preempt-stall"
	case PhaseRetryBackoff:
		return "retry-backoff"
	case PhaseFaultStall:
		return "fault-stall"
	case PhaseDrainMigrate:
		return "drain-migrate"
	default:
		return "phase(?)"
	}
}

// Cause is a record's terminal state. CauseOpen (the zero value) marks a
// record still in flight; everything else closes it.
type Cause uint8

const (
	// CauseOpen: the record has not reached a terminal event.
	CauseOpen Cause = iota
	// CauseDone: the request completed.
	CauseDone
	// CauseDispatched closes a front-door record whose request was
	// handed to a chip; the chip's ledger record continues the timeline
	// from the same instant.
	CauseDispatched
	// CauseShedAdmission: the front-door admission bucket overflowed.
	CauseShedAdmission
	// CauseShedUnroutable: no healthy chip was left to dispatch to.
	CauseShedUnroutable
	// CauseShedChip: the chip's local admission control declined the
	// request (doomed deadline or priority pressure).
	CauseShedChip
	// CauseShedRetries: the request exhausted its fault-retry budget.
	CauseShedRetries
	// CauseShedDeadChip: the chip died permanently and drained its
	// queue.
	CauseShedDeadChip
	// CauseRejected: no program exists for the request's model.
	CauseRejected
	// CauseShedDrain: the request was queued on a draining chip and no
	// routable chip remained to migrate it to.
	CauseShedDrain

	// NumCauses sizes per-cause count arrays.
	NumCauses int = iota
)

// String names the cause as it appears in artifacts and tables.
func (c Cause) String() string {
	switch c {
	case CauseOpen:
		return "open"
	case CauseDone:
		return "done"
	case CauseDispatched:
		return "dispatched"
	case CauseShedAdmission:
		return "shed-admission"
	case CauseShedUnroutable:
		return "shed-unroutable"
	case CauseShedChip:
		return "shed-chip"
	case CauseShedRetries:
		return "shed-retries"
	case CauseShedDeadChip:
		return "shed-dead-chip"
	case CauseRejected:
		return "rejected"
	case CauseShedDrain:
		return "shed-drain"
	default:
		return "cause(?)"
	}
}

// PhaseSpan is one chronological segment of a record: the request was in
// Phase from From to To (simulated seconds).
type PhaseSpan struct {
	Phase    Phase
	From, To float64
}

// attribMark is one phase boundary. Marks for all records share one
// arena and chain backwards through prev, so stamping is a single
// amortized append regardless of how records interleave.
type attribMark struct {
	t     float64
	prev  int32
	phase Phase
}

// Ledger records per-request phase chains for one run. Records are
// addressed by position (the caller's request-slice index). All methods
// are nil-safe no-ops, so simulators carry their stamps unconditionally
// behind `if led != nil` guards and pay only an untaken branch when
// attribution is off. A Ledger is single-goroutine like the engine that
// feeds it; storage is arena-backed and reusable via Reset, so warm
// stamping allocates nothing (pinned by TestLedgerZeroAllocs).
type Ledger struct {
	marks []attribMark
	head  []int32   // per record: latest mark index, -1 = none
	end   []float64 // per record: terminal instant, NaN while open
	cause []Cause   // per record: CauseOpen while in flight
}

// NewLedger returns a ledger with n empty records.
//
//perf:cold once-per-run constructor
func NewLedger(n int) *Ledger {
	l := &Ledger{}
	l.Reset(n)
	return l
}

// Reset re-initializes the ledger for n records, reusing prior capacity.
//
//perf:cold per-run (re)initialization, not a per-event probe
func (l *Ledger) Reset(n int) {
	if l == nil || n < 0 {
		return
	}
	if cap(l.head) < n {
		l.head = make([]int32, n)
		l.end = make([]float64, n)
		l.cause = make([]Cause, n)
	}
	l.head = l.head[:n]
	l.end = l.end[:n]
	l.cause = l.cause[:n]
	nan := math.NaN()
	for i := range l.head {
		l.head[i] = -1
		l.end[i] = nan
		l.cause[i] = CauseOpen
	}
	l.marks = l.marks[:0]
}

// Len returns the record count (0 on a nil ledger).
func (l *Ledger) Len() int {
	if l == nil {
		return 0
	}
	return len(l.head)
}

// stamp appends one phase boundary, clamping t monotone against the
// record's latest mark (admission can fire up to simtime.Eps before the
// nominal arrival; the clamp absorbs that skew so spans never run
// backwards).
func (l *Ledger) stamp(pos int, t float64, p Phase) {
	if h := l.head[pos]; h >= 0 && t < l.marks[h].t {
		t = l.marks[h].t
	}
	l.marks = append(l.marks, attribMark{t: t, prev: l.head[pos], phase: p})
	l.head[pos] = int32(len(l.marks) - 1)
}

// Open starts a record's phase chain at instant t. Opening an already
// open record behaves like Mark.
func (l *Ledger) Open(pos int, t float64, p Phase) {
	if l == nil || pos < 0 || pos >= len(l.head) {
		return
	}
	l.stamp(pos, t, p)
}

// Mark transitions a record into phase p at instant t. The preceding
// phase's span ends here.
func (l *Ledger) Mark(pos int, t float64, p Phase) {
	if l == nil || pos < 0 || pos >= len(l.head) {
		return
	}
	l.stamp(pos, t, p)
}

// Close terminates a record at instant t with the given cause. The
// current phase's span ends at t.
func (l *Ledger) Close(pos int, t float64, c Cause) {
	if l == nil || pos < 0 || pos >= len(l.head) {
		return
	}
	if h := l.head[pos]; h >= 0 && t < l.marks[h].t {
		t = l.marks[h].t
	}
	l.end[pos] = t
	l.cause[pos] = c
}

// Reopen re-enters a closed record in phase p, starting at the instant
// the record was closed — the cluster autoscaler uses it when a graceful
// drain pulls an already-dispatched request back into the front door for
// migration: the [close, re-close] gap becomes an attributable span
// instead of a hole. No-op while the record is still open (there is
// nothing to resume from).
func (l *Ledger) Reopen(pos int, p Phase) {
	if l == nil || pos < 0 || pos >= len(l.head) {
		return
	}
	t := l.end[pos]
	if math.IsNaN(t) {
		return
	}
	l.end[pos] = math.NaN()
	l.cause[pos] = CauseOpen
	l.stamp(pos, t, p)
}

// Terminal is Open+Close in one call, for records that never queue: the
// whole [from, to] span lands in phase p with terminal cause c.
func (l *Ledger) Terminal(pos int, from, to float64, p Phase, c Cause) {
	l.Open(pos, from, p)
	l.Close(pos, to, c)
}

// Closed reports whether the record has reached its terminal event.
func (l *Ledger) Closed(pos int) bool {
	if l == nil || pos < 0 || pos >= len(l.end) {
		return false
	}
	return !math.IsNaN(l.end[pos])
}

// Cause returns the record's terminal cause (CauseOpen while in flight
// or on a nil ledger).
func (l *Ledger) Cause(pos int) Cause {
	if l == nil || pos < 0 || pos >= len(l.cause) {
		return CauseOpen
	}
	return l.cause[pos]
}

// Start returns the record's first mark instant (NaN if never opened).
func (l *Ledger) Start(pos int) float64 {
	if l == nil || pos < 0 || pos >= len(l.head) || l.head[pos] < 0 {
		return math.NaN()
	}
	i := l.head[pos]
	for l.marks[i].prev >= 0 {
		i = l.marks[i].prev
	}
	return l.marks[i].t
}

// End returns the record's terminal instant (NaN while open).
func (l *Ledger) End(pos int) float64 {
	if l == nil || pos < 0 || pos >= len(l.end) {
		return math.NaN()
	}
	return l.end[pos]
}

// Current returns the record's latest phase and whether the record has
// any marks at all.
func (l *Ledger) Current(pos int) (Phase, bool) {
	if l == nil || pos < 0 || pos >= len(l.head) || l.head[pos] < 0 {
		return 0, false
	}
	return l.marks[l.head[pos]].phase, true
}

// Durations accumulates the record's per-phase spans into dur. Each span
// is the float64 difference of two recorded instants; summing them
// rounds, so exact-conservation checks must use Spans with big-float
// arithmetic instead. Returns false (adding nothing) while the record is
// open or absent.
func (l *Ledger) Durations(pos int, dur *[NumPhases]float64) bool {
	if l == nil || pos < 0 || pos >= len(l.head) {
		return false
	}
	h := l.head[pos]
	if h < 0 || math.IsNaN(l.end[pos]) {
		return false
	}
	next := l.end[pos]
	for i := h; i >= 0; i = l.marks[i].prev {
		m := &l.marks[i]
		dur[m.phase] += next - m.t
		next = m.t
	}
	return true
}

// Spans appends the record's chronological phase spans to buf and
// returns it. Consecutive spans share their boundary instants bit-exactly
// (span[i].To == span[i+1].From), which is what makes big-float
// telescoping over the result exact.
func (l *Ledger) Spans(pos int, buf []PhaseSpan) []PhaseSpan {
	if l == nil || pos < 0 || pos >= len(l.head) {
		return buf
	}
	h := l.head[pos]
	if h < 0 || math.IsNaN(l.end[pos]) {
		return buf
	}
	start := len(buf)
	next := l.end[pos]
	for i := h; i >= 0; i = l.marks[i].prev {
		m := &l.marks[i]
		buf = append(buf, PhaseSpan{Phase: m.phase, From: m.t, To: next})
		next = m.t
	}
	// Reverse the appended run into chronological order.
	for a, b := start, len(buf)-1; a < b; a, b = a+1, b-1 {
		buf[a], buf[b] = buf[b], buf[a]
	}
	return buf
}
