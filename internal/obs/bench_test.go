package obs

import (
	"strings"
	"testing"
)

const sampleBenchOutput = `goos: linux
goarch: amd64
pkg: planaria
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkFig12Throughput-8   	       1	52341234567 ns/op	        12.50 ratioA-S	         8.20 ratioB-S
BenchmarkFig13SLA-8          	       1	  41234567 ns/op	        25.00 gainC-S-%
BenchmarkGridRun/medium_128x16x16-8  	    2001	   1148901 ns/op	       163.0 cycles	  601242 B/op	     512 allocs/op
PASS
ok  	planaria	95.1s
`

func TestParseBench(t *testing.T) {
	rep, err := ParseBench(strings.NewReader(sampleBenchOutput))
	if err != nil {
		t.Fatal(err)
	}
	if rep.GOOS != "linux" || rep.GOARCH != "amd64" || rep.Pkg != "planaria" {
		t.Fatalf("header = %+v", rep)
	}
	if len(rep.Results) != 3 {
		t.Fatalf("parsed %d results, want 3", len(rep.Results))
	}
	// Sorted by name.
	if rep.Results[0].Name != "BenchmarkFig12Throughput" ||
		rep.Results[2].Name != "BenchmarkGridRun/medium_128x16x16" {
		t.Fatalf("order: %q, %q, %q", rep.Results[0].Name, rep.Results[1].Name, rep.Results[2].Name)
	}
	r := rep.Results[0]
	if r.Iterations != 1 || r.NsPerOp != 52341234567 {
		t.Fatalf("fig12 = %+v", r)
	}
	if r.Metrics["ratioA-S"] != 12.5 || r.Metrics["ratioB-S"] != 8.2 {
		t.Fatalf("fig12 metrics = %v", r.Metrics)
	}
	g := rep.Results[2]
	if g.BytesPerOp != 601242 || g.AllocsOp != 512 || g.Metrics["cycles"] != 163 {
		t.Fatalf("gridrun = %+v", g)
	}
}

func TestBenchJSONDeterministic(t *testing.T) {
	parse := func() string {
		rep, err := ParseBench(strings.NewReader(sampleBenchOutput))
		if err != nil {
			t.Fatal(err)
		}
		rep.BenchTime = "1x"
		b, err := rep.JSON()
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	a, b := parse(), parse()
	if a != b {
		t.Fatal("bench JSON differs between identical parses")
	}
	if !strings.Contains(a, `"ns_per_op"`) || !strings.Contains(a, `"ratioA-S"`) {
		t.Fatalf("bench JSON missing fields:\n%s", a)
	}
	if strings.Contains(a, "time") && strings.Contains(a, "stamp") {
		t.Fatal("bench JSON must not embed a wall-clock timestamp")
	}
}

func TestParseBenchSkipsGarbage(t *testing.T) {
	rep, err := ParseBench(strings.NewReader("Benchmark\nBenchmarkX notanumber\nrandom text\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 0 {
		t.Fatalf("garbage parsed into %d results", len(rep.Results))
	}
}
