package obs

import (
	"strings"
	"testing"
)

const sampleBenchOutput = `goos: linux
goarch: amd64
pkg: planaria
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkFig12Throughput-8   	       1	52341234567 ns/op	        12.50 ratioA-S	         8.20 ratioB-S
BenchmarkFig13SLA-8          	       1	  41234567 ns/op	        25.00 gainC-S-%
BenchmarkGridRun/medium_128x16x16-8  	    2001	   1148901 ns/op	       163.0 cycles	  601242 B/op	     512 allocs/op
PASS
ok  	planaria	95.1s
`

func TestParseBench(t *testing.T) {
	rep, err := ParseBench(strings.NewReader(sampleBenchOutput))
	if err != nil {
		t.Fatal(err)
	}
	if rep.GOOS != "linux" || rep.GOARCH != "amd64" || rep.Pkg != "planaria" {
		t.Fatalf("header = %+v", rep)
	}
	if len(rep.Results) != 3 {
		t.Fatalf("parsed %d results, want 3", len(rep.Results))
	}
	// Sorted by name.
	if rep.Results[0].Name != "BenchmarkFig12Throughput" ||
		rep.Results[2].Name != "BenchmarkGridRun/medium_128x16x16" {
		t.Fatalf("order: %q, %q, %q", rep.Results[0].Name, rep.Results[1].Name, rep.Results[2].Name)
	}
	r := rep.Results[0]
	if r.Iterations != 1 || r.NsPerOp != 52341234567 {
		t.Fatalf("fig12 = %+v", r)
	}
	if r.Metrics["ratioA-S"] != 12.5 || r.Metrics["ratioB-S"] != 8.2 {
		t.Fatalf("fig12 metrics = %v", r.Metrics)
	}
	g := rep.Results[2]
	if g.BytesPerOp != 601242 || g.AllocsOp != 512 || g.Metrics["cycles"] != 163 {
		t.Fatalf("gridrun = %+v", g)
	}
}

func TestBenchJSONDeterministic(t *testing.T) {
	parse := func() string {
		rep, err := ParseBench(strings.NewReader(sampleBenchOutput))
		if err != nil {
			t.Fatal(err)
		}
		rep.BenchTime = "1x"
		b, err := rep.JSON()
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	a, b := parse(), parse()
	if a != b {
		t.Fatal("bench JSON differs between identical parses")
	}
	if !strings.Contains(a, `"ns_per_op"`) || !strings.Contains(a, `"ratioA-S"`) {
		t.Fatalf("bench JSON missing fields:\n%s", a)
	}
	if strings.Contains(a, "time") && strings.Contains(a, "stamp") {
		t.Fatal("bench JSON must not embed a wall-clock timestamp")
	}
}

func TestCompareBench(t *testing.T) {
	base := &BenchReport{Results: []BenchResult{
		{Name: "BenchmarkA", NsPerOp: 1000e6, AllocsOp: 100},
		{Name: "BenchmarkB", NsPerOp: 2000e6, AllocsOp: 50},
		{Name: "BenchmarkBaselineOnly", NsPerOp: 10e6},
	}}
	t.Run("within tolerance passes", func(t *testing.T) {
		cur := &BenchReport{Results: []BenchResult{
			{Name: "BenchmarkA", NsPerOp: 1190e6, AllocsOp: 119}, // +19%
			{Name: "BenchmarkB", NsPerOp: 1500e6, AllocsOp: 50},
			{Name: "BenchmarkCurrentOnly", NsPerOp: 1e12}, // not in baseline: skipped
		}}
		if regs := CompareBench(base, cur, 20); len(regs) != 0 {
			t.Fatalf("unexpected regressions: %v", regs)
		}
	})
	t.Run("ns/op regression fails", func(t *testing.T) {
		cur := &BenchReport{Results: []BenchResult{
			{Name: "BenchmarkA", NsPerOp: 1250e6, AllocsOp: 100}, // +25%
			{Name: "BenchmarkB", NsPerOp: 2000e6, AllocsOp: 50},
		}}
		regs := CompareBench(base, cur, 20)
		if len(regs) != 1 || !strings.Contains(regs[0], "BenchmarkA") || !strings.Contains(regs[0], "ns/op") {
			t.Fatalf("regressions = %v", regs)
		}
	})
	t.Run("allocs/op regression fails", func(t *testing.T) {
		cur := &BenchReport{Results: []BenchResult{
			{Name: "BenchmarkA", NsPerOp: 1000e6, AllocsOp: 100},
			{Name: "BenchmarkB", NsPerOp: 2000e6, AllocsOp: 61}, // +22%
		}}
		regs := CompareBench(base, cur, 20)
		if len(regs) != 1 || !strings.Contains(regs[0], "BenchmarkB") || !strings.Contains(regs[0], "allocs/op") {
			t.Fatalf("regressions = %v", regs)
		}
	})
	t.Run("missing benchmarks are skipped", func(t *testing.T) {
		if regs := CompareBench(base, &BenchReport{}, 20); len(regs) != 0 {
			t.Fatalf("empty current report regressed: %v", regs)
		}
	})
	t.Run("sub-floor ns is not gated, its allocs are", func(t *testing.T) {
		micro := &BenchReport{Results: []BenchResult{
			{Name: "BenchmarkMicro", NsPerOp: 10e3, AllocsOp: 10},
		}}
		cur := &BenchReport{Results: []BenchResult{
			{Name: "BenchmarkMicro", NsPerOp: 90e3, AllocsOp: 10}, // 9× ns: cold-run noise
		}}
		if regs := CompareBench(micro, cur, 20); len(regs) != 0 {
			t.Fatalf("sub-floor ns/op gated: %v", regs)
		}
		cur.Results[0].AllocsOp = 13 // +30%: real churn
		regs := CompareBench(micro, cur, 20)
		if len(regs) != 1 || !strings.Contains(regs[0], "allocs/op") {
			t.Fatalf("sub-floor allocs regression missed: %v", regs)
		}
	})
}

func TestLoadBenchReportRoundTrip(t *testing.T) {
	rep, err := ParseBench(strings.NewReader(sampleBenchOutput))
	if err != nil {
		t.Fatal(err)
	}
	data, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	got, err := LoadBenchReport(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Results) != len(rep.Results) || got.Results[0].Name != rep.Results[0].Name {
		t.Fatalf("round trip lost results: %+v", got.Results)
	}
	// A round-tripped report gates cleanly against itself.
	if regs := CompareBench(rep, got, 0); len(regs) != 0 {
		t.Fatalf("self-comparison regressed: %v", regs)
	}
	if _, err := LoadBenchReport([]byte("{not json")); err == nil {
		t.Fatal("malformed baseline did not error")
	}
}

func TestParseBenchSkipsGarbage(t *testing.T) {
	rep, err := ParseBench(strings.NewReader("Benchmark\nBenchmarkX notanumber\nrandom text\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 0 {
		t.Fatalf("garbage parsed into %d results", len(rep.Results))
	}
}
