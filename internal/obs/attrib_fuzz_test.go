package obs

import "testing"

// FuzzAttribReportJSON round-trips the BENCH_attrib.json report schema:
// any bytes LoadAttribReport accepts must re-encode and re-load to the
// same canonical JSON, so two decode/encode hops converge — the property
// the CI byte-identity gate and downstream tooling rely on. Inputs the
// loader rejects must be rejected without panicking.
func FuzzAttribReportJSON(f *testing.F) {
	f.Add([]byte(`{"groups":[]}`))
	f.Add([]byte(`{"groups":[{"model":"ResNet-50","level":"QoS-H","requests":2,` +
		`"completed":1,"violations":1,` +
		`"dominant":[{"cause":"shed-chip","count":1}],` +
		`"phases":[{"phase":"compute","count":2,"sum_s":0.5,"mean_s":0.25,"p50_s":0.25,"p99_s":0.3}]}],` +
		`"chips":[{"chip":0,"units":16,"horizon_cycles":100,"busy_cycles":40,` +
		`"idle_cycles":58,"faulted_cycles":1,"reconfig_cycles":1,"utilization":0.025,"pressure":0.5}],` +
		`"fleet":{"chip":-1,"units":16,"horizon_cycles":100,"busy_cycles":40,` +
		`"idle_cycles":58,"faulted_cycles":1,"reconfig_cycles":1,"utilization":0.025,"pressure":0.5}}`))
	f.Add([]byte(`{"groups":[{"model":"m","level":"q","requests":1,"completed":0,` +
		`"violations":1,"phases":[]}]}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`not json`))
	f.Add([]byte(`{"groups":[{"phases":[{"sum_s":1e308}]}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		rep, err := LoadAttribReport(data)
		if err != nil {
			return // rejection without panic is the contract
		}
		j1, err := rep.JSON()
		if err != nil {
			t.Fatalf("accepted report failed to encode: %v", err)
		}
		rep2, err := LoadAttribReport(j1)
		if err != nil {
			t.Fatalf("canonical encoding rejected: %v\n%s", err, j1)
		}
		j2, err := rep2.JSON()
		if err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		if string(j1) != string(j2) {
			t.Fatalf("round trip not a fixed point:\n%s\n---\n%s", j1, j2)
		}
		// Text rendering of anything the loader accepts must not panic.
		_ = rep.Text()
	})
}
