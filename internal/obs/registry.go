package obs

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// A Label is one key=value dimension of a metric series.
type Label struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// metricKind discriminates the series types.
type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// metric is one registered series. Which fields are live depends on kind.
type metric struct {
	name   string
	labels []Label // sorted by key
	kind   metricKind

	value   float64   // counter total / gauge level
	bounds  []float64 // histogram upper bounds (exclusive of +Inf)
	buckets []uint64  // len(bounds)+1; last is the +Inf bucket
	count   uint64
	sum     float64
}

// regCore is the shared storage behind possibly-many label-scoped
// Registry views.
type regCore struct {
	mu      sync.Mutex
	series  map[string]*metric
	ordered []string // series ids in registration order (snapshot sorts)
}

// Registry is a deterministic metrics registry. The zero value is not
// usable; construct with NewRegistry. All methods are safe on a nil
// receiver (no-ops) and for concurrent use.
//
// The registry is append-only by contract: there is deliberately no
// Remove or per-series reset. A series, once registered, lives as long
// as the registry, its handles stay valid forever, re-registering the
// same (name, label set) returns the same storage, and every Snapshot's
// series set is a superset of every earlier one. This is what makes
// cached handles safe to hold across runs and snapshot encodings
// byte-stable as instrumentation accumulates; a run that wants a clean
// slate constructs a fresh registry (they are one map allocation).
// registry_test.go asserts this contract.
type Registry struct {
	core *regCore
	base []Label // labels every series of this view carries
}

// NewRegistry returns an empty registry.
//
//perf:cold once-per-run constructor
func NewRegistry() *Registry {
	return &Registry{core: &regCore{series: map[string]*metric{}}}
}

// With returns a view whose every series carries the given labels in
// addition to the view's existing base labels. Storage is shared with
// the parent.
func (r *Registry) With(labels ...Label) *Registry {
	if r == nil {
		return nil
	}
	base := make([]Label, 0, len(r.base)+len(labels))
	base = append(base, r.base...)
	base = append(base, labels...)
	return &Registry{core: r.core, base: base}
}

// seriesID renders the canonical identity of a series: the name plus its
// label set sorted by key. Two series with the same name and labels are
// the same series regardless of label argument order.
func seriesID(name string, labels []Label) (string, []Label) {
	if len(labels) == 0 {
		return name, nil
	}
	sorted := make([]Label, len(labels))
	copy(sorted, labels)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Key != sorted[j].Key {
			return sorted[i].Key < sorted[j].Key
		}
		return sorted[i].Value < sorted[j].Value
	})
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range sorted {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(strconv.Quote(l.Value))
	}
	b.WriteByte('}')
	return b.String(), sorted
}

// lookup finds or registers a series. Registering an existing id with a
// different kind panics: that is a programming error the tests catch.
func (r *Registry) lookup(name string, kind metricKind, bounds []float64, labels []Label) *metric {
	all := make([]Label, 0, len(r.base)+len(labels))
	all = append(all, r.base...)
	all = append(all, labels...)
	id, sorted := seriesID(name, all)
	c := r.core
	c.mu.Lock()
	defer c.mu.Unlock()
	if m, ok := c.series[id]; ok {
		if m.kind != kind {
			panic(fmt.Sprintf("obs: series %s registered as %s, requested as %s", id, m.kind, kind))
		}
		return m
	}
	m := &metric{name: name, labels: sorted, kind: kind}
	if kind == kindHistogram {
		m.bounds = append([]float64(nil), bounds...)
		sort.Float64s(m.bounds)
		m.buckets = make([]uint64, len(m.bounds)+1)
	}
	c.series[id] = m
	c.ordered = append(c.ordered, id)
	return m
}

// A Counter is a monotonically increasing series handle.
type Counter struct {
	m    *metric
	core *regCore
}

// A Gauge is a set-to-current-value series handle.
type Gauge struct {
	m    *metric
	core *regCore
}

// A Histogram is a bucketed distribution handle.
type Histogram struct {
	m    *metric
	core *regCore
}

// Counter finds or creates a counter series.
//
//perf:cold handle registration: series intern once, callers keep the handle
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	return &Counter{m: r.lookup(name, kindCounter, nil, labels), core: r.core}
}

// Gauge finds or creates a gauge series.
//
//perf:cold handle registration: series intern once, callers keep the handle
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	return &Gauge{m: r.lookup(name, kindGauge, nil, labels), core: r.core}
}

// Histogram finds or creates a histogram series with the given upper
// bucket bounds (a +Inf bucket is implicit). Bounds are fixed at first
// registration; later calls reuse the existing series.
//
//perf:cold handle registration: series intern once, callers keep the handle
func (r *Registry) Histogram(name string, bounds []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	return &Histogram{m: r.lookup(name, kindHistogram, bounds, labels), core: r.core}
}

// Add increases the counter by v (negative deltas are ignored: counters
// are monotone).
//
//perf:hot per-event probe: nil-safe, no formatting, no allocation
func (c *Counter) Add(v float64) {
	if c == nil || v < 0 {
		return
	}
	c.core.mu.Lock()
	c.m.value += v
	c.core.mu.Unlock()
}

// Inc increases the counter by one. The nil check lives here (not only
// in Add) so the disabled-observability case inlines to an untaken
// branch at the call site instead of a function call per probe.
//
//perf:hot per-event probe: nil-safe, no formatting, no allocation
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.Add(1)
}

// Set replaces the gauge's value.
//
//perf:hot per-event probe: nil-safe, no formatting, no allocation
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.core.mu.Lock()
	g.m.value = v
	g.core.mu.Unlock()
}

// Max raises the gauge to v if v exceeds the current value (a running
// high-water mark on simulated time).
//
//perf:hot per-event probe: nil-safe, no formatting, no allocation
func (g *Gauge) Max(v float64) {
	if g == nil {
		return
	}
	g.core.mu.Lock()
	if v > g.m.value {
		g.m.value = v
	}
	g.core.mu.Unlock()
}

// Observe records one sample into the histogram.
//
//perf:hot per-event probe: nil-safe, no formatting, no allocation
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.core.mu.Lock()
	m := h.m
	idx := sort.SearchFloat64s(m.bounds, v)
	m.buckets[idx]++
	m.count++
	m.sum += v
	h.core.mu.Unlock()
}

// DurationBuckets is a general-purpose exponential bound set for
// simulated-seconds distributions (100 µs … ~13 s).
func DurationBuckets() []float64 {
	bounds := make([]float64, 0, 18)
	v := 1e-4
	for i := 0; i < 18; i++ {
		bounds = append(bounds, v)
		v *= 2
	}
	return bounds
}

// SeriesSnapshot is the frozen state of one series.
type SeriesSnapshot struct {
	Name   string  `json:"name"`
	Labels []Label `json:"labels,omitempty"`
	Kind   string  `json:"kind"`

	// Counter / gauge value.
	Value float64 `json:"value,omitempty"`

	// Histogram state: Bounds[i] is the inclusive upper bound of
	// Buckets[i]; the final bucket is unbounded. Count and Sum are
	// always present in the JSON encoding for histograms (even at zero
	// samples), so means are derivable from an artifact without
	// re-running — see MarshalJSON.
	Bounds  []float64 `json:"bounds,omitempty"`
	Buckets []uint64  `json:"buckets,omitempty"`
	Count   uint64    `json:"count,omitempty"`
	Sum     float64   `json:"sum,omitempty"`
}

// MarshalJSON emits histogram series with unconditional count/sum
// fields (a zero-sample histogram still reports count 0, sum 0), while
// counters and gauges keep the compact value-only form.
func (s SeriesSnapshot) MarshalJSON() ([]byte, error) {
	if s.Kind == "histogram" {
		return json.Marshal(struct {
			Name    string    `json:"name"`
			Labels  []Label   `json:"labels,omitempty"`
			Kind    string    `json:"kind"`
			Bounds  []float64 `json:"bounds,omitempty"`
			Buckets []uint64  `json:"buckets,omitempty"`
			Count   uint64    `json:"count"`
			Sum     float64   `json:"sum"`
		}{s.Name, s.Labels, s.Kind, s.Bounds, s.Buckets, s.Count, s.Sum})
	}
	return json.Marshal(struct {
		Name   string  `json:"name"`
		Labels []Label `json:"labels,omitempty"`
		Kind   string  `json:"kind"`
		Value  float64 `json:"value,omitempty"`
	}{s.Name, s.Labels, s.Kind, s.Value})
}

// Snapshot is the frozen state of a whole registry, sorted by series id.
type Snapshot struct {
	Series []SeriesSnapshot `json:"series"`
}

// Snapshot freezes the registry. The result is sorted by canonical series
// id, so identical instrumentation histories yield byte-identical
// encodings regardless of registration concurrency.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	c := r.core
	c.mu.Lock()
	defer c.mu.Unlock()
	ids := make([]string, len(c.ordered))
	copy(ids, c.ordered)
	sort.Strings(ids)
	snap := Snapshot{Series: make([]SeriesSnapshot, 0, len(ids))}
	for _, id := range ids {
		m := c.series[id]
		s := SeriesSnapshot{
			Name:   m.name,
			Labels: append([]Label(nil), m.labels...),
			Kind:   m.kind.String(),
		}
		switch m.kind {
		case kindHistogram:
			s.Bounds = append([]float64(nil), m.bounds...)
			s.Buckets = append([]uint64(nil), m.buckets...)
			s.Count = m.count
			s.Sum = m.sum
		default:
			s.Value = m.value
		}
		snap.Series = append(snap.Series, s)
	}
	return snap
}

// JSON encodes the snapshot deterministically (stable field order, series
// sorted by id).
func (s Snapshot) JSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// labelString renders a series' labels for the text table.
func labelString(labels []Label) string {
	if len(labels) == 0 {
		return "-"
	}
	parts := make([]string, 0, len(labels))
	for _, l := range labels {
		parts = append(parts, l.Key+"="+l.Value)
	}
	return strings.Join(parts, ",")
}

// Text renders the snapshot as an aligned table — the same renderer the
// latency tables use (see metrics.FormatLatencyTable).
func (s Snapshot) Text() string {
	t := NewTable("metric", "labels", "kind", "value", "count", "sum", "mean")
	for _, m := range s.Series {
		switch m.Kind {
		case "histogram":
			mean := "-"
			if m.Count > 0 {
				mean = strconv.FormatFloat(m.Sum/float64(m.Count), 'g', 6, 64)
			}
			t.Row(m.Name, labelString(m.Labels), m.Kind, "-",
				strconv.FormatUint(m.Count, 10),
				strconv.FormatFloat(m.Sum, 'g', 6, 64),
				mean)
		default:
			t.Row(m.Name, labelString(m.Labels), m.Kind,
				strconv.FormatFloat(m.Value, 'g', 6, 64), "-", "-", "-")
		}
	}
	return t.String()
}
