// Package obs is the deterministic observability layer threaded through
// the simulators: a metrics registry of counters, gauges, and histograms
// keyed by sorted label sets, and a Chrome trace-event (Perfetto-loadable)
// timeline builder. Both are bound by the determinism contract
// (DESIGN.md §8–§9): every probe advances on *simulated* cycles or
// seconds supplied by the caller — never the wall clock — and both
// snapshot encoders are byte-identical run-to-run. planaria-vet's noclock
// analyzer covers this package, so a wall-clock read inside the registry
// fails the build.
//
// Every entry point is nil-safe: a nil *Registry, *TraceBuilder,
// *Observer, or metric handle turns the whole instrumentation path into
// cheap no-ops, so the simulators carry their probes unconditionally and
// pay only an untaken branch when observability is off (verified by
// BenchmarkGridRun staying within 2% of the uninstrumented engine).
//
// The Registry is append-only by contract: series are never removed or
// reset in place, handles stay valid for the registry's lifetime, and
// each Snapshot's series set only grows — see the Registry doc comment.
//
// The package also hosts the SLA root-cause attribution layer
// (DESIGN.md §14): the per-request phase Ledger and the Occupancy
// accountant (attrib.go, occupancy.go), with AttribBuilder/AttribReport
// (attribreport.go) folding both into deterministic per-model × per-QoS
// violation breakdowns and fleet utilization tables.
package obs

// Observer bundles the two observability sinks an instrumented component
// receives: the metrics registry and the timeline builder. Either field
// (or the Observer itself) may be nil.
type Observer struct {
	Metrics *Registry
	Trace   *TraceBuilder
}

// New returns an Observer with a fresh registry and trace builder whose
// timestamps are interpreted as simulated seconds (rendered as
// microseconds in the exported timeline).
//perf:cold once-per-run constructor: observability wiring, not a probe
func New() *Observer {
	return &Observer{Metrics: NewRegistry(), Trace: NewTraceBuilder(1e6)}
}

// Registry returns the metrics registry, nil when the observer is nil or
// metrics are disabled.
func (o *Observer) Registry() *Registry {
	if o == nil {
		return nil
	}
	return o.Metrics
}

// Tracer returns the timeline builder, nil when the observer is nil or
// tracing is disabled.
func (o *Observer) Tracer() *TraceBuilder {
	if o == nil {
		return nil
	}
	return o.Trace
}

// Named returns a derived Observer for one subsystem or system-under-test:
// its metrics carry a system=<name> label and its timeline tracks are
// prefixed "<name>/", while both views share the parent's storage. Used by
// the traced co-location runs to keep Planaria and PREMA distinguishable
// in one artifact.
func (o *Observer) Named(name string) *Observer {
	if o == nil {
		return nil
	}
	return &Observer{
		Metrics: o.Metrics.With(Label{Key: "system", Value: name}),
		Trace:   o.Trace.WithPrefix(name + "/"),
	}
}

// Observable is implemented by scheduling policies (and other components)
// that accept an observer after construction.
type Observable interface {
	SetObserver(*Observer)
}
