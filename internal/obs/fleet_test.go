package obs

import (
	"math"
	"testing"
)

// lifecycle builds the canonical boot→ready→drain→retire log used by the
// accounting tests: chip 0 up for the whole horizon, chip 1 booted at 10
// and retired at 30, chip 2 booted at 15 and still draining at the end.
func lifecycle() *Fleet {
	f := NewFleet(3)
	f.Note(0, 0, FleetBoot)
	f.Note(0, 0, FleetReady)
	f.Note(10, 1, FleetBoot)
	f.Note(12, 1, FleetReady)
	f.Note(25, 1, FleetDrain)
	f.Note(30, 1, FleetRetire)
	f.Note(15, 2, FleetBoot)
	f.Note(16, 2, FleetReady)
	f.Note(38, 2, FleetDrain)
	return f
}

func TestFleetChipSeconds(t *testing.T) {
	f := lifecycle()
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	// chip 0: 0..40 = 40; chip 1: 10..30 = 20; chip 2: 15..40 = 25.
	if got, want := f.ChipSeconds(40), 85.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("ChipSeconds(40) = %g, want %g", got, want)
	}
	// A shorter horizon clamps open intervals and whole retired cycles.
	// chip 0: 20; chip 1: 10..20 = 10; chip 2: 15..20 = 5.
	if got, want := f.ChipSeconds(20), 35.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("ChipSeconds(20) = %g, want %g", got, want)
	}
	if got := (*Fleet)(nil).ChipSeconds(40); got != 0 {
		t.Fatalf("nil fleet ChipSeconds = %g", got)
	}
}

func TestFleetRebootCycle(t *testing.T) {
	f := NewFleet(1)
	f.Note(0, 0, FleetBoot)
	f.Note(1, 0, FleetReady)
	f.Note(5, 0, FleetDrain)
	f.Note(6, 0, FleetRetire)
	f.Note(10, 0, FleetBoot)
	f.Note(11, 0, FleetReady)
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	// First cycle 0..6, second open 10..horizon.
	if got, want := f.ChipSeconds(20), 16.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("ChipSeconds(20) = %g, want %g", got, want)
	}
	if got := f.PeakActive(20); got != 1 {
		t.Fatalf("PeakActive = %d, want 1", got)
	}
}

func TestFleetPeakActive(t *testing.T) {
	f := lifecycle()
	// Routable windows: chip 0 [0,40], chip 1 [12,25), chip 2 [16,38).
	// All three overlap in [16,25).
	if got := f.PeakActive(40); got != 3 {
		t.Fatalf("PeakActive(40) = %d, want 3", got)
	}
	if got := f.PeakActive(14); got != 2 {
		t.Fatalf("PeakActive(14) = %d, want 2", got)
	}
	if got := (*Fleet)(nil).PeakActive(40); got != 0 {
		t.Fatalf("nil fleet PeakActive = %d", got)
	}
}

func TestFleetValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		evs  []FleetEvent
	}{
		{"ready before boot", []FleetEvent{{Time: 0, Chip: 0, Kind: FleetReady}}},
		{"double boot", []FleetEvent{
			{Time: 0, Chip: 0, Kind: FleetBoot}, {Time: 1, Chip: 0, Kind: FleetBoot}}},
		{"drain while booting", []FleetEvent{
			{Time: 0, Chip: 0, Kind: FleetBoot}, {Time: 1, Chip: 0, Kind: FleetDrain}}},
		{"retire without drain", []FleetEvent{
			{Time: 0, Chip: 0, Kind: FleetBoot}, {Time: 1, Chip: 0, Kind: FleetReady},
			{Time: 2, Chip: 0, Kind: FleetRetire}}},
		{"time backwards", []FleetEvent{
			{Time: 5, Chip: 0, Kind: FleetBoot}, {Time: 4, Chip: 0, Kind: FleetReady}}},
	}
	for _, tc := range cases {
		f := NewFleet(1)
		for _, e := range tc.evs {
			f.Note(e.Time, e.Chip, e.Kind)
		}
		if err := f.Validate(); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestFleetNoteBounds(t *testing.T) {
	f := NewFleet(2)
	f.Note(0, -1, FleetBoot)
	f.Note(0, 2, FleetBoot)
	if len(f.Events()) != 0 {
		t.Fatal("out-of-range chips were recorded")
	}
	var nilF *Fleet
	nilF.Note(0, 0, FleetBoot) // must not panic
	if nilF.Chips() != 0 || nilF.Events() != nil || nilF.Validate() != nil {
		t.Fatal("nil fleet accessors not inert")
	}
}

func TestFleetKindStrings(t *testing.T) {
	want := []string{"boot", "ready", "drain", "retire"}
	for i, s := range want {
		if got := FleetEventKind(i).String(); got != s {
			t.Errorf("FleetEventKind(%d).String() = %q, want %q", i, got, s)
		}
	}
}
