package obs

// Occupancy is the subarray/pod occupancy accountant (DESIGN.md §14).
// It partitions every wall-cycle of every compute unit (subarray on a
// chip, band on a systolic grid) into exactly one of four states —
// busy, idle, faulted, reconfig — in integer unit-cycles, so the
// conservation identity
//
//	Busy + Idle + Faulted + Reconfig == Units × Horizon
//
// holds exactly, with no float accumulation anywhere. Feeds:
//
//   - the sim engine accounts each event interval via Interval, with
//     busy = allocated-and-computing units, reconfig = allocated units
//     still paying a re-allocation penalty, faulted = fault-masked
//     units (zero under derate mode, where degradation shows up as
//     stretched wall-cycles instead of masked units);
//   - the systolic grid accounts per-band busy spans via AddBusy /
//     AddFaulted and closes the run with CloseHorizon;
//   - sched.Spatial reports fission decisions via NoteDecision, giving
//     a demand-pressure signal next to the supply-side split.
//
// All methods are nil-safe no-ops so probes can be carried
// unconditionally; a non-nil Occupancy is single-goroutine like the
// engine that feeds it. Fleet rollups pad per-chip accountants to a
// common horizon (PadTo) before summing, so the fleet identity is
// ΣUnits × maxHorizon.
type Occupancy struct {
	// Units is the number of compute units being accounted.
	Units int64
	// Horizon is the accounted wall-cycle span.
	Horizon int64
	// Busy/Idle/Faulted/Reconfig are unit-cycle totals partitioning
	// Units × Horizon.
	Busy, Idle, Faulted, Reconfig int64

	// Decisions/FitDecisions count fission allocation decisions and how
	// many fit every co-resident task (fed by sched.Spatial).
	Decisions, FitDecisions int64
	// DemandUnits/SupplyUnits accumulate, per decision, the units
	// demanded by ideal (unscaled) allocations and the units actually
	// available; their ratio is the demand pressure on the fission
	// policy.
	DemandUnits, SupplyUnits int64
}

// NewOccupancy returns an accountant for the given unit count.
//
//perf:cold once-per-run constructor
func NewOccupancy(units int64) *Occupancy {
	o := &Occupancy{}
	o.SetUnits(units)
	return o
}

// SetUnits sets the unit count being accounted.
func (o *Occupancy) SetUnits(units int64) {
	if o == nil {
		return
	}
	o.Units = units
}

// Reset clears all accounting, keeping the unit count.
func (o *Occupancy) Reset() {
	if o == nil {
		return
	}
	*o = Occupancy{Units: o.Units}
}

// Interval accounts one event interval of cyc wall-cycles: busy units
// computing, reconfig units paying re-allocation penalties, faulted
// units masked out, and the remainder idle. Intervals with cyc <= 0 are
// ignored.
func (o *Occupancy) Interval(cyc, busy, reconfig, faulted int64) {
	if o == nil || cyc <= 0 {
		return
	}
	o.Busy += busy * cyc
	o.Reconfig += reconfig * cyc
	o.Faulted += faulted * cyc
	o.Idle += (o.Units - busy - reconfig - faulted) * cyc
	o.Horizon += cyc
}

// AddBusy accounts units busy for cyc wall-cycles without advancing the
// horizon — the span-feed used by the systolic grid, which knows each
// band's busy extent only at end of run. Pair with CloseHorizon.
func (o *Occupancy) AddBusy(units, cyc int64) {
	if o == nil || cyc <= 0 {
		return
	}
	o.Busy += units * cyc
}

// AddFaulted accounts units fault-masked for cyc wall-cycles without
// advancing the horizon. Pair with CloseHorizon.
func (o *Occupancy) AddFaulted(units, cyc int64) {
	if o == nil || cyc <= 0 {
		return
	}
	o.Faulted += units * cyc
}

// AddReconfig accounts units reconfiguring for cyc wall-cycles without
// advancing the horizon. Pair with CloseHorizon.
func (o *Occupancy) AddReconfig(units, cyc int64) {
	if o == nil || cyc <= 0 {
		return
	}
	o.Reconfig += units * cyc
}

// CloseHorizon extends the horizon by cyc wall-cycles and re-derives
// Idle as the conservation remainder, closing out a span-feed
// (AddBusy/AddFaulted/AddReconfig) accounting pass.
func (o *Occupancy) CloseHorizon(cyc int64) {
	if o == nil {
		return
	}
	if cyc > 0 {
		o.Horizon += cyc
	}
	o.Idle = o.Units*o.Horizon - o.Busy - o.Faulted - o.Reconfig
}

// PadTo extends the horizon to h wall-cycles, accounting the extension
// as all-idle. Used to bring per-chip accountants to a common fleet
// horizon before summing.
func (o *Occupancy) PadTo(h int64) {
	if o == nil || h <= o.Horizon {
		return
	}
	o.Idle += o.Units * (h - o.Horizon)
	o.Horizon = h
}

// Merge adds other's accounting into o (fleet rollup). Callers should
// PadTo a common horizon first; Merge itself just sums fields, with the
// merged Horizon being the max of the two.
func (o *Occupancy) Merge(other *Occupancy) {
	if o == nil || other == nil {
		return
	}
	o.Units += other.Units
	o.Busy += other.Busy
	o.Idle += other.Idle
	o.Faulted += other.Faulted
	o.Reconfig += other.Reconfig
	if other.Horizon > o.Horizon {
		o.Horizon = other.Horizon
	}
	o.Decisions += other.Decisions
	o.FitDecisions += other.FitDecisions
	o.DemandUnits += other.DemandUnits
	o.SupplyUnits += other.SupplyUnits
}

// NoteDecision records one fission allocation decision: whether every
// co-resident task fit at its ideal allocation, how many units the
// ideal allocations demanded, and how many were available. Integer-only
// and nil-safe, so it is callable unguarded from //perf:hot allocator
// code.
func (o *Occupancy) NoteDecision(fit bool, demand, supply int64) {
	if o == nil {
		return
	}
	o.Decisions++
	if fit {
		o.FitDecisions++
	}
	o.DemandUnits += demand
	o.SupplyUnits += supply
}

// Utilization returns Busy / (Units × Horizon), or 0 before any
// accounting.
func (o *Occupancy) Utilization() float64 {
	if o == nil || o.Units <= 0 || o.Horizon <= 0 {
		return 0
	}
	return float64(o.Busy) / (float64(o.Units) * float64(o.Horizon))
}

// Pressure returns DemandUnits / SupplyUnits — how oversubscribed the
// fission policy's decisions were — or 0 before any decisions.
func (o *Occupancy) Pressure() float64 {
	if o == nil || o.SupplyUnits <= 0 {
		return 0
	}
	return float64(o.DemandUnits) / float64(o.SupplyUnits)
}

// OccupancyAware is implemented by schedulers and engines that can feed
// an occupancy accountant (sched.Spatial, systolic.Grid).
type OccupancyAware interface {
	SetOccupancy(*Occupancy)
}
