package obs

import (
	"math"
	"math/big"
	"strings"
	"testing"
)

// Ledger mechanics: instants, clamping, terminal causes, and the two
// read paths (Durations and Spans) that DESIGN.md §14's conservation
// identity depends on.

func TestLedgerOpenMarkClose(t *testing.T) {
	l := NewLedger(2)
	l.Open(0, 1.0, PhaseQueueWait)
	l.Mark(0, 1.5, PhaseCompute)
	l.Mark(0, 2.25, PhasePreemptStall)
	l.Close(0, 3.0, CauseDone)

	if !l.Closed(0) || l.Cause(0) != CauseDone {
		t.Fatalf("record 0: closed=%v cause=%v", l.Closed(0), l.Cause(0))
	}
	if s, e := l.Start(0), l.End(0); s != 1.0 || e != 3.0 {
		t.Fatalf("start/end = %g/%g, want 1/3", s, e)
	}
	var dur [NumPhases]float64
	if !l.Durations(0, &dur) {
		t.Fatal("Durations reported not-closed")
	}
	if dur[PhaseQueueWait] != 0.5 || dur[PhaseCompute] != 0.75 || dur[PhasePreemptStall] != 0.75 {
		t.Fatalf("durations = %v", dur)
	}
	spans := l.Spans(0, nil)
	if len(spans) != 3 {
		t.Fatalf("spans = %v", spans)
	}
	// Chronological order with bit-exact shared boundaries.
	for i := 1; i < len(spans); i++ {
		if spans[i].From != spans[i-1].To {
			t.Fatalf("span boundary mismatch: %v", spans)
		}
	}
	if spans[0].From != 1.0 || spans[2].To != 3.0 || spans[1].Phase != PhaseCompute {
		t.Fatalf("spans = %v", spans)
	}

	// Record 1 never opened: Durations and Spans both refuse it.
	if l.Durations(1, &dur) {
		t.Fatal("unopened record reported durations")
	}
	if got := l.Spans(1, nil); len(got) != 0 {
		t.Fatalf("unopened record has spans: %v", got)
	}
}

func TestLedgerClampsBackwardInstants(t *testing.T) {
	l := NewLedger(1)
	l.Open(0, 5.0, PhaseQueueWait)
	l.Mark(0, 5.0-1e-13, PhaseCompute) // sub-Eps skew from event merge
	l.Close(0, 4.0, CauseDone)         // grossly backwards: clamps to 5.0
	var dur [NumPhases]float64
	l.Durations(0, &dur)
	total := 0.0
	for _, d := range dur {
		if d < 0 {
			t.Fatalf("negative phase duration: %v", dur)
		}
		total += d
	}
	if total != l.End(0)-l.Start(0) {
		t.Fatalf("conservation broke under clamping: Σ=%g, end-start=%g", total, l.End(0)-l.Start(0))
	}
}

func TestLedgerTerminal(t *testing.T) {
	l := NewLedger(2)
	l.Terminal(0, 2.0, 2.5, PhaseQueueWait, CauseShedChip)
	if !l.Closed(0) || l.Cause(0) != CauseShedChip {
		t.Fatal("Terminal did not close the record")
	}
	var dur [NumPhases]float64
	l.Durations(0, &dur)
	if dur[PhaseQueueWait] != 0.5 {
		t.Fatalf("terminal span = %v", dur)
	}
	// Terminal on an already-open record degrades Open to Mark.
	l.Open(1, 1.0, PhaseQueueWait)
	l.Terminal(1, 3.0, 3.0, PhaseRetryBackoff, CauseShedRetries)
	dur = [NumPhases]float64{} // Durations accumulates; clear record 0's spans
	l.Durations(1, &dur)
	if dur[PhaseQueueWait] != 2.0 || l.Cause(1) != CauseShedRetries {
		t.Fatalf("terminal-after-open: dur=%v cause=%v", dur, l.Cause(1))
	}
}

func TestLedgerNilAndOutOfRangeAreNoops(t *testing.T) {
	var l *Ledger
	l.Open(0, 1, PhaseCompute)
	l.Mark(0, 2, PhaseCompute)
	l.Close(0, 3, CauseDone)
	l.Terminal(0, 1, 2, PhaseCompute, CauseDone)
	l.Reset(4)
	if l.Len() != 0 || l.Closed(0) || l.Cause(0) != CauseOpen {
		t.Fatal("nil ledger must be inert")
	}
	var dur [NumPhases]float64
	if l.Durations(0, &dur) || len(l.Spans(0, nil)) != 0 {
		t.Fatal("nil ledger produced data")
	}

	real := NewLedger(1)
	real.Open(-1, 1, PhaseCompute) // out of range: ignored
	real.Open(7, 1, PhaseCompute)
	real.Close(7, 2, CauseDone)
	if real.Closed(7) {
		t.Fatal("out-of-range position was recorded")
	}
}

func TestLedgerResetReusesArena(t *testing.T) {
	l := NewLedger(3)
	for i := 0; i < 3; i++ {
		l.Open(i, float64(i), PhaseQueueWait)
		l.Close(i, float64(i)+1, CauseDone)
	}
	l.Reset(2)
	if l.Len() != 2 {
		t.Fatalf("Len after Reset = %d, want 2", l.Len())
	}
	if l.Closed(0) || l.Cause(0) != CauseOpen || !math.IsNaN(l.End(0)) {
		t.Fatal("Reset leaked prior state")
	}
	l.Open(1, 10, PhaseCompute)
	l.Close(1, 11, CauseDone)
	var dur [NumPhases]float64
	if !l.Durations(1, &dur) || dur[PhaseCompute] != 1 {
		t.Fatalf("post-Reset record wrong: %v", dur)
	}
}

func TestPhaseAndCauseStrings(t *testing.T) {
	wantPhases := []string{"admit-wait", "batch-wait", "queue-wait", "compute",
		"preempt-stall", "retry-backoff", "fault-stall", "drain-migrate"}
	for i := 0; i < NumPhases; i++ {
		if Phase(i).String() != wantPhases[i] {
			t.Errorf("Phase(%d) = %q, want %q", i, Phase(i), wantPhases[i])
		}
	}
	wantCauses := []string{"open", "done", "dispatched", "shed-admission",
		"shed-unroutable", "shed-chip", "shed-retries", "shed-dead-chip", "rejected",
		"shed-drain"}
	for i := 0; i < NumCauses; i++ {
		if Cause(i).String() != wantCauses[i] {
			t.Errorf("Cause(%d) = %q, want %q", i, Cause(i), wantCauses[i])
		}
	}
}

// TestLedgerBigFloatConservation checks the exactness claim directly:
// summing a record's spans with big.Float arithmetic reproduces
// end−start with zero rounding error, because spans share instants.
func TestLedgerBigFloatConservation(t *testing.T) {
	l := NewLedger(1)
	l.Open(0, 0.1, PhaseQueueWait)
	ts := []float64{0.1 + 1.0/3, 0.7, 1.0 / 0.7, 2.718281828, 3.14159}
	phases := []Phase{PhaseCompute, PhasePreemptStall, PhaseCompute, PhaseRetryBackoff}
	for i, p := range phases {
		l.Mark(0, ts[i], p)
	}
	l.Close(0, ts[len(ts)-1], CauseDone)

	sum := new(big.Float).SetPrec(200)
	for _, s := range l.Spans(0, nil) {
		d := new(big.Float).SetPrec(200).Sub(big.NewFloat(s.To), big.NewFloat(s.From))
		sum.Add(sum, d)
	}
	want := new(big.Float).SetPrec(200).Sub(big.NewFloat(l.End(0)), big.NewFloat(l.Start(0)))
	if sum.Cmp(want) != 0 {
		t.Fatalf("Σ spans = %s, end-start = %s", sum.Text('g', 30), want.Text('g', 30))
	}
}

// Occupancy accounting: integer cycle partition must be exact.

func TestOccupancyIntervalPartition(t *testing.T) {
	o := NewOccupancy(16)
	o.Interval(100, 10, 2, 4) // 100 cycles: 10 busy, 2 reconfig, 4 faulted units
	o.Interval(50, 16, 0, 0)
	o.Interval(0, 5, 5, 5) // zero-width: no-op
	if o.Horizon != 150 {
		t.Fatalf("horizon = %d, want 150", o.Horizon)
	}
	if got := o.Busy + o.Idle + o.Faulted + o.Reconfig; got != o.Units*o.Horizon {
		t.Fatalf("partition broke: %d != %d", got, o.Units*o.Horizon)
	}
	if o.Busy != 10*100+16*50 || o.Reconfig != 200 || o.Faulted != 400 {
		t.Fatalf("occ = %+v", o)
	}
}

func TestOccupancySpanFeedAndCloseHorizon(t *testing.T) {
	o := NewOccupancy(8)
	o.AddBusy(4, 30)
	o.AddFaulted(2, 10)
	o.AddReconfig(1, 5)
	o.CloseHorizon(40)
	if o.Horizon != 40 {
		t.Fatalf("horizon = %d", o.Horizon)
	}
	if got := o.Busy + o.Idle + o.Faulted + o.Reconfig; got != o.Units*o.Horizon {
		t.Fatalf("partition broke: %d != %d (occ %+v)", got, o.Units*o.Horizon, o)
	}
}

func TestOccupancyPadToAndMerge(t *testing.T) {
	a := NewOccupancy(4)
	a.Interval(10, 4, 0, 0)
	b := NewOccupancy(4)
	b.Interval(25, 2, 0, 0)
	a.PadTo(25)
	if a.Horizon != 25 || a.Idle != 4*15 {
		t.Fatalf("PadTo: %+v", a)
	}
	a.PadTo(10) // shrinking is a no-op
	if a.Horizon != 25 {
		t.Fatal("PadTo shrank the horizon")
	}
	f := NewOccupancy(0)
	f.Merge(a)
	f.Merge(b)
	if f.Units != 8 || f.Horizon != 25 {
		t.Fatalf("merge: %+v", f)
	}
	if got := f.Busy + f.Idle + f.Faulted + f.Reconfig; got != f.Units*f.Horizon {
		t.Fatalf("fleet partition broke: %d != %d", got, f.Units*f.Horizon)
	}
}

func TestOccupancyDecisionsAndNil(t *testing.T) {
	o := NewOccupancy(16)
	o.NoteDecision(true, 8, 16)
	o.NoteDecision(false, 40, 16)
	if o.Decisions != 2 || o.FitDecisions != 1 || o.DemandUnits != 48 || o.SupplyUnits != 32 {
		t.Fatalf("decision tallies: %+v", o)
	}
	if p := o.Pressure(); p != 1.5 {
		t.Fatalf("pressure = %g, want 1.5", p)
	}
	o.Interval(10, 8, 0, 0)
	if u := o.Utilization(); u != 0.5 {
		t.Fatalf("utilization = %g, want 0.5", u)
	}

	var nilO *Occupancy
	nilO.Interval(10, 1, 1, 1)
	nilO.AddBusy(1, 1)
	nilO.AddFaulted(1, 1)
	nilO.AddReconfig(1, 1)
	nilO.CloseHorizon(5)
	nilO.PadTo(5)
	nilO.Merge(o)
	nilO.NoteDecision(true, 1, 1)
	nilO.SetUnits(4)
	nilO.Reset()
	if nilO.Utilization() != 0 || nilO.Pressure() != 0 {
		t.Fatal("nil occupancy must be inert")
	}
}

// Builder aggregation: dominant-cause rule, quantiles, group ordering.

func TestAttribBuilderDominantRule(t *testing.T) {
	b := NewAttribBuilder()
	var dur [NumPhases]float64

	// Late completion: dominant phase = argmax, earlier phase wins ties.
	dur[PhaseQueueWait] = 2
	dur[PhaseCompute] = 2
	b.Add("m", "q", &dur, CauseDone, true)
	// Non-completed: dominant = terminal cause regardless of phases.
	dur = [NumPhases]float64{}
	dur[PhaseCompute] = 9
	b.Add("m", "q", &dur, CauseShedChip, false) // violated forced true
	// Met SLA: no dominant entry.
	dur = [NumPhases]float64{}
	dur[PhaseCompute] = 1
	b.Add("m", "q", &dur, CauseDone, false)

	rep := b.Report(nil)
	if len(rep.Groups) != 1 {
		t.Fatalf("groups = %+v", rep.Groups)
	}
	g := rep.Groups[0]
	if g.Requests != 3 || g.Completed != 2 || g.Violations != 2 {
		t.Fatalf("tallies: %+v", g)
	}
	want := map[string]int64{"queue-wait": 1, "shed-chip": 1}
	if len(g.Dominant) != 2 {
		t.Fatalf("dominant = %+v", g.Dominant)
	}
	for _, d := range g.Dominant {
		if want[d.Cause] != d.Count {
			t.Fatalf("dominant = %+v", g.Dominant)
		}
	}
	// Phases appear before causes in the histogram (enum order).
	if g.Dominant[0].Cause != "queue-wait" {
		t.Fatalf("dominant order = %+v", g.Dominant)
	}
}

func TestAttribBuilderQuantilesAndOrdering(t *testing.T) {
	b := NewAttribBuilder()
	var dur [NumPhases]float64
	for i := 1; i <= 100; i++ {
		dur[PhaseCompute] = float64(i)
		b.Add("zeta", "QoS-M", &dur, CauseDone, false)
	}
	dur = [NumPhases]float64{}
	dur[PhaseCompute] = 5
	b.Add("alpha", "QoS-S", &dur, CauseDone, false)

	rep := b.Report(nil)
	if len(rep.Groups) != 2 || rep.Groups[0].Model != "alpha" || rep.Groups[1].Model != "zeta" {
		t.Fatalf("group order: %+v", rep.Groups)
	}
	var compute *PhaseStat
	for i := range rep.Groups[1].Phases {
		if rep.Groups[1].Phases[i].Phase == "compute" {
			compute = &rep.Groups[1].Phases[i]
		}
	}
	if compute == nil || compute.Count != 100 {
		t.Fatalf("compute stat: %+v", compute)
	}
	if compute.P50 != 50 || compute.P99 != 99 {
		t.Fatalf("quantiles: p50=%g p99=%g", compute.P50, compute.P99)
	}
	if compute.Sum != 5050 || compute.Mean != 50.5 {
		t.Fatalf("sum/mean: %g/%g", compute.Sum, compute.Mean)
	}
}

func TestAttribReportFleetRollup(t *testing.T) {
	a := NewOccupancy(16)
	a.Interval(10, 8, 0, 0)
	b := NewOccupancy(16)
	b.Interval(30, 4, 2, 1)
	rep := NewAttribBuilder().Report([]*Occupancy{a, b})
	if len(rep.Chips) != 2 || rep.Fleet == nil {
		t.Fatalf("util rows: %+v", rep)
	}
	// Chips are padded to the common horizon before the fleet merge.
	for _, row := range rep.Chips {
		if row.Horizon != 30 {
			t.Fatalf("chip not padded: %+v", row)
		}
		if row.Busy+row.Idle+row.Faulted+row.Reconfig != row.Units*row.Horizon {
			t.Fatalf("chip partition broke: %+v", row)
		}
	}
	f := rep.Fleet
	if f.Units != 32 || f.Horizon != 30 ||
		f.Busy+f.Idle+f.Faulted+f.Reconfig != f.Units*f.Horizon {
		t.Fatalf("fleet row: %+v", f)
	}
	// Padding must not mutate the caller's accountants.
	if a.Horizon != 10 {
		t.Fatalf("Report mutated input occupancy: %+v", a)
	}
}

func TestAttribReportJSONRoundTripAndText(t *testing.T) {
	b := NewAttribBuilder()
	var dur [NumPhases]float64
	dur[PhaseCompute] = 0.25
	dur[PhaseQueueWait] = 0.5
	b.Add("ResNet-50", "QoS-H", &dur, CauseDone, true)
	b.Add("ResNet-50", "QoS-H", &dur, CauseShedChip, false)
	occ := NewOccupancy(16)
	occ.Interval(100, 10, 1, 1)
	rep := b.Report([]*Occupancy{occ})

	j1, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := LoadAttribReport(j1)
	if err != nil {
		t.Fatal(err)
	}
	j2, err := back.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(j1) != string(j2) {
		t.Fatalf("round trip changed bytes:\n%s\n---\n%s", j1, j2)
	}

	text := rep.Text()
	for _, want := range []string{"ResNet-50", "QoS-H", "queue-wait", "compute",
		"dominant causes", "shed-chip", "chip0", "fleet"} {
		if !strings.Contains(text, want) {
			t.Fatalf("Text() missing %q:\n%s", want, text)
		}
	}
}

// Alloc pins (ISSUE 8 satellite): disabled probes and warm stamping must
// never touch the allocator — the ledger sits on the engine's per-event
// path.

func TestNilAttribProbesZeroAllocs(t *testing.T) {
	var l *Ledger
	var o *Occupancy
	var dur [NumPhases]float64
	allocs := testing.AllocsPerRun(1000, func() {
		l.Open(0, 1, PhaseQueueWait)
		l.Mark(0, 2, PhaseCompute)
		l.Close(0, 3, CauseDone)
		l.Terminal(0, 1, 2, PhaseQueueWait, CauseShedChip)
		_ = l.Durations(0, &dur)
		o.Interval(10, 1, 0, 0)
		o.AddBusy(1, 1)
		o.NoteDecision(true, 1, 1)
	})
	if allocs != 0 {
		t.Fatalf("nil attribution probes: %.1f allocs/op, want 0", allocs)
	}
}

func TestWarmLedgerStampingZeroAllocs(t *testing.T) {
	l := NewLedger(8)
	// Warm the mark arena past what one iteration appends, then Reset:
	// steady-state stamping must reuse the capacity.
	for i := 0; i < 8; i++ {
		l.Open(i, 0, PhaseQueueWait)
		l.Mark(i, 1, PhaseCompute)
		l.Close(i, 2, CauseDone)
	}
	occ := NewOccupancy(16)
	allocs := testing.AllocsPerRun(1000, func() {
		l.Reset(8)
		for i := 0; i < 8; i++ {
			l.Open(i, 0, PhaseQueueWait)
			l.Mark(i, 1, PhaseCompute)
			l.Close(i, 2, CauseDone)
		}
		occ.Interval(10, 4, 1, 1)
		occ.NoteDecision(true, 4, 16)
	})
	if allocs != 0 {
		t.Fatalf("warm ledger stamping: %.1f allocs/op, want 0", allocs)
	}
}

// TestLedgerReopen covers the drain-migration resume path: a record
// closed as dispatched reopens in drain-migrate at its close instant, so
// the [close, re-close] gap is an attributable span and big-float
// telescoping still holds over the full chain.
func TestLedgerReopen(t *testing.T) {
	l := NewLedger(2)
	l.Open(0, 1.0, PhaseAdmitWait)
	l.Mark(0, 1.5, PhaseBatchWait)
	l.Close(0, 2.0, CauseDispatched)
	l.Reopen(0, PhaseDrainMigrate)
	if l.Closed(0) || l.Cause(0) != CauseOpen {
		t.Fatal("Reopen left the record closed")
	}
	if p, ok := l.Current(0); !ok || p != PhaseDrainMigrate {
		t.Fatalf("Current after Reopen = %v, want drain-migrate", p)
	}
	l.Close(0, 3.25, CauseShedDrain)
	var dur [NumPhases]float64
	if !l.Durations(0, &dur) {
		t.Fatal("reclosed record has no durations")
	}
	if dur[PhaseAdmitWait] != 0.5 || dur[PhaseBatchWait] != 0.5 || dur[PhaseDrainMigrate] != 1.25 {
		t.Fatalf("durations after Reopen = %v", dur)
	}
	spans := l.Spans(0, nil)
	for i := 1; i < len(spans); i++ {
		if spans[i].From != spans[i-1].To {
			t.Fatalf("span %d not contiguous after Reopen: %v", i, spans)
		}
	}
	// Reopen on a still-open record is a no-op; on an out-of-range
	// position or nil ledger it must not panic.
	l.Open(1, 0, PhaseCompute)
	l.Reopen(1, PhaseDrainMigrate)
	if p, _ := l.Current(1); p != PhaseCompute {
		t.Fatal("Reopen of an open record changed its phase")
	}
	l.Reopen(-1, PhaseDrainMigrate)
	l.Reopen(99, PhaseDrainMigrate)
	var nilLed *Ledger
	nilLed.Reopen(0, PhaseDrainMigrate)
}
