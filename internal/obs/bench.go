package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// BenchResult is one parsed `go test -bench` result line: the standard
// ns/op, B/op, allocs/op quantities plus every custom metric the
// benchmark reported via b.ReportMetric.
type BenchResult struct {
	// Name is the benchmark name with the -GOMAXPROCS suffix stripped
	// (BenchmarkFig12Throughput-8 → BenchmarkFig12Throughput).
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	BytesPerOp float64            `json:"bytes_per_op,omitempty"`
	AllocsOp   float64            `json:"allocs_per_op,omitempty"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// BenchReport is the machine-readable benchmark artifact
// (BENCH_serving.json): environment header plus results sorted by name.
// No wall-clock timestamp is embedded — the artifact is a pure function
// of the benchmark output, so identical runs diff clean.
type BenchReport struct {
	GOOS      string        `json:"goos,omitempty"`
	GOARCH    string        `json:"goarch,omitempty"`
	CPU       string        `json:"cpu,omitempty"`
	Pkg       string        `json:"pkg,omitempty"`
	BenchTime string        `json:"benchtime,omitempty"`
	Results   []BenchResult `json:"results"`
}

// ParseBench parses the textual output of `go test -bench`. Header lines
// (goos/goarch/pkg/cpu) populate the report; each Benchmark line becomes
// one result. Unparseable lines are skipped — go test interleaves PASS/ok
// and log output freely.
func ParseBench(r io.Reader) (*BenchReport, error) {
	rep := &BenchReport{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.GOOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			rep.GOARCH = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case strings.HasPrefix(line, "pkg:"):
			rep.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		res, ok := parseBenchLine(line)
		if ok {
			rep.Results = append(rep.Results, res)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: reading benchmark output: %v", err)
	}
	sort.Slice(rep.Results, func(i, j int) bool { return rep.Results[i].Name < rep.Results[j].Name })
	return rep, nil
}

// parseBenchLine parses one `BenchmarkX-8 <n> <value> <unit> ...` line.
func parseBenchLine(line string) (BenchResult, bool) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return BenchResult{}, false
	}
	name := fields[0]
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return BenchResult{}, false
	}
	res := BenchResult{Name: name, Iterations: iters}
	// The remainder alternates <value> <unit>.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return BenchResult{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			res.NsPerOp = v
		case "B/op":
			res.BytesPerOp = v
		case "allocs/op":
			res.AllocsOp = v
		case "MB/s":
			// throughput is derivable from ns/op; keep it as a metric
			fallthrough
		default:
			if res.Metrics == nil {
				res.Metrics = map[string]float64{}
			}
			res.Metrics[unit] = v
		}
	}
	return res, true
}

// JSON encodes the report deterministically: struct field order is fixed,
// results are sorted by name, and encoding/json emits map keys sorted.
func (r *BenchReport) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// LoadBenchReport decodes a BenchReport previously written by JSON.
func LoadBenchReport(data []byte) (*BenchReport, error) {
	var rep BenchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("obs: parsing bench baseline: %v", err)
	}
	return &rep, nil
}

// result returns the named result, if present.
func (r *BenchReport) result(name string) (BenchResult, bool) {
	for _, res := range r.Results {
		if res.Name == name {
			return res, true
		}
	}
	return BenchResult{}, false
}

// nsGateFloor is the baseline ns/op below which the wall-clock half of
// the gate is skipped: a sub-millisecond benchmark at -benchtime=1x is
// dominated by cold caches and scheduler jitter, and single readings
// swing several-fold run to run — far past any useful tolerance. The
// allocs/op half still applies to such benchmarks; allocation counts
// are near-deterministic at every scale.
const nsGateFloor = 1e6

// CompareBench checks current against baseline and returns one message
// per regression: a benchmark present in both reports whose ns/op or
// allocs/op grew by more than pct percent. Benchmarks present in only
// one report are skipped — the gate protects recorded baselines, it does
// not force every run to execute the full suite. ns/op is gated only
// when the baseline is at least nsGateFloor (see above); allocs/op is
// gated everywhere, and because allocation counts are near-deterministic
// the pct headroom there absorbs only pool-warmup jitter and intentional
// churn. An empty slice means the gate passes.
func CompareBench(baseline, current *BenchReport, pct float64) []string {
	var regressions []string
	tol := 1 + pct/100
	for _, base := range baseline.Results {
		cur, ok := current.result(base.Name)
		if !ok {
			continue
		}
		if base.NsPerOp >= nsGateFloor && cur.NsPerOp > base.NsPerOp*tol {
			regressions = append(regressions, fmt.Sprintf(
				"%s: ns/op %.0f exceeds baseline %.0f by more than %g%%",
				base.Name, cur.NsPerOp, base.NsPerOp, pct))
		}
		if base.AllocsOp > 0 && cur.AllocsOp > base.AllocsOp*tol {
			regressions = append(regressions, fmt.Sprintf(
				"%s: allocs/op %.0f exceeds baseline %.0f by more than %g%%",
				base.Name, cur.AllocsOp, base.AllocsOp, pct))
		}
	}
	return regressions
}
