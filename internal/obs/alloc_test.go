package obs

import "testing"

// Alloc-regression pins for the observability hot paths (DESIGN.md §12):
// a warm metric handle and a Reserved trace buffer must record without
// touching the allocator, and every probe must be a free no-op when
// observability is disabled (nil receivers). A serving run emits millions
// of probes — one allocation per probe would dominate the engine's own
// footprint.

func TestCounterIncZeroAllocs(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("events_total", L("chip", "0"))
	if allocs := testing.AllocsPerRun(1000, func() { c.Inc() }); allocs != 0 {
		t.Fatalf("warm Counter.Inc: %.1f allocs/op, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(1000, func() { c.Add(2) }); allocs != 0 {
		t.Fatalf("warm Counter.Add: %.1f allocs/op, want 0", allocs)
	}
}

func TestGaugeHistogramZeroAllocs(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("depth")
	h := r.Histogram("latency_s", DurationBuckets())
	v := 0.0
	allocs := testing.AllocsPerRun(1000, func() {
		g.Set(v)
		g.Max(v + 1)
		h.Observe(v)
		v += 1e-3
	})
	if allocs != 0 {
		t.Fatalf("warm Gauge/Histogram updates: %.1f allocs/op, want 0", allocs)
	}
}

func TestNilMetricsZeroAllocs(t *testing.T) {
	var r *Registry
	var c *Counter
	var g *Gauge
	var h *Histogram
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(1)
		g.Set(1)
		g.Max(1)
		h.Observe(1)
		_ = r.With() // label-scoping a nil registry is free too
	})
	if allocs != 0 {
		t.Fatalf("nil metric no-op paths: %.1f allocs/op, want 0", allocs)
	}
}

func TestTraceBuilderCounterZeroAllocs(t *testing.T) {
	tb := NewTraceBuilder(1e6)
	tb.Counter("chip0", "subarrays_in_use", 0, 0) // intern the track
	tb.Reserve(2048)
	i := 0.0
	allocs := testing.AllocsPerRun(1000, func() {
		tb.Counter("chip0", "subarrays_in_use", i, i)
		i++
	})
	if allocs != 0 {
		t.Fatalf("warm TraceBuilder.Counter into reserved capacity: %.1f allocs/op, want 0", allocs)
	}
}

func TestNilTraceBuilderZeroAllocs(t *testing.T) {
	var tb *TraceBuilder
	allocs := testing.AllocsPerRun(1000, func() {
		tb.Counter("c", "s", 0, 1)
		tb.Instant("c", "x", 0)
		tb.Span("c", "x", 0, 1)
		tb.Reserve(64)
		_ = tb.WithPrefix("p/")
	})
	if allocs != 0 {
		t.Fatalf("nil-TraceBuilder no-op paths: %.1f allocs/op, want 0", allocs)
	}
}
