package obs

import (
	"fmt"
	"math"
	"sort"
)

// Fleet accounting for an autoscaled cluster: each chip slot moves
// through boot → ready → drain → retire cycles on simulated time, and
// the cost question the autoscale sweep asks — how many chip-hours did
// this fleet burn? — is the integral of "slots powered on" over the run.
// The Fleet below records the lifecycle instants as they are decided and
// answers that integral exactly; it is the fleet-level sibling of the
// per-chip Occupancy accountant (DESIGN.md §14), which meters cycles
// *within* a powered-on chip.
//
// Like the other obs sinks, a nil *Fleet is a safe no-op receiver and
// recording is deterministic: events carry simulated instants chosen by
// the cluster front end, never wall clock.

// FleetEventKind classifies a chip-slot lifecycle transition.
type FleetEventKind uint8

const (
	// FleetBoot: the slot starts powering on (chip-hours begin accruing).
	FleetBoot FleetEventKind = iota
	// FleetReady: boot finished; the slot is routable.
	FleetReady
	// FleetDrain: the slot stops admitting new work (still powered,
	// finishing in-flight work).
	FleetDrain
	// FleetRetire: the slot powers off (chip-hours stop accruing).
	FleetRetire
)

// String names the kind as it appears in artifacts.
func (k FleetEventKind) String() string {
	switch k {
	case FleetBoot:
		return "boot"
	case FleetReady:
		return "ready"
	case FleetDrain:
		return "drain"
	case FleetRetire:
		return "retire"
	default:
		return "fleet(?)"
	}
}

// FleetEvent is one recorded lifecycle transition.
type FleetEvent struct {
	Time float64
	Chip int
	Kind FleetEventKind
}

// Fleet is the append-only lifecycle log of an autoscaled run. Events
// for one chip must be recorded with non-decreasing times (the cluster's
// control ticks guarantee it); across chips they may interleave freely,
// since drains record their future retire instant at decision time.
type Fleet struct {
	chips  int
	events []FleetEvent
}

// NewFleet returns an empty log for a fleet of the given slot count.
//
//perf:cold once-per-run constructor
func NewFleet(chips int) *Fleet {
	return &Fleet{chips: chips}
}

// Chips returns the slot count (0 on nil).
func (f *Fleet) Chips() int {
	if f == nil {
		return 0
	}
	return f.chips
}

// Note records one transition. Nil-safe no-op.
func (f *Fleet) Note(t float64, chip int, k FleetEventKind) {
	if f == nil || chip < 0 || chip >= f.chips {
		return
	}
	f.events = append(f.events, FleetEvent{Time: t, Chip: chip, Kind: k})
}

// Events returns the recorded log in append order.
func (f *Fleet) Events() []FleetEvent {
	if f == nil {
		return nil
	}
	return f.events
}

// perChip splits the log into per-chip event sequences, each in its
// recorded (per-chip chronological) order.
func (f *Fleet) perChip() [][]FleetEvent {
	per := make([][]FleetEvent, f.chips)
	for _, e := range f.events {
		per[e.Chip] = append(per[e.Chip], e)
	}
	return per
}

// ChipSeconds integrates powered-on time over [0, horizon]: for every
// boot→retire pair the slot contributes retire−boot (clamped to the
// horizon); a slot still up at the horizon contributes horizon−boot.
// Chips that never booted contribute nothing — a static fleet should
// simply be costed as chips × horizon by the caller.
func (f *Fleet) ChipSeconds(horizon float64) float64 {
	if f == nil {
		return 0
	}
	total := 0.0
	for _, evs := range f.perChip() {
		up := math.NaN()
		for _, e := range evs {
			switch e.Kind {
			case FleetBoot:
				if math.IsNaN(up) {
					up = e.Time
				}
			case FleetRetire:
				if !math.IsNaN(up) {
					end := math.Min(e.Time, horizon)
					if end > up {
						total += end - up
					}
					up = math.NaN()
				}
			}
		}
		if !math.IsNaN(up) && horizon > up {
			total += horizon - up
		}
	}
	return total
}

// PeakActive returns the maximum number of simultaneously routable
// chips over [0, horizon]: a chip counts from its ready instant until
// its drain (or the horizon). Boundary instants resolve starts before
// ends, so a drain and a ready at the same instant overlap.
func (f *Fleet) PeakActive(horizon float64) int {
	if f == nil {
		return 0
	}
	type edge struct {
		t     float64
		delta int
	}
	var edges []edge
	for _, evs := range f.perChip() {
		active := false
		for _, e := range evs {
			switch e.Kind {
			case FleetReady:
				if !active && e.Time <= horizon {
					edges = append(edges, edge{t: e.Time, delta: +1})
					active = true
				}
			case FleetDrain, FleetRetire:
				if active {
					edges = append(edges, edge{t: math.Min(e.Time, horizon), delta: -1})
					active = false
				}
			}
		}
		if active {
			edges = append(edges, edge{t: horizon, delta: -1})
		}
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].t != edges[j].t {
			return edges[i].t < edges[j].t
		}
		return edges[i].delta > edges[j].delta // +1 before -1 on ties
	})
	cur, peak := 0, 0
	for _, e := range edges {
		cur += e.delta
		if cur > peak {
			peak = cur
		}
	}
	return peak
}

// Validate checks the log's lifecycle discipline: per chip, times never
// decrease and transitions follow boot → ready → drain → retire (drain
// optional only when the cycle is still open at the end of the log).
func (f *Fleet) Validate() error {
	if f == nil {
		return nil
	}
	for chip, evs := range f.perChip() {
		prev := math.Inf(-1)
		// state: 0 = off, 1 = booting, 2 = ready, 3 = draining
		state := 0
		for i, e := range evs {
			if e.Time < prev {
				return fmt.Errorf("obs: fleet chip %d time went backwards at event %d (%v < %v)", chip, i, e.Time, prev)
			}
			prev = e.Time
			switch e.Kind {
			case FleetBoot:
				if state != 0 {
					return fmt.Errorf("obs: fleet chip %d boot in state %d", chip, state)
				}
				state = 1
			case FleetReady:
				if state != 1 {
					return fmt.Errorf("obs: fleet chip %d ready in state %d", chip, state)
				}
				state = 2
			case FleetDrain:
				if state != 2 {
					return fmt.Errorf("obs: fleet chip %d drain in state %d", chip, state)
				}
				state = 3
			case FleetRetire:
				if state != 3 {
					return fmt.Errorf("obs: fleet chip %d retire in state %d", chip, state)
				}
				state = 0
			}
		}
	}
	return nil
}
