package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
)

// Attribution aggregation (DESIGN.md §14): the builder folds per-request
// phase-duration vectors and terminal causes into per-model × per-QoS
// groups, computes dominant-cause histograms and per-phase p50/p99, and
// joins the result with per-chip occupancy accounting into one
// AttribReport with deterministic JSON and Table renderings.

// PhaseStat summarizes one phase across every request in a group.
type PhaseStat struct {
	Phase string  `json:"phase"`
	Count int64   `json:"count"` // requests with >0 time in this phase
	Sum   float64 `json:"sum_s"`
	Mean  float64 `json:"mean_s"` // over all requests in the group
	P50   float64 `json:"p50_s"`
	P99   float64 `json:"p99_s"`
}

// CauseCount is one bar of a group's dominant-cause histogram.
type CauseCount struct {
	Cause string `json:"cause"`
	Count int64  `json:"count"`
}

// AttribGroup is the per-model × per-QoS attribution breakdown.
type AttribGroup struct {
	Model    string `json:"model"`
	Level    string `json:"level"`
	Requests int64  `json:"requests"`
	// Completed counts requests that finished (cause done); the rest
	// were shed or rejected.
	Completed int64 `json:"completed"`
	// Violations counts SLA misses: every non-completed request plus
	// completed requests that finished after their deadline.
	Violations int64 `json:"violations"`
	// Dominant is the violation histogram by dominant cause: for
	// requests that never completed, the terminal cause; for late
	// completions, the phase that consumed the most time (ties break to
	// the earlier phase in pipeline order).
	Dominant []CauseCount `json:"dominant,omitempty"`
	Phases   []PhaseStat  `json:"phases"`
}

// UtilRow is one chip's (or the fleet's) occupancy split in unit-cycles.
type UtilRow struct {
	Chip        int     `json:"chip"` // -1 for the fleet rollup
	Units       int64   `json:"units"`
	Horizon     int64   `json:"horizon_cycles"`
	Busy        int64   `json:"busy_cycles"`
	Idle        int64   `json:"idle_cycles"`
	Faulted     int64   `json:"faulted_cycles"`
	Reconfig    int64   `json:"reconfig_cycles"`
	Utilization float64 `json:"utilization"`
	Pressure    float64 `json:"pressure"`
}

// AttribReport is the full attribution artifact: violation breakdowns
// per model × QoS level plus the fleet utilization table.
type AttribReport struct {
	Groups []AttribGroup `json:"groups"`
	Chips  []UtilRow     `json:"chips,omitempty"`
	Fleet  *UtilRow      `json:"fleet,omitempty"`
}

// attribAgg accumulates one group's samples before summarization.
type attribAgg struct {
	model, level string
	requests     int64
	completed    int64
	violations   int64
	domPhase     [NumPhases]int64
	domCause     [NumCauses]int64
	samples      [NumPhases][]float64
}

// AttribBuilder folds per-request attribution rows into groups. Groups
// are interned on first sight and sorted at Report time, so insertion
// order never leaks into the artifact.
type AttribBuilder struct {
	groups []*attribAgg
	index  map[string]int
}

// NewAttribBuilder returns an empty builder.
func NewAttribBuilder() *AttribBuilder {
	return &AttribBuilder{index: make(map[string]int)}
}

func (b *AttribBuilder) group(model, level string) *attribAgg {
	key := model + "\x00" + level
	if i, ok := b.index[key]; ok {
		return b.groups[i]
	}
	g := &attribAgg{model: model, level: level}
	b.index[key] = len(b.groups)
	b.groups = append(b.groups, g)
	return g
}

// Add folds one request into its model × level group. dur is the
// request's per-phase duration vector; cause its terminal cause;
// violated whether it missed its SLA (always true for non-completed
// requests).
func (b *AttribBuilder) Add(model, level string, dur *[NumPhases]float64, cause Cause, violated bool) {
	g := b.group(model, level)
	g.requests++
	completed := cause == CauseDone
	if completed {
		g.completed++
	}
	if !completed {
		violated = true
	}
	for p := 0; p < NumPhases; p++ {
		g.samples[p] = append(g.samples[p], dur[p])
	}
	if !violated {
		return
	}
	g.violations++
	if !completed {
		g.domCause[cause]++
		return
	}
	// Dominant phase: argmax duration, earlier phase wins ties.
	best := 0
	for p := 1; p < NumPhases; p++ {
		if dur[p] > dur[best] {
			best = p
		}
	}
	g.domPhase[best]++
}

// quantile returns the nearest-rank q-quantile (0 < q <= 1) of sorted
// non-empty samples.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(q*float64(len(sorted)) + 0.9999999)
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// utilRow converts one accountant into a report row.
func utilRow(chip int, o *Occupancy) UtilRow {
	return UtilRow{
		Chip:        chip,
		Units:       o.Units,
		Horizon:     o.Horizon,
		Busy:        o.Busy,
		Idle:        o.Idle,
		Faulted:     o.Faulted,
		Reconfig:    o.Reconfig,
		Utilization: o.Utilization(),
		Pressure:    o.Pressure(),
	}
}

// Report summarizes the folded groups, joined with per-chip occupancy
// accountants (may be empty). The accountants are copied and padded to a
// common horizon before the fleet rollup, so callers' values are not
// mutated. Output ordering is fully deterministic: groups sort by
// (model, level), phases and causes render in enum order.
func (b *AttribBuilder) Report(occs []*Occupancy) *AttribReport {
	r := &AttribReport{}
	sort.Slice(b.groups, func(i, j int) bool {
		gi, gj := b.groups[i], b.groups[j]
		if gi.model != gj.model {
			return gi.model < gj.model
		}
		return gi.level < gj.level
	})
	// Re-key the index after sorting so the builder stays usable.
	for i, g := range b.groups {
		b.index[g.model+"\x00"+g.level] = i
	}
	for _, g := range b.groups {
		out := AttribGroup{
			Model:      g.model,
			Level:      g.level,
			Requests:   g.requests,
			Completed:  g.completed,
			Violations: g.violations,
		}
		for p := 0; p < NumPhases; p++ {
			if g.domPhase[p] > 0 {
				out.Dominant = append(out.Dominant, CauseCount{Cause: Phase(p).String(), Count: g.domPhase[p]})
			}
		}
		for c := 0; c < NumCauses; c++ {
			if g.domCause[c] > 0 {
				out.Dominant = append(out.Dominant, CauseCount{Cause: Cause(c).String(), Count: g.domCause[c]})
			}
		}
		for p := 0; p < NumPhases; p++ {
			samples := g.samples[p]
			var sum float64
			count := int64(0)
			for _, v := range samples {
				sum += v
				if v > 0 {
					count++
				}
			}
			sorted := make([]float64, len(samples))
			copy(sorted, samples)
			sort.Float64s(sorted)
			ps := PhaseStat{
				Phase: Phase(p).String(),
				Count: count,
				Sum:   sum,
				P50:   quantile(sorted, 0.50),
				P99:   quantile(sorted, 0.99),
			}
			if len(samples) > 0 {
				ps.Mean = sum / float64(len(samples))
			}
			out.Phases = append(out.Phases, ps)
		}
		r.Groups = append(r.Groups, out)
	}
	if len(occs) > 0 {
		var h int64
		for _, o := range occs {
			if o != nil && o.Horizon > h {
				h = o.Horizon
			}
		}
		fleet := &Occupancy{}
		for i, o := range occs {
			if o == nil {
				continue
			}
			padded := *o
			padded.PadTo(h)
			r.Chips = append(r.Chips, utilRow(i, &padded))
			fleet.Merge(&padded)
		}
		fr := utilRow(-1, fleet)
		r.Fleet = &fr
	}
	return r
}

// JSON encodes the report deterministically (stable field order, sorted
// groups, trailing newline).
func (r *AttribReport) JSON() ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// LoadAttribReport decodes a report previously encoded with JSON.
func LoadAttribReport(data []byte) (*AttribReport, error) {
	r := &AttribReport{}
	if err := json.Unmarshal(data, r); err != nil {
		return nil, err
	}
	return r, nil
}

// Text renders the report with the shared Table renderer: one breakdown
// table (per group × phase) with the dominant-cause histogram inline,
// then the fleet utilization table.
func (r *AttribReport) Text() string {
	var buf bytes.Buffer
	t := NewTable("model", "qos", "reqs", "done", "viol", "phase", "count", "sum(s)", "mean(s)", "p50(s)", "p99(s)").AlignLeft(1, 5)
	for _, g := range r.Groups {
		first := true
		for _, ps := range g.Phases {
			if ps.Count == 0 && ps.Sum == 0 {
				continue
			}
			head := []string{"", "", "", "", ""}
			if first {
				head = []string{
					g.Model, g.Level,
					fmt.Sprintf("%d", g.Requests),
					fmt.Sprintf("%d", g.Completed),
					fmt.Sprintf("%d", g.Violations),
				}
				first = false
			}
			t.Row(append(head,
				ps.Phase,
				fmt.Sprintf("%d", ps.Count),
				fmt.Sprintf("%.6f", ps.Sum),
				fmt.Sprintf("%.6f", ps.Mean),
				fmt.Sprintf("%.6f", ps.P50),
				fmt.Sprintf("%.6f", ps.P99),
			)...)
		}
		if first {
			// No phase saw any time; still show the group line.
			t.Row(g.Model, g.Level,
				fmt.Sprintf("%d", g.Requests),
				fmt.Sprintf("%d", g.Completed),
				fmt.Sprintf("%d", g.Violations))
		}
	}
	buf.WriteString(t.String())
	wroteDom := false
	for _, g := range r.Groups {
		for _, d := range g.Dominant {
			if !wroteDom {
				buf.WriteString("\ndominant causes of SLA violations:\n")
				wroteDom = true
			}
			fmt.Fprintf(&buf, "  %s %s: %s ×%d\n", g.Model, g.Level, d.Cause, d.Count)
		}
	}
	if len(r.Chips) > 0 || r.Fleet != nil {
		buf.WriteString("\n")
		ut := NewTable("chip", "units", "horizon", "busy", "idle", "faulted", "reconfig", "util", "pressure")
		row := func(u *UtilRow, name string) {
			ut.Row(name,
				fmt.Sprintf("%d", u.Units),
				fmt.Sprintf("%d", u.Horizon),
				fmt.Sprintf("%d", u.Busy),
				fmt.Sprintf("%d", u.Idle),
				fmt.Sprintf("%d", u.Faulted),
				fmt.Sprintf("%d", u.Reconfig),
				fmt.Sprintf("%.4f", u.Utilization),
				fmt.Sprintf("%.4f", u.Pressure),
			)
		}
		for i := range r.Chips {
			row(&r.Chips[i], fmt.Sprintf("chip%d", r.Chips[i].Chip))
		}
		if r.Fleet != nil {
			row(r.Fleet, "fleet")
		}
		buf.WriteString(ut.String())
	}
	return buf.String()
}
