package obs

import (
	"encoding/json"
	"strings"
	"testing"
)

func buildTimeline() *TraceBuilder {
	tb := NewTraceBuilder(1e6) // seconds → µs
	tb.Span("task 000", "req 0 ResNet-50", 0, 0.010, Str("model", "ResNet-50"), Num("priority", 5))
	tb.Counter("chip", "subarrays", 0, 16)
	tb.Counter("chip", "subarrays", 0.004, 12)
	tb.Instant("sched", "preempt task 0", 0.004, Num("task", 0))
	sub := tb.WithPrefix("prema/")
	sub.Span("task 001", "req 1", 0.001, 0.02)
	return tb
}

func TestTraceJSONIsValidAndDeterministic(t *testing.T) {
	tb := buildTimeline()
	raw := tb.JSON()
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("exported trace is not valid JSON: %v\n%s", err, raw)
	}
	// Metadata: process name + 2 per track (name, sort index), 4 tracks.
	var spans, counters, instants, meta int
	var sawPrefixed bool
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "X":
			spans++
			if e.Name == "req 0 ResNet-50" {
				if e.Ts != 0 || e.Dur != 10000 {
					t.Errorf("span ts=%g dur=%g, want 0/10000 µs", e.Ts, e.Dur)
				}
				if e.Args["model"] != "ResNet-50" || e.Args["priority"] != 5.0 {
					t.Errorf("span args = %v", e.Args)
				}
			}
		case "C":
			counters++
			if !strings.Contains(e.Name, "chip:subarrays") {
				t.Errorf("counter name %q not track-qualified", e.Name)
			}
		case "i":
			instants++
		case "M":
			meta++
			if name, _ := e.Args["name"].(string); strings.HasPrefix(name, "prema/") {
				sawPrefixed = true
			}
		}
	}
	if spans != 2 || counters != 2 || instants != 1 {
		t.Fatalf("spans=%d counters=%d instants=%d, want 2/2/1", spans, counters, instants)
	}
	if meta != 1+2*4 {
		t.Fatalf("metadata events = %d, want 9 (process + 2×4 tracks)", meta)
	}
	if !sawPrefixed {
		t.Fatal("WithPrefix track missing from thread metadata")
	}
	if string(buildTimeline().JSON()) != string(raw) {
		t.Fatal("identical timelines encode differently")
	}
}

func TestTraceNilSafe(t *testing.T) {
	var tb *TraceBuilder
	tb.Span("a", "b", 0, 1)
	tb.Instant("a", "b", 0)
	tb.Counter("a", "b", 0, 1)
	if tb.WithPrefix("x/") != nil {
		t.Fatal("nil.WithPrefix should stay nil")
	}
	if tb.Len() != 0 {
		t.Fatal("nil builder has events")
	}
	var doc map[string]any
	if err := json.Unmarshal(tb.JSON(), &doc); err != nil {
		t.Fatalf("nil builder export invalid: %v", err)
	}
}

func TestSpanClampsReversedInterval(t *testing.T) {
	tb := NewTraceBuilder(1)
	tb.Span("t", "s", 5, 3)
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(tb.JSON(), &doc); err != nil {
		t.Fatal(err)
	}
	for _, e := range doc.TraceEvents {
		if e["ph"] == "X" && e["dur"] != 0.0 {
			t.Fatalf("reversed span dur = %v, want 0", e["dur"])
		}
	}
}
