package obs

import (
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total", L("model", "resnet"))
	c.Inc()
	c.Add(2)
	c.Add(-5) // ignored: counters are monotone
	g := r.Gauge("queue_depth")
	g.Set(3)
	g.Max(7)
	g.Max(2) // below the high-water mark
	h := r.Histogram("latency_seconds", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.5, 5} {
		h.Observe(v)
	}

	snap := r.Snapshot()
	if len(snap.Series) != 3 {
		t.Fatalf("snapshot has %d series, want 3", len(snap.Series))
	}
	byName := func(name string) SeriesSnapshot {
		for _, s := range snap.Series {
			if s.Name == name {
				return s
			}
		}
		t.Fatalf("series %q missing", name)
		return SeriesSnapshot{}
	}
	if v := byName("requests_total").Value; v != 3 {
		t.Errorf("counter = %g, want 3", v)
	}
	if v := byName("queue_depth").Value; v != 7 {
		t.Errorf("gauge = %g, want 7 (high-water)", v)
	}
	hs := byName("latency_seconds")
	if hs.Count != 4 || math.Abs(hs.Sum-5.555) > 1e-12 {
		t.Errorf("histogram count=%d sum=%g, want 4/5.555", hs.Count, hs.Sum)
	}
	for i, want := range []uint64{1, 1, 1, 1} {
		if hs.Buckets[i] != want {
			t.Errorf("bucket %d = %d, want %d", i, hs.Buckets[i], want)
		}
	}
}

func TestSeriesIdentityIgnoresLabelOrder(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x", L("b", "2"), L("a", "1"))
	b := r.Counter("x", L("a", "1"), L("b", "2"))
	a.Inc()
	b.Inc()
	snap := r.Snapshot()
	if len(snap.Series) != 1 {
		t.Fatalf("label order split the series: %d series", len(snap.Series))
	}
	if snap.Series[0].Value != 2 {
		t.Fatalf("value = %g, want 2", snap.Series[0].Value)
	}
}

func TestWithLabelsAndKindConflict(t *testing.T) {
	r := NewRegistry()
	sub := r.With(L("system", "planaria"))
	sub.Counter("decisions_total").Inc()
	snap := r.Snapshot()
	if len(snap.Series) != 1 || snap.Series[0].Labels[0].Value != "planaria" {
		t.Fatalf("derived view lost its base label: %+v", snap.Series)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	sub.Gauge("decisions_total")
}

func TestNilRegistryIsNoop(t *testing.T) {
	var r *Registry
	r.Counter("a").Inc()
	r.Gauge("b").Set(1)
	r.Gauge("b").Max(2)
	r.Histogram("c", DurationBuckets()).Observe(1)
	if r.With(L("k", "v")) != nil {
		t.Fatal("nil.With should stay nil")
	}
	snap := r.Snapshot()
	if len(snap.Series) != 0 {
		t.Fatal("nil registry produced series")
	}
	var o *Observer
	if o.Registry() != nil || o.Tracer() != nil || o.Named("x") != nil {
		t.Fatal("nil observer must yield nil sinks")
	}
}

func TestSnapshotEncodingsDeterministic(t *testing.T) {
	build := func() *Registry {
		r := NewRegistry()
		r.Counter("z_total", L("m", "b")).Add(2)
		r.Counter("a_total", L("m", "a")).Add(1)
		r.Histogram("h", []float64{1, 2}).Observe(1.5)
		r.Gauge("g").Set(0.25)
		return r
	}
	j1, err := build().Snapshot().JSON()
	if err != nil {
		t.Fatal(err)
	}
	j2, err := build().Snapshot().JSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(j1) != string(j2) {
		t.Fatalf("JSON snapshots differ:\n%s\n---\n%s", j1, j2)
	}
	t1, t2 := build().Snapshot().Text(), build().Snapshot().Text()
	if t1 != t2 {
		t.Fatalf("text snapshots differ:\n%s\n---\n%s", t1, t2)
	}
	// Sorted by series id: a_total before g before h before z_total.
	idx := func(s string) int { return strings.Index(t1, s) }
	if !(idx("a_total") < idx("g") && idx("g") < idx("h") && idx("h") < idx("z_total")) {
		t.Fatalf("series not sorted:\n%s", t1)
	}
}

// TestHistogramJSONAlwaysCarriesCountSum pins the artifact contract: a
// histogram series exports "count" and "sum" unconditionally — even at
// zero samples — so means are derivable from any snapshot without
// re-running, while counters/gauges keep the compact value-only form.
func TestHistogramJSONAlwaysCarriesCountSum(t *testing.T) {
	r := NewRegistry()
	r.Histogram("empty_h", []float64{1, 2}) // registered, never observed
	r.Histogram("warm_h", []float64{1, 2}).Observe(0.5)
	r.Counter("c_total").Inc()
	j, err := r.Snapshot().JSON()
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Series []map[string]any `json:"series"`
	}
	if err := json.Unmarshal(j, &doc); err != nil {
		t.Fatal(err)
	}
	for _, s := range doc.Series {
		name := s["name"].(string)
		_, hasCount := s["count"]
		_, hasSum := s["sum"]
		switch name {
		case "empty_h", "warm_h":
			if !hasCount || !hasSum {
				t.Errorf("%s: histogram JSON missing count/sum: %v", name, s)
			}
		default:
			if hasCount || hasSum {
				t.Errorf("%s: non-histogram JSON grew count/sum: %v", name, s)
			}
		}
	}
	if c := byNameIn(t, doc.Series, "empty_h"); c["count"].(float64) != 0 || c["sum"].(float64) != 0 {
		t.Errorf("zero-sample histogram count/sum: %v", c)
	}
	// The text rendering derives the mean in its own column.
	text := r.Snapshot().Text()
	if !strings.Contains(text, "mean") {
		t.Fatalf("text snapshot lost the mean column:\n%s", text)
	}
}

func byNameIn(t *testing.T, series []map[string]any, name string) map[string]any {
	t.Helper()
	for _, s := range series {
		if s["name"] == name {
			return s
		}
	}
	t.Fatalf("series %q missing", name)
	return nil
}

// TestRegistryAppendOnlyContract asserts the documented append-only
// contract (see the Registry doc comment): no removal, handles valid
// forever, re-registration returns the same storage, and each Snapshot's
// series set is a superset of every earlier one.
func TestRegistryAppendOnlyContract(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("reqs_total", L("chip", "0"))
	c1.Inc()
	seen := map[string]bool{}
	for _, s := range r.Snapshot().Series {
		seen[s.Name] = true
	}

	// Re-registering the same (name, label set) must return the same
	// storage — increments through either handle land in one series.
	c2 := r.Counter("reqs_total", L("chip", "0"))
	c2.Inc()
	snap := r.Snapshot()
	if len(snap.Series) != 1 || snap.Series[0].Value != 2 {
		t.Fatalf("re-registration split or reset the series: %+v", snap.Series)
	}

	// Registering more series only grows the set; everything previously
	// snapshotted is still there with its value intact.
	r.Gauge("depth").Set(3)
	r.Histogram("lat", []float64{1}).Observe(0.5)
	snap = r.Snapshot()
	if len(snap.Series) != 3 {
		t.Fatalf("series set = %d, want 3", len(snap.Series))
	}
	for name := range seen {
		found := false
		for _, s := range snap.Series {
			if s.Name == name {
				found = true
			}
		}
		if !found {
			t.Fatalf("earlier series %q vanished from a later snapshot", name)
		}
	}

	// The old handle stays valid after arbitrary later registrations.
	c1.Inc()
	for _, s := range r.Snapshot().Series {
		if s.Name == "reqs_total" && s.Value != 3 {
			t.Fatalf("stale handle: value = %g, want 3", s.Value)
		}
	}
}

func TestRegistryConcurrentUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("spins_total").Inc()
				r.Histogram("h", []float64{10, 100}).Observe(float64(j))
			}
		}()
	}
	wg.Wait()
	snap := r.Snapshot()
	for _, s := range snap.Series {
		switch s.Name {
		case "spins_total":
			if s.Value != 8000 {
				t.Errorf("spins_total = %g, want 8000", s.Value)
			}
		case "h":
			if s.Count != 8000 {
				t.Errorf("h count = %d, want 8000", s.Count)
			}
		}
	}
}

func TestTableRenderer(t *testing.T) {
	tab := NewTable("name", "v")
	tab.Row("alpha", "1")
	tab.Row("b", "22")
	out := tab.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("rendered %d lines, want 3:\n%s", len(lines), out)
	}
	for _, l := range lines[1:] {
		if len(l) != len(lines[0]) {
			t.Fatalf("misaligned table:\n%s", out)
		}
	}
	if !strings.HasPrefix(lines[1], "alpha") || !strings.HasSuffix(lines[2], "22") {
		t.Fatalf("alignment wrong:\n%s", out)
	}
}
