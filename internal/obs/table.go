package obs

import "strings"

// Table renders aligned monospace tables with a strings.Builder — the
// shared renderer behind the registry snapshot text encoding and the
// metrics package's latency tables. The first column is left-aligned,
// all others right-aligned (override with AlignLeft).
type Table struct {
	header []string
	left   []bool
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(cols ...string) *Table {
	left := make([]bool, len(cols))
	if len(left) > 0 {
		left[0] = true
	}
	return &Table{header: cols, left: left}
}

// AlignLeft left-aligns the given column indices.
func (t *Table) AlignLeft(cols ...int) *Table {
	for _, c := range cols {
		if c >= 0 && c < len(t.left) {
			t.left[c] = true
		}
	}
	return t
}

// Row appends one row; missing cells render empty, extra cells are kept
// and widen the table.
func (t *Table) Row(cells ...string) {
	t.rows = append(t.rows, cells)
}

// String renders the table, one space-padded line per row.
func (t *Table) String() string {
	ncol := len(t.header)
	for _, r := range t.rows {
		if len(r) > ncol {
			ncol = len(r)
		}
	}
	widths := make([]int, ncol)
	measure := func(r []string) {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	measure(t.header)
	for _, r := range t.rows {
		measure(r)
	}
	var b strings.Builder
	writeRow := func(r []string) {
		for i := 0; i < ncol; i++ {
			cell := ""
			if i < len(r) {
				cell = r[i]
			}
			pad := widths[i] - len(cell)
			if i > 0 {
				b.WriteByte(' ')
				b.WriteByte(' ')
			}
			left := i < len(t.left) && t.left[i]
			if !left {
				b.WriteString(strings.Repeat(" ", pad))
			}
			b.WriteString(cell)
			if left && i < ncol-1 {
				b.WriteString(strings.Repeat(" ", pad))
			}
		}
		b.WriteByte('\n')
	}
	if len(t.header) > 0 {
		writeRow(t.header)
	}
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}
