// Package model is the analytical performance and data-movement model for
// layers executing on a (possibly fissioned) Planaria logical accelerator.
// It converts a dnn.Layer plus a fission shape into cycle counts, tile
// counts (the scheduling quantum), utilization, DRAM traffic, and an
// energy account.
//
// The model follows weight-stationary systolic execution: a cluster of
// R×C PEs holds a Kt×Nt weight tile (Kt ≤ R, Nt ≤ C); activation rows
// stream through; one output row drains per cycle after a Kt+Nt pipeline
// fill. Its single-tile cycle count (M + Kt + Nt − 1) is exact — the
// functional simulator in internal/systolic reproduces it cycle for cycle,
// and the cross-validation tests in this package assert that equality.
package model

import (
	"fmt"
	"math"

	"planaria/internal/arch"
	"planaria/internal/dnn"
	"planaria/internal/energy"
	"planaria/internal/par"
)

// Result describes a layer (or whole network) executed on a given shape.
type Result struct {
	// Shape is the fission configuration used.
	Shape arch.Shape
	// SplitM reports whether clusters partitioned the GEMM's M dimension
	// (true) or its N dimension / depthwise channels (false).
	SplitM bool
	// Cycles is the total execution time in clock cycles, including
	// sequential repetitions and the memory-bandwidth bound.
	Cycles int64
	// Tiles is the number of scheduling quanta (tile executions on the
	// critical path); preemption is only possible at tile boundaries.
	Tiles int64
	// Util is the MAC-array utilization in [0,1].
	Util float64
	// Acct is the energy account (leakage excluded; the simulator adds
	// occupancy leakage).
	Acct energy.Account
	// DRAMBytes is the off-chip traffic (also present in Acct).
	DRAMBytes int64
}

// CyclesPerTile returns the average tile duration, the scheduling quantum.
func (r Result) CyclesPerTile() int64 {
	if r.Tiles <= 0 {
		return r.Cycles
	}
	q := r.Cycles / r.Tiles
	if q < 1 {
		q = 1
	}
	return q
}

const (
	// psumBytes is the partial-sum width (int32).
	psumBytes = 4
	// actBytes is the activation/weight element width (int8).
	actBytes = 1
	// boundaryLatency is the extra pipeline latency per subarray boundary
	// a wavefront crosses (registered ring-bus segment).
	boundaryLatency = 2
	// tileOverheadCycles covers per-tile instruction fetch/dispatch.
	tileOverheadCycles = 4
)

func ceilDiv(a, b int) int {
	if b <= 0 {
		return a
	}
	return (a + b - 1) / b
}

// reloadFactor returns how many times the raw activations stream from
// DRAM: once if the per-cluster working set fits its buffer share,
// otherwise once per N-tile pass.
func reloadFactor(workingSet, actShare int64, ntiles int) int64 {
	if workingSet <= actShare || ntiles < 1 {
		return 1
	}
	return int64(ntiles)
}

// gemmOnCluster computes the cycle count and SRAM traffic of an M×K×N
// GEMM on a single R×C-PE cluster whose activation-buffer share is
// actShare bytes. It returns compute cycles (without the bandwidth
// bound), tile count, the activation-reload factor (how many times the
// activation working set streams, i.e. the N-tile count), and SRAM bytes.
func gemmOnCluster(m, k, n, r, c int, actShare int64) (cycles, tiles int64, reload int, sram int64) {
	if m <= 0 || k <= 0 || n <= 0 {
		return 0, 0, 1, 0
	}
	kt := ceilDiv(k, r) // K-tiles
	nt := ceilDiv(n, c) // N-tiles
	ktEff := min(k, r)
	ntEff := min(n, c)

	// M-chunking: a chunk of activation rows must fit the buffer share.
	mt := m
	if actShare > 0 {
		cap := int(actShare / int64(k*actBytes))
		if cap < 1 {
			cap = 1
		}
		if mt > cap {
			mt = cap
		}
	}
	mChunks := ceilDiv(m, mt)

	// Per (kt, nt) weight tile the cluster streams all m rows, split into
	// mChunks buffer-sized chunks, each paying one pipeline fill/drain
	// and per-tile dispatch overhead. Weight loads are double-buffered:
	// the next tile's weights (ktEff rows, one row per cycle) load while
	// the current tile streams, so a tile's period is the larger of its
	// streaming time and the load time; only the first load is exposed
	// (ktEff−1 cycles: the functional simulator's streamed load lands
	// every weight row at cycle K−1, cross-validated in
	// crossval_test.go).
	fill := ktEff + ntEff - 1
	tiles = int64(kt) * int64(nt) * int64(mChunks)
	fullChunks := m / mt
	restRows := m - fullChunks*mt
	perPass := int64(fullChunks) * max(int64(mt+fill+tileOverheadCycles), int64(ktEff))
	if restRows > 0 {
		perPass += max(int64(restRows+fill+tileOverheadCycles), int64(ktEff))
	}
	cycles = int64(kt)*int64(nt)*perPass + int64(ktEff-1)

	// SRAM traffic: im2col-expanded activations re-read per N-tile,
	// weights loaded into the array once per M-chunk, partial sums
	// revisit the output buffer once per extra K-tile (read+write,
	// 4-byte).
	wBytes := int64(k) * int64(n) * actBytes
	aBytes := int64(m) * int64(k) * actBytes
	oBytes := int64(m) * int64(n) * actBytes
	sram = aBytes*int64(nt) + wBytes*int64(mChunks) + oBytes
	if kt > 1 {
		sram += int64(kt-1) * int64(m) * int64(n) * psumBytes * 2
	}
	return cycles, tiles, nt, sram
}

// GEMMOnShape evaluates an (optionally multi-channel, repeated) GEMM on a
// fission shape under an allocation of alloc subarrays (which sets the
// buffer and DRAM-bandwidth shares). channels > 1 denotes independent
// per-channel GEMMs (depthwise convolution): different channels need
// different activation streams, so they parallelize only across clusters.
// The raw activation footprint is taken as m·k·channels bytes (im2col);
// use GEMMOnShapeRaw to supply the true input-tensor footprint for
// convolutions, whose im2col expansion happens on chip.
func GEMMOnShape(m, k, n, channels, repeat int, sh arch.Shape, cfg arch.Config, alloc int) Result {
	raw := int64(m) * int64(k) * int64(channels) * actBytes
	return GEMMOnShapeRaw(m, k, n, channels, repeat, raw, sh, cfg, alloc)
}

// GEMMOnShapeRaw is GEMMOnShape with an explicit raw activation footprint
// (the DRAM bytes one pass over the layer input costs).
func GEMMOnShapeRaw(m, k, n, channels, repeat int, rawAct int64, sh arch.Shape, cfg arch.Config, alloc int) Result {
	if repeat < 1 {
		repeat = 1
	}
	if channels < 1 {
		channels = 1
	}
	nSub := cfg.NumSubarrays()
	if alloc < sh.Subarrays() {
		alloc = sh.Subarrays()
	}
	if alloc > nSub {
		alloc = nSub
	}
	r := sh.PERows(cfg)
	c := sh.PECols(cfg)
	g := sh.Clusters

	actShare := cfg.ActBufBytes * int64(alloc) / int64(nSub) / int64(g)

	// Chip-total DRAM components: weights and outputs move exactly once;
	// activations move once if the per-cluster working set fits its
	// buffer share, else once per N-tile pass.
	wBytes := int64(k) * int64(n) * int64(channels) * actBytes
	oBytes := int64(m) * int64(n) * int64(channels) * actBytes

	// finalize applies chaining latency and the DRAM-bandwidth bound to a
	// candidate execution plan and returns its bound cycle count.
	chain := int64((sh.H-1)+(sh.W-1)) * boundaryLatency
	bw := cfg.BytesPerCycle() * float64(alloc) / float64(nSub)
	finalize := func(cy, ti, dr int64) int64 {
		cy += chain * ti
		memCycles := int64(math.Ceil(float64(dr) / bw))
		if memCycles > cy {
			cy = memCycles
		}
		return cy
	}

	var cycles, tiles, dram, sram int64
	splitM := false
	if channels > 1 {
		// Depthwise: ceil(channels/G) sequential per-channel GEMMs per
		// cluster; clusters run in parallel. The raw input is read once.
		seq := ceilDiv(channels, g)
		cy, ti, _, sr := gemmOnCluster(m, k, n, r, c, actShare)
		tiles = ti * int64(seq)
		sram = sr * int64(channels)
		dram = wBytes + oBytes + rawAct
		cycles = finalize(cy*int64(seq), tiles, dram)
	} else {
		// Dense GEMM: clusters partition N (weight split, activations
		// multicast) or M (activation split, weights multicast) —
		// whichever is faster after the bandwidth bound. K is never
		// split across clusters: that would need cross-cluster
		// partial-sum reduction, which the Fission Pod does not provide
		// (psums only chain within a cluster).
		nCy, nTi, nReload, nSr := gemmOnCluster(m, k, ceilDiv(n, g), r, c, actShare)
		mCy, mTi, mReload, mSr := gemmOnCluster(ceilDiv(m, g), k, n, r, c, actShare)
		nDram := wBytes + oBytes + rawAct*reloadFactor(int64(m)*int64(k), actShare, nReload)
		mDram := wBytes + oBytes + rawAct*reloadFactor(int64(ceilDiv(m, g))*int64(k), actShare, mReload)
		nTotal := finalize(nCy, nTi, nDram)
		mTotal := finalize(mCy, mTi, mDram)
		if mTotal < nTotal {
			splitM = true
			cycles, tiles, dram = mTotal, mTi, mDram
			sram = mSr * int64(g)
		} else {
			cycles, tiles, dram = nTotal, nTi, nDram
			sram = nSr * int64(g)
		}
	}

	macs := int64(m) * int64(k) * int64(n) * int64(channels)
	util := 0.0
	if cycles > 0 {
		avail := float64(cycles) * float64(sh.Subarrays()*cfg.SubRows*cfg.SubCols)
		util = float64(macs) / avail
		if util > 1 {
			util = 1
		}
	}

	// Ring-bus hop traffic: activation stream crosses (W−1) boundaries
	// within a chained cluster, partial sums (H−1); broadcasting shared
	// operands to G clusters costs (G−1) hops of the shared stream.
	var hops int64
	aStream := int64(m) * int64(k) * int64(channels) * actBytes
	oStream := int64(m) * int64(n) * int64(channels) * psumBytes
	hops += aStream * int64(sh.W-1)
	hops += oStream * int64(sh.H-1)
	if channels == 1 && g > 1 {
		if splitM {
			hops += int64(k) * int64(n) * actBytes * int64(g-1) // weight multicast
		} else {
			hops += aStream * int64(g-1) // activation multicast
		}
	}

	// Pipeline-register clocking: every PE of the occupied subarrays
	// clocks its activation and partial-sum registers each cycle whether
	// or not it holds useful data (≈3 effective bytes/PE/cycle). This is
	// what makes utilization an energy lever: a poorly utilized shape
	// burns the same per-cycle register power for more cycles.
	occupiedPEs := int64(sh.Subarrays()) * int64(cfg.SubRows) * int64(cfg.SubCols)
	acct := energy.Account{
		MACs:      macs,
		SRAMBytes: sram,
		RegBytes:  cycles * occupiedPEs * 3,
		DRAMBytes: dram,
		HopBytes:  hops,
		Cycles:    cycles,
	}
	rep := int64(repeat)
	return Result{
		Shape:     sh,
		SplitM:    splitM,
		Cycles:    cycles * rep,
		Tiles:     tiles * rep,
		Util:      util,
		Acct:      acct.Scale(rep),
		DRAMBytes: dram * rep,
	}
}

// VectorOnAlloc evaluates a vector-unit layer (pool, add, activation) on
// an allocation of alloc subarrays. The chip's SIMD unit is segmented per
// subarray (§III-A item 3), so lane count scales with the allocation.
func VectorOnAlloc(l *dnn.Layer, cfg arch.Config, alloc int) Result {
	nSub := cfg.NumSubarrays()
	if alloc < 1 {
		alloc = 1
	}
	if alloc > nSub {
		alloc = nSub
	}
	lanes := cfg.ArrayCols * alloc / nSub
	if lanes < 1 {
		lanes = 1
	}
	ops := l.VectorOps()
	cycles := (ops + int64(lanes) - 1) / int64(lanes)
	if cycles < 1 {
		cycles = 1
	}
	bytes := (l.InputElems() + l.OutputElems()) * actBytes
	acct := energy.Account{
		VectorOps: ops,
		SRAMBytes: bytes,
		Cycles:    cycles,
	}
	return Result{
		Shape:  arch.Shape{Clusters: alloc, H: 1, W: 1},
		Cycles: cycles,
		Tiles:  1,
		Acct:   acct,
	}
}

// LayerOnShape evaluates one layer on a specific fission shape.
func LayerOnShape(l *dnn.Layer, sh arch.Shape, cfg arch.Config, alloc int) Result {
	if !l.Kind.IsGEMM() {
		return VectorOnAlloc(l, cfg, alloc)
	}
	m, k, n := l.GEMM()
	res := GEMMOnShapeRaw(m, k, n, l.Channels(), max(l.Repeat, 1),
		l.InputElems()*actBytes, sh, cfg, alloc)
	// Every GEMM output passes once through the vector unit
	// (bias/activation/requantization); it is pipelined with the drain,
	// so it costs energy but no extra cycles.
	res.Acct.VectorOps += l.OutputElems() * int64(max(l.Repeat, 1))
	return res
}

// ShapeFilter restricts the shape search; nil admits every shape. Used
// by ablation studies (e.g. excluding omni-directional configurations).
type ShapeFilter func(arch.Shape) bool

// BestShape searches the fission shapes available to an allocation of s
// subarrays and returns the fastest (ties broken by energy). This is the
// compiler's per-layer configuration choice (Fig 11a).
func BestShape(l *dnn.Layer, cfg arch.Config, s int) Result {
	return BestShapeWith(l, cfg, s, nil)
}

// parallelShapeThreshold is the candidate count below which the shape
// search stays sequential: each LayerOnShape is a few hundred nanoseconds
// of pure arithmetic, so small searches don't amortize worker startup.
const parallelShapeThreshold = 24

// BestShapeWith is BestShape restricted to shapes accepted by the filter.
// If the filter rejects everything, the single-subarray shape is used.
// Large searches evaluate candidates across a bounded worker pool; the
// winner is reduced in shape-enumeration order with the same comparator a
// sequential scan uses, so the chosen shape is identical either way.
func BestShapeWith(l *dnn.Layer, cfg arch.Config, s int, filter ShapeFilter) Result {
	if !l.Kind.IsGEMM() {
		return VectorOnAlloc(l, cfg, s)
	}
	shapes := arch.EnumerateShapes(cfg, s)
	if len(shapes) == 0 {
		shapes = []arch.Shape{arch.MonolithicShape(cfg)}
	}
	cands := shapes
	if filter != nil {
		cands = make([]arch.Shape, 0, len(shapes))
		for _, sh := range shapes {
			if filter(sh) {
				cands = append(cands, sh)
			}
		}
	}
	if len(cands) == 0 {
		return LayerOnShape(l, arch.Shape{Clusters: 1, H: 1, W: 1}, cfg, s)
	}

	p := energy.Default()
	better := func(r, best Result) bool {
		return r.Cycles < best.Cycles ||
			(r.Cycles == best.Cycles && r.Acct.Joules(p) < best.Acct.Joules(p))
	}
	if len(cands) < parallelShapeThreshold {
		best := LayerOnShape(l, cands[0], cfg, s)
		for _, sh := range cands[1:] {
			if r := LayerOnShape(l, sh, cfg, s); better(r, best) {
				best = r
			}
		}
		return best
	}
	results := make([]Result, len(cands))
	par.ForEach(len(cands), func(i int) {
		results[i] = LayerOnShape(l, cands[i], cfg, s)
	})
	best := results[0]
	for _, r := range results[1:] {
		if better(r, best) {
			best = r
		}
	}
	return best
}

// NetworkOnAlloc evaluates a whole network with s subarrays, choosing the
// best shape per layer (fissionable = true) or forcing the monolithic
// shape for every layer (the conventional/PREMA execution model).
func NetworkOnAlloc(n *dnn.Network, cfg arch.Config, s int, fissionable bool) (Result, error) {
	return NetworkOnAllocWith(n, cfg, s, fissionable, nil)
}

// NetworkOnAllocWith is NetworkOnAlloc with a shape filter applied to
// every layer's search (fissionable = true only).
func NetworkOnAllocWith(n *dnn.Network, cfg arch.Config, s int, fissionable bool, filter ShapeFilter) (Result, error) {
	if err := n.Validate(); err != nil {
		return Result{}, err
	}
	var total Result
	total.Shape = arch.Shape{Clusters: 1, H: 1, W: 1}
	mono := arch.MonolithicShape(cfg)
	for i := range n.Layers {
		l := &n.Layers[i]
		var r Result
		if fissionable {
			r = BestShapeWith(l, cfg, s, filter)
		} else if l.Kind.IsGEMM() {
			r = LayerOnShape(l, mono, cfg, s)
		} else {
			r = VectorOnAlloc(l, cfg, s)
		}
		total.Cycles += r.Cycles
		total.Tiles += r.Tiles
		total.DRAMBytes += r.DRAMBytes
		total.Acct.Add(r.Acct)
	}
	if total.Tiles < 1 {
		return Result{}, fmt.Errorf("model: network %s produced no tiles", n.Name)
	}
	return total, nil
}
