package model

import (
	"math/rand"
	"testing"

	"planaria/internal/arch"
	"planaria/internal/systolic"
)

// TestModelMatchesMaskedFunctionalSimulator extends the cross-validation
// to a degraded chip: a grid with an injected dead subarray, re-fissioned
// around the mask, must still match the analytical model cycle-for-cycle
// on the surviving bands — fault masking changes where clusters land,
// never what or how fast they compute.
func TestModelMatchesMaskedFunctionalSimulator(t *testing.T) {
	cfg := arch.Planaria()
	cfg.SubRows, cfg.SubCols = 8, 8
	cfg.ArrayRows, cfg.ArrayCols = 32, 32 // 4×4 bands of 8×8 PEs
	rng := rand.New(rand.NewSource(99))

	cases := []struct {
		bandRow, bandCol int // surviving placement
		h, w, m, k, n    int
	}{
		{0, 1, 1, 1, 12, 8, 8},
		{1, 0, 1, 2, 9, 8, 16},
		{2, 0, 2, 2, 20, 16, 16},
	}
	for _, c := range cases {
		sh := arch.Shape{Clusters: 1, H: c.h, W: c.w}
		res := GEMMOnShape(c.m, c.k, c.n, 1, 1, sh, cfg, cfg.NumSubarrays())
		if res.Tiles != 1 {
			t.Fatalf("%+v: model used %d tiles, cross-validation needs 1", c, res.Tiles)
		}

		g, err := systolic.New(cfg.SubRows, cfg.SubCols, 4, 4)
		if err != nil {
			t.Fatal(err)
		}
		// A dead PE in band (0,0) masks that subarray; the cluster is
		// re-fissioned onto the case's surviving bands.
		if err := g.InjectPEFault(3, 3); err != nil {
			t.Fatal(err)
		}
		if g.BandUsable(0, 0) {
			t.Fatal("band (0,0) usable after PE fault")
		}

		wts := make([][]int8, c.k)
		for i := range wts {
			wts[i] = make([]int8, c.n)
			for j := range wts[i] {
				wts[i][j] = int8(rng.Intn(256) - 128)
			}
		}
		a := make([][]int8, c.m)
		for i := range a {
			a[i] = make([]int8, c.k)
			for j := range a[i] {
				a[i][j] = int8(rng.Intn(256) - 128)
			}
		}
		id, err := g.AddClusterStreamLoad(systolic.ClusterSpec{BandRow: c.bandRow, BandCol: c.bandCol, H: c.h, W: c.w}, wts, a)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := g.Run(int64(10 * (c.m + c.k + c.n + 64))); err != nil {
			t.Fatal(err)
		}
		drain, err := g.DrainCycle(id)
		if err != nil {
			t.Fatal(err)
		}
		functional := drain + 1

		want := functional + tileOverheadCycles
		if res.Cycles != want {
			t.Errorf("%+v: model %d cycles, masked functional %d (+%d overhead = %d)",
				c, res.Cycles, functional, tileOverheadCycles, want)
		}

		// And the degraded grid's results stay bit-exact.
		got, err := g.Output(id)
		if err != nil {
			t.Fatal(err)
		}
		ref := systolic.Reference(a, wts)
		for i := range ref {
			for j := range ref[i] {
				if got[i][j] != ref[i][j] {
					t.Fatalf("%+v: out[%d][%d] = %d, want %d", c, i, j, got[i][j], ref[i][j])
				}
			}
		}
	}
}
