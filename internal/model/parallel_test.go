package model

import (
	"runtime"
	"testing"

	"planaria/internal/arch"
	"planaria/internal/dnn"
	"planaria/internal/energy"
)

// sequentialBestShape is the reference implementation of the shape
// search: a plain in-order scan with the first-wins comparator. The
// parallel search must pick the identical shape and cycle count.
func sequentialBestShape(l *dnn.Layer, cfg arch.Config, s int) Result {
	shapes := arch.EnumerateShapes(cfg, s)
	if len(shapes) == 0 {
		shapes = []arch.Shape{arch.MonolithicShape(cfg)}
	}
	p := energy.Default()
	best := LayerOnShape(l, shapes[0], cfg, s)
	for _, sh := range shapes[1:] {
		r := LayerOnShape(l, sh, cfg, s)
		if r.Cycles < best.Cycles ||
			(r.Cycles == best.Cycles && r.Acct.Joules(p) < best.Acct.Joules(p)) {
			best = r
		}
	}
	return best
}

// TestBestShapeParallelMatchesSequential raises GOMAXPROCS past the
// physical CPU count so the worker pool really spawns, then checks the
// parallel search is bit-identical to the sequential scan — including
// tie-breaks, which depend on enumeration order — across every GEMM
// layer of two structurally different networks and several allocations.
func TestBestShapeParallelMatchesSequential(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	cfg := arch.Planaria()
	for _, name := range []string{"MobileNet-v1", "GNMT"} {
		net := dnn.MustByName(name)
		for _, s := range []int{4, 9, 16} {
			for i := range net.Layers {
				l := &net.Layers[i]
				if !l.Kind.IsGEMM() {
					continue
				}
				got := BestShape(l, cfg, s)
				want := sequentialBestShape(l, cfg, s)
				if got.Shape != want.Shape || got.Cycles != want.Cycles ||
					got.Tiles != want.Tiles || got.SplitM != want.SplitM {
					t.Fatalf("%s layer %d s=%d: parallel %+v (%d cyc) != sequential %+v (%d cyc)",
						name, i, s, got.Shape, got.Cycles, want.Shape, want.Cycles)
				}
			}
		}
	}
}
