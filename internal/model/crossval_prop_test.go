package model

import (
	"math/rand"
	"testing"

	"planaria/internal/arch"
	"planaria/internal/systolic"
)

// TestRandomizedCrossValidation extends the fixed-case cross-validation
// with ~50 random single-tile GEMMs: random subarray granularity, cluster
// extent, placement, and dimensions. Wherever the analytical model's
// single-tile regime applies (Tiles == 1), its cycle count must equal the
// functional simulator's measured latency — streamed weight load included
// — plus the per-tile dispatch constant. The simulated GEMM must also
// match the host reference, so model and engine are pinned to each other
// and to the arithmetic.
func TestRandomizedCrossValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	checked := 0
	for i := 0; i < 50; i++ {
		subR := []int{4, 8}[rng.Intn(2)]
		subC := []int{4, 8}[rng.Intn(2)]
		bandsR := rng.Intn(3) + 2 // 2..4
		bandsC := rng.Intn(3) + 2
		h := 1 << rng.Intn(2)
		w := 1 << rng.Intn(2)
		if h > bandsR {
			h = bandsR
		}
		if w > bandsC {
			w = bandsC
		}
		br := rng.Intn(bandsR - h + 1)
		bc := rng.Intn(bandsC - w + 1)
		// K and N must reach into every band of the cluster: the model
		// charges chaining latency for the shape's full extent, and the
		// simulator only matches when the wavefront really crosses all
		// (H−1)+(W−1) boundaries — the regime the fixed crossval cases
		// pin down.
		m := rng.Intn(24) + 2
		k := (h-1)*subR + rng.Intn(subR) + 1
		n := (w-1)*subC + rng.Intn(subC) + 1

		cfg := arch.Planaria()
		cfg.SubRows, cfg.SubCols = subR, subC
		cfg.ArrayRows, cfg.ArrayCols = bandsR*subR, bandsC*subC

		sh := arch.Shape{Clusters: 1, H: h, W: w}
		res := GEMMOnShape(m, k, n, 1, 1, sh, cfg, cfg.NumSubarrays())
		if res.Tiles != 1 {
			// Outside the single-tile regime the simulator would need
			// multi-tile sequencing; the crossval harness doesn't cover it.
			continue
		}

		g, err := systolic.New(subR, subC, bandsR, bandsC)
		if err != nil {
			t.Fatal(err)
		}
		wts := make([][]int8, k)
		for r := range wts {
			wts[r] = make([]int8, n)
			for c := range wts[r] {
				wts[r][c] = int8(rng.Intn(256) - 128)
			}
		}
		a := make([][]int8, m)
		for r := range a {
			a[r] = make([]int8, k)
			for c := range a[r] {
				a[r][c] = int8(rng.Intn(256) - 128)
			}
		}
		spec := systolic.ClusterSpec{BandRow: br, BandCol: bc, H: h, W: w}
		id, err := g.AddClusterStreamLoad(spec, wts, a)
		if err != nil {
			t.Fatalf("case %d (%+v m=%d k=%d n=%d): %v", i, spec, m, k, n, err)
		}
		if _, err := g.Run(int64(10 * (m + k + n + 64))); err != nil {
			t.Fatalf("case %d (%+v m=%d k=%d n=%d): %v", i, spec, m, k, n, err)
		}
		out, err := g.Output(id)
		if err != nil {
			t.Fatal(err)
		}
		want := systolic.Reference(a, wts)
		for r := range want {
			for c := range want[r] {
				if out[r][c] != want[r][c] {
					t.Fatalf("case %d: GEMM mismatch at (%d,%d)", i, r, c)
				}
			}
		}
		drain, err := g.DrainCycle(id)
		if err != nil {
			t.Fatal(err)
		}
		functional := drain + 1
		if got, wantCy := res.Cycles, functional+tileOverheadCycles; got != wantCy {
			t.Errorf("case %d (sub %dx%d, %+v, m=%d k=%d n=%d): model %d cycles, functional-with-load %d (+%d overhead = %d)",
				i, subR, subC, spec, m, k, n, got, functional, tileOverheadCycles, wantCy)
		}
		checked++
	}
	if checked < 25 {
		t.Fatalf("only %d/50 random cases landed in the single-tile regime; generator drifted", checked)
	}
}
