package model

import (
	"testing"
	"testing/quick"

	"planaria/internal/arch"
	"planaria/internal/dnn"
)

func planaria() arch.Config { return arch.Planaria() }

func TestSingleTileFormula(t *testing.T) {
	// A GEMM fitting one subarray in one tile: compute cycles must be
	// streaming (M + Kt + Nt − 1) + per-tile overhead + exposed first
	// weight load (K−1, the streamed-load latency). This is the quantity
	// the functional simulator cross-validates.
	cfg := planaria()
	sh := arch.Shape{Clusters: 1, H: 1, W: 1}
	m, k, n := 10, 8, 12
	// alloc=16 grants full bandwidth so the compute formula dominates.
	r := GEMMOnShape(m, k, n, 1, 1, sh, cfg, 16)
	want := int64(m+k+n-1) + tileOverheadCycles + int64(k-1)
	if r.Cycles != want {
		t.Fatalf("Cycles = %d, want %d", r.Cycles, want)
	}
	if r.Tiles != 1 {
		t.Fatalf("Tiles = %d, want 1", r.Tiles)
	}
}

func TestDepthwiseFissionSpeedup(t *testing.T) {
	// The paper's headline microbenchmark: a depthwise layer on 16
	// independent clusters runs ~16× faster than on one monolithic
	// cluster with the same PE count (§VI-B2).
	cfg := planaria()
	l := &dnn.Layer{
		Kind: dnn.DWConv, InH: 112, InW: 112, InC: 32, OutC: 32,
		OutH: 112, OutW: 112, KH: 3, KW: 3, Stride: 1, Pad: 1,
	}
	mono := LayerOnShape(l, arch.MonolithicShape(cfg), cfg, 16)
	fiss := LayerOnShape(l, arch.Shape{Clusters: 16, H: 1, W: 1}, cfg, 16)
	speedup := float64(mono.Cycles) / float64(fiss.Cycles)
	if speedup < 10 || speedup > 17 {
		t.Fatalf("depthwise fission speedup = %.1fx, want ~16x", speedup)
	}
}

func TestBestShapeBeatsMonolithicOnDepthwise(t *testing.T) {
	cfg := planaria()
	l := &dnn.Layer{
		Kind: dnn.DWConv, InH: 56, InW: 56, InC: 256, OutC: 256,
		OutH: 56, OutW: 56, KH: 3, KW: 3, Stride: 1, Pad: 1,
	}
	best := BestShape(l, cfg, 16)
	mono := LayerOnShape(l, arch.MonolithicShape(cfg), cfg, 16)
	if best.Cycles >= mono.Cycles {
		t.Fatalf("BestShape (%d cy, %v) not better than monolithic (%d cy)",
			best.Cycles, best.Shape, mono.Cycles)
	}
	if best.Shape.Clusters < 8 {
		t.Errorf("depthwise best shape %v should be highly clustered", best.Shape)
	}
}

func TestBestShapeMonotoneInAllocation(t *testing.T) {
	cfg := planaria()
	layers := []*dnn.Layer{
		{Kind: dnn.Conv, InH: 56, InW: 56, InC: 64, OutC: 256, OutH: 56, OutW: 56, KH: 1, KW: 1, Stride: 1},
		{Kind: dnn.Conv, InH: 14, InW: 14, InC: 512, OutC: 512, OutH: 14, OutW: 14, KH: 3, KW: 3, Stride: 1, Pad: 1},
		{Kind: dnn.MatMul, M: 4, K: 1024, N: 32000},
		{Kind: dnn.DWConv, InH: 28, InW: 28, InC: 128, OutC: 128, OutH: 28, OutW: 28, KH: 3, KW: 3, Stride: 1, Pad: 1},
	}
	for li, l := range layers {
		prev := int64(1 << 62)
		for s := 1; s <= 16; s++ {
			r := BestShape(l, cfg, s)
			if r.Cycles > prev {
				t.Errorf("layer %d: cycles increased from %d to %d at s=%d", li, prev, r.Cycles, s)
			}
			prev = r.Cycles
		}
	}
}

func TestBestShapeMonotoneProperty(t *testing.T) {
	cfg := planaria()
	f := func(a, b, c uint8, s uint8) bool {
		m := int(a)*16 + 1
		k := int(b)*8 + 1
		n := int(c)*8 + 1
		s1 := int(s)%15 + 1
		l := &dnn.Layer{Kind: dnn.MatMul, M: m, K: k, N: n}
		r1 := BestShape(l, cfg, s1)
		r2 := BestShape(l, cfg, s1+1)
		return r2.Cycles <= r1.Cycles
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestFissionNeverWorseThanMonolithicExecution(t *testing.T) {
	cfg := planaria()
	for _, net := range dnn.All() {
		fiss, err := NetworkOnAlloc(net, cfg, 16, true)
		if err != nil {
			t.Fatal(err)
		}
		mono, err := NetworkOnAlloc(net, cfg, 16, false)
		if err != nil {
			t.Fatal(err)
		}
		if fiss.Cycles > mono.Cycles {
			t.Errorf("%s: fission (%d cy) worse than monolithic (%d cy)",
				net.Name, fiss.Cycles, mono.Cycles)
		}
	}
}

func TestIsolatedSpeedupShape(t *testing.T) {
	// Fig 17 shape: depthwise networks gain the most from fission; GNMT
	// the least. Compare Planaria (fission, 16 subarrays) to the
	// conventional monolithic accelerator with identical resources.
	cfg := planaria()
	conv := arch.Monolithic()
	speedup := func(name string) float64 {
		net := dnn.MustByName(name)
		p, err := NetworkOnAlloc(net, cfg, 16, true)
		if err != nil {
			t.Fatal(err)
		}
		c, err := NetworkOnAlloc(net, conv, 1, false)
		if err != nil {
			t.Fatal(err)
		}
		return float64(c.Cycles) / float64(p.Cycles)
	}
	mob := speedup("MobileNet-v1")
	eff := speedup("EfficientNet-B0")
	gnmt := speedup("GNMT")
	res := speedup("ResNet-50")
	t.Logf("speedups: MobileNet %.2f, EfficientNet %.2f, ResNet %.2f, GNMT %.2f", mob, eff, res, gnmt)
	if mob < 2 || eff < 2 {
		t.Errorf("depthwise networks should speed up substantially: mob=%.2f eff=%.2f", mob, eff)
	}
	if gnmt > mob || gnmt > eff {
		t.Errorf("GNMT (%.2f) should gain least vs depthwise nets (%.2f, %.2f)", gnmt, mob, eff)
	}
	if res < 1.0 {
		t.Errorf("ResNet-50 speedup %.2f < 1", res)
	}
}

func TestVectorOnAllocScaling(t *testing.T) {
	cfg := planaria()
	l := &dnn.Layer{Kind: dnn.Add, Elems: 1 << 20}
	r1 := VectorOnAlloc(l, cfg, 1)
	r16 := VectorOnAlloc(l, cfg, 16)
	if r16.Cycles >= r1.Cycles {
		t.Fatalf("vector unit did not scale: 1→%d cy, 16→%d cy", r1.Cycles, r16.Cycles)
	}
	ratio := float64(r1.Cycles) / float64(r16.Cycles)
	if ratio < 12 || ratio > 20 {
		t.Errorf("vector scaling ratio = %.1f, want ~16", ratio)
	}
}

func TestResultCyclesPerTile(t *testing.T) {
	r := Result{Cycles: 100, Tiles: 7}
	if q := r.CyclesPerTile(); q != 14 {
		t.Fatalf("CyclesPerTile = %d, want 14", q)
	}
	r = Result{Cycles: 5, Tiles: 0}
	if q := r.CyclesPerTile(); q != 5 {
		t.Fatalf("zero-tile CyclesPerTile = %d, want 5", q)
	}
}

func TestMemoryBoundLayer(t *testing.T) {
	// GNMT's vocabulary projection (K=1024, N=32000, M=4) is dominated
	// by weight traffic; the model must report the bandwidth bound.
	cfg := planaria()
	l := &dnn.Layer{Kind: dnn.MatMul, M: 4, K: 1024, N: 32000}
	r := BestShape(l, cfg, 16)
	minMemCycles := int64(float64(1024*32000) / cfg.BytesPerCycle())
	if r.Cycles < minMemCycles {
		t.Fatalf("cycles %d below the DRAM bound %d", r.Cycles, minMemCycles)
	}
}

func TestBandwidthShareScalesWithAllocation(t *testing.T) {
	// A memory-bound layer on a small allocation gets a small bandwidth
	// share and must take proportionally longer.
	cfg := planaria()
	l := &dnn.Layer{Kind: dnn.MatMul, M: 1, K: 4096, N: 4096}
	r1 := BestShape(l, cfg, 1)
	r16 := BestShape(l, cfg, 16)
	if r1.Cycles < 8*r16.Cycles {
		t.Fatalf("bandwidth share not applied: s=1 %d cy vs s=16 %d cy", r1.Cycles, r16.Cycles)
	}
}

func TestUtilizationBounds(t *testing.T) {
	cfg := planaria()
	f := func(a, b, c uint8) bool {
		m := int(a)%2048 + 1
		k := int(b)%2048 + 1
		n := int(c)%2048 + 1
		l := &dnn.Layer{Kind: dnn.MatMul, M: m, K: k, N: n}
		r := BestShape(l, cfg, 16)
		return r.Util >= 0 && r.Util <= 1 && r.Cycles > 0 && r.Tiles > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestNetworkOnAllocAggregates(t *testing.T) {
	cfg := planaria()
	net := dnn.MustByName("Tiny YOLO")
	r, err := NetworkOnAlloc(net, cfg, 16, true)
	if err != nil {
		t.Fatal(err)
	}
	if r.Cycles <= 0 || r.Tiles <= 0 || r.DRAMBytes <= 0 {
		t.Fatalf("degenerate network result: %+v", r)
	}
	if r.Acct.MACs != netMACsOnArray(net) {
		t.Fatalf("MACs = %d, want %d", r.Acct.MACs, netMACsOnArray(net))
	}
}

// netMACsOnArray sums MACs over GEMM layers only (vector layers do not
// contribute MACs).
func netMACsOnArray(n *dnn.Network) int64 {
	var t int64
	for i := range n.Layers {
		if n.Layers[i].Kind.IsGEMM() {
			t += n.Layers[i].MACs()
		}
	}
	return t
}

func TestNetworkOnAllocRejectsInvalid(t *testing.T) {
	cfg := planaria()
	bad := &dnn.Network{Name: "bad"}
	if _, err := NetworkOnAlloc(bad, cfg, 16, true); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestOmniDirectionalShapesHaveChainLatency(t *testing.T) {
	// Compare the same single-tile GEMM on an unchained (1×1) and a
	// chained (1×4) shape: the chained shape pays boundary latency.
	cfg := planaria()
	un := GEMMOnShape(512, 32, 32, 1, 1, arch.Shape{Clusters: 1, H: 1, W: 1}, cfg, 16)
	ch := GEMMOnShape(512, 32, 32, 1, 1, arch.Shape{Clusters: 1, H: 1, W: 4}, cfg, 16)
	if ch.Cycles <= un.Cycles {
		t.Fatalf("chained shape %d cy not above unchained %d cy", ch.Cycles, un.Cycles)
	}
}

func TestHopEnergyForChainedShapes(t *testing.T) {
	cfg := planaria()
	un := GEMMOnShape(256, 64, 64, 1, 1, arch.Shape{Clusters: 1, H: 1, W: 1}, cfg, 4)
	ch := GEMMOnShape(256, 64, 64, 1, 1, arch.Shape{Clusters: 1, H: 2, W: 2}, cfg, 4)
	if un.Acct.HopBytes != 0 {
		t.Fatalf("unchained shape has hop traffic %d", un.Acct.HopBytes)
	}
	if ch.Acct.HopBytes <= 0 {
		t.Fatal("chained shape has no hop traffic")
	}
}
