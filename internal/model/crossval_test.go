package model

import (
	"math/rand"
	"testing"

	"planaria/internal/arch"
	"planaria/internal/systolic"
)

// TestModelMatchesFunctionalSimulator is the reproduction of the paper's
// "we verify the cycle counts with our Verilog implementations": for
// single-tile GEMMs the analytical model's compute cycles must equal the
// functional simulator's measured latency — including the streamed
// weight-load phase — plus the model's per-tile dispatch constant.
func TestModelMatchesFunctionalSimulator(t *testing.T) {
	cfg := arch.Planaria()
	cfg.SubRows, cfg.SubCols = 8, 8
	cfg.ArrayRows, cfg.ArrayCols = 32, 32 // 4×4 bands of 8×8 PEs
	rng := rand.New(rand.NewSource(42))

	cases := []struct {
		h, w, m, k, n int
	}{
		{1, 1, 12, 8, 8},
		{1, 1, 5, 3, 6},
		{1, 2, 9, 8, 16},
		{2, 1, 7, 16, 8},
		{2, 2, 20, 16, 16},
		{1, 4, 6, 8, 32},
		{4, 1, 6, 32, 8},
	}
	for _, c := range cases {
		sh := arch.Shape{Clusters: 1, H: c.h, W: c.w}
		res := GEMMOnShape(c.m, c.k, c.n, 1, 1, sh, cfg, cfg.NumSubarrays())
		if res.Tiles != 1 {
			t.Fatalf("%+v: model used %d tiles, cross-validation needs 1", c, res.Tiles)
		}

		g, err := systolic.New(cfg.SubRows, cfg.SubCols, c.h, c.w)
		if err != nil {
			t.Fatal(err)
		}
		wts := make([][]int8, c.k)
		for i := range wts {
			wts[i] = make([]int8, c.n)
			for j := range wts[i] {
				wts[i][j] = int8(rng.Intn(256) - 128)
			}
		}
		a := make([][]int8, c.m)
		for i := range a {
			a[i] = make([]int8, c.k)
			for j := range a[i] {
				a[i][j] = int8(rng.Intn(256) - 128)
			}
		}
		id, err := g.AddClusterStreamLoad(systolic.ClusterSpec{BandRow: 0, BandCol: 0, H: c.h, W: c.w}, wts, a)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := g.Run(int64(10 * (c.m + c.k + c.n + 64))); err != nil {
			t.Fatal(err)
		}
		drain, err := g.DrainCycle(id)
		if err != nil {
			t.Fatal(err)
		}
		functional := drain + 1

		want := functional + tileOverheadCycles
		if res.Cycles != want {
			t.Errorf("%+v: model %d cycles, functional-with-load %d (+%d overhead = %d)",
				c, res.Cycles, functional, tileOverheadCycles, want)
		}
	}
}

// TestBoundaryDelayConstantsAgree pins the model's chaining latency to the
// functional simulator's boundary register depth.
func TestBoundaryDelayConstantsAgree(t *testing.T) {
	if boundaryLatency != systolic.BoundaryDelay {
		t.Fatalf("model boundaryLatency = %d, systolic BoundaryDelay = %d",
			boundaryLatency, systolic.BoundaryDelay)
	}
}
