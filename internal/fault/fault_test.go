package fault

import (
	"math"
	"reflect"
	"strings"
	"testing"
)

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(16, 4, 20, 0.5, 0.02, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(16, 4, 20, 0.5, 0.02, 42)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("identical seeds produced different schedules")
	}
	if len(a.Events) == 0 {
		t.Fatal("rate 20 over 0.5 s generated no faults")
	}
	c, err := Generate(16, 4, 20, 0.5, 0.02, 43)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Events, c.Events) {
		t.Fatal("different seeds produced identical schedules")
	}
	if err := a.Validate(); err != nil {
		t.Fatalf("generated schedule invalid: %v", err)
	}
}

func TestGenerateZeroRateEmpty(t *testing.T) {
	s, err := Generate(16, 4, 0, 10, 0.02, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Empty() {
		t.Fatalf("zero-rate schedule has %d events", len(s.Events))
	}
}

func TestValidateRejectsBadEvents(t *testing.T) {
	cases := []Schedule{
		{Units: 0, Pods: 1},
		{Units: 16, Pods: 3}, // not divisible
		{Units: 16, Pods: 4, Events: []Event{{Time: -1, Kind: KindSubarray}}},
		{Units: 16, Pods: 4, Events: []Event{{Time: math.NaN(), Kind: KindSubarray}}},
		{Units: 16, Pods: 4, Events: []Event{{Kind: KindSubarray, Unit: 16}}},
		{Units: 16, Pods: 4, Events: []Event{{Kind: KindLink, Unit: 4}}},
		{Units: 16, Pods: 4, Events: []Event{{Kind: Kind(9), Unit: 0}}},
		{Units: 16, Pods: 4, Events: []Event{{Kind: KindPE, Unit: 1, Duration: math.Inf(1)}}},
	}
	for i, s := range cases {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: invalid schedule accepted: %+v", i, s)
		}
	}
}

func TestHealthMaskDegradation(t *testing.T) {
	h := NewHealth(16, 4)
	if h.Alive() != 16 || h.Fraction() != 1 {
		t.Fatalf("fresh health: alive=%d frac=%g", h.Alive(), h.Fraction())
	}
	// One dead subarray.
	h.apply(Event{Kind: KindSubarray, Unit: 5}, false)
	if h.Alive() != 15 || h.UsableSub(5) {
		t.Fatalf("after subarray fault: alive=%d usable(5)=%v", h.Alive(), h.UsableSub(5))
	}
	// A dead PE masks its whole subarray.
	h.apply(Event{Kind: KindPE, Unit: 0, Row: 3, Col: 7}, false)
	if h.Alive() != 14 || h.UsableSub(0) {
		t.Fatalf("after PE fault: alive=%d usable(0)=%v", h.Alive(), h.UsableSub(0))
	}
	// A link fault takes its whole pod (subarrays 8..11) offline.
	h.apply(Event{Kind: KindLink, Unit: 2}, false)
	if h.Alive() != 10 {
		t.Fatalf("after link fault: alive=%d, want 10", h.Alive())
	}
	for i := 8; i < 12; i++ {
		if h.UsableSub(i) {
			t.Errorf("subarray %d usable despite pod-2 link fault", i)
		}
	}
	mask := h.Mask()
	if mask.Alive() != 10 || mask.MaxChainable() != 4 {
		t.Fatalf("mask alive=%d maxchain=%d, want 10/4 (%s)", mask.Alive(), mask.MaxChainable(), mask)
	}
	// Repairs restore exactly.
	h.apply(Event{Kind: KindLink, Unit: 2}, true)
	h.apply(Event{Kind: KindPE, Unit: 0, Row: 3, Col: 7}, true)
	h.apply(Event{Kind: KindSubarray, Unit: 5}, true)
	if h.Alive() != 16 {
		t.Fatalf("after repairs: alive=%d", h.Alive())
	}
}

func TestInjectorReplay(t *testing.T) {
	s := &Schedule{Units: 16, Pods: 4, Events: []Event{
		{Time: 0.010, Kind: KindSubarray, Unit: 2, Duration: 0.005}, // transient
		{Time: 0.012, Kind: KindSubarray, Unit: 7},                  // permanent
	}}
	in, err := NewInjector(s)
	if err != nil {
		t.Fatal(err)
	}
	if got := in.NextChange(0); got != 0.010 {
		t.Fatalf("NextChange(0) = %v", got)
	}
	ch := in.AdvanceTo(0.011)
	if len(ch) != 1 || ch[0].Up || ch[0].Event.Unit != 2 {
		t.Fatalf("AdvanceTo(0.011) = %+v", ch)
	}
	if in.Health().Alive() != 15 {
		t.Fatalf("alive = %d after first fault", in.Health().Alive())
	}
	// Next transition: the permanent fault at 12 ms, then the repair at 15 ms.
	if got := in.NextChange(0.011); got != 0.012 {
		t.Fatalf("NextChange(0.011) = %v", got)
	}
	ch = in.AdvanceTo(0.016)
	if len(ch) != 2 {
		t.Fatalf("AdvanceTo(0.016) applied %d transitions", len(ch))
	}
	if !ch[1].Up || ch[1].Event.Unit != 2 {
		t.Fatalf("second transition not the repair: %+v", ch[1])
	}
	if in.Health().Alive() != 15 || in.Health().UsableSub(2) != true || in.Health().UsableSub(7) {
		t.Fatalf("final health wrong: alive=%d", in.Health().Alive())
	}
	if in.Pending() {
		t.Fatal("transitions still pending")
	}
	if !math.IsInf(in.NextChange(1), 1) {
		t.Fatal("exhausted injector reports a next change")
	}
}

func TestParseJSONRoundTrip(t *testing.T) {
	src := `{
	  "units": 16,
	  "pods": 4,
	  "events": [
	    {"at_ms": 5,  "kind": "subarray", "unit": 3},
	    {"at_ms": 8,  "kind": "pe", "unit": 7, "row": 12, "col": 3, "for_ms": 4},
	    {"at_ms": 12, "kind": "link", "unit": 1}
	  ]
	}`
	s, err := ParseJSON([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Events) != 3 || s.Units != 16 || s.Pods != 4 {
		t.Fatalf("parsed %+v", s)
	}
	if s.Events[0].Time != 0.005 || s.Events[0].Kind != KindSubarray {
		t.Fatalf("first event %+v", s.Events[0])
	}
	if s.Events[1].Kind != KindPE || s.Events[1].Duration != 0.004 {
		t.Fatalf("pe event %+v", s.Events[1])
	}
	out, err := s.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := ParseJSON(out)
	if err != nil {
		t.Fatalf("re-parse marshaled schedule: %v", err)
	}
	if !reflect.DeepEqual(s, s2) {
		t.Fatalf("round trip drifted:\n%+v\n%+v", s, s2)
	}
}

func TestParseJSONErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"garbage", `{`, "parse schedule"},
		{"unknown field", `{"units":16,"pods":4,"events":[{"at_ms":1,"kind":"pe","unit":0,"dur_ms":4}]}`, "parse schedule"},
		{"unknown kind", `{"units":16,"pods":4,"events":[{"at_ms":1,"kind":"router","unit":0}]}`, "unknown kind"},
		{"out of range", `{"units":16,"pods":4,"events":[{"at_ms":1,"kind":"subarray","unit":99}]}`, "targets subarray"},
		{"bad chip", `{"units":16,"pods":5,"events":[]}`, "not divisible"},
	}
	for _, c := range cases {
		_, err := ParseJSON([]byte(c.src))
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}
