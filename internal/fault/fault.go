// Package fault is the deterministic fault-injection layer: a seeded,
// sim-time-only fault-schedule model for the Planaria chip and the
// runtime health state the degradation machinery consumes. Faults land
// at declared simulated instants — never wall-clock time — so a chaos
// run at a fixed seed is byte-reproducible (the package is part of
// planaria-vet's deterministic set, DESIGN.md §8/§10).
//
// The fault taxonomy follows the hardware organization (§III–IV of the
// paper):
//
//   - KindPE: one dead processing element. The fission granularity is
//     the subarray, so a dead PE masks its whole subarray out of the
//     schedulable pool (a systolic column cannot be bypassed without
//     re-timing the wavefront).
//   - KindSubarray: a whole dead subarray (clock/power domain failure).
//   - KindLink: a Fission Pod's crossbar or ring-bus segment failure.
//     The Pod Memory can no longer feed the pod's subarrays, so the
//     entire pod drops out of the pool.
//
// Every fault is either permanent (Duration 0) or transient (repairs at
// Time+Duration). Health aggregates active faults into an
// arch.HealthMask; Injector replays a Schedule against simulated time
// for the serving simulator.
package fault

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"planaria/internal/arch"
	"planaria/internal/simtime"
)

// Kind classifies a fault event.
type Kind int

const (
	// KindPE is a single dead processing element inside a subarray.
	KindPE Kind = iota
	// KindSubarray is a whole dead subarray.
	KindSubarray
	// KindLink is a failed pod crossbar / ring-bus link; it takes the
	// whole Fission Pod offline.
	KindLink
)

// String renders the kind in the schedule-file vocabulary.
func (k Kind) String() string {
	switch k {
	case KindPE:
		return "pe"
	case KindSubarray:
		return "subarray"
	case KindLink:
		return "link"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Event is one scheduled fault.
type Event struct {
	// Time is the simulated instant (seconds) the fault lands.
	Time float64
	Kind Kind
	// Unit is the subarray index for KindPE/KindSubarray, or the pod
	// index for KindLink.
	Unit int
	// Row, Col locate the dead PE within its subarray (KindPE only;
	// informational — the degradation granularity is the subarray).
	Row, Col int
	// Duration > 0 makes the fault transient: it repairs at
	// Time+Duration. Zero means permanent.
	Duration float64
}

// Schedule is a validated fault schedule against a chip of Units
// subarrays distributed over Pods pods.
type Schedule struct {
	Units int
	Pods  int
	// Events, sorted by (Time, Kind, Unit, Row, Col) so replay order is
	// deterministic even for simultaneous faults.
	Events []Event
}

// sortEvents orders events deterministically.
func sortEvents(evs []Event) {
	sort.Slice(evs, func(i, j int) bool {
		a, b := evs[i], evs[j]
		if a.Time != b.Time {
			return a.Time < b.Time
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Unit != b.Unit {
			return a.Unit < b.Unit
		}
		if a.Row != b.Row {
			return a.Row < b.Row
		}
		return a.Col < b.Col
	})
}

// Validate checks every event against the chip dimensions.
func (s *Schedule) Validate() error {
	if s.Units <= 0 {
		return fmt.Errorf("fault: schedule has %d units", s.Units)
	}
	if s.Pods <= 0 || s.Units%s.Pods != 0 {
		return fmt.Errorf("fault: %d units not divisible into %d pods", s.Units, s.Pods)
	}
	for i, e := range s.Events {
		if e.Time < 0 || math.IsNaN(e.Time) || math.IsInf(e.Time, 0) {
			return fmt.Errorf("fault: event %d at non-finite or negative time %v", i, e.Time)
		}
		if e.Duration < 0 || math.IsNaN(e.Duration) || math.IsInf(e.Duration, 0) {
			return fmt.Errorf("fault: event %d has bad duration %v", i, e.Duration)
		}
		switch e.Kind {
		case KindPE, KindSubarray:
			if e.Unit < 0 || e.Unit >= s.Units {
				return fmt.Errorf("fault: event %d targets subarray %d of %d", i, e.Unit, s.Units)
			}
		case KindLink:
			if e.Unit < 0 || e.Unit >= s.Pods {
				return fmt.Errorf("fault: event %d targets pod %d of %d", i, e.Unit, s.Pods)
			}
		default:
			return fmt.Errorf("fault: event %d has unknown kind %d", i, int(e.Kind))
		}
	}
	return nil
}

// Empty reports whether the schedule injects nothing.
func (s *Schedule) Empty() bool { return s == nil || len(s.Events) == 0 }

// Generate draws a seeded fault schedule: fault arrivals are Poisson at
// rate faults/second over [0, horizon), targets uniform, kinds weighted
// toward subarray faults (50% subarray, 30% PE, 20% link), and each
// fault transient with probability 2/3 with exponentially distributed
// outage time of mean meanOutage. Identical arguments produce an
// identical schedule — the generator is the only randomness source and
// it is seed-parameterized (planaria-vet's noclock contract).
func Generate(units, pods int, rate, horizon, meanOutage float64, seed int64) (*Schedule, error) {
	s := &Schedule{Units: units, Pods: pods}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if rate < 0 || math.IsNaN(rate) || math.IsInf(rate, 0) {
		return nil, fmt.Errorf("fault: bad rate %v", rate)
	}
	if rate == 0 || horizon <= 0 {
		return s, nil
	}
	rng := rand.New(rand.NewSource(seed))
	t := 0.0
	for {
		t += rng.ExpFloat64() / rate
		if t >= horizon {
			break
		}
		e := Event{Time: t}
		switch p := rng.Float64(); {
		case p < 0.5:
			e.Kind = KindSubarray
			e.Unit = rng.Intn(units)
		case p < 0.8:
			e.Kind = KindPE
			e.Unit = rng.Intn(units)
			e.Row = rng.Intn(32)
			e.Col = rng.Intn(32)
		default:
			e.Kind = KindLink
			e.Unit = rng.Intn(pods)
		}
		if rng.Float64() < 2.0/3.0 {
			e.Duration = rng.ExpFloat64() * meanOutage
		}
		s.Events = append(s.Events, e)
	}
	sortEvents(s.Events)
	return s, nil
}

// Health is the chip's live fault state: per-subarray and per-pod
// reference counts of active faults (transient faults of the same unit
// may overlap, so plain booleans would mis-repair).
type Health struct {
	units, pods int
	deadSub     []int // active subarray-level faults (KindSubarray)
	deadPE      []int // active dead-PE faults per subarray
	deadLink    []int // active link faults per pod
}

// NewHealth returns an all-alive health state.
//perf:cold once-per-run constructor; the per-event paths are UsableSub/apply
func NewHealth(units, pods int) *Health {
	return &Health{
		units: units, pods: pods,
		deadSub:  make([]int, units),
		deadPE:   make([]int, units),
		deadLink: make([]int, pods),
	}
}

// Units returns the tracked subarray count.
func (h *Health) Units() int { return h.units }

// subPerPod returns subarrays per pod.
func (h *Health) subPerPod() int { return h.units / h.pods }

// UsableSub reports whether subarray i can host work: no subarray
// fault, no dead PE, and its pod's link alive.
func (h *Health) UsableSub(i int) bool {
	return h.deadSub[i] == 0 && h.deadPE[i] == 0 && h.deadLink[i/h.subPerPod()] == 0
}

// Alive returns the number of usable subarrays.
func (h *Health) Alive() int {
	n := 0
	for i := 0; i < h.units; i++ {
		if h.UsableSub(i) {
			n++
		}
	}
	return n
}

// Fraction returns the usable share of the subarray pool.
func (h *Health) Fraction() float64 {
	return float64(h.Alive()) / float64(h.units)
}

// Mask exports the health state as an arch.HealthMask over the fission
// configuration space.
func (h *Health) Mask() arch.HealthMask {
	u := make([]bool, h.units)
	for i := range u {
		u[i] = h.UsableSub(i)
	}
	return arch.HealthMask{Usable: u}
}

// apply registers a fault landing (up=false) or repairing (up=true).
func (h *Health) apply(e Event, up bool) {
	d := 1
	if up {
		d = -1
	}
	switch e.Kind {
	case KindSubarray:
		h.deadSub[e.Unit] += d
	case KindPE:
		h.deadPE[e.Unit] += d
	case KindLink:
		h.deadLink[e.Unit] += d
	}
}

// Change is one health transition replayed by the Injector.
type Change struct {
	Event Event
	// Up is true for a transient fault's repair, false for a fault
	// landing.
	Up bool
	// Time is the transition instant (Event.Time for a landing,
	// Event.Time+Event.Duration for a repair).
	Time float64
}

// Injector replays a Schedule against advancing simulated time and
// maintains the chip's Health. It is single-use and stateful: construct
// one per simulation run.
type Injector struct {
	sched  *Schedule
	trans  []Change
	next   int
	health *Health
}

// NewInjector validates the schedule and expands every transient fault
// into its landing and repair transitions, sorted by time (ties broken
// by landing-before-repair, then the schedule's deterministic event
// order).
//perf:cold once-per-run constructor; the per-event paths are AdvanceTo/NextChange
func NewInjector(s *Schedule) (*Injector, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	trans := make([]Change, 0, 2*len(s.Events))
	for _, e := range s.Events {
		trans = append(trans, Change{Event: e, Time: e.Time})
		if e.Duration > 0 {
			trans = append(trans, Change{Event: e, Up: true, Time: e.Time + e.Duration})
		}
	}
	sort.SliceStable(trans, func(i, j int) bool {
		if trans[i].Time != trans[j].Time {
			return trans[i].Time < trans[j].Time
		}
		return !trans[i].Up && trans[j].Up
	})
	return &Injector{sched: s, trans: trans, health: NewHealth(s.Units, s.Pods)}, nil
}

// Health returns the injector's live health state.
func (in *Injector) Health() *Health { return in.health }

// NextChange returns the instant of the first pending transition after
// `after`, or +Inf when the schedule is exhausted. The serving
// simulator folds this into its next-event computation so fault instants
// are scheduling events.
func (in *Injector) NextChange(after float64) float64 {
	for i := in.next; i < len(in.trans); i++ {
		if in.trans[i].Time > after {
			return in.trans[i].Time
		}
	}
	return math.Inf(1)
}

// AdvanceTo applies every transition with Time ≤ t and returns them in
// replay order. The returned slice is valid until the next call.
func (in *Injector) AdvanceTo(t float64) []Change {
	start := in.next
	for in.next < len(in.trans) && simtime.Due(in.trans[in.next].Time, t) {
		in.health.apply(in.trans[in.next].Event, in.trans[in.next].Up)
		in.next++
	}
	return in.trans[start:in.next]
}

// Pending reports whether transitions remain.
func (in *Injector) Pending() bool { return in.next < len(in.trans) }
