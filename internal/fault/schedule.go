package fault

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// The on-disk fault-schedule format (cmd/planaria -faults) is a small
// JSON DSL; times are milliseconds for hand-editability:
//
//	{
//	  "units": 16,
//	  "pods": 4,
//	  "events": [
//	    {"at_ms": 5,  "kind": "subarray", "unit": 3},
//	    {"at_ms": 8,  "kind": "pe",   "unit": 7, "row": 12, "col": 3, "for_ms": 4},
//	    {"at_ms": 12, "kind": "link", "unit": 1}
//	  ]
//	}
//
// "for_ms" makes the fault transient (repairs after that outage);
// omitting it makes the fault permanent. Unknown fields are rejected so
// a typo ("dur_ms") cannot silently produce a permanent fault.

type fileEvent struct {
	AtMS  float64 `json:"at_ms"`
	Kind  string  `json:"kind"`
	Unit  int     `json:"unit"`
	Row   int     `json:"row,omitempty"`
	Col   int     `json:"col,omitempty"`
	ForMS float64 `json:"for_ms,omitempty"`
}

type fileSchedule struct {
	Units  int         `json:"units"`
	Pods   int         `json:"pods"`
	Events []fileEvent `json:"events"`
}

// kindByName maps the DSL vocabulary to Kind.
func kindByName(name string) (Kind, error) {
	switch name {
	case "pe":
		return KindPE, nil
	case "subarray":
		return KindSubarray, nil
	case "link":
		return KindLink, nil
	default:
		return 0, fmt.Errorf("fault: unknown kind %q (want pe, subarray, or link)", name)
	}
}

// ParseJSON decodes and validates a fault schedule file.
func ParseJSON(data []byte) (*Schedule, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var f fileSchedule
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("fault: parse schedule: %w", err)
	}
	s := &Schedule{Units: f.Units, Pods: f.Pods, Events: make([]Event, 0, len(f.Events))}
	for i, fe := range f.Events {
		k, err := kindByName(fe.Kind)
		if err != nil {
			return nil, fmt.Errorf("fault: event %d: %w", i, err)
		}
		s.Events = append(s.Events, Event{
			Time:     fe.AtMS * 1e-3,
			Kind:     k,
			Unit:     fe.Unit,
			Row:      fe.Row,
			Col:      fe.Col,
			Duration: fe.ForMS * 1e-3,
		})
	}
	sortEvents(s.Events)
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// MarshalJSON renders the schedule back into the file DSL (times in
// milliseconds), for round-trip tests and artifact dumps.
func (s *Schedule) MarshalJSON() ([]byte, error) {
	f := fileSchedule{Units: s.Units, Pods: s.Pods, Events: make([]fileEvent, 0, len(s.Events))}
	for _, e := range s.Events {
		f.Events = append(f.Events, fileEvent{
			AtMS: e.Time * 1e3, Kind: e.Kind.String(),
			Unit: e.Unit, Row: e.Row, Col: e.Col, ForMS: e.Duration * 1e3,
		})
	}
	return json.Marshal(f)
}
