package fault

import (
	"encoding/json"
	"math"
	"testing"
)

// FuzzFaultScheduleJSON round-trips the schedule file DSL: any input the
// parser accepts must re-encode to JSON the parser accepts again, with
// the same semantics. Inputs the parser rejects must be rejected without
// panicking — the CLI feeds user-authored files straight into ParseJSON.
func FuzzFaultScheduleJSON(f *testing.F) {
	f.Add([]byte(`{"units":16,"pods":4,"events":[]}`))
	f.Add([]byte(`{"units":16,"pods":4,"events":[
		{"at_ms":5,"kind":"subarray","unit":3},
		{"at_ms":8,"kind":"pe","unit":7,"row":12,"col":3,"for_ms":4},
		{"at_ms":12,"kind":"link","unit":1}]}`))
	f.Add([]byte(`{"units":4,"pods":2,"events":[{"at_ms":0.125,"kind":"subarray","unit":0,"for_ms":0.25}]}`))
	f.Add([]byte(`{"units":1,"pods":1}`))
	f.Add([]byte(`{"units":16,"pods":4,"events":[{"at_ms":1,"kind":"dur_ms","unit":0}]}`))
	f.Add([]byte(`{"units":0,"pods":0}`))
	f.Add([]byte(`not json`))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := ParseJSON(data)
		if err != nil {
			return // rejection without panic is the contract
		}
		enc, err := json.Marshal(s)
		if err != nil {
			t.Fatalf("accepted schedule failed to re-encode: %v", err)
		}
		s2, err := ParseJSON(enc)
		if err != nil {
			t.Fatalf("re-encoded schedule rejected: %v\n%s", err, enc)
		}
		if s2.Units != s.Units || s2.Pods != s.Pods {
			t.Fatalf("dimensions changed: %d/%d -> %d/%d", s.Units, s.Pods, s2.Units, s2.Pods)
		}
		if len(s2.Events) != len(s.Events) {
			t.Fatalf("event count changed: %d -> %d", len(s.Events), len(s2.Events))
		}
		// Times survive a ms round-trip only to float precision; everything
		// else must be exact. Both sides are in the DSL's sorted order.
		for i, e := range s.Events {
			e2 := s2.Events[i]
			if e2.Kind != e.Kind || e2.Unit != e.Unit || e2.Row != e.Row || e2.Col != e.Col {
				t.Fatalf("event %d changed: %+v -> %+v", i, e, e2)
			}
			if !approx(e2.Time, e.Time) || !approx(e2.Duration, e.Duration) {
				t.Fatalf("event %d timing drifted: (%v,%v) -> (%v,%v)",
					i, e.Time, e.Duration, e2.Time, e2.Duration)
			}
		}
		// An accepted schedule must always be expandable into an injector.
		if _, err := NewInjector(s); err != nil {
			t.Fatalf("accepted schedule rejected by NewInjector: %v", err)
		}
	})
}

// approx compares times to relative float precision (the DSL stores
// milliseconds, the Schedule seconds).
func approx(a, b float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= 1e-9*math.Max(math.Abs(a), math.Abs(b))
}
