package sched

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"planaria/internal/arch"
	"planaria/internal/compiler"
	"planaria/internal/energy"
	"planaria/internal/obs"
	"planaria/internal/sim"
	"planaria/internal/workload"
)

// elasticNode builds a single-chip node around the toy program for
// full-engine policy comparisons.
func elasticNode(t *testing.T, prog *compiler.Program, pol sim.Policy, tr *sim.Trace) *sim.Node {
	t.Helper()
	return &sim.Node{
		Cfg:      arch.Planaria(),
		Policy:   pol,
		Programs: map[string]*compiler.Program{prog.Net.Name: prog},
		Params:   energy.Default(),
		Trace:    tr,
	}
}

// genSchedReqs draws a seeded Poisson stream against the toy model with
// mixed priorities — heavy enough (at high qps) to force unfit
// decisions and queueing, which is where elastic and plain spatial
// scheduling diverge.
func genSchedReqs(prog *compiler.Program, n int, qps, qos float64, seed int64) []workload.Request {
	rng := rand.New(rand.NewSource(seed))
	reqs := make([]workload.Request, 0, n)
	at := 0.0
	for i := 0; i < n; i++ {
		at += rng.ExpFloat64() / qps
		reqs = append(reqs, workload.Request{
			ID: i, Model: prog.Net.Name, Domain: "classification",
			Arrival: at, Priority: rng.Intn(11) + 1,
			QoS: qos, Deadline: at + qos,
		})
	}
	return reqs
}

// TestElasticDisabledMatchesSpatial pins the conformance anchor: a
// disabled Elastic policy drives the engine byte-identically to plain
// Spatial — same outcomes, same traces, event for event — across load
// levels that exercise fit, unfit, and queueing paths.
func TestElasticDisabledMatchesSpatial(t *testing.T) {
	cfg := arch.Planaria()
	prog := toyProg(t, cfg)
	iso := cfg.Seconds(prog.Table(16).TotalCycles)
	for _, qpsMult := range []float64{0.2, 2, 8} {
		reqs := genSchedReqs(prog, 60, qpsMult/iso, 4*iso, 7)
		trS, trE := &sim.Trace{}, &sim.Trace{}
		outS, err := elasticNode(t, prog, NewSpatial(cfg), trS).Run(reqs)
		if err != nil {
			t.Fatal(err)
		}
		el := NewElastic(cfg)
		el.Disabled = true
		outE, err := elasticNode(t, prog, el, trE).Run(reqs)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(outS, outE) {
			t.Fatalf("qps×%g: disabled elastic outcome diverged from spatial:\n%+v\nvs\n%+v", qpsMult, outS, outE)
		}
		if !reflect.DeepEqual(trS.Events, trE.Events) {
			t.Fatalf("qps×%g: disabled elastic trace diverged from spatial (%d vs %d events)",
				qpsMult, len(trS.Events), len(trE.Events))
		}
		if outE.Refissions != 0 {
			t.Fatalf("disabled elastic recorded %d refissions", outE.Refissions)
		}
	}
}

// TestElasticMinMatchesEstimateResources: the elastic candidate minimum
// derived from the one-pass per-alloc cost row must be the exact n that
// Algorithm 1's ESTIMATERESOURCES scan picks.
func TestElasticMinMatchesEstimateResources(t *testing.T) {
	cfg := arch.Planaria()
	prog := toyProg(t, cfg)
	s := NewSpatial(cfg)
	cps := cfg.CyclesPerSecond()
	var rem []int64
	for _, deadline := range []float64{1e-9, cfg.Seconds(prog.Table(16).TotalCycles) * 1.05,
		cfg.Seconds(prog.Table(4).TotalCycles) * 1.01, 10} {
		task := mkTask(t, 0, prog, deadline, 5)
		want := s.EstimateResources(task, 0, 16)
		rem = task.RemainingCyclesByAlloc(rem)
		got := 0
		for n := 1; n <= 16; n++ {
			if float64(rem[n-1])/cps <= task.Slack(0) {
				got = n
				break
			}
		}
		if got == 0 {
			got = 16
		}
		if got != want {
			t.Errorf("deadline %g: per-alloc row picks %d, EstimateResources picks %d", deadline, got, want)
		}
	}
}

// TestElasticAbsorbsArrivalByShrinkingDonor: a donor running far ahead
// of its deadline gives up exactly the subarrays a new arrival needs,
// and neither drops below its minimum.
func TestElasticAbsorbsArrivalByShrinkingDonor(t *testing.T) {
	cfg := arch.Planaria()
	prog := toyProg(t, cfg)
	el := NewElastic(cfg)
	s := el.sp
	donor := mkTask(t, 0, prog, 10.0, 5) // huge slack: headroom at any allocation
	donor.Alloc = 16
	tight := mkTask(t, 1, prog, cfg.Seconds(prog.Table(8).TotalCycles)*1.01, 5)
	tasks := []*sim.Task{donor, tight}
	dst := make([]int, 2)
	el.AllocateInto(0, tasks, 16, dst)
	minTight := s.EstimateResources(tight, 0, 16)
	if dst[1] < minTight {
		t.Fatalf("arrival got %d subarrays, needs %d", dst[1], minTight)
	}
	if dst[0] < 1 {
		t.Fatalf("donor shrunk to %d", dst[0])
	}
	if dst[0]+dst[1] > 16 {
		t.Fatalf("over-allocated: %d+%d", dst[0], dst[1])
	}
}

// TestElasticSteadyStateReissuesPlan: feeding a plan back as the
// current allocation re-issues it unchanged, so the engine applies no
// reallocation (and charges no penalty) in steady state.
func TestElasticSteadyStateReissuesPlan(t *testing.T) {
	cfg := arch.Planaria()
	prog := toyProg(t, cfg)
	el := NewElastic(cfg)
	tasks := []*sim.Task{
		mkTask(t, 0, prog, 0.5, 8),
		mkTask(t, 1, prog, 1.0, 3),
		mkTask(t, 2, prog, 0.2, 5),
	}
	dst := make([]int, len(tasks))
	el.AllocateInto(0, tasks, 16, dst)
	for i, t2 := range tasks {
		t2.Alloc = dst[i]
	}
	again := make([]int, len(tasks))
	el.AllocateInto(0, tasks, 16, again)
	if !reflect.DeepEqual(dst, again) {
		t.Fatalf("steady state re-plans %v to %v", dst, again)
	}
}

// TestElasticNextRefission covers the wakeup contract: disabled or
// comfortable queues never wake; a starved queue wakes at a boundary
// strictly after now; an all-stalled queue (nothing running) has no
// boundary to wake at.
func TestElasticNextRefission(t *testing.T) {
	cfg := arch.Planaria()
	prog := toyProg(t, cfg)
	el := NewElastic(cfg)

	comfortable := mkTask(t, 0, prog, 10.0, 5)
	comfortable.Alloc = 16
	if got := el.NextRefission(0, []*sim.Task{comfortable}, 16); !math.IsInf(got, 1) {
		t.Fatalf("comfortable queue wakes at %g, want +Inf", got)
	}

	stalled := mkTask(t, 1, prog, 0.01, 5)
	both := []*sim.Task{comfortable, stalled}
	got := el.NextRefission(0, both, 16)
	if math.IsInf(got, 1) || got <= 0 {
		t.Fatalf("starved queue wakes at %g, want finite > now", got)
	}
	if got < el.minInterval() {
		t.Fatalf("wakeup %g under the %g floor", got, el.minInterval())
	}

	el.Disabled = true
	if got := el.NextRefission(0, both, 16); !math.IsInf(got, 1) {
		t.Fatalf("disabled policy wakes at %g, want +Inf", got)
	}
	el.Disabled = false

	onlyStalled := []*sim.Task{stalled}
	if got := el.NextRefission(0, onlyStalled, 16); !math.IsInf(got, 1) {
		t.Fatalf("nothing running but wake at %g, want +Inf", got)
	}
}

// elasticScenario builds a stream that forces a mid-flight re-fission:
// a front task whose tight deadline makes it hold most of the chip at
// admission, then a burst of looser arrivals whose minimal demands
// exceed the leftover — they stall at their arrival events. As the
// front task races ahead on its over-allocation, its own minimum
// decays until a donation covers a stalled task's minimum: a window
// only a tile-boundary re-split can exploit, since no arrival,
// completion, or quantum event falls inside it.
func elasticScenario(prog *compiler.Program, cfg arch.Config) []workload.Request {
	iso := cfg.Seconds(prog.Table(16).TotalCycles)
	mk := func(id int, at, qos float64, prio int) workload.Request {
		return workload.Request{
			ID: id, Model: prog.Net.Name, Domain: "classification",
			Arrival: at, Priority: prio, QoS: qos, Deadline: at + qos,
		}
	}
	reqs := []workload.Request{
		mk(0, 0, 1.2*iso, 5),
	}
	at := iso * 0.05
	for i := 1; i <= 6; i++ {
		reqs = append(reqs, mk(i, at, 3.0*iso, 5+i%3))
		at += iso * 0.02
	}
	return reqs
}

// TestElasticRunRefissionsAndIdentity runs the elastic policy through
// the full engine: the scenario must actually trigger re-fissions
// (EvRefission events and an Outcome count), the trace must validate,
// and two runs must be byte-identical.
func TestElasticRunRefissionsAndIdentity(t *testing.T) {
	cfg := arch.Planaria()
	prog := toyProg(t, cfg)
	reqs := elasticScenario(prog, cfg)

	run := func() (*sim.Outcome, *sim.Trace) {
		t.Helper()
		tr := &sim.Trace{}
		el := NewElastic(cfg)
		// The default 200 µs wakeup floor targets millisecond-scale
		// serving models; the toy program finishes in ~2.5 µs, so scale
		// the floor with it.
		el.MinIntervalS = cfg.Seconds(prog.Table(16).TotalCycles) * 0.02
		out, err := elasticNode(t, prog, el, tr).Run(reqs)
		if err != nil {
			t.Fatal(err)
		}
		return out, tr
	}
	out1, tr1 := run()
	out2, tr2 := run()

	if out1.Refissions == 0 {
		t.Fatalf("scenario triggered no re-fissions (preemptions=%d)", out1.Preemptions)
	}
	refEvents := 0
	for _, e := range tr1.Events {
		if e.Kind == sim.EvRefission {
			refEvents++
		}
	}
	if refEvents == 0 {
		t.Fatal("no EvRefission events in trace")
	}
	if err := tr1.Validate(); err != nil {
		t.Fatalf("elastic trace invalid: %v", err)
	}
	if !reflect.DeepEqual(out1, out2) {
		t.Fatalf("elastic outcome not reproducible:\n%+v\nvs\n%+v", out1, out2)
	}
	if !reflect.DeepEqual(tr1.Events, tr2.Events) {
		t.Fatalf("elastic trace not reproducible (%d vs %d events)", len(tr1.Events), len(tr2.Events))
	}
}

// TestElasticObserverDelegation: metric registration lands on the same
// sched counters Spatial uses, so the ablation compares like for like;
// refission activity itself is counted by the engine.
func TestElasticObserverDelegation(t *testing.T) {
	cfg := arch.Planaria()
	prog := toyProg(t, cfg)
	o := obs.New()
	el := NewElastic(cfg)
	el.SetObserver(o)
	task := mkTask(t, 0, prog, 1, 5)
	dst := make([]int, 1)
	el.AllocateInto(0, []*sim.Task{task}, 16, dst)
	snap := o.Registry().Snapshot()
	found := false
	for _, m := range snap.Series {
		if m.Name == "sched_decisions_total" {
			found = true
		}
	}
	if !found {
		t.Fatal("sched_decisions_total not registered through delegation")
	}
}
