package sched

import (
	"testing"

	"planaria/internal/arch"
	"planaria/internal/compiler"
	"planaria/internal/dnn"
	"planaria/internal/obs"
	"planaria/internal/sim"
	"planaria/internal/workload"
)

func toyProg(t *testing.T, cfg arch.Config) *compiler.Program {
	t.Helper()
	b := dnn.NewBuilder("sched-toy", "classification", 32, 32, 8)
	b.Conv("c1", 32, 3, 1)
	b.Conv("c2", 64, 3, 2)
	b.GlobalPool("gp")
	b.FC("fc", 10)
	net, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	p, err := compiler.CompileProgram(net, cfg, true)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func mkTask(t *testing.T, id int, prog *compiler.Program, deadline float64, prio int) *sim.Task {
	t.Helper()
	return &sim.Task{
		ID: id,
		Req: workload.Request{
			ID: id, Model: prog.Net.Name, Priority: prio,
			Arrival: 0, QoS: deadline, Deadline: deadline,
		},
		Prog:   prog,
		Finish: -1,
	}
}

func TestEstimateResourcesMinimal(t *testing.T) {
	cfg := arch.Planaria()
	p := toyProg(t, cfg)
	s := NewSpatial(cfg)
	// Generous slack: one subarray suffices.
	loose := mkTask(t, 0, p, 10.0, 5)
	if got := s.EstimateResources(loose, 0, 16); got != 1 {
		t.Errorf("loose slack estimate = %d, want 1", got)
	}
	// Impossible slack: the maximum is requested.
	tight := mkTask(t, 1, p, 1e-9, 5)
	if got := s.EstimateResources(tight, 0, 16); got != 16 {
		t.Errorf("impossible slack estimate = %d, want 16", got)
	}
	// Intermediate slack: the minimal allocation that meets it.
	t4 := cfg.Seconds(p.Table(4).TotalCycles)
	mid := mkTask(t, 2, p, t4*1.01, 5)
	got := s.EstimateResources(mid, 0, 16)
	if got > 4 || got < 1 {
		t.Errorf("mid estimate = %d, want in [1,4]", got)
	}
	if s.Cfg.Seconds(mid.RemainingCycles(got)) > mid.Slack(0) {
		t.Errorf("estimate %d does not meet slack", got)
	}
	if got > 1 && s.Cfg.Seconds(mid.RemainingCycles(got-1)) <= mid.Slack(0) {
		t.Errorf("estimate %d is not minimal", got)
	}
}

func TestAllocateFitConservesAndCovers(t *testing.T) {
	cfg := arch.Planaria()
	p := toyProg(t, cfg)
	s := NewSpatial(cfg)
	tasks := []*sim.Task{
		mkTask(t, 0, p, 1.0, 1),
		mkTask(t, 1, p, 1.0, 11),
		mkTask(t, 2, p, 1.0, 5),
	}
	alloc := s.Allocate(0, tasks, 16)
	sum := 0
	for _, task := range tasks {
		a := alloc[task.ID]
		if a < s.EstimateResources(task, 0, 16) {
			t.Errorf("task %d got %d < its estimate", task.ID, a)
		}
		sum += a
	}
	if sum > 16 {
		t.Fatalf("over-allocated: %d", sum)
	}
	if sum != 16 {
		t.Errorf("fit allocation left %d subarrays idle", 16-sum)
	}
	// Spare distribution favours the higher-priority task.
	if alloc[1] < alloc[0] {
		t.Errorf("priority 11 task got %d, priority 1 task got %d", alloc[1], alloc[0])
	}
}

func TestAllocateUnfitPrefersUrgentHighPriority(t *testing.T) {
	cfg := arch.Planaria()
	p := toyProg(t, cfg)
	s := NewSpatial(cfg)
	// Many tasks with impossible deadlines: every estimate is 16, so only
	// the best-scoring tasks get the chip.
	var tasks []*sim.Task
	for i := 0; i < 4; i++ {
		tasks = append(tasks, mkTask(t, i, p, 1e-9, i+1))
	}
	alloc := s.Allocate(0, tasks, 16)
	sum := 0
	for _, a := range alloc {
		sum += a
	}
	if sum > 16 {
		t.Fatalf("over-allocated: %d", sum)
	}
	// The highest-priority task must be admitted.
	if alloc[3] == 0 {
		t.Errorf("highest-priority task starved: %v", alloc)
	}
}

func TestAllocateEmpty(t *testing.T) {
	s := NewSpatial(arch.Planaria())
	if got := s.Allocate(0, nil, 16); len(got) != 0 {
		t.Fatalf("empty queue allocation = %v", got)
	}
}

func TestAllocateSingleTaskGetsEverything(t *testing.T) {
	cfg := arch.Planaria()
	p := toyProg(t, cfg)
	s := NewSpatial(cfg)
	task := mkTask(t, 0, p, 10.0, 3)
	alloc := s.Allocate(0, []*sim.Task{task}, 16)
	if alloc[0] != 16 {
		t.Fatalf("lone task got %d of 16 subarrays", alloc[0])
	}
}

func TestUnfitTopUpUsesWholeChip(t *testing.T) {
	cfg := arch.Planaria()
	p := toyProg(t, cfg)
	s := NewSpatial(cfg)
	// Two tasks each estimating ~16 (impossible deadline): one is
	// admitted and topped up to the full chip.
	tasks := []*sim.Task{
		mkTask(t, 0, p, 1e-9, 5),
		mkTask(t, 1, p, 1e-9, 7),
	}
	alloc := s.Allocate(0, tasks, 16)
	sum := 0
	for _, a := range alloc {
		sum += a
	}
	if sum != 16 {
		t.Fatalf("unfit allocation uses %d of 16", sum)
	}
}

// TestSpatialOccupancyFeed pins the fission-decision feed into the
// utilization accountant: every AllocateInto records one decision with
// the demanded and supplied subarray counts, fit or unfit.
func TestSpatialOccupancyFeed(t *testing.T) {
	cfg := arch.Planaria()
	p := toyProg(t, cfg)
	s := NewSpatial(cfg)
	occ := obs.NewOccupancy(16)
	s.SetOccupancy(occ)

	dst := make([]int, 1)
	// One loose task: fits with demand 1 of 16.
	s.AllocateInto(0, []*sim.Task{mkTask(t, 0, p, 10.0, 5)}, 16, dst)
	if occ.Decisions != 1 || occ.FitDecisions != 1 {
		t.Fatalf("after fit: %+v", occ)
	}
	if occ.SupplyUnits != 16 || occ.DemandUnits < 1 {
		t.Fatalf("fit demand/supply: %+v", occ)
	}

	// Many impossible-deadline tasks: demand exceeds supply, unfit.
	tasks := []*sim.Task{
		mkTask(t, 1, p, 1e-9, 5),
		mkTask(t, 2, p, 1e-9, 5),
		mkTask(t, 3, p, 1e-9, 5),
	}
	dst = make([]int, len(tasks))
	s.AllocateInto(0, tasks, 16, dst)
	if occ.Decisions != 2 || occ.FitDecisions != 1 {
		t.Fatalf("after unfit: %+v", occ)
	}
	if occ.Pressure() <= 1 {
		t.Fatalf("over-demand pressure = %g, want > 1", occ.Pressure())
	}

	// A nil accountant must be inert (the default wiring).
	s2 := NewSpatial(cfg)
	s2.AllocateInto(0, []*sim.Task{mkTask(t, 4, p, 10.0, 5)}, 16, make([]int, 1))
}
