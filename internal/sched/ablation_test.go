package sched

import (
	"testing"

	"planaria/internal/arch"
	"planaria/internal/sim"
)

func TestFCFSPicksOldestAndSticks(t *testing.T) {
	cfg := arch.Planaria()
	p := toyProg(t, cfg)
	pol := NewFCFS(cfg)
	a := mkTask(t, 0, p, 1, 5)
	b := mkTask(t, 1, p, 1, 9)
	a.Req.Arrival = 0.002
	b.Req.Arrival = 0.001
	alloc := pol.Allocate(0.01, []*sim.Task{a, b}, 16)
	if alloc[b.ID] != 16 || alloc[a.ID] != 0 {
		t.Fatalf("FCFS should give the whole chip to the oldest: %v", alloc)
	}
	// Once a task runs, it runs to completion even if an older-looking
	// task appears.
	a.Alloc = 16
	alloc = pol.Allocate(0.02, []*sim.Task{a, b}, 16)
	if alloc[a.ID] != 16 {
		t.Fatalf("FCFS preempted a running task: %v", alloc)
	}
}

func TestFCFSEmpty(t *testing.T) {
	if got := NewFCFS(arch.Planaria()).Allocate(0, nil, 16); len(got) != 0 {
		t.Fatalf("empty allocation = %v", got)
	}
}

func TestEqualShareDivides(t *testing.T) {
	cfg := arch.Planaria()
	p := toyProg(t, cfg)
	pol := NewEqualShare(cfg)
	tasks := []*sim.Task{
		mkTask(t, 0, p, 1, 1),
		mkTask(t, 1, p, 1, 11),
		mkTask(t, 2, p, 1, 5),
	}
	alloc := pol.Allocate(0, tasks, 16)
	sum := 0
	for _, task := range tasks {
		a := alloc[task.ID]
		if a < 5 || a > 6 {
			t.Errorf("task %d got %d, want 5 or 6", task.ID, a)
		}
		sum += a
	}
	if sum != 16 {
		t.Fatalf("equal share used %d of 16", sum)
	}
}

func TestEqualShareOversubscribed(t *testing.T) {
	cfg := arch.Planaria()
	p := toyProg(t, cfg)
	pol := NewEqualShare(cfg)
	var tasks []*sim.Task
	for i := 0; i < 20; i++ {
		tk := mkTask(t, i, p, 1, 5)
		tk.Req.Arrival = float64(i) * 1e-4
		tasks = append(tasks, tk)
	}
	alloc := pol.Allocate(1, tasks, 16)
	sum := 0
	granted := 0
	for _, a := range alloc {
		sum += a
		if a > 0 {
			granted++
		}
	}
	if sum != 16 {
		t.Fatalf("oversubscribed share used %d of 16", sum)
	}
	if granted != 16 {
		t.Fatalf("%d tasks granted, want the 16 oldest", granted)
	}
	// The newest tasks wait.
	if alloc[19] != 0 || alloc[16] != 0 {
		t.Errorf("newest tasks should wait: %v", alloc)
	}
	if alloc[0] != 1 {
		t.Errorf("oldest task should run: %v", alloc)
	}
}

func TestAblationPoliciesNames(t *testing.T) {
	cfg := arch.Planaria()
	if NewFCFS(cfg).Name() == "" || NewEqualShare(cfg).Name() == "" {
		t.Fatal("policies need names")
	}
	if NewFCFS(cfg).Quantum() != 0 || NewEqualShare(cfg).Quantum() != 0 {
		t.Fatal("ablation policies are event-driven")
	}
}
